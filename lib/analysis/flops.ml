(** Analytic FLOP model of the transformer encoder layer.

    Reproduces the paper's analytically computed quantities: Fig. 2 (wasted
    computation under full padding), Fig. 22 (overhead of CoRa's partial
    padding vs the no-padding ideal), and the per-operator flop shares used
    to sanity-check the simulator. *)

type config = {
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
}

(** The paper's base model (§7.2): 512 hidden, 8 heads of 64, FF 2048. *)
let base = { hidden = 512; heads = 8; head_size = 64; ff = 2048 }

(** Padding policy applied to the length multiset before counting. *)
type padding =
  | No_padding  (** the ideal: every sequence at its true length *)
  | Partial of { seq_multiple : int; bulk_multiple : int }
      (** CoRa: SDPA sequence lengths padded to a multiple, and the total
          token count bulk-padded (§7.2) *)
  | Full  (** dense frameworks: every sequence padded to the batch max *)

let pad_to n m = if m <= 1 then n else (n + m - 1) / m * m

(** Per-operator FLOPs for a batch of sequence lengths under a policy.
    Returns (linear_flops, sdpa_flops, elementwise_flops). *)
let encoder_flops cfg (lens : int array) (policy : padding) =
  let batch = Array.length lens in
  let maxlen = Array.fold_left max 0 lens in
  let lens' =
    match policy with
    | No_padding -> Array.copy lens
    | Partial { seq_multiple; _ } -> Array.map (fun l -> pad_to l seq_multiple) lens
    | Full -> Array.make batch maxlen
  in
  let tokens =
    match policy with
    | No_padding -> Array.fold_left ( + ) 0 lens
    | Partial { bulk_multiple; _ } -> pad_to (Array.fold_left ( + ) 0 lens) bulk_multiple
    | Full -> batch * maxlen
  in
  let h = float_of_int cfg.hidden and f = float_of_int cfg.ff in
  let t = float_of_int tokens in
  (* Linear transformations: QKV projection (h -> 3h), output projection
     (h -> h), FF1 (h -> ff), FF2 (ff -> h); 2 flops per MAC. *)
  let linear = t *. ((2. *. h *. 3. *. h) +. (2. *. h *. h) +. (2. *. 2. *. h *. f)) in
  (* SDPA: QK^T and AttnV are 2*dh flops per attention-matrix entry per
     head; softmax ~5 flops per entry per head. *)
  let dh = float_of_int cfg.head_size and nh = float_of_int cfg.heads in
  let sq = Array.fold_left (fun acc l -> acc +. (float_of_int l *. float_of_int l)) 0.0 lens' in
  let sdpa = nh *. sq *. ((2. *. 2. *. dh) +. 5.) in
  (* Elementwise: biases, residuals, two layer norms, gelu. *)
  let elementwise = t *. ((4. *. h) +. (8. *. h) +. (8. *. f)) in
  (linear, sdpa, elementwise)

let encoder_total cfg lens policy =
  let a, b, c = encoder_flops cfg lens policy in
  a +. b +. c

(** Fig. 2: ratio of fully padded to unpadded computation. *)
let padding_waste_ratio cfg lens = encoder_total cfg lens Full /. encoder_total cfg lens No_padding

(** Fig. 22: CoRa's partial padding relative to the no-padding ideal. *)
let partial_padding_overhead cfg lens ~seq_multiple ~bulk_multiple =
  encoder_total cfg lens (Partial { seq_multiple; bulk_multiple })
  /. encoder_total cfg lens No_padding

(** MHA-only totals (for the ARM CPU experiments, Table 5). *)
let mha_flops cfg (lens : int array) (policy : padding) =
  let batch = Array.length lens in
  let maxlen = Array.fold_left max 0 lens in
  let lens' =
    match policy with
    | No_padding -> Array.copy lens
    | Partial { seq_multiple; _ } -> Array.map (fun l -> pad_to l seq_multiple) lens
    | Full -> Array.make batch maxlen
  in
  let tokens =
    match policy with
    | No_padding -> Array.fold_left ( + ) 0 lens
    | Partial { bulk_multiple; _ } -> pad_to (Array.fold_left ( + ) 0 lens) bulk_multiple
    | Full -> batch * maxlen
  in
  let h = float_of_int cfg.hidden in
  let t = float_of_int tokens in
  let linear = t *. ((2. *. h *. 3. *. h) +. (2. *. h *. h)) in
  let dh = float_of_int cfg.head_size and nh = float_of_int cfg.heads in
  let sq = Array.fold_left (fun acc l -> acc +. (float_of_int l *. float_of_int l)) 0.0 lens' in
  let sdpa = nh *. sq *. ((2. *. 2. *. dh) +. 5.) in
  linear +. sdpa
