(** Analytic activation-memory model (Fig. 19, §D.5): forward activations
    an encoder layer keeps for the backward pass, in fp32 elements. *)

val pad_to : int -> int -> int

type layout =
  | Ragged_storage of { seq_multiple : int; bulk_multiple : int }
  | Dense_storage

val encoder_activation_elems : Flops.config -> int array -> layout -> float

(** Fig. 19's ratio: ragged / dense activation memory. *)
val ragged_to_dense_ratio :
  Flops.config -> int array -> seq_multiple:int -> bulk_multiple:int -> float
