(** Analytic activation-memory model (Fig. 19, §D.5).

    Counts the forward activations an encoder layer keeps alive for the
    backward pass, in fp32 elements, for ragged vs fully padded storage.
    The ragged variant accounts for CoRa's partial padding (sequence
    multiples in SDPA and bulk padding of the token count). *)

let pad_to n m = if m <= 1 then n else (n + m - 1) / m * m

type layout = Ragged_storage of { seq_multiple : int; bulk_multiple : int } | Dense_storage

(** Forward-activation elements of one encoder layer. *)
let encoder_activation_elems (cfg : Flops.config) (lens : int array) (layout : layout) : float =
  let batch = Array.length lens in
  let maxlen = Array.fold_left max 0 lens in
  let tokens, sq =
    match layout with
    | Dense_storage ->
        let t = batch * maxlen in
        (float_of_int t, float_of_int batch *. float_of_int (maxlen * maxlen))
    | Ragged_storage { seq_multiple; bulk_multiple } ->
        let t = pad_to (Array.fold_left ( + ) 0 lens) bulk_multiple in
        let sq =
          Array.fold_left
            (fun acc l ->
              let l' = pad_to l seq_multiple in
              acc +. float_of_int (l' * l'))
            0.0 lens
        in
        (float_of_int t, sq)
  in
  let h = float_of_int cfg.Flops.hidden and f = float_of_int cfg.Flops.ff in
  let nh = float_of_int cfg.Flops.heads in
  (* Activations kept: input, QKV (3h), attention scores and probabilities
     (2 * nh * s^2), attention output (h), proj output (h), LN1 out (h),
     FF1 out (ff), FF2 out (h), LN2 out (h). *)
  (tokens *. ((1. +. 3. +. 1. +. 1. +. 1. +. 1. +. 1.) *. h +. f)) +. (2. *. nh *. sq)

(** Fig. 19's ratio: ragged / dense activation memory. *)
let ragged_to_dense_ratio cfg lens ~seq_multiple ~bulk_multiple =
  encoder_activation_elems cfg lens (Ragged_storage { seq_multiple; bulk_multiple })
  /. encoder_activation_elems cfg lens Dense_storage
