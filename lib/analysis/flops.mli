(** Analytic FLOP model of the transformer encoder (Figs. 2 and 22). *)

type config = {
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
}

(** The paper's base model (§7.2): 512 hidden, 8 heads of 64, FF 2048. *)
val base : config

type padding =
  | No_padding  (** the ideal *)
  | Partial of { seq_multiple : int; bulk_multiple : int }  (** CoRa (§7.2) *)
  | Full  (** dense frameworks: pad to the batch max *)

val pad_to : int -> int -> int

(** (linear, SDPA, elementwise) FLOPs for a batch under a policy. *)
val encoder_flops : config -> int array -> padding -> float * float * float

val encoder_total : config -> int array -> padding -> float

(** Fig. 2: fully padded / unpadded computation. *)
val padding_waste_ratio : config -> int array -> float

(** Fig. 22: CoRa's partial padding relative to the no-padding ideal. *)
val partial_padding_overhead :
  config -> int array -> seq_multiple:int -> bulk_multiple:int -> float

(** MHA-only totals (Table 5). *)
val mha_flops : config -> int array -> padding -> float
