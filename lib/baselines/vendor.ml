(** Vendor-library stand-ins for the matrix-multiplication experiments
    (§7.1): cuBLAS on the GPU, MKL on the Intel CPU, OpenBLAS on ARM.
    Each is an analytic kernel with the efficiency a heavily hand-tuned
    library achieves, and the padding semantics of the paper's baselines. *)

open Analytic

(* Vendor efficiencies: a dense single gemm is the best-tuned code path;
   batched/variable variants lose a little; the (Li et al., 2019)
   hand-optimized vgemm is research code, good but below cuBLAS. *)
let cublas_gemm_eff = 0.95
let cublas_batched_eff = 0.92
let cublas_trmm_eff = 0.80
let li_vgemm_eff = 0.80
let mkl_gemm_eff = 0.93
let mkl_vgemm_eff = 0.90
let openblas_gemm_eff = 0.85

let fi = float_of_int

(** Fully padded batched gemm: every instance padded to the batch maxima. *)
let padded_batched_gemm ~eff ~label (w : Workloads.Vgemm_workload.t) : pipeline =
  let m = Workloads.Vgemm_workload.max3 w.ms
  and n = Workloads.Vgemm_workload.max3 w.ns
  and k = Workloads.Vgemm_workload.max3 w.ks in
  let macs = fi w.batch *. fi m *. fi n *. fi k in
  { label; kernels = [ kernel ~name:"batched gemm (padded)" ~eff (gemm_counts macs) ] }

(** Hand-optimized variable-size batched gemm: exact work per instance. *)
let hand_vgemm ~eff ~label (w : Workloads.Vgemm_workload.t) : pipeline =
  let macs = Workloads.Vgemm_workload.ragged_flops w /. 2.0 in
  { label; kernels = [ kernel ~name:"vgemm (hand)" ~eff (gemm_counts macs) ] }

(** cuBLAS trmm: triangular × dense, exploiting the triangle.  The fixed
    overhead models trmm's specialised multi-pass launch setup: as in the
    paper, trmm only beats the dense sgemm on larger matrices (Fig. 9). *)
let cublas_trmm ~n : pipeline =
  let macs = fi n *. fi (n + 1) /. 2.0 *. fi n in
  {
    label = "cuBLAS-trmm";
    kernels =
      [ kernel ~name:"trmm" ~eff:cublas_trmm_eff ~overhead_ns:150_000.0 (gemm_counts macs) ];
  }

(** cuBLAS sgemm treating the triangular matrix as dense. *)
let cublas_dense_gemm ~n : pipeline =
  let macs = fi n *. fi n *. fi n in
  {
    label = "cuBLAS-gemm";
    kernels = [ kernel ~name:"sgemm" ~eff:cublas_gemm_eff (gemm_counts macs) ];
  }
