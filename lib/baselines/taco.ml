(** Taco-style sparse baselines (§D.4, Table 6).

    The paper implements trmm / tradd / trmul in the Taco sparse tensor
    compiler using the CSR and BCSR formats and measures large slowdowns
    against CoRa.  We reproduce both sides of that comparison:

    - {e executable} CSR/BCSR kernels (used by the test suite to check the
      formats themselves are implemented correctly);
    - {e analytic timing} reflecting why Taco's code is slow on ragged
      data: CSR gives no register/shared-memory tiling (every operand is
      re-read from memory — bandwidth-bound at uncached rates), the merge
      loops of elementwise ops parallelise only across rows, and BCSR pads
      to dense blocks while keeping per-block index traffic. *)

type csr = {
  n : int;
  row_ptr : int array;  (** n+1 entries *)
  col_idx : int array;
  vals : float array;
}

(** CSR of a lower-triangular matrix with values from [f row col]. *)
let csr_lower_triangular n f : csr =
  let nnz = n * (n + 1) / 2 in
  let row_ptr = Array.make (n + 1) 0 in
  let col_idx = Array.make nnz 0 and vals = Array.make nnz 0.0 in
  let pos = ref 0 in
  for r = 0 to n - 1 do
    row_ptr.(r) <- !pos;
    for c = 0 to r do
      col_idx.(!pos) <- c;
      vals.(!pos) <- f r c;
      incr pos
    done
  done;
  row_ptr.(n) <- !pos;
  { n; row_ptr; col_idx; vals }

let nnz (m : csr) = m.row_ptr.(m.n)

(** Dense n×m result of CSR trmm: [C = A · B]. *)
let trmm_csr (a : csr) (b : float array) ~m : float array =
  let c = Array.make (a.n * m) 0.0 in
  for r = 0 to a.n - 1 do
    for p = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
      let k = a.col_idx.(p) and v = a.vals.(p) in
      for j = 0 to m - 1 do
        c.((r * m) + j) <- c.((r * m) + j) +. (v *. b.((k * m) + j))
      done
    done
  done;
  c

(** Elementwise union (add) of two CSR matrices with a two-pointer merge —
    exactly the iteration structure Taco generates. *)
let tradd_csr (a : csr) (b : csr) : csr =
  if a.n <> b.n then invalid_arg "tradd_csr: dimension mismatch";
  let row_ptr = Array.make (a.n + 1) 0 in
  let cap = nnz a + nnz b in
  let col_idx = Array.make (max cap 1) 0 and vals = Array.make (max cap 1) 0.0 in
  let pos = ref 0 in
  for r = 0 to a.n - 1 do
    row_ptr.(r) <- !pos;
    let pa = ref a.row_ptr.(r) and pb = ref b.row_ptr.(r) in
    while !pa < a.row_ptr.(r + 1) || !pb < b.row_ptr.(r + 1) do
      let ca = if !pa < a.row_ptr.(r + 1) then a.col_idx.(!pa) else max_int in
      let cb = if !pb < b.row_ptr.(r + 1) then b.col_idx.(!pb) else max_int in
      if ca = cb then begin
        col_idx.(!pos) <- ca;
        vals.(!pos) <- a.vals.(!pa) +. b.vals.(!pb);
        incr pa;
        incr pb
      end
      else if ca < cb then begin
        col_idx.(!pos) <- ca;
        vals.(!pos) <- a.vals.(!pa);
        incr pa
      end
      else begin
        col_idx.(!pos) <- cb;
        vals.(!pos) <- b.vals.(!pb);
        incr pb
      end;
      incr pos
    done
  done;
  row_ptr.(a.n) <- !pos;
  { n = a.n; row_ptr; col_idx = Array.sub col_idx 0 !pos; vals = Array.sub vals 0 !pos }

(** Elementwise intersection (multiply). *)
let trmul_csr (a : csr) (b : csr) : csr =
  if a.n <> b.n then invalid_arg "trmul_csr: dimension mismatch";
  let row_ptr = Array.make (a.n + 1) 0 in
  let cap = min (nnz a) (nnz b) in
  let col_idx = Array.make (max cap 1) 0 and vals = Array.make (max cap 1) 0.0 in
  let pos = ref 0 in
  for r = 0 to a.n - 1 do
    row_ptr.(r) <- !pos;
    let pa = ref a.row_ptr.(r) and pb = ref b.row_ptr.(r) in
    while !pa < a.row_ptr.(r + 1) && !pb < b.row_ptr.(r + 1) do
      let ca = a.col_idx.(!pa) and cb = b.col_idx.(!pb) in
      if ca = cb then begin
        col_idx.(!pos) <- ca;
        vals.(!pos) <- a.vals.(!pa) *. b.vals.(!pb);
        incr pa;
        incr pb;
        incr pos
      end
      else if ca < cb then incr pa
      else incr pb
    done
  done;
  row_ptr.(a.n) <- !pos;
  { n = a.n; row_ptr; col_idx = Array.sub col_idx 0 !pos; vals = Array.sub vals 0 !pos }

(** CSR lookup (search over the row's indices — the non-O(1) access the
    paper contrasts with ragged tensors, insight I2). *)
let csr_get (m : csr) r c =
  let rec search p =
    if p >= m.row_ptr.(r + 1) then 0.0
    else if m.col_idx.(p) = c then m.vals.(p)
    else if m.col_idx.(p) > c then 0.0
    else search (p + 1)
  in
  search m.row_ptr.(r)

(* ------------------------------------------------------------------ *)
(* Analytic timing (Table 6)                                            *)

let fi = float_of_int

(* Taco's generated code streams operands without tiling: uncached loads. *)
let uncached_bw (d : Machine.Device.t) = d.Machine.Device.mem_bw_bytes_per_ns /. 1.35

(** Taco CSR trmm on the GPU: bandwidth-bound, 12 bytes per MAC
    (value + column index + B element, no reuse). *)
let trmm_csr_ns (d : Machine.Device.t) ~n =
  let macs = fi (n * (n + 1) / 2) *. fi n in
  let bytes = macs *. 12.0 in
  (bytes /. uncached_bw d /. 0.78) +. d.Machine.Device.launch_ns

(** BCSR trmm: 32x32 dense blocks halve index traffic but pad the triangle
    diagonal; block-dense inner loops reuse a little. *)
let trmm_bcsr_ns (d : Machine.Device.t) ~n ~block =
  let nb = (n + block - 1) / block in
  (* blocks on or below the diagonal *)
  let blocks = nb * (nb + 1) / 2 in
  let macs = fi blocks *. fi (block * block) *. fi n in
  let bytes = macs *. 8.0 in
  (bytes /. uncached_bw d /. 0.72) +. d.Machine.Device.launch_ns

(** CSR elementwise merge: parallel across rows only, serial two-pointer
    merge within a row (~8 ns per output element per processor). *)
let elementwise_csr_ns (d : Machine.Device.t) ~n =
  let nnz = fi (n * (n + 1) / 2) in
  let per_elem_ns = 8.0 in
  (nnz /. fi d.Machine.Device.n_proc *. per_elem_ns /. 0.5) +. d.Machine.Device.launch_ns

(** BCSR elementwise multiply: dense blocks vectorise; padded blocks cost
    extra traffic. *)
let trmul_bcsr_ns (d : Machine.Device.t) ~n ~block =
  let nb = (n + block - 1) / block in
  let blocks = nb * (nb + 1) / 2 in
  let elems = fi blocks *. fi (block * block) in
  let bytes = elems *. 12.0 in
  (bytes /. uncached_bw d /. 0.6) +. d.Machine.Device.launch_ns

(* ------------------------------------------------------------------ *)
(* CSF (tree-based) storage-lowering overhead model (§5.2, §B.1, §7.4)  *)

(** Auxiliary entries the tree-based sparse scheme would compute for a
    tensor, via its dimension graph; time is one host pass per entry. *)
let csf_entries (t : Cora.Tensor.t) ~(extent_of : int -> int -> int) =
  Cora.Dgraph.csf_aux_entries (Cora.Dgraph.of_tensor t) ~extent_of

let csf_time_ns (d : Machine.Device.t) entries =
  fi entries *. d.Machine.Device.aux_entry_ns *. 1.4
(* the tree scheme touches parent pointers per entry: slightly costlier *)

let csf_bytes entries = 4 * entries
