(** Framework baselines for the transformer experiments (§7.2): kernel
    pipelines replicating each system's structure (Fig. 3) — FT (fully
    padded), FT-Eff (packed linear operators, padded SDPA, explicit layout
    conversions), PyTorch/TorchScript and TensorFlow (fully padded,
    unfused elementwise, dispatch overheads). *)

type frame_effs = {
  gemm : float;
  hand : float;
  softmax : float;
  elementwise : float;
  dispatch_ns : float;
}

val ft_effs : frame_effs
val pytorch_gpu_effs : frame_effs
val pytorch_arm_effs : frame_effs
val tf_arm_effs : frame_effs

type shape = {
  batch : int;
  lens : int array;
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
}

val of_config :
  batch:int -> lens:int array -> hidden:int -> heads:int -> head_size:int -> ff:int -> shape

val maxlen : shape -> int
val padded_tokens : shape -> float
val packed_tokens : shape -> float
val padded_entries : shape -> float

val padded_mha_kernels : frame_effs -> shape -> tokens:float -> Analytic.kernel list
val ff_and_norm_kernels : frame_effs -> shape -> tokens:float -> Analytic.kernel list

(** FasterTransformer, fully padded (FT in Table 4). *)
val ft_encoder : shape -> Analytic.pipeline

(** FasterTransformer with the EffectiveTransformers packing. *)
val ft_eff_encoder : shape -> Analytic.pipeline

val pytorch_encoder : ?effs:frame_effs -> shape -> Analytic.pipeline
val padded_mha_pipeline : label:string -> frame_effs -> shape -> Analytic.pipeline
val pytorch_mha : ?effs:frame_effs -> shape -> Analytic.pipeline
val tf_mha : shape -> Analytic.pipeline
val ft_mha : shape -> Analytic.pipeline

(** Masked SDPA in PyTorch (Fig. 18): full square matrix + a mask kernel. *)
val pytorch_masked_sdpa : ?effs:frame_effs -> shape -> Analytic.pipeline
