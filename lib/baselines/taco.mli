(** Taco-style sparse baselines (§D.4, Table 6): executable CSR/BCSR
    kernels (used by the correctness tests) plus analytic timing capturing
    why sparse-compiler code is slow on ragged data (no tiling — uncached
    bandwidth; row-serial merge loops; padded BCSR blocks), and the CSF
    storage-lowering overhead model of §7.4. *)

type csr = {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  vals : float array;
}

val csr_lower_triangular : int -> (int -> int -> float) -> csr
val nnz : csr -> int

(** Dense n×m result of [C = A · B]. *)
val trmm_csr : csr -> float array -> m:int -> float array

(** Elementwise union (two-pointer merge, as Taco generates). *)
val tradd_csr : csr -> csr -> csr

(** Elementwise intersection. *)
val trmul_csr : csr -> csr -> csr

(** Search-based access — the non-O(1) lookup the paper contrasts with
    ragged tensors (insight I2). *)
val csr_get : csr -> int -> int -> float

val uncached_bw : Machine.Device.t -> float
val trmm_csr_ns : Machine.Device.t -> n:int -> float
val trmm_bcsr_ns : Machine.Device.t -> n:int -> block:int -> float
val elementwise_csr_ns : Machine.Device.t -> n:int -> float
val trmul_bcsr_ns : Machine.Device.t -> n:int -> block:int -> float

(** Aux entries the tree-based CSF scheme computes for a tensor (§B.1). *)
val csf_entries : Cora.Tensor.t -> extent_of:(int -> int -> int) -> int

val csf_time_ns : Machine.Device.t -> int -> float
val csf_bytes : int -> int
