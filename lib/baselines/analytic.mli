(** Analytic kernels: closed-form operation counts priced with the same
    device weights as compiler-generated code, with a memory-bandwidth
    floor.  The vendor-library and framework baselines are modelled this
    way (the paper calls into binaries for them). *)

type kernel = {
  name : string;
  counts : Runtime.Cost_model.counts;
  eff : float;
  overhead_ns : float;  (** framework dispatch overhead on top of launch *)
}

val kernel :
  ?overhead_ns:float -> name:string -> eff:float -> Runtime.Cost_model.counts -> kernel

(** Gemm of [macs] multiply-accumulates with register/shared-memory-tiled
    residual memory traffic. *)
val gemm_counts : float -> Runtime.Cost_model.counts

(** Streaming elementwise kernel over [elems] values. *)
val elementwise_counts : ?reads:float -> ?flops_per:float -> float -> Runtime.Cost_model.counts

(** Softmax over [entries] attention-matrix elements. *)
val softmax_counts : float -> Runtime.Cost_model.counts

val parallelism : Machine.Device.t -> float

(** Wall time: max(compute, memory traffic / bandwidth) + launch +
    dispatch. *)
val kernel_ns : Machine.Device.t -> kernel -> float

type pipeline = { label : string; kernels : kernel list }

val pipeline_ns : Machine.Device.t -> pipeline -> float
