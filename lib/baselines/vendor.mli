(** Vendor-library stand-ins for the matmul experiments (§7.1): cuBLAS /
    MKL / OpenBLAS efficiencies with the baselines' padding semantics. *)

val cublas_gemm_eff : float
val cublas_batched_eff : float
val cublas_trmm_eff : float

(** The (Li et al., 2019) hand-optimized vgemm — research code, below
    cuBLAS. *)
val li_vgemm_eff : float

val mkl_gemm_eff : float
val mkl_vgemm_eff : float
val openblas_gemm_eff : float

(** Fully padded batched gemm: every instance padded to the batch maxima. *)
val padded_batched_gemm :
  eff:float -> label:string -> Workloads.Vgemm_workload.t -> Analytic.pipeline

(** Hand-optimized variable-size batched gemm: exact work per instance. *)
val hand_vgemm : eff:float -> label:string -> Workloads.Vgemm_workload.t -> Analytic.pipeline

(** cuBLAS trmm (exploits the triangle; fixed setup overhead makes it lose
    to dense sgemm on small matrices, as in Fig. 9). *)
val cublas_trmm : n:int -> Analytic.pipeline

(** cuBLAS sgemm treating the triangular matrix as dense. *)
val cublas_dense_gemm : n:int -> Analytic.pipeline
