(** Analytic kernels: closed-form operation counts run through the same
    device cost weights as compiler-generated code.

    Framework and vendor-library baselines (cuBLAS, MKL, OpenBLAS,
    FasterTransformer's hand kernels, PyTorch/TF dispatch) are not lowered
    through the CoRa compiler — the paper calls into binaries for them.  We
    model each of their kernels as an operation-count record with an
    efficiency factor, priced identically to CoRa's blocks so that all
    comparisons share one cost basis. *)

open Runtime.Cost_model

type kernel = {
  name : string;
  counts : counts;
  eff : float;
  overhead_ns : float;  (** framework dispatch overhead on top of launch *)
}

let kernel ?(overhead_ns = 0.0) ~name ~eff counts = { name; counts; eff; overhead_ns }

(** Counts of a gemm of [macs] multiply-accumulates, with per-MAC load and
    index costs comparable to what lowered CoRa kernels pay. *)
let gemm_counts macs =
  (* register/shared-memory tiling amortises loads across MACs; the memory
     traffic left is roughly one load per 32 MACs for transformer-sized
     matrices *)
  {
    zero_counts with
    flops = 2.0 *. macs;
    loads = macs /. 64.0;
    iops = macs /. 8.0;
    stores = macs /. 256.0;
  }

(** Elementwise kernel over [elems] values, [reads] inputs per value. *)
let elementwise_counts ?(reads = 2.0) ?(flops_per = 2.0) elems =
  {
    zero_counts with
    flops = flops_per *. elems;
    loads = reads *. elems;
    stores = elems;
    iops = 2.0 *. elems;
  }

(** Softmax over [entries] attention-matrix elements. *)
let softmax_counts entries =
  {
    zero_counts with
    flops = 5.0 *. entries;
    intrinsics = 2.0 *. entries;
    loads = 2.0 *. entries;
    stores = entries;
    iops = 4.0 *. entries;
  }

(** Total device parallelism the analytic kernels are spread across. *)
let parallelism (d : Machine.Device.t) =
  float_of_int (d.Machine.Device.n_proc * d.Machine.Device.lanes * d.Machine.Device.vec_width)

(** Wall time of one analytic kernel: priced per scalar op, divided across
    the whole device, floored by its memory traffic, plus launch and
    dispatch overheads. *)
let kernel_ns (d : Machine.Device.t) (k : kernel) =
  let compute = Machine.Device.block_ns d ~eff:k.eff k.counts /. parallelism d in
  let memory = Machine.Device.block_bytes k.counts /. d.Machine.Device.mem_bw_bytes_per_ns in
  Float.max compute memory +. d.Machine.Device.launch_ns +. k.overhead_ns

(** A named sequence of kernels. *)
type pipeline = { label : string; kernels : kernel list }

let pipeline_ns d (p : pipeline) =
  List.fold_left (fun acc k -> acc +. kernel_ns d k) 0.0 p.kernels
