(** Framework baselines for the transformer experiments (§7.2).

    Kernel pipelines replicating the structure of each system the paper
    compares against (Fig. 3):

    - {b FT} — FasterTransformer without the EffectiveTransformers packing:
      everything fully padded to the batch maximum; cuBLAS gemms plus hand
      kernels; 12 kernels.
    - {b FT-Eff} — FasterTransformer with packing: linear operators run on
      the packed Σ-length token matrix, SDPA stays fully padded, and
      explicit AddPad / RemovePad / Transpose kernels convert between the
      two layouts.
    - {b PyTorch} (TorchScript) — fully padded, unfused elementwise
      operators, per-kernel framework dispatch overhead.
    - {b TensorFlow} — like PyTorch with different efficiency trade-offs
      (better large gemms on ARM, higher dispatch overhead), used for the
      ARM MHA comparison (Table 5). *)

open Analytic

type frame_effs = {
  gemm : float;
  hand : float;  (** hand-written SDPA kernels *)
  softmax : float;
  elementwise : float;
  dispatch_ns : float;  (** per-kernel framework overhead *)
}

(* FT's softmax performs block-level parallel reductions with expensive
   barriers and per-element bound checks (§D.8), hence the very low
   efficiency. *)
let ft_effs = { gemm = 0.95; hand = 0.80; softmax = 0.055; elementwise = 0.55; dispatch_ns = 0.0 }

let pytorch_gpu_effs =
  { gemm = 0.87; hand = 0.72; softmax = 0.05; elementwise = 0.25; dispatch_ns = 12_000.0 }

(* ARM CPU: PyTorch's oneDNN/ACL path underuses the cores on large gemms
   (§D.8: PyTorch ~1.7x slower than TF at RACE); TensorFlow has better
   gemms but far higher per-op overhead (CoLA: TF 23ms vs PT 11ms). *)
let pytorch_arm_effs =
  { gemm = 0.37; hand = 0.33; softmax = 0.30; elementwise = 0.35; dispatch_ns = 30_000.0 }

let tf_arm_effs =
  { gemm = 0.63; hand = 0.55; softmax = 0.45; elementwise = 0.30; dispatch_ns = 3_500_000.0 }

type shape = {
  batch : int;
  lens : int array;
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
}

let of_config ~batch ~lens ~hidden ~heads ~head_size ~ff = { batch; lens; hidden; heads; head_size; ff }

let maxlen s = Array.fold_left max 0 s.lens
let padded_tokens s = float_of_int (s.batch * maxlen s)
let packed_tokens s = float_of_int (Array.fold_left ( + ) 0 s.lens)

(* attention-matrix entries per head under full padding *)
let padded_entries s = float_of_int s.batch *. (float_of_int (maxlen s) ** 2.) *. float_of_int s.heads

let fh = float_of_int

(* ------------------------------------------------------------------ *)

(** The MHA kernels of a fully padded implementation. *)
let padded_mha_kernels e s ~tokens =
  let h = fh s.hidden and dh = fh s.head_size in
  let entries = padded_entries s in
  [
    kernel ~name:"QKV Proj MM" ~eff:e.gemm ~overhead_ns:e.dispatch_ns
      (gemm_counts (tokens *. h *. 3. *. h));
    kernel ~name:"QKV Bias + Transpose" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts (tokens *. 3. *. h));
    kernel ~name:"QK^T" ~eff:e.hand ~overhead_ns:e.dispatch_ns (gemm_counts (entries *. dh));
    kernel ~name:"Softmax" ~eff:e.softmax ~overhead_ns:e.dispatch_ns (softmax_counts entries);
    kernel ~name:"AttnV" ~eff:e.hand ~overhead_ns:e.dispatch_ns (gemm_counts (entries *. dh));
    kernel ~name:"Transpose" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts (tokens *. h));
    kernel ~name:"Linear Proj MM" ~eff:e.gemm ~overhead_ns:e.dispatch_ns
      (gemm_counts (tokens *. h *. h));
    kernel ~name:"Proj Bias + Residual" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts (tokens *. h));
  ]

let ff_and_norm_kernels e s ~tokens =
  let h = fh s.hidden and f = fh s.ff in
  [
    kernel ~name:"LayerNorm1" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts ~flops_per:8.0 (tokens *. h));
    kernel ~name:"FF1 MM" ~eff:e.gemm ~overhead_ns:e.dispatch_ns (gemm_counts (tokens *. h *. f));
    kernel ~name:"FF1 Bias + Gelu" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts ~flops_per:10.0 (tokens *. f));
    kernel ~name:"FF2 MM" ~eff:e.gemm ~overhead_ns:e.dispatch_ns (gemm_counts (tokens *. f *. h));
    kernel ~name:"FF2 Bias + Residual" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts (tokens *. h));
    kernel ~name:"LayerNorm2" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
      (elementwise_counts ~flops_per:8.0 (tokens *. h));
  ]

(** FasterTransformer, fully padded (FT in Table 4). *)
let ft_encoder s : pipeline =
  let tokens = padded_tokens s in
  { label = "FT"; kernels = padded_mha_kernels ft_effs s ~tokens @ ff_and_norm_kernels ft_effs s ~tokens }

(** FasterTransformer with the EffectiveTransformers packing (FT-Eff):
    linear operators on packed tokens; SDPA fully padded; explicit layout
    conversion kernels around the SDPA sub-module. *)
let ft_eff_encoder s : pipeline =
  let e = ft_effs in
  let h = fh s.hidden and dh = fh s.head_size in
  let packed = packed_tokens s and padded = padded_tokens s in
  let entries = padded_entries s in
  {
    label = "FT-Eff";
    kernels =
      [
        kernel ~name:"QKV Proj MM" ~eff:e.gemm (gemm_counts (packed *. h *. 3. *. h));
        kernel ~name:"QKV Bias + AddPad" ~eff:e.elementwise
          (elementwise_counts ((packed +. padded) *. 1.5 *. h));
        kernel ~name:"QK^T" ~eff:e.hand (gemm_counts (entries *. dh));
        kernel ~name:"Softmax" ~eff:e.softmax (softmax_counts entries);
        kernel ~name:"AttnV" ~eff:e.hand (gemm_counts (entries *. dh));
        kernel ~name:"Transpose + RemovePad" ~eff:e.elementwise
          (elementwise_counts (padded *. h));
        kernel ~name:"Linear Proj MM" ~eff:e.gemm (gemm_counts (packed *. h *. h));
        kernel ~name:"Proj Bias + Residual + LN" ~eff:e.elementwise
          (elementwise_counts ~flops_per:10.0 (packed *. h));
      ]
      @ [
          kernel ~name:"FF1 MM" ~eff:e.gemm (gemm_counts (packed *. h *. fh s.ff));
          kernel ~name:"FF1 Bias + Gelu" ~eff:e.elementwise
            (elementwise_counts ~flops_per:10.0 (packed *. fh s.ff));
          kernel ~name:"FF2 MM" ~eff:e.gemm (gemm_counts (packed *. fh s.ff *. h));
          kernel ~name:"FF2 Bias + Residual + LN" ~eff:e.elementwise
            (elementwise_counts ~flops_per:10.0 (packed *. h));
        ];
  }

(** PyTorch (TorchScript) encoder: fully padded, more and less-fused
    kernels, dispatch overhead per kernel. *)
let pytorch_encoder ?(effs = pytorch_gpu_effs) s : pipeline =
  let tokens = padded_tokens s in
  let e = effs in
  let h = fh s.hidden in
  let extra =
    (* TorchScript still issues separate mask/dropout/cast elementwise ops *)
    [
      kernel ~name:"Mask + Scale" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
        (elementwise_counts ~reads:1.0 ~flops_per:1.0 (padded_entries s));
      kernel ~name:"Contiguous copies" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
        (elementwise_counts (2.0 *. tokens *. h));
    ]
  in
  {
    label = "PyTorch";
    kernels = padded_mha_kernels e s ~tokens @ extra @ ff_and_norm_kernels e s ~tokens;
  }

(* --- MHA-only pipelines (Table 5 / Fig. 11) --- *)

let padded_mha_pipeline ~label e s : pipeline =
  { label; kernels = padded_mha_kernels e s ~tokens:(padded_tokens s) }

let pytorch_mha ?(effs = pytorch_gpu_effs) s = padded_mha_pipeline ~label:"PyTorch" effs s
let tf_mha s = padded_mha_pipeline ~label:"TensorFlow" tf_arm_effs s
let ft_mha s = padded_mha_pipeline ~label:"FT" ft_effs s

(** Masked SDPA in PyTorch (Fig. 18): full square attention matrix plus an
    explicit masking kernel. *)
let pytorch_masked_sdpa ?(effs = pytorch_gpu_effs) s : pipeline =
  let e = effs in
  let dh = fh s.head_size in
  let entries = padded_entries s in
  {
    label = "PyTorch";
    kernels =
      [
        kernel ~name:"QK^T" ~eff:e.hand ~overhead_ns:e.dispatch_ns (gemm_counts (entries *. dh));
        kernel ~name:"ApplyMask" ~eff:e.elementwise ~overhead_ns:e.dispatch_ns
          (elementwise_counts entries);
        kernel ~name:"Softmax" ~eff:e.softmax ~overhead_ns:e.dispatch_ns (softmax_counts entries);
        kernel ~name:"AttnV" ~eff:e.hand ~overhead_ns:e.dispatch_ns (gemm_counts (entries *. dh));
      ];
  }
