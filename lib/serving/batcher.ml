(** Continuous batch-former (see batcher.mli). *)

open Cora

type config = {
  max_batch : int;
  max_wait_us : float;
  headroom_us : float;
  tile : int;
}

let default_config = { max_batch = 8; max_wait_us = 2000.0; headroom_us = 0.0; tile = 4 }

(* ------------------------------------------------------------------ *)
(* Pure bin-packing                                                    *)

module Pack = struct
  let ceilmult n m = if m <= 0 then n else (n + m - 1) / m * m

  type bin = { members : int array; tiles : int; cuts : int array }

  type plan = {
    bins : bin array;
    elems_actual : int;
    elems_padded : int;
    elems_naive : int;
  }

  let weight ~tile rows = Array.fold_left (fun acc r -> acc + ceilmult r tile) 0 rows

  (* First-fit-decreasing over tile-aligned row weights.

     Members are sorted by (weight desc, raw lengths lex, index) — a total
     deterministic order that doubles as the length-signature bucketing:
     equal-length requests are adjacent, so they land in the same bin and
     the bin's max-len (naive) padding envelope stays tight.  The tile
     capacity is the ideal per-bin load at the minimum bin count, floored
     at the heaviest member so everything fits somewhere; bins are also
     capped at [max_batch] members. *)
  let pack ~tile ~max_batch (members : int array array) : plan =
    if tile < 1 then invalid_arg "Batcher.Pack.pack: tile must be >= 1";
    if max_batch < 1 then invalid_arg "Batcher.Pack.pack: max_batch must be >= 1";
    let n = Array.length members in
    let w = Array.map (weight ~tile) members in
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        match compare w.(b) w.(a) with
        | 0 -> ( match compare members.(a) members.(b) with 0 -> compare a b | c -> c)
        | c -> c)
      order;
    let total = Array.fold_left ( + ) 0 w in
    let min_bins = (n + max_batch - 1) / max_batch in
    let wmax = Array.fold_left max 0 w in
    let cap = max wmax (if min_bins = 0 then 0 else (total + min_bins - 1) / min_bins) in
    let bins : (int list ref * int ref) list ref = ref [] in
    Array.iter
      (fun i ->
        let rec place = function
          | [] -> bins := !bins @ [ (ref [ i ], ref w.(i)) ]
          | (mem, tl) :: rest ->
              if List.length !mem < max_batch && !tl + w.(i) <= cap then begin
                mem := i :: !mem;
                tl := !tl + w.(i)
              end
              else place rest
        in
        place !bins)
      order;
    let bins =
      Array.of_list
        (List.map
           (fun (mem, tl) ->
             let members_arr = Array.of_list (List.rev !mem) in
             let wts = Array.map (fun i -> w.(i)) members_arr in
             (* advisory chunk cuts for parallel execution, balanced on the
                tile weights — the Cost_model proxy the engine itself uses *)
             let cuts =
               Runtime.Engine.balance_chunks wts (min 4 (Array.length members_arr))
             in
             { members = members_arr; tiles = !tl; cuts })
           !bins)
    in
    let elems_actual =
      Array.fold_left (fun acc rows -> acc + Array.fold_left ( + ) 0 rows) 0 members
    in
    let elems_padded = Array.fold_left ( + ) 0 w in
    let elems_naive =
      Array.fold_left
        (fun acc bin ->
          let nrows = ref 0 and maxrow = ref 0 in
          Array.iter
            (fun i ->
              let rows = members.(i) in
              nrows := !nrows + Array.length rows;
              Array.iter (fun r -> maxrow := max !maxrow r) rows)
            bin.members;
          acc + (!nrows * ceilmult !maxrow tile))
        0 bins
    in
    { bins; elems_actual; elems_padded; elems_naive }
end

(* Pack plans depend only on the members' row lengths and the knobs, so
   they memoize under the same kind of canonical raggedness signature the
   prelude cache uses ([Sig.of_rows]). *)
let plan_cache : (string, Pack.plan) Cache.t =
  Cache.create ~name:"batcher.plan" ~capacity:256 ()

let plan ~tile ~max_batch (members : int array array) : Pack.plan =
  let key = Printf.sprintf "(pack t%d b%d %s)" tile max_batch (Sig.canonical (Sig.of_rows members)) in
  match Cache.find plan_cache key with
  | Some p -> p
  | None ->
      let p = Pack.pack ~tile ~max_batch members in
      Cache.add plan_cache key p;
      p

(* ------------------------------------------------------------------ *)
(* Runtime: form, run, scatter                                         *)

type member = { m_lens : int array; m_deadline_us : float; m_id : int }

type outcome =
  | Served of { resp : Server.response; batch_id : int; batch_size : int }
  | Expired of { stage : string; batch_id : int; batch_size : int }
  | Failed of { exn : string; backtrace : string; batch_id : int; batch_size : int }

(* Raised by the mega-batch's stage check; never escapes [run]. *)
exception Batch_expired of string

let next_batch_id = Atomic.make 1

let batches_c = Obs.Metrics.counter "batcher.batches"
let members_c = Obs.Metrics.counter "batcher.members"
let evicted_c = Obs.Metrics.counter "batcher.evicted"
let expired_scatter_c = Obs.Metrics.counter "batcher.expired_at_scatter"
let degraded_c = Obs.Metrics.counter "frontend.degraded"
let actual_c = Obs.Metrics.counter "batcher.elems_actual"
let padded_c = Obs.Metrics.counter "batcher.elems_padded"
let naive_c = Obs.Metrics.counter "batcher.elems_naive"
let size_h = Obs.Metrics.histogram "batch.size"
let waste_h = Obs.Metrics.histogram "batch.padding_waste"
let form_h = Obs.Metrics.histogram "batch.form_us"

let now_us = Obs.Trace_sink.now_us

(* One member's view of the mega-batch response: its own output slice and
   checksum, stage/model times scaled by its tile share, and the batch's
   cache accounting attributed to the first member only so stream totals
   stay exact (prelude_hit and the signature are genuinely shared). *)
let member_response (resp : Server.response) ~(first : bool) ~(share : float)
    (out : float array option) : Server.response =
  let checksum =
    match out with None -> 0.0 | Some a -> Array.fold_left ( +. ) 0.0 a
  in
  let kernels_ns = resp.Server.kernels_ns *. share in
  let prelude_host_ns = if first then resp.Server.prelude_host_ns else 0.0 in
  let prelude_copy_ns = if first then resp.Server.prelude_copy_ns else 0.0 in
  {
    resp with
    Server.model_ns = kernels_ns +. prelude_host_ns +. prelude_copy_ns;
    kernels_ns;
    prelude_host_ns;
    prelude_copy_ns;
    compile_hits = (if first then resp.Server.compile_hits else 0);
    compile_misses = (if first then resp.Server.compile_misses else 0);
    engine_hits = (if first then resp.Server.engine_hits else 0);
    engine_misses = (if first then resp.Server.engine_misses else 0);
    arena_hits = (if first then resp.Server.arena_hits else 0);
    arena_misses = (if first then resp.Server.arena_misses else 0);
    stages_us = List.map (fun (s, us) -> (s, us *. share)) resp.Server.stages_us;
    counters = (if first then resp.Server.counters else None);
    out;
    checksum;
  }

let run ?fallback (cfg : config) (srv : Server.t) (w : Workload.t)
    (members : member array) : outcome array =
  let bd =
    match w.Workload.batching with
    | Some b -> b
    | None ->
        invalid_arg
          ("Batcher.run: workload " ^ w.Workload.name ^ " has no batching descriptor")
  in
  let n = Array.length members in
  let out = Array.make n (Expired { stage = "batch"; batch_id = 0; batch_size = 1 }) in
  let t_form = now_us () in
  (* deadline headroom: a member whose remaining budget cannot survive the
     batch is answered now instead of dragging the mega-batch down *)
  let live =
    Array.of_list
      (List.filter
         (fun i ->
           let alive = members.(i).m_deadline_us -. cfg.headroom_us >= t_form in
           if not alive then begin
             Obs.Metrics.incr evicted_c;
             out.(i) <- Expired { stage = "batch"; batch_id = 0; batch_size = 1 }
           end;
           alive)
         (List.init n Fun.id))
  in
  if Array.length live = 0 then out
  else begin
    let rows = Array.map (fun i -> bd.Workload.rows members.(i).m_lens) live in
    let p = plan ~tile:cfg.tile ~max_batch:cfg.max_batch rows in
    Obs.Metrics.observe form_h (now_us () -. t_form);
    Obs.Metrics.add actual_c p.Pack.elems_actual;
    Obs.Metrics.add padded_c p.Pack.elems_padded;
    Obs.Metrics.add naive_c p.Pack.elems_naive;
    Obs.Metrics.observe waste_h
      (if p.Pack.elems_padded = 0 then 0.0
       else 1.0 -. (float_of_int p.Pack.elems_actual /. float_of_int p.Pack.elems_padded));
    Array.iter
      (fun (bin : Pack.bin) ->
        let batch_id = Atomic.fetch_and_add next_batch_id 1 in
        let idxs = Array.map (fun j -> live.(j)) bin.Pack.members in
        let ms = Array.map (fun i -> members.(i)) idxs in
        let size = Array.length ms in
        Obs.Metrics.incr batches_c;
        Obs.Metrics.add members_c size;
        Obs.Metrics.observe size_h (float_of_int size);
        let lens_list = Array.to_list (Array.map (fun m -> m.m_lens) ms) in
        let mega = bd.Workload.merge lens_list in
        (* inputs: each member's solo [default_fill] values, routed through
           the descriptor's index localization — the bitwise-replay key *)
        (* pre-apply the window so the descriptor's staged offsets are
           computed once, not once per filled element *)
        let local = bd.Workload.local_index lens_list in
        let fill name idx = Server.default_fill name (local name idx) in
        (* the mega-batch itself runs under the most generous member
           deadline — aborting the shared run would punish every member
           for the tightest budget — but each member's own deadline is
           re-checked at scatter, so a member served past its budget is
           reported [Expired], never silently counted served *)
        let max_deadline =
          Array.fold_left (fun acc m -> Float.max acc m.m_deadline_us) neg_infinity ms
        in
        let stage_check stage =
          if now_us () > max_deadline then raise (Batch_expired stage)
        in
        let handle server =
          Obs.Span.with_span
            ~attrs:
              [
                ("workload", Obs.Trace_sink.Str w.Workload.name);
                ("batch_id", Obs.Trace_sink.Int batch_id);
                ("batch_size", Obs.Trace_sink.Int size);
              ]
            "batch.run"
            (fun () -> Server.handle ~stage_check ~fill server w mega)
        in
        match
          try handle srv
          with Runtime.Engine.Error _ when Option.is_some fallback ->
            (* graceful degradation, same as the unbatched path: retry
               the whole mega-batch once on the interpreter twin *)
            Obs.Metrics.incr degraded_c;
            handle (Option.get fallback)
        with
        | resp ->
            let outs =
              match resp.Server.out with
              | None -> Array.make size None
              | Some dense ->
                  Array.of_list (List.map Option.some (bd.Workload.split lens_list dense))
            in
            let wts =
              Array.map (fun m -> Pack.weight ~tile:cfg.tile (bd.Workload.rows m.m_lens)) ms
            in
            let wtot = Array.fold_left ( + ) 0 wts in
            let t_scatter = now_us () in
            (* shared cache/cost accounting rides on the first member that
               is actually served — attributing it to a scatter-expired
               member would drop it from stream totals *)
            let first_served = ref (-1) in
            Array.iteri
              (fun k i ->
                if !first_served < 0 && t_scatter <= members.(i).m_deadline_us then
                  first_served := k)
              idxs;
            Array.iteri
              (fun k i ->
                let m = members.(i) in
                let share =
                  if wtot = 0 then 1.0 /. float_of_int size
                  else float_of_int wts.(k) /. float_of_int wtot
                in
                (* scatter under the member's own trace context: the
                   [batch.member] span is the request's handle on which
                   batch served it and what its share of the work was *)
                Obs.Span.with_request m.m_id (fun () ->
                    Obs.Span.with_span
                      ~attrs:
                        [
                          ("batch_id", Obs.Trace_sink.Int batch_id);
                          ("batch_size", Obs.Trace_sink.Int size);
                          ("tile_share", Obs.Trace_sink.Float share);
                        ]
                      "batch.member"
                      (fun () ->
                        if t_scatter > m.m_deadline_us then begin
                          Obs.Metrics.incr expired_scatter_c;
                          out.(i) <- Expired { stage = "scatter"; batch_id; batch_size = size }
                        end
                        else
                          let r =
                            member_response resp ~first:(k = !first_served) ~share outs.(k)
                          in
                          out.(i) <- Served { resp = r; batch_id; batch_size = size })))
              idxs
        | exception Batch_expired stage ->
            Array.iter
              (fun i -> out.(i) <- Expired { stage; batch_id; batch_size = size })
              idxs
        | exception e ->
            let backtrace = Printexc.get_backtrace () in
            Array.iter
              (fun i ->
                out.(i) <-
                  Failed
                    { exn = Printexc.to_string e; backtrace; batch_id; batch_size = size })
              idxs)
      p.Pack.bins;
    out
  end
