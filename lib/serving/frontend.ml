(** Concurrent serving front-end (see frontend.mli). *)

type outcome =
  | Response of Server.response
  | Overloaded
  | Deadline_exceeded of string
  | Error of { exn : string; backtrace : string }

let outcome_label = function
  | Response _ -> "response"
  | Overloaded -> "overloaded"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Error _ -> "error"

(* Raised by the stage-check hook inside [Server.handle]; never escapes
   this module. *)
exception Expired of string

type ticket = {
  tk_id : int;  (** the request id: spans carry it as trace context *)
  mutable outcome : outcome option;
  t_lock : Mutex.t;
  t_cond : Condition.t;
}

type request = {
  id : int;
  workload : Workload.t;
  lens : int array;
  deadline_us : float;  (** absolute, [Trace_sink.now_us] clock; [infinity] = none *)
  submitted_us : float;
  ticket : ticket;
}

type t = {
  srv : Server.t;
  fallback : Server.t option;  (** [`Interp] twin of a [`Compiled] server *)
  capacity : int;
  default_deadline_ns : float;  (** relative; [infinity] = none *)
  batching : Batcher.config option;  (** [Some] routes workers through the batch-former *)
  q : request Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  wake : (Unix.file_descr * Unix.file_descr) option;
      (** batching only: a self-pipe the submit path writes after
          signalling [not_empty].  The stdlib [Condition] has no timed
          wait, so an open batching window sleeps in [Unix.select] on the
          read end with the window's remaining budget as the timeout — a
          submit wakes it immediately, an idle server blocks instead of
          burning a core, and formation latency no longer quantises to a
          poll interval. *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let now_us = Obs.Trace_sink.now_us

(* Wake any batching window blocked in [Unix.select].  Both ends are
   non-blocking: a full pipe already guarantees pending wakeups, so
   EAGAIN is dropped. *)
let wake_signal (fe_wake : (Unix.file_descr * Unix.file_descr) option) =
  match fe_wake with
  | None -> ()
  | Some (_, w) -> (
      (* best-effort: EAGAIN = pipe full = wakeups already pending;
         EBADF = already shut down *)
      try ignore (Unix.write w (Bytes.make 1 '\001') 0 1) with Unix.Unix_error _ -> ())

(* Sleep until a submit writes the wake pipe or [timeout_us] elapses.
   Several batch workers select on the same read end; whoever loses the
   race to drain it just sees EAGAIN and re-checks the queue — spurious
   wakeups are harmless, missed ones impossible (the byte is written
   after the request is enqueued under the lock). *)
let wake_wait (fe_wake : (Unix.file_descr * Unix.file_descr) option) ~(timeout_us : float) =
  match fe_wake with
  | None -> Unix.sleepf (Float.min timeout_us 200.0 /. 1e6)
  | Some (r, _) -> (
      let timeout_s = Float.max 0.0 (timeout_us /. 1e6) in
      match Unix.select [ r ] [] [] timeout_s with
      | [], _, _ -> ()
      | _ -> (
          let buf = Bytes.create 64 in
          try ignore (Unix.read r buf 0 64)
          with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())

(* module-level handles: metric lookup is off the per-request path *)
let accepted_c = Obs.Metrics.counter "frontend.accepted"
let rejected_c = Obs.Metrics.counter "frontend.rejected"
let served_c = Obs.Metrics.counter "frontend.served"
let deadline_c = Obs.Metrics.counter "frontend.deadline_exceeded"
let degraded_c = Obs.Metrics.counter "frontend.degraded"
let errors_c = Obs.Metrics.counter "frontend.errors"
let queue_wait_h = Obs.Metrics.histogram "frontend.queue_wait_us"
let queue_depth_g = Obs.Metrics.gauge "frontend.queue_depth"

(* Process-wide request ids: allocated at admission, carried as span
   trace context ([Obs.Span.with_request]) from the submitting domain
   into whichever worker domain serves the request, so every span either
   side records belongs to exactly one id. *)
let next_id = Atomic.make 1
let request_id (tk : ticket) = tk.tk_id

let fresh_ticket id =
  { tk_id = id; outcome = None; t_lock = Mutex.create (); t_cond = Condition.create () }

let resolve (tk : ticket) (o : outcome) =
  Mutex.lock tk.t_lock;
  if Option.is_none tk.outcome then begin
    tk.outcome <- Some o;
    Condition.broadcast tk.t_cond
  end;
  Mutex.unlock tk.t_lock

let await (tk : ticket) : outcome =
  Mutex.lock tk.t_lock;
  while Option.is_none tk.outcome do
    Condition.wait tk.t_cond tk.t_lock
  done;
  let o = Option.get tk.outcome in
  Mutex.unlock tk.t_lock;
  o

let peek (tk : ticket) : outcome option =
  Mutex.lock tk.t_lock;
  let o = tk.outcome in
  Mutex.unlock tk.t_lock;
  o

(* ------------------------------------------------------------------ *)
(* Worker side *)

let handle_with_deadline srv (r : request) : outcome =
  let stage_check stage = if now_us () > r.deadline_us then raise (Expired stage) in
  match Server.handle ~stage_check srv r.workload r.lens with
  | resp -> Response resp
  | exception Expired stage ->
      Obs.Metrics.incr deadline_c;
      Deadline_exceeded stage
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Obs.Metrics.incr errors_c;
      Error { exn = Printexc.to_string e; backtrace }

(* The request's flight-recorder entry: cache/stage detail from the
   response when it has one, outcome label alone otherwise. *)
let flight_of (r : request) ~(queue_wait_us : float) ?(batch_id = 0) ?(batch_size = 1)
    (o : outcome) : Obs.Flight.record =
  let base =
    {
      Obs.Flight.id = r.id;
      workload = r.workload.Workload.name;
      sig_hex = "";
      submitted_us = r.submitted_us;
      queue_wait_us;
      stages_us = [];
      outcome = outcome_label o;
      compile_hits = 0;
      compile_misses = 0;
      prelude_hit = false;
      engine_hits = 0;
      engine_misses = 0;
      arena_hits = 0;
      arena_misses = 0;
      batch_id;
      batch_size;
      tuner = "";
    }
  in
  match o with
  | Response resp ->
      {
        base with
        Obs.Flight.sig_hex = resp.Server.tables_hex;
        stages_us = resp.Server.stages_us;
        compile_hits = resp.Server.compile_hits;
        compile_misses = resp.Server.compile_misses;
        prelude_hit = resp.Server.prelude_hit;
        engine_hits = resp.Server.engine_hits;
        engine_misses = resp.Server.engine_misses;
        arena_hits = resp.Server.arena_hits;
        arena_misses = resp.Server.arena_misses;
        tuner = resp.Server.tuner;
      }
  | Overloaded | Deadline_exceeded _ | Error _ -> base

(* Fault isolation: everything a request can throw is converted to a
   typed outcome here; nothing escapes into the worker loop, so a
   poisoned request can never take a worker domain (or a neighbour's
   pending request) down with it.

   The whole handling runs under the request's trace context
   ([Span.with_request]): every span recorded below — including those
   inside [Server.handle] — carries [r.id], reassemblable into one
   admission-to-outcome chain by [Trace_sink.events_for]. *)
let run_one (fe : t) (r : request) : outcome =
  Obs.Span.with_request r.id @@ fun () ->
  let queue_wait_us = now_us () -. r.submitted_us in
  Obs.Metrics.observe queue_wait_h queue_wait_us;
  let o =
    Obs.Span.with_span
      ~attrs:[ ("workload", Obs.Trace_sink.Str r.workload.Workload.name) ]
      "frontend.request"
    @@ fun () ->
    let o =
      if now_us () > r.deadline_us then begin
        (* enforced at dequeue: a request that waited out its budget in
           the queue is answered without doing any work *)
        Obs.Metrics.incr deadline_c;
        Deadline_exceeded "queue"
      end
      else
        let stage_check stage = if now_us () > r.deadline_us then raise (Expired stage) in
        match Server.handle ~stage_check fe.srv r.workload r.lens with
        | resp ->
            Obs.Metrics.incr served_c;
            Response resp
        | exception Expired stage ->
            Obs.Metrics.incr deadline_c;
            Deadline_exceeded stage
        | exception Runtime.Engine.Error _ when Option.is_some fe.fallback ->
            (* graceful degradation: the compiled engine rejected the
               kernel — retry once on the interpreter twin before giving
               up *)
            Obs.Metrics.incr degraded_c;
            let o = handle_with_deadline (Option.get fe.fallback) r in
            (match o with Response _ -> Obs.Metrics.incr served_c | _ -> ());
            o
        | exception e ->
            let backtrace = Printexc.get_backtrace () in
            Obs.Metrics.incr errors_c;
            Error { exn = Printexc.to_string e; backtrace }
    in
    Obs.Span.add_attr "outcome" (Obs.Trace_sink.Str (outcome_label o));
    o
  in
  Obs.Flight.record (flight_of r ~queue_wait_us o);
  (match o with
  | Deadline_exceeded _ | Error _ ->
      (* post-mortem: dump the ring (throttled, and only when armed) *)
      ignore (Obs.Flight.auto_dump ~reason:(outcome_label o))
  | Response _ | Overloaded -> ());
  o

let rec worker_loop (fe : t) =
  Mutex.lock fe.lock;
  let rec take () =
    if not (Queue.is_empty fe.q) then begin
      let r = Queue.pop fe.q in
      Obs.Metrics.set queue_depth_g (Queue.length fe.q);
      Condition.signal fe.not_full;
      Some r
    end
    else if fe.closing then None
    else begin
      Condition.wait fe.not_empty fe.lock;
      take ()
    end
  in
  let req = take () in
  Mutex.unlock fe.lock;
  match req with
  | None -> () (* closing and drained: the worker retires *)
  | Some r ->
      resolve r.ticket (run_one fe r);
      worker_loop fe

(* ------------------------------------------------------------------ *)
(* Batched worker side *)

(* Drain one batching window: block for the first request, then hold the
   window open — taking whatever else arrives — until it has [max_batch]
   requests or [max_wait_us] has passed.  The open window sleeps on the
   wake pipe with the remaining budget as the select timeout (see [wake]);
   every submit writes the pipe, so arrivals cut the wait short instead
   of landing between polls. *)
let drain_window (fe : t) (cfg : Batcher.config) : request list option =
  Mutex.lock fe.lock;
  let rec first () =
    if not (Queue.is_empty fe.q) then Some (Queue.pop fe.q)
    else if fe.closing then None
    else begin
      Condition.wait fe.not_empty fe.lock;
      first ()
    end
  in
  match first () with
  | None ->
      Mutex.unlock fe.lock;
      None
  | Some r0 ->
      let acc = ref [ r0 ] and count = ref 1 in
      let t0 = now_us () in
      let rec fill () =
        while !count < cfg.Batcher.max_batch && not (Queue.is_empty fe.q) do
          acc := Queue.pop fe.q :: !acc;
          incr count
        done;
        if !count < cfg.Batcher.max_batch && not fe.closing then begin
          let remaining_us = cfg.Batcher.max_wait_us -. (now_us () -. t0) in
          if remaining_us > 0.0 then begin
            Mutex.unlock fe.lock;
            wake_wait fe.wake ~timeout_us:remaining_us;
            Mutex.lock fe.lock;
            fill ()
          end
        end
      in
      fill ();
      Obs.Metrics.set queue_depth_g (Queue.length fe.q);
      Condition.broadcast fe.not_full;
      Mutex.unlock fe.lock;
      Some (List.rev !acc)

(* Serve one window's worth of same-workload requests through the
   batch-former and resolve every ticket from the scattered outcomes. *)
let run_batched (fe : t) (cfg : Batcher.config) (w : Workload.t) (rs : request list) =
  let rs = Array.of_list rs in
  let t_deq = now_us () in
  let members =
    Array.map
      (fun r -> { Batcher.m_lens = r.lens; m_deadline_us = r.deadline_us; m_id = r.id })
      rs
  in
  let outcomes =
    try Batcher.run ?fallback:fe.fallback cfg fe.srv w members
    with e ->
      (* forming itself failed: fail every member; the worker survives *)
      let backtrace = Printexc.get_backtrace () in
      Obs.Metrics.incr errors_c;
      Array.map
        (fun _ ->
          Batcher.Failed
            { exn = Printexc.to_string e; backtrace; batch_id = 0; batch_size = 1 })
        members
  in
  Array.iteri
    (fun i bo ->
      let r = rs.(i) in
      let queue_wait_us = t_deq -. r.submitted_us in
      Obs.Metrics.observe queue_wait_h queue_wait_us;
      let o, batch_id, batch_size =
        match bo with
        | Batcher.Served { resp; batch_id; batch_size } ->
            Obs.Metrics.incr served_c;
            (Response resp, batch_id, batch_size)
        | Batcher.Expired { stage; batch_id; batch_size } ->
            Obs.Metrics.incr deadline_c;
            (Deadline_exceeded stage, batch_id, batch_size)
        | Batcher.Failed { exn; backtrace; batch_id; batch_size } ->
            Obs.Metrics.incr errors_c;
            (Error { exn; backtrace }, batch_id, batch_size)
      in
      Obs.Flight.record (flight_of r ~queue_wait_us ~batch_id ~batch_size o);
      (match o with
      | Deadline_exceeded _ | Error _ ->
          ignore (Obs.Flight.auto_dump ~reason:(outcome_label o))
      | Response _ | Overloaded -> ());
      resolve r.ticket o)
    outcomes

(* A drained window may mix workloads; batching groups by workload name
   (the stream drivers use one adapter instance per name), and workloads
   without a batching descriptor fall back to the one-request path. *)
let serve_window (fe : t) (cfg : Batcher.config) (reqs : request list) =
  let groups : (string, request list ref) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = r.workload.Workload.name in
      match Hashtbl.find_opt groups key with
      | Some l -> l := r :: !l
      | None ->
          Hashtbl.add groups key (ref [ r ]);
          order := key :: !order)
    reqs;
  List.iter
    (fun key ->
      let rs = List.rev !(Hashtbl.find groups key) in
      let w = (List.hd rs).workload in
      match w.Workload.batching with
      | None -> List.iter (fun r -> resolve r.ticket (run_one fe r)) rs
      | Some _ -> run_batched fe cfg w rs)
    (List.rev !order)

let rec batch_worker_loop (fe : t) (cfg : Batcher.config) =
  match drain_window fe cfg with
  | None -> () (* closing and drained: the worker retires *)
  | Some reqs ->
      serve_window fe cfg reqs;
      batch_worker_loop fe cfg

(* ------------------------------------------------------------------ *)
(* Client side *)

let create ?(domains = 4) ?(capacity = 64) ?deadline_ns ?batching (srv : Server.t) : t =
  if domains < 1 then invalid_arg "Frontend.create: domains must be >= 1";
  if capacity < 1 then invalid_arg "Frontend.create: capacity must be >= 1";
  (* outcomes carry backtraces; recording costs nothing on the happy path *)
  Printexc.record_backtrace true;
  let fallback =
    match Server.engine srv with
    | `Compiled -> Some (Server.with_engine srv `Interp)
    | `Interp -> None
  in
  let wake =
    match batching with
    | None -> None
    | Some _ ->
        let r, w = Unix.pipe () in
        Unix.set_nonblock r;
        Unix.set_nonblock w;
        Some (r, w)
  in
  let fe =
    {
      srv;
      fallback;
      capacity;
      default_deadline_ns = Option.value deadline_ns ~default:infinity;
      batching;
      q = Queue.create ();
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      wake;
      closing = false;
      workers = [];
    }
  in
  let loop =
    match batching with
    | None -> fun () -> worker_loop fe
    | Some cfg -> fun () -> batch_worker_loop fe cfg
  in
  fe.workers <- List.init domains (fun _ -> Domain.spawn loop);
  fe

let deadline_of fe deadline_ns submitted_us =
  let rel = match deadline_ns with Some ns -> ns | None -> fe.default_deadline_ns in
  if rel = infinity then infinity else submitted_us +. (rel /. 1e3)

(* [wait_for_space] selects admission policy: reject (submit) vs
   backpressure (run_stream). *)
let enqueue ~wait_for_space ?deadline_ns (fe : t) (w : Workload.t) (lens : int array) :
    ticket =
  let id = Atomic.fetch_and_add next_id 1 in
  (* admission runs under the request's trace context too: the
     [frontend.submit] span carries the same id the worker-side spans
     will, stitching both domains into one per-request chain *)
  Obs.Span.with_request id @@ fun () ->
  Obs.Span.with_span
    ~attrs:[ ("workload", Obs.Trace_sink.Str w.Workload.name) ]
    "frontend.submit"
  @@ fun () ->
  let ticket = fresh_ticket id in
  let submitted_us = now_us () in
  let deadline_us = deadline_of fe deadline_ns submitted_us in
  let r = { id; workload = w; lens; deadline_us; submitted_us; ticket } in
  Mutex.lock fe.lock;
  if wait_for_space then
    while Queue.length fe.q >= fe.capacity && not fe.closing do
      Condition.wait fe.not_full fe.lock
    done;
  let admitted = (not fe.closing) && Queue.length fe.q < fe.capacity in
  if admitted then begin
    Queue.push r fe.q;
    Obs.Metrics.set queue_depth_g (Queue.length fe.q);
    Condition.signal fe.not_empty
  end;
  Mutex.unlock fe.lock;
  if admitted then wake_signal fe.wake;
  Obs.Span.add_attr "admitted" (Obs.Trace_sink.Str (if admitted then "yes" else "no"));
  if admitted then Obs.Metrics.incr accepted_c
  else begin
    Obs.Metrics.incr rejected_c;
    resolve ticket Overloaded
  end;
  ticket

let submit ?deadline_ns fe w lens = enqueue ~wait_for_space:false ?deadline_ns fe w lens
let submit_wait ?deadline_ns fe w lens = enqueue ~wait_for_space:true ?deadline_ns fe w lens

let run_stream ?deadline_ns (fe : t) (w : Workload.t) (items : int array array) :
    outcome array =
  let tickets =
    Array.map (fun lens -> enqueue ~wait_for_space:true ?deadline_ns fe w lens) items
  in
  Array.map await tickets

let shutdown (fe : t) =
  Mutex.lock fe.lock;
  fe.closing <- true;
  Condition.broadcast fe.not_empty;
  Condition.broadcast fe.not_full;
  Mutex.unlock fe.lock;
  wake_signal fe.wake;
  List.iter Domain.join fe.workers;
  fe.workers <- [];
  match fe.wake with
  | None -> ()
  | Some (r, w) ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ())

let queue_length (fe : t) =
  Mutex.lock fe.lock;
  let n = Queue.length fe.q in
  Mutex.unlock fe.lock;
  n
