(** Concurrent serving front-end: a pool of worker domains in front of
    {!Server.handle}, with explicit admission control, per-request
    deadlines and fault isolation.

    {2 Queueing model}

    Requests enter a bounded FIFO queue ([~capacity], default 64) and are
    drained by [~domains] worker domains.  {!submit} never blocks: when
    the queue is full the request is {e rejected immediately} with a
    typed {!Overloaded} outcome and counted in [frontend.rejected] —
    under overload the server sheds load at the front door instead of
    growing an unbounded backlog.  {!run_stream} is the paced
    alternative: it applies backpressure (waits for a queue slot) rather
    than rejecting, which is what a replay driver wants.

    {2 Deadline semantics}

    A request may carry a deadline (relative, in nanoseconds, fixed at
    submission).  It is checked when the request is dequeued — a request
    that waited out its budget in the queue is answered
    [Deadline_exceeded "queue"] without doing any work — and again
    between the pipeline stages of {!Server.handle} ("compile",
    "prelude", "launch", "execute", via its [?stage_check] hook), so an
    expired request stops at the next stage boundary rather than running
    to completion.  Stages are not interrupted mid-flight; the stage
    name in the outcome says how far the request got.  Counted in
    [frontend.deadline_exceeded].

    {2 Fault isolation and degradation}

    An exception escaping one request's workload is caught at the worker
    loop, converted into an {!Error} outcome carrying the exception text
    and backtrace, and counted in [frontend.errors] — it never kills the
    worker domain, and later requests are served normally.  One failure
    is special-cased: if a [`Compiled]-engine server raises
    {!Runtime.Engine.Error} (the engine rejecting a kernel it cannot
    compile), the request is retried {e once} on an [`Interp] twin of
    the server (graceful degradation, counted in [frontend.degraded]);
    only if that retry also fails does the client see an error.

    Every submitted request resolves to exactly one outcome; {!shutdown}
    drains already-admitted requests before the workers exit.

    {2 Telemetry}

    Every request gets a process-unique id at admission ({!request_id}),
    carried as span trace context ({!Obs.Span.with_request}) on both the
    submitting domain (the [frontend.submit] span) and the worker domain
    (the [frontend.request] span and everything {!Server.handle} records
    inside it) — filter the trace sink with
    {!Obs.Trace_sink.events_for} to reassemble one request's chain.
    Each completed request also appends a summary to the
    {!Obs.Flight} ring (queue wait, per-stage wall times, raggedness
    signature, cache hits, outcome); error and deadline outcomes trigger
    {!Obs.Flight.auto_dump}.  The [frontend.queue_depth] gauge tracks
    the queue at every enqueue/dequeue. *)

type outcome =
  | Response of Server.response  (** served normally (or on the degraded engine) *)
  | Overloaded  (** rejected at admission: the queue was full *)
  | Deadline_exceeded of string
      (** expired; the payload is the stage reached ("queue", "compile",
          "prelude", "launch", "execute") *)
  | Error of { exn : string; backtrace : string }
      (** the workload raised; the worker survived *)

(** A submitted request's future outcome. *)
type ticket

type t

(** [create srv] — spawn the worker pool.  [~domains] workers (default
    4, >= 1), queue bound [~capacity] (default 64, >= 1),
    [?deadline_ns] a default relative deadline applied to every request
    that does not carry its own.  If [srv] runs the [`Compiled] engine,
    an [`Interp] twin is created for degraded retries.

    [?batching] switches the workers to continuous batching: each worker
    drains a window of requests (up to [max_batch], holding the window
    open up to [max_wait_us] once the first request lands), groups it by
    workload, and serves each group through {!Batcher.run} as tile-packed
    ragged mega-batches — outputs and telemetry are scattered back per
    request, so tickets, outcomes, deadlines ([Deadline_exceeded "batch"]
    for members evicted at formation) and flight records behave exactly
    as in the unbatched mode.  Workloads without a {!Workload.batching}
    descriptor are served as singletons even under [?batching]. *)
val create :
  ?domains:int ->
  ?capacity:int ->
  ?deadline_ns:float ->
  ?batching:Batcher.config ->
  Server.t ->
  t

(** Non-blocking, admission-controlled submission: returns a ticket that
    is already resolved to {!Overloaded} when the queue is full (or the
    front-end is shutting down).  [?deadline_ns] overrides the
    front-end's default deadline for this request. *)
val submit : ?deadline_ns:float -> t -> Workload.t -> int array -> ticket

(** Backpressure submission: wait for a queue slot instead of rejecting
    (the admission policy of {!run_stream}, exposed for drivers that
    interleave submission with their own sampling). *)
val submit_wait : ?deadline_ns:float -> t -> Workload.t -> int array -> ticket

(** The request id allocated at admission — the [req] trace-context id
    on every span this request records, and the [id] of its
    {!Obs.Flight} record. *)
val request_id : ticket -> int

(** Block until the request resolves.  Idempotent. *)
val await : ticket -> outcome

(** [Some o] once resolved, without blocking. *)
val peek : ticket -> outcome option

(** Paced replay: submit every item in order — waiting for queue space
    instead of rejecting (backpressure) — and await all outcomes.
    Returns one outcome per item, in submission order. *)
val run_stream : ?deadline_ns:float -> t -> Workload.t -> int array array -> outcome array

(** Drain admitted requests, stop the workers, join the domains.
    Subsequent {!submit}s resolve to {!Overloaded}.  Idempotent. *)
val shutdown : t -> unit

(** Number of requests currently queued (diagnostic). *)
val queue_length : t -> int

val outcome_label : outcome -> string
