type t = {
  seed : int;
  shapes : int array array;
  items : int array array;
}

let generate ~(workload : Workload.t) ?(pool = 4) ~n ~seed () : t =
  let rng = Workloads.Rng.create seed in
  let shapes = Array.init pool (fun _ -> workload.Workload.sample rng) in
  let items = Array.init n (fun _ -> Workloads.Rng.choose rng shapes) in
  { seed; shapes; items }

let repeat ~shape ~n ~seed : t = { seed; shapes = [| shape |]; items = Array.make n shape }

let replay (srv : Server.t) (w : Workload.t) (s : t) : Server.response list =
  Array.to_list (Array.map (fun lens -> Server.handle srv w lens) s.items)
