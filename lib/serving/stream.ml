type t = {
  seed : int;
  shapes : int array array;
  items : int array array;
}

let generate ~(workload : Workload.t) ?(pool = 4) ~n ~seed () : t =
  let rng = Workloads.Rng.create seed in
  let shapes = Array.init pool (fun _ -> workload.Workload.sample rng) in
  let items = Array.init n (fun _ -> Workloads.Rng.choose rng shapes) in
  { seed; shapes; items }

let repeat ~shape ~n ~seed : t = { seed; shapes = [| shape |]; items = Array.make n shape }

let replay (srv : Server.t) (w : Workload.t) (s : t) : Server.response list =
  Array.to_list (Array.map (fun lens -> Server.handle srv w lens) s.items)

(* ---- Trace-driven decode load generator ----

   A trace is a set of sessions; each session is one prefill step (the
   initial KV-cache lengths, as drawn by the workload's sampler) followed
   by [steps] decode steps, every cache row one token longer than the
   step before.  Sessions arrive in bursts and belong to tenants whose
   class fixes their deadline.  Events within a session are strictly
   ordered — a decode step is meaningless before its predecessor — and
   both drivers below preserve that order. *)

type phase = Prefill | Decode of int

type event = {
  session : int;
  tenant : int;
  phase : phase;
  lens : int array;  (** raggedness vector submitted for this step *)
  arrival_us : float;  (** offset from trace start (bursty) *)
  deadline_ns : float option;  (** the tenant class's deadline *)
}

type trace = {
  t_seed : int;
  sessions : int;
  steps : int;  (** decode steps per session (excluding prefill) *)
  events : event array;  (** session-major, step-minor *)
}

let phase_label = function Prefill -> "prefill" | Decode k -> "decode" ^ string_of_int k

let generate_trace ~(workload : Workload.t) ?(sessions = 8) ?(steps = 8) ?(burst = 4)
    ?(burst_gap_us = 200.0) ?(classes = [| None |]) ~seed () : trace =
  if sessions < 1 || steps < 0 then invalid_arg "Stream.generate_trace";
  let rng = Workloads.Rng.create seed in
  let events = ref [] in
  for s = 0 to sessions - 1 do
    let base = workload.Workload.sample rng in
    let tenant = s mod Array.length classes in
    let deadline_ns = classes.(tenant) in
    (* burst [s / burst] opens at a fixed gap; members jitter inside it *)
    let arrive0 =
      (float_of_int (s / burst) *. burst_gap_us) +. (Workloads.Rng.float rng *. 20.0)
    in
    for t = 0 to steps do
      let lens = Array.map (fun l -> l + t) base in
      let phase = if t = 0 then Prefill else Decode t in
      (* decode steps trail their predecessor; the offset only matters to
         a paced driver — ordering is enforced by the drivers themselves *)
      let arrival_us = arrive0 +. (float_of_int t *. 50.0) in
      events := { session = s; tenant; phase; lens; arrival_us; deadline_ns } :: !events
    done
  done;
  { t_seed = seed; sessions; steps; events = Array.of_list (List.rev !events) }

(* Serial oracle: one request at a time, in session-major step order (the
   per-session order every driver must preserve; cross-session order is
   irrelevant to the outputs, which depend only on the lens vector). *)
let replay_trace (srv : Server.t) (w : Workload.t) (tr : trace) : Server.response array =
  Array.map (fun (e : event) -> Server.handle srv w e.lens) tr.events

(* Concurrent driver: per-session software pipelining through a
   front-end.  Step [t+1] of a session is submitted only after its step
   [t] resolved — the KV-cache append semantics, and what guarantees the
   predecessor's prelude is already cached when the delta path looks it
   up.  Distinct sessions overlap freely: while we await one session's
   step, every other session's current step is already in flight.  With
   [pace > 0], prefill submissions honour the trace's bursty arrival
   offsets (scaled by [pace]); [pace = 0] submits as fast as the
   pipeline allows. *)
let run_trace ?(pace = 0.0) (fe : Frontend.t) (w : Workload.t) (tr : trace) :
    (event * Frontend.outcome) array =
  let per_step = tr.steps + 1 in
  let out = Array.make (Array.length tr.events) None in
  let tickets = Array.make tr.sessions None in
  let t0 = Unix.gettimeofday () in
  let submit (i : int) =
    let e = tr.events.(i) in
    if pace > 0.0 && e.phase = Prefill then begin
      let due = t0 +. (e.arrival_us *. 1e-6 *. pace) in
      let dt = due -. Unix.gettimeofday () in
      if dt > 0.0 then Unix.sleepf dt
    end;
    tickets.(e.session) <- Some (i, Frontend.submit_wait ?deadline_ns:e.deadline_ns fe w e.lens)
  in
  for t = 0 to tr.steps do
    for s = 0 to tr.sessions - 1 do
      (match tickets.(s) with
      | Some (i, tk) -> out.(i) <- Some (tr.events.(i), Frontend.await tk)
      | None -> ());
      submit ((s * per_step) + t)
    done
  done;
  Array.iter
    (function
      | Some (i, tk) -> out.(i) <- Some (tr.events.(i), Frontend.await tk) | None -> ())
    tickets;
  Array.map (function Some r -> r | None -> assert false) out
