(** Serving workloads: adapters from a raggedness vector (the only part of
    a request that varies) to a compiled, executable job.

    Each adapter rebuilds its operator and schedule from scratch on every
    request — exactly what a serving system presented with "the same"
    model would do — so the compile cache ({!Cora.Lower.with_memo}) is what
    makes repeated structures cheap, and the concrete tables are what key
    the prelude cache.  [job.lenv] is constructed from [job.tables] alone,
    so {!Cora.Sig.of_tables} over the tables fully determines the prelude
    build. *)

type job = {
  kernels : Cora.Lower.kernel list;  (** execution order *)
  launches : Machine.Launch.t list;  (** same kernels, grouped for timing *)
  tables : (string * int array) list;
      (** concrete length tables — the batch's raggedness signature *)
  lenv : Cora.Lenfun.env;  (** built from [tables], nothing else *)
  out_name : string;  (** name of the tensor holding the final result *)
}

(** How {!Serving.Batcher} concatenates several requests of this workload
    into one mega-batch and scatters the results back.  Each function
    takes the batch members' raggedness vectors (in mega-batch order) as
    its first argument.

    The contract binding the four functions together: [build (merge ls)]
    must compute, for each member, bitwise the same output rows as
    [build lens] alone would — given inputs filled through
    [local_index] — and [split] must cut those rows back out of the
    mega-batch's dense output in each member's solo dense layout.  That
    is what lets the front-end serve a mega-batch and still answer every
    request with the bytes a solo replay would produce. *)
type batching = {
  rows : int array -> int array;
      (** per-row lengths of one request — what the bin-packer
          tile-aligns and weighs (e.g. fig1's lens themselves, vgemm's
          [ms] segment) *)
  merge : int array list -> int array;
      (** concatenate member raggedness vectors into the mega-batch's *)
  local_index : int array list -> string -> int list -> int list;
      (** rewrite a mega-batch tensor index into the owning member's
          local frame (identity for tensors without a batch dim), so
          {!Server.default_fill} yields the member's solo input values.
          Staged: applying the window's lens list precomputes the member
          offsets, so callers should partially apply it once per
          mega-batch and reuse the returned closure per element *)
  split : int array list -> float array -> float array list;
      (** scatter the mega-batch's dense output into one dense block per
          member, each bitwise equal to the member's solo output *)
}

type t = {
  name : string;
  sample : Workloads.Rng.t -> int array;
      (** draw one request's raggedness vector *)
  build : int array -> job;  (** compile the job for that vector *)
  batching : batching option;
      (** [None] (e.g. trmm) — the batcher serves requests as singletons *)
}

(** Fig. 1 of the paper: [O\[b\]\[j\] = 2 * A\[b\]\[j\]] with ragged [j],
    loop-padded and guarded.  Raggedness vector = the row lengths. *)
val fig1 : ?batch:int -> ?max_len:int -> unit -> t

(** Variable-sized batched gemm (§7.1).  Raggedness vector = the
    concatenation [ms @ ns @ ks]; dimensions are drawn from
    [dims_choices] and must be multiples of [tile]. *)
val vgemm : ?batch:int -> ?tile:int -> ?dims_choices:int array -> unit -> t

(** Triangular matmul, split + balanced (§7.1).  Raggedness vector =
    [\[| n |\]] drawn from [sizes]; the closed-form [tri] length function
    is materialised as an explicit table so it can key the prelude
    cache. *)
val trmm : ?tile:int -> ?sizes:int array -> unit -> t

(** Transformer encoder layer (§7.2), batch lengths sampled from
    [dataset] (sorted descending, §D.2).  [~base:true] uses the paper's
    base model; the default tiny model keeps interpretation affordable. *)
val encoder : ?base:bool -> ?batch:int -> dataset:Workloads.Datasets.t -> unit -> t

(** The four adapters above with bench-friendly defaults, keyed by name
    ([fig1], [vgemm], [trmm], [encoder]); raises on unknown names. *)
val by_name : ?dataset:Workloads.Datasets.t -> string -> t
