(** Serving workloads: adapters from a raggedness vector (the only part of
    a request that varies) to a compiled, executable job.

    Each adapter rebuilds its operator and schedule from scratch on every
    request — exactly what a serving system presented with "the same"
    model would do — so the compile cache ({!Cora.Lower.with_memo}) is what
    makes repeated structures cheap, and the concrete tables are what key
    the prelude cache.  [job.lenv] is constructed from [job.tables] alone,
    so {!Cora.Sig.of_tables} over the tables fully determines the prelude
    build. *)

type job = {
  kernels : Cora.Lower.kernel list;  (** execution order *)
  launches : Machine.Launch.t list;  (** same kernels, grouped for timing *)
  tables : (string * int array) list;
      (** concrete length tables — the batch's raggedness signature *)
  lenv : Cora.Lenfun.env;  (** built from [tables], nothing else *)
  out_name : string;  (** name of the tensor holding the final result *)
}

type t = {
  name : string;
  sample : Workloads.Rng.t -> int array;
      (** draw one request's raggedness vector *)
  build : int array -> job;  (** compile the job for that vector *)
}

(** Fig. 1 of the paper: [O\[b\]\[j\] = 2 * A\[b\]\[j\]] with ragged [j],
    loop-padded and guarded.  Raggedness vector = the row lengths. *)
val fig1 : ?batch:int -> ?max_len:int -> unit -> t

(** Variable-sized batched gemm (§7.1).  Raggedness vector = the
    concatenation [ms @ ns @ ks]; dimensions are drawn from
    [dims_choices] and must be multiples of [tile]. *)
val vgemm : ?batch:int -> ?tile:int -> ?dims_choices:int array -> unit -> t

(** Triangular matmul, split + balanced (§7.1).  Raggedness vector =
    [\[| n |\]] drawn from [sizes]; the closed-form [tri] length function
    is materialised as an explicit table so it can key the prelude
    cache. *)
val trmm : ?tile:int -> ?sizes:int array -> unit -> t

(** Transformer encoder layer (§7.2), batch lengths sampled from
    [dataset] (sorted descending, §D.2).  [~base:true] uses the paper's
    base model; the default tiny model keeps interpretation affordable. *)
val encoder : ?base:bool -> ?batch:int -> dataset:Workloads.Datasets.t -> unit -> t

(** The four adapters above with bench-friendly defaults, keyed by name
    ([fig1], [vgemm], [trmm], [encoder]); raises on unknown names. *)
val by_name : ?dataset:Workloads.Datasets.t -> string -> t
