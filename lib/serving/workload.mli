(** Serving workloads: adapters from a raggedness vector (the only part of
    a request that varies) to a compiled, executable job.

    Each adapter rebuilds its operator and schedule from scratch on every
    request — exactly what a serving system presented with "the same"
    model would do — so the compile cache ({!Cora.Lower.with_memo}) is what
    makes repeated structures cheap, and the concrete tables are what key
    the prelude cache.  [job.lenv] is constructed from [job.tables] alone,
    so {!Cora.Sig.of_tables} over the tables fully determines the prelude
    build. *)

type job = {
  kernels : Cora.Lower.kernel list;  (** execution order *)
  launches : Machine.Launch.t list;  (** same kernels, grouped for timing *)
  tables : (string * int array) list;
      (** concrete length tables — the batch's raggedness signature *)
  lenv : Cora.Lenfun.env;  (** built from [tables], nothing else *)
  out_name : string;  (** name of the tensor holding the final result *)
}

(** How {!Serving.Batcher} concatenates several requests of this workload
    into one mega-batch and scatters the results back.  Each function
    takes the batch members' raggedness vectors (in mega-batch order) as
    its first argument.

    The contract binding the four functions together: [build (merge ls)]
    must compute, for each member, bitwise the same output rows as
    [build lens] alone would — given inputs filled through
    [local_index] — and [split] must cut those rows back out of the
    mega-batch's dense output in each member's solo dense layout.  That
    is what lets the front-end serve a mega-batch and still answer every
    request with the bytes a solo replay would produce. *)
type batching = {
  rows : int array -> int array;
      (** per-row lengths of one request — what the bin-packer
          tile-aligns and weighs (e.g. fig1's lens themselves, vgemm's
          [ms] segment) *)
  merge : int array list -> int array;
      (** concatenate member raggedness vectors into the mega-batch's *)
  local_index : int array list -> string -> int list -> int list;
      (** rewrite a mega-batch tensor index into the owning member's
          local frame (identity for tensors without a batch dim), so
          {!Server.default_fill} yields the member's solo input values.
          Staged: applying the window's lens list precomputes the member
          offsets, so callers should partially apply it once per
          mega-batch and reuse the returned closure per element *)
  split : int array list -> float array -> float array list;
      (** scatter the mega-batch's dense output into one dense block per
          member, each bitwise equal to the member's solo output *)
}

(** The schedule-autotuning descriptor: what the online tuner
    ({!Autotune.Tuner}) may search for this workload.

    The bitwise contract: every point in [space] must produce a job whose
    unpacked output equals [build]'s bitwise — candidates may only move
    data-axis loop structure (splits, fusion, loop padding, grid binding,
    guard-elision where coverage provably stays exact), never reduction
    order or storage layout.  Adapters enforce this by construction (e.g.
    vgemm only admits tiles dividing every [m]/[n] because its schedule
    elides guards). *)
type tunable = {
  tables_of : int array -> (string * int array) list;
      (** the job's length tables without compiling it — with the
          workload name and opt level, this keys the tuner memo
          ([Sig.of_tables]) so a lookup costs no lowering *)
  space : int array -> Autotune.Space.point list;
      (** candidate schedule points for this raggedness vector (may
          depend on it, e.g. divisibility filters); the hand schedule is
          the implicit baseline and is never pruned *)
  build_tuned : Autotune.Space.point -> int array -> job;
      (** compile the job at one candidate point *)
}

(** One memoized serving decision: the built job, the tuner verdict that
    produced it, and the request-invariant key derivations a repeat
    request would otherwise recompute — the tables' raggedness signature
    and the prelude-cache key.  A hit replays the whole compile+prelude
    front of the pipeline with two bounded-cache lookups and no [Sig] or
    def-list work.  Deliberately {e not} the built prelude itself: the
    prelude cache's LRU bound must keep governing prelude memory, so an
    evicted prelude rebuilds even on a job-memo hit.  [c_epoch] is
    {!Autotune.Tuner.epoch} at insertion time — autotuned entries are
    ignored after a {!Autotune.Tuner.clear}, so the Sig-keyed tuner memo
    stays the source of truth. *)
type cached_job = {
  c_epoch : int;
  c_job : job;
  c_state : string;  (** tuner state to report: ["off"], ["hand"], ["tuned"] *)
  c_variant : string;  (** schedule variant label for the launch-model key *)
  c_opt : int option;  (** tuned point's engine opt-level override, if any *)
  c_sig : Cora.Sig.t;  (** [Sig.of_tables c_job.tables], precomputed *)
  c_pkey : Cora.Sig.t;  (** {!Cora.Prelude_cache.key_of}, precomputed *)
}

type t = {
  name : string;
  sample : Workloads.Rng.t -> int array;
      (** draw one request's raggedness vector *)
  build : int array -> job;  (** compile the job for that vector *)
  batching : batching option;
      (** [None] (e.g. trmm) — the batcher serves requests as singletons *)
  tunable : tunable option;
      (** [None] — the tuner always serves the hand schedule *)
  prev_tables : (int array -> (int array * (string * int array) list) option) option;
      (** Predecessor-step shape for incremental prelude maintenance.
          [Some f] marks an autoregressive workload: [f lens] returns the
          raggedness vector and the tables (same names, same order as
          [job.tables]) of the step whose prelude the current step's can
          be delta-updated from, or [None] when this step has no
          predecessor (e.g. right after prefill).  The vector lets the
          server look the predecessor up in [job_cache] and reuse its
          baked prelude key; the tables derive the key on a memo miss.
          Correctness never depends on the prediction — a predecessor
          absent from the prelude cache just falls back to a full
          build. *)
  job_cache : (string, cached_job) Cora.Cache.t;
      (** per-instance memo of built jobs with their tuner decision baked
          in, keyed by (serving mode, raggedness vector) — mode-prefixed
          (["hand"] vs ["auto|<opt>"]) because the tuner's choice depends
          on the opt level while the hand build does not.  A repeat
          request skips job construction, the per-kernel [Sig]
          computation a compile-memo hit still pays, *and* the tuner-memo
          key derivation: steady-state autotuned serving does exactly one
          lookup, same as hand serving.  Per instance, because [build]
          closes over this value's configuration: two workloads with the
          same name but different configurations can never collide.
          Consulted by {!Server.handle} only when its compile cache is
          enabled, so a cache-bypassed differential replay rebuilds from
          scratch. *)
}

(** Empty every instance's [job_cache], across all workloads ever
    constructed in this process.  Called by {!Server.reset_caches}: a
    reset must leave no memoized jobs behind, or a workload derived with
    an effectful [build] (tests do this to gate or fail a worker) would
    have its build skipped. *)
val clear_caches : unit -> unit

(** Build a runtime environment from concrete tables — the adapters'
    shared invariant: the environment is the tables and nothing else
    (which is what lets {!Cora.Sig.of_tables} key the prelude cache). *)
val lenv_of_tables : (string * int array) list -> Cora.Lenfun.env

(** Fig. 1 of the paper: [O\[b\]\[j\] = 2 * A\[b\]\[j\]] with ragged [j],
    loop-padded and guarded.  Raggedness vector = the row lengths. *)
val fig1 : ?batch:int -> ?max_len:int -> unit -> t

(** Variable-sized batched gemm (§7.1).  Raggedness vector = the
    concatenation [ms @ ns @ ks]; dimensions are drawn from
    [dims_choices] and must be multiples of [tile]. *)
val vgemm : ?batch:int -> ?tile:int -> ?dims_choices:int array -> unit -> t

(** Triangular matmul, split + balanced (§7.1).  Raggedness vector =
    [\[| n |\]] drawn from [sizes]; the closed-form [tri] length function
    is materialised as an explicit table so it can key the prelude
    cache. *)
val trmm : ?tile:int -> ?sizes:int array -> unit -> t

(** Transformer encoder layer (§7.2), batch lengths sampled from
    [dataset] (sorted descending, §D.2).  [~base:true] uses the paper's
    base model; the default tiny model keeps interpretation affordable. *)
val encoder : ?base:bool -> ?batch:int -> dataset:Workloads.Datasets.t -> unit -> t

(** One autoregressive decode step ({!Transformer.Decoder.build_decode}):
    the new token attends to a KV cache of [src(b)] entries.  Raggedness
    vector = the cache lengths; [sample] draws the {e initial} (prefill)
    lengths and a decode stream grows them by one per step.  Sets
    [prev_tables] so the serving path delta-updates each step's prelude
    from its predecessor's. *)
val decode : ?batch:int -> ?max_src:int -> unit -> t

(** The adapters above with bench-friendly defaults, keyed by name
    ([fig1], [vgemm], [trmm], [encoder], [decode]); raises on unknown
    names. *)
val by_name : ?dataset:Workloads.Datasets.t -> string -> t
