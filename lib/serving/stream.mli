(** Deterministic request streams: a pool of distinct batch shapes drawn
    from the workload's sampler, replayed in random order.  All
    randomness flows through {!Workloads.Rng} from one seed, so a stream
    is exactly reproducible — the seed is part of the bench's JSON
    output line. *)

type t = {
  seed : int;
  shapes : int array array;  (** the pool of distinct raggedness vectors *)
  items : int array array;  (** one entry per request, drawn from [shapes] *)
}

(** [generate ~workload ~n ~seed ()] — [n] requests over a pool of
    [pool] (default 4) distinct shapes.  With [n >> pool], most requests
    repeat an earlier shape, which is what gives the caches their hits. *)
val generate : workload:Workload.t -> ?pool:int -> n:int -> seed:int -> unit -> t

(** [repeat ~shape ~n ~seed] — the degenerate stream of one shape [n]
    times (the ×10 repeated-batch scenario of the acceptance tests). *)
val repeat : shape:int array -> n:int -> seed:int -> t

(** Replay through a server, in order; returns one response per item. *)
val replay : Server.t -> Workload.t -> t -> Server.response list
