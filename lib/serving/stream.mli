(** Deterministic request streams: a pool of distinct batch shapes drawn
    from the workload's sampler, replayed in random order.  All
    randomness flows through {!Workloads.Rng} from one seed, so a stream
    is exactly reproducible — the seed is part of the bench's JSON
    output line. *)

type t = {
  seed : int;
  shapes : int array array;  (** the pool of distinct raggedness vectors *)
  items : int array array;  (** one entry per request, drawn from [shapes] *)
}

(** [generate ~workload ~n ~seed ()] — [n] requests over a pool of
    [pool] (default 4) distinct shapes.  With [n >> pool], most requests
    repeat an earlier shape, which is what gives the caches their hits. *)
val generate : workload:Workload.t -> ?pool:int -> n:int -> seed:int -> unit -> t

(** [repeat ~shape ~n ~seed] — the degenerate stream of one shape [n]
    times (the ×10 repeated-batch scenario of the acceptance tests). *)
val repeat : shape:int array -> n:int -> seed:int -> t

(** Replay through a server, in order; returns one response per item. *)
val replay : Server.t -> Workload.t -> t -> Server.response list

(** {2 Trace-driven decode load generation}

    A trace models autoregressive serving: sessions of one prefill step
    (initial KV-cache lengths from the workload's sampler) followed by
    [steps] decode steps, each growing every cache row by one token.
    Sessions arrive in bursts and carry their tenant class's deadline.
    Per-session step order is semantic (a decode step extends its
    predecessor's cache) and both drivers preserve it. *)

type phase = Prefill | Decode of int  (** decode step number, 1-based *)

type event = {
  session : int;
  tenant : int;
  phase : phase;
  lens : int array;  (** raggedness vector submitted for this step *)
  arrival_us : float;  (** offset from trace start (bursty) *)
  deadline_ns : float option;  (** the tenant class's deadline *)
}

type trace = {
  t_seed : int;
  sessions : int;
  steps : int;  (** decode steps per session (excluding prefill) *)
  events : event array;  (** session-major, step-minor *)
}

val phase_label : phase -> string

(** [generate_trace ~workload ~seed ()] — [sessions] sessions of
    [1 + steps] events each, arriving in bursts of [burst] sessions
    opening every [burst_gap_us]; session [s] belongs to tenant
    [s mod Array.length classes] and inherits that class's deadline
    ([None] = no deadline).  Deterministic in [seed]. *)
val generate_trace :
  workload:Workload.t ->
  ?sessions:int ->
  ?steps:int ->
  ?burst:int ->
  ?burst_gap_us:float ->
  ?classes:float option array ->
  seed:int ->
  unit ->
  trace

(** Serial oracle: one request at a time, session-major step order.
    Returns one response per event, aligned with [trace.events]. *)
val replay_trace : Server.t -> Workload.t -> trace -> Server.response array

(** Concurrent driver: per-session software pipelining through the
    front-end — a session's step [t+1] is submitted only after its step
    [t] resolves, while distinct sessions overlap freely.  [pace > 0]
    honours the bursty arrival offsets for prefill submissions (scaled
    by [pace]); [pace = 0] (default) runs flat out.  Returns
    (event, outcome) pairs aligned with [trace.events]. *)
val run_trace :
  ?pace:float -> Frontend.t -> Workload.t -> trace -> (event * Frontend.outcome) array
