(** Continuous batch-former: bin-pack a window of admitted requests into
    tile-aligned ragged mega-batches, run each mega-batch through
    {!Server.handle} once, and scatter per-request outputs and telemetry
    back.

    The CoRa angle: a ragged mega-batch pads each row to
    [ceilmult (len, tile)] instead of the dense batcher's
    [max_len]-per-batch envelope, so concatenating requests of unequal
    lengths costs tile residue rather than max-len padding — the
    [batcher.elems_actual] / [batcher.elems_padded] / [batcher.elems_naive]
    counters quantify exactly that gap, and [batch.padding_waste] is the
    per-window [1 - actual/padded] fraction.

    {2 Bitwise replay contract}

    A request served inside a mega-batch returns bitwise the bytes a solo
    replay would: the workload's {!Workload.batching} descriptor localizes
    input fills to each member's own frame (through {!Server.handle}'s
    [?fill] hook) and slices the member's rows back out of the mega
    output.  [bench-stream --batching --smoke] and the batched
    differential tests enforce this end to end.

    {2 Telemetry scatter-back}

    Each served member gets its own {!Server.response}: its output slice
    and checksum, stage/model times scaled by its tile share of the
    batch, the (shared) prelude-hit flag and raggedness signature, and —
    on the first member only, so stream totals stay exact — the batch's
    cache and arena tallies.  The scatter runs under the member's own
    request trace-context and records a [batch.member] span tagged with
    [batch_id] / [batch_size] / [tile_share]. *)

type config = {
  max_batch : int;  (** max members per mega-batch (>= 1) *)
  max_wait_us : float;
      (** how long the front-end holds a forming window open for more
          requests once it has one *)
  headroom_us : float;
      (** a member whose deadline is closer than this at formation is
          evicted ([Expired] with stage ["batch"]) instead of batched *)
  tile : int;  (** row-length alignment quantum (>= 1) *)
}

(** [{max_batch = 8; max_wait_us = 2000.0; headroom_us = 0.0; tile = 4}] *)
val default_config : config

(** The pure bin-packer, exposed for property fuzzing. *)
module Pack : sig
  (** [ceilmult n m] — [n] rounded up to a multiple of [m] ([n] when
      [m <= 0]). *)
  val ceilmult : int -> int -> int

  type bin = {
    members : int array;
        (** indices into the pack input, in mega-batch order (weight
            descending — the length-signature bucketing) *)
    tiles : int;  (** total tile-aligned weight of the bin *)
    cuts : int array;
        (** advisory parallel-chunk cut points over [members], balanced
            on the tile weights via {!Runtime.Engine.balance_chunks} *)
  }

  type plan = {
    bins : bin array;
    elems_actual : int;  (** sum of all raw row lengths *)
    elems_padded : int;  (** sum of [ceilmult (row, tile)] — CoRa padding *)
    elems_naive : int;
        (** per-bin [rows * ceilmult (max_row, tile)] — the dense
            max-len-padded baseline; always [>= elems_padded] *)
  }

  (** [weight ~tile rows] — the request's tile-aligned row weight. *)
  val weight : tile:int -> int array -> int

  (** First-fit-decreasing over tile-aligned row weights; bins capped at
      [max_batch] members and at the ideal per-bin tile load.  Every
      member lands in exactly one bin; deterministic (ties broken by raw
      lengths, then input index).  Raises [Invalid_argument] when [tile]
      or [max_batch] is [< 1]. *)
  val pack : tile:int -> max_batch:int -> int array array -> plan
end

(** {!Pack.pack} memoized under a {!Cora.Sig.of_rows} signature of the
    members' row lengths (plus the two knobs), so repeating window
    compositions — the steady state of a paced stream — skip the packing
    work entirely. *)
val plan : tile:int -> max_batch:int -> int array array -> Pack.plan

type member = {
  m_lens : int array;  (** the request's raggedness vector *)
  m_deadline_us : float;  (** absolute, [Trace_sink.now_us] clock; [infinity] = none *)
  m_id : int;  (** request trace-context id for the scatter-back spans *)
}

type outcome =
  | Served of { resp : Server.response; batch_id : int; batch_size : int }
  | Expired of { stage : string; batch_id : int; batch_size : int }
      (** stage ["batch"] = evicted at formation ([batch_id] 0); any other
          stage = the whole mega-batch ran out of its most generous
          member deadline there *)
  | Failed of { exn : string; backtrace : string; batch_id : int; batch_size : int }

(** Form mega-batches from one drained window of a single workload and
    serve them.  Returns one outcome per member, in input order.  Members
    past their deadline (minus [headroom_us]) are evicted before packing.
    [?fallback] enables the same graceful degradation as the unbatched
    front-end path: a {!Runtime.Engine.Error} from the compiled engine
    retries the mega-batch once on the fallback server.  Raises
    [Invalid_argument] if the workload has no {!Workload.batching}
    descriptor. *)
val run :
  ?fallback:Server.t -> config -> Server.t -> Workload.t -> member array -> outcome array
