open Cora

type counters = (string * int) list

type response = {
  model_ns : float;
  kernels_ns : float;
  prelude_host_ns : float;
  prelude_copy_ns : float;
  compile_hits : int;
  compile_misses : int;
  prelude_hit : bool;
  engine_hits : int;
  engine_misses : int;
  arena_hits : int;
  arena_misses : int;
  tables_hex : string;
  tuner : string;
  tune_us : float;
  stages_us : (string * float) list;
  counters : counters option;
  out : float array option;
  checksum : float;
}

type t = {
  device : Machine.Device.t;
  compile_cache : bool;
  prelude_cache : bool;
  execute : bool;
  engine : Exec.engine;
  opt : Ir.Optimize.level;
  autotune : Autotune.Tuner.cfg option;
}

let create ?(device = Machine.Device.v100) ?(compile_cache = true) ?(prelude_cache = true)
    ?(execute = true) ?(engine = `Interp) ?(opt = Ir.Optimize.O0) ?autotune () : t =
  { device; compile_cache; prelude_cache; execute; engine; opt; autotune }

let compile_cache_enabled t = t.compile_cache
let prelude_cache_enabled t = t.prelude_cache
let engine t = t.engine
let opt_level t = t.opt
let autotune_enabled t = t.autotune <> None
let with_engine t engine = { t with engine }

(* Launch-model memo.  {!Machine.Launch.pipeline} is a pure function of
   the lowered kernels, the prelude and the device, but evaluating it
   enumerates every block — host work proportional to the grid, paid on
   every request even when compile and prelude both hit.  An autotuned
   schedule typically has *more* blocks than the hand one (that is where
   its modeled win comes from), so without this memo the tuned steady
   state would cost more host time per request than the hand steady
   state.  Keyed by the full request identity — workload, device, engine,
   opt level, schedule variant and the canonical raggedness signature
   (never the hash alone) — which determines the job and prelude exactly,
   hence the modeled time.  Values are a few floats; collisions are
   impossible (full-key compare) and eviction merely re-enumerates. *)
let launch_memo : (string, Machine.Launch.pipeline_time) Cache.t =
  Cache.create ~name:"launch_model" ~capacity:256 ()

let reset_caches () =
  Lower.clear_memo ();
  Prelude_cache.clear ();
  Exec.clear_engine_memo ();
  Autotune.Tuner.clear ();
  Cache.clear launch_memo;
  Workload.clear_caches ()

let default_fill name idx =
  let h =
    List.fold_left
      (fun acc i -> ((acc * 31) + i + 1) land 0xFFFFFF)
      (Hashtbl.hash name land 0xFFFF)
      idx
  in
  (float_of_int (h mod 1009) /. 504.5) -. 1.0

(* Execute the job's kernels through the selected engine.

   Cached kernels reference the tensor objects of whichever build first
   produced them, while uncached kernels of the same job (e.g. the
   hand-assembled softmax) reference this build's — so buffers are
   allocated per tensor *name* and bound to every instance.  Instances
   sharing a name are structurally identical (that is what made the
   compile key match), hence lay out identically under [job.lenv].

   Tensor storage comes from the process-wide {!Runtime.Buffer.Arena},
   rounded up to power-of-two size classes, and is released once the
   output has been unpacked (which copies) — so a steady-state request
   stream allocates no fresh float arrays after its working set of size
   classes is populated.  Acquired arrays are zero-filled, preserving the
   [Array.make]-fresh semantics (including zeroed padding) the kernels
   rely on; the extra class-rounding tail beyond the tensor's size is
   never addressed by a correct kernel. *)
type exec_stats = {
  x_engine_hits : int;
  x_engine_misses : int;
  x_arena_hits : int;
  x_arena_misses : int;
}

let execute ?(fill = default_fill) ?opt_override (srv : t) (job : Workload.job)
    (built : Prelude.built) : counters * float array * exec_stats =
  (* a tuned point may carry an engine opt-level override (the tuner's
     opt axis); every level is bitwise-identical, so this never changes
     the response payload *)
  let eff_opt = Option.value opt_override ~default:srv.opt in
  let arena = Runtime.Buffer.Arena.global in
  let arena_hits = ref 0 and arena_misses = ref 0 in
  let raggeds : (string, Ragged.t) Hashtbl.t = Hashtbl.create 16 in
  let bound : (Ir.Var.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k : Lower.kernel) -> Hashtbl.replace written k.Lower.out.Tensor.name ())
    job.Workload.kernels;
  let bindings = ref [] in
  let note (t : Tensor.t) =
    if not (Hashtbl.mem bound t.Tensor.buf) then begin
      Hashtbl.add bound t.Tensor.buf ();
      let r =
        match Hashtbl.find_opt raggeds t.Tensor.name with
        | Some r -> r
        | None ->
            let n = Tensor.size_elems t ~lenv:job.Workload.lenv in
            let a, recycled = Runtime.Buffer.Arena.acquire_class_counted arena n in
            if recycled then incr arena_hits else incr arena_misses;
            let r =
              {
                Ragged.tensor = t;
                buf = Runtime.Buffer.of_floats a;
                lenv = job.Workload.lenv;
                prefix_cache = Ragged.fresh_prefix_cache t;
              }
            in
            Hashtbl.add raggeds t.Tensor.name r;
            r
      in
      bindings := (t, r.Ragged.buf) :: !bindings
    end
  in
  Fun.protect ~finally:(fun () ->
      Hashtbl.iter
        (fun _ (r : Ragged.t) ->
          Runtime.Buffer.Arena.release arena (Runtime.Buffer.floats r.Ragged.buf))
        raggeds)
  @@ fun () ->
  List.iter
    (fun (k : Lower.kernel) ->
      note k.Lower.out;
      List.iter note k.Lower.reads)
    job.Workload.kernels;
  (* deterministic inputs: tensors read but never written *)
  Hashtbl.iter
    (fun name r -> if not (Hashtbl.mem written name) then Ragged.fill r (fill name))
    raggeds;
  (* Per-request compiled-kernel-memo tally, scoped in domain-local
     storage ([Exec.with_engine_stats]) — never global counter deltas,
     which double-count as soon as two requests overlap. *)
  let (env, _), estats =
    Exec.with_engine_stats (fun () ->
        Exec.run ~engine:srv.engine ~opt:eff_opt ~prelude:built ~lenv:job.Workload.lenv
          ~bindings:!bindings job.Workload.kernels)
  in
  let out =
    match Hashtbl.find_opt raggeds job.Workload.out_name with
    | Some r -> Ragged.unpack r
    | None -> invalid_arg ("serving: no tensor named " ^ job.Workload.out_name)
  in
  let stats =
    {
      x_engine_hits = estats.Exec.hits;
      x_engine_misses = estats.Exec.misses;
      x_arena_hits = !arena_hits;
      x_arena_misses = !arena_misses;
    }
  in
  (Runtime.Interp.stats env, out, stats)

let handle ?(stage_check = fun (_ : string) -> ()) ?fill (srv : t) (w : Workload.t)
    (lens : int array) : response =
  Obs.Span.with_span
    ~attrs:[ ("workload", Obs.Trace_sink.Str w.Workload.name) ]
    "serve.request"
  @@ fun () ->
  (* The per-request cache policy is threaded as an argument ([with_memo]
     scopes it in domain-local storage) and the hit/miss tally comes back
     from the lowering calls themselves — never from global counter
     deltas, which double-count as soon as two requests overlap. *)
  let stages = ref [] in
  let staged name f =
    stage_check name;
    let t0 = Obs.Trace_sink.now_us () in
    let v = f () in
    stages := (name, Obs.Trace_sink.now_us () -. t0) :: !stages;
    v
  in
  (* The raggedness vector rendered once — suffix of every per-instance
     memo key this request touches. *)
  let render_lens ls =
    let b = Buffer.create 48 in
    Array.iter
      (fun l ->
        Buffer.add_char b '|';
        Buffer.add_string b (string_of_int l))
      ls;
    Buffer.contents b
  in
  let lens_key = render_lens lens in
  (* The tuner decision is baked into the job memo: an autotuned server's
     steady-state request does exactly one lookup — same work as a hand
     server — and gets back the job to serve, the tuner state to report
     and the schedule-variant tag that keys the launch-model memo below.
     Keys are mode-prefixed ("auto|<opt>" vs "hand"), so an autotuned and
     an untuned server sharing one workload value can never read each
     other's entries, and auto entries are epoch-tagged so a
     [Autotune.Tuner.clear] invalidates them wholesale.  Only a miss (an
     unseen shape, or the first sighting after a wipe) pays the Sig work
     of the canonical tuner key; a true tuner miss additionally serves
     the hand schedule now and runs a budgeted tune after the response's
     pipeline, inserting the winner so the *next* request hits. *)
  let auto =
    match (srv.autotune, w.Workload.tunable) with
    | Some cfg, Some tn -> Some (cfg, tn)
    | _ -> None
  in
  let ep = Autotune.Tuner.epoch () in
  let jkey_prefix =
    match auto with
    | Some _ -> "auto|" ^ Ir.Optimize.level_name srv.opt
    | None -> "hand"
  in
  let jkey = jkey_prefix ^ lens_key in
  let variant_of (d : Autotune.Tuner.decision) =
    match d.Autotune.Tuner.point with
    | Some p -> "t " ^ Autotune.Space.to_string p
    | None -> "hand"
  in
  let state_of (d : Autotune.Tuner.decision) =
    if d.Autotune.Tuner.point = None then "hand" else "tuned"
  in
  let opt_of (d : Autotune.Tuner.decision) =
    match d.Autotune.Tuner.point with
    | Some p -> p.Autotune.Space.opt
    | None -> None
  in
  let insert_cached job state variant opt sig_ pkey =
    if srv.compile_cache then
      Cache.add w.Workload.job_cache jkey
        {
          Workload.c_epoch = ep;
          c_job = job;
          c_state = state;
          c_variant = variant;
          c_opt = opt;
          c_sig = sig_;
          c_pkey = pkey;
        }
  in
  (* [pending] carries the tune obligation (a true tuner miss) out of the
     compile stage; the tune itself runs after the staged pipeline.
     [baked] carries a memo hit's precomputed signature and prelude, so
     the hit path below skips the per-request Sig/defs/prelude-key work
     a compile-memo hit would still pay. *)
  let job, compile_hits, compile_misses, state0, variant, opt_ov, pending, baked =
    staged "compile" @@ fun () ->
    let cached =
      if srv.compile_cache then
        match Cache.find w.Workload.job_cache jkey with
        | Some cj when auto = None || cj.Workload.c_epoch = ep -> Some cj
        | _ -> None
      else None
    in
    match cached with
    | Some cj ->
        (* the whole job is memoized: every kernel in it is a (stronger
           form of a) compile-memo hit — no Sig even gets computed *)
        ( cj.Workload.c_job,
          List.length cj.Workload.c_job.Workload.kernels,
          0,
          cj.Workload.c_state,
          cj.Workload.c_variant,
          cj.Workload.c_opt,
          None,
          Some cj )
    | None -> (
        let build_with f =
          Lower.with_memo ~cache:srv.compile_cache (fun () ->
              Obs.Span.with_span "serve.compile" f)
        in
        match auto with
        | None ->
            let job, memo = build_with (fun () -> w.Workload.build lens) in
            (job, memo.Lower.hits, memo.Lower.misses, "off", "hand", None, None, None)
        | Some (cfg, tn) -> (
            let key =
              Autotune.Tuner.key ~workload:w.Workload.name
                ~tables:(tn.Workload.tables_of lens) ~opt:srv.opt
            in
            match Autotune.Tuner.lookup key with
            | Some d ->
                let variant = variant_of d and state = state_of d in
                let job, memo =
                  build_with (fun () ->
                      match d.Autotune.Tuner.point with
                      | Some p -> tn.Workload.build_tuned p lens
                      | None -> w.Workload.build lens)
                in
                ( job,
                  memo.Lower.hits,
                  memo.Lower.misses,
                  state,
                  variant,
                  opt_of d,
                  None,
                  None )
            | None ->
                (* serve the hand schedule now; tune post-pipeline *)
                let job, memo = build_with (fun () -> w.Workload.build lens) in
                (job, memo.Lower.hits, memo.Lower.misses, "miss", "hand", None,
                 Some (cfg, tn, key), None)))
  in
  (* Raggedness signature of the batch — the prelude-cache key, and the
     flight recorder's handle on "which shape was this". *)
  let tables_sig =
    match baked with
    | Some cj -> cj.Workload.c_sig
    | None -> Sig.of_tables job.Workload.tables
  in
  let tables_hex = Sig.to_hex tables_sig in
  let defs_of (j : Workload.job) =
    List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) j.Workload.kernels
  in
  let pkey_of (j : Workload.job) = Prelude_cache.key_of ~tables_sig (defs_of j) in
  let prelude_with ~pkey (j : Workload.job) =
    if srv.prelude_cache then
      match w.Workload.prev_tables with
      | Some prev_of ->
          (* Autoregressive workload: on a miss, delta-update from the
             predecessor step's cached prelude instead of rebuilding.  The
             predecessor's key reuses this job's defs — def names are
             length-independent, so the name set matches the one the
             predecessor was cached under. *)
          let prev () =
            match prev_of lens with
            | None -> None
            | Some (plens, ptabs) -> (
                (* The predecessor was usually just served here, so its
                   baked job memo entry carries the very prelude key its
                   prelude was cached under — reuse it and skip the Sig
                   re-derivation.  A memo miss derives the key from the
                   predicted tables instead. *)
                let baked_prev =
                  if srv.compile_cache then
                    match Cache.find w.Workload.job_cache (jkey_prefix ^ render_lens plens) with
                    | Some cj when auto = None || cj.Workload.c_epoch = ep ->
                        Some (cj.Workload.c_pkey, cj.Workload.c_job.Workload.lenv)
                    | _ -> None
                  else None
                in
                match baked_prev with
                | Some _ -> baked_prev
                | None ->
                    Some
                      ( Prelude_cache.key_of ~tables_sig:(Sig.of_tables ptabs) (defs_of j),
                        Workload.lenv_of_tables ptabs ))
          in
          Prelude_cache.build_delta ~key:pkey ~prev (fun () -> defs_of j) j.Workload.lenv
      | None -> Prelude_cache.build_keyed ~key:pkey (fun () -> defs_of j) j.Workload.lenv
    else (Prelude.build ~dedup_defs:true (defs_of j) j.Workload.lenv, false)
  in
  let pkey = match baked with Some cj -> cj.Workload.c_pkey | None -> pkey_of job in
  let built, prelude_hit =
    staged "prelude" @@ fun () ->
    Obs.Span.with_span "serve.prelude" (fun () -> prelude_with ~pkey job)
  in
  (* A fresh build with nothing left to tune is the memo's steady state:
     bake it (with its precomputed signature and prelude key) so the next
     same-key request replays the compile+prelude front with two bounded
     lookups.  A pending tune inserts instead after the search, below. *)
  (match (baked, pending) with
  | None, None -> insert_cached job state0 variant opt_ov tables_sig pkey
  | _ -> ());
  (* Model time: the launches are timed against the supplied prelude (no
     rebuild inside the pipeline); its host/copy cost is charged only when
     this request actually built it. *)
  let pt =
    staged "launch" @@ fun () ->
    let lkey =
      String.concat "|"
        [
          w.Workload.name;
          srv.device.Machine.Device.name;
          (match srv.engine with `Interp -> "interp" | `Compiled -> "compiled");
          Ir.Optimize.level_name srv.opt;
          variant;
          Sig.canonical tables_sig;
        ]
    in
    match Cache.find launch_memo lkey with
    | Some pt -> pt
    | None ->
        let pt =
          Machine.Launch.pipeline ~engine:srv.engine ~opt:srv.opt ~prelude:built
            ~device:srv.device ~lenv:job.Workload.lenv job.Workload.launches
        in
        Cache.add launch_memo lkey pt;
        pt
  in
  let prelude_host_ns, prelude_copy_ns =
    if prelude_hit then (0.0, 0.0) else Machine.Launch.prelude_cost ~device:srv.device built
  in
  let kernels_ns = pt.Machine.Launch.kernels_ns in
  let model_ns = kernels_ns +. prelude_host_ns +. prelude_copy_ns in
  let counters, out, xstats =
    staged "execute" @@ fun () ->
    if srv.execute then
      let c, o, s =
        Obs.Span.with_span "serve.execute" (fun () ->
            execute ?fill
              ?opt_override:(Option.map Ir.Optimize.level_of_int opt_ov)
              srv job built)
      in
      (Some c, Some o, s)
    else
      ( None,
        None,
        { x_engine_hits = 0; x_engine_misses = 0; x_arena_hits = 0; x_arena_misses = 0 } )
  in
  let checksum = match out with None -> 0.0 | Some a -> Array.fold_left ( +. ) 0.0 a in
  (* Warm the tuner memo *after* the staged pipeline — the response above
     was served from the hand schedule (stage names and order unchanged),
     and the tune's candidate lowerings go through the same compile memo
     (alpha-invariant keys) and prelude cache, so the winner's artifacts
     are already hot when the next same-signature request swaps it in. *)
  let tuner, tune_us =
    match pending with
    | None -> (state0, 0.0)
    | Some (cfg, tn, key) ->
        Autotune.Tuner.note_fallback ();
        let t0 = Obs.Trace_sink.now_us () in
        let tjob (j : Workload.job) =
          {
            Autotune.Tuner.kernels = j.Workload.kernels;
            launches = j.Workload.launches;
            lenv = j.Workload.lenv;
          }
        in
        let candidates =
          List.map
            (fun p -> (p, fun () -> tjob (tn.Workload.build_tuned p lens)))
            (tn.Workload.space lens)
        in
        let d, _ =
          Lower.with_memo ~cache:srv.compile_cache (fun () ->
              Autotune.Tuner.tune ~cfg ~device:srv.device ~key ~tables_sig ~hand:(tjob job)
                ~candidates ())
        in
        (* bake the winner into the job memo so the next request with
           this signature serves it with a single lookup.  The winner's
           prelude is already hot: the tune routed every candidate build
           through the prelude cache under the same schedule-invariant
           [tables_sig], so only the key is derived here. *)
        (match d.Autotune.Tuner.point with
        | None -> insert_cached job "hand" "hand" None tables_sig pkey
        | Some p ->
            let tuned, _ =
              Lower.with_memo ~cache:srv.compile_cache (fun () ->
                  tn.Workload.build_tuned p lens)
            in
            insert_cached tuned "tuned" (variant_of d) (opt_of d) tables_sig
              (pkey_of tuned));
        ("miss", Obs.Trace_sink.now_us () -. t0)
  in
  Obs.Metrics.observe (Obs.Metrics.histogram "serve.latency_ns") model_ns;
  Obs.Span.add_attr "model_ns" (Obs.Trace_sink.Float model_ns);
  Obs.Span.add_attr "compile_hits" (Obs.Trace_sink.Int compile_hits);
  Obs.Span.add_attr "prelude_hit" (Obs.Trace_sink.Str (if prelude_hit then "yes" else "no"));
  Obs.Span.add_attr "sig" (Obs.Trace_sink.Str tables_hex);
  {
    model_ns;
    kernels_ns;
    prelude_host_ns;
    prelude_copy_ns;
    compile_hits;
    compile_misses;
    prelude_hit;
    engine_hits = xstats.x_engine_hits;
    engine_misses = xstats.x_engine_misses;
    arena_hits = xstats.x_arena_hits;
    arena_misses = xstats.x_arena_misses;
    tables_hex;
    tuner;
    tune_us;
    stages_us = List.rev !stages;
    counters;
    out;
    checksum;
  }
