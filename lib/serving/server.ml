open Cora

type counters = (string * int) list

type response = {
  model_ns : float;
  kernels_ns : float;
  prelude_host_ns : float;
  prelude_copy_ns : float;
  compile_hits : int;
  compile_misses : int;
  prelude_hit : bool;
  counters : counters option;
  out : float array option;
  checksum : float;
}

type t = {
  device : Machine.Device.t;
  compile_cache : bool;
  prelude_cache : bool;
  execute : bool;
  engine : Exec.engine;
  opt : Ir.Optimize.level;
}

let create ?(device = Machine.Device.v100) ?(compile_cache = true) ?(prelude_cache = true)
    ?(execute = true) ?(engine = `Interp) ?(opt = Ir.Optimize.O0) () : t =
  { device; compile_cache; prelude_cache; execute; engine; opt }

let compile_cache_enabled t = t.compile_cache
let prelude_cache_enabled t = t.prelude_cache
let engine t = t.engine
let opt_level t = t.opt
let with_engine t engine = { t with engine }

let reset_caches () =
  Lower.clear_memo ();
  Prelude_cache.clear ();
  Exec.clear_engine_memo ()

let default_fill name idx =
  let h =
    List.fold_left
      (fun acc i -> ((acc * 31) + i + 1) land 0xFFFFFF)
      (Hashtbl.hash name land 0xFFFF)
      idx
  in
  (float_of_int (h mod 1009) /. 504.5) -. 1.0

(* Execute the job's kernels through the selected engine.

   Cached kernels reference the tensor objects of whichever build first
   produced them, while uncached kernels of the same job (e.g. the
   hand-assembled softmax) reference this build's — so buffers are
   allocated per tensor *name* and bound to every instance.  Instances
   sharing a name are structurally identical (that is what made the
   compile key match), hence lay out identically under [job.lenv].

   Tensor storage comes from the process-wide {!Runtime.Buffer.Arena},
   rounded up to power-of-two size classes, and is released once the
   output has been unpacked (which copies) — so a steady-state request
   stream allocates no fresh float arrays after its working set of size
   classes is populated.  Acquired arrays are zero-filled, preserving the
   [Array.make]-fresh semantics (including zeroed padding) the kernels
   rely on; the extra class-rounding tail beyond the tensor's size is
   never addressed by a correct kernel. *)
let execute (srv : t) (job : Workload.job) (built : Prelude.built) :
    counters * float array =
  let arena = Runtime.Buffer.Arena.global in
  let raggeds : (string, Ragged.t) Hashtbl.t = Hashtbl.create 16 in
  let bound : (Ir.Var.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k : Lower.kernel) -> Hashtbl.replace written k.Lower.out.Tensor.name ())
    job.Workload.kernels;
  let bindings = ref [] in
  let note (t : Tensor.t) =
    if not (Hashtbl.mem bound t.Tensor.buf) then begin
      Hashtbl.add bound t.Tensor.buf ();
      let r =
        match Hashtbl.find_opt raggeds t.Tensor.name with
        | Some r -> r
        | None ->
            let n = Tensor.size_elems t ~lenv:job.Workload.lenv in
            let a = Runtime.Buffer.Arena.acquire_class arena n in
            let r =
              { Ragged.tensor = t; buf = Runtime.Buffer.of_floats a; lenv = job.Workload.lenv }
            in
            Hashtbl.add raggeds t.Tensor.name r;
            r
      in
      bindings := (t, r.Ragged.buf) :: !bindings
    end
  in
  Fun.protect ~finally:(fun () ->
      Hashtbl.iter
        (fun _ (r : Ragged.t) ->
          Runtime.Buffer.Arena.release arena (Runtime.Buffer.floats r.Ragged.buf))
        raggeds)
  @@ fun () ->
  List.iter
    (fun (k : Lower.kernel) ->
      note k.Lower.out;
      List.iter note k.Lower.reads)
    job.Workload.kernels;
  (* deterministic inputs: tensors read but never written *)
  Hashtbl.iter
    (fun name r -> if not (Hashtbl.mem written name) then Ragged.fill r (default_fill name))
    raggeds;
  let env, _ =
    Exec.run ~engine:srv.engine ~opt:srv.opt ~prelude:built ~lenv:job.Workload.lenv
      ~bindings:!bindings job.Workload.kernels
  in
  let out =
    match Hashtbl.find_opt raggeds job.Workload.out_name with
    | Some r -> Ragged.unpack r
    | None -> invalid_arg ("serving: no tensor named " ^ job.Workload.out_name)
  in
  (Runtime.Interp.stats env, out)

let handle ?(stage_check = fun (_ : string) -> ()) (srv : t) (w : Workload.t)
    (lens : int array) : response =
  Obs.Span.with_span
    ~attrs:[ ("workload", Obs.Trace_sink.Str w.Workload.name) ]
    "serve.request"
  @@ fun () ->
  (* The per-request cache policy is threaded as an argument ([with_memo]
     scopes it in domain-local storage) and the hit/miss tally comes back
     from the lowering calls themselves — never from global counter
     deltas, which double-count as soon as two requests overlap. *)
  stage_check "compile";
  let job, memo =
    Lower.with_memo ~cache:srv.compile_cache (fun () ->
        Obs.Span.with_span "serve.compile" (fun () -> w.Workload.build lens))
  in
  let compile_hits = memo.Lower.hits and compile_misses = memo.Lower.misses in
  stage_check "prelude";
  let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) job.Workload.kernels in
  let built, prelude_hit =
    Obs.Span.with_span "serve.prelude" (fun () ->
        if srv.prelude_cache then
          let tables_sig = Sig.of_tables job.Workload.tables in
          Prelude_cache.build_cached ~tables_sig defs job.Workload.lenv
        else (Prelude.build ~dedup_defs:true defs job.Workload.lenv, false))
  in
  (* Model time: the launches are timed against the supplied prelude (no
     rebuild inside the pipeline); its host/copy cost is charged only when
     this request actually built it. *)
  stage_check "launch";
  let pt =
    Machine.Launch.pipeline ~engine:srv.engine ~opt:srv.opt ~prelude:built ~device:srv.device
      ~lenv:job.Workload.lenv job.Workload.launches
  in
  let prelude_host_ns, prelude_copy_ns =
    if prelude_hit then (0.0, 0.0) else Machine.Launch.prelude_cost ~device:srv.device built
  in
  let kernels_ns = pt.Machine.Launch.kernels_ns in
  let model_ns = kernels_ns +. prelude_host_ns +. prelude_copy_ns in
  stage_check "execute";
  let counters, out =
    if srv.execute then
      let c, o = Obs.Span.with_span "serve.execute" (fun () -> execute srv job built) in
      (Some c, Some o)
    else (None, None)
  in
  let checksum = match out with None -> 0.0 | Some a -> Array.fold_left ( +. ) 0.0 a in
  Obs.Metrics.observe (Obs.Metrics.histogram "serve.latency_ns") model_ns;
  Obs.Span.add_attr "model_ns" (Obs.Trace_sink.Float model_ns);
  Obs.Span.add_attr "compile_hits" (Obs.Trace_sink.Int compile_hits);
  Obs.Span.add_attr "prelude_hit" (Obs.Trace_sink.Str (if prelude_hit then "yes" else "no"));
  {
    model_ns;
    kernels_ns;
    prelude_host_ns;
    prelude_copy_ns;
    compile_hits;
    compile_misses;
    prelude_hit;
    counters;
    out;
    checksum;
  }
