open Cora

type counters = (string * int) list

type response = {
  model_ns : float;
  kernels_ns : float;
  prelude_host_ns : float;
  prelude_copy_ns : float;
  compile_hits : int;
  compile_misses : int;
  prelude_hit : bool;
  engine_hits : int;
  engine_misses : int;
  arena_hits : int;
  arena_misses : int;
  tables_hex : string;
  stages_us : (string * float) list;
  counters : counters option;
  out : float array option;
  checksum : float;
}

type t = {
  device : Machine.Device.t;
  compile_cache : bool;
  prelude_cache : bool;
  execute : bool;
  engine : Exec.engine;
  opt : Ir.Optimize.level;
}

let create ?(device = Machine.Device.v100) ?(compile_cache = true) ?(prelude_cache = true)
    ?(execute = true) ?(engine = `Interp) ?(opt = Ir.Optimize.O0) () : t =
  { device; compile_cache; prelude_cache; execute; engine; opt }

let compile_cache_enabled t = t.compile_cache
let prelude_cache_enabled t = t.prelude_cache
let engine t = t.engine
let opt_level t = t.opt
let with_engine t engine = { t with engine }

let reset_caches () =
  Lower.clear_memo ();
  Prelude_cache.clear ();
  Exec.clear_engine_memo ()

let default_fill name idx =
  let h =
    List.fold_left
      (fun acc i -> ((acc * 31) + i + 1) land 0xFFFFFF)
      (Hashtbl.hash name land 0xFFFF)
      idx
  in
  (float_of_int (h mod 1009) /. 504.5) -. 1.0

(* Execute the job's kernels through the selected engine.

   Cached kernels reference the tensor objects of whichever build first
   produced them, while uncached kernels of the same job (e.g. the
   hand-assembled softmax) reference this build's — so buffers are
   allocated per tensor *name* and bound to every instance.  Instances
   sharing a name are structurally identical (that is what made the
   compile key match), hence lay out identically under [job.lenv].

   Tensor storage comes from the process-wide {!Runtime.Buffer.Arena},
   rounded up to power-of-two size classes, and is released once the
   output has been unpacked (which copies) — so a steady-state request
   stream allocates no fresh float arrays after its working set of size
   classes is populated.  Acquired arrays are zero-filled, preserving the
   [Array.make]-fresh semantics (including zeroed padding) the kernels
   rely on; the extra class-rounding tail beyond the tensor's size is
   never addressed by a correct kernel. *)
type exec_stats = {
  x_engine_hits : int;
  x_engine_misses : int;
  x_arena_hits : int;
  x_arena_misses : int;
}

let execute ?(fill = default_fill) (srv : t) (job : Workload.job) (built : Prelude.built) :
    counters * float array * exec_stats =
  let arena = Runtime.Buffer.Arena.global in
  let arena_hits = ref 0 and arena_misses = ref 0 in
  let raggeds : (string, Ragged.t) Hashtbl.t = Hashtbl.create 16 in
  let bound : (Ir.Var.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k : Lower.kernel) -> Hashtbl.replace written k.Lower.out.Tensor.name ())
    job.Workload.kernels;
  let bindings = ref [] in
  let note (t : Tensor.t) =
    if not (Hashtbl.mem bound t.Tensor.buf) then begin
      Hashtbl.add bound t.Tensor.buf ();
      let r =
        match Hashtbl.find_opt raggeds t.Tensor.name with
        | Some r -> r
        | None ->
            let n = Tensor.size_elems t ~lenv:job.Workload.lenv in
            let a, recycled = Runtime.Buffer.Arena.acquire_class_counted arena n in
            if recycled then incr arena_hits else incr arena_misses;
            let r =
              {
                Ragged.tensor = t;
                buf = Runtime.Buffer.of_floats a;
                lenv = job.Workload.lenv;
                prefix_cache = Hashtbl.create 4;
              }
            in
            Hashtbl.add raggeds t.Tensor.name r;
            r
      in
      bindings := (t, r.Ragged.buf) :: !bindings
    end
  in
  Fun.protect ~finally:(fun () ->
      Hashtbl.iter
        (fun _ (r : Ragged.t) ->
          Runtime.Buffer.Arena.release arena (Runtime.Buffer.floats r.Ragged.buf))
        raggeds)
  @@ fun () ->
  List.iter
    (fun (k : Lower.kernel) ->
      note k.Lower.out;
      List.iter note k.Lower.reads)
    job.Workload.kernels;
  (* deterministic inputs: tensors read but never written *)
  Hashtbl.iter
    (fun name r -> if not (Hashtbl.mem written name) then Ragged.fill r (fill name))
    raggeds;
  (* Per-request compiled-kernel-memo tally, scoped in domain-local
     storage ([Exec.with_engine_stats]) — never global counter deltas,
     which double-count as soon as two requests overlap. *)
  let (env, _), estats =
    Exec.with_engine_stats (fun () ->
        Exec.run ~engine:srv.engine ~opt:srv.opt ~prelude:built ~lenv:job.Workload.lenv
          ~bindings:!bindings job.Workload.kernels)
  in
  let out =
    match Hashtbl.find_opt raggeds job.Workload.out_name with
    | Some r -> Ragged.unpack r
    | None -> invalid_arg ("serving: no tensor named " ^ job.Workload.out_name)
  in
  let stats =
    {
      x_engine_hits = estats.Exec.hits;
      x_engine_misses = estats.Exec.misses;
      x_arena_hits = !arena_hits;
      x_arena_misses = !arena_misses;
    }
  in
  (Runtime.Interp.stats env, out, stats)

let handle ?(stage_check = fun (_ : string) -> ()) ?fill (srv : t) (w : Workload.t)
    (lens : int array) : response =
  Obs.Span.with_span
    ~attrs:[ ("workload", Obs.Trace_sink.Str w.Workload.name) ]
    "serve.request"
  @@ fun () ->
  (* The per-request cache policy is threaded as an argument ([with_memo]
     scopes it in domain-local storage) and the hit/miss tally comes back
     from the lowering calls themselves — never from global counter
     deltas, which double-count as soon as two requests overlap. *)
  let stages = ref [] in
  let staged name f =
    stage_check name;
    let t0 = Obs.Trace_sink.now_us () in
    let v = f () in
    stages := (name, Obs.Trace_sink.now_us () -. t0) :: !stages;
    v
  in
  let job, memo =
    staged "compile" @@ fun () ->
    Lower.with_memo ~cache:srv.compile_cache (fun () ->
        Obs.Span.with_span "serve.compile" (fun () -> w.Workload.build lens))
  in
  let compile_hits = memo.Lower.hits and compile_misses = memo.Lower.misses in
  (* Raggedness signature of the batch — the prelude-cache key, and the
     flight recorder's handle on "which shape was this". *)
  let tables_sig = Sig.of_tables job.Workload.tables in
  let tables_hex = Sig.to_hex tables_sig in
  let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) job.Workload.kernels in
  let built, prelude_hit =
    staged "prelude" @@ fun () ->
    Obs.Span.with_span "serve.prelude" (fun () ->
        if srv.prelude_cache then Prelude_cache.build_cached ~tables_sig defs job.Workload.lenv
        else (Prelude.build ~dedup_defs:true defs job.Workload.lenv, false))
  in
  (* Model time: the launches are timed against the supplied prelude (no
     rebuild inside the pipeline); its host/copy cost is charged only when
     this request actually built it. *)
  let pt =
    staged "launch" @@ fun () ->
    Machine.Launch.pipeline ~engine:srv.engine ~opt:srv.opt ~prelude:built ~device:srv.device
      ~lenv:job.Workload.lenv job.Workload.launches
  in
  let prelude_host_ns, prelude_copy_ns =
    if prelude_hit then (0.0, 0.0) else Machine.Launch.prelude_cost ~device:srv.device built
  in
  let kernels_ns = pt.Machine.Launch.kernels_ns in
  let model_ns = kernels_ns +. prelude_host_ns +. prelude_copy_ns in
  let counters, out, xstats =
    staged "execute" @@ fun () ->
    if srv.execute then
      let c, o, s =
        Obs.Span.with_span "serve.execute" (fun () -> execute ?fill srv job built)
      in
      (Some c, Some o, s)
    else
      ( None,
        None,
        { x_engine_hits = 0; x_engine_misses = 0; x_arena_hits = 0; x_arena_misses = 0 } )
  in
  let checksum = match out with None -> 0.0 | Some a -> Array.fold_left ( +. ) 0.0 a in
  Obs.Metrics.observe (Obs.Metrics.histogram "serve.latency_ns") model_ns;
  Obs.Span.add_attr "model_ns" (Obs.Trace_sink.Float model_ns);
  Obs.Span.add_attr "compile_hits" (Obs.Trace_sink.Int compile_hits);
  Obs.Span.add_attr "prelude_hit" (Obs.Trace_sink.Str (if prelude_hit then "yes" else "no"));
  Obs.Span.add_attr "sig" (Obs.Trace_sink.Str tables_hex);
  {
    model_ns;
    kernels_ns;
    prelude_host_ns;
    prelude_copy_ns;
    compile_hits;
    compile_misses;
    prelude_hit;
    engine_hits = xstats.x_engine_hits;
    engine_misses = xstats.x_engine_misses;
    arena_hits = xstats.x_arena_hits;
    arena_misses = xstats.x_arena_misses;
    tables_hex;
    stages_us = List.rev !stages;
    counters;
    out;
    checksum;
  }
