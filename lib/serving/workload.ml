open Cora
module E = Ir.Expr

type job = {
  kernels : Lower.kernel list;
  launches : Machine.Launch.t list;
  tables : (string * int array) list;
  lenv : Lenfun.env;
  out_name : string;
}

type batching = {
  rows : int array -> int array;
  merge : int array list -> int array;
  local_index : int array list -> string -> int list -> int list;
  split : int array list -> float array -> float array list;
}

type tunable = {
  tables_of : int array -> (string * int array) list;
  space : int array -> Autotune.Space.point list;
  build_tuned : Autotune.Space.point -> int array -> job;
}

type cached_job = {
  c_epoch : int;
  c_job : job;
  c_state : string;
  c_variant : string;
  c_opt : int option;  (** tuned point's engine opt-level override *)
  c_sig : Sig.t;
  c_pkey : Sig.t;
}

type t = {
  name : string;
  sample : Workloads.Rng.t -> int array;
  build : int array -> job;
  batching : batching option;
  tunable : tunable option;
  prev_tables : (int array -> (int array * (string * int array) list) option) option;
  job_cache : (string, cached_job) Cache.t;
}

(* Per-instance memos (see the .mli note on why they must not be shared
   across instances).  Capacity covers a serving pool's distinct shapes
   times a handful of schedule variants.  Every instance's caches are
   also registered process-wide so {!Server.reset_caches} can wipe them
   — a test that derives a workload with an effectful [build] (e.g. a
   gate or a deliberate raise) relies on the reset actually emptying the
   job memo. *)
let clearers : (unit -> unit) list ref = ref []
let clearers_lock = Mutex.create ()

let register_clearer c =
  Mutex.lock clearers_lock;
  clearers := (fun () -> Cache.clear c) :: !clearers;
  Mutex.unlock clearers_lock

let clear_caches () =
  Mutex.lock clearers_lock;
  let cs = !clearers in
  Mutex.unlock clearers_lock;
  List.iter (fun f -> f ()) cs

let job_cache_of name =
  let c = Cache.create ~name:("job_build." ^ name) ~capacity:64 () in
  register_clearer c;
  c

(* The invariant every adapter maintains: the runtime environment is built
   from the tables and nothing else, so [Sig.of_tables tables] determines
   the prelude build and can safely key the cache. *)
let lenv_of_tables tables = List.map (fun (n, a) -> Lenfun.of_array n a) tables

(* ---- batching descriptor helpers ----

   Every batchable adapter concatenates its members along the leading
   batch dimension, so the three scatter/gather problems are the same
   shape everywhere: find which member owns a mega-batch row, rewrite the
   row index to that member's local row, and slice a member's rows back
   out of the mega-batch's dense (max-extent-padded) output. *)

(* [offsets counts] — leading-dim start of each member; [owner] finds the
   member holding mega row [b] (members are few, linear scan). *)
let offsets (counts : int list) : int array =
  let off = Array.make (List.length counts) 0 in
  ignore
    (List.fold_left
       (fun (i, acc) c ->
         off.(i) <- acc;
         (i + 1, acc + c))
       (0, 0) counts);
  off

(* Largest k with off.(k) <= b (binary search: the fill localization
   calls this once per dense element of the mega-batch). *)
let owner (off : int array) (b : int) : int =
  let lo = ref 0 and hi = ref (Array.length off - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if off.(mid) <= b then lo := mid else hi := mid - 1
  done;
  !lo

(* Rewrite a batch-leading multi-index into the owning member's local
   frame, so [Server.default_fill] produces the member's solo values. *)
let localize (off : int array) (idx : int list) : int list =
  match idx with
  | b :: rest ->
      let k = owner off b in
      (b - off.(k)) :: rest
  | [] -> []

(* Slice one member's [rows_k x inner_k] dense block out of the
   mega-batch's [rows_total x inner_mega] dense output ([inner] = product
   of the trailing dense extents).  Rows are contiguous along the leading
   dim; a member's trailing padding columns are zero in both layouts
   (only valid indices are ever unpacked), so copying [inner_k] of
   [inner_mega] columns reproduces the solo dense block bitwise. *)
let slice_rows ~(mega : float array) ~(inner_mega : int) ~(row_off : int)
    ~(rows : int) ~(inner : int) : float array =
  Array.init (rows * inner) (fun i ->
      let r = i / inner and c = i mod inner in
      mega.(((row_off + r) * inner_mega) + c))

(* --- Fig. 1: O[b][j] = 2 * A[b][j], ragged j, padded + guarded --- *)

(* One job per schedule-space point.  [point = None] is the hand schedule
   (loop-pad j by 2, guarded, serial).  Every point keeps [Guard] mode and
   touches only data axes, so the guarded stores cover exactly the valid
   (b, j) pairs and the output is bitwise the hand schedule's. *)
let fig1_job ?(point : Autotune.Space.point option) lens : job =
  let batch = Array.length lens in
  let bdim = Dim.make "b" and jdim = Dim.make "j" in
  let lensf = Lenfun.make "lens" in
  let extents = [ Shape.fixed batch; Shape.ragged ~dep:bdim ~fn:lensf ] in
  let a = Tensor.create ~name:"A" ~dims:[ bdim; jdim ] ~extents in
  let o = Tensor.create ~name:"O" ~dims:[ bdim; jdim ] ~extents in
  let op =
    Op.compute ~name:"double" ~out:o ~loop_extents:extents ~reads:[ a ] (fun idx ->
        E.mul (E.float 2.0) (Op.access a idx))
  in
  let s = Schedule.create op in
  Schedule.set_guard_mode s Schedule.Guard;
  let b = Schedule.axis_of_dim s 0 and j = Schedule.axis_of_dim s 1 in
  let tables = [ ("lens", lens) ] in
  let mk kernels =
    {
      kernels;
      launches = List.map Machine.Launch.single kernels;
      tables;
      lenv = lenv_of_tables tables;
      out_name = o.Tensor.name;
    }
  in
  match point with
  | None ->
      Schedule.pad_loop s j 2;
      mk [ Lower.lower s ]
  | Some p when p.Autotune.Space.fuse ->
      (* fused ragged vloop over all (b, j) pairs, bulk-padded *)
      let f = Schedule.fuse s b j in
      if p.Autotune.Space.pad > 0 then Schedule.pad_loop s f p.Autotune.Space.pad;
      (match p.Autotune.Space.split with
      | 0 -> if p.Autotune.Space.grid then Schedule.bind_block s f
      | t ->
          let fo, fi = Schedule.split s f t in
          if p.Autotune.Space.grid then begin
            Schedule.bind_block s fo;
            Schedule.bind_thread s fi
          end);
      mk [ Lower.lower s ]
  | Some p when p.Autotune.Space.op_split ->
      (* operation splitting: complete tiles unguarded, remainder peeled *)
      let t = max 2 p.Autotune.Space.split in
      let jo, ji = Schedule.split s j t in
      if p.Autotune.Space.grid then begin
        Schedule.bind_block s b;
        Schedule.bind_block s jo;
        Schedule.bind_thread s ji
      end;
      let main =
        Lower.lower ~ranges:[ (j.Schedule.aid, Schedule.Tiles_only) ] ~name_suffix:"_main" s
      in
      let tail =
        Lower.lower ~ranges:[ (j.Schedule.aid, Schedule.Tail_only) ] ~name_suffix:"_tail" s
      in
      mk [ main; tail ]
  | Some p ->
      (* nested ragged loops: pad / split / grid-bind the data axes *)
      if p.Autotune.Space.pad > 0 then Schedule.pad_loop s j p.Autotune.Space.pad;
      (match p.Autotune.Space.split with
      | 0 -> if p.Autotune.Space.grid then Schedule.bind_block s b
      | t ->
          let _jo, ji = Schedule.split s j t in
          if p.Autotune.Space.grid then begin
            Schedule.bind_block s b;
            Schedule.bind_block s _jo;
            Schedule.bind_thread s ji
          end);
      mk [ Lower.lower s ]

let fig1 ?(batch = 6) ?(max_len = 10) () : t =
  let build lens = fig1_job lens in
  (* Batching: lens vectors concatenate along the leading batch dim;
     A/O are [B][j<len(b)], so both the fill localization and the output
     scatter are plain row arithmetic. *)
  let batching =
    let rows lens = lens in
    let merge = Array.concat in
    let local_index ls =
      (* staged: the offsets are a function of the window alone, computed
         once per mega-batch, not once per filled element *)
      let off = offsets (List.map Array.length ls) in
      fun _name idx -> localize off idx
    in
    let split ls mega =
      let counts = List.map Array.length ls in
      let total = List.fold_left ( + ) 0 counts in
      let inner_mega = if total = 0 then 0 else Array.length mega / total in
      let off = offsets counts in
      List.mapi
        (fun k lens ->
          let inner = Array.fold_left max 0 lens in
          slice_rows ~mega ~inner_mega ~row_off:off.(k) ~rows:(Array.length lens) ~inner)
        ls
    in
    { rows; merge; local_index; split }
  in
  (* The search space walks every knob family: grid binding of the nested
     loops, split factors with and without loop padding, the fused ragged
     vloop, operation splitting, and a padding-only point.  The hand
     schedule is the implicit baseline — it is simulated, never pruned. *)
  let tunable =
    {
      tables_of = (fun lens -> [ ("lens", lens) ]);
      space =
        (fun _lens ->
          Autotune.Space.
            [
              make ~grid:true ();
              make ~grid:true ~split:4 ();
              make ~grid:true ~split:4 ~pad:4 ();
              make ~grid:true ~split:8 ~pad:8 ();
              make ~grid:true ~fuse:true ~split:4 ~pad:4 ();
              make ~grid:true ~fuse:true ~split:8 ~pad:8 ();
              make ~grid:true ~op_split:true ~split:4 ();
              make ~pad:1 ();
            ]);
      build_tuned = (fun p lens -> fig1_job ~point:p lens);
    }
  in
  {
    name = "fig1";
    sample = (fun rng -> Array.init batch (fun _ -> 1 + Workloads.Rng.int rng max_len));
    build;
    batching = Some batching;
    tunable = Some tunable;
    prev_tables = None;
    job_cache = job_cache_of "fig1";
  }

(* --- Variable-sized batched gemm (§7.1) --- *)

let vgemm ?(batch = 4) ?(tile = 32)
    ?(dims_choices = Workloads.Vgemm_workload.dims_choices) () : t =
  let sample rng = Array.init (3 * batch) (fun _ -> Workloads.Rng.choose rng dims_choices) in
  let segs dims =
    let batch = Array.length dims / 3 in
    (Array.sub dims 0 batch, Array.sub dims batch batch, Array.sub dims (2 * batch) batch)
  in
  let job_of ~tile dims =
    let batch = Array.length dims / 3 in
    let ms, ns, ks = segs dims in
    let w = { Workloads.Vgemm_workload.batch; ms; ns; ks } in
    let v = Matmul.Vgemm.build ~tile ~target:Matmul.Vgemm.Gpu w in
    let tables =
      [
        ("vm", w.Workloads.Vgemm_workload.ms);
        ("vn", w.Workloads.Vgemm_workload.ns);
        ("vk", w.Workloads.Vgemm_workload.ks);
      ]
    in
    {
      kernels = [ v.Matmul.Vgemm.kernel ];
      launches = [ Machine.Launch.single v.Matmul.Vgemm.kernel ];
      tables;
      lenv = lenv_of_tables tables;
      out_name = v.Matmul.Vgemm.c.Tensor.name;
    }
  in
  let build dims = job_of ~tile dims in
  (* Batching: the raggedness vector is the 3-segment [ms @ ns @ ks], so
     merging un-interleaves the segments and re-concatenates each across
     members.  VA/VB/VC are dense-padded [B][rmax][cmax] with every
     tensor batch-leading; dims are tile multiples (the workload's own
     constraint), so no residual tile writes cross member rows and the
     dense slice below is bitwise the member's solo output. *)
  let batching =
    let seg i l =
      let b = Array.length l / 3 in
      Array.sub l (i * b) b
    in
    let rows l = seg 0 l in
    let merge ls =
      Array.concat (List.map (seg 0) ls @ List.map (seg 1) ls @ List.map (seg 2) ls)
    in
    let counts ls = List.map (fun l -> Array.length l / 3) ls in
    let local_index ls =
      let off = offsets (counts ls) in
      fun _name idx -> localize off idx
    in
    let split ls mega =
      let maxa a = Array.fold_left max 0 a in
      let mmax_m = List.fold_left (fun acc l -> max acc (maxa (seg 0 l))) 0 ls in
      let nmax_m = List.fold_left (fun acc l -> max acc (maxa (seg 1 l))) 0 ls in
      let off = offsets (counts ls) in
      List.mapi
        (fun k l ->
          let b = Array.length l / 3 in
          let mmax = maxa (seg 0 l) and nmax = maxa (seg 1 l) in
          Array.init (b * mmax * nmax) (fun x ->
              let bi = x / (mmax * nmax) in
              let r = x mod (mmax * nmax) / nmax and c = x mod nmax in
              mega.((((off.(k) + bi) * mmax_m + r) * nmax_m) + c)))
        ls
    in
    { rows; merge; local_index; split }
  in
  (* Alternative tiles: the schedule elides guards, so a candidate tile is
     admitted only when it divides every m and n of the batch — coverage
     is then exactly the valid region and the output stays bitwise. *)
  let tunable =
    {
      tables_of =
        (fun dims ->
          let ms, ns, ks = segs dims in
          [ ("vm", ms); ("vn", ns); ("vk", ks) ]);
      space =
        (fun dims ->
          let ms, ns, _ = segs dims in
          let divides t =
            Array.for_all (fun d -> d mod t = 0) ms && Array.for_all (fun d -> d mod t = 0) ns
          in
          List.filter_map
            (fun t ->
              if t <> tile && divides t then Some (Autotune.Space.make ~split:t ()) else None)
            [ 4; 8; 16; 32 ]
          (* the opt axis: same hand schedule, engine at the O3
             stride-specialized microkernel level — execution-only, so
             still bitwise under replay *)
          @ [ Autotune.Space.make ~opt:3 () ]);
      build_tuned =
        (fun p dims ->
          let t = if p.Autotune.Space.split > 0 then p.Autotune.Space.split else tile in
          job_of ~tile:t dims);
    }
  in
  {
    name = "vgemm";
    sample;
    build;
    batching = Some batching;
    tunable = Some tunable;
    prev_tables = None;
    job_cache = job_cache_of "vgemm";
  }

(* --- Triangular matmul, split + balanced (§7.1) --- *)

let trmm ?(tile = 16) ?(sizes = [| 32; 48; 64 |]) () : t =
  let sample rng = [| Workloads.Rng.choose rng sizes |] in
  let tri_table n = Array.init n (fun r -> min (r + 1) n) in
  let job_of ~variant lens =
    let n = lens.(0) in
    let tm = Matmul.Trmm.build ~tile ~variant ~n () in
    (* The closed-form [tri] materialised as a table: same values the
       kernels see, but now hashable as a raggedness signature. *)
    let tables = [ ("tri", tri_table n) ] in
    {
      kernels = tm.Matmul.Trmm.kernels;
      (* main + tail are a reduction split: racy under h-fusion, so they
         stay separate launches (§7.1 footnote) *)
      launches = List.map Machine.Launch.single tm.Matmul.Trmm.kernels;
      tables;
      lenv = lenv_of_tables tables;
      out_name = tm.Matmul.Trmm.c.Tensor.name;
    }
  in
  let build lens = job_of ~variant:Matmul.Trmm.Split_balanced lens in
  (* Near-trivial space: the hand schedule is already the paper's best
     variant, so the one candidate (the unsplit ablation — same reduction
     order, hence bitwise) exercises the tuner's "keep hand" path. *)
  let tunable =
    {
      tables_of = (fun lens -> [ ("tri", tri_table lens.(0)) ]);
      space = (fun _ -> [ Autotune.Space.make ~aux:[ ("unsplit", 1) ] () ]);
      build_tuned =
        (fun p lens ->
          let variant =
            if Autotune.Space.aux_get p "unsplit" ~default:0 = 1 then
              Matmul.Trmm.Unsplit_unbalanced
            else Matmul.Trmm.Split_balanced
          in
          job_of ~variant lens);
    }
  in
  (* trmm has no batch dimension to concatenate along — one request is one
     triangular instance — so the batcher serves it as singletons. *)
  {
    name = "trmm";
    sample;
    build;
    batching = None;
    tunable = Some tunable;
    prev_tables = None;
    job_cache = job_cache_of "trmm";
  }

(* --- Transformer encoder layer (§7.2) --- *)

let encoder ?(base = false) ?(batch = 4) ~(dataset : Workloads.Datasets.t) () : t =
  let sample rng =
    let seed = Workloads.Rng.int rng 1_000_000 in
    Workloads.Datasets.sample_sorted dataset ~batch ~seed
  in
  let job_of ?jtile ?ftile lens =
    let cfg = (if base then Transformer.Config.base else Transformer.Config.tiny) ~lens in
    let b = Transformer.Builder.build ?jtile ?ftile ~target:Transformer.Builder.Gpu cfg in
    let tables = [ ("seq", lens) ] in
    {
      kernels = Transformer.Builder.kernels b;
      launches = Transformer.Builder.launches b;
      tables;
      lenv = lenv_of_tables tables;
      out_name = b.Transformer.Builder.tensors.Transformer.Builder.out.Tensor.name;
    }
  in
  let build lens = job_of lens in
  (* Batching: sequences concatenate along the leading batch dim.  Every
     per-row computation (projections, attention, softmax, layernorm) is
     row-local, the weight tensors carry no batch dimension (identical in
     solo and mega builds — the fill passes their indices through
     untouched), and only the input token tensor "IN" needs its batch
     index localized.  OUT unpacks to [B][smax][hidden]. *)
  let batching =
    let rows lens = lens in
    let merge = Array.concat in
    let local_index ls =
      let off = offsets (List.map Array.length ls) in
      fun name idx -> match name with "IN" -> localize off idx | _ -> idx
    in
    let split ls mega =
      let counts = List.map Array.length ls in
      let b_m = List.fold_left ( + ) 0 counts in
      let smax_m = List.fold_left (fun acc l -> max acc (Array.fold_left max 0 l)) 0 ls in
      let h = if b_m * smax_m = 0 then 0 else Array.length mega / (b_m * smax_m) in
      let off = offsets counts in
      List.mapi
        (fun k lens ->
          let b = Array.length lens and smax = Array.fold_left max 0 lens in
          Array.init (b * smax * h) (fun x ->
              let bi = x / (smax * h) in
              let s = x mod (smax * h) / h and c = x mod h in
              mega.((((off.(k) + bi) * smax_m + s) * h) + c)))
        ls
    in
    { rows; merge; local_index; split }
  in
  (* The gemm tile knobs from Builder: [jtile] tiles the dense feature
     loop (must divide hidden / 3*hidden / ff — true for both configs'
     candidates below), [ftile] tiles the fused bulk-padded token loop
     (must divide [cfg.bulk] so coverage is unchanged).  Either way only
     data-axis loop structure moves, so outputs stay bitwise. *)
  let tunable =
    let space_points =
      if base then
        Autotune.Space.
          [
            make ~aux:[ ("jtile", 256) ] ();
            make ~aux:[ ("jtile", 64) ] ();
            make ~aux:[ ("jtile", 256); ("ftile", 32) ] ();
          ]
      else
        Autotune.Space.
          [
            make ~aux:[ ("jtile", 16) ] ();
            make ~aux:[ ("jtile", 16); ("ftile", 4) ] ();
            make ~aux:[ ("jtile", 4) ] ();
            make ~opt:3 ();
          ]
    in
    {
      tables_of = (fun lens -> [ ("seq", lens) ]);
      space = (fun _ -> space_points);
      build_tuned =
        (fun p lens ->
          let jtile = Autotune.Space.aux_get p "jtile" ~default:0 in
          let ftile = Autotune.Space.aux_get p "ftile" ~default:0 in
          let opt v = if v > 0 then Some v else None in
          job_of ?jtile:(opt jtile) ?ftile:(opt ftile) lens);
    }
  in
  {
    name = "encoder";
    sample;
    build;
    batching = Some batching;
    tunable = Some tunable;
    prev_tables = None;
    job_cache = job_cache_of "encoder";
  }

(* --- Autoregressive decode step (KV-cache append attention) --- *)

let decode ?(batch = 4) ?(max_src = 24) () : t =
  let job_of src_lens =
    let ones = Array.make (Array.length src_lens) 1 in
    (* Construct the cfg directly (not via [Decoder.make]): make sorts the
       source lengths descending, which would break the row identity a
       decode stream relies on — the prelude delta path matches row [b] of
       step [t] against row [b] of step [t-1]. *)
    let cfg =
      {
        Transformer.Decoder.base = Transformer.Config.tiny ~lens:ones;
        src_lens = Array.copy src_lens;
      }
    in
    let d = Transformer.Decoder.build_decode cfg in
    let tables = [ ("tgt", ones); ("src", Array.copy src_lens) ] in
    {
      kernels = d.Transformer.Decoder.dkernels;
      launches = List.map Machine.Launch.single d.Transformer.Decoder.dkernels;
      tables;
      lenv = lenv_of_tables tables;
      out_name = d.Transformer.Decoder.dattn.Tensor.name;
    }
  in
  let build lens = job_of lens in
  (* Batching: KV caches concatenate along the leading batch dim.  Both
     external inputs (the new-token hidden state DQ and the cache DKV) are
     batch-leading and there are no weight tensors, so every fill index
     localizes the same way.  DAO unpacks to [B][1][H][dh] — the target
     extent is exactly 1 everywhere, so the dense inner volume is the same
     in solo and mega layouts. *)
  let batching =
    let rows lens = lens in
    let merge = Array.concat in
    let local_index ls =
      let off = offsets (List.map Array.length ls) in
      fun _name idx -> localize off idx
    in
    let split ls mega =
      let counts = List.map Array.length ls in
      let total = List.fold_left ( + ) 0 counts in
      let inner = if total = 0 then 0 else Array.length mega / total in
      let off = offsets counts in
      List.mapi
        (fun k lens ->
          slice_rows ~mega ~inner_mega:inner ~row_off:off.(k) ~rows:(Array.length lens) ~inner)
        ls
    in
    { rows; merge; local_index; split }
  in
  (* The decode schedules are fixed by the cache layout (seq_pad fused
     sweep); only the engine opt level is worth searching. *)
  let tunable =
    {
      tables_of =
        (fun lens -> [ ("tgt", Array.make (Array.length lens) 1); ("src", lens) ]);
      space = (fun _ -> Autotune.Space.[ make (); make ~opt:3 () ]);
      build_tuned = (fun _ lens -> job_of lens);
    }
  in
  {
    name = "decode";
    sample = (fun rng -> Array.init batch (fun _ -> 1 + Workloads.Rng.int rng max_src));
    build;
    batching = Some batching;
    tunable = Some tunable;
    (* One decode step extends every cache row by one token, so the
       predecessor's tables are the current lengths minus one.  Rows
       already at length 1 have no predecessor (that step was the
       prefill), so the first decode step after prefill rebuilds. *)
    prev_tables =
      Some
        (fun lens ->
          if Array.length lens = 0 || Array.exists (fun l -> l <= 1) lens then None
          else
            let plens = Array.map (fun l -> l - 1) lens in
            Some (plens, [ ("tgt", Array.make (Array.length lens) 1); ("src", plens) ]));
    job_cache = job_cache_of "decode";
  }

let by_name ?(dataset = Workloads.Datasets.squad) = function
  | "fig1" -> fig1 ()
  | "vgemm" -> vgemm ()
  | "trmm" -> trmm ()
  | "encoder" -> encoder ~dataset ()
  | "decode" -> decode ()
  | s -> invalid_arg ("Serving.Workload.by_name: unknown workload " ^ s)
