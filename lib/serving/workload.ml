open Cora
module E = Ir.Expr

type job = {
  kernels : Lower.kernel list;
  launches : Machine.Launch.t list;
  tables : (string * int array) list;
  lenv : Lenfun.env;
  out_name : string;
}

type t = {
  name : string;
  sample : Workloads.Rng.t -> int array;
  build : int array -> job;
}

(* The invariant every adapter maintains: the runtime environment is built
   from the tables and nothing else, so [Sig.of_tables tables] determines
   the prelude build and can safely key the cache. *)
let lenv_of_tables tables = List.map (fun (n, a) -> Lenfun.of_array n a) tables

(* --- Fig. 1: O[b][j] = 2 * A[b][j], ragged j, padded + guarded --- *)

let fig1 ?(batch = 6) ?(max_len = 10) () : t =
  let build lens =
    let batch = Array.length lens in
    let bdim = Dim.make "b" and jdim = Dim.make "j" in
    let lensf = Lenfun.make "lens" in
    let extents = [ Shape.fixed batch; Shape.ragged ~dep:bdim ~fn:lensf ] in
    let a = Tensor.create ~name:"A" ~dims:[ bdim; jdim ] ~extents in
    let o = Tensor.create ~name:"O" ~dims:[ bdim; jdim ] ~extents in
    let op =
      Op.compute ~name:"double" ~out:o ~loop_extents:extents ~reads:[ a ] (fun idx ->
          E.mul (E.float 2.0) (Op.access a idx))
    in
    let s = Schedule.create op in
    Schedule.pad_loop s (Schedule.axis_of_dim s 1) 2;
    Schedule.set_guard_mode s Schedule.Guard;
    let k = Lower.lower s in
    let tables = [ ("lens", lens) ] in
    {
      kernels = [ k ];
      launches = [ Machine.Launch.single k ];
      tables;
      lenv = lenv_of_tables tables;
      out_name = o.Tensor.name;
    }
  in
  {
    name = "fig1";
    sample = (fun rng -> Array.init batch (fun _ -> 1 + Workloads.Rng.int rng max_len));
    build;
  }

(* --- Variable-sized batched gemm (§7.1) --- *)

let vgemm ?(batch = 4) ?(tile = 32)
    ?(dims_choices = Workloads.Vgemm_workload.dims_choices) () : t =
  let sample rng = Array.init (3 * batch) (fun _ -> Workloads.Rng.choose rng dims_choices) in
  let build dims =
    let batch = Array.length dims / 3 in
    let w =
      {
        Workloads.Vgemm_workload.batch;
        ms = Array.sub dims 0 batch;
        ns = Array.sub dims batch batch;
        ks = Array.sub dims (2 * batch) batch;
      }
    in
    let v = Matmul.Vgemm.build ~tile ~target:Matmul.Vgemm.Gpu w in
    let tables =
      [
        ("vm", w.Workloads.Vgemm_workload.ms);
        ("vn", w.Workloads.Vgemm_workload.ns);
        ("vk", w.Workloads.Vgemm_workload.ks);
      ]
    in
    {
      kernels = [ v.Matmul.Vgemm.kernel ];
      launches = [ Machine.Launch.single v.Matmul.Vgemm.kernel ];
      tables;
      lenv = lenv_of_tables tables;
      out_name = v.Matmul.Vgemm.c.Tensor.name;
    }
  in
  { name = "vgemm"; sample; build }

(* --- Triangular matmul, split + balanced (§7.1) --- *)

let trmm ?(tile = 16) ?(sizes = [| 32; 48; 64 |]) () : t =
  let sample rng = [| Workloads.Rng.choose rng sizes |] in
  let build lens =
    let n = lens.(0) in
    let tm = Matmul.Trmm.build ~tile ~variant:Matmul.Trmm.Split_balanced ~n () in
    (* The closed-form [tri] materialised as a table: same values the
       kernels see, but now hashable as a raggedness signature. *)
    let tables = [ ("tri", Array.init n (fun r -> min (r + 1) n)) ] in
    {
      kernels = tm.Matmul.Trmm.kernels;
      (* main + tail are a reduction split: racy under h-fusion, so they
         stay separate launches (§7.1 footnote) *)
      launches = List.map Machine.Launch.single tm.Matmul.Trmm.kernels;
      tables;
      lenv = lenv_of_tables tables;
      out_name = tm.Matmul.Trmm.c.Tensor.name;
    }
  in
  { name = "trmm"; sample; build }

(* --- Transformer encoder layer (§7.2) --- *)

let encoder ?(base = false) ?(batch = 4) ~(dataset : Workloads.Datasets.t) () : t =
  let sample rng =
    let seed = Workloads.Rng.int rng 1_000_000 in
    Workloads.Datasets.sample_sorted dataset ~batch ~seed
  in
  let build lens =
    let cfg = (if base then Transformer.Config.base else Transformer.Config.tiny) ~lens in
    let b = Transformer.Builder.build ~target:Transformer.Builder.Gpu cfg in
    let tables = [ ("seq", lens) ] in
    {
      kernels = Transformer.Builder.kernels b;
      launches = Transformer.Builder.launches b;
      tables;
      lenv = lenv_of_tables tables;
      out_name = b.Transformer.Builder.tensors.Transformer.Builder.out.Tensor.name;
    }
  in
  { name = "encoder"; sample; build }

let by_name ?(dataset = Workloads.Datasets.squad) = function
  | "fig1" -> fig1 ()
  | "vgemm" -> vgemm ()
  | "trmm" -> trmm ()
  | "encoder" -> encoder ~dataset ()
  | s -> invalid_arg ("Serving.Workload.by_name: unknown workload " ^ s)
