(** The serving loop's core: handle one request = compile (through the
    {!Cora.Lower} compile cache), build the prelude (through
    {!Cora.Prelude_cache}, keyed by the batch's raggedness signature),
    time the pipeline on the machine model, and optionally execute it
    through the reference interpreter.

    Both caches can be bypassed per server — a bypassed server recompiles
    and rebuilds everything per request, which is what the differential
    tests compare against.  Latencies are model time (deterministic), not
    wall time; each request runs under a [serve.request] span and lands in
    the [serve.latency_ns] histogram. *)

(** Interpreter statistics of one request, for differential comparison. *)
type counters = (string * int) list

type response = {
  model_ns : float;  (** kernels + (on prelude miss) host build + copy *)
  kernels_ns : float;
  prelude_host_ns : float;  (** 0 on a prelude-cache hit *)
  prelude_copy_ns : float;  (** 0 on a prelude-cache hit *)
  compile_hits : int;  (** compile-cache hits while building this job *)
  compile_misses : int;
  prelude_hit : bool;
  engine_hits : int;  (** compiled-kernel-memo hits of this request *)
  engine_misses : int;
  arena_hits : int;  (** arena acquisitions recycled / freshly allocated *)
  arena_misses : int;
  tables_hex : string;  (** hex raggedness signature of the batch ({!Cora.Sig.to_hex}) *)
  tuner : string;
      (** autotuner state of this request: ["off"] (tuning disabled or
          workload not tunable), ["miss"] (hand schedule served, memo
          warmed after the pipeline), ["tuned"] (memo hit, tuned schedule
          served), ["hand"] (memo hit, search kept the hand schedule) *)
  tune_us : float;  (** wall time of the post-pipeline tune; 0 unless ["miss"] *)
  stages_us : (string * float) list;
      (** wall-clock duration of each pipeline stage, in request order:
          [("compile", _); ("prelude", _); ("launch", _); ("execute", _)] *)
  counters : counters option;  (** [None] when execution is off *)
  out : float array option;  (** dense (padded) output values *)
  checksum : float;  (** sum of [out]; 0 when execution is off *)
}

type t

(** [create ()] — a server with both caches on.  [~execute:false] skips
    execution (machine-model timing only): streams too large to execute
    still exercise both caches.  [~engine] selects how [~execute:true]
    requests run: the reference interpreter (default) or the compiled
    closure engine — identical outputs and counters, far less overhead
    (see {!Cora.Exec.engine}).  [~opt] (default [O0], compiled engine
    only) selects the {!Ir.Optimize} level — outputs stay
    bitwise-identical at every level.

    Tensor buffers for execution come from the process-wide
    {!Cora.Runtime.Buffer.Arena} (power-of-two size classes, released
    after the response's output is unpacked), so a steady-state request
    stream allocates no fresh float arrays — watch [arena.hit] /
    [arena.miss].

    [~autotune] enables the online schedule autotuner: requests for
    workloads with a {!Workload.tunable} descriptor consult the tuner
    memo (keyed by workload name, {!Cora.Sig.of_tables} over the length
    tables, and [~opt]); a hit with a winning point serves the tuned
    schedule, a miss serves the hand schedule and runs a budgeted
    two-stage search after the response's pipeline completes — so tuning
    never delays the response's own stages, and every response stays
    bitwise-identical to an untuned replay (the candidate spaces only
    move data-axis loop structure). *)
val create :
  ?device:Machine.Device.t ->
  ?compile_cache:bool -> ?prelude_cache:bool -> ?execute:bool ->
  ?engine:Cora.Exec.engine -> ?opt:Ir.Optimize.level ->
  ?autotune:Autotune.Tuner.cfg -> unit -> t

val compile_cache_enabled : t -> bool
val prelude_cache_enabled : t -> bool
val autotune_enabled : t -> bool
val engine : t -> Cora.Exec.engine

(** Optimization level [~execute:true] requests run at. *)
val opt_level : t -> Ir.Optimize.level

(** [with_engine srv e] — the same server configuration with a different
    execution engine (used by {!Frontend} to build the [`Interp]
    fallback twin of a [`Compiled] server). *)
val with_engine : t -> Cora.Exec.engine -> t

(** Handle one request: workload + raggedness vector.

    [?stage_check] is invoked with the stage name ("compile", "prelude",
    "launch", "execute") immediately before each pipeline stage; raising
    from it aborts the request between stages — the deadline-enforcement
    hook of {!Frontend}.  Per-request compile hit/miss counts are
    returned from the lowering calls themselves (scoped through
    {!Cora.Lower.with_memo}), so they stay exact when requests run
    concurrently on several domains.

    [?fill] overrides {!default_fill} for input tensors (read but never
    written).  {!Serving.Batcher} uses it to fill a mega-batch's inputs
    with each member request's {e own} [default_fill] values (the batch
    row index routed back to the member's local row), so a request served
    inside a mega-batch computes over bitwise the same inputs as a solo
    replay. *)
val handle :
  ?stage_check:(string -> unit) ->
  ?fill:(string -> int list -> float) ->
  t -> Workload.t -> int array -> response

(** Drop all cache contents (compile memo, prelude builds, the
    compiled-kernel memo of the engine, and the tuner memo). *)
val reset_caches : unit -> unit

(** Deterministic input fill used for every tensor that is read but never
    written: a hash of the tensor name and multi-index. *)
val default_fill : string -> int list -> float
