(** Triangular matrix multiplication (§7.1, Fig. 9) and triangular
    elementwise operators (Table 6).

    trmm's reduction loop has the variable bound [r + 1] — a ragged
    reduction.  The three variants reproduce the paper's ablation:
    unsplit (per-iteration bound check), split (operation splitting peels
    the partial tile), and split+balanced (heaviest thread blocks issued
    first). *)

type variant = Unsplit_unbalanced | Split_unbalanced | Split_balanced

val variant_name : variant -> string

type t = {
  n : int;
  a : Cora.Tensor.t;
  b : Cora.Tensor.t;
  c : Cora.Tensor.t;
  kernels : Cora.Lower.kernel list;  (** one, or main+tail when split *)
  lenv : Cora.Lenfun.env;
}

val tri : Cora.Lenfun.t
val lenv_of : int -> Cora.Lenfun.env
val build : ?tile:int -> variant:variant -> n:int -> unit -> t
val time : device:Machine.Device.t -> t -> float

val run :
  t -> fill_a:(int list -> float) -> fill_b:(int list -> float) ->
  Cora.Ragged.t * Cora.Ragged.t * Cora.Ragged.t

(** Triangular elementwise ops on packed (ragged) triangular storage. *)
type elementwise = {
  en : int;
  ea : Cora.Tensor.t;
  eb : Cora.Tensor.t;
  ec : Cora.Tensor.t;
  ekernel : Cora.Lower.kernel;
  elenv : Cora.Lenfun.env;
}

val build_elementwise : op:[ `Add | `Mul ] -> n:int -> unit -> elementwise

(** Bandwidth-bound pricing (these ops move 3 words per element). *)
val elementwise_time : device:Machine.Device.t -> elementwise -> float

val run_elementwise :
  elementwise -> fill_a:(int list -> float) -> fill_b:(int list -> float) ->
  Cora.Ragged.t * Cora.Ragged.t * Cora.Ragged.t
