open Cora
module E = Ir.Expr

(** Variable-sized batched gemm (§7.1, Fig. 8).

    A batch of gemms where each instance has its own (M, N, K).  As in the
    paper's evaluation, storage is fully padded to the batch maxima — only
    the {e loops} are ragged, which is where the computational savings come
    from.  The per-instance dimensions are the length functions [vm], [vn],
    [vk] of the batch index. *)

type target = Gpu | Cpu

type t = {
  batch : int;
  a : Tensor.t;
  b : Tensor.t;
  c : Tensor.t;
  kernel : Lower.kernel;
  lenv : Lenfun.env;
  workload : Workloads.Vgemm_workload.t;
}

let lenv_of (w : Workloads.Vgemm_workload.t) : Lenfun.env =
  [
    Lenfun.of_array "vm" w.Workloads.Vgemm_workload.ms;
    Lenfun.of_array "vn" w.Workloads.Vgemm_workload.ns;
    Lenfun.of_array "vk" w.Workloads.Vgemm_workload.ks;
  ]

let build ?(tile = 32) ~(target : target) (w : Workloads.Vgemm_workload.t) : t =
  let open Workloads.Vgemm_workload in
  let batch = w.batch in
  let mmax = max3 w.ms and nmax = max3 w.ns and kmax = max3 w.ks in
  let vm = Lenfun.make "vm" and vn = Lenfun.make "vn" and vk = Lenfun.make "vk" in
  let mk name rows cols =
    let bd = Dim.make "b" and rd = Dim.make "r" and cd = Dim.make "c" in
    Tensor.create ~name ~dims:[ bd; rd; cd ]
      ~extents:[ Shape.fixed batch; Shape.fixed rows; Shape.fixed cols ]
  in
  let a = mk "VA" mmax kmax and b = mk "VB" kmax nmax and c = mk "VC" mmax nmax in
  let bd = List.nth c.Tensor.dims 0 in
  let kd = Dim.make "k" in
  let op =
    Op.reduce ~name:"vgemm" ~out:c
      ~loop_extents:
        [ Shape.fixed batch; Shape.ragged ~dep:bd ~fn:vm; Shape.ragged ~dep:bd ~fn:vn ]
      ~rdims:[ (kd, Shape.ragged ~dep:bd ~fn:vk) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ a; b ]
      (fun idx ridx ->
        let bi = List.nth idx 0 and i = List.nth idx 1 and j = List.nth idx 2 in
        let k = List.nth ridx 0 in
        E.mul (Op.access a [ bi; i; k ]) (Op.access b [ bi; k; j ]))
  in
  let s = Schedule.create op in
  (* Dimensions are multiples of 128 (the workload), so [tile]-sized tiles
     cover the ragged extents exactly; padded storage absorbs any residual
     writes, so guards are elided. *)
  Schedule.set_guard_mode s Schedule.Elide;
  Schedule.set_elide_guard s (Schedule.axis_of_rdim s 0);
  Schedule.set_eff s (match target with Gpu -> 0.80 | Cpu -> 0.84);
  let bax = Schedule.axis_of_dim s 0 in
  let io, ii = Schedule.split s (Schedule.axis_of_dim s 1) tile in
  let jo, ji = Schedule.split s (Schedule.axis_of_dim s 2) tile in
  let k = Schedule.axis_of_rdim s 0 in
  Schedule.reorder s [ bax; io; jo; ii; ji; k ];
  (match target with
  | Gpu ->
      List.iter (Schedule.bind_block s) [ bax; io; jo ];
      Schedule.bind_thread s ii;
      Schedule.bind_thread s ji
  | Cpu ->
      Schedule.parallelize s bax;
      Schedule.parallelize s io;
      Schedule.vectorize s ji);
  let kernel = Lower.lower s in
  { batch; a; b; c; kernel; lenv = lenv_of w; workload = w }

(** Simulated wall time (ns) on [device]. *)
let time ~device (t : t) =
  let p = Machine.Launch.pipeline ~device ~lenv:t.lenv [ Machine.Launch.single t.kernel ] in
  Machine.Launch.total_ns p

(** Execute through the interpreter (correctness testing). *)
let run (t : t) ~fill_a ~fill_b =
  let ra = Ragged.alloc t.a t.lenv
  and rb = Ragged.alloc t.b t.lenv
  and rc = Ragged.alloc t.c t.lenv in
  Ragged.fill ra fill_a;
  Ragged.fill rb fill_b;
  let _ = Exec.run_ragged ~lenv:t.lenv ~tensors:[ ra; rb; rc ] [ t.kernel ] in
  (ra, rb, rc)
