(** Variable-sized batched gemm (§7.1, Fig. 8): a batch of gemms, each with
    its own (M, N, K).  Storage is fully padded to the batch maxima, as in
    the paper's evaluation — only the loops are ragged. *)

type target = Gpu | Cpu

type t = {
  batch : int;
  a : Cora.Tensor.t;
  b : Cora.Tensor.t;
  c : Cora.Tensor.t;
  kernel : Cora.Lower.kernel;
  lenv : Cora.Lenfun.env;
  workload : Workloads.Vgemm_workload.t;
}

val lenv_of : Workloads.Vgemm_workload.t -> Cora.Lenfun.env

(** Compile the vgemm kernel.  Dimensions must be multiples of [tile]
    (the paper's workload uses multiples of 128). *)
val build : ?tile:int -> target:target -> Workloads.Vgemm_workload.t -> t

(** Simulated wall time (ns). *)
val time : device:Machine.Device.t -> t -> float

(** Execute through the interpreter; returns (A, B, C) values. *)
val run :
  t -> fill_a:(int list -> float) -> fill_b:(int list -> float) ->
  Cora.Ragged.t * Cora.Ragged.t * Cora.Ragged.t
