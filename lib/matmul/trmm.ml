open Cora
module E = Ir.Expr

(** Triangular matrix multiplication (§7.1, Fig. 9).

    [C = A · B] where [A] is square lower-triangular: the reduction loop
    over [k] has the variable bound [r + 1] — a ragged reduction.  Three
    CoRa variants reproduce the paper's ablation:

    - {e unsplit-unbalanced}: the tiled reduction keeps a per-iteration
      bound check;
    - {e split-unbalanced}: operation splitting (§4.1) peels the partial
      last tile into a separate kernel, eliding the check from the main
      body;
    - {e split-balanced}: additionally issues row blocks heaviest-first via
      thread remapping (§4.1, Fig. 14).

    As in the paper, storage is fully padded ([A] stored square). *)

type variant = Unsplit_unbalanced | Split_unbalanced | Split_balanced

let variant_name = function
  | Unsplit_unbalanced -> "CoRA-unsplit-unbalanced"
  | Split_unbalanced -> "CoRA-split-unbalanced"
  | Split_balanced -> "CoRA-split-balanced"

type t = {
  n : int;
  a : Tensor.t;
  b : Tensor.t;
  c : Tensor.t;
  kernels : Lower.kernel list;  (** one, or main+tail when split *)
  lenv : Lenfun.env;
}

let tri = Lenfun.make "tri"

let lenv_of n = [ Lenfun.of_fun "tri" (fun r -> min (r + 1) n) ]

(* 64x64 output tiles: large enough that the block grid has only a few
   waves per SM at mid sizes, where issue order visibly matters (Fig. 9). *)
let build ?(tile = 64) ~(variant : variant) ~n () : t =
  let mk name =
    let rd = Dim.make "r" and cd = Dim.make "c" in
    Tensor.create ~name ~dims:[ rd; cd ] ~extents:[ Shape.fixed n; Shape.fixed n ]
  in
  let a = mk "TA" and b = mk "TB" and c = mk "TC" in
  let rd0 = List.nth c.Tensor.dims 0 in
  let kd = Dim.make "k" in
  let op =
    Op.reduce ~name:"trmm" ~out:c
      ~loop_extents:[ Shape.fixed n; Shape.fixed n ]
      ~rdims:[ (kd, Shape.ragged ~dep:rd0 ~fn:tri) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ a; b ]
      (fun idx ridx ->
        let r = List.nth idx 0 and j = List.nth idx 1 in
        let k = List.nth ridx 0 in
        E.mul (Op.access a [ r; k ]) (Op.access b [ k; j ]))
  in
  let build_sched () =
    let s = Schedule.create op in
    Schedule.set_eff s 0.72;
    let ro, ri = Schedule.split s (Schedule.axis_of_dim s 0) tile in
    let jo, ji = Schedule.split s (Schedule.axis_of_dim s 1) tile in
    let k = Schedule.axis_of_rdim s 0 in
    let ko, ki = Schedule.split s k tile in
    Schedule.reorder s [ ro; jo; ri; ji; ko; ki ];
    List.iter (Schedule.bind_block s) [ ro; jo ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ji;
    (s, ro, k)
  in
  let kernels =
    match variant with
    | Unsplit_unbalanced ->
        let s, _ro, _k = build_sched () in
        [ Lower.lower s ]
    | Split_unbalanced | Split_balanced ->
        let s, ro, k = build_sched () in
        if variant = Split_balanced then Schedule.set_remap s ro Schedule.Descending_work;
        let main =
          Lower.lower ~ranges:[ (k.Schedule.aid, Schedule.Tiles_only) ] ~name_suffix:"_main" s
        in
        let tail =
          Lower.lower
            ~ranges:[ (k.Schedule.aid, Schedule.Tail_only) ]
            ~init:false ~name_suffix:"_tail" s
        in
        [ main; tail ]
  in
  { n; a; b; c; kernels; lenv = lenv_of n }

(** Simulated wall time (ns). *)
let time ~device (t : t) =
  let p =
    Machine.Launch.pipeline ~device ~lenv:t.lenv (List.map Machine.Launch.single t.kernels)
  in
  Machine.Launch.total_ns p

(** Execute through the interpreter. *)
let run (t : t) ~fill_a ~fill_b =
  let ra = Ragged.alloc t.a t.lenv
  and rb = Ragged.alloc t.b t.lenv
  and rc = Ragged.alloc t.c t.lenv in
  (* only the lower triangle of A is meaningful *)
  Ragged.fill ra (fun idx ->
      let r = List.nth idx 0 and c = List.nth idx 1 in
      if c <= r then fill_a idx else 0.0);
  Ragged.fill rb fill_b;
  let _ = Exec.run_ragged ~lenv:t.lenv ~tensors:[ ra; rb; rc ] t.kernels in
  (ra, rb, rc)

(* ------------------------------------------------------------------ *)

(** Triangular elementwise ops (tradd / trmul, §D.4 Table 6) on {e packed}
    triangular (ragged) storage — the natural CoRa layout for a triangular
    matrix. *)
type elementwise = {
  en : int;
  ea : Tensor.t;
  eb : Tensor.t;
  ec : Tensor.t;
  ekernel : Lower.kernel;
  elenv : Lenfun.env;
}

let build_elementwise ~(op : [ `Add | `Mul ]) ~n () : elementwise =
  let mk name =
    let rd = Dim.make "r" and cd = Dim.make "c" in
    Tensor.create ~name ~dims:[ rd; cd ]
      ~extents:[ Shape.fixed n; Shape.ragged ~dep:rd ~fn:tri ]
  in
  let a = mk "EA" and b = mk "EB" and c = mk "EC" in
  let o =
    Op.compute
      ~name:(match op with `Add -> "tradd" | `Mul -> "trmul")
      ~out:c
      ~loop_extents:
        [ Shape.fixed n; Shape.ragged ~dep:(List.nth c.Tensor.dims 0) ~fn:tri ]
      ~reads:[ a; b ]
      (fun idx ->
        let f = match op with `Add -> E.add | `Mul -> E.mul in
        f (Op.access a idx) (Op.access b idx))
  in
  let s = Schedule.create o in
  Schedule.set_eff s 0.9;
  let tile = if n >= 32 then 32 else 2 in
  let ro, ri = Schedule.split s (Schedule.axis_of_dim s 0) tile in
  Schedule.bind_block s ro;
  Schedule.bind_thread s ri;
  ignore (Schedule.axis_of_dim s 1);
  { en = n; ea = a; eb = b; ec = c; ekernel = Lower.lower s; elenv = lenv_of n }

(** Elementwise triangular ops are bandwidth-bound; price them by traffic. *)
let elementwise_time ~(device : Machine.Device.t) (e : elementwise) =
  let nnz = float_of_int (e.en * (e.en + 1) / 2) in
  let bytes = nnz *. 3.0 *. 4.0 in
  (bytes /. device.Machine.Device.mem_bw_bytes_per_ns /. 0.9) +. device.Machine.Device.launch_ns

let run_elementwise (e : elementwise) ~fill_a ~fill_b =
  let ra = Ragged.alloc e.ea e.elenv
  and rb = Ragged.alloc e.eb e.elenv
  and rc = Ragged.alloc e.ec e.elenv in
  Ragged.fill ra fill_a;
  Ragged.fill rb fill_b;
  let _ = Exec.run_ragged ~lenv:e.elenv ~tensors:[ ra; rb; rc ] [ e.ekernel ] in
  (ra, rb, rc)
