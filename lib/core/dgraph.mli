(** Dimension graphs (CoRa §5.2, Fig. 7): one node per tensor dimension, an
    edge [d1 -> d2] when [d2]'s slice size depends on [d1]'s index.
    Storage lowering walks this graph to compute only the auxiliary data
    the precise dependences require — the CSF scheme of sparse compilers
    instead pays per slice. *)

type t = {
  rank : int;
  edges : (int * int) list;
}

val of_tensor : Tensor.t -> t

(** [O_G d] — dims whose slice size depends on [d]. *)
val outgoing : t -> int -> int list

(** [I_G d] — dims [d]'s slice size depends on. *)
val incoming : t -> int -> int list

(** Transitive closure [O_G* d]. *)
val outgoing_star : t -> int -> int list

(** Every edge goes outward-to-inward (always true by construction). *)
val well_formed : t -> bool

val is_cdim : t -> int -> bool
val is_vdim : t -> int -> bool

(** Auxiliary entries the tree-based CSF scheme of past sparse-tensor work
    would compute for this tensor (§B.1): one per slice of every vdim.
    [extent_of pos dep_value] gives the actual extent of dimension [pos]. *)
val csf_aux_entries : t -> extent_of:(int -> int -> int) -> int
