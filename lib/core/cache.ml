(** Bounded, domain-safe memo tables (see cache.mli). *)

type 'v entry = { value : 'v; mutable touched : int }

type stats = { hits : int; misses : int; evictions : int; entries : int }

type ('k, 'v) t = {
  name : string;
  lock : Mutex.t;
  table : ('k, 'v entry) Hashtbl.t;
  mutable tick : int;  (** logical clock for recency, under [lock] *)
  mutable cap : int;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  evicted_c : Obs.Metrics.counter;
}

(* One stats thunk per cache *name*, latest creation wins — so transient
   per-test caches never accumulate and an exposition pass sees each memo
   exactly once. *)
let registry : (string, unit -> stats) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let stats t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evicted; entries = Hashtbl.length t.table })

let registered_stats () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.fold (fun name f acc -> (name, f ()) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let create ~name ~capacity () =
  let t =
    {
      name;
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      tick = 0;
      cap = max 1 capacity;
      hits = 0;
      misses = 0;
      evicted = 0;
      evicted_c = Obs.Metrics.counter (name ^ ".evicted");
    }
  in
  Mutex.lock registry_lock;
  Hashtbl.replace registry name (fun () -> stats t);
  Mutex.unlock registry_lock;
  t

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          t.tick <- t.tick + 1;
          e.touched <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Caller holds the lock.  O(size) scan: eviction happens once per insert
   beyond capacity, and the tables this backs hold at most a few hundred
   entries, so a linear victim scan beats maintaining an intrusive list
   across three call sites. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, t') when t' <= e.touched -> acc
        | _ -> Some (k, e.touched))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evicted <- t.evicted + 1;
      Obs.Metrics.incr t.evicted_c

let add t k v =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        while Hashtbl.length t.table >= t.cap do
          evict_lru t
        done;
        t.tick <- t.tick + 1;
        Hashtbl.add t.table k { value = v; touched = t.tick }
      end)

let set_capacity t n =
  with_lock t (fun () ->
      t.cap <- max 1 n;
      while Hashtbl.length t.table > t.cap do
        evict_lru t
      done)

let capacity t = with_lock t (fun () -> t.cap)
let size t = with_lock t (fun () -> Hashtbl.length t.table)
let clear t = with_lock t (fun () -> Hashtbl.reset t.table)
let evictions t = with_lock t (fun () -> t.evicted)
