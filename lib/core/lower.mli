(** Lowering: schedule → IR kernel (CoRa §5).

    Reconstructs root index expressions from the transformed loop
    variables, materialises (possibly ragged) loop extents, inserts bound
    guards exactly where the iteration space over-covers and elision is
    unsound, lowers tensor accesses to flat offsets, applies load hoisting
    and simplification, and collects every prelude definition the kernel
    needs. *)

exception Error of string

(** A compiled kernel. *)
type kernel = {
  kname : string;
  body : Ir.Stmt.t;
  aux : Prelude.def list;  (** prelude structures the kernel references *)
  triples : Ir.Simplify.fusion_triple list;
  eff : float;  (** compiled-code efficiency for the machine model *)
  remap : Schedule.remap_policy;
  bound : Schedule.boundedness;
  out : Tensor.t;
  reads : Tensor.t list;  (** the op's input tensors, for generic runners *)
}

(** [lower sched] compiles the schedule.

    [ranges] assigns a {!Schedule.range_mode} per split-parent axis id —
    the vehicle for operation splitting: lower once with [Tiles_only] and
    once with [Tail_only] to obtain the pair of kernels of Fig. 5.
    For reduction splits, pass [~init:false] to the tail so it accumulates
    into the main kernel's partial sums; an [epilogue] runs only where
    [apply_epilogue] is true (defaults to [init]). *)
val lower :
  ?ranges:(int * Schedule.range_mode) list ->
  ?init:bool ->
  ?apply_epilogue:bool ->
  ?name_suffix:string ->
  Schedule.t ->
  kernel

(** {2 Compile cache}

    When enabled ([set_memo true]), [lower] memoizes its output keyed by
    {!Sig.lowering_key} — structural equality, so independently rebuilt
    but identical (operator, schedule) pairs are lowered once.  Hits and
    misses are counted in the {!Obs.Metrics} registry as
    [compile_cache.hit] / [compile_cache.miss].  Off by default (no key
    is even computed); the cache survives toggling and is dropped only by
    [clear_memo]. *)

val set_memo : bool -> unit
val memo_enabled : unit -> bool
val clear_memo : unit -> unit
val memo_size : unit -> int
