(** Lowering: schedule → IR kernel (CoRa §5).

    Reconstructs root index expressions from the transformed loop
    variables, materialises (possibly ragged) loop extents, inserts bound
    guards exactly where the iteration space over-covers and elision is
    unsound, lowers tensor accesses to flat offsets, applies load hoisting
    and simplification, and collects every prelude definition the kernel
    needs. *)

exception Error of string

(** A compiled kernel. *)
type kernel = {
  kname : string;
  body : Ir.Stmt.t;
  aux : Prelude.def list;  (** prelude structures the kernel references *)
  triples : Ir.Simplify.fusion_triple list;
  eff : float;  (** compiled-code efficiency for the machine model *)
  remap : Schedule.remap_policy;
  bound : Schedule.boundedness;
  out : Tensor.t;
  reads : Tensor.t list;  (** the op's input tensors, for generic runners *)
}

(** [lower sched] compiles the schedule.

    [ranges] assigns a {!Schedule.range_mode} per split-parent axis id —
    the vehicle for operation splitting: lower once with [Tiles_only] and
    once with [Tail_only] to obtain the pair of kernels of Fig. 5.
    For reduction splits, pass [~init:false] to the tail so it accumulates
    into the main kernel's partial sums; an [epilogue] runs only where
    [apply_epilogue] is true (defaults to [init]). *)
val lower :
  ?ranges:(int * Schedule.range_mode) list ->
  ?init:bool ->
  ?apply_epilogue:bool ->
  ?name_suffix:string ->
  Schedule.t ->
  kernel

(** {2 Compile cache}

    Inside [with_memo ~cache:true], [lower] memoizes its output keyed by
    {!Sig.lowering_key} — structural equality, so independently rebuilt
    but identical (operator, schedule) pairs are lowered once.  Hits and
    misses are counted in the {!Obs.Metrics} registry as
    [compile_cache.hit] / [compile_cache.miss].  Off outside a scope (no
    key is even computed).

    The scope is {e per-domain} (domain-local storage), so concurrent
    requests on different worker domains carry independent policies and
    independent hit/miss tallies — this replaces the former process-wide
    [set_memo] toggle, which was not reentrant.  The table itself is
    shared across domains, mutex-protected, and bounded: at most
    {!memo_capacity} entries, least-recently-used eviction, counted as
    [compile_cache.evicted]. *)

(** Compile-cache hits and misses observed by the [lower] calls of one
    {!with_memo} scope — per-request accounting with no reliance on
    global counter deltas (which are wrong as soon as requests overlap). *)
type memo_stats = { mutable hits : int; mutable misses : int }

(** [with_memo ~cache f] runs [f] with the calling domain's memo policy
    set to [cache], restoring the previous policy on exit (exceptions
    included; scopes nest).  Returns [f]'s result and the hit/miss tally
    of the scope. *)
val with_memo : cache:bool -> (unit -> 'a) -> 'a * memo_stats

val clear_memo : unit -> unit
val memo_size : unit -> int

(** Entry cap of the shared memo table (clamped to >= 1); shrinking
    below the current size evicts immediately. *)
val set_memo_capacity : int -> unit

val memo_capacity : unit -> int
