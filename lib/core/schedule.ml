open Ir

(** Schedules (CoRa §4.1).

    A schedule transforms the loop nest of one operator: axes can be split,
    fused (including {e vloop fusion}, §5.1), reordered, padded, bound to
    hardware (GPU grid/threads, CPU parallel, vector lanes), given a thread
    remapping policy for load balancing, and marked for load hoisting.
    Operation splitting is expressed at lowering time as a range mode on a
    split pair (see {!range_mode}); horizontal fusion groups whole kernels
    and lives in {!Hfusion}. *)

type role = Data of int  (** output dim position *) | Reduction of int  (** rvar position *)

type remap_policy =
  | No_remap
  | Descending_work
      (** issue thread blocks in decreasing order of work (Fig. 14, §7.1) *)

type axis = {
  aid : int;
  avar : Var.t;
  origin : origin;
  mutable kind : Stmt.for_kind;
  mutable pad : int;  (** loop padding multiple; on a fused axis: bulk padding *)
  mutable remap : remap_policy;
  mutable elide_guard : bool;
      (** skip this dimension's bound check even where padding over-covers —
          the user asserts the extra iterations are harmless (e.g. a padded
          reduction over zero-filled attention columns) *)
}

and origin =
  | Root of role
  | Split_outer of axis * int  (** (parent, factor) *)
  | Split_inner of axis * int
  | Fused of fused_info

and fused_info = {
  fa : axis;
  fb : axis;
  f_kind : fused_kind;
}

and fused_kind =
  | Dense_fuse of int  (** extent of [fb]; index recovered by div/mod *)
  | Ragged_fuse of {
      fn_name : string;  (** length function of the inner vloop *)
      count : int;  (** constant extent of the outer loop *)
      inner_pad : int;  (** loop padding of the inner vloop at fuse time *)
      triple : Simplify.fusion_triple;
      off_name : string;  (** prefix-sum array, shared with storage lowering *)
      total_name : string;  (** 0-ary ufun giving the (bulk-padded) total *)
      real_total_name : string;  (** total without bulk padding, for guards *)
    }

(** How a split pair is ranged at lowering time — the vehicle for
    {e operation splitting} (§4.1, Fig. 5). *)
type range_mode =
  | Full  (** outer covers ceil(extent/factor) tiles; inner may need a guard *)
  | Tiles_only  (** outer covers floor(extent/factor) full tiles, no guard *)
  | Tail_only  (** the single remainder tile *)

(** How the machine model prices the kernel: compute-bound kernels by their
    (lane-normalised) operation counts through the block scheduler;
    memory-bound kernels (elementwise, softmax, normalisation, layout
    changes) by their raw memory traffic against device bandwidth. *)
type boundedness = Compute_bound | Memory_bound

type guard_mode =
  | Guard  (** emit bound checks for every dimension that may be over-covered *)
  | Elide
      (** skip guards on non-reduction dims: padded storage absorbs the extra
          writes (valid because storage padding >= loop padding, §4.1) *)

type t = {
  op : Op.t;
  data_roots : axis array;  (** root axis of each output dimension *)
  red_roots : axis array;  (** root axis of each reduction dimension *)
  mutable leaves : axis list;  (** current loop order, outermost first *)
  mutable guard_mode : guard_mode;
  mutable hoist : bool;  (** hoist auxiliary-structure loads (§D.7) *)
  mutable eff : float;  (** efficiency of the compiled kernel on the device *)
  mutable bound : boundedness;
}

(* atomic: schedules are built concurrently by serving worker domains *)
let axis_counter = Atomic.make 0

let mk_axis ?(kind = Stmt.Serial) ~origin name =
  {
    aid = 1 + Atomic.fetch_and_add axis_counter 1;
    avar = Var.fresh name;
    origin;
    kind;
    pad = 1;
    remap = No_remap;
    elide_guard = false;
  }

(** Fresh schedule: one root axis per output dim, then one per reduction dim,
    in declaration order. *)
let create (op : Op.t) : t =
  let data =
    List.mapi
      (fun i d -> mk_axis ~origin:(Root (Data i)) (Dim.name d))
      op.Op.out.Tensor.dims
  in
  let red =
    Array.to_list
      (Array.mapi (fun i r -> mk_axis ~origin:(Root (Reduction i)) (Dim.name r.Op.rdim)) op.Op.rvars)
  in
  {
    op;
    data_roots = Array.of_list data;
    red_roots = Array.of_list red;
    leaves = data @ red;
    guard_mode = Guard;
    hoist = false;
    eff = 0.8;
    bound = Compute_bound;
  }

let leaf_pos s a =
  let rec go i = function
    | [] -> invalid_arg "Schedule: axis is not a leaf"
    | x :: rest -> if x.aid = a.aid then i else go (i + 1) rest
  in
  go 0 s.leaves

(** Root axis for output dimension position [i] (valid even after the axis
    has been split or fused away). *)
let axis_of_dim s i = s.data_roots.(i)

let axis_of_rdim s i = s.red_roots.(i)

(** Is this axis (transitively) derived from a reduction dimension? *)
let rec is_reduction_axis a =
  match a.origin with
  | Root (Reduction _) -> true
  | Root (Data _) -> false
  | Split_outer (p, _) | Split_inner (p, _) -> is_reduction_axis p
  | Fused { fa; fb; _ } -> is_reduction_axis fa || is_reduction_axis fb

(** [split s a factor] — replace leaf [a] with (outer, inner) such that
    [a = outer * factor + inner]. *)
let split s a factor =
  if factor < 1 then invalid_arg "Schedule.split: factor must be >= 1";
  let pos = leaf_pos s a in
  let outer = mk_axis ~origin:(Split_outer (a, factor)) (Var.name a.avar ^ "_o") in
  let inner = mk_axis ~origin:(Split_inner (a, factor)) (Var.name a.avar ^ "_i") in
  s.leaves <-
    List.concat
      (List.mapi (fun i x -> if i = pos then [ outer; inner ] else [ x ]) s.leaves);
  (outer, inner)

(** The root dimension position underlying an axis, if it is a pure
    descendant of a single data dim. *)
let rec root_data_pos a =
  match a.origin with
  | Root (Data i) -> Some i
  | Split_outer (p, _) | Split_inner (p, _) -> root_data_pos p
  | _ -> None

(** [fuse s a b] — fuse adjacent leaves [a] (outer) and [b] (inner) into one.

    If [b] is a ragged root dim whose extent depends on [a]'s root dim, this
    is {e vloop fusion} (§5.1): the fused extent is the prelude-computed
    total, and the outer/inner indices are recovered through the
    uninterpreted functions [f_fo]/[f_fi] whose identities are registered
    with the simplifier.  Otherwise both extents must be constant. *)
let fuse s a b =
  let pa = leaf_pos s a and pb = leaf_pos s b in
  if pb <> pa + 1 then invalid_arg "Schedule.fuse: axes must be adjacent (outer, inner)";
  let op = s.op in
  let f_kind =
    match (a.origin, b.origin) with
    | Root (Data ia), Root (Data ib) -> (
        match (op.Op.loop_extents.(ia), op.Op.loop_extents.(ib)) with
        | _, Shape.Fixed n ->
            Dense_fuse (Shape.pad_to n b.pad)
        | Shape.Fixed count, Shape.Ragged { dep; fn } ->
            let da = List.nth op.Op.out.Tensor.dims ia in
            if not (Dim.equal dep da) then
              invalid_arg "Schedule.fuse: inner vloop must depend on the outer loop being fused";
            let fn_name = Lenfun.name fn in
            let inner_pad = b.pad in
            let suffix = Printf.sprintf "%s_p%d" fn_name inner_pad in
            Ragged_fuse
              {
                fn_name;
                count;
                inner_pad;
                triple =
                  {
                    Simplify.fo = "ffo_" ^ suffix;
                    fi = "ffi_" ^ suffix;
                    oif = "foif_" ^ suffix;
                    off = Storage.psum_name ~fn_name ~pad:inner_pad;
                  };
                off_name = Storage.psum_name ~fn_name ~pad:inner_pad;
                total_name = "ftot_" ^ suffix;
                real_total_name = "ftot_real_" ^ suffix;
              }
        | Shape.Ragged _, _ ->
            invalid_arg "Schedule.fuse: outer loop of a vloop fusion must be constant")
    | _ -> (
        (* fusing derived axes: only the dense case is supported *)
        match b.origin with
        | Root (Data ib) -> (
            match op.Op.loop_extents.(ib) with
            | Shape.Fixed n -> Dense_fuse (Shape.pad_to n b.pad)
            | _ -> invalid_arg "Schedule.fuse: unsupported fusion of derived ragged axes")
        | Split_inner (_, f) -> Dense_fuse f
        | _ -> invalid_arg "Schedule.fuse: unsupported fusion")
  in
  let fused =
    mk_axis ~origin:(Fused { fa = a; fb = b; f_kind }) (Var.name a.avar ^ Var.name b.avar)
  in
  s.leaves <-
    List.concat
      (List.mapi
         (fun i x -> if i = pa then [ fused ] else if i = pb then [] else [ x ])
         s.leaves);
  fused

(** [reorder s leaves] — set the loop order.  Must be a permutation of the
    current leaves; the vloop-ordering restriction of §4.1 (a vloop may not
    move outside the loops its bound depends on) is enforced at lowering. *)
let reorder s leaves =
  let ids xs = List.sort Int.compare (List.map (fun a -> a.aid) xs) in
  if ids leaves <> ids s.leaves then
    invalid_arg "Schedule.reorder: new order must be a permutation of the leaves";
  s.leaves <- leaves

(** [pad_loop s a m] — pad the loop extent of [a] to multiples of [m]
    (Listing 1 line 18).  On a fused axis this is {e bulk padding} (§7.2). *)
let pad_loop _s a m =
  if m < 1 then invalid_arg "Schedule.pad_loop: multiple must be >= 1";
  a.pad <- m

(** Bind an axis to an execution resource. *)
let bind _s a kind = a.kind <- kind

let parallelize s a = bind s a Stmt.Parallel
let vectorize s a = bind s a Stmt.Vectorized
let bind_block s a = bind s a Stmt.Gpu_block
let bind_thread s a = bind s a Stmt.Gpu_thread

(** Thread remapping policy (§4.1, Fig. 14): reorder block issue so heavy
    blocks are scheduled first. *)
let set_remap _s a policy = a.remap <- policy

(** Assert that over-covered iterations of this axis are harmless, so its
    bound check may be dropped (e.g. a reduction over padded, zero-filled
    attention columns). *)
let set_elide_guard _s a = a.elide_guard <- true

let set_guard_mode s m = s.guard_mode <- m
let set_hoist s b = s.hoist <- b
let set_eff s e = s.eff <- e
let set_memory_bound s = s.bound <- Memory_bound

(** All fusion triples introduced by ragged fusions in this schedule. *)
let fusion_triples s =
  let rec of_axis a =
    match a.origin with
    | Root _ -> []
    | Split_outer (p, _) | Split_inner (p, _) -> of_axis p
    | Fused { fa; fb; f_kind } -> (
        let sub = of_axis fa @ of_axis fb in
        match f_kind with Ragged_fuse r -> r.triple :: sub | Dense_fuse _ -> sub)
  in
  List.concat_map of_axis s.leaves
