(** Dimension graphs (CoRa §5.2, Fig. 7).

    The dgraph of a tensor has one node per dimension and an edge
    [d1 -> d2] when the slice size of [d2] depends on the index of [d1].
    CoRa's storage lowering walks this graph to compute only the auxiliary
    data the precise dependences require — the tree-based CSF scheme of
    sparse compilers instead assumes every sparse dimension depends on
    {e all} outer dimensions and stores aux data per slice. *)

type t = {
  rank : int;
  edges : (int * int) list;  (** (from, to) dimension positions *)
}

(** Build the dgraph of a tensor from its extent declarations. *)
let of_tensor (t : Tensor.t) : t =
  let dims = Array.of_list t.Tensor.dims in
  let edges =
    List.concat
      (List.mapi
         (fun j ext ->
           match Shape.dependence ext with
           | None -> []
           | Some dep ->
               let i = ref (-1) in
               Array.iteri (fun k d -> if Dim.equal d dep then i := k) dims;
               if !i < 0 then [] else [ (!i, j) ])
         t.Tensor.extents)
  in
  { rank = Array.length dims; edges }

(** Outgoing dimensions [O_G(d)]: dims whose slice size depends on [d]. *)
let outgoing g d = List.filter_map (fun (a, b) -> if a = d then Some b else None) g.edges

(** Incoming dimensions [I_G(d)]: dims that [d]'s slice size depends on. *)
let incoming g d = List.filter_map (fun (a, b) -> if b = d then Some a else None) g.edges

(** Transitive closure [O_G*(d)]. *)
let outgoing_star g d =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | x :: rest ->
        if List.mem x seen then go seen rest
        else go (x :: seen) (outgoing g x @ rest)
  in
  go [] (outgoing g d) |> List.sort_uniq Int.compare

(** A dgraph is acyclic by construction (a vdim only depends on outer
    dimensions), but we verify: every edge must go outward-to-inward. *)
let well_formed g = List.for_all (fun (a, b) -> a < b) g.edges

let is_cdim g d = incoming g d = []
let is_vdim g d = incoming g d <> []

(** Total auxiliary entries required by the tree-based CSF scheme of past
    sparse-tensor work for this tensor (§B.1): one entry per slice of every
    vdim, where the number of slices of a vdim is the product of the
    (actual) extents of all outer dimensions.  [extent_of pos dep_value]
    must give the actual extent of dimension [pos]. *)
let csf_aux_entries g ~(extent_of : int -> int -> int) =
  (* [count d] = number of index tuples over dims 0..d-1 (i.e. the number of
     slices of dimension d).  Under the single-outer-dimension restriction:
     a constant level multiplies, a ragged level contributes the sum of its
     extents over its dependee times the product of the other (constant)
     outer extents. *)
  let rec count d =
    if d = 0 then 1
    else
      let prev = d - 1 in
      match incoming g prev with
      | [] -> count prev * extent_of prev 0
      | dep :: _ ->
          let const_product = ref 1 in
          for k = 0 to prev - 1 do
            if k <> dep then const_product := !const_product * extent_of k 0
          done;
          let sum = ref 0 in
          for v = 0 to extent_of dep 0 - 1 do
            sum := !sum + extent_of prev v
          done;
          !const_product * !sum
  in
  let aux = ref 0 in
  for d = 0 to g.rank - 1 do
    if is_vdim g d then aux := !aux + count d
  done;
  !aux
