(** Operator definitions — CoRa's analogue of [te.compute] (Listing 1).

    An operator computes one output tensor; each output dimension has a
    loop extent that may differ from the storage extent (independent loop
    vs storage padding, §4.1).  Reductions add reduction dimensions whose
    extents may themselves be ragged (trmm, AttnV). *)

type rvar = { rv : Ir.Var.t; rdim : Dim.t; rextent : Shape.t }

type t = {
  name : string;
  out : Tensor.t;
  dim_vars : Ir.Var.t array;
  loop_extents : Shape.t array;
  rvars : rvar array;
  body : Ir.Expr.t;
  reduce : Ir.Stmt.reduce_op option;
  init : Ir.Expr.t;
  epilogue : (Ir.Expr.t -> Ir.Expr.t) option;
  reads : Tensor.t list;
}

(** A (not yet lowered) multi-dimensional read of a tensor. *)
val access : Tensor.t -> Ir.Expr.t list -> Ir.Expr.t

val dim_var_exprs : t -> Ir.Expr.t list

(** Map-style operator: [out[i...] = f [i...]]. *)
val compute :
  name:string ->
  out:Tensor.t ->
  loop_extents:Shape.t list ->
  reads:Tensor.t list ->
  (Ir.Expr.t list -> Ir.Expr.t) ->
  t

(** Reduction operator: [out[i...] = combine over [r...] of f [i...] [r...]].
    [init] receives the output index expressions so a bias/residual read
    can be fused into the accumulator initialisation; [epilogue] is applied
    once after the reduction (fused activations). *)
val reduce :
  name:string ->
  out:Tensor.t ->
  loop_extents:Shape.t list ->
  rdims:(Dim.t * Shape.t) list ->
  combine:Ir.Stmt.reduce_op ->
  init:(Ir.Expr.t list -> Ir.Expr.t) ->
  ?epilogue:(Ir.Expr.t -> Ir.Expr.t) ->
  reads:Tensor.t list ->
  (Ir.Expr.t list -> Ir.Expr.t list -> Ir.Expr.t) ->
  t

(** Find a tensor by name among the op's reads and output. *)
val tensor_named : t -> string -> Tensor.t option

val n_dims : t -> int
val n_rdims : t -> int
