(** Horizontal fusion validation (§4.1, Fig. 5 step 3; §C): several
    operators may execute concurrently as one kernel only when independent.
    The tiles/tail pieces of a {e non-reduction} operation split (disjoint
    output ranges, each initialising its own rows) are allowed; the pieces
    of a reduction-loop split are rejected — they accumulate into the same
    elements and would need atomics (the paper's §7.1 footnote). *)

exception Illegal of string

(** Returns the kernels unchanged, or raises {!Illegal}. *)
val validate : Lower.kernel list -> Lower.kernel list
