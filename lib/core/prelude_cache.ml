(** Prelude cache (see prelude_cache.mli). *)

let cache : (Sig.t, Prelude.built) Cache.t =
  Cache.create ~name:"prelude_cache" ~capacity:256 ()

let clear () = Cache.clear cache
let size () = Cache.size cache
let set_capacity n = Cache.set_capacity cache n
let capacity () = Cache.capacity cache

let key ~(tables_sig : Sig.t) ~dedup_defs (defs : Prelude.def list) : Sig.t =
  let names =
    List.map
      (fun (d : Prelude.def) ->
        Printf.sprintf "%s:%s" d.Prelude.name
          (match d.Prelude.kind with Prelude.Storage -> "s" | Prelude.Loop_fusion -> "f"))
      defs
    |> List.sort_uniq String.compare
  in
  Sig.combine
    [
      Sig.of_string (if dedup_defs then "dedup" else "redundant");
      Sig.of_string (String.concat "," names);
      tables_sig;
    ]

let hit_c = Obs.Metrics.counter "prelude_cache.hit"
let miss_c = Obs.Metrics.counter "prelude_cache.miss"

let key_of ~(tables_sig : Sig.t) ?(dedup_defs = true) (defs : Prelude.def list) : Sig.t =
  key ~tables_sig ~dedup_defs defs

let build_keyed ~(key : Sig.t) ?(dedup_defs = true) (defs : unit -> Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  match Cache.find cache key with
  | Some b ->
      Obs.Metrics.incr hit_c;
      (b, true)
  | None ->
      Obs.Metrics.incr miss_c;
      (* built outside the cache lock: a slow build must not serialise
         concurrent requests hitting other keys *)
      let b = Prelude.build ~dedup_defs (defs ()) lenv in
      Cache.add cache key b;
      (b, false)

let build_cached ~(tables_sig : Sig.t) ?(dedup_defs = true) (defs : Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  build_keyed ~key:(key ~tables_sig ~dedup_defs defs) ~dedup_defs (fun () -> defs) lenv
