(** Prelude cache (see prelude_cache.mli). *)

let cache : (Sig.t, Prelude.built) Cache.t =
  Cache.create ~name:"prelude_cache" ~capacity:256 ()

let clear () = Cache.clear cache
let size () = Cache.size cache
let set_capacity n = Cache.set_capacity cache n
let capacity () = Cache.capacity cache

let key ~(tables_sig : Sig.t) ~dedup_defs (defs : Prelude.def list) : Sig.t =
  let names =
    List.map
      (fun (d : Prelude.def) ->
        Printf.sprintf "%s:%s" d.Prelude.name
          (match d.Prelude.kind with Prelude.Storage -> "s" | Prelude.Loop_fusion -> "f"))
      defs
    |> List.sort_uniq String.compare
  in
  Sig.combine
    [
      Sig.of_string (if dedup_defs then "dedup" else "redundant");
      Sig.of_string (String.concat "," names);
      tables_sig;
    ]

let hit_c = Obs.Metrics.counter "prelude_cache.hit"
let miss_c = Obs.Metrics.counter "prelude_cache.miss"

let key_of ~(tables_sig : Sig.t) ?(dedup_defs = true) (defs : Prelude.def list) : Sig.t =
  key ~tables_sig ~dedup_defs defs

let build_keyed ~(key : Sig.t) ?(dedup_defs = true) (defs : unit -> Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  match Cache.find cache key with
  | Some b ->
      Obs.Metrics.incr hit_c;
      (b, true)
  | None ->
      Obs.Metrics.incr miss_c;
      (* built outside the cache lock: a slow build must not serialise
         concurrent requests hitting other keys *)
      let b = Prelude.build ~dedup_defs (defs ()) lenv in
      Cache.add cache key b;
      (b, false)

let build_cached ~(tables_sig : Sig.t) ?(dedup_defs = true) (defs : Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  build_keyed ~key:(key ~tables_sig ~dedup_defs defs) ~dedup_defs (fun () -> defs) lenv

let delta_c = Obs.Metrics.counter "prelude_cache.delta"

let build_delta ~(key : Sig.t) ?(dedup_defs = true)
    ~(prev : unit -> (Sig.t * Lenfun.env) option) (defs : unit -> Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  match Cache.find cache key with
  | Some b ->
      Obs.Metrics.incr hit_c;
      (b, true)
  | None ->
      Obs.Metrics.incr miss_c;
      let b =
        match prev () with
        | Some (prev_key, old_lenv) -> (
            match Cache.find cache prev_key with
            | Some pb ->
                Obs.Metrics.incr delta_c;
                (* the delta result is bitwise-identical to a from-scratch
                   build (updater contract, enforced by the differential
                   check), so inserting it under the value-carrying key
                   keeps the cache consistent; [pb] is shared with other
                   requests and never mutated — unchanged arrays are
                   shared into the new built record *)
                Prelude.delta_update ~dedup_defs ~prev:pb ~old_lenv (defs ()) lenv
            | None -> Prelude.build ~dedup_defs (defs ()) lenv)
        | None -> Prelude.build ~dedup_defs (defs ()) lenv
      in
      Cache.add cache key b;
      (b, false)
