(** Prelude cache (see prelude_cache.mli). *)

let table : (Sig.t, Prelude.built) Hashtbl.t = Hashtbl.create 32

let clear () = Hashtbl.reset table
let size () = Hashtbl.length table

let key ~(tables_sig : Sig.t) ~dedup_defs (defs : Prelude.def list) : Sig.t =
  let names =
    List.map
      (fun (d : Prelude.def) ->
        Printf.sprintf "%s:%s" d.Prelude.name
          (match d.Prelude.kind with Prelude.Storage -> "s" | Prelude.Loop_fusion -> "f"))
      defs
    |> List.sort_uniq String.compare
  in
  Sig.combine
    [
      Sig.of_string (if dedup_defs then "dedup" else "redundant");
      Sig.of_string (String.concat "," names);
      tables_sig;
    ]

let build_cached ~(tables_sig : Sig.t) ?(dedup_defs = true) (defs : Prelude.def list)
    (lenv : Lenfun.env) : Prelude.built * bool =
  let k = key ~tables_sig ~dedup_defs defs in
  match Hashtbl.find_opt table k with
  | Some b ->
      Obs.Metrics.incr (Obs.Metrics.counter "prelude_cache.hit");
      (b, true)
  | None ->
      Obs.Metrics.incr (Obs.Metrics.counter "prelude_cache.miss");
      let b = Prelude.build ~dedup_defs defs lenv in
      Hashtbl.replace table k b;
      (b, false)
