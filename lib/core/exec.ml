(** Kernel execution through the reference interpreter.

    Mirrors the runtime pipeline of Fig. 4: run the prelude on the host to
    build auxiliary structures, bind them (and the raw length functions and
    tensor buffers), then execute the generated kernels.  Used by tests,
    examples and any place that needs real numerics; performance questions
    go to the machine simulator instead.

    The whole pipeline is traced: one [exec.run] span wrapping the prelude
    build and one [exec.kernel] span per kernel, and the interpreter's
    statistics counters are flushed into the {!Obs.Metrics} registry
    (under [interp.*]) when the run completes. *)

type binding = Tensor.t * Runtime.Buffer.t

(** [run ~lenv ~bindings kernels] — build the (deduplicated) prelude for all
    kernels and interpret them in order.  [~multicore:true] executes
    [Parallel]-bound loops across [domains] OCaml domains.  [?prelude]
    supplies already-built aux structures (e.g. from {!Prelude_cache}),
    skipping the build entirely.  Returns the interpreter environment (for
    statistics) and the prelude used. *)
let run ?(multicore = false) ?(domains = 4) ?prelude ~(lenv : Lenfun.env)
    ~(bindings : binding list) (kernels : Lower.kernel list) :
    Runtime.Interp.env * Prelude.built =
  Obs.Span.with_span
    ~attrs:[ ("kernels", Obs.Trace_sink.Int (List.length kernels)) ]
    "exec.run"
  @@ fun () ->
  let env = Runtime.Interp.create () in
  List.iter (fun (t, b) -> Runtime.Interp.bind_buf env t.Tensor.buf b) bindings;
  Prelude.bind_lenfuns lenv env;
  let built =
    match prelude with
    | Some built -> built
    | None ->
        let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) kernels in
        Prelude.build ~dedup_defs:true defs lenv
  in
  Prelude.bind_all built env;
  List.iter
    (fun (k : Lower.kernel) ->
      Obs.Span.with_span
        ~attrs:[ ("kernel", Obs.Trace_sink.Str k.Lower.kname) ]
        "exec.kernel"
        (fun () ->
          if multicore then Runtime.Interp.exec_multicore ~domains env k.Lower.body
          else Runtime.Interp.exec env k.Lower.body))
    kernels;
  Runtime.Interp.flush_metrics env;
  (env, built)

(** Convenience wrapper for ragged tensor values. *)
let run_ragged ?multicore ?domains ?prelude ~(lenv : Lenfun.env) ~(tensors : Ragged.t list)
    kernels =
  run ?multicore ?domains ?prelude ~lenv
    ~bindings:(List.map (fun (r : Ragged.t) -> (r.Ragged.tensor, r.Ragged.buf)) tensors)
    kernels
