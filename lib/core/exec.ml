(** Kernel execution — the runtime half of Fig. 4.

    Mirrors the runtime pipeline: run the prelude on the host to build
    auxiliary structures, bind them (and the raw length functions and
    tensor buffers), then execute the generated kernels through one of two
    engines:

    - [`Interp] — the tree-walking reference interpreter ({!Runtime.Interp}),
      ground truth for the test suite;
    - [`Compiled] — the closure-compiling engine ({!Runtime.Engine}):
      kernels are compiled once per structural signature (a {!Sig}-keyed
      memo, like the lowering memo) and re-bound to fresh buffers and
      prelude tables per request.  [Parallel]-bound loops run on one
      persistent domain pool spawned per [run].

    Both engines maintain identical statistics counters, so the returned
    {!Runtime.Interp.env} reports the same counts either way.

    The whole pipeline is traced: one [exec.run] span wrapping the prelude
    build and one [exec.kernel] span per kernel (with [engine.compile] /
    [engine.run] sub-spans on the compiled path), and the counters are
    flushed into the {!Obs.Metrics} registry ([interp.*] or [engine.*]). *)

type binding = Tensor.t * Runtime.Buffer.t
type engine = [ `Interp | `Compiled ]

let engine_name = function `Interp -> "interp" | `Compiled -> "compiled"

(* ------------------------------------------------------------------ *)
(* Sig-keyed compiled-kernel memo.  Compilation depends only on the
   statement's structure — buffers, length functions and prelude tables
   are bound per frame — so the alpha-invariant structural signature is a
   sound cache key for the same reason it is one for lowering. *)

(* keyed by (signature, optimization level): the same structure compiles
   to different closure trees at different levels.  Shared across serving
   worker domains — mutex-protected and bounded (LRU eviction counted as
   engine_cache.evicted); compiled closures are immutable (all mutable
   state lives in per-request frames), so cross-domain sharing is sound. *)
let engine_memo : (Sig.t * int, Runtime.Engine.compiled) Cache.t =
  Cache.create ~name:"engine_cache" ~capacity:256 ()

let clear_engine_memo () = Cache.clear engine_memo
let engine_memo_size () = Cache.size engine_memo
let set_engine_memo_capacity n = Cache.set_capacity engine_memo n
let engine_memo_capacity () = Cache.capacity engine_memo

let engine_hit_c = Obs.Metrics.counter "engine_cache.hit"
let engine_miss_c = Obs.Metrics.counter "engine_cache.miss"

(* Per-request engine-memo accounting, scoped in domain-local storage
   exactly like [Lower.with_memo]: the global hit/miss counters
   double-count as soon as two requests overlap, so callers that need a
   per-request tally (the serving flight recorder) wrap their pipeline
   in [with_engine_stats] and read the stats the scope collected. *)
type engine_stats = { mutable hits : int; mutable misses : int }

let engine_stats_key : engine_stats option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_engine_stats f =
  let slot = Domain.DLS.get engine_stats_key in
  let saved = !slot in
  let stats = { hits = 0; misses = 0 } in
  slot := Some stats;
  let v = Fun.protect ~finally:(fun () -> slot := saved) f in
  (v, stats)

let tally_engine hit =
  match !(Domain.DLS.get engine_stats_key) with
  | Some s -> if hit then s.hits <- s.hits + 1 else s.misses <- s.misses + 1
  | None -> ()

let compile_cached ~(opt : Ir.Optimize.level) (k : Lower.kernel) : Runtime.Engine.compiled =
  let key = (Sig.of_stmt k.Lower.body, Ir.Optimize.int_of_level opt) in
  match Cache.find engine_memo key with
  | Some c ->
      Obs.Metrics.incr engine_hit_c;
      tally_engine true;
      c
  | None ->
      Obs.Metrics.incr engine_miss_c;
      tally_engine false;
      let c =
        Obs.Span.with_span
          ~attrs:
            [
              ("kernel", Obs.Trace_sink.Str k.Lower.kname);
              ("opt", Obs.Trace_sink.Str (Ir.Optimize.level_name opt));
            ]
          "engine.compile"
          (fun () -> Runtime.Engine.compile ~opt k.Lower.body)
      in
      Cache.add engine_memo key c;
      c

(* Bind buffers, length functions and prelude tables to a frame, in the
   same order the interpreter path binds them (later bindings win). *)
let bind_frame ~(lenv : Lenfun.env) ~(built : Prelude.built) ~(bindings : binding list) fr =
  List.iter (fun ((t : Tensor.t), b) -> Runtime.Engine.bind_buf fr t.Tensor.buf b) bindings;
  List.iter (fun (name, f) -> Runtime.Engine.bind_ufun1 fr name f) lenv;
  List.iter
    (fun (name, v) ->
      match v with
      | Prelude.Scalar n -> Runtime.Engine.bind_ufun_const fr name n
      | Prelude.Table a -> Runtime.Engine.bind_ufun_table fr name a)
    built.Prelude.tables

let run ?(engine = `Interp) ?(opt = Ir.Optimize.O0) ?(multicore = false) ?(domains = 4)
    ?prelude ~(lenv : Lenfun.env) ~(bindings : binding list) (kernels : Lower.kernel list) :
    Runtime.Interp.env * Prelude.built =
  Obs.Span.with_span
    ~attrs:
      [
        ("kernels", Obs.Trace_sink.Int (List.length kernels));
        ("engine", Obs.Trace_sink.Str (engine_name engine));
        ("opt", Obs.Trace_sink.Str (Ir.Optimize.level_name opt));
      ]
    "exec.run"
  @@ fun () ->
  let env = Runtime.Interp.create () in
  let built =
    match prelude with
    | Some built -> built
    | None ->
        let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) kernels in
        Prelude.build ~dedup_defs:true defs lenv
  in
  (match engine with
  | `Interp ->
      List.iter (fun (t, b) -> Runtime.Interp.bind_buf env t.Tensor.buf b) bindings;
      Prelude.bind_lenfuns lenv env;
      Prelude.bind_all built env;
      List.iter
        (fun (k : Lower.kernel) ->
          Obs.Span.with_span
            ~attrs:[ ("kernel", Obs.Trace_sink.Str k.Lower.kname) ]
            "exec.kernel"
            (fun () ->
              if multicore then Runtime.Interp.exec_multicore ~domains env k.Lower.body
              else Runtime.Interp.exec env k.Lower.body))
        kernels;
      Runtime.Interp.flush_metrics env
  | `Compiled ->
      (* one persistent pool per run; every Parallel loop of every kernel
         reuses its domains instead of spawning fresh ones *)
      let pool =
        if multicore && domains > 1 then Some (Runtime.Engine.Pool.create ~domains ())
        else None
      in
      Fun.protect ~finally:(fun () -> Option.iter Runtime.Engine.Pool.shutdown pool)
      @@ fun () ->
      List.iter
        (fun (k : Lower.kernel) ->
          Obs.Span.with_span
            ~attrs:[ ("kernel", Obs.Trace_sink.Str k.Lower.kname) ]
            "exec.kernel"
          @@ fun () ->
          let c = compile_cached ~opt k in
          let fr = Runtime.Engine.frame c in
          bind_frame ~lenv ~built ~bindings fr;
          Obs.Span.with_span "engine.run" (fun () -> Runtime.Engine.run ?pool fr);
          Runtime.Engine.flush_metrics fr;
          (* fold into the interpreter env so callers read one counter set *)
          List.iter
            (fun (name, v) ->
              match name with
              | "loads" -> env.Runtime.Interp.loads <- env.Runtime.Interp.loads + v
              | "stores" -> env.Runtime.Interp.stores <- env.Runtime.Interp.stores + v
              | "flops" -> env.Runtime.Interp.flops <- env.Runtime.Interp.flops + v
              | "indirect" -> env.Runtime.Interp.indirect <- env.Runtime.Interp.indirect + v
              | "guards" -> env.Runtime.Interp.guards <- env.Runtime.Interp.guards + v
              | "guard_hits" ->
                  env.Runtime.Interp.guard_hits <- env.Runtime.Interp.guard_hits + v
              | _ -> ())
            (Runtime.Engine.stats fr))
        kernels);
  (env, built)

(** Convenience wrapper for ragged tensor values. *)
let run_ragged ?engine ?opt ?multicore ?domains ?prelude ~(lenv : Lenfun.env)
    ~(tensors : Ragged.t list) kernels =
  run ?engine ?opt ?multicore ?domains ?prelude ~lenv
    ~bindings:(List.map (fun (r : Ragged.t) -> (r.Ragged.tensor, r.Ragged.buf)) tensors)
    kernels
