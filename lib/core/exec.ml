(** Kernel execution through the reference interpreter.

    Mirrors the runtime pipeline of Fig. 4: run the prelude on the host to
    build auxiliary structures, bind them (and the raw length functions and
    tensor buffers), then execute the generated kernels.  Used by tests,
    examples and any place that needs real numerics; performance questions
    go to the machine simulator instead. *)

type binding = Tensor.t * Runtime.Buffer.t

(** [run ~lenv ~bindings kernels] — build the (deduplicated) prelude for all
    kernels and interpret them in order.  Returns the interpreter
    environment (for statistics) and the built prelude. *)
let run ~(lenv : Lenfun.env) ~(bindings : binding list) (kernels : Lower.kernel list) :
    Runtime.Interp.env * Prelude.built =
  let env = Runtime.Interp.create () in
  List.iter (fun (t, b) -> Runtime.Interp.bind_buf env t.Tensor.buf b) bindings;
  Prelude.bind_lenfuns lenv env;
  let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) kernels in
  let built = Prelude.build ~dedup_defs:true defs lenv in
  Prelude.bind_all built env;
  List.iter (fun (k : Lower.kernel) -> Runtime.Interp.exec env k.Lower.body) kernels;
  (env, built)

(** Convenience wrapper for ragged tensor values. *)
let run_ragged ~(lenv : Lenfun.env) ~(tensors : Ragged.t list) kernels =
  run ~lenv ~bindings:(List.map (fun (r : Ragged.t) -> (r.Ragged.tensor, r.Ragged.buf)) tensors) kernels
