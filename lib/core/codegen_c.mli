(** C code generation — the target-dependent code of Fig. 4 (steps 5/9).

    Each compiled kernel becomes a C function: buffers are [float*]
    parameters, prelude-built uninterpreted functions become [const int*]
    tables (0-ary totals become scalars), and loop bindings are annotated
    with the grid/thread dimensions they would map to in CUDA. *)

val expr : Format.formatter -> Ir.Expr.t -> unit
val stmt : indent:int -> Format.formatter -> Ir.Stmt.t -> unit

(** Buffers the kernel reads or writes (scratch [Alloc]s excluded). *)
val kernel_buffers : Ir.Stmt.t -> Ir.Var.t list

(** Uninterpreted functions the kernel references, with arities (0-ary
    totals become scalar parameters; others become [const int*] tables). *)
val kernel_ufuns : Ir.Stmt.t -> (string * int) list

val kernel : Format.formatter -> Lower.kernel -> unit
val kernel_to_string : Lower.kernel -> string

(** Host-side prelude summary (Fig. 4 step 7). *)
val prelude : Format.formatter -> Prelude.def list -> unit

val prelude_to_string : Prelude.def list -> string

(** A whole pipeline as one C translation unit: header, prelude summary,
    every kernel, and a host driver skeleton. *)
val program : Format.formatter -> name:string -> Lower.kernel list -> unit

val program_to_string : name:string -> Lower.kernel list -> string

(** CUDA flavour: leading [Gpu_block]/[Gpu_thread] loops become
    [blockIdx]/[threadIdx] coordinates of a [__global__] function; runtime
    thread extents get an early-return bound check. *)
val cuda_kernel : Format.formatter -> Lower.kernel -> unit

val cuda_kernel_to_string : Lower.kernel -> string
