(** Prelude cache: reuse built auxiliary structures across requests whose
    batch has the same raggedness signature.

    The paper amortises prelude cost across the six layers of one encoder
    (§7.4); a request stream amortises further — across requests — because
    mini-batches with the same multiset of sequence lengths recur.  The
    cache key is the canonical pair (def set, concrete length tables):
    defs are identified by name (the repository-wide invariant behind
    {!Prelude.dedup} is that a def's name determines its content given the
    environment) and the environment by {!Sig.of_tables} over the concrete
    length arrays.  Because the tables' {e values} are part of the key,
    mutating any sequence length yields a different key — stale reuse is
    impossible by construction; keys compare as full canonical strings,
    never as hashes, so a collision can cost a miss but never a wrong
    reuse. *)

(** [build_cached ~tables_sig defs lenv] — like {!Prelude.build}, but
    consults the cache first.  [tables_sig] must be {!Sig.of_tables} over
    the concrete tables backing {e every} length function the defs read
    (the serving layer constructs [lenv] from exactly those tables, so the
    signature determines the build).  Returns the built structures and
    whether they came from the cache; on a hit no def is computed — the
    host work for the request is zero.  Counters: [prelude_cache.hit] /
    [prelude_cache.miss]. *)
val build_cached :
  tables_sig:Sig.t -> ?dedup_defs:bool -> Prelude.def list -> Lenfun.env ->
  Prelude.built * bool

(** The cache key {!build_cached} derives: canonical def-name set plus
    [tables_sig].  Deriving it walks the def list; a caller serving
    repeat shapes can compute it once and replay lookups through
    {!build_keyed}. *)
val key_of : tables_sig:Sig.t -> ?dedup_defs:bool -> Prelude.def list -> Sig.t

(** [build_keyed ~key defs lenv] — {!build_cached} with the key already
    derived ({!key_of}); [defs] is forced only on a miss, so a hit does
    one bounded-cache lookup and nothing else.  The cache's LRU bound
    still governs: an evicted entry rebuilds (and reports a miss) like
    any other. *)
val build_keyed :
  key:Sig.t -> ?dedup_defs:bool -> (unit -> Prelude.def list) -> Lenfun.env ->
  Prelude.built * bool

(** [build_delta ~key ~prev defs lenv] — {!build_keyed} with incremental
    prelude maintenance on a miss (the decode fast path): [prev] is forced
    only then and names the predecessor step's key and environment (for
    decode, the same batch with every length one smaller).  If the
    predecessor is cached, the new tables are produced by
    {!Prelude.delta_update} — touching only changed rows and sharing
    unchanged arrays — instead of a from-scratch build; otherwise this
    degrades to a plain build.  Correctness does not depend on [prev]
    actually being the predecessor: keys carry the table values, and a
    delta result is bitwise-identical to a fresh build.  Counter:
    [prelude_cache.delta] per delta-built miss. *)
val build_delta :
  key:Sig.t -> ?dedup_defs:bool -> prev:(unit -> (Sig.t * Lenfun.env) option) ->
  (unit -> Prelude.def list) -> Lenfun.env -> Prelude.built * bool

(** Explicit invalidation: drop every cached build (for when length
    functions change identity rather than content). *)
val clear : unit -> unit

val size : unit -> int

(** The table is shared across serving worker domains: mutex-protected
    and bounded to {!capacity} entries with least-recently-used eviction
    ([prelude_cache.evicted] counter) — an unbounded table under a
    long-lived stream of never-repeating batch shapes is a memory leak.
    [set_capacity] clamps to >= 1 and evicts immediately when shrinking
    below the current size. *)
val set_capacity : int -> unit

val capacity : unit -> int
