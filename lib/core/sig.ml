(** Structural signatures (see sig.mli).

    The canonical form is an s-expression-style string: every node is
    rendered as [(tag field...)], so the rendering is injective on the
    structures it covers.  Variables, dimensions and schedule axes are
    replaced by dense indices assigned at first occurrence in the
    (deterministic) traversal — the alpha-renaming that makes the
    signature independent of the global freshness counters and of display
    names.  Launch-time-resolved names (length functions, prelude tables,
    intrinsics, tensor names) are emitted verbatim: they are part of the
    program's meaning, not of its spelling. *)

type t = string

let equal = String.equal
let compare = String.compare
let canonical s = s

(* FNV-1a, 64-bit. *)
let hash64 (s : string) : int64 =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let to_hex s = Printf.sprintf "%016Lx" (hash64 s)
let combine ts = "(" ^ String.concat " " ts ^ ")"
let of_string s = "(s " ^ s ^ ")"

(* ------------------------------------------------------------------ *)
(* Canonicalisation context: first-occurrence numbering of variables,
   dimensions and schedule axes. *)

type ctx = {
  b : Buffer.t;
  vars : (int, int) Hashtbl.t;  (* Var.id -> canonical index *)
  dims : (int, int) Hashtbl.t;  (* Dim.id -> canonical index *)
  axes : (int, int) Hashtbl.t;  (* Schedule aid -> canonical index *)
  tensors : (int, unit) Hashtbl.t;  (* buf Var.id of tensors already emitted *)
}

let ctx_create () =
  {
    b = Buffer.create 512;
    vars = Hashtbl.create 32;
    dims = Hashtbl.create 8;
    axes = Hashtbl.create 16;
    tensors = Hashtbl.create 8;
  }

let intern tbl key =
  match Hashtbl.find_opt tbl key with
  | Some i -> i
  | None ->
      let i = Hashtbl.length tbl in
      Hashtbl.add tbl key i;
      i

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.b) fmt
let var_idx ctx (v : Ir.Var.t) = intern ctx.vars (Ir.Var.id v)
let dim_idx ctx (d : Dim.t) = intern ctx.dims d.Dim.id
let emit_var ctx v = pf ctx "v%d" (var_idx ctx v)

(* ------------------------------------------------------------------ *)
(* Expressions and statements. *)

let binop_tag : Ir.Expr.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | FloorDiv -> "fd"
  | Mod -> "%"
  | Min -> "mn"
  | Max -> "mx"

let cmpop_tag : Ir.Expr.cmpop -> string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec emit_expr ctx (e : Ir.Expr.t) =
  match e with
  | Int n -> pf ctx "i%d" n
  | Float f -> pf ctx "f%h" f
  | Bool b -> pf ctx "b%b" b
  | Var v -> emit_var ctx v
  | Binop (op, a, b) ->
      pf ctx "(%s " (binop_tag op);
      emit_expr ctx a;
      pf ctx " ";
      emit_expr ctx b;
      pf ctx ")"
  | Cmp (op, a, b) ->
      pf ctx "(%s " (cmpop_tag op);
      emit_expr ctx a;
      pf ctx " ";
      emit_expr ctx b;
      pf ctx ")"
  | And (a, b) -> emit_node ctx "and" [ a; b ]
  | Or (a, b) -> emit_node ctx "or" [ a; b ]
  | Not a -> emit_node ctx "not" [ a ]
  | Select (c, a, b) -> emit_node ctx "sel" [ c; a; b ]
  | Load { buf; index } ->
      pf ctx "(ld ";
      emit_var ctx buf;
      pf ctx " ";
      emit_expr ctx index;
      pf ctx ")"
  | Ufun (name, args) -> emit_node ctx ("uf:" ^ name) args
  | Call (name, args) -> emit_node ctx ("call:" ^ name) args
  | Access { tensor; indices } -> emit_node ctx ("acc:" ^ tensor) indices
  | Let (v, value, body) ->
      pf ctx "(let ";
      emit_expr ctx value;
      pf ctx " ";
      emit_var ctx v;
      pf ctx " ";
      emit_expr ctx body;
      pf ctx ")"

and emit_node ctx tag args =
  pf ctx "(%s" tag;
  List.iter
    (fun a ->
      pf ctx " ";
      emit_expr ctx a)
    args;
  pf ctx ")"

let for_kind_tag : Ir.Stmt.for_kind -> string = function
  | Serial -> "ser"
  | Parallel -> "par"
  | Vectorized -> "vec"
  | Unrolled -> "unr"
  | Gpu_block -> "blk"
  | Gpu_thread -> "thr"

let reduce_tag : Ir.Stmt.reduce_op -> string = function
  | Sum -> "sum"
  | Prod -> "prod"
  | Rmax -> "rmax"
  | Rmin -> "rmin"

let rec emit_stmt ctx (s : Ir.Stmt.t) =
  match s with
  | For { var; min; extent; kind; body } ->
      pf ctx "(for:%s " (for_kind_tag kind);
      emit_var ctx var;
      pf ctx " ";
      emit_expr ctx min;
      pf ctx " ";
      emit_expr ctx extent;
      pf ctx " ";
      emit_stmt ctx body;
      pf ctx ")"
  | Let_stmt (v, e, body) ->
      pf ctx "(lets ";
      emit_expr ctx e;
      pf ctx " ";
      emit_var ctx v;
      pf ctx " ";
      emit_stmt ctx body;
      pf ctx ")"
  | Store { buf; index; value } ->
      pf ctx "(st ";
      emit_var ctx buf;
      pf ctx " ";
      emit_expr ctx index;
      pf ctx " ";
      emit_expr ctx value;
      pf ctx ")"
  | Reduce_store { buf; index; value; op } ->
      pf ctx "(rst:%s " (reduce_tag op);
      emit_var ctx buf;
      pf ctx " ";
      emit_expr ctx index;
      pf ctx " ";
      emit_expr ctx value;
      pf ctx ")"
  | If (c, a, b) ->
      pf ctx "(if ";
      emit_expr ctx c;
      pf ctx " ";
      emit_stmt ctx a;
      (match b with
      | Some b ->
          pf ctx " ";
          emit_stmt ctx b
      | None -> ());
      pf ctx ")"
  | Seq l ->
      pf ctx "(seq";
      List.iter
        (fun s ->
          pf ctx " ";
          emit_stmt ctx s)
        l;
      pf ctx ")"
  | Alloc { buf; size; body } ->
      pf ctx "(alloc ";
      emit_expr ctx size;
      pf ctx " ";
      emit_var ctx buf;
      pf ctx " ";
      emit_stmt ctx body;
      pf ctx ")"
  | Eval e ->
      pf ctx "(ev ";
      emit_expr ctx e;
      pf ctx ")"
  | Nop -> pf ctx "nop"

(* ------------------------------------------------------------------ *)
(* Shapes, tensors, operators. *)

let emit_shape ctx (sh : Shape.t) =
  match sh with
  | Shape.Fixed n -> pf ctx "(fix %d)" n
  | Shape.Ragged { dep; fn } -> pf ctx "(rag d%d %s)" (dim_idx ctx dep) (Lenfun.name fn)

let emit_tensor ctx (t : Tensor.t) =
  let bid = Ir.Var.id t.Tensor.buf in
  if Hashtbl.mem ctx.tensors bid then pf ctx "(tref v%d)" (var_idx ctx t.Tensor.buf)
  else begin
    Hashtbl.add ctx.tensors bid ();
    pf ctx "(tensor:%s " t.Tensor.name;
    emit_var ctx t.Tensor.buf;
    pf ctx " (dims";
    List.iter (fun d -> pf ctx " d%d" (dim_idx ctx d)) t.Tensor.dims;
    pf ctx ") (ext";
    List.iter
      (fun sh ->
        pf ctx " ";
        emit_shape ctx sh)
      t.Tensor.extents;
    pf ctx ") (pads";
    Array.iter (pf ctx " %d") t.Tensor.pads;
    pf ctx ") bulk%d" t.Tensor.bulk_pad;
    (match t.Tensor.fused_dims with
    | Some (i, j) -> pf ctx " (fdims %d %d)" i j
    | None -> ());
    pf ctx ")"
  end

let emit_op ctx (op : Op.t) =
  pf ctx "(op:%s" op.Op.name;
  pf ctx " (dv";
  Array.iter
    (fun v ->
      pf ctx " ";
      emit_var ctx v)
    op.Op.dim_vars;
  pf ctx ") (lext";
  Array.iter
    (fun sh ->
      pf ctx " ";
      emit_shape ctx sh)
    op.Op.loop_extents;
  pf ctx ") (rv";
  Array.iter
    (fun (r : Op.rvar) ->
      pf ctx " (";
      emit_var ctx r.Op.rv;
      pf ctx " d%d " (dim_idx ctx r.Op.rdim);
      emit_shape ctx r.Op.rextent;
      pf ctx ")")
    op.Op.rvars;
  pf ctx ")";
  (match op.Op.reduce with
  | Some r -> pf ctx " red:%s" (reduce_tag r)
  | None -> pf ctx " map");
  pf ctx " (body ";
  emit_expr ctx op.Op.body;
  pf ctx ") (init ";
  emit_expr ctx op.Op.init;
  pf ctx ")";
  (match op.Op.epilogue with
  | Some post ->
      (* Serialise the epilogue by probing it with a fresh variable. *)
      let probe = Ir.Var.fresh "sig_probe" in
      pf ctx " (epi ";
      emit_var ctx probe;
      pf ctx " ";
      emit_expr ctx (post (Ir.Expr.var probe));
      pf ctx ")"
  | None -> ());
  pf ctx " (out ";
  emit_tensor ctx op.Op.out;
  pf ctx ") (reads";
  List.iter
    (fun t ->
      pf ctx " ";
      emit_tensor ctx t)
    op.Op.reads;
  pf ctx "))"

(* ------------------------------------------------------------------ *)
(* Schedules. *)

let remap_tag : Schedule.remap_policy -> string = function
  | Schedule.No_remap -> "none"
  | Schedule.Descending_work -> "desc"

let range_tag : Schedule.range_mode -> string = function
  | Schedule.Full -> "full"
  | Schedule.Tiles_only -> "tiles"
  | Schedule.Tail_only -> "tail"

let rec emit_axis ctx (a : Schedule.axis) =
  match Hashtbl.find_opt ctx.axes a.Schedule.aid with
  | Some i -> pf ctx "(a %d)" i
  | None ->
      let i = Hashtbl.length ctx.axes in
      Hashtbl.add ctx.axes a.Schedule.aid i;
      pf ctx "(axis %d " i;
      emit_var ctx a.Schedule.avar;
      pf ctx " k:%s p%d r:%s e%b " (for_kind_tag a.Schedule.kind) a.Schedule.pad
        (remap_tag a.Schedule.remap) a.Schedule.elide_guard;
      (match a.Schedule.origin with
      | Schedule.Root (Schedule.Data i) -> pf ctx "(root-d %d)" i
      | Schedule.Root (Schedule.Reduction i) -> pf ctx "(root-r %d)" i
      | Schedule.Split_outer (p, f) ->
          pf ctx "(so ";
          emit_axis ctx p;
          pf ctx " %d)" f
      | Schedule.Split_inner (p, f) ->
          pf ctx "(si ";
          emit_axis ctx p;
          pf ctx " %d)" f
      | Schedule.Fused { fa; fb; f_kind } -> (
          pf ctx "(fz ";
          emit_axis ctx fa;
          pf ctx " ";
          emit_axis ctx fb;
          match f_kind with
          | Schedule.Dense_fuse n -> pf ctx " (df %d))" n
          | Schedule.Ragged_fuse
              { fn_name; count; inner_pad; triple; off_name; total_name; real_total_name } ->
              pf ctx " (rf %s c%d ip%d %s %s %s %s %s %s))" fn_name count inner_pad off_name
                total_name real_total_name triple.Ir.Simplify.fo triple.Ir.Simplify.fi
                triple.Ir.Simplify.oif));
      pf ctx ")"

let guard_tag : Schedule.guard_mode -> string = function
  | Schedule.Guard -> "guard"
  | Schedule.Elide -> "elide"

let bound_tag : Schedule.boundedness -> string = function
  | Schedule.Compute_bound -> "cb"
  | Schedule.Memory_bound -> "mb"

let emit_schedule ctx (s : Schedule.t) =
  pf ctx "(sched ";
  emit_op ctx s.Schedule.op;
  pf ctx " (droots";
  Array.iter
    (fun a ->
      pf ctx " ";
      emit_axis ctx a)
    s.Schedule.data_roots;
  pf ctx ") (rroots";
  Array.iter
    (fun a ->
      pf ctx " ";
      emit_axis ctx a)
    s.Schedule.red_roots;
  pf ctx ") (leaves";
  List.iter
    (fun a ->
      pf ctx " ";
      emit_axis ctx a)
    s.Schedule.leaves;
  pf ctx ") g:%s h%b eff%h b:%s)" (guard_tag s.Schedule.guard_mode) s.Schedule.hoist
    s.Schedule.eff (bound_tag s.Schedule.bound)

let with_ctx f =
  let ctx = ctx_create () in
  f ctx;
  Buffer.contents ctx.b

let of_expr e = with_ctx (fun ctx -> emit_expr ctx e)
let of_stmt s = with_ctx (fun ctx -> emit_stmt ctx s)
let of_op op = with_ctx (fun ctx -> emit_op ctx op)
let of_schedule s = with_ctx (fun ctx -> emit_schedule ctx s)

let lowering_key ?(ranges : (int * Schedule.range_mode) list = []) ?(init = true)
    ?apply_epilogue ?(name_suffix = "") (s : Schedule.t) : t =
  (* Mirror {!Lower.lower}'s defaulting so equal effective options key
     equally however they were spelled. *)
  let apply_epilogue = match apply_epilogue with Some b -> b | None -> init in
  with_ctx (fun ctx ->
      pf ctx "(lower ";
      emit_schedule ctx s;
      (* Canonicalise range-mode axis ids through the numbering the
         schedule serialisation just assigned.  An id the schedule does
         not reach cannot influence lowering either way, but keep it
         (tagged raw) rather than silently conflating keys. *)
      let canon_aid aid =
        match Hashtbl.find_opt ctx.axes aid with
        | Some i -> Printf.sprintf "a%d" i
        | None -> Printf.sprintf "raw%d" aid
      in
      let rs =
        List.map (fun (aid, m) -> Printf.sprintf "(%s %s)" (canon_aid aid) (range_tag m)) ranges
        |> List.sort String.compare
      in
      pf ctx " (ranges%s)" (String.concat "" (List.map (fun r -> " " ^ r) rs));
      pf ctx " init%b epi%b sfx:%s)" init apply_epilogue name_suffix)

(* Order-sensitive signature of a sequence of integer arrays — the
   batch-former's pack-plan key: two drain windows whose pending requests
   carry the same raggedness vectors in the same order share one packing
   plan ([Serving.Batcher]'s Cache-backed memo). *)
let of_rows (rows : int array array) : t =
  let b = Buffer.create 128 in
  Buffer.add_string b "(rows";
  Array.iter
    (fun a ->
      Buffer.add_string b (Printf.sprintf " (n%d" (Array.length a));
      Array.iter (fun x -> Buffer.add_string b (Printf.sprintf " %d" x)) a;
      Buffer.add_string b ")")
    rows;
  Buffer.add_string b ")";
  Buffer.contents b

let of_tables (tables : (string * int array) list) : t =
  let tables = List.sort (fun (a, _) (b, _) -> String.compare a b) tables in
  let b = Buffer.create 128 in
  Buffer.add_string b "(tables";
  List.iter
    (fun (name, a) ->
      Buffer.add_string b (Printf.sprintf " (%s n%d" name (Array.length a));
      Array.iter (fun x -> Buffer.add_string b (Printf.sprintf " %d" x)) a;
      Buffer.add_string b ")")
    tables;
  Buffer.add_string b ")";
  Buffer.contents b
