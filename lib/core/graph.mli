(** Operator graphs and activation-memory planning — the layer that "ties
    the operators together" (§C), plus the training-memory optimisation the
    paper motivates (§7.2, §D.5): buffer liveness analysis and greedy
    in-place reuse of dead intermediates, on ragged storage. *)

type node = {
  kernel : Lower.kernel;
  reads : Tensor.t list;  (** inferred from the kernel's loads *)
  writes : Tensor.t;
}

type t = {
  nodes : node list;  (** program order *)
  tensors : Tensor.t list;
  inputs : Tensor.t list;  (** externally provided; never reused *)
  outputs : Tensor.t list;  (** externally observed; never reused *)
}

val make :
  tensors:Tensor.t list -> inputs:Tensor.t list -> outputs:Tensor.t list ->
  Lower.kernel list -> t

(** [first write, last read] program-order range per tensor. *)
val liveness : t -> (Tensor.t * int * int) list

type plan = {
  slot_of : (int, int) Hashtbl.t;  (** tensor buffer id -> slot *)
  slot_bytes : int array;
}

(** Greedy interval colouring: tensors with disjoint live ranges share a
    slot (validated by the test suite: aliased execution is identical). *)
val plan : t -> lenv:Lenfun.env -> plan

(** Peak intermediate bytes without / with reuse. *)
val naive_bytes : t -> lenv:Lenfun.env -> int

val planned_bytes : plan -> int

(** Execute with the plan's buffer sharing; [bindings] supplies the
    external tensors' buffers. *)
val execute :
  t -> plan -> lenv:Lenfun.env -> bindings:(Tensor.t * Runtime.Buffer.t) list ->
  Runtime.Interp.env * Prelude.built
