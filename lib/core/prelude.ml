(** Prelude: host-side construction of auxiliary data structures (§2, §5).

    Storage lowering and vloop fusion emit references to uninterpreted
    functions whose values depend only on the raggedness pattern (insight I1
    of the paper: lengths are known before the kernel runs).  Each such
    function is described here as a {!def}; [build] materialises all of
    them from the concrete length-function environment, yielding runtime
    tables plus the time/memory accounting reported in §7.4 (and the
    host→device copy volume). *)

type kind =
  | Storage  (** ragged-storage offset arrays, CoRa's [A_d] (§B.1) *)
  | Loop_fusion  (** fused-vloop maps [f_fo]/[f_fi]/offsets/totals (§5.1) *)

type value = Scalar of int | Table of int array

type def = {
  name : string;  (** doubles as the uninterpreted-function name in the IR *)
  kind : kind;
  compute : Lenfun.env -> value;
  work : Lenfun.env -> int;
      (** host operations needed to build it (≈ entries written) *)
  c_src : string option;
      (** host-side C implementation, when the def comes from one of the
          standard constructors (emitted by {!Codegen_c.prelude}) *)
  update : (prev:value -> old_lenv:Lenfun.env -> Lenfun.env -> (value * int) option) option;
      (** incremental maintenance: given the table built for [old_lenv],
          produce the table for the new environment touching only changed
          rows (decode steps grow lengths by one, so most padded slice
          sizes — and hence most table entries — are unchanged).  Returns
          the new value and the host operations actually performed, or
          [None] when the previous value is unusable (shape mismatch) and
          the caller must fall back to {!def.compute}.  When nothing
          changed the {e previous} value is returned physically, sharing
          the array. *)
}

(** Result of running the prelude for one kernel/pipeline. *)
type built = {
  tables : (string * value) list;
  storage_entries : int;  (** int entries in Storage aux structures *)
  fusion_entries : int;  (** int entries in Loop_fusion aux structures *)
  storage_work : int;
  fusion_work : int;
}

let value_entries = function Scalar _ -> 1 | Table a -> Array.length a

(** Deduplicate defs by name: CoRa shares auxiliary structures across
    operators and layers when the raggedness pattern is the same (§7.4,
    CoRa-Optimized).  Keeping duplicates models CoRa-Redundant. *)
let dedup defs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      if Hashtbl.mem seen d.name then false
      else begin
        Hashtbl.add seen d.name ();
        true
      end)
    defs

(** Build all aux structures.  [dedup_defs:false] reproduces the redundant
    per-operator computation of the unoptimized prototype (Tables 7–8). *)
let build ?(dedup_defs = true) (defs : def list) (lenv : Lenfun.env) : built =
  Obs.Span.with_span "prelude.build" @@ fun () ->
  let requested = List.length defs in
  let defs = if dedup_defs then dedup defs else defs in
  let dedup_hits = requested - List.length defs in
  Obs.Metrics.add (Obs.Metrics.counter "prelude.dedup_hits") dedup_hits;
  Obs.Metrics.add (Obs.Metrics.counter "prelude.tables_built") (List.length defs);
  let entries_h = Obs.Metrics.histogram "prelude.table_entries" in
  let tables =
    List.map
      (fun d ->
        Obs.Span.with_span ~attrs:[ ("table", Obs.Trace_sink.Str d.name) ] "prelude.def"
        @@ fun () ->
        let v = d.compute lenv in
        Obs.Span.add_attr "entries" (Obs.Trace_sink.Int (value_entries v));
        Obs.Metrics.observe entries_h (float_of_int (value_entries v));
        (d.name, v))
      defs
  in
  let acc kind f =
    List.fold_left2
      (fun total d (_, v) -> if d.kind = kind then total + f d v else total)
      0 defs tables
  in
  let built =
    {
      tables;
      storage_entries = acc Storage (fun _ v -> value_entries v);
      fusion_entries = acc Loop_fusion (fun _ v -> value_entries v);
      storage_work = acc Storage (fun d _ -> d.work lenv);
      fusion_work = acc Loop_fusion (fun d _ -> d.work lenv);
    }
  in
  Obs.Span.add_attr "dedup_hits" (Obs.Trace_sink.Int dedup_hits);
  Obs.Span.add_attr "storage_entries" (Obs.Trace_sink.Int built.storage_entries);
  Obs.Span.add_attr "fusion_entries" (Obs.Trace_sink.Int built.fusion_entries);
  Obs.Span.add_attr "bytes"
    (Obs.Trace_sink.Int (4 * (built.storage_entries + built.fusion_entries)));
  built

(* When enabled, every delta-updated table is rebuilt from scratch and
   compared bitwise — the differential oracle for the incremental path.
   Read-mostly flag shared across serving domains, hence Atomic. *)
let delta_check = Atomic.make false
let set_delta_check b = Atomic.set delta_check b
let delta_check_enabled () = Atomic.get delta_check

let value_equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> x = y
  | Table x, Table y -> x = y
  | _ -> false

exception Delta_mismatch of string

(** Delta-update every table from [prev] (built for [old_lenv]) to the new
    environment.  Defs without an [update] function, defs absent from
    [prev], and defs whose updater declines (shape mismatch) fall back to
    a from-scratch {!def.compute} and count as [prelude.tables_built];
    successful updates count as [prelude.tables_delta_updated] (plus
    [prelude.tables_shared] when the previous array is reused by
    reference).  Work accounting records the operations actually
    performed, so the modeled host time shrinks with the delta. *)
let delta_update ?(dedup_defs = true) ~(prev : built) ~(old_lenv : Lenfun.env)
    (defs : def list) (lenv : Lenfun.env) : built =
  Obs.Span.with_span "prelude.delta_update" @@ fun () ->
  let requested = List.length defs in
  let defs = if dedup_defs then dedup defs else defs in
  Obs.Metrics.add (Obs.Metrics.counter "prelude.dedup_hits") (requested - List.length defs);
  let delta_c = Obs.Metrics.counter "prelude.tables_delta_updated" in
  let shared_c = Obs.Metrics.counter "prelude.tables_shared" in
  let built_c = Obs.Metrics.counter "prelude.tables_built" in
  let entries_h = Obs.Metrics.histogram "prelude.table_entries" in
  let works : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let tables =
    List.map
      (fun d ->
        let fallback () =
          Obs.Metrics.incr built_c;
          Hashtbl.replace works d.name (d.work lenv);
          d.compute lenv
        in
        let v =
          match d.update with
          | None -> fallback ()
          | Some u -> (
              match List.assoc_opt d.name prev.tables with
              | None -> fallback ()
              | Some pv -> (
                  match u ~prev:pv ~old_lenv lenv with
                  | None -> fallback ()
                  | Some (v, wk) ->
                      Obs.Metrics.incr delta_c;
                      if v == pv then Obs.Metrics.incr shared_c;
                      Hashtbl.replace works d.name wk;
                      v))
        in
        if Atomic.get delta_check then begin
          let full = d.compute lenv in
          if not (value_equal v full) then raise (Delta_mismatch d.name)
        end;
        Obs.Metrics.observe entries_h (float_of_int (value_entries v));
        (d.name, v))
      defs
  in
  let acc kind f =
    List.fold_left2
      (fun total d (_, v) -> if d.kind = kind then total + f d v else total)
      0 defs tables
  in
  {
    tables;
    storage_entries = acc Storage (fun _ v -> value_entries v);
    fusion_entries = acc Loop_fusion (fun _ v -> value_entries v);
    storage_work = acc Storage (fun d _ -> Hashtbl.find works d.name);
    fusion_work = acc Loop_fusion (fun d _ -> Hashtbl.find works d.name);
  }

(** Memory footprint in bytes (4-byte entries, as the paper reports). *)
let bytes built = 4 * (built.storage_entries + built.fusion_entries)

let storage_bytes built = 4 * built.storage_entries
let fusion_bytes built = 4 * built.fusion_entries

(** Bind every built table as an uninterpreted function in an interpreter
    environment. *)
let bind_all (built : built) (env : Runtime.Interp.env) =
  List.iter
    (fun (name, v) ->
      match v with
      | Scalar n -> Runtime.Interp.bind_ufun env name (fun _ -> n)
      | Table a -> Runtime.Interp.bind_ufun_array env name a)
    built.tables

(** Bind the raw length functions themselves (the kernel may reference them
    directly as loop extents). *)
let bind_lenfuns (lenv : Lenfun.env) (env : Runtime.Interp.env) =
  List.iter (fun (name, f) -> Runtime.Interp.bind_ufun1 env name f) lenv

(* ------------------------------------------------------------------ *)
(* Standard definitions used by storage lowering and loop fusion.      *)

(** Prefix-sum array over padded slice sizes:
    [psum\[x\] = Σ_{t<x} pad_to (fn t) pad], with [count + 1] entries.
    This is both the factored storage offset array for a (cdim, vdim) pair
    and the fused-loop offset array [f_oif(o, i) = psum\[o\] + i]. *)
let psum_def ~name ~fn_name ~count ~pad : def =
  {
    name;
    kind = Storage;
    c_src =
      Some
        (Printf.sprintf
           "void build_%s(const int* %s, int* %s) {\n  %s[0] = 0;\n  for (int t = 0; t < %d; ++t)\n    %s[t + 1] = %s[t] + %s;\n}\n"
           name fn_name name name count name name
           (if pad <= 1 then Printf.sprintf "%s[t]" fn_name
            else Printf.sprintf "((%s[t] + %d) / %d) * %d" fn_name (pad - 1) pad pad));
    compute =
      (fun lenv ->
        let f = Lenfun.lookup lenv fn_name in
        let a = Array.make (count + 1) 0 in
        for t = 0 to count - 1 do
          a.(t + 1) <- a.(t) + Shape.pad_to (f t) pad
        done;
        Table a);
    work = (fun _ -> count + 1);
    update =
      Some
        (fun ~prev ~old_lenv:_ lenv ->
          match prev with
          | Table old when Array.length old = count + 1 ->
              let f = Lenfun.lookup lenv fn_name in
              (* old padded slice sizes are the deltas of the old psum, so
                 the scan needs no old environment *)
              let t0 = ref count in
              (try
                 for t = 0 to count - 1 do
                   if old.(t + 1) - old.(t) <> Shape.pad_to (f t) pad then begin
                     t0 := t;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !t0 = count then Some (prev, count)
              else begin
                let a = Array.make (count + 1) 0 in
                Array.blit old 0 a 0 (!t0 + 1);
                for t = !t0 to count - 1 do
                  a.(t + 1) <- a.(t) + Shape.pad_to (f t) pad
                done;
                Some (Table a, count + (count - !t0))
              end
          | _ -> None);
  }

(** General prefix-sum of per-slice volumes for storage lowering when the
    slice volume is not a constant multiple of a single length function
    (e.g. the attention tensor, volume [H * s(b)^2]).  The entry count may
    itself be length-dependent (nested raggedness: the row dimension of a
    triangular attention matrix has as many distinct values as the longest
    sequence), so it is a function of the environment. *)
let volume_psum_def ~name ~(count : Lenfun.env -> int) ~(volume : Lenfun.env -> int -> int) :
    def =
  {
    name;
    kind = Storage;
    c_src =
      Some
        (Printf.sprintf
           "void build_%s(int count, int (*volume)(int), int* %s) {\n  %s[0] = 0;\n  for (int t = 0; t < count; ++t) %s[t + 1] = %s[t] + volume(t);\n}\n"
           name name name name name);
    compute =
      (fun lenv ->
        let n = count lenv in
        let a = Array.make (n + 1) 0 in
        for t = 0 to n - 1 do
          a.(t + 1) <- a.(t) + volume lenv t
        done;
        Table a);
    work = (fun lenv -> count lenv + 1);
    update =
      Some
        (fun ~prev ~old_lenv lenv ->
          match prev with
          | Table old when Array.length old = count old_lenv + 1 ->
              let n_old = count old_lenv and n = count lenv in
              let m = min n_old n in
              let t0 = ref m in
              (try
                 for t = 0 to m - 1 do
                   if old.(t + 1) - old.(t) <> volume lenv t then begin
                     t0 := t;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if n = n_old && !t0 = n then Some (prev, n)
              else begin
                let a = Array.make (n + 1) 0 in
                Array.blit old 0 a 0 (!t0 + 1);
                for t = !t0 to n - 1 do
                  a.(t + 1) <- a.(t) + volume lenv t
                done;
                Some (Table a, m + 1 + (n - !t0))
              end
          | _ -> None);
  }

(** Pointwise table: [name.(x) = value lenv x] for [x < count lenv] — used
    for subtree-volume strides when a dimension's inner region contains an
    internal ragged pair. *)
let pointwise_def ~name ~(count : Lenfun.env -> int) ~(value : Lenfun.env -> int -> int) : def =
  {
    name;
    kind = Storage;
    c_src =
      Some
        (Printf.sprintf
           "void build_%s(int count, int (*value)(int), int* %s) {\n  for (int t = 0; t < count; ++t) %s[t] = value(t);\n}\n"
           name name name);
    compute =
      (fun lenv ->
        let n = count lenv in
        Table (Array.init n (value lenv)));
    work = (fun lenv -> count lenv);
    update =
      Some
        (fun ~prev ~old_lenv lenv ->
          match prev with
          | Table old when Array.length old = count old_lenv ->
              let n_old = count old_lenv and n = count lenv in
              let m = min n_old n in
              let t0 = ref m in
              (try
                 for t = 0 to m - 1 do
                   if old.(t) <> value lenv t then begin
                     t0 := t;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if n = n_old && !t0 = n then Some (prev, n)
              else begin
                let a = Array.make n 0 in
                Array.blit old 0 a 0 !t0;
                for t = !t0 to n - 1 do
                  a.(t) <- value lenv t
                done;
                Some (Table a, m + (n - !t0))
              end
          | _ -> None);
  }

(** Scalar value computed by the prelude. *)
let scalar_def ~name ~(value : Lenfun.env -> int) : def =
  {
    name;
    kind = Storage;
    c_src = None;
    compute = (fun lenv -> Scalar (value lenv));
    work = (fun _ -> 1);
    update =
      Some
        (fun ~prev ~old_lenv:_ lenv ->
          let v = value lenv in
          match prev with Scalar s when s = v -> Some (prev, 1) | _ -> Some (Scalar v, 1));
  }

(** Fused-loop total [F]: sum of padded slice sizes, bulk-padded (§7.2). *)
let fused_total_def ~name ~fn_name ~count ~pad ~bulk : def =
  {
    name;
    kind = Loop_fusion;
    c_src =
      Some
        (Printf.sprintf
           "int build_%s(const int* %s) {\n  int total = 0;\n  for (int t = 0; t < %d; ++t) total += %s;\n  return ((total + %d) / %d) * %d;\n}\n"
           name fn_name count
           (if pad <= 1 then Printf.sprintf "%s[t]" fn_name
            else Printf.sprintf "((%s[t] + %d) / %d) * %d" fn_name (pad - 1) pad pad)
           (bulk - 1) (max bulk 1) (max bulk 1));
    compute =
      (fun lenv ->
        let f = Lenfun.lookup lenv fn_name in
        let total = ref 0 in
        for t = 0 to count - 1 do
          total := !total + Shape.pad_to (f t) pad
        done;
        Scalar (Shape.pad_to !total bulk));
    work = (fun _ -> count);
    update =
      Some
        (fun ~prev ~old_lenv:_ lenv ->
          let f = Lenfun.lookup lenv fn_name in
          let total = ref 0 in
          for t = 0 to count - 1 do
            total := !total + Shape.pad_to (f t) pad
          done;
          let v = Shape.pad_to !total bulk in
          match prev with Scalar s when s = v -> Some (prev, count) | _ -> Some (Scalar v, count));
  }

(** Fused-loop mapping arrays (§5.1): [f_fo f] and [f_fi f] recover the
    outer/inner iteration variables from the fused one.  Entries in the
    bulk-padding region map to a virtual row [count] starting at the real
    total, so padded iterations still touch only the (bulk-padded) buffer
    tail. *)
let fused_map_defs ~fo_name ~fi_name ~fn_name ~count ~pad ~bulk : def list =
  let build_maps lenv =
    let f = Lenfun.lookup lenv fn_name in
    let real = ref 0 in
    for t = 0 to count - 1 do
      real := !real + Shape.pad_to (f t) pad
    done;
    let total = Shape.pad_to !real bulk in
    let fo = Array.make (max total 1) 0 and fi = Array.make (max total 1) 0 in
    let pos = ref 0 in
    for t = 0 to count - 1 do
      let s = Shape.pad_to (f t) pad in
      for i = 0 to s - 1 do
        fo.(!pos) <- t;
        fi.(!pos) <- i;
        incr pos
      done
    done;
    (* bulk-padding region: virtual row [count] *)
    let base = !pos in
    while !pos < total do
      fo.(!pos) <- count;
      fi.(!pos) <- !pos - base;
      incr pos
    done;
    (fo, fi)
  in
  let work lenv =
    let f = Lenfun.lookup lenv fn_name in
    let total = ref 0 in
    for t = 0 to count - 1 do
      total := !total + Shape.pad_to (f t) pad
    done;
    2 * Shape.pad_to !total bulk
  in
  let maps_src which =
    Printf.sprintf
      "void build_%s(const int* %s, int total, int* out) {\n  int pos = 0;\n  for (int t = 0; t < %d; ++t) {\n    int s = %s;\n    for (int i = 0; i < s; ++i) { out[pos] = %s; ++pos; }\n  }\n  int base = pos;\n  for (; pos < total; ++pos) out[pos] = %s;  /* virtual padding row */\n}\n"
      which fn_name count
      (if pad <= 1 then Printf.sprintf "%s[t]" fn_name
       else Printf.sprintf "((%s[t] + %d) / %d) * %d" fn_name (pad - 1) pad pad)
      (if which = fo_name then "t" else "i")
      (if which = fo_name then Printf.sprintf "%d" count else "pos - base")
  in
  (* Incremental maintenance: per-row padded sizes are compared old-vs-new
     in O(count); the map prefix before the first changed row is bitwise
     identical (blitted), only the suffix is refilled.  On steps where no
     padded size changed — (pad-1) of every pad decode steps — the whole
     array is shared by reference, which is where the amortised O(changed
     rows) bound comes from. *)
  let update_map ~is_fo ~prev ~old_lenv lenv =
    match prev with
    | Scalar _ -> None
    | Table old -> (
        match
          (try Some (Lenfun.lookup old_lenv fn_name) with Not_found -> None)
        with
        | None -> None
        | Some g ->
            let f = Lenfun.lookup lenv fn_name in
            let t0 = ref count and prefix = ref 0 in
            let real_old = ref 0 and real_new = ref 0 in
            for t = 0 to count - 1 do
              let so = Shape.pad_to (g t) pad and sn = Shape.pad_to (f t) pad in
              if so <> sn && !t0 = count then begin
                t0 := t;
                prefix := !real_new
              end;
              real_old := !real_old + so;
              real_new := !real_new + sn
            done;
            let total_old = Shape.pad_to !real_old bulk in
            let total = Shape.pad_to !real_new bulk in
            if Array.length old <> max total_old 1 then None
            else if !t0 = count then Some (prev, count)
            else begin
              (* A row's segment is position-independent (fo entries are
                 the row index, fi entries are 0..s-1), so rows whose
                 padded size is unchanged blit from their OLD offset to
                 their new one; only rows whose padded size actually
                 changed — one in [pad] growth steps — are recomputed.
                 Work: the scan, one unit per blitted row (bulk copy),
                 and the changed rows' entries. *)
              let a = Array.make (max total 1) 0 in
              Array.blit old 0 a 0 !prefix;
              (* old offset of row t0: psum of old padded sizes before it *)
              let opos = ref 0 in
              for t = 0 to !t0 - 1 do
                opos := !opos + Shape.pad_to (g t) pad
              done;
              let pos = ref !prefix and wrk = ref (count + (count - !t0)) in
              for t = !t0 to count - 1 do
                let so = Shape.pad_to (g t) pad and sn = Shape.pad_to (f t) pad in
                if so = sn then Array.blit old !opos a !pos sn
                else begin
                  wrk := !wrk + sn;
                  for i = 0 to sn - 1 do
                    a.(!pos + i) <- (if is_fo then t else i)
                  done
                end;
                opos := !opos + so;
                pos := !pos + sn
              done;
              let base = !pos in
              wrk := !wrk + (total - base);
              while !pos < total do
                a.(!pos) <- (if is_fo then count else !pos - base);
                incr pos
              done;
              Some (Table a, !wrk)
            end)
  in
  [
    {
      name = fo_name;
      kind = Loop_fusion;
      c_src = Some (maps_src fo_name);
      compute = (fun lenv -> Table (fst (build_maps lenv)));
      work = (fun lenv -> work lenv / 2);
      update = Some (fun ~prev ~old_lenv lenv -> update_map ~is_fo:true ~prev ~old_lenv lenv);
    };
    {
      name = fi_name;
      kind = Loop_fusion;
      c_src = Some (maps_src fi_name);
      compute = (fun lenv -> Table (snd (build_maps lenv)));
      work = (fun lenv -> work lenv / 2);
      update = Some (fun ~prev ~old_lenv lenv -> update_map ~is_fo:false ~prev ~old_lenv lenv);
    };
  ]
