(** Runtime ragged-tensor values.

    A ragged tensor value is a flat float buffer laid out according to its
    {!Tensor.t} declaration (densely packed vdim slices with the declared
    storage padding).  This module allocates buffers, computes numeric
    offsets (mirroring {!Storage.lower}), and converts to and from fully
    padded dense layouts — the runtime counterpart of the paper's
    AddPad/RemovePad operators. *)

type t = {
  tensor : Tensor.t;
  buf : Runtime.Buffer.t;
  lenv : Lenfun.env;
  prefix_cache : int array option Atomic.t array;
      (* per-dim slot -> prefix sums of per-value slice volumes for a dim
         with ragged dependents.  Both inputs of the sum (tensor, lenv)
         are immutable for the lifetime of the value, so the cache never
         invalidates.  Without it every get/set pays an O(extent) prefix
         walk, which makes filling a B-row mega-batch O(B^2).  One value
         can be touched from several domains at once (parallel mega-batch
         fill/scatter), so each slot publishes an immutable array through
         an [Atomic]: racing domains may compute the array twice, but the
         computation is deterministic, so whichever publish lands last is
         identical — no torn reads, no lost entries. *)
}

let fresh_prefix_cache tensor = Array.init (Tensor.rank tensor) (fun _ -> Atomic.make None)

(** Allocate a zero-filled buffer sized for [tensor] under [lenv] (zero fill
    matters: padded regions must read as 0 so padded reductions stay
    correct). *)
let alloc tensor lenv =
  {
    tensor;
    buf = Runtime.Buffer.float_buf (Tensor.size_elems tensor ~lenv);
    lenv;
    prefix_cache = fresh_prefix_cache tensor;
  }

(** Numeric flat offset of a multi-index — the runtime mirror of the
    symbolic scheme in {!Storage.lower} (same layout, computed directly). *)
let offset ({ tensor = t; lenv; _ } as r) (idx : int list) : int =
  let n = Tensor.rank t in
  let idx = Array.of_list idx in
  if Array.length idx <> n then invalid_arg "Ragged.offset: wrong index arity";
  let dependents i = Tensor.has_dependents t i in
  let off = ref 0 in
  for i = 0 to n - 1 do
    if not (dependents i) then begin
      (* stride = subtree volume given the current outer assignment; the
         recursive volume handles internal ragged pairs that a plain
         product of sizes would get wrong *)
      let env =
        List.filteri (fun j _ -> j <= i) t.Tensor.dims
        |> List.mapi (fun j (d : Dim.t) -> (d.Dim.id, idx.(j)))
      in
      let stride = Tensor.slice_volume t ~lenv ~level:(i + 1) ~env in
      off := !off + (idx.(i) * stride)
    end
    else begin
      (* prefix sum of slice volumes for values < idx.(i), memoized over
         the dim's whole extent; the recursive volume handles nested
         raggedness *)
      let prefix =
        match Atomic.get r.prefix_cache.(i) with
        | Some p -> p
        | None ->
            let di_id = (List.nth t.Tensor.dims i).Dim.id in
            (* the per-value volumes depend only on the value itself (the
               original prefix loop passed env = [(di, v)] alone), so one
               array sized by the extent's maximum covers every outer
               index — including nested raggedness where dim i's own
               extent varies with its dependee *)
            let ext =
              match List.nth t.Tensor.extents i with
              | Shape.Fixed c -> c
              | Shape.Ragged { dep; fn } ->
                  let dpos = Tensor.dim_pos t dep in
                  let dep_ext =
                    Shape.eval (List.nth t.Tensor.extents dpos) ~lenv ~dep_value:0
                  in
                  let f = Lenfun.lookup lenv (Lenfun.name fn) in
                  let m = ref 0 in
                  for v = 0 to dep_ext - 1 do
                    m := max !m (f v)
                  done;
                  !m
            in
            let p = Array.make (ext + 1) 0 in
            for v = 0 to ext - 1 do
              p.(v + 1) <-
                p.(v) + Tensor.slice_volume t ~lenv ~level:(i + 1) ~env:[ (di_id, v) ]
            done;
            Atomic.set r.prefix_cache.(i) (Some p);
            p
      in
      off := !off + prefix.(idx.(i))
    end
  done;
  !off

let get r idx = Runtime.Buffer.get_float r.buf (offset r idx)
let set r idx v = Runtime.Buffer.set_float r.buf (offset r idx) v

(** Iterate over every valid (unpadded) multi-index of the tensor. *)
let iter_indices r (f : int list -> unit) =
  let t = r.tensor in
  let n = Tensor.rank t in
  let exts = Array.of_list t.Tensor.extents in
  let idx = Array.make n 0 in
  let rec go i =
    if i = n then f (Array.to_list idx)
    else
      let dep_value =
        match Shape.dependence exts.(i) with
        | None -> 0
        | Some d -> idx.(Tensor.dim_pos t d)
      in
      let e = Shape.eval exts.(i) ~lenv:r.lenv ~dep_value in
      for v = 0 to e - 1 do
        idx.(i) <- v;
        go (i + 1)
      done
  in
  go 0

(** Fill with a function of the multi-index (valid region only; padding
    stays zero). *)
let fill r f = iter_indices r (fun idx -> set r idx (f idx))

(** Dense (fully padded) shape: every ragged extent replaced by its maximum
    over the dependee's range. *)
let dense_shape r =
  let t = r.tensor in
  let exts = Array.of_list t.Tensor.extents in
  Array.to_list
    (Array.mapi
       (fun i ext ->
         match ext with
         | Shape.Fixed c -> Shape.pad_to c t.Tensor.pads.(i)
         | Shape.Ragged { dep; fn } ->
             let dpos = Tensor.dim_pos t dep in
             let dep_extent =
               match exts.(dpos) with
               | Shape.Fixed c -> c
               | Shape.Ragged _ -> invalid_arg "Ragged.dense_shape: nested raggedness"
             in
             let f = Lenfun.lookup r.lenv (Lenfun.name fn) in
             let m = ref 0 in
             for v = 0 to dep_extent - 1 do
               m := max !m (f v)
             done;
             Shape.pad_to !m t.Tensor.pads.(i))
       exts)

(** Pack a dense row-major array (of [dense_shape]) into ragged storage —
    the RemovePad operator. *)
let pack r (dense : float array) =
  let shape = Array.of_list (dense_shape r) in
  let flat idx =
    List.fold_left2 (fun acc i s -> (acc * s) + i) 0 idx (Array.to_list shape) |> fun x -> x
  in
  iter_indices r (fun idx -> set r idx dense.(flat idx))

(** Unpack ragged storage into a dense row-major array, zero elsewhere —
    the AddPad operator. *)
let unpack r : float array =
  let shape = dense_shape r in
  let total = List.fold_left ( * ) 1 shape in
  let dense = Array.make total 0.0 in
  let flat idx = List.fold_left2 (fun acc i s -> (acc * s) + i) 0 idx shape in
  iter_indices r (fun idx -> dense.(flat idx) <- get r idx);
  dense
