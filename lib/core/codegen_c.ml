open Ir

(** C code generation (the target-dependent code of Fig. 4, step 5/9).

    Emits each compiled kernel as a C function.  Uninterpreted functions
    become [const int*] table parameters built by the prelude (1-argument
    functions index the table; 0-argument totals are scalars); loop
    bindings become either plain loops (CPU) or are annotated with the
    grid/thread dimensions they would map to in CUDA.  The emitted code is
    a faithful rendering of the lowered IR — the reference interpreter and
    the machine model consume exactly the same statements. *)

let buf ppf v = Fmt.string ppf (Var.mangled v)

let rec expr ppf (e : Expr.t) =
  match e with
  | Int n -> Fmt.int ppf n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e16 then Fmt.pf ppf "%.1ff" f
      else if f = neg_infinity then Fmt.string ppf "-INFINITY"
      else if f = infinity then Fmt.string ppf "INFINITY"
      else Fmt.pf ppf "%.9gf" f
  | Bool b -> Fmt.string ppf (if b then "1" else "0")
  | Var v -> Fmt.string ppf (Var.mangled v)
  | Binop (FloorDiv, a, b) -> Fmt.pf ppf "(%a / %a)" expr a expr b
  | Binop (Mod, a, b) -> Fmt.pf ppf "(%a %% %a)" expr a expr b
  | Binop (Min, a, b) -> Fmt.pf ppf "min(%a, %a)" expr a expr b
  | Binop (Max, a, b) -> Fmt.pf ppf "max(%a, %a)" expr a expr b
  | Binop (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | _ -> assert false in
      Fmt.pf ppf "(%a %s %a)" expr a s expr b
  | Cmp (op, a, b) ->
      let s = Printer.cmpop_str op in
      Fmt.pf ppf "(%a %s %a)" expr a s expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" expr a expr b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" expr a expr b
  | Not a -> Fmt.pf ppf "(!%a)" expr a
  | Select (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" expr c expr a expr b
  | Load { buf = v; index } -> Fmt.pf ppf "%a[%a]" buf v expr index
  | Ufun (name, []) -> Fmt.pf ppf "%s" name
  | Ufun (name, [ a ]) -> Fmt.pf ppf "%s[%a]" name expr a
  | Ufun (name, args) -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") expr) args
  | Call (name, args) -> Fmt.pf ppf "%sf(%a)" name Fmt.(list ~sep:(any ", ") expr) args
  | Access { tensor; indices } ->
      Fmt.pf ppf "/* unlowered */ %s[%a]" tensor Fmt.(list ~sep:(any ", ") expr) indices
  | Let (v, value, body) ->
      Fmt.pf ppf "({ const int %s = %a; %a; })" (Var.mangled v) expr value expr body

let reduce_op_str : Stmt.reduce_op -> string = function
  | Sum -> "+"
  | Prod -> "*"
  | Rmax -> "max"
  | Rmin -> "min"

let kind_comment : Stmt.for_kind -> string = function
  | Serial -> ""
  | Parallel -> "  // #pragma omp parallel for"
  | Vectorized -> "  // #pragma omp simd"
  | Unrolled -> "  // #pragma unroll"
  | Gpu_block -> "  // -> blockIdx"
  | Gpu_thread -> "  // -> threadIdx"

let rec stmt ~indent ppf (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | For { var; min; extent; kind; body } ->
      let v = Var.mangled var in
      Fmt.pf ppf "%sfor (int %s = %a; %s < %a + %a; ++%s) {%s\n%a%s}\n" pad v expr min v expr
        min expr extent v (kind_comment kind)
        (stmt ~indent:(indent + 2))
        body pad
  | Let_stmt (v, e, body) ->
      Fmt.pf ppf "%sconst int %s = %a;\n%a" pad (Var.mangled v) expr e (stmt ~indent) body
  | Store { buf = v; index; value } ->
      Fmt.pf ppf "%s%a[%a] = %a;\n" pad buf v expr index expr value
  | Reduce_store { buf = v; index; value; op } -> (
      match op with
      | Sum | Prod ->
          Fmt.pf ppf "%s%a[%a] %s= %a;\n" pad buf v expr index (reduce_op_str op) expr value
      | Rmax | Rmin ->
          Fmt.pf ppf "%s%a[%a] = %s(%a[%a], %a);\n" pad buf v expr index (reduce_op_str op)
            buf v expr index expr value)
  | If (c, a, None) ->
      Fmt.pf ppf "%sif (%a) {\n%a%s}\n" pad expr c (stmt ~indent:(indent + 2)) a pad
  | If (c, a, Some b) ->
      Fmt.pf ppf "%sif (%a) {\n%a%s} else {\n%a%s}\n" pad expr c
        (stmt ~indent:(indent + 2))
        a pad
        (stmt ~indent:(indent + 2))
        b pad
  | Seq l -> List.iter (stmt ~indent ppf) l
  | Alloc { buf = v; size; body } ->
      Fmt.pf ppf "%sfloat %s[%a];  // shared/scratch\n%a" pad (Var.mangled v) expr size
        (stmt ~indent) body
  | Eval e -> Fmt.pf ppf "%s(void)(%a);\n" pad expr e
  | Nop -> Fmt.pf ppf "%s;\n" pad

(* Buffers the kernel reads or writes. *)
let kernel_buffers (body : Stmt.t) : Var.t list =
  let add acc v = if List.exists (Var.equal v) acc then acc else v :: acc in
  let exprs acc (e : Expr.t) =
    Expr.fold (fun acc -> function Expr.Load { buf; _ } -> add acc buf | _ -> acc) acc e
  in
  let rec go acc (s : Stmt.t) =
    match s with
    | Store { buf; index; value } | Reduce_store { buf; index; value; _ } ->
        exprs (exprs (add acc buf) index) value
    | For { min; extent; body; _ } -> go (exprs (exprs acc min) extent) body
    | Let_stmt (_, e, body) -> go (exprs acc e) body
    | If (c, a, b) -> (
        let acc = go (exprs acc c) a in
        match b with Some b -> go acc b | None -> acc)
    | Seq l -> List.fold_left go acc l
    | Alloc { buf; body; _ } ->
        (* scratch is declared locally, not a parameter *)
        List.filter (fun v -> not (Var.equal v buf)) (go acc body)
    | Eval e -> exprs acc e
    | Nop -> acc
  in
  List.rev (go [] body)

(* Uninterpreted functions the kernel references, with their arities:
   0-ary totals become scalar parameters, 1-ary functions become tables. *)
let kernel_ufuns (body : Stmt.t) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  let scan_expr acc e =
    Expr.fold
      (fun () -> function
        | Expr.Ufun (n, args) -> Hashtbl.replace tbl n (List.length args)
        | _ -> ())
      () e;
    acc
  in
  Stmt.fold_exprs scan_expr () body;
  Hashtbl.fold (fun n a acc -> (n, a) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Emit one kernel as a C function. *)
let kernel ppf (k : Lower.kernel) =
  let bufs = kernel_buffers k.Lower.body in
  let ufuns = kernel_ufuns k.Lower.body in
  Fmt.pf ppf "// kernel %s (eff %.2f)\nvoid %s(\n" k.Lower.kname k.Lower.eff
    (String.map (function '-' -> '_' | c -> c) k.Lower.kname);
  List.iter (fun v -> Fmt.pf ppf "    float* %s,\n" (Var.mangled v)) bufs;
  List.iteri
    (fun i (name, arity) ->
      let comma = if i = List.length ufuns - 1 then "" else "," in
      if arity = 0 then
        Fmt.pf ppf "    const int %s%s  // prelude-built total\n" name comma
      else
        Fmt.pf ppf "    const int* %s%s  // prelude-built / launch-time table\n" name comma)
    ufuns;
  Fmt.pf ppf ") {\n%a}\n" (stmt ~indent:2) k.Lower.body

let kernel_to_string k = Fmt.str "%a" kernel k

(** Emit the host-side prelude as C (Fig. 4, step 7): real builder
    functions for the standard auxiliary structures (prefix sums,
    fused-loop maps, totals); defs without a C template get a comment. *)
let prelude ppf (defs : Prelude.def list) =
  let defs = Prelude.dedup defs in
  Fmt.pf ppf "// prelude: builds auxiliary structures on the host\n";
  List.iter
    (fun (d : Prelude.def) ->
      match d.Prelude.c_src with
      | Some src -> Fmt.pf ppf "%s" src
      | None ->
          Fmt.pf ppf "//   %s : %s (opaque builder)\n" d.Prelude.name
            (match d.Prelude.kind with
            | Prelude.Storage -> "storage offsets (A_d prefix sums)"
            | Prelude.Loop_fusion -> "fused-loop maps (f_fo / f_fi / totals)"))
    defs

let prelude_to_string defs = Fmt.str "%a" prelude defs

(** Emit a whole pipeline as one C translation unit: header, the prelude
    summary, every kernel, and a host driver skeleton that launches them in
    order — the shape of the code CoRa's runtime pipeline (Fig. 4) would
    hand to nvcc/gcc. *)
let program ppf ~(name : string) (kernels : Lower.kernel list) =
  Fmt.pf ppf
    "// %s — generated by the CoRa OCaml reproduction\n\
     // kernels: %s\n\
     #include <math.h>\n\
     #define min(a, b) ((a) < (b) ? (a) : (b))\n\
     #define max(a, b) ((a) > (b) ? (a) : (b))\n\n"
    name
    (String.concat ", " (List.map (fun (k : Lower.kernel) -> k.Lower.kname) kernels));
  let defs = Prelude.dedup (List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) kernels) in
  prelude ppf defs;
  Fmt.pf ppf "\n";
  List.iter (fun k -> Fmt.pf ppf "%a\n" kernel k) kernels;
  (* host driver skeleton *)
  Fmt.pf ppf "// host driver (buffers and prelude tables elided):\n";
  Fmt.pf ppf "// void %s_forward(...) {\n" name;
  List.iter
    (fun (k : Lower.kernel) ->
      Fmt.pf ppf "//   launch %s<<<grid, block>>>(...);\n"
        (String.map (function '-' -> '_' | c -> c) k.Lower.kname))
    kernels;
  Fmt.pf ppf "// }\n"

let program_to_string ~name kernels = Fmt.str "%a" (fun ppf () -> program ppf ~name kernels) ()

(* ------------------------------------------------------------------ *)
(* CUDA flavour: grid/thread-bound loops become blockIdx/threadIdx
   coordinates instead of loops.                                        *)

let cuda_dim i = match i with 0 -> "x" | 1 -> "y" | _ -> "z"

(* Peel the leading sequence of loops of [kind] interleaved with lets
   (hoisted aux bindings sit between grid loops): returns the ordered
   prologue items and the remaining body.  At most [limit] axes are peeled
   (CUDA grids and blocks are 3-D). *)
type prologue_item =
  | P_axis of Var.t * Expr.t * Expr.t  (** var, min, extent *)
  | P_let of Var.t * Expr.t

let peel kind ~limit (s : Stmt.t) =
  let rec go taken acc (s : Stmt.t) =
    match s with
    | Stmt.For { var; min; extent; kind = k; body } when k = kind && taken < limit ->
        go (taken + 1) (P_axis (var, min, extent) :: acc) body
    | Stmt.Let_stmt (v, e, body) -> go taken (P_let (v, e) :: acc) body
    | s -> (List.rev acc, s)
  in
  go 0 [] s

let axes_of items =
  List.filter_map (function P_axis (v, m, e) -> Some (v, m, e) | P_let _ -> None) items

let emit_prologue ppf which items =
  let i = ref 0 in
  List.iter
    (function
      | P_axis (v, mn, _) ->
          (match mn with
          | Expr.Int 0 ->
              Fmt.pf ppf "  const int %s = %s.%s;\n" (Var.mangled v) which (cuda_dim !i)
          | _ ->
              Fmt.pf ppf "  const int %s = %s.%s + %a;\n" (Var.mangled v) which (cuda_dim !i)
                expr mn);
          incr i
      | P_let (v, e) -> Fmt.pf ppf "  const int %s = %a;\n" (Var.mangled v) expr e)
    items

(** Emit one kernel as a CUDA [__global__] function: up to three leading
    [Gpu_block] loops map to [blockIdx], then up to three [Gpu_thread]
    loops to [threadIdx] (hoisted lets in between are preserved); the
    remaining nest stays as loops.  Runtime-extent grid axes get an
    early-return bound check because the grid is launched at the padded
    maximum. *)
let cuda_kernel ppf (k : Lower.kernel) =
  let bufs = kernel_buffers k.Lower.body in
  let ufuns = kernel_ufuns k.Lower.body in
  let blocks, rest = peel Stmt.Gpu_block ~limit:3 k.Lower.body in
  let threads, body = peel Stmt.Gpu_thread ~limit:3 rest in
  let dims items =
    String.concat ", " (List.map (fun (_, _, e) -> Fmt.str "%a" expr e) (axes_of items))
  in
  Fmt.pf ppf "// grid: (%s), block: (%s)\n" (dims blocks) (dims threads);
  Fmt.pf ppf "__global__ void %s(\n"
    (String.map (function '-' -> '_' | c -> c) k.Lower.kname);
  List.iter (fun v -> Fmt.pf ppf "    float* __restrict__ %s,\n" (Var.mangled v)) bufs;
  List.iteri
    (fun i (name, arity) ->
      let comma = if i = List.length ufuns - 1 then "" else "," in
      if arity = 0 then Fmt.pf ppf "    const int %s%s\n" name comma
      else Fmt.pf ppf "    const int* __restrict__ %s%s\n" name comma)
    ufuns;
  Fmt.pf ppf ") {\n";
  emit_prologue ppf "blockIdx" blocks;
  (* runtime-extent grid axes: re-check the bound *)
  List.iter
    (fun (v, mn, ext) ->
      match ext with
      | Expr.Int _ -> ()
      | _ -> Fmt.pf ppf "  if (%s >= %a + %a) return;\n" (Var.mangled v) expr mn expr ext)
    (axes_of blocks);
  emit_prologue ppf "threadIdx" threads;
  List.iter
    (fun (v, mn, ext) ->
      match ext with
      | Expr.Int _ -> ()
      | _ -> Fmt.pf ppf "  if (%s >= %a + %a) return;\n" (Var.mangled v) expr mn expr ext)
    (axes_of threads);
  Fmt.pf ppf "%a}\n" (stmt ~indent:2) body

let cuda_kernel_to_string k = Fmt.str "%a" cuda_kernel k
