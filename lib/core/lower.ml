open Ir

(** Lowering: schedule → IR kernel (CoRa §5).

    Reconstructs index expressions of the original (root) dimensions from
    the transformed loop variables, materialises loop extents (including
    ragged extents as uninterpreted length functions), inserts bound guards
    where the transformed iteration space over-covers the true one, lowers
    tensor accesses to flat offsets, and collects every prelude definition
    the kernel needs. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** A compiled kernel: the lowered loop nest plus everything the runtime
    and machine model need to execute it. *)
type kernel = {
  kname : string;
  body : Stmt.t;
  aux : Prelude.def list;  (** prelude structures referenced by the kernel *)
  triples : Simplify.fusion_triple list;
  eff : float;  (** compiled-code efficiency factor for the machine model *)
  remap : Schedule.remap_policy;  (** thread-block issue order policy *)
  bound : Schedule.boundedness;
  out : Tensor.t;
  reads : Tensor.t list;  (** input tensors, for generic runners/serving *)
}

type links = {
  outer_child : (int, Schedule.axis) Hashtbl.t;
  inner_child : (int, Schedule.axis) Hashtbl.t;
  fused_child : (int, Schedule.axis * [ `A | `B ]) Hashtbl.t;
  leaf_ids : (int, int) Hashtbl.t;  (** aid -> position in leaf order *)
}

let build_links (leaves : Schedule.axis list) : links =
  let l =
    {
      outer_child = Hashtbl.create 8;
      inner_child = Hashtbl.create 8;
      fused_child = Hashtbl.create 8;
      leaf_ids = Hashtbl.create 8;
    }
  in
  List.iteri (fun i (a : Schedule.axis) -> Hashtbl.replace l.leaf_ids a.aid i) leaves;
  let rec walk (a : Schedule.axis) =
    match a.origin with
    | Root _ -> ()
    | Split_outer (p, _) ->
        Hashtbl.replace l.outer_child p.aid a;
        walk p
    | Split_inner (p, _) ->
        Hashtbl.replace l.inner_child p.aid a;
        walk p
    | Fused { fa; fb; _ } ->
        Hashtbl.replace l.fused_child fa.aid (a, `A);
        Hashtbl.replace l.fused_child fb.aid (a, `B);
        walk fa;
        walk fb
  in
  List.iter walk leaves;
  l

let is_leaf links (a : Schedule.axis) = Hashtbl.mem links.leaf_ids a.aid

(* ------------------------------------------------------------------ *)

let lower_impl ?(ranges : (int * Schedule.range_mode) list = []) ?(init = true) ?apply_epilogue
    ?(name_suffix = "") (s : Schedule.t) : kernel =
  (* When a reduction is operation-split, the epilogue (fused activation)
     must run only once, after the final partial kernel: main kernels pass
     [~apply_epilogue:false], the tail [~init:false ~apply_epilogue:true]. *)
  let apply_epilogue = match apply_epilogue with Some b -> b | None -> init in
  let op = s.op in
  Obs.Span.with_span
    ~attrs:[ ("kernel", Obs.Trace_sink.Str (op.Op.name ^ name_suffix)) ]
    "lower"
  @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "lower.kernels");
  let links = build_links s.leaves in
  let mode_of aid =
    match List.assoc_opt aid ranges with Some m -> m | None -> Schedule.Full
  in
  let aux : Prelude.def list ref = ref [] in
  let add_aux (d : Prelude.def) =
    if not (List.exists (fun x -> x.Prelude.name = d.Prelude.name) !aux) then
      aux := !aux @ [ d ]
  in

  (* --- index value of any axis, reconstructed from the leaves --- *)
  let value_memo : (int, Expr.t) Hashtbl.t = Hashtbl.create 16 in
  let rec value (a : Schedule.axis) : Expr.t =
    match Hashtbl.find_opt value_memo a.aid with
    | Some e -> e
    | None ->
        let e =
          if is_leaf links a then Expr.var a.avar
          else
            match Hashtbl.find_opt links.outer_child a.aid with
            | Some o ->
                let i =
                  match Hashtbl.find_opt links.inner_child a.aid with
                  | Some i -> i
                  | None -> err "axis %s: split without inner child" (Var.name a.avar)
                in
                let factor =
                  match o.origin with
                  | Split_outer (_, f) -> f
                  | _ -> assert false
                in
                Expr.add (Expr.mul (value o) (Expr.int factor)) (value i)
            | None -> (
                match Hashtbl.find_opt links.fused_child a.aid with
                | Some (fz, side) -> (
                    match fz.origin with
                    | Fused { f_kind; _ } -> (
                        match (f_kind, side) with
                        | Schedule.Dense_fuse eb, `A -> Expr.floordiv (value fz) (Expr.int eb)
                        | Schedule.Dense_fuse eb, `B -> Expr.imod (value fz) (Expr.int eb)
                        | Schedule.Ragged_fuse r, `A -> Expr.ufun r.triple.Simplify.fo [ value fz ]
                        | Schedule.Ragged_fuse r, `B -> Expr.ufun r.triple.Simplify.fi [ value fz ])
                    | _ -> assert false)
                | None ->
                    err "axis %s was neither kept as a leaf nor transformed" (Var.name a.avar))
        in
        Hashtbl.replace value_memo a.aid e;
        e
  in

  (* --- true (unpadded) extents of root dimensions --- *)
  let shape_extent_expr (ext : Shape.t) : Expr.t =
    match ext with
    | Shape.Fixed n -> Expr.int n
    | Shape.Ragged { dep; fn } ->
        let pos = Tensor.dim_pos op.Op.out dep in
        Expr.ufun (Lenfun.name fn) [ value s.data_roots.(pos) ]
  in
  let true_data_extent i = shape_extent_expr op.Op.loop_extents.(i) in
  let true_red_extent i = shape_extent_expr op.Op.rvars.(i).Op.rextent in

  (* --- padded loop extent (and min) of any axis --- *)
  let rec padded_extent (a : Schedule.axis) : Expr.t =
    let base =
      match a.origin with
      | Root (Data i) -> true_data_extent i
      | Root (Reduction i) -> true_red_extent i
      | Split_outer (p, f) -> (
          let ep = padded_extent p in
          match mode_of p.aid with
          | Full -> Expr.floordiv (Expr.add ep (Expr.int (f - 1))) (Expr.int f)
          | Tiles_only -> Expr.floordiv ep (Expr.int f)
          | Tail_only -> Expr.one)
      | Split_inner (p, f) -> (
          match mode_of p.aid with
          | Full | Tiles_only -> Expr.int f
          | Tail_only -> Expr.imod (padded_extent p) (Expr.int f))
      | Fused { fa; f_kind; _ } -> (
          match f_kind with
          | Dense_fuse eb -> Expr.mul (padded_extent fa) (Expr.int eb)
          | Ragged_fuse r -> Expr.ufun r.total_name [])
    in
    Expr.pad_up base a.pad
  in
  let loop_min (a : Schedule.axis) : Expr.t =
    match a.origin with
    | Split_outer (p, f) when mode_of p.aid = Schedule.Tail_only ->
        Expr.floordiv (padded_extent p) (Expr.int f)
    | _ -> Expr.zero
  in

  (* --- constant extent, if statically known --- *)
  let rec const_extent (a : Schedule.axis) : int option =
    let base =
      match a.origin with
      | Root (Data i) -> (
          match op.Op.loop_extents.(i) with Shape.Fixed n -> Some n | _ -> None)
      | Root (Reduction i) -> (
          match op.Op.rvars.(i).Op.rextent with Shape.Fixed n -> Some n | _ -> None)
      | Split_outer (p, f) -> (
          match (const_extent p, mode_of p.aid) with
          | Some e, Full -> Some ((e + f - 1) / f)
          | Some e, Tiles_only -> Some (e / f)
          | _, Tail_only -> Some 1
          | None, _ -> None)
      | Split_inner (p, f) -> (
          match mode_of p.aid with
          | Full | Tiles_only -> Some f
          | Tail_only -> Option.map (fun e -> e mod f) (const_extent p))
      | Fused { fa; f_kind; _ } -> (
          match f_kind with
          | Dense_fuse eb -> Option.map (fun e -> e * eb) (const_extent fa)
          | Ragged_fuse _ -> None)
    in
    Option.map (fun e -> Shape.pad_to e a.pad) base
  in

  (* --- does the leaf decomposition of [a] possibly produce index values
         beyond its true extent? --- *)
  let rec exceeds (a : Schedule.axis) : bool =
    let pad_exceeds =
      a.pad > 1
      &&
      match a.origin with
      | Root (Data i) -> (
          match op.Op.loop_extents.(i) with
          | Shape.Fixed n -> n mod a.pad <> 0
          | Shape.Ragged _ -> true)
      | Root (Reduction i) -> (
          match op.Op.rvars.(i).Op.rextent with
          | Shape.Fixed n -> n mod a.pad <> 0
          | Shape.Ragged _ -> true)
      | _ -> true
    in
    if is_leaf links a then pad_exceeds
    else
      match Hashtbl.find_opt links.outer_child a.aid with
      | Some o -> (
          let i = Hashtbl.find links.inner_child a.aid in
          let factor = match o.origin with Split_outer (_, f) -> f | _ -> assert false in
          match mode_of a.aid with
          | Tiles_only | Tail_only -> pad_exceeds || exceeds o || exceeds i
          | Full ->
              let divisible =
                match const_extent a with Some e -> e mod factor = 0 | None -> false
              in
              pad_exceeds || (not divisible) || exceeds o || exceeds i)
      | None -> (
          match Hashtbl.find_opt links.fused_child a.aid with
          | Some (fz, side) -> (
              match fz.origin with
              | Fused { f_kind; _ } -> (
                  match (f_kind, side) with
                  | Schedule.Ragged_fuse _, `A -> fz.pad > 1
                  | Schedule.Ragged_fuse r, `B -> r.inner_pad > 1 || fz.pad > 1
                  | Schedule.Dense_fuse _, _ -> fz.pad > 1)
              | _ -> assert false)
          | None -> err "axis %s not consumed" (Var.name a.avar))
  in

  (* --- fusion aux structures (off/fo/fi/totals) for ragged fused axes --- *)
  let register_fusion_aux () =
    let rec per_axis (a : Schedule.axis) =
      (match a.origin with
      | Fused { f_kind = Ragged_fuse r; _ } ->
          let bulk = a.pad in
          add_aux (Prelude.psum_def ~name:r.off_name ~fn_name:r.fn_name ~count:r.count ~pad:r.inner_pad);
          add_aux
            {
              (Prelude.fused_total_def ~name:r.total_name ~fn_name:r.fn_name ~count:r.count
                 ~pad:r.inner_pad ~bulk)
              with
              kind = Prelude.Loop_fusion;
            };
          add_aux
            {
              (Prelude.fused_total_def ~name:r.real_total_name ~fn_name:r.fn_name
                 ~count:r.count ~pad:r.inner_pad ~bulk:1)
              with
              kind = Prelude.Loop_fusion;
            };
          List.iter add_aux
            (Prelude.fused_map_defs ~fo_name:r.triple.Simplify.fo ~fi_name:r.triple.Simplify.fi
               ~fn_name:r.fn_name ~count:r.count ~pad:r.inner_pad ~bulk)
      | _ -> ());
      match a.origin with
      | Root _ -> ()
      | Split_outer (p, _) | Split_inner (p, _) -> per_axis p
      | Fused { fa; fb; _ } ->
          per_axis fa;
          per_axis fb
    in
    List.iter per_axis s.leaves
  in
  Obs.Span.with_span "lower.vloop_fusion" (fun () ->
      register_fusion_aux ();
      Obs.Span.add_attr "aux_defs" (Obs.Trace_sink.Int (List.length !aux)));

  (* --- reconstruct root index expressions (bounds inference: every root
         index is rebuilt from the transformed loop variables) --- *)
  let data_values, red_values =
    Obs.Span.with_span "lower.bounds" (fun () ->
        (Array.map value s.data_roots, Array.map value s.red_roots))
  in

  (* --- body: substitute index vars, lower tensor accesses --- *)
  let substitution =
    let m = ref Var.Map.empty in
    Array.iteri (fun i v -> m := Var.Map.add v data_values.(i) !m) op.Op.dim_vars;
    Array.iteri (fun i (r : Op.rvar) -> m := Var.Map.add r.rv red_values.(i) !m) op.Op.rvars;
    !m
  in
  let lower_accesses e =
    Expr.map_bottom_up
      (function
        | Expr.Access { tensor; indices } -> (
            match Op.tensor_named op tensor with
            | Some t ->
                let load, defs = Storage.load t indices in
                List.iter add_aux defs;
                load
            | None -> err "op %s reads unknown tensor %s" op.Op.name tensor)
        | e -> e)
      e
  in
  let body_expr, init_expr, out_offset =
    Obs.Span.with_span "lower.storage" (fun () ->
        let body_expr = lower_accesses (Expr.subst substitution op.Op.body) in
        let init_expr = lower_accesses (Expr.subst substitution op.Op.init) in
        let out_offset, out_defs = Storage.lower op.Op.out (Array.to_list data_values) in
        List.iter add_aux out_defs;
        Obs.Span.add_attr "aux_defs" (Obs.Trace_sink.Int (List.length !aux));
        (body_expr, init_expr, out_offset))
  in

  (* --- guards --- *)
  let leaf_arr = Array.of_list s.leaves in
  let n_leaves = Array.length leaf_arr in
  let leaf_index_of_var =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i (a : Schedule.axis) -> Hashtbl.replace tbl a.avar.Var.id i) leaf_arr;
    tbl
  in
  let innermost_leaf (e : Expr.t) =
    Var.Set.fold
      (fun v acc ->
        match Hashtbl.find_opt leaf_index_of_var v.Var.id with
        | Some i -> max acc i
        | None -> acc)
      (Expr.free_vars e) (-1)
  in
  (* Coverage multiple: the leaf decomposition of an axis visits at most
     pad_up(true_extent, L) index values, where L folds together the axis
     paddings and the factors of (potentially non-dividing) Full splits. *)
  let gcd a b =
    let rec go a b = if b = 0 then a else go b (a mod b) in
    go (max a 1) (max b 1)
  in
  let lcm a b = a / gcd a b * b in
  let rec coverage_multiple (a : Schedule.axis) : int =
    let own = max 1 a.Schedule.pad in
    if is_leaf links a then own
    else
      match Hashtbl.find_opt links.outer_child a.aid with
      | Some o ->
          let i = Hashtbl.find links.inner_child a.aid in
          let factor = match o.origin with Split_outer (_, f) -> f | _ -> assert false in
          (* each outer value expands to a tile of pad_up(factor, C(inner))
             visited indices, and the outer range itself rounds up in units
             of C(outer): ceil(ceil(E/f)/c)*c*f = pad_up(E, c*f). *)
          let tile = Shape.pad_to factor (coverage_multiple i) in
          lcm own (coverage_multiple o * tile)
      | None -> own
  in
  (* Elision is only sound if the (padded) storage of the output dimension
     is guaranteed to contain every visited index: the storage padding must
     be a multiple of the coverage multiple (§4.1's storage >= loop padding
     rule, extended to non-dividing splits).  Fused axes are exempt: their
     accesses collapse to the fused index, bounded by the bulk-padded
     buffer. *)
  let rec consumed_by_fusion (a : Schedule.axis) =
    if is_leaf links a then false
    else
      match Hashtbl.find_opt links.fused_child a.aid with
      | Some _ -> true
      | None -> (
          match
            (Hashtbl.find_opt links.outer_child a.aid, Hashtbl.find_opt links.inner_child a.aid)
          with
          | Some o, Some i -> consumed_by_fusion o || consumed_by_fusion i
          | _ -> false)
  in
  let elide_safe ~is_red i (root : Schedule.axis) =
    if is_red then true (* reduction elision is the user's explicit assertion *)
    else if consumed_by_fusion root then true
    else
      let storage_pad = op.Op.out.Tensor.pads.(i) in
      storage_pad mod coverage_multiple root = 0
  in
  let mk_guards roots values true_extent ~is_red =
    Array.to_list
      (Array.mapi
         (fun i (root : Schedule.axis) ->
           let elide =
             (root.Schedule.elide_guard || (s.guard_mode = Schedule.Elide && not is_red))
             && elide_safe ~is_red i root
           in
           if exceeds root && not elide then Some (Expr.lt values.(i) (true_extent i))
           else None)
         roots)
    |> List.filter_map Fun.id
  in
  let guards =
    Obs.Span.with_span "lower.guards" (fun () ->
        let data_guards = mk_guards s.data_roots data_values true_data_extent ~is_red:false in
        let red_guards = mk_guards s.red_roots red_values true_red_extent ~is_red:true in
        let gs = List.map (fun g -> (innermost_leaf g, g)) (data_guards @ red_guards) in
        Obs.Span.add_attr "guards_inserted" (Obs.Trace_sink.Int (List.length gs));
        Obs.Metrics.add (Obs.Metrics.counter "lower.guards_inserted") (List.length gs);
        gs)
  in

  (* --- validate loop order: a vloop extent may only reference outer leaf
         variables (§4.1's reordering restriction) --- *)
  Array.iteri
    (fun k (a : Schedule.axis) ->
      let fv = Expr.free_vars (padded_extent a) in
      Var.Set.iter
        (fun v ->
          match Hashtbl.find_opt leaf_index_of_var v.Var.id with
          | Some j when j >= k ->
              err "op %s: vloop %s is ordered outside the loop (%s) its bound depends on"
                op.Op.name (Var.name a.avar) (Var.name v)
          | _ -> ())
        fv)
    leaf_arr;

  (* --- reduction region: must be a contiguous suffix of the leaf order --- *)
  let red_start =
    let is_red k = Schedule.is_reduction_axis leaf_arr.(k) in
    let rec first_red k = if k >= n_leaves then n_leaves else if is_red k then k else first_red (k + 1) in
    let rs = first_red 0 in
    for k = rs to n_leaves - 1 do
      if not (is_red k) then
        err "op %s: reduction loops must form a contiguous innermost suffix" op.Op.name
    done;
    rs
  in

  (* --- assemble the loop nest inside out (materialising the padded
         extents bounds inference derived) --- *)
  let full_nest =
    Obs.Span.with_span "lower.assemble" @@ fun () ->
    let wrap_loop k body =
    let a = leaf_arr.(k) in
    Stmt.For { var = a.avar; min = loop_min a; extent = padded_extent a; kind = a.kind; body }
  in
  let attach_guards k body =
    let gs = List.filter_map (fun (i, g) -> if i = k then Some g else None) guards in
    match gs with
    | [] -> body
    | gs -> Stmt.If (List.fold_left Expr.and_ (List.hd gs) (List.tl gs), body, None)
  in
  let core =
    match op.Op.reduce with
    | None -> Stmt.Store { buf = op.Op.out.Tensor.buf; index = out_offset; value = body_expr }
    | Some rop ->
        Stmt.Reduce_store { buf = op.Op.out.Tensor.buf; index = out_offset; value = body_expr; op = rop }
  in
  (* reduction loops (suffix) *)
  let red_nest =
    let rec go k body =
      if k < red_start then body else go (k - 1) (wrap_loop k (attach_guards k body))
    in
    go (n_leaves - 1) core
  in
  let with_init =
    let epilogue_stmt =
      match (op.Op.reduce, op.Op.epilogue) with
      | Some _, Some post when apply_epilogue ->
          [
            Stmt.Store
              {
                buf = op.Op.out.Tensor.buf;
                index = out_offset;
                value = post (Expr.load op.Op.out.Tensor.buf out_offset);
              };
          ]
      | _ -> []
    in
    match op.Op.reduce with
    | Some _ when init ->
        Stmt.seq
          ((Stmt.Store { buf = op.Op.out.Tensor.buf; index = out_offset; value = init_expr }
           :: [ red_nest ])
          @ epilogue_stmt)
    | Some _ -> Stmt.seq (red_nest :: epilogue_stmt)
    | None -> red_nest
  in
    let full_nest =
      let rec go k body =
        if k < 0 then attach_guards (-1) body
        else go (k - 1) (wrap_loop k (attach_guards k body))
      in
      go (red_start - 1) with_init
    in
    Obs.Span.add_attr "nodes" (Obs.Trace_sink.Int (Stmt.size full_nest));
    full_nest
  in

  (* --- hoisting and simplification --- *)
  let triples = Schedule.fusion_triples s in
  let ctx = List.fold_left Simplify.with_fusion Simplify.empty_ctx triples in
  let stmt =
    Obs.Span.with_span "lower.simplify" (fun () ->
        Obs.Span.add_attr "nodes_before" (Obs.Trace_sink.Int (Stmt.size full_nest));
        let st = Simplify.simplify_stmt ~ctx full_nest in
        Obs.Span.add_attr "nodes_after" (Obs.Trace_sink.Int (Stmt.size st));
        st)
  in
  let stmt =
    if s.hoist then
      Obs.Span.with_span "lower.hoist" (fun () ->
          Obs.Span.add_attr "nodes_before" (Obs.Trace_sink.Int (Stmt.size stmt));
          let st = Hoist.hoist stmt in
          Obs.Span.add_attr "nodes_after" (Obs.Trace_sink.Int (Stmt.size st));
          st)
    else stmt
  in
  let remap =
    List.fold_left
      (fun acc (a : Schedule.axis) ->
        match a.remap with Schedule.No_remap -> acc | p -> p)
      Schedule.No_remap s.leaves
  in
  Obs.Span.add_attr "nodes_final" (Obs.Trace_sink.Int (Stmt.size stmt));
  Obs.Span.add_attr "aux_defs" (Obs.Trace_sink.Int (List.length !aux));
  {
    kname = op.Op.name ^ name_suffix;
    body = stmt;
    aux = !aux;
    triples;
    eff = s.eff;
    remap;
    bound = s.Schedule.bound;
    out = op.Op.out;
    reads = op.Op.reads;
  }

(* ------------------------------------------------------------------ *)
(* Compile cache: structural memoization of lowering.

   When a memo scope is open (see [with_memo]), every [lower] call is
   keyed by {!Sig.lowering_key} — the canonical form of the schedule plus
   the lowering options — so a pipeline re-submitted by a later request
   (even one rebuilt from scratch, with fresh variables and dimensions)
   is lowered exactly once per distinct (operator, schedule) pair.  Keys
   compare on the full canonical string, never on a hash, so a collision
   can never return the wrong kernel.  Off outside a scope: builds
   outside a serving loop pay nothing, not even the key construction.

   The scope lives in domain-local storage, not a process global: two
   requests on different worker domains each see their own policy and
   their own hit/miss tally, so a cache-bypassing request can run next
   to a caching one without either corrupting the other — the global
   [set_memo] toggle this replaces was save/restored around each request
   and silently misrestored as soon as two requests overlapped.  The
   table itself is shared, mutex-protected and bounded
   ([compile_cache.evicted] counts LRU evictions). *)

let memo_table : (Sig.t, kernel) Cache.t =
  Cache.create ~name:"compile_cache" ~capacity:512 ()

type memo_stats = { mutable hits : int; mutable misses : int }
type memo_ctx = { use_cache : bool; stats : memo_stats }

let memo_ctx_key : memo_ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_memo ~cache f =
  let slot = Domain.DLS.get memo_ctx_key in
  let saved = !slot in
  let stats = { hits = 0; misses = 0 } in
  slot := Some { use_cache = cache; stats };
  let v = Fun.protect ~finally:(fun () -> slot := saved) f in
  (v, stats)

let clear_memo () = Cache.clear memo_table
let memo_size () = Cache.size memo_table
let set_memo_capacity n = Cache.set_capacity memo_table n
let memo_capacity () = Cache.capacity memo_table

let memo_hit_c = Obs.Metrics.counter "compile_cache.hit"
let memo_miss_c = Obs.Metrics.counter "compile_cache.miss"

let lower ?ranges ?init ?apply_epilogue ?name_suffix (s : Schedule.t) : kernel =
  match !(Domain.DLS.get memo_ctx_key) with
  | Some { use_cache = true; stats } -> (
      let key = Sig.lowering_key ?ranges ?init ?apply_epilogue ?name_suffix s in
      match Cache.find memo_table key with
      | Some k ->
          Obs.Metrics.incr memo_hit_c;
          stats.hits <- stats.hits + 1;
          k
      | None ->
          Obs.Metrics.incr memo_miss_c;
          stats.misses <- stats.misses + 1;
          let k = lower_impl ?ranges ?init ?apply_epilogue ?name_suffix s in
          Cache.add memo_table key k;
          k)
  | Some { use_cache = false; _ } | None ->
      lower_impl ?ranges ?init ?apply_epilogue ?name_suffix s
