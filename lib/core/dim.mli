(** Named dimensions (CoRa §4, §B.3).

    A named dimension is an identifier shared between a tensor dimension
    and the loop that iterates over it: naming dimensions is how the user
    states raggedness relationships and how bounds inference matches
    iteration variables across producers and consumers. *)

type t = { id : int; name : string }

val make : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val name : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
