open Ir

(** Load hoisting (§D.7, Fig. 23 "+LoadHoist").

    CoRa-generated kernels read prelude-built auxiliary structures
    (uninterpreted-function calls in our IR).  A C compiler often fails to
    hoist these indirect accesses out of hot loops; CoRa knows they are
    pure and loop-invariant and hoists them itself.  This pass moves every
    maximal ufun-containing integer subexpression to the outermost program
    point where its free variables are bound, binding it with [Let_stmt]. *)

(* Maximal subexpressions that contain at least one Ufun call, are built
   only from pure integer arithmetic / ufuns / constants / variables, and
   whose free variables avoid [forbidden]. *)
let rec candidates forbidden (e : Expr.t) : Expr.t list =
  let pure_int =
    (* only arithmetic over ints, vars and ufuns — no float loads *)
    let rec ok : Expr.t -> bool = function
      | Int _ | Var _ -> true
      | Ufun (_, args) -> List.for_all ok args
      | Binop ((Add | Sub | Mul | FloorDiv | Mod | Min | Max), a, b) -> ok a && ok b
      | _ -> false
    in
    ok
  in
  let has_ufun e =
    Expr.fold (fun acc -> function Expr.Ufun _ -> true | _ -> acc) false e
  in
  let hoistable e =
    has_ufun e && pure_int e && Var.Set.is_empty (Var.Set.inter (Expr.free_vars e) forbidden)
  in
  if hoistable e then [ e ]
  else
    match e with
    | Int _ | Float _ | Bool _ | Var _ -> []
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        candidates forbidden a @ candidates forbidden b
    | Not a -> candidates forbidden a
    | Select (c, a, b) ->
        candidates forbidden c @ candidates forbidden a @ candidates forbidden b
    | Load { index; _ } -> candidates forbidden index
    | Ufun (_, args) | Call (_, args) -> List.concat_map (candidates forbidden) args
    | Access { indices; _ } -> List.concat_map (candidates forbidden) indices
    | Let (_, v, b) -> candidates forbidden v @ candidates forbidden b

(* Variables bound anywhere inside a statement (loop vars, lets, allocs). *)
let rec bound_vars (s : Stmt.t) : Var.Set.t =
  match s with
  | For { var; body; _ } -> Var.Set.add var (bound_vars body)
  | Let_stmt (v, _, body) -> Var.Set.add v (bound_vars body)
  | Alloc { buf; body; _ } -> Var.Set.add buf (bound_vars body)
  | If (_, a, b) -> (
      let s = bound_vars a in
      match b with Some b -> Var.Set.union s (bound_vars b) | None -> s)
  | Seq l -> List.fold_left (fun acc x -> Var.Set.union acc (bound_vars x)) Var.Set.empty l
  | Store _ | Reduce_store _ | Eval _ | Nop -> Var.Set.empty

let replace_expr ~target ~by e =
  Expr.map_bottom_up (fun x -> if x = target then by else x) e

(* Collect hoist candidates of an entire statement (expressions whose free
   vars avoid [forbidden]). *)
let stmt_candidates forbidden stmt =
  Stmt.fold_exprs (fun acc e -> acc @ candidates forbidden e) [] stmt
  |> List.fold_left (fun acc e -> if List.mem e acc then acc else acc @ [ e ]) []

(** Hoist auxiliary loads as far out as possible.  Applied recursively: at
    each loop, expressions inside the body that do not depend on the loop
    variable (nor on anything bound deeper) are bound just before the
    loop. *)
let rec hoist (s : Stmt.t) : Stmt.t =
  match s with
  | For r ->
      let forbidden = Var.Set.add r.var (bound_vars r.body) in
      let cands = stmt_candidates forbidden r.body in
      let body, bindings =
        List.fold_left
          (fun (body, binds) e ->
            let v = Var.fresh "aux" in
            (Stmt.map_exprs (replace_expr ~target:e ~by:(Expr.var v)) body, (v, e) :: binds))
          (r.body, []) cands
      in
      let inner = hoist body in
      List.fold_left
        (fun acc (v, e) -> Stmt.Let_stmt (v, e, acc))
        (Stmt.For { r with body = inner })
        bindings
  | Let_stmt (v, e, body) -> Let_stmt (v, e, hoist body)
  | If (c, a, b) -> If (c, hoist a, Option.map hoist b)
  | Seq l -> Seq (List.map hoist l)
  | Alloc r -> Alloc { r with body = hoist r.body }
  | (Store _ | Reduce_store _ | Eval _ | Nop) as s -> s
