(** Schedules (CoRa §4.1): performance-only transformations of one
    operator's loop nest — splits, (vloop) fusion, reordering, loop
    padding, hardware binding, thread remapping, guard elision, load
    hoisting.  Operation splitting is expressed at lowering time as a
    {!range_mode} on a split pair (Fig. 5); horizontal fusion groups whole
    kernels in {!Machine.Launch}. *)

type role = Data of int | Reduction of int

type remap_policy =
  | No_remap
  | Descending_work  (** issue heaviest thread blocks first (Fig. 14) *)

type axis = {
  aid : int;
  avar : Ir.Var.t;
  origin : origin;
  mutable kind : Ir.Stmt.for_kind;
  mutable pad : int;  (** loop padding multiple; bulk padding on fused axes *)
  mutable remap : remap_policy;
  mutable elide_guard : bool;
}

and origin =
  | Root of role
  | Split_outer of axis * int
  | Split_inner of axis * int
  | Fused of fused_info

and fused_info = { fa : axis; fb : axis; f_kind : fused_kind }

and fused_kind =
  | Dense_fuse of int
  | Ragged_fuse of {
      fn_name : string;
      count : int;
      inner_pad : int;
      triple : Ir.Simplify.fusion_triple;
      off_name : string;
      total_name : string;
      real_total_name : string;
    }

(** Operation splitting (§4.1, Fig. 5): how a split pair is ranged. *)
type range_mode =
  | Full  (** ceil(extent/factor) tiles; the last may need a guard *)
  | Tiles_only  (** floor(extent/factor) complete tiles, no guard *)
  | Tail_only  (** the single remainder tile *)

(** How the machine model prices the kernel. *)
type boundedness = Compute_bound | Memory_bound

type guard_mode =
  | Guard  (** bound checks wherever the iteration space may over-cover *)
  | Elide
      (** drop non-reduction guards: padded storage absorbs the extra
          writes (sound only when storage padding covers the loop coverage;
          {!Lower.lower} re-checks and keeps the guard otherwise) *)

type t = {
  op : Op.t;
  data_roots : axis array;
  red_roots : axis array;
  mutable leaves : axis list;  (** current loop order, outermost first *)
  mutable guard_mode : guard_mode;
  mutable hoist : bool;
  mutable eff : float;
  mutable bound : boundedness;
}

(** Fresh schedule: one root axis per output dim, then per reduction dim. *)
val create : Op.t -> t

val leaf_pos : t -> axis -> int

(** Root axis of output dimension [i] / reduction dimension [i] (valid even
    after the axis has been split or fused away). *)
val axis_of_dim : t -> int -> axis

val axis_of_rdim : t -> int -> axis
val is_reduction_axis : axis -> bool
val root_data_pos : axis -> int option

(** [split s a factor] replaces leaf [a] with (outer, inner):
    [a = outer*factor + inner]. *)
val split : t -> axis -> int -> axis * axis

(** [fuse s a b] fuses adjacent leaves.  A constant outer with a ragged
    inner that depends on it is {e vloop fusion} (§5.1): the fused extent
    is the prelude-computed total and the pair is recovered through
    [f_fo]/[f_fi], whose identities are registered with the simplifier. *)
val fuse : t -> axis -> axis -> axis

(** Set the loop order (a permutation of the leaves; the vloop-ordering
    restriction of §4.1 is enforced at lowering). *)
val reorder : t -> axis list -> unit

(** Loop padding (Listing 1 line 18); on a fused axis: bulk padding. *)
val pad_loop : t -> axis -> int -> unit

val bind : t -> axis -> Ir.Stmt.for_kind -> unit
val parallelize : t -> axis -> unit
val vectorize : t -> axis -> unit
val bind_block : t -> axis -> unit
val bind_thread : t -> axis -> unit

(** Thread remapping policy (§4.1, Fig. 14). *)
val set_remap : t -> axis -> remap_policy -> unit

(** Assert over-covered iterations of this axis are harmless (e.g. a padded
    reduction over zero-filled attention columns). *)
val set_elide_guard : t -> axis -> unit

val set_guard_mode : t -> guard_mode -> unit
val set_hoist : t -> bool -> unit
val set_eff : t -> float -> unit
val set_memory_bound : t -> unit

(** All fusion triples introduced by ragged fusions in this schedule. *)
val fusion_triples : t -> Ir.Simplify.fusion_triple list
