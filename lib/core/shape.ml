(** Extent specifications for loops and tensor dimensions (CoRa §3, §4).

    An extent is either constant ([Fixed]) or variable ([Ragged]): the size
    of a slice of a vdim — equivalently the bound of a vloop — given as a
    length function of the index of one outer dimension.  Like the CoRa
    prototype (§6) we restrict a vdim to depend on at most one outer
    dimension; none of the paper's evaluation needs more. *)

type t =
  | Fixed of int
  | Ragged of { dep : Dim.t; fn : Lenfun.t }

let fixed n =
  if n < 0 then invalid_arg "Shape.fixed: negative extent";
  Fixed n

let ragged ~dep ~fn = Ragged { dep; fn }

let is_ragged = function Ragged _ -> true | Fixed _ -> false

(** The dimension this extent depends on, if any. *)
let dependence = function Ragged { dep; _ } -> Some dep | Fixed _ -> None

(** Evaluate the extent numerically given a length-function environment and
    the value of the dependee index. *)
let eval (t : t) ~(lenv : Lenfun.env) ~(dep_value : int) =
  match t with
  | Fixed n -> n
  | Ragged { fn; _ } -> Lenfun.lookup lenv (Lenfun.name fn) dep_value

(** Round [n] up to a multiple of [m] ([m <= 1] is a no-op). *)
let pad_to n m = if m <= 1 then n else (n + m - 1) / m * m

let pp ppf = function
  | Fixed n -> Fmt.int ppf n
  | Ragged { dep; fn } -> Fmt.pf ppf "%s(%a)" (Lenfun.name fn) Dim.pp dep
