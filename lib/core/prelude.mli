(** Prelude: host-side construction of auxiliary data structures (§2, §5,
    §7.4).  Each uninterpreted function the lowered kernels reference —
    storage offset arrays ([A_d]), fused-loop maps and totals — is
    described as a {!def}; {!build} materialises them from the concrete
    length functions, with the time/memory accounting the paper reports. *)

type kind =
  | Storage  (** ragged-storage offset arrays (§B.1) *)
  | Loop_fusion  (** fused-vloop maps [f_fo]/[f_fi]/offsets/totals (§5.1) *)

type value = Scalar of int | Table of int array

type def = {
  name : string;  (** doubles as the uninterpreted-function name in the IR *)
  kind : kind;
  compute : Lenfun.env -> value;
  work : Lenfun.env -> int;  (** host operations to build it (≈ entries) *)
  c_src : string option;  (** host-side C implementation, when available *)
}

type built = {
  tables : (string * value) list;
  storage_entries : int;
  fusion_entries : int;
  storage_work : int;
  fusion_work : int;
}

val value_entries : value -> int

(** Keep one def per name — CoRa shares aux structures across operators and
    layers with the same raggedness pattern (CoRA-Optimized, §7.4). *)
val dedup : def list -> def list

(** Build all aux structures.  [~dedup_defs:false] reproduces the redundant
    per-operator computation of the unoptimized prototype (Tables 7–8). *)
val build : ?dedup_defs:bool -> def list -> Lenfun.env -> built

(** Memory footprint in bytes (4-byte entries, as the paper reports). *)
val bytes : built -> int

val storage_bytes : built -> int
val fusion_bytes : built -> int

(** Bind every built table as an uninterpreted function for execution. *)
val bind_all : built -> Runtime.Interp.env -> unit

(** Bind the raw length functions (kernels use them as loop extents). *)
val bind_lenfuns : Lenfun.env -> Runtime.Interp.env -> unit

(** Prefix sums of padded slice sizes: the factored storage offset array
    for a (cdim, vdim) pair AND the fused-loop offsets array. *)
val psum_def : name:string -> fn_name:string -> count:int -> pad:int -> def

(** General prefix sum of per-slice volumes (entry count may itself be
    length-dependent: nested raggedness). *)
val volume_psum_def :
  name:string -> count:(Lenfun.env -> int) -> volume:(Lenfun.env -> int -> int) -> def

(** Pointwise table [name.(x) = value lenv x] (subtree-volume strides). *)
val pointwise_def :
  name:string -> count:(Lenfun.env -> int) -> value:(Lenfun.env -> int -> int) -> def

(** Scalar computed by the prelude. *)
val scalar_def : name:string -> value:(Lenfun.env -> int) -> def

(** Fused-loop total [F], bulk-padded (§7.2). *)
val fused_total_def : name:string -> fn_name:string -> count:int -> pad:int -> bulk:int -> def

(** Fused-loop maps [f_fo]/[f_fi] (§5.1); bulk-padding entries map to a
    virtual row so padded iterations stay within the padded buffer. *)
val fused_map_defs :
  fo_name:string -> fi_name:string -> fn_name:string -> count:int -> pad:int -> bulk:int ->
  def list
