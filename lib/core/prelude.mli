(** Prelude: host-side construction of auxiliary data structures (§2, §5,
    §7.4).  Each uninterpreted function the lowered kernels reference —
    storage offset arrays ([A_d]), fused-loop maps and totals — is
    described as a {!def}; {!build} materialises them from the concrete
    length functions, with the time/memory accounting the paper reports. *)

type kind =
  | Storage  (** ragged-storage offset arrays (§B.1) *)
  | Loop_fusion  (** fused-vloop maps [f_fo]/[f_fi]/offsets/totals (§5.1) *)

type value = Scalar of int | Table of int array

type def = {
  name : string;  (** doubles as the uninterpreted-function name in the IR *)
  kind : kind;
  compute : Lenfun.env -> value;
  work : Lenfun.env -> int;  (** host operations to build it (≈ entries) *)
  c_src : string option;  (** host-side C implementation, when available *)
  update : (prev:value -> old_lenv:Lenfun.env -> Lenfun.env -> (value * int) option) option;
      (** incremental maintenance from the value built for [old_lenv]:
          [(new value, host ops actually performed)], sharing the previous
          array by reference when nothing changed; [None] = updater
          declines (shape mismatch), fall back to [compute]. *)
}

type built = {
  tables : (string * value) list;
  storage_entries : int;
  fusion_entries : int;
  storage_work : int;
  fusion_work : int;
}

val value_entries : value -> int

(** Keep one def per name — CoRa shares aux structures across operators and
    layers with the same raggedness pattern (CoRA-Optimized, §7.4). *)
val dedup : def list -> def list

(** Build all aux structures.  [~dedup_defs:false] reproduces the redundant
    per-operator computation of the unoptimized prototype (Tables 7–8). *)
val build : ?dedup_defs:bool -> def list -> Lenfun.env -> built

(** Raised by the differential check (see {!set_delta_check}) when a
    delta-updated table differs from a from-scratch build; carries the
    offending table name. *)
exception Delta_mismatch of string

(** [delta_update ~prev ~old_lenv defs lenv] — incremental prelude
    maintenance for autoregressive decoding: produce the tables for [lenv]
    by extending [prev] (the tables built for [old_lenv]) instead of
    rebuilding, touching only rows whose padded size changed and sharing
    unchanged arrays by reference.  [prev] is never mutated (it may be a
    cached value shared across requests).  Falls back to a from-scratch
    compute per def when no previous value applies.  Counters:
    [prelude.tables_delta_updated], [prelude.tables_shared]; fallbacks
    count as [prelude.tables_built].  The work fields of the result record
    the operations actually performed, so modeled host time shrinks with
    the delta; the entries fields stay exact (copy volume is unchanged). *)
val delta_update : ?dedup_defs:bool -> prev:built -> old_lenv:Lenfun.env -> def list ->
  Lenfun.env -> built

(** When enabled, every {!delta_update} table is also rebuilt from scratch
    and compared bitwise, raising {!Delta_mismatch} on any difference —
    the differential oracle for the incremental path (used by tests and
    [--smoke]). *)
val set_delta_check : bool -> unit

val delta_check_enabled : unit -> bool

(** Bitwise equality of prelude values. *)
val value_equal : value -> value -> bool

(** Memory footprint in bytes (4-byte entries, as the paper reports). *)
val bytes : built -> int

val storage_bytes : built -> int
val fusion_bytes : built -> int

(** Bind every built table as an uninterpreted function for execution. *)
val bind_all : built -> Runtime.Interp.env -> unit

(** Bind the raw length functions (kernels use them as loop extents). *)
val bind_lenfuns : Lenfun.env -> Runtime.Interp.env -> unit

(** Prefix sums of padded slice sizes: the factored storage offset array
    for a (cdim, vdim) pair AND the fused-loop offsets array. *)
val psum_def : name:string -> fn_name:string -> count:int -> pad:int -> def

(** General prefix sum of per-slice volumes (entry count may itself be
    length-dependent: nested raggedness). *)
val volume_psum_def :
  name:string -> count:(Lenfun.env -> int) -> volume:(Lenfun.env -> int -> int) -> def

(** Pointwise table [name.(x) = value lenv x] (subtree-volume strides). *)
val pointwise_def :
  name:string -> count:(Lenfun.env -> int) -> value:(Lenfun.env -> int -> int) -> def

(** Scalar computed by the prelude. *)
val scalar_def : name:string -> value:(Lenfun.env -> int) -> def

(** Fused-loop total [F], bulk-padded (§7.2). *)
val fused_total_def : name:string -> fn_name:string -> count:int -> pad:int -> bulk:int -> def

(** Fused-loop maps [f_fo]/[f_fi] (§5.1); bulk-padding entries map to a
    virtual row so padded iterations stay within the padded buffer. *)
val fused_map_defs :
  fo_name:string -> fi_name:string -> fn_name:string -> count:int -> pad:int -> bulk:int ->
  def list
