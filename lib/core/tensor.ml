open Ir

(** Tensor declarations.

    A tensor has named dimensions, a storage extent per dimension
    (constant or ragged), a storage-padding multiple per dimension
    (CoRa's [pad_dimension], §4.1), an optional bulk padding of the total
    ragged prefix (used when storage dimensions are fused with a
    bulk-padded fused loop, §7.2), and a runtime buffer handle. *)

type t = {
  name : string;
  buf : Var.t;  (** flat runtime buffer this tensor is stored in *)
  dims : Dim.t list;
  extents : Shape.t list;  (** storage extents, outermost dimension first *)
  pads : int array;  (** storage padding multiple per dimension *)
  mutable bulk_pad : int;
      (** pad the total size of the leading ragged prefix to this multiple *)
  mutable fused_dims : (int * int) option;
      (** record of [fuse_dims]: positions fused in storage *)
}

let create ~name ~dims ~extents =
  if List.length dims <> List.length extents then
    invalid_arg "Tensor.create: dims/extents length mismatch";
  List.iteri
    (fun i ext ->
      match Shape.dependence ext with
      | None -> ()
      | Some dep ->
          let outer = List.filteri (fun j _ -> j < i) dims in
          if not (List.exists (Dim.equal dep) outer) then
            invalid_arg
              (Printf.sprintf
                 "Tensor.create %s: dim %d depends on %s which is not an outer dimension"
                 name i (Dim.name dep)))
    extents;
  {
    name;
    buf = Var.fresh (name ^ "_buf");
    dims;
    extents;
    pads = Array.make (List.length dims) 1;
    bulk_pad = 1;
    fused_dims = None;
  }

let rank t = List.length t.dims

(** Position of a named dimension within the tensor. *)
let dim_pos t d =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Tensor.dim_pos: %s has no dim %s" t.name (Dim.name d))
    | x :: rest -> if Dim.equal x d then i else go (i + 1) rest
  in
  go 0 t.dims

(** [pad_dimension t d m] — pad the storage of dimension [d] to multiples of
    [m] (CoRa scheduling primitive, Listing 1 line 19). *)
let pad_dimension t d m =
  if m < 1 then invalid_arg "Tensor.pad_dimension: multiple must be >= 1";
  t.pads.(dim_pos t d) <- m

(** [set_bulk_pad t m] — pad the total number of "rows" of the variable
    prefix to a multiple of [m] ({e bulk padding}, §7.2). *)
let set_bulk_pad t m =
  if m < 1 then invalid_arg "Tensor.set_bulk_pad: multiple must be >= 1";
  t.bulk_pad <- m

(** [fuse_dims t i j] — declare storage dimensions [i..j] fused (§4.1,
    "Tensor Dimension Scheduling").  Offsets are unchanged — ragged
    row-major storage already lays a (cdim, dependent vdim) pair
    contiguously — but the marker lets lowering check that a bulk-padded
    fused loop indexes this tensor through the fused pair, and lets the code
    generator print the simplified access. *)
let fuse_dims t i j =
  if j <> i + 1 then invalid_arg "Tensor.fuse_dims: only adjacent pairs supported";
  t.fused_dims <- Some (i, j)

(** Does any dimension of [t] depend on dimension position [i]? *)
let has_dependents t i =
  let di = List.nth t.dims i in
  List.exists
    (fun ext -> match Shape.dependence ext with Some d -> Dim.equal d di | None -> false)
    t.extents

(** Padded size of dimension [pos] as an integer, given the value of its
    dependee.  *)
let padded_extent_at t pos ~lenv ~dep_value =
  let ext = List.nth t.extents pos in
  Shape.pad_to (Shape.eval ext ~lenv ~dep_value) t.pads.(pos)

(** [slice_volume t ~lenv ~level ~env] — number of stored elements of the
    sub-tensor spanned by dimensions [level..], given index assignments for
    outer dimensions in [env] (pairs of [Dim.id] and value).  Handles nested
    raggedness (a ragged dimension that other ragged dimensions depend on,
    as in triangular attention) by recursive summation. *)
let rec slice_volume t ~lenv ~level ~env =
  let dims = Array.of_list t.dims and exts = Array.of_list t.extents in
  let n = Array.length dims in
  if level >= n then 1
  else
    let dep_value =
      match Shape.dependence exts.(level) with
      | None -> 0
      | Some d -> (
          match List.assoc_opt d.Dim.id env with
          | Some v -> v
          | None -> invalid_arg "Tensor.slice_volume: missing dependee value")
    in
    let ext = Shape.pad_to (Shape.eval exts.(level) ~lenv ~dep_value) t.pads.(level) in
    if not (has_dependents t level) then ext * slice_volume t ~lenv ~level:(level + 1) ~env
    else begin
      let total = ref 0 in
      for v = 0 to ext - 1 do
        total :=
          !total
          + slice_volume t ~lenv ~level:(level + 1) ~env:(((dims.(level)).Dim.id, v) :: env)
      done;
      !total
    end

(** Total number of stored elements (including all padding), computed
    numerically from the length-function environment.  Used to allocate
    runtime buffers. *)
let size_elems t ~lenv =
  let exts = Array.of_list t.extents in
  let n = Array.length exts in
  let base = slice_volume t ~lenv ~level:0 ~env:[] in
  (* Bulk padding applies to the number of variable "rows": when the leading
     dims form a (cdim, vdim) ragged prefix with constant inner dims, the
     total is rows * row_size; pad rows up to the bulk multiple. *)
  if t.bulk_pad <= 1 then base
  else begin
    (* row size = product of the trailing constant dims *)
    let rec const_tail i acc =
      if i < 0 then acc
      else
        match exts.(i) with
        | Shape.Fixed c when not (has_dependents t i) ->
            const_tail (i - 1) (acc * Shape.pad_to c t.pads.(i))
        | _ -> acc
    in
    let row = const_tail (n - 1) 1 in
    if row = 0 || base mod row <> 0 then base
    else Shape.pad_to (base / row) t.bulk_pad * row
  end

let pp ppf t =
  Fmt.pf ppf "%s[%a]" t.name
    Fmt.(list ~sep:(any ", ") Shape.pp)
    t.extents
