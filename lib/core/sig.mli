(** Structural signatures of compiler objects.

    A signature is a canonical fingerprint of an IR fragment, operator or
    schedule, computed {e structurally}: two objects that denote the same
    program receive the same signature even when they were built
    independently — variables, dimensions and axes are numbered by first
    occurrence in a deterministic traversal, so globally-unique ids and
    display names do not leak into the fingerprint.  Names that are bound
    at launch time (length functions, prelude tables, intrinsics, tensor
    names — all resolved by string) {e do} participate: they are part of
    the program's meaning.

    Signatures key the caches of the batch-stream serving layer
    ({!Lower.lower_memo}'s compile cache and {!Prelude.build_cached}'s
    prelude cache): equality is decided on the full canonical form, never
    on the 64-bit hash alone, so a hash collision can cost a cache miss
    but never a wrong reuse. *)

type t

(** Exact structural equality (canonical forms compared in full). *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** 64-bit FNV-1a hash of the canonical form — the cheap table key. *)
val hash64 : t -> int64

(** Hex rendering of {!hash64} (16 chars), for logs and JSON. *)
val to_hex : t -> string

(** The canonical form itself (stable across processes; useful in tests). *)
val canonical : t -> string

(** Fold several signatures into one (order-sensitive). *)
val combine : t list -> t

(** Signature of a raw string key component (e.g. a workload name). *)
val of_string : string -> t

val of_expr : Ir.Expr.t -> t
val of_stmt : Ir.Stmt.t -> t

(** Operator signature: loop/reduction extents, body, init, epilogue,
    reduction combinator, and the storage declarations (extents, padding,
    bulk padding, names) of the output and every read tensor. *)
val of_op : Op.t -> t

(** Schedule signature: {!of_op} plus the complete axis forest (origins,
    split factors, fusion kinds, paddings, bindings, remap and elision
    flags), leaf order, guard mode, hoisting, efficiency and boundedness.
    Axes are numbered canonically, so two independently built, identical
    schedules agree. *)
val of_schedule : Schedule.t -> t

(** The full memoization key for one {!Lower.lower} call: {!of_schedule}
    plus the lowering options.  [ranges] axis ids are canonicalised
    through the schedule's own axis numbering. *)
val lowering_key :
  ?ranges:(int * Schedule.range_mode) list ->
  ?init:bool ->
  ?apply_epilogue:bool ->
  ?name_suffix:string ->
  Schedule.t ->
  t

(** Order-sensitive signature of a sequence of integer arrays — the
    pack-plan memo key of the serving batch-former: a drain window is
    identified by the raggedness vectors of its pending requests, in
    order. *)
val of_rows : int array array -> t

(** Raggedness signature of a batch: the concrete length-function tables
    (name → per-index lengths) that the prelude will consume.  Entries
    are sorted by name, so binding order does not matter; any change to
    any length changes the signature. *)
val of_tables : (string * int array) list -> t
