open Ir

(** Operator definitions — CoRa's analogue of [te.compute] (Listing 1).

    An operator computes one output tensor.  Each output dimension has a
    {e loop extent} which may differ from the output's storage extent
    (loop padding vs storage padding are independent as long as storage
    padding is at least as large, §4.1).  Reductions add reduction
    dimensions whose extents may themselves be ragged — a ragged reduction
    loop is what trmm and AttnV have.

    The body is an expression over the dimension index variables, with
    multi-dimensional tensor reads written as [Expr.Access] nodes; storage
    lowering turns those into flat loads. *)

type rvar = { rv : Var.t; rdim : Dim.t; rextent : Shape.t }

type t = {
  name : string;
  out : Tensor.t;
  dim_vars : Var.t array;  (** one index variable per output dimension *)
  loop_extents : Shape.t array;
  rvars : rvar array;
  body : Expr.t;
  reduce : Stmt.reduce_op option;
  init : Expr.t;  (** initial value of the reduction accumulator; may access
                      tensors (a fused bias / residual add, Fig. 3) *)
  epilogue : (Expr.t -> Expr.t) option;
      (** applied to the accumulated value after the reduction completes —
          fused activations such as gelu in "FF1 MM + Bias + Activation" *)
  reads : Tensor.t list;  (** tensors the body may access *)
}

(** [access t idxs] — a (not yet lowered) read of tensor [t]. *)
let access (t : Tensor.t) idxs = Expr.access t.Tensor.name idxs

let dim_var_exprs op = Array.to_list (Array.map Expr.var op.dim_vars)

let validate op =
  Array.iteri
    (fun i ext ->
      match Shape.dependence ext with
      | None -> ()
      | Some dep ->
          let outer = List.filteri (fun j _ -> j < i) op.out.Tensor.dims in
          if not (List.exists (Dim.equal dep) outer) then
            invalid_arg
              (Printf.sprintf "Op %s: loop extent %d depends on non-outer dim %s" op.name i
                 (Dim.name dep)))
    op.loop_extents;
  op

(** [compute ~name ~out ~loop_extents ~reads f] — an elementwise/map-style
    operator: [out\[i...\] = f \[i...\]]. *)
let compute ~name ~out ~loop_extents ~reads f =
  let dim_vars =
    Array.of_list (List.map (fun d -> Var.fresh (Dim.name d)) out.Tensor.dims)
  in
  let idx = Array.to_list (Array.map Expr.var dim_vars) in
  validate
    {
      name;
      out;
      dim_vars;
      loop_extents = Array.of_list loop_extents;
      rvars = [||];
      body = f idx;
      reduce = None;
      init = Expr.float 0.0;
      epilogue = None;
      reads;
    }

(** [reduce ~name ~out ~loop_extents ~rdims ~combine ~init ~reads f] — a
    reduction operator: [out\[i...\] = combine over \[r...\] of f \[i...\] \[r...\]].
    Reduction extents may be ragged (vloop reductions).  [init] receives the
    output index expressions, so a bias or residual read can be fused into
    the accumulator initialisation (Fig. 3's fused ResidualAdd). *)
let reduce ~name ~out ~loop_extents ~rdims ~combine ~init ?epilogue ~reads f =
  let dim_vars =
    Array.of_list (List.map (fun d -> Var.fresh (Dim.name d)) out.Tensor.dims)
  in
  let rvars =
    Array.of_list
      (List.map (fun (d, ext) -> { rv = Var.fresh (Dim.name d); rdim = d; rextent = ext }) rdims)
  in
  let idx = Array.to_list (Array.map Expr.var dim_vars) in
  let ridx = Array.to_list (Array.map (fun r -> Expr.var r.rv) rvars) in
  validate
    {
      name;
      out;
      dim_vars;
      loop_extents = Array.of_list loop_extents;
      rvars;
      body = f idx ridx;
      reduce = Some combine;
      init = init idx;
      epilogue;
      reads;
    }

(** Find a tensor named [name] among the op's reads and output. *)
let tensor_named op name =
  if String.equal op.out.Tensor.name name then Some op.out
  else List.find_opt (fun t -> String.equal t.Tensor.name name) op.reads

let n_dims op = Array.length op.dim_vars
let n_rdims op = Array.length op.rvars
