(** Named dimensions (CoRa §4, §B.3).

    A named dimension is an identifier shared between a tensor dimension and
    the loop that iterates over it.  Naming the dimension is what lets the
    user state raggedness relationships ("the extent of [len_dim] is
    [lens\[b\]] where [b] indexes [batch_dim]") and what lets bounds
    inference match iteration variables across producers and consumers. *)

type t = { id : int; name : string }

(* atomic: dimensions are minted concurrently by serving worker domains,
   and a duplicated id would merge two unrelated raggedness relations *)
let counter = Atomic.make 0

(** [make name] creates a fresh named dimension. *)
let make name = { id = 1 + Atomic.fetch_and_add counter 1; name }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let name d = d.name
let pp ppf d = Fmt.pf ppf "%s#%d" d.name d.id

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
