(** Tensor declarations: named dimensions, per-dimension storage extents
    (constant or ragged), per-dimension storage padding ([pad_dimension],
    §4.1), optional bulk padding of the ragged prefix (§7.2), and a runtime
    buffer handle. *)

type t = {
  name : string;
  buf : Ir.Var.t;  (** flat runtime buffer this tensor is stored in *)
  dims : Dim.t list;
  extents : Shape.t list;  (** storage extents, outermost first *)
  pads : int array;  (** storage padding multiple per dimension *)
  mutable bulk_pad : int;
  mutable fused_dims : (int * int) option;
}

(** Validates that every ragged extent depends on an outer dimension of the
    same tensor. *)
val create : name:string -> dims:Dim.t list -> extents:Shape.t list -> t

val rank : t -> int

(** Position of a named dimension within the tensor. *)
val dim_pos : t -> Dim.t -> int

(** [pad_dimension t d m] — pad dimension [d]'s storage to multiples of [m]
    (Listing 1, line 19). *)
val pad_dimension : t -> Dim.t -> int -> unit

(** Pad the total row count of the ragged prefix to a multiple — {e bulk
    padding} for bulk-padded fused loops (§7.2). *)
val set_bulk_pad : t -> int -> unit

(** Declare two adjacent storage dimensions fused (§4.1, "Tensor Dimension
    Scheduling").  Offsets are unchanged — ragged row-major storage already
    lays the pair contiguously — the marker documents intent and guides the
    code generator. *)
val fuse_dims : t -> int -> int -> unit

(** Does any dimension's extent depend on dimension position [i]? *)
val has_dependents : t -> int -> bool

val padded_extent_at : t -> int -> lenv:Lenfun.env -> dep_value:int -> int

(** Stored elements of the sub-tensor spanned by dims [level..] under the
    outer-index assignment [env] (pairs of [Dim.id] × value).  Handles
    nested raggedness by recursive summation. *)
val slice_volume : t -> lenv:Lenfun.env -> level:int -> env:(int * int) list -> int

(** Total stored elements (including all padding) — runtime buffer size. *)
val size_elems : t -> lenv:Lenfun.env -> int

val pp : Format.formatter -> t -> unit
