(** Load hoisting (§D.7, Fig. 23 "+LoadHoist"): move every maximal
    ufun-containing pure-integer subexpression to the outermost program
    point where its free variables are bound, binding it with [Let_stmt].
    CoRa knows these auxiliary accesses are pure and loop-invariant even
    when a downstream C compiler cannot prove it. *)

val hoist : Ir.Stmt.t -> Ir.Stmt.t

(** Variables bound anywhere inside a statement (exposed for tests). *)
val bound_vars : Ir.Stmt.t -> Ir.Var.Set.t
