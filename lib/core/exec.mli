(** Kernel execution through the reference interpreter — the runtime half
    of Fig. 4: build the (deduplicated) prelude on the host, bind aux
    tables, length functions and tensor buffers, interpret the kernels in
    order.  Used wherever real numerics are needed; performance questions
    go to {!Machine.Launch}. *)

type binding = Tensor.t * Runtime.Buffer.t

(** Returns the interpreter environment (for statistics) and the built
    prelude (for overhead accounting). *)
val run :
  lenv:Lenfun.env -> bindings:binding list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built

val run_ragged :
  lenv:Lenfun.env -> tensors:Ragged.t list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built
