(** Kernel execution through the reference interpreter — the runtime half
    of Fig. 4: build the (deduplicated) prelude on the host, bind aux
    tables, length functions and tensor buffers, interpret the kernels in
    order.  Used wherever real numerics are needed; performance questions
    go to {!Machine.Launch}.

    Traced as one [exec.run] span (prelude build inside) plus one
    [exec.kernel] span per kernel; the interpreter's statistics counters
    are flushed into the {!Obs.Metrics} registry under [interp.*]. *)

type binding = Tensor.t * Runtime.Buffer.t

(** Returns the interpreter environment (for statistics) and the prelude
    used (for overhead accounting).  [~multicore:true] executes
    [Parallel]-bound loops across [domains] OCaml domains; the statistics
    are aggregated either way.  [?prelude] supplies already-built aux
    structures (e.g. from {!Prelude_cache}), skipping the build. *)
val run :
  ?multicore:bool -> ?domains:int -> ?prelude:Prelude.built ->
  lenv:Lenfun.env -> bindings:binding list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built

val run_ragged :
  ?multicore:bool -> ?domains:int -> ?prelude:Prelude.built ->
  lenv:Lenfun.env -> tensors:Ragged.t list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built
