(** Kernel execution — the runtime half of Fig. 4: build the (deduplicated)
    prelude on the host, bind aux tables, length functions and tensor
    buffers, then execute the kernels in order through the selected engine.
    Used wherever real numerics are needed; performance questions go to
    {!Machine.Launch}.

    Traced as one [exec.run] span (prelude build inside) plus one
    [exec.kernel] span per kernel; statistics counters are flushed into
    the {!Obs.Metrics} registry under [interp.*] or [engine.*]. *)

type binding = Tensor.t * Runtime.Buffer.t

(** [`Interp] walks the tree through {!Runtime.Interp} (ground truth);
    [`Compiled] stages each kernel into slot-resolved closures through
    {!Runtime.Engine} — same results, same counters, interpretive overhead
    gone.  Compiled kernels are memoized per structural signature. *)
type engine = [ `Interp | `Compiled ]

(** Returns the interpreter environment (for statistics — identical
    counter semantics under both engines) and the prelude used (for
    overhead accounting).  [~multicore:true] executes [Parallel]-bound
    loops across [domains] OCaml domains: per-loop [Domain.spawn] under
    [`Interp], one persistent domain pool per call under [`Compiled]; the
    statistics are aggregated either way.  [?prelude] supplies
    already-built aux structures (e.g. from {!Prelude_cache}), skipping
    the build.  [?opt] (default [O0], compiled engine only) selects the
    {!Ir.Optimize} level — outputs stay bitwise-identical at every level;
    counter parity with the interpreter holds at [O0] only (see
    {!Runtime.Engine}). *)
val run :
  ?engine:engine -> ?opt:Ir.Optimize.level -> ?multicore:bool -> ?domains:int ->
  ?prelude:Prelude.built ->
  lenv:Lenfun.env -> bindings:binding list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built

val run_ragged :
  ?engine:engine -> ?opt:Ir.Optimize.level -> ?multicore:bool -> ?domains:int ->
  ?prelude:Prelude.built ->
  lenv:Lenfun.env -> tensors:Ragged.t list -> Lower.kernel list ->
  Runtime.Interp.env * Prelude.built

(** Per-request compiled-kernel-memo accounting.  [with_engine_stats f]
    runs [f] with a fresh tally scoped to the calling domain (like
    {!Lower.with_memo}): every memo probe made by [f] — and nothing made
    by overlapping requests on other domains — is counted.  Nested
    scopes shadow; the previous scope is restored on exit. *)
type engine_stats = { mutable hits : int; mutable misses : int }

val with_engine_stats : (unit -> 'a) -> 'a * engine_stats

(** Clear the [(Sig, opt level)]-keyed compiled-kernel memo (paired with
    {!Lower.clear_memo} by [Serving.Server.reset_caches]). *)
val clear_engine_memo : unit -> unit

(** Number of compiled kernels currently memoized. *)
val engine_memo_size : unit -> int

(** The memo is shared across serving worker domains: mutex-protected
    and bounded with least-recently-used eviction ([engine_cache.evicted]
    counter).  [set_engine_memo_capacity] clamps to >= 1 and evicts
    immediately when shrinking below the current size. *)
val set_engine_memo_capacity : int -> unit

val engine_memo_capacity : unit -> int
