(** Operator graphs and activation-memory planning.

    The paper's prototype "generates code for individual operators ...
    invoked as part of a separate program that ties the operators together"
    (§C), and motivates ragged tensors partly by training-memory pressure
    (§7.2 "Memory Consumption", §D.5).  This module supplies that tying
    layer: a sequential operator graph with read/write sets inferred from
    the lowered kernels, buffer liveness analysis, and a greedy in-place
    memory planner that lets dead intermediates share storage — the
    standard inference-time memory optimisation, here on ragged buffers. *)

type node = {
  kernel : Lower.kernel;
  reads : Tensor.t list;
  writes : Tensor.t;
}

type t = {
  nodes : node list;  (** program order *)
  tensors : Tensor.t list;  (** all tensors the kernels touch *)
  inputs : Tensor.t list;  (** externally provided (never reused) *)
  outputs : Tensor.t list;  (** externally observed (never reused) *)
}

let buffers_of_kernel (k : Lower.kernel) =
  let bufs = ref Ir.Var.Set.empty in
  let scan_expr () e =
    Ir.Expr.fold
      (fun () -> function Ir.Expr.Load { buf; _ } -> bufs := Ir.Var.Set.add buf !bufs | _ -> ())
      () e
  in
  Ir.Stmt.fold_exprs (fun () e -> scan_expr () e) () k.Lower.body;
  !bufs

(** Build a graph from kernels in program order; reads are inferred from
    the loads in each kernel's body. *)
let make ~(tensors : Tensor.t list) ~(inputs : Tensor.t list) ~(outputs : Tensor.t list)
    (kernels : Lower.kernel list) : t =
  let by_buf = Hashtbl.create 16 in
  List.iter (fun (t : Tensor.t) -> Hashtbl.replace by_buf t.Tensor.buf.Ir.Var.id t) tensors;
  let nodes =
    List.map
      (fun (k : Lower.kernel) ->
        let reads =
          Ir.Var.Set.fold
            (fun v acc ->
              match Hashtbl.find_opt by_buf v.Ir.Var.id with
              | Some t when not (t == k.Lower.out) -> t :: acc
              | _ -> acc)
            (buffers_of_kernel k) []
        in
        { kernel = k; reads; writes = k.Lower.out })
      kernels
  in
  { nodes; tensors; inputs; outputs }

(** Liveness: for each intermediate tensor, its [first write, last read]
    range in program order (a tensor read before any write — an external
    input — is live from the start). *)
let liveness (g : t) : (Tensor.t * int * int) list =
  let n = List.length g.nodes in
  let ranges = Hashtbl.create 16 in
  List.iteri
    (fun i node ->
      let touch first (t : Tensor.t) =
        let lo, hi =
          match Hashtbl.find_opt ranges t.Tensor.buf.Ir.Var.id with
          | Some (_, lo, hi) -> (lo, hi)
          | None -> ((if first then i else 0), i)
        in
        Hashtbl.replace ranges t.Tensor.buf.Ir.Var.id (t, min lo i, max hi i)
      in
      touch true node.writes;
      List.iter (touch false) node.reads)
    g.nodes;
  ignore n;
  Hashtbl.fold (fun _ r acc -> r :: acc) ranges []
  |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b)

(** A memory plan: each tensor is assigned a storage slot; tensors with
    disjoint live ranges may share a slot. *)
type plan = {
  slot_of : (int, int) Hashtbl.t;  (** tensor buf id -> slot *)
  slot_bytes : int array;  (** size of each slot *)
}

let is_external g (t : Tensor.t) =
  List.exists (fun x -> x == t) g.inputs || List.exists (fun x -> x == t) g.outputs

(** Greedy interval-graph colouring: walk tensors by first-write order and
    place each in the first slot whose current occupant is dead. *)
let plan (g : t) ~(lenv : Lenfun.env) : plan =
  let ranges = liveness g in
  let slot_of = Hashtbl.create 16 in
  let slots : (int * int) list ref = ref [] (* (free_at, bytes) per slot *) in
  List.iter
    (fun ((t : Tensor.t), lo, hi) ->
      if not (is_external g t) then begin
        let bytes = 4 * Tensor.size_elems t ~lenv in
        let rec place i = function
          | (free_at, sz) :: rest ->
              if free_at < lo then begin
                (* reuse slot i *)
                slots :=
                  List.mapi (fun j s -> if j = i then (hi, max sz bytes) else s) !slots;
                i
              end
              else place (i + 1) rest
          | [] ->
              slots := !slots @ [ (hi, bytes) ];
              List.length !slots - 1
        in
        let slot = place 0 !slots in
        Hashtbl.replace slot_of t.Tensor.buf.Ir.Var.id slot
      end)
    ranges;
  { slot_of; slot_bytes = Array.of_list (List.map snd !slots) }

(** Peak intermediate-activation bytes without reuse (every tensor gets its
    own buffer). *)
let naive_bytes (g : t) ~lenv =
  List.fold_left
    (fun acc t -> if is_external g t then acc else acc + (4 * Tensor.size_elems t ~lenv))
    0 g.tensors

(** Intermediate-activation bytes under the plan. *)
let planned_bytes (p : plan) = Array.fold_left ( + ) 0 p.slot_bytes

(** Execute the graph with the plan's buffer sharing: tensors in the same
    slot alias one buffer.  External tensors keep their own buffers (from
    [bindings]). *)
let execute (g : t) (p : plan) ~(lenv : Lenfun.env)
    ~(bindings : (Tensor.t * Runtime.Buffer.t) list) : Runtime.Interp.env * Prelude.built =
  let slot_bufs = Array.map (fun bytes -> Runtime.Buffer.float_buf ((bytes + 3) / 4)) p.slot_bytes in
  let all_bindings =
    bindings
    @ List.filter_map
        (fun (t : Tensor.t) ->
          match Hashtbl.find_opt p.slot_of t.Tensor.buf.Ir.Var.id with
          | Some slot -> Some (t, slot_bufs.(slot))
          | None -> None)
        g.tensors
  in
  Exec.run ~lenv ~bindings:all_bindings (List.map (fun n -> n.kernel) g.nodes)
