(** Extent specifications for loops and tensor dimensions (CoRa §3–4):
    constant ([Fixed]) or variable ([Ragged]) — the size of a vdim slice /
    bound of a vloop as a length function of one outer dimension's index.
    As in the paper's prototype (§6), a vdim depends on at most one outer
    dimension. *)

type t =
  | Fixed of int
  | Ragged of { dep : Dim.t; fn : Lenfun.t }

val fixed : int -> t
val ragged : dep:Dim.t -> fn:Lenfun.t -> t
val is_ragged : t -> bool

(** The dimension this extent depends on, if any. *)
val dependence : t -> Dim.t option

(** Numeric value given the dependee's index. *)
val eval : t -> lenv:Lenfun.env -> dep_value:int -> int

(** [pad_to n m] rounds [n] up to a multiple of [m] ([m <= 1] is identity). *)
val pad_to : int -> int -> int

val pp : Format.formatter -> t -> unit
