(** Bounds inference utilities for fused vloops (§B.3, Fig. 16):
    translating iteration-variable ranges between the fused variable [f]
    and the original pair [(o, i)], over the runtime tables the prelude
    builds. *)

type maps = {
  oif : int -> int -> int;
  fo : int -> int;
  fi : int -> int;
  slice : int -> int;
}

(** Build the maps from a prefix-sum offsets array ([M+1] entries). *)
val of_offsets : int array -> maps

type range = { lo : int; hi : int }  (** inclusive *)

(** Rule 1: [(o, i)] ranges → fused range. *)
val fused_of_pair : maps -> o:range -> i:range -> range

(** Rule 2: fused range → outer range. *)
val outer_of_fused : maps -> f:range -> range

(** Rules 3–4: fused range → inner range (whole slice when spanning rows). *)
val inner_of_fused : maps -> f:range -> o:int -> range

(** Check the §B.2 axioms for every valid index. *)
val axioms_hold : maps -> rows:int -> bool
