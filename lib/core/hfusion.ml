(** Horizontal fusion validation (§4.1, Fig. 5 step 3; §C).

    HFusion executes several operators concurrently as one kernel (one GPU
    grid).  That is only legal when the fused kernels are independent: no
    kernel may read or write another's output (concurrent blocks have no
    ordering), and — as the paper notes for reduction splits (§7.1
    footnote) — kernels accumulating into the same buffer would need
    atomics, which the prototype does not support.  [validate] checks
    these conditions so callers cannot silently build racy launches. *)

exception Illegal of string

let illegal fmt = Fmt.kstr (fun s -> raise (Illegal s)) fmt

(* buffers a kernel reads (loads) and writes (stores) *)
let reads_writes (k : Lower.kernel) =
  let reads = ref Ir.Var.Set.empty and writes = ref Ir.Var.Set.empty in
  let scan_expr () e =
    Ir.Expr.fold
      (fun () -> function
        | Ir.Expr.Load { buf; _ } -> reads := Ir.Var.Set.add buf !reads
        | _ -> ())
      () e
  in
  let rec go (s : Ir.Stmt.t) =
    match s with
    | Store { buf; index; value } ->
        writes := Ir.Var.Set.add buf !writes;
        scan_expr () index;
        scan_expr () value
    | Reduce_store { buf; index; value; _ } ->
        writes := Ir.Var.Set.add buf !writes;
        reads := Ir.Var.Set.add buf !reads;
        scan_expr () index;
        scan_expr () value
    | For { min; extent; body; _ } ->
        scan_expr () min;
        scan_expr () extent;
        go body
    | Let_stmt (_, e, body) ->
        scan_expr () e;
        go body
    | If (c, a, b) ->
        scan_expr () c;
        go a;
        Option.iter go b
    | Seq l -> List.iter go l
    | Alloc { buf; body; _ } ->
        go body;
        (* kernel-local scratch is private *)
        reads := Ir.Var.Set.remove buf !reads;
        writes := Ir.Var.Set.remove buf !writes
    | Eval e -> scan_expr () e
    | Nop -> ()
  in
  go k.Lower.body;
  (!reads, !writes)

(** [validate kernels] — raise {!Illegal} if horizontally fusing these
    kernels could race.

    Writes to a common buffer are allowed only when every writing kernel
    targets the same output tensor through {e disjoint index ranges} — the
    tiles/tail pieces of operation splitting.  We approximate "disjoint" by
    requiring the kernels to be the distinct range-mode pieces of one
    operator (same output tensor, same name prefix), which is how
    {!Lower.lower} produces them. *)
let validate (kernels : Lower.kernel list) =
  (* does the kernel initialise its own output (a plain Store to it)?  The
     tail piece of a reduction-loop split does not — it accumulates into
     the main piece's partial sums and therefore may NOT be h-fused with it
     (the paper's §7.1 footnote: that would need atomics). *)
  let initialises (k : Lower.kernel) =
    let rec go (s : Ir.Stmt.t) =
      match s with
      | Store { buf; _ } -> Ir.Var.equal buf k.Lower.out.Tensor.buf
      | Reduce_store _ | Eval _ | Nop -> false
      | For { body; _ } | Let_stmt (_, _, body) | Alloc { body; _ } -> go body
      | If (_, a, b) -> go a || (match b with Some b -> go b | None -> false)
      | Seq l -> List.exists go l
    in
    go k.Lower.body
  in
  let rws = List.map (fun k -> (k, reads_writes k)) kernels in
  List.iteri
    (fun i (ka, (ra, wa)) ->
      List.iteri
        (fun j (kb, (rb, wb)) ->
          if i < j then begin
            let piece_pair =
              (* tiles/tail pieces of one NON-REDUCTION split write disjoint
                 ranges of the same tensor: both initialise their rows *)
              ka.Lower.out == kb.Lower.out && initialises ka && initialises kb
            in
            (* read-after-write or write-after-read across kernels *)
            let raw = Ir.Var.Set.inter wa rb and war = Ir.Var.Set.inter ra wb in
            let waw = Ir.Var.Set.inter wa wb in
            let conflict s =
              if piece_pair then
                (* only the shared output is exempt *)
                not (Ir.Var.Set.is_empty (Ir.Var.Set.remove ka.Lower.out.Tensor.buf s))
              else not (Ir.Var.Set.is_empty s)
            in
            if conflict waw then
              illegal "hfusion of %s and %s: write-write conflict" ka.Lower.kname kb.Lower.kname;
            if conflict raw || conflict war then
              illegal "hfusion of %s and %s: one kernel reads the other's output"
                ka.Lower.kname kb.Lower.kname
          end)
        rws)
    rws;
  kernels
