(** Bounds inference utilities for fused vloops (§B.3, Fig. 16).

    When a vloop nest is fused, bounds inference must translate iteration-
    variable ranges between the fused variable [f] and the original pair
    [(o, i)].  The paper gives four translation rules in terms of the
    mapping functions [f_oif], [f_fo] and [f_fi]; this module implements
    them over the runtime tables the prelude builds, and is used by the
    test suite to validate the §B.2 identities end-to-end. *)

type maps = {
  oif : int -> int -> int;  (** (o, i) -> f *)
  fo : int -> int;  (** f -> o *)
  fi : int -> int;  (** f -> i *)
  slice : int -> int;  (** s(o): padded slice size of row o *)
}

(** Build the maps from a prefix-sum offsets array ([psum], length M+1). *)
let of_offsets (psum : int array) : maps =
  let m = Array.length psum - 1 in
  let fo f =
    (* largest o with psum.(o) <= f *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if psum.(mid) <= f then go mid hi else go lo (mid - 1)
    in
    go 0 (m - 1)
  in
  {
    oif = (fun o i -> psum.(o) + i);
    fo;
    fi = (fun f -> f - psum.(fo f));
    slice = (fun o -> psum.(o + 1) - psum.(o));
  }

type range = { lo : int; hi : int }  (** inclusive *)

(** Rule 1: [o ∈ [ol, ou] ∧ i ∈ [il, iu] → f ∈ [oif ol il, oif ou iu]]. *)
let fused_of_pair (m : maps) ~(o : range) ~(i : range) : range =
  { lo = m.oif o.lo i.lo; hi = m.oif o.hi i.hi }

(** Rule 2: [f ∈ [fl, fu] → o ∈ [fo fl, fo fu]]. *)
let outer_of_fused (m : maps) ~(f : range) : range = { lo = m.fo f.lo; hi = m.fo f.hi }

(** Rules 3–4: the inner range is the full slice when the fused range spans
    several rows, and the exact sub-range when it stays within one. *)
let inner_of_fused (m : maps) ~(f : range) ~(o : int) : range =
  if m.fo f.lo <> m.fo f.hi then { lo = 0; hi = m.slice o - 1 }
  else { lo = m.fi f.lo; hi = m.fi f.hi }

(** Check the §B.2 axioms hold for every valid index (used by tests). *)
let axioms_hold (m : maps) ~(rows : int) : bool =
  let ok = ref true in
  for o = 0 to rows - 1 do
    for i = 0 to m.slice o - 1 do
      let f = m.oif o i in
      if m.fo f <> o || m.fi f <> i then ok := false
    done
  done;
  !ok
