(** Storage access lowering (CoRa §5.2, §B.1, Algorithm 1): rewrite a
    multi-dimensional tensor access into a flat buffer offset computable in
    O(1) operations, using only small prefix-sum auxiliary arrays for the
    dimensions the dimension graph says need one.

    Specialisations: dimensions with no dependents contribute
    [idx * stride] (symbolic stride); a dimension whose single ragged
    dependent is adjacent with constant inner dims contributes the
    {e factored} form [(psum[idx] + idx_inner) * C] whose array is shared
    by name with vloop fusion (enabling the fused-access collapse); several
    ragged dependents or nested raggedness fall back to a full
    slice-volume prefix sum. *)

exception Unsupported of string

(** Shared prefix-sum array name for a (length function, padding) pair. *)
val psum_name : fn_name:string -> pad:int -> string

(** Symbolic padded size of dimension [pos] under the given index
    expressions. *)
val size_expr : Tensor.t -> Ir.Expr.t array -> int -> Ir.Expr.t

(** [lower t indices] — flat offset expression plus the prelude definitions
    of the auxiliary arrays it references. *)
val lower : Tensor.t -> Ir.Expr.t list -> Ir.Expr.t * Prelude.def list

(** Convenience: a [Load] from the tensor's buffer at the lowered offset. *)
val load : Tensor.t -> Ir.Expr.t list -> Ir.Expr.t * Prelude.def list
