(** Length functions.

    A length function is the uninterpreted function [s(·)] that gives the
    slice size of a variable dimension (vdim) or the bound of a variable
    loop (vloop) as a function of an outer index.  At compile time only its
    name is known; at launch time the runtime binds it to concrete data —
    typically the sequence-length array of the mini-batch, or a closed form
    like [fun r -> r + 1] for triangular matrices. *)

type t = { name : string }

let make name = { name }
let name t = t.name

(** Runtime environment binding length-function names to integer functions. *)
type env = (string * (int -> int)) list

let lookup (env : env) name : int -> int =
  match List.assoc_opt name env with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Lenfun.lookup: unbound length function %s" name)

(** [of_array name a] — an environment entry backed by an array.

    The one-past-the-end index is defined as 0: bulk padding appends a
    {e virtual padding sequence} to the batch (§7.2), and the fused-loop
    maps send bulk iterations to that row — giving it length 0 makes every
    guard and ragged extent evaluated there collapse to nothing, which is
    exactly the padding semantics.  Indices beyond that report a clear
    error. *)
let of_array name (a : int array) : string * (int -> int) =
  ( name,
    fun i ->
      if i = Array.length a then 0
      else if i < 0 || i > Array.length a then
        invalid_arg
          (Printf.sprintf "length function %s: index %d out of range [0,%d]" name i
             (Array.length a))
      else a.(i) )

(** [of_fun name f] — an environment entry backed by a closed form. *)
let of_fun name f : string * (int -> int) = (name, f)
