(** Bounded, domain-safe memo tables.

    The serving layer keeps three process-wide memo tables (the lowering
    memo, the prelude cache and the compiled-kernel memo).  Under a
    concurrent front-end they are touched from several worker domains at
    once, and under a long-lived request stream an unbounded table is a
    memory leak — a steady drip of never-repeating batch shapes grows it
    forever.  This module is the shared answer: a mutex-protected table
    with a configurable entry cap and least-recently-used eviction.

    Lookups refresh recency; inserting into a full table evicts the
    least-recently-used entry and bumps the [<name>.evicted] counter in
    the {!Obs.Metrics} registry.  The value builder is {e never} run under
    the lock (callers compute outside and {!add} the result), so a slow
    build — lowering a large schedule, say — cannot serialise unrelated
    requests; the cost is that two domains racing on the same cold key may
    both build it, which costs a duplicate computation but never a wrong
    result (last insert wins, both values are structurally identical by
    construction of the key). *)

type ('k, 'v) t

(** Point-in-time accounting of one cache: lookups that hit / missed
    since creation, entries evicted, and the current entry count. *)
type stats = { hits : int; misses : int; evictions : int; entries : int }

(** [create ~name ~capacity ()] — an empty cache holding at most
    [capacity] entries (clamped to >= 1).  [name] prefixes the eviction
    counter ([<name>.evicted]) and keys the {!registered_stats} registry
    (latest creation under a name wins). *)
val create : name:string -> capacity:int -> unit -> ('k, 'v) t

(** Lookup; a hit refreshes the entry's recency. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Insert (a no-op if [k] is already present), evicting
    least-recently-used entries while the table is at capacity. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Change the entry cap (clamped to >= 1), evicting immediately if the
    table is over the new cap. *)
val set_capacity : ('k, 'v) t -> int -> unit

val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

(** Evictions performed since creation (same count the
    [<name>.evicted] metric reports, read without the registry). *)
val evictions : ('k, 'v) t -> int

(** Hit/miss/eviction/entry accounting without scraping the metrics
    registry — what {!Obs.Exposition} cache gauges are sampled from. *)
val stats : ('k, 'v) t -> stats

(** Stats of every live cache, one entry per cache name, sorted by name
    (a name created twice reports the most recent instance). *)
val registered_stats : unit -> (string * stats) list
