open Ir

(** Storage access lowering (CoRa §5.2, §B.1, Algorithm 1).

    Rewrites a multi-dimensional tensor access into a flat buffer offset in
    O(1) operations.  Because data within a vdim slice is densely packed
    (insight I2), no per-element indices are stored: the only auxiliary data
    are prefix-sum offset arrays ([A_d]) for dimensions that other
    dimensions depend on, computed by the prelude.  The dimension graph
    tells us exactly which dimensions need one — this is what makes CoRa's
    aux data so much smaller than the CSF scheme's (§7.4).

    Specializations implemented here:
    - a dimension with no dependents contributes [idx * stride] with a
      symbolic stride (which may itself contain length functions of outer
      indices);
    - a dimension whose single ragged dependent is adjacent and whose other
      inner dimensions are constant contributes the {e factored} form
      [(psum\[idx\] + idx_inner) * C]; the prefix-sum array [psum] is shared
      by name with vloop fusion, which enables the fused-access
      simplification [psum\[f_fo f\] + f_fi f = f];
    - a dimension with several ragged dependents (e.g. the attention tensor
      [X\[B\]\[s(b)\]\[H\]\[s(b)\]]) contributes [A\[idx\]] where [A] prefix-sums
      the full slice volume. *)

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(** Name of the shared prefix-sum aux array for a (lenfun, pad) pair. *)
let psum_name ~fn_name ~pad = Printf.sprintf "psum_%s_p%d" fn_name pad

(** Symbolic padded size of dimension [pos] of [t], where [idx] gives the
    access index expressions. *)
let size_expr (t : Tensor.t) (idx : Expr.t array) pos =
  let ext = List.nth t.Tensor.extents pos in
  let pad = t.Tensor.pads.(pos) in
  match ext with
  | Shape.Fixed c -> Expr.int (Shape.pad_to c pad)
  | Shape.Ragged { dep; fn } ->
      let dpos = Tensor.dim_pos t dep in
      Expr.pad_up (Expr.ufun (Lenfun.name fn) [ idx.(dpos) ]) pad

(** [lower t indices] — flat offset expression plus the prelude definitions
    for any auxiliary arrays it references. *)
let lower (t : Tensor.t) (indices : Expr.t list) : Expr.t * Prelude.def list =
  let n = Tensor.rank t in
  if List.length indices <> n then
    unsupported "access to %s: expected %d indices, got %d" t.Tensor.name n
      (List.length indices);
  let idx = Array.of_list indices in
  let exts = Array.of_list t.Tensor.extents in
  let dims = Array.of_list t.Tensor.dims in
  let aux = ref [] in
  let add_aux d = if not (List.exists (fun x -> x.Prelude.name = d.Prelude.name) !aux) then aux := d :: !aux in
  (* dependents.(i) = positions of inner dims whose size depends on dim i *)
  let dependents i =
    let di = dims.(i) in
    let deps = ref [] in
    for j = n - 1 downto 0 do
      (match Shape.dependence exts.(j) with
      | Some d when Dim.equal d di ->
          if j <= i then
            unsupported "tensor %s: dim %d depends on non-outer dim %d" t.Tensor.name j i;
          deps := j :: !deps
      | _ -> ())
    done;
    !deps
  in
  (* are all dims > i constant except (possibly) dim j? *)
  let all_inner_fixed_except i j =
    let ok = ref true in
    for k = i + 1 to n - 1 do
      if k <> j then match exts.(k) with Shape.Fixed _ -> () | Shape.Ragged _ -> ok := false
    done;
    !ok
  in
  (* stride of dim j = product of padded sizes of dims > j, symbolic *)
  let stride j =
    let s = ref Expr.one in
    for k = n - 1 downto j + 1 do
      s := Expr.mul (size_expr t idx k) !s
    done;
    !s
  in
  (* Number of aux-table entries for the prefix sum of dim i.  For a
     constant dimension this is its extent; for a ragged dimension with
     dependents (nested raggedness — triangular attention rows) the table is
     indexed by the dimension's index value, whose range is the maximum
     slice size, computed at prelude-build time. *)
  let aux_count_of i : Lenfun.env -> int =
    match exts.(i) with
    | Shape.Fixed c ->
        let n = Shape.pad_to c t.Tensor.pads.(i) in
        fun _ -> n
    | Shape.Ragged { dep; fn } -> (
        let dpos = Tensor.dim_pos t dep in
        match exts.(dpos) with
        | Shape.Fixed dc ->
            fun lenv ->
              let f = Lenfun.lookup lenv (Lenfun.name fn) in
              let m = ref 0 in
              for v = 0 to dc - 1 do
                m := max !m (Shape.pad_to (f v) t.Tensor.pads.(i))
              done;
              !m
        | Shape.Ragged _ ->
            unsupported "tensor %s: more than two levels of nested raggedness" t.Tensor.name)
  in
  let fixed_extent_of i =
    match exts.(i) with
    | Shape.Fixed c -> Shape.pad_to c t.Tensor.pads.(i)
    | Shape.Ragged _ ->
        unsupported "tensor %s: dim %d with dependents must have a constant extent"
          t.Tensor.name i
  in
  (* Stride of dim i when its subtree contains an {e internal} ragged pair
     (some dim j > i depends on a dim p with i < p < j): the plain product
     of sizes is wrong — the true stride is the subtree volume, constant in
     idx_i, computed by the prelude.  It may reference at most one outer
     dimension (through inner sizes depending on dims <= i). *)
  let subtree_has_internal_pair i =
    let found = ref false in
    for j = i + 1 to n - 1 do
      match Shape.dependence exts.(j) with
      | Some d ->
          let p = Tensor.dim_pos t d in
          if p > i then found := true
      | None -> ()
    done;
    !found
  in
  let subtree_outer_refs i =
    let refs = ref [] in
    for j = i + 1 to n - 1 do
      match Shape.dependence exts.(j) with
      | Some d ->
          let p = Tensor.dim_pos t d in
          if p <= i && not (List.mem p !refs) then refs := p :: !refs
      | None -> ()
    done;
    !refs
  in
  let aux = aux and add_aux = add_aux in
  let subtree_stride i : Expr.t =
    (* volume of dims > i; valid because it does not depend on idx_i *)
    match subtree_outer_refs i with
    | [] ->
        let name = Printf.sprintf "stride_%s_d%d" t.Tensor.name i in
        add_aux
          (Prelude.scalar_def ~name ~value:(fun lenv ->
               Tensor.slice_volume t ~lenv ~level:(i + 1) ~env:[]));
        Expr.ufun name []
    | [ d ] ->
        let name = Printf.sprintf "stride_%s_d%d" t.Tensor.name i in
        let dd_id = (dims.(d)).Dim.id in
        add_aux
          (Prelude.pointwise_def ~name ~count:(aux_count_of d) ~value:(fun lenv x ->
               Tensor.slice_volume t ~lenv ~level:(i + 1) ~env:[ (dd_id, x) ]));
        Expr.ufun name [ idx.(d) ]
    | _ ->
        unsupported
          "tensor %s: dim %d's subtree volume depends on several outer dimensions"
          t.Tensor.name i
  in
  (* Walk dims outermost-first, accumulating contributions; [skip] marks a
     dim already folded into the factored form of its dependee. *)
  let offset = ref Expr.zero in
  let skip = Array.make n false in
  for i = 0 to n - 1 do
    if not skip.(i) then begin
      let deps = dependents i in
      if deps = [] then begin
        let w = if subtree_has_internal_pair i then subtree_stride i else stride i in
        offset := Expr.add !offset (Expr.mul idx.(i) w)
      end
      else begin
        (* Validate: every dim strictly inside dim i's ragged region depends
           on dim i or on a dim at/inside i (nested raggedness); outer deps
           would make the slice volume multi-indexed, which the prototype
           (like the paper's) does not support. *)
        for j = i + 1 to n - 1 do
          match Shape.dependence exts.(j) with
          | None -> ()
          | Some d ->
              if Tensor.dim_pos t d < i then
                unsupported
                  "tensor %s: dim %d depends on a dim outside its ragged region (dim < %d)"
                  t.Tensor.name j i
        done;
        match deps with
        | [ j ]
          when j = i + 1
               && (not (Tensor.has_dependents t j))
               && all_inner_fixed_except i j
               && (match exts.(i) with Shape.Fixed _ -> true | Shape.Ragged _ -> false) ->
            (* Factored adjacent form: (psum[idx_i] + idx_j) * stride_j. *)
            let count = fixed_extent_of i in
            let fn_name =
              match exts.(j) with
              | Shape.Ragged { fn; _ } -> Lenfun.name fn
              | Shape.Fixed _ -> assert false
            in
            let pad = t.Tensor.pads.(j) in
            let name = psum_name ~fn_name ~pad in
            add_aux (Prelude.psum_def ~name ~fn_name ~count ~pad);
            offset :=
              Expr.add !offset
                (Expr.mul (Expr.add (Expr.ufun name [ idx.(i) ]) idx.(j)) (stride j));
            skip.(j) <- true
        | _ ->
            (* General volume prefix sum over slices of dim i.  The volume is
               computed recursively, so nested raggedness (triangular
               attention) is handled. *)
            let name = Printf.sprintf "vol_%s_d%d" t.Tensor.name i in
            let di_id = (dims.(i)).Dim.id in
            let volume lenv v =
              Tensor.slice_volume t ~lenv ~level:(i + 1) ~env:[ (di_id, v) ]
            in
            add_aux (Prelude.volume_psum_def ~name ~count:(aux_count_of i) ~volume);
            offset := Expr.add !offset (Expr.ufun name [ idx.(i) ])
      end
    end
  done;
  (!offset, List.rev !aux)

(** Convenience: lower to a [Load] from the tensor's buffer. *)
let load t indices =
  let off, aux = lower t indices in
  (Expr.load t.Tensor.buf off, aux)
