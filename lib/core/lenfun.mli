(** Length functions: the uninterpreted [s(·)] giving a vdim's slice size /
    a vloop's bound as a function of one outer index.  Known by name at
    compile time; bound to data (a sequence-length array, or a closed form
    like [fun r -> r + 1]) at launch time. *)

type t = { name : string }

val make : string -> t
val name : t -> string

(** Runtime environment binding length-function names to functions. *)
type env = (string * (int -> int)) list

(** Raises [Invalid_argument] for unbound names. *)
val lookup : env -> string -> int -> int

(** Environment entry backed by an array (bounds-checked).  The
    one-past-the-end index is defined as 0 — the virtual zero-length
    padding sequence bulk padding appends to the batch (§7.2). *)
val of_array : string -> int array -> string * (int -> int)

(** Environment entry backed by a closed form. *)
val of_fun : string -> (int -> int) -> string * (int -> int)
