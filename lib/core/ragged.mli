(** Runtime ragged-tensor values: a flat float buffer laid out per the
    {!Tensor.t} declaration (densely packed vdim slices with the declared
    padding), numeric offsets mirroring {!Storage.lower}, and conversions
    to/from fully padded dense layouts (the AddPad/RemovePad operators). *)

type t = {
  tensor : Tensor.t;
  buf : Runtime.Buffer.t;
  lenv : Lenfun.env;
  prefix_cache : int array option Atomic.t array;
      (** memoized prefix sums of per-value slice volumes for dims with
          ragged dependents — keeps per-element offsets O(rank) instead
          of O(batch), which is what makes filling and unpacking a
          B-row mega-batch linear rather than quadratic in B.  Both
          inputs (tensor, lenv) are immutable per value, so entries
          never invalidate.  One slot per dim, published as an immutable
          array through an [Atomic] so parallel mega-batch fill/scatter
          can share the value across domains: a race at worst recomputes
          the identical array.  Managed by {!offset}; construct values
          through {!alloc} or size it with {!fresh_prefix_cache}. *)
}

(** One empty per-dim slot array, sized for the tensor's rank (for callers
    constructing {!t} records directly). *)
val fresh_prefix_cache : Tensor.t -> int array option Atomic.t array

(** Zero-filled buffer sized for the tensor (zero padding keeps padded
    reductions exact). *)
val alloc : Tensor.t -> Lenfun.env -> t

(** Numeric flat offset of a multi-index — the runtime mirror of the
    symbolic lowering (checked equal by the test suite). *)
val offset : t -> int list -> int

val get : t -> int list -> float
val set : t -> int list -> float -> unit

(** Iterate over every valid (unpadded) multi-index. *)
val iter_indices : t -> (int list -> unit) -> unit

(** Fill the valid region with a function of the multi-index. *)
val fill : t -> (int list -> float) -> unit

(** Fully padded shape (ragged extents replaced by their maxima). *)
val dense_shape : t -> int list

(** Pack a dense row-major array into ragged storage (RemovePad). *)
val pack : t -> float array -> unit

(** Unpack into a dense row-major array, zero elsewhere (AddPad). *)
val unpack : t -> float array
