open Cora

(** Kernel launch timing.

    Glues compiler output to the machine model: builds the launch-time
    environment (length functions + prelude tables), enumerates the grid of
    thread blocks, costs each block with the memoised cost model, and runs
    the block scheduler.  A launch of several kernels is a {e horizontal
    fusion} (§4.1): their blocks share one grid and one launch overhead. *)

type t = {
  kernels : Lower.kernel list;  (** singleton, or several when h-fused *)
  label : string;
}

let single (k : Lower.kernel) = { kernels = [ k ]; label = k.Lower.kname }

(** Horizontally fuse several kernels into one launch (Fig. 5, step 3).
    Validates independence: raises {!Cora.Hfusion.Illegal} on racy fusions
    (e.g. the pieces of a reduction-loop split, §7.1 footnote). *)
let hfused ?label (ks : Lower.kernel list) =
  let ks = Hfusion.validate ks in
  {
    kernels = ks;
    label =
      (match label with
      | Some l -> l
      | None -> String.concat "+" (List.map (fun (k : Lower.kernel) -> k.Lower.kname) ks));
  }

(** Launch-time context shared by all kernels of a pipeline. *)
type ctx = {
  device : Device.t;
  lenv : Lenfun.env;
  built : Prelude.built;
}

let make_ctx ?prelude ~device ~lenv (kernels : Lower.kernel list) : ctx =
  match prelude with
  | Some built -> { device; lenv; built }
  | None ->
      let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) kernels in
      { device; lenv; built = Prelude.build ~dedup_defs:true defs lenv }

let cost_env (ctx : ctx) : Runtime.Cost_model.env =
  let env = Runtime.Cost_model.env_create () in
  List.iter
    (fun (name, f) ->
      Runtime.Cost_model.bind_ufun env name (function
        | [ i ] -> f i
        | _ -> invalid_arg ("lenfun " ^ name ^ " arity")))
    ctx.lenv;
  List.iter
    (fun (name, v) ->
      match v with
      | Prelude.Scalar n -> Runtime.Cost_model.bind_ufun env name (fun _ -> n)
      | Prelude.Table a ->
          Runtime.Cost_model.bind_ufun env name (function
            | [ i ] when i >= 0 && i < Array.length a -> a.(i)
            | [ i ] -> invalid_arg (Printf.sprintf "aux %s: index %d out of range" name i)
            | _ -> invalid_arg ("aux " ^ name ^ " arity")))
    ctx.built.Prelude.tables;
  env

(** Per-block (cost_ns, bytes) of one kernel under the context. *)
let block_costs_bytes (ctx : ctx) (k : Lower.kernel) : (float * float) array =
  let device = ctx.device in
  let env = cost_env ctx in
  let blocks =
    Runtime.Cost_model.enumerate_blocks ~grid_kind:device.Device.grid_kind env k.Lower.body
  in
  (* Compute-bound kernels are priced by lane-normalised operation counts
     through the block scheduler; memory-bound kernels (softmax, layernorm,
     layout changes) by raw traffic against the per-processor share of the
     device bandwidth. *)
  let params =
    match k.Lower.bound with
    | Schedule.Compute_bound -> Device.cost_params device
    | Schedule.Memory_bound -> { Runtime.Cost_model.lanes = 1; vec_width = 1 }
  in
  (* Blocks of the same kernel share (physically) the same body subtree:
     compile it once so the cost model's memo tables are shared across all
     blocks. *)
  let compiled : (Ir.Stmt.t * Runtime.Cost_model.node) list ref = ref [] in
  let node_for body =
    match List.find_opt (fun (b, _) -> b == body) !compiled with
    | Some (_, n) -> n
    | None ->
        let n = Runtime.Cost_model.compile params body in
        compiled := (body, n) :: !compiled;
        n
  in
  let bw_per_proc = device.Device.mem_bw_bytes_per_ns /. float_of_int device.Device.n_proc in
  let cost_h = Obs.Metrics.histogram ("launch.block_cost_ns." ^ k.Lower.kname) in
  let costs =
    List.map
      (fun (vars, body) ->
        let benv = { env with Runtime.Cost_model.vars } in
        let c = node_for body benv in
        let bytes = Device.block_bytes c in
        let ns =
          match k.Lower.bound with
          | Schedule.Compute_bound -> Device.block_ns device ~eff:k.Lower.eff c
          | Schedule.Memory_bound -> bytes /. bw_per_proc /. k.Lower.eff
        in
        Obs.Metrics.observe cost_h ns;
        (ns, bytes))
      blocks
  in
  Array.of_list costs

let block_costs ctx k = Array.map fst (block_costs_bytes ctx k)

(** Wall time of one launch: makespan of all its blocks plus the launch
    overhead.  Blocks of h-fused kernels are interleaved in issue order so
    they genuinely execute concurrently. *)
let time (ctx : ctx) (l : t) : float =
  let device = ctx.device in
  let all = List.map (fun k -> (block_costs_bytes ctx k, (k : Lower.kernel).remap)) l.kernels in
  let policy =
    if List.exists (fun (_, r) -> r = Schedule.Descending_work) all then Gpusim.Descending_work
    else Gpusim.Issue_order
  in
  (* Block counts are lane-normalised by the cost model, so the per-kernel
     efficiency factor (not a raw-bytes floor) carries the memory-bound
     behaviour of compiled kernels; the analytic baselines, whose counts are
     raw totals, apply the bandwidth floor in {!Baselines.Analytic}. *)
  let costs = Array.map fst (Array.concat (List.map fst all)) in
  let compute_ns = Gpusim.makespan ~n_proc:device.Device.n_proc ~policy costs in
  compute_ns +. device.Device.launch_ns

(** Timing summary of a full pipeline (Fig. 4's runtime half):
    prelude build on the host, host→device copy of the aux structures, then
    the sequence of launches. *)
type pipeline_time = {
  kernels_ns : float;
  per_launch : (string * float) list;
  prelude_host_ns : float;
  prelude_copy_ns : float;
}

let total_ns p = p.kernels_ns +. p.prelude_host_ns +. p.prelude_copy_ns

(** Host-build time and host→device copy time of built aux structures —
    the prelude's contribution to one pipeline's makespan. *)
let prelude_cost ~(device : Device.t) (built : Prelude.built) : float * float =
  let work = built.Prelude.storage_work + built.Prelude.fusion_work in
  let host = float_of_int work *. device.Device.aux_entry_ns in
  let bytes = float_of_int (Prelude.bytes built) in
  let copy =
    if device.Device.h2d_bytes_per_ns = infinity then 0.0
    else bytes /. device.Device.h2d_bytes_per_ns
  in
  (host, copy)

let pipeline ?engine ?opt ?prelude ~device ~lenv (launches : t list) : pipeline_time =
  Obs.Span.with_span
    ~attrs:
      ([
         ("device", Obs.Trace_sink.Str device.Device.name);
         ("launches", Obs.Trace_sink.Int (List.length launches));
       ]
      @ (* which execution engine (and optimization level) serves the
           request this model run prices — lets a trace correlate modelled
           and measured times per configuration *)
      (match engine with
      | Some e ->
          [ ("engine", Obs.Trace_sink.Str (match e with `Interp -> "interp" | `Compiled -> "compiled")) ]
      | None -> [])
      @
      match opt with
      | Some o -> [ ("opt", Obs.Trace_sink.Str (Ir.Optimize.level_name o)) ]
      | None -> [])
    "launch.pipeline"
  @@ fun () ->
  let kernels = List.concat_map (fun l -> l.kernels) launches in
  let ctx = make_ctx ?prelude ~device ~lenv kernels in
  let per_launch =
    List.map
      (fun l ->
        Obs.Span.with_span
          ~attrs:[ ("launch", Obs.Trace_sink.Str l.label) ]
          "launch"
          (fun () ->
            let t = time ctx l in
            Obs.Span.add_attr "blocks"
              (Obs.Trace_sink.Int
                 (List.fold_left
                    (fun acc (k : Cora.Lower.kernel) ->
                      acc
                      + Obs.Metrics.count
                          (Obs.Metrics.histogram ("launch.block_cost_ns." ^ k.Lower.kname)))
                    0 l.kernels));
            Obs.Span.add_attr "model_ns" (Obs.Trace_sink.Float t);
            (l.label, t)))
      launches
  in
  let kernels_ns = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 per_launch in
  (* A caller-supplied prelude was built (and copied) by an earlier request
     with the same raggedness signature: this pipeline does zero host work
     and moves zero aux bytes — the serving cache's whole point (§7.4). *)
  let prelude_host_ns, prelude_copy_ns =
    match prelude with Some _ -> (0.0, 0.0) | None -> prelude_cost ~device ctx.built
  in
  (* makespan breakdown of the modelled pipeline, attached as attributes
     of the pipeline span *)
  Obs.Span.add_attr "kernels_ns" (Obs.Trace_sink.Float kernels_ns);
  Obs.Span.add_attr "prelude_host_ns" (Obs.Trace_sink.Float prelude_host_ns);
  Obs.Span.add_attr "prelude_copy_ns" (Obs.Trace_sink.Float prelude_copy_ns);
  Obs.Span.add_attr "total_ns"
    (Obs.Trace_sink.Float (kernels_ns +. prelude_host_ns +. prelude_copy_ns));
  { kernels_ns; per_launch; prelude_host_ns; prelude_copy_ns }
