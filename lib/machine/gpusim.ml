(** Thread-block scheduling simulator.

    Models the hardware scheduler that assigns thread blocks to processors
    (GPU SMs / CPU cores): greedy list scheduling — each block, in issue
    order, goes to the processor that frees up first.  The kernel's latency
    is the makespan.  Thread remapping (§4.1, Fig. 14) changes the issue
    order; with variable-size blocks (vloop nests!) issuing the heavy
    blocks first yields visibly better makespans, which is exactly the
    trmm experiment of Fig. 9. *)

type policy = Issue_order | Descending_work

(* A tiny binary min-heap over floats, for processor free times. *)
module Heap = struct
  type t = { mutable a : float array; mutable n : int }

  let create n_proc = { a = Array.make (max n_proc 1) 0.0; n = n_proc }

  let pop_min h =
    let best = ref 0 in
    for i = 1 to h.n - 1 do
      if h.a.(i) < h.a.(!best) then best := i
    done;
    !best

  let get h i = h.a.(i)
  let set h i v = h.a.(i) <- v
  let max_time h = Array.fold_left Float.max 0.0 (Array.sub h.a 0 h.n)
end

(** [makespan ~n_proc ~policy costs] — wall time to drain all blocks. *)
let makespan ~n_proc ?(policy = Issue_order) (costs : float array) : float =
  if Array.length costs = 0 then 0.0
  else begin
    let costs =
      match policy with
      | Issue_order -> costs
      | Descending_work ->
          let c = Array.copy costs in
          Array.sort (fun a b -> Float.compare b a) c;
          c
    in
    let h = Heap.create n_proc in
    Array.iter
      (fun c ->
        let p = Heap.pop_min h in
        Heap.set h p (Heap.get h p +. c))
      costs;
    Heap.max_time h
  end

(** Average processor utilisation for a given schedule (diagnostics). *)
let utilisation ~n_proc ?(policy = Issue_order) (costs : float array) : float =
  let span = makespan ~n_proc ~policy costs in
  if span <= 0.0 then 1.0
  else Array.fold_left ( +. ) 0.0 costs /. (span *. float_of_int n_proc)
