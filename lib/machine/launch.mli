(** Kernel launch timing: builds the launch-time environment (length
    functions + prelude tables), enumerates the grid of thread blocks,
    costs each block, and schedules them.  A launch of several kernels is
    a {e horizontal fusion} (§4.1): one grid, one launch overhead. *)

type t = {
  kernels : Cora.Lower.kernel list;
  label : string;
}

val single : Cora.Lower.kernel -> t

(** Horizontally fuse several kernels into one launch (Fig. 5, step 3).
    Raises {!Cora.Hfusion.Illegal} on racy fusions. *)
val hfused : ?label:string -> Cora.Lower.kernel list -> t

(** Launch-time context shared by a pipeline's kernels. *)
type ctx = {
  device : Device.t;
  lenv : Cora.Lenfun.env;
  built : Cora.Prelude.built;
}

(** [?prelude] supplies already-built aux structures (e.g. from
    {!Cora.Prelude_cache}) instead of building them here. *)
val make_ctx :
  ?prelude:Cora.Prelude.built ->
  device:Device.t -> lenv:Cora.Lenfun.env -> Cora.Lower.kernel list -> ctx
val cost_env : ctx -> Runtime.Cost_model.env

(** Per-block (cost_ns, bytes).  Compute-bound kernels are priced by
    lane-normalised operation counts; memory-bound ones by raw traffic
    against the per-processor bandwidth share. *)
val block_costs_bytes : ctx -> Cora.Lower.kernel -> (float * float) array

val block_costs : ctx -> Cora.Lower.kernel -> float array

(** Makespan of the launch's blocks plus the launch overhead; h-fused
    kernels' blocks execute concurrently. *)
val time : ctx -> t -> float

type pipeline_time = {
  kernels_ns : float;
  per_launch : (string * float) list;
  prelude_host_ns : float;
  prelude_copy_ns : float;
}

val total_ns : pipeline_time -> float

(** (host-build ns, host→device copy ns) of built aux structures. *)
val prelude_cost : device:Device.t -> Cora.Prelude.built -> float * float

(** Time a sequence of launches, including prelude build and host→device
    copy of the auxiliary structures (Fig. 4's runtime pipeline).
    With [?prelude] the supplied structures are reused: an earlier request
    with the same raggedness signature already built and copied them, so
    [prelude_host_ns] and [prelude_copy_ns] are both 0.  [?engine] /
    [?opt] tag the [launch.pipeline] span with the execution engine (and
    its optimization level) serving the request being priced. *)
val pipeline :
  ?engine:[ `Interp | `Compiled ] ->
  ?opt:Ir.Optimize.level ->
  ?prelude:Cora.Prelude.built ->
  device:Device.t -> lenv:Cora.Lenfun.env -> t list -> pipeline_time
