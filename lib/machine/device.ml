(** Device models.

    The machine simulator is deliberately first-order: a device is a set of
    processors (GPU SMs or CPU cores), per-scalar-operation nanosecond
    weights (after accounting for within-block thread parallelism and SIMD,
    which the cost model applies), a kernel-launch overhead, and a
    host→device copy bandwidth.  Absolute numbers are calibrated so that the
    simulated V100 lands in the millisecond range the paper reports for the
    transformer encoder; what the benches rely on is the {e relative}
    behaviour — wasted padding computation, load imbalance, launch counts —
    which these mechanisms model directly. *)

type t = {
  name : string;
  n_proc : int;  (** SMs (GPU) or cores (CPU) *)
  lanes : int;  (** within-block thread parallelism the cost model divides by *)
  vec_width : int;
  flop_ns : float;  (** ns per floating-point op (per lane) *)
  iop_ns : float;
  load_ns : float;
  indirect_ns : float;  (** auxiliary-structure (ufun) access *)
  store_ns : float;
  branch_ns : float;
  intrinsic_ns : float;
  launch_ns : float;  (** per-kernel launch overhead *)
  mem_bw_bytes_per_ns : float;
      (** effective (cache-assisted) device memory bandwidth; kernels cannot
          run faster than their load/store traffic allows *)
  h2d_bytes_per_ns : float;  (** host→device copy bandwidth *)
  aux_entry_ns : float;  (** host-side prelude cost per table entry *)
  grid_kind : Ir.Stmt.for_kind;  (** which loop binding forms the grid *)
}

(** V100-flavoured GPU: 80 SMs; effective per-SM throughput after the
    128-lane division of the cost model. *)
let v100 =
  {
    name = "gpu-v100";
    n_proc = 80;
    lanes = 128;
    vec_width = 1;
    (* 80 SMs x 128 lanes / 0.65 ns = 15.75 Tflop/s peak, matching a V100.
       Loads/index arithmetic are weighted lightly (registers and shared
       memory amortise them in real tiled kernels); branches and indirect
       auxiliary accesses carry the costs the paper's ablations measure. *)
    flop_ns = 0.65;
    iop_ns = 0.01;
    load_ns = 0.06;
    indirect_ns = 1.6;
    store_ns = 0.25;
    branch_ns = 1.2;
    intrinsic_ns = 2.6;
    launch_ns = 4_000.0;
    mem_bw_bytes_per_ns = 850.0;
    h2d_bytes_per_ns = 2.6;
    aux_entry_ns = 1.2;
    grid_kind = Ir.Stmt.Gpu_block;
  }

(** 8-core / 16-thread Intel Cascade Lake flavour (AVX-512-ish SIMD). *)
let intel_cpu =
  {
    name = "cpu-intel";
    n_proc = 8;
    lanes = 1;
    vec_width = 16;
    (* 8 cores x 16 fp32 SIMD lanes / 0.16 ns = 800 Gflop/s. *)
    flop_ns = 0.16;
    iop_ns = 0.004;
    load_ns = 0.015;
    indirect_ns = 0.6;
    store_ns = 0.05;
    branch_ns = 0.5;
    intrinsic_ns = 2.0;
    launch_ns = 1_500.0;
    mem_bw_bytes_per_ns = 60.0;
    h2d_bytes_per_ns = infinity;
    aux_entry_ns = 1.0;
    grid_kind = Ir.Stmt.Parallel;
  }

(** 8-core ARM Graviton2 flavour (NEON SIMD, lower clock). *)
let arm_cpu =
  {
    name = "cpu-arm";
    n_proc = 8;
    lanes = 1;
    vec_width = 4;
    (* Graviton2: 8 cores, two 128-bit FMA pipes each — 8 cores x 4 lanes
       / 0.1 ns = 320 Gflop/s fp32 peak.  Loads/index ops are light, as on
       the GPU: tiled code keeps them in registers. *)
    flop_ns = 0.1;
    iop_ns = 0.005;
    load_ns = 0.02;
    indirect_ns = 0.8;
    store_ns = 0.05;
    branch_ns = 0.6;
    intrinsic_ns = 3.0;
    launch_ns = 1_000.0;
    mem_bw_bytes_per_ns = 40.0;
    h2d_bytes_per_ns = infinity;
    aux_entry_ns = 1.5;
    grid_kind = Ir.Stmt.Parallel;
  }

let cost_params (d : t) : Runtime.Cost_model.params =
  { Runtime.Cost_model.lanes = d.lanes; vec_width = d.vec_width }

(** Bytes of main-memory traffic implied by the counts (4-byte elements;
    auxiliary/indirect accesses included). *)
let block_bytes (c : Runtime.Cost_model.counts) : float =
  let open Runtime.Cost_model in
  4.0 *. (c.loads +. c.indirect +. c.stores)

(** Nanoseconds for one block with the given counts at efficiency [eff]. *)
let block_ns (d : t) ~(eff : float) (c : Runtime.Cost_model.counts) : float =
  let open Runtime.Cost_model in
  ((c.flops *. d.flop_ns) +. (c.iops *. d.iop_ns) +. (c.loads *. d.load_ns)
  +. (c.indirect *. d.indirect_ns) +. (c.stores *. d.store_ns)
  +. (c.branches *. d.branch_ns)
  +. (c.intrinsics *. d.intrinsic_ns))
  /. eff
