(** Thread-block scheduling simulator: greedy list scheduling of blocks
    onto processors (GPU SMs / CPU cores) in issue order.  Thread remapping
    (§4.1, Fig. 14) changes the issue order; with variable-size blocks —
    vloop nests — issuing heaviest-first visibly improves the makespan
    (Fig. 9's trmm). *)

type policy = Issue_order | Descending_work

(** Wall time to drain all blocks on [n_proc] processors.  Satisfies the
    Graham bounds [max(max_block, total/n) <= makespan <= total/n +
    max_block] (property-tested). *)
val makespan : n_proc:int -> ?policy:policy -> float array -> float

(** Busy fraction of the processors under the schedule. *)
val utilisation : n_proc:int -> ?policy:policy -> float array -> float
