(** Device models: processors (SMs/cores), per-scalar-operation nanosecond
    weights, launch overhead, bandwidths.  Absolute numbers are calibrated
    so the simulated V100 lands in the millisecond range the paper reports;
    the benches rely on relative behaviour (padding waste, load imbalance,
    launch counts), which the mechanisms model directly. *)

type t = {
  name : string;
  n_proc : int;
  lanes : int;  (** within-block thread parallelism the cost model divides by *)
  vec_width : int;
  flop_ns : float;
  iop_ns : float;
  load_ns : float;
  indirect_ns : float;  (** auxiliary-structure (ufun) access *)
  store_ns : float;
  branch_ns : float;
  intrinsic_ns : float;
  launch_ns : float;
  mem_bw_bytes_per_ns : float;
  h2d_bytes_per_ns : float;
  aux_entry_ns : float;  (** host-side prelude cost per table entry *)
  grid_kind : Ir.Stmt.for_kind;  (** which loop binding forms the grid *)
}

(** V100-flavoured GPU: 80 SMs, 15.75 Tflop/s fp32 peak. *)
val v100 : t

(** 8-core Cascade-Lake-flavoured CPU with 16-wide fp32 SIMD. *)
val intel_cpu : t

(** 8-core Graviton2-flavoured CPU, two 128-bit FMA pipes per core. *)
val arm_cpu : t

val cost_params : t -> Runtime.Cost_model.params

(** Main-memory traffic in bytes implied by the counts. *)
val block_bytes : Runtime.Cost_model.counts -> float

(** Nanoseconds for one block at efficiency [eff]. *)
val block_ns : t -> eff:float -> Runtime.Cost_model.counts -> float
