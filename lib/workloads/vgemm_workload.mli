(** Variable-sized batched gemm workloads (§7.1, Fig. 8): per-instance
    dimensions are uniformly random multiples of 128 in [512, 1408]. *)

type t = {
  batch : int;
  ms : int array;
  ns : int array;
  ks : int array;
}

val dims_choices : int array
val generate : batch:int -> seed:int -> t
val max3 : int array -> int

(** FLOPs of the exact ragged computation / of the fully padded one. *)
val ragged_flops : t -> float

val padded_flops : t -> float
