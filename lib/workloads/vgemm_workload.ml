(** Workload generator for the variable-sized batched gemm experiments
    (§7.1, Fig. 8): per-batch matrix dimensions are uniformly random
    multiples of 128 in [512, 1408], exactly as in the paper. *)

type t = {
  batch : int;
  ms : int array;
  ns : int array;
  ks : int array;
}

let dims_choices = Array.init 8 (fun i -> 512 + (128 * i)) (* 512 .. 1408 *)

let generate ~batch ~seed =
  let rng = Rng.create (seed + (31 * batch)) in
  let pick () = Array.init batch (fun _ -> Rng.choose rng dims_choices) in
  { batch; ms = pick (); ns = pick (); ks = pick () }

let max3 a = Array.fold_left max 0 a

(** FLOPs of the ragged computation (2·M·N·K per instance). *)
let ragged_flops w =
  let total = ref 0.0 in
  for b = 0 to w.batch - 1 do
    total := !total +. (2.0 *. float_of_int w.ms.(b) *. float_of_int w.ns.(b) *. float_of_int w.ks.(b))
  done;
  !total

(** FLOPs when every instance is padded to the batch maxima. *)
let padded_flops w =
  2.0 *. float_of_int w.batch *. float_of_int (max3 w.ms) *. float_of_int (max3 w.ns)
  *. float_of_int (max3 w.ks)
