(** Sequence-length workloads (Table 3 of the paper).

    The paper evaluates on sequence lengths from eight NLP datasets.  The
    datasets themselves are not redistributable inputs of this repository,
    so we substitute deterministic samplers that reproduce each dataset's
    published (min, mean, max) statistics: lengths are drawn as
    [min + u^k * (max - min)] with [k] chosen so the expectation matches
    the published mean ([E\[u^k\] = 1/(k+1)]).  This matches what the
    experiments consume — the multiset of lengths in a mini-batch — and
    reproduces the qualitative split between "long" datasets (RACE,
    Wiki512) and "short, highly ragged" ones (MNLI, CoLA). *)

type t = {
  name : string;
  min_len : int;
  mean_len : int;
  max_len : int;
}

let race = { name = "RACE"; min_len = 80; mean_len = 364; max_len = 512 }
let wiki512 = { name = "Wiki512"; min_len = 12; mean_len = 371; max_len = 512 }
let squad = { name = "SQuAD"; min_len = 39; mean_len = 192; max_len = 384 }
let wiki128 = { name = "Wiki128"; min_len = 14; mean_len = 117; max_len = 128 }
let mnli = { name = "MNLI"; min_len = 9; mean_len = 43; max_len = 128 }
let xnli = { name = "XNLI"; min_len = 9; mean_len = 70; max_len = 128 }
let mrpc = { name = "MRPC"; min_len = 21; mean_len = 59; max_len = 102 }
let cola = { name = "CoLA"; min_len = 6; mean_len = 13; max_len = 37 }

(** All eight, in the paper's (descending sequence length) order. *)
let all = [ race; wiki512; squad; wiki128; mnli; xnli; mrpc; cola ]

let by_name name =
  match List.find_opt (fun d -> String.lowercase_ascii d.name = String.lowercase_ascii name) all with
  | Some d -> d
  | None -> invalid_arg ("Datasets.by_name: unknown dataset " ^ name)

(** Shape parameter matching the published mean. *)
let shape d =
  let range = float_of_int (d.max_len - d.min_len) in
  let target = float_of_int (d.mean_len - d.min_len) in
  if target <= 0.0 then 1e6 else Float.max 0.05 ((range /. target) -. 1.0)

(** [sample d ~batch ~seed] — a mini-batch of sequence lengths. *)
let sample d ~batch ~seed =
  let rng = Rng.create (seed + (1299709 * Char.code d.name.[0]) + (7919 * batch)) in
  let k = shape d in
  Array.init batch (fun _ ->
      let u = Rng.float rng in
      let x = Float.pow u k in
      let len = d.min_len + int_of_float (Float.round (x *. float_of_int (d.max_len - d.min_len))) in
      max d.min_len (min d.max_len len))

(** [sample_sorted] — descending lengths, the paper's load-balancing trick
    for the transformer kernels (§D.2). *)
let sample_sorted d ~batch ~seed =
  let a = sample d ~batch ~seed in
  Array.sort (fun x y -> Int.compare y x) a;
  a

(** A synthetic "dataset" where every sequence has the same length — used by
    the overhead study of Fig. 23. *)
let constant ~len ~batch = Array.make batch len

let max_len d = d.max_len

let stats (a : int array) =
  let n = Array.length a in
  let mn = Array.fold_left min max_int a and mx = Array.fold_left max 0 a in
  let sum = Array.fold_left ( + ) 0 a in
  (mn, float_of_int sum /. float_of_int n, mx)
