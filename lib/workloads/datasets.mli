(** Sequence-length workloads (Table 3): deterministic samplers reproducing
    each NLP dataset's published (min, mean, max) statistics — the only
    aspect of the datasets the experiments consume. *)

type t = {
  name : string;
  min_len : int;
  mean_len : int;
  max_len : int;
}

val race : t
val wiki512 : t
val squad : t
val wiki128 : t
val mnli : t
val xnli : t
val mrpc : t
val cola : t

(** All eight, in the paper's order. *)
val all : t list

(** Case-insensitive; raises on unknown names. *)
val by_name : string -> t

val shape : t -> float

(** Deterministic mini-batch of sequence lengths. *)
val sample : t -> batch:int -> seed:int -> int array

(** Descending lengths — the paper's load-balancing sort (§D.2). *)
val sample_sorted : t -> batch:int -> seed:int -> int array

(** Constant-length batch (Fig. 23's synthetic dataset). *)
val constant : len:int -> batch:int -> int array

val max_len : t -> int

(** (min, mean, max) of a batch. *)
val stats : int array -> int * float * int
