(** Deterministic pseudo-random numbers (splitmix64): every workload draws
    from a fixed seed, so tests, examples and benchmarks are exactly
    reproducible. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [0, bound). *)
val int : t -> int -> int

val choose : t -> 'a array -> 'a

(** Standard normal (Box–Muller). *)
val gaussian : t -> float
