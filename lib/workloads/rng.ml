(** Deterministic pseudo-random numbers (splitmix64).

    Every workload in the repository draws from this generator with a fixed
    seed so that tests, examples and benchmarks are exactly reproducible
    run to run. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

(** Uniform choice from an array. *)
let choose t a = a.(int t (Array.length a))

(** Standard normal via Box–Muller. *)
let gaussian t =
  let u1 = Float.max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
