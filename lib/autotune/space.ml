(** Schedule search-space points (see space.mli). *)

type point = {
  fuse : bool;
  split : int;
  pad : int;
  op_split : bool;
  grid : bool;
  opt : int option;
  aux : (string * int) list;
}

let make ?(fuse = false) ?(split = 0) ?(pad = 0) ?(op_split = false) ?(grid = false)
    ?opt ?(aux = []) () =
  {
    fuse;
    split;
    pad;
    op_split;
    grid;
    opt;
    aux = List.sort (fun (a, _) (b, _) -> String.compare a b) aux;
  }

let aux_get p name ~default =
  match List.assoc_opt name p.aux with Some v -> v | None -> default

let equal (a : point) (b : point) = a = b

let to_string p =
  let parts =
    (if p.fuse then [ "fuse" ] else [])
    @ (if p.split > 0 then [ Printf.sprintf "split=%d" p.split ] else [])
    @ (if p.pad > 0 then [ Printf.sprintf "pad=%d" p.pad ] else [])
    @ (if p.op_split then [ "opsplit" ] else [])
    @ (if p.grid then [ "grid" ] else [])
    @ (match p.opt with Some n -> [ Printf.sprintf "opt=%d" n ] | None -> [])
    @ List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) p.aux
  in
  match parts with [] -> "hand" | _ -> String.concat "," parts
