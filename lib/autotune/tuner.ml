(** Online schedule autotuner (see tuner.mli). *)

open Cora

type job = {
  kernels : Lower.kernel list;
  launches : Machine.Launch.t list;
  lenv : Lenfun.env;
}

type cfg = { max_candidates : int; survivors : int }

let default_cfg = { max_candidates = 16; survivors = 4 }

type decision = {
  point : Space.point option;
  tuned_ns : float;
  hand_ns : float;
  searched : int;
  pruned : int;
}

(* ---------------- memo + accounting ---------------- *)

(* Keyed by the canonical form of the signature (never the hash alone), so
   a collision can cost a duplicate tune but never a wrong schedule. *)
let memo : (string, decision) Cache.t = Cache.create ~name:"autotune" ~capacity:128 ()

let searched_c = Obs.Metrics.counter "autotune.searched"
let pruned_c = Obs.Metrics.counter "autotune.pruned"
let wins_c = Obs.Metrics.counter "autotune.tuned_wins"
let fallbacks_c = Obs.Metrics.counter "autotune.fallbacks"
let tune_h = Obs.Metrics.histogram "autotune.tune_us"

(* The registry counters are monotonic across [Obs.Metrics.reset]-free
   runs; these atomics are the tuner's own resettable tally, so a bench
   can report per-run numbers without draining the registry. *)
let a_searched = Atomic.make 0
let a_pruned = Atomic.make 0
let a_wins = Atomic.make 0
let a_fallbacks = Atomic.make 0
let a_tunes = Atomic.make 0

type totals = {
  t_searched : int;
  t_pruned : int;
  t_tuned_wins : int;
  t_fallbacks : int;
  t_tunes : int;
}

let totals () =
  {
    t_searched = Atomic.get a_searched;
    t_pruned = Atomic.get a_pruned;
    t_tuned_wins = Atomic.get a_wins;
    t_fallbacks = Atomic.get a_fallbacks;
    t_tunes = Atomic.get a_tunes;
  }

let note_fallback () =
  Obs.Metrics.incr fallbacks_c;
  Atomic.incr a_fallbacks

let key ~workload ~tables ~opt =
  Sig.combine
    [ Sig.of_string workload; Sig.of_tables tables; Sig.of_string (Ir.Optimize.level_name opt) ]

let lookup k = Cache.find memo (Sig.canonical k)
let memo_size () = Cache.size memo
let memo_stats () = Cache.stats memo
let set_memo_capacity n = Cache.set_capacity memo n

(* Bumped on every [clear] so decision copies baked into caches outside
   this module (the serving layer's per-workload job memos) can tell
   their entries predate the wipe. *)
let epoch_a = Atomic.make 0
let epoch () = Atomic.get epoch_a

let clear () =
  Cache.clear memo;
  Atomic.incr epoch_a;
  List.iter (fun a -> Atomic.set a 0) [ a_searched; a_pruned; a_wins; a_fallbacks; a_tunes ]

(* ---------------- pricing ---------------- *)

let prelude_of ?tables_sig (j : job) : Prelude.built =
  let defs = List.concat_map (fun (k : Lower.kernel) -> k.Lower.aux) j.kernels in
  match tables_sig with
  | Some tables_sig -> fst (Prelude_cache.build_cached ~tables_sig defs j.lenv)
  | None -> Prelude.build ~dedup_defs:true defs j.lenv

let ctx_of ~device ?tables_sig (j : job) : Machine.Launch.ctx =
  Machine.Launch.make_ctx ~prelude:(prelude_of ?tables_sig j) ~device ~lenv:j.lenv j.kernels

(* Stage-1 analytic bound: one whole-body cost evaluation per kernel —
   total scalar work (flops + index arithmetic + loads + indirect
   prelude-table accesses + padding waste, all through the cost model's
   trip counts) weighted by the device's per-op nanoseconds.  Thread-bound
   loops are lane-normalised by the cost model itself; block-level
   distribution is deliberately ignored — that is what stage 2 adds. *)
let bound_ns ~(device : Machine.Device.t) ?tables_sig (j : job) : float =
  let ctx = ctx_of ~device ?tables_sig j in
  let env = Machine.Launch.cost_env ctx in
  List.fold_left
    (fun acc (k : Lower.kernel) ->
      let params =
        match k.Lower.bound with
        | Schedule.Compute_bound -> Machine.Device.cost_params device
        | Schedule.Memory_bound -> { Runtime.Cost_model.lanes = 1; vec_width = 1 }
      in
      let c = Runtime.Cost_model.compile params k.Lower.body env in
      let ns =
        match k.Lower.bound with
        | Schedule.Compute_bound -> Machine.Device.block_ns device ~eff:k.Lower.eff c
        | Schedule.Memory_bound ->
            Machine.Device.block_bytes c
            /. device.Machine.Device.mem_bw_bytes_per_ns /. k.Lower.eff
      in
      acc +. ns)
    0.0 j.kernels

(* Stage-2 exact simulation: the same per-launch grid enumeration, block
   costing and makespan scheduling the serving pipeline reports as
   [kernels_ns]. *)
let simulate_ns ~device ?tables_sig (j : job) : float =
  let ctx = ctx_of ~device ?tables_sig j in
  List.fold_left (fun acc l -> acc +. Machine.Launch.time ctx l) 0.0 j.launches

(* ---------------- the search ---------------- *)

let tune ?(cfg = default_cfg) ~device ~key:k ?tables_sig ~(hand : job)
    ~(candidates : (Space.point * (unit -> job)) list) () : decision =
  Obs.Span.with_span
    ~attrs:[ ("candidates", Obs.Trace_sink.Int (List.length candidates)) ]
    "autotune.tune"
  @@ fun () ->
  let t0 = Obs.Trace_sink.now_us () in
  let hand_ns = simulate_ns ~device ?tables_sig hand in
  let admitted = List.filteri (fun i _ -> i < cfg.max_candidates) candidates in
  let searched = List.length admitted in
  (* Build + bound every admitted candidate.  A builder that raises is
     dropped (and counted as pruned): an over-aggressive point must not
     take down the serving request that triggered the tune. *)
  let bounded =
    List.filter_map
      (fun (p, build) ->
        match
          let j = build () in
          (p, j, bound_ns ~device ?tables_sig j)
        with
        | pjb -> Some pjb
        | exception _ -> None)
      admitted
  in
  let bounded = List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare a b) bounded in
  let survivors = List.filteri (fun i _ -> i < cfg.survivors) bounded in
  let pruned = searched - List.length survivors in
  let best =
    List.fold_left
      (fun acc (p, j, _) ->
        let ns = simulate_ns ~device ?tables_sig j in
        match acc with Some (_, b) when b <= ns -> acc | _ -> Some (p, ns))
      None survivors
  in
  let d =
    match best with
    | Some (p, ns) when ns < hand_ns ->
        { point = Some p; tuned_ns = ns; hand_ns; searched; pruned }
    | _ -> { point = None; tuned_ns = hand_ns; hand_ns; searched; pruned }
  in
  Obs.Metrics.add searched_c searched;
  Obs.Metrics.add pruned_c pruned;
  ignore (Atomic.fetch_and_add a_searched searched);
  ignore (Atomic.fetch_and_add a_pruned pruned);
  if d.point <> None then begin
    Obs.Metrics.incr wins_c;
    Atomic.incr a_wins
  end;
  Atomic.incr a_tunes;
  Cache.add memo (Sig.canonical k) d;
  let dt = Obs.Trace_sink.now_us () -. t0 in
  Obs.Metrics.observe tune_h dt;
  Obs.Span.add_attr "hand_ns" (Obs.Trace_sink.Float d.hand_ns);
  Obs.Span.add_attr "tuned_ns" (Obs.Trace_sink.Float d.tuned_ns);
  Obs.Span.add_attr "point"
    (Obs.Trace_sink.Str (match d.point with Some p -> Space.to_string p | None -> "hand"));
  d
