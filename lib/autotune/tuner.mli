(** Online schedule autotuner: cost-model-guided search over a workload's
    schedule space, warmed during serving.

    Two-stage search, following the prune-then-simulate recipe of the
    asymptotic-cost-model autoschedulers: stage 1 prices every candidate
    with one whole-body {!Runtime.Cost_model} evaluation — total scalar
    work including padding waste and indirect (prelude-table) accesses,
    weighted by the device's per-op nanoseconds but ignoring block-level
    distribution — and keeps only the [survivors] cheapest; stage 2 ranks
    the survivors by exact simulated launch time ({!Machine.Launch.time}:
    grid enumeration, per-block costing, block-scheduler makespan), the
    same quantity {!Serving.Server}'s launch stage reports as
    [kernels_ns].  No floating-point execution happens during search.

    A candidate is adopted only when its simulated time strictly beats the
    hand schedule's, so tuned serving is never worse than hand serving in
    model time.  Decisions are memoized in a bounded {!Cora.Cache} keyed
    by [(workload, Sig.of_tables, opt level)] — see {!key} — so a serving
    stream tunes each raggedness signature once and hits the memo
    afterwards.

    Counters: [autotune.searched] (candidates admitted to stage 1),
    [autotune.pruned] (dropped by the analytic bound), [autotune.tuned_wins]
    (decisions that adopted a candidate), [autotune.fallbacks] (requests
    served by the hand schedule while the memo entry was still cold), and
    the [autotune.tune_us] histogram (wall time of each search). *)

(** What the tuner needs of a compiled workload job: the kernels, their
    launch grouping, and the length environment — deliberately a subset of
    [Serving.Workload.job] so this library sits below the serving layer. *)
type job = {
  kernels : Cora.Lower.kernel list;
  launches : Machine.Launch.t list;
  lenv : Cora.Lenfun.env;
}

(** Search budget.  [max_candidates] caps the space walked at all (extra
    points are ignored, counted neither searched nor pruned); [survivors]
    is how many stage-1 winners reach exact simulation. *)
type cfg = { max_candidates : int; survivors : int }

(** 16 candidates, 4 survivors — small enough that an online tune costs a
    handful of (memoized) lowerings plus cost-model arithmetic. *)
val default_cfg : cfg

(** The tuner's verdict for one memo key.  [point = None] means the hand
    schedule won (or the space was empty): serve it and stop searching.
    [tuned_ns]/[hand_ns] are simulated kernel times; when a point was
    adopted, [tuned_ns < hand_ns] strictly. *)
type decision = {
  point : Space.point option;
  tuned_ns : float;
  hand_ns : float;
  searched : int;  (** candidates admitted to stage 1 for this key *)
  pruned : int;  (** of those, dropped by the analytic bound *)
}

(** Memo key: workload name, raggedness signature of the concrete length
    tables ({!Cora.Sig.of_tables}) and optimization level. *)
val key :
  workload:string -> tables:(string * int array) list -> opt:Ir.Optimize.level -> Cora.Sig.t

(** Consult the memo; a hit refreshes LRU recency. *)
val lookup : Cora.Sig.t -> decision option

(** Stage-1 analytic bound (ns): one whole-body cost-model evaluation per
    kernel, priced by the device's per-op weights (compute-bound) or raw
    traffic against device bandwidth (memory-bound).  [?tables_sig] routes
    the candidate's prelude through {!Cora.Prelude_cache} so repeated
    tunes (and the eventual tuned serve) reuse the build. *)
val bound_ns : device:Machine.Device.t -> ?tables_sig:Cora.Sig.t -> job -> float

(** Stage-2 exact simulation (ns): sum of {!Machine.Launch.time} over the
    job's launches — identical to the [kernels_ns] the serving pipeline
    would report for this job. *)
val simulate_ns : device:Machine.Device.t -> ?tables_sig:Cora.Sig.t -> job -> float

(** Run the two-stage search and memoize the decision under [key].
    [hand] is the already-built hand-schedule job (the baseline — it is
    never pruned); [candidates] are built lazily, inside the search, so
    callers should wrap [tune] in {!Cora.Lower.with_memo} to share
    lowerings across repeated tunes.  Candidate builders that raise are
    skipped (counted as pruned): an over-aggressive point must not take
    down a serving request. *)
val tune :
  ?cfg:cfg ->
  device:Machine.Device.t ->
  key:Cora.Sig.t ->
  ?tables_sig:Cora.Sig.t ->
  hand:job ->
  candidates:(Space.point * (unit -> job)) list ->
  unit ->
  decision

(** Count a request served by the hand schedule because its memo entry was
    cold ([autotune.fallbacks]). *)
val note_fallback : unit -> unit

(** Process-wide tuner totals (mirrors the [autotune.*] counters). *)
type totals = {
  t_searched : int;
  t_pruned : int;
  t_tuned_wins : int;
  t_fallbacks : int;
  t_tunes : int;  (** completed searches (memo fills) *)
}

val totals : unit -> totals

val memo_size : unit -> int

(** Hit/miss/eviction/entry counts of the decision memo ({!Cora.Cache.stats}). *)
val memo_stats : unit -> Cora.Cache.stats

(** Entry cap of the decision memo (clamped to >= 1). *)
val set_memo_capacity : int -> unit

(** Drop every memoized decision and zero the process-wide totals (the
    [autotune.*] registry counters are monotonic and unaffected).
    Bumps {!epoch}. *)
val clear : unit -> unit

(** Incremented by every {!clear}.  A caller holding decisions outside
    the memo (e.g. the serving layer's per-workload job memo, which
    bakes the decision into the cached job so repeat shapes skip the
    [Sig] work of {!key}) tags them with the epoch and treats a
    mismatch as a miss, so a wipe here invalidates those copies too. *)
val epoch : unit -> int
