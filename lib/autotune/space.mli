(** Schedule search-space points.

    A point is one candidate assignment of the schedule knobs a workload
    exposes to the tuner: split factor of the primary data axis, loop
    padding multiple, fused vs. nested ragged loops, operation splitting
    ({!Cora.Schedule.range_mode} [Tiles_only]/[Tail_only] pair), whether
    the outer loops are bound to the device grid, and workload-specific
    extra knobs carried as named integers (e.g. the encoder's feature
    tile).  The {e interpretation} of a point lives with each workload's
    [build_tuned]; the record here is only the coordinate system, so the
    tuner, the flight recorder and the bench can all render and compare
    candidates uniformly.

    Every point must denote a schedule whose output is bitwise-identical
    to the hand schedule's: transformations are restricted to data axes
    (never reordering or splitting a reduction), and storage layouts are
    untouched — the serving layer's [--smoke] replay enforces this. *)

type point = {
  fuse : bool;  (** vloop-fuse the batch axis with its dependent ragged axis *)
  split : int;  (** split factor of the primary data axis; 0 = no split *)
  pad : int;  (** loop-padding multiple; 0 = keep the hand schedule's *)
  op_split : bool;
      (** operation splitting: lower the split pair twice, as a
          [Tiles_only] main kernel plus a [Tail_only] remainder kernel *)
  grid : bool;  (** bind the outer loops to the device grid *)
  opt : int option;
      (** engine optimization-level override for executing this schedule
          ([Ir.Optimize.level_of_int]); [None] inherits the server's
          level.  Purely an execution knob: the lowering is unchanged and
          every level is bitwise-identical, so the point stays replay-safe *)
  aux : (string * int) list;  (** workload-specific knobs, sorted by name *)
}

val make :
  ?fuse:bool ->
  ?split:int ->
  ?pad:int ->
  ?op_split:bool ->
  ?grid:bool ->
  ?opt:int ->
  ?aux:(string * int) list ->
  unit ->
  point

(** Named extra knob, with a default when the point does not carry it. *)
val aux_get : point -> string -> default:int -> int

val equal : point -> point -> bool

(** Compact rendering for logs, flight records and BENCH JSON, e.g.
    ["fuse,split=8,pad=8,grid"] or ["jtile=16,ftile=4"]. *)
val to_string : point -> string
