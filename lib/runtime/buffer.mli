(** Flat runtime buffers: float storage for tensors, int storage for the
    prelude's auxiliary structures. *)

type t = F of float array | I of int array

val float_buf : int -> t
val int_buf : int -> t
val of_floats : float array -> t
val of_ints : int array -> t
val length : t -> int

(** Raises on the wrong variant. *)
val floats : t -> float array

val ints : t -> int array
val get_float : t -> int -> float
val get_int : t -> int -> int
val set_float : t -> int -> float -> unit
val set_int : t -> int -> int -> unit

(** Size in bytes (4-byte elements, matching the paper's fp32/int32). *)
val bytes : t -> int

val fill_float : t -> float -> unit

(** Recycling pool of float arrays, keyed by length — the zero-allocation
    backbone of the steady-state serving path.  {!Arena.acquire} returns a
    zero-filled array of exactly the requested length (recycled on a hit,
    freshly allocated on a miss — [arena.hit] / [arena.miss] metrics);
    {!Arena.acquire_class} rounds up to the next power-of-two size class
    first, so streams of varying ragged sizes converge onto a closed set
    of classes.  {!Arena.release} returns an array for reuse; the caller
    must not touch it afterwards.  Thread-safe. *)
module Arena : sig
  type t

  val create : unit -> t

  (** Zero-filled array of length exactly [n].  Raises like
      [Array.make] on a negative [n]. *)
  val acquire : t -> int -> float array

  (** Like {!acquire} but the result length is the next power of two
      [>= n] (for [n > 0]). *)
  val acquire_class : t -> int -> float array

  (** Like {!acquire_class}, also reporting whether the array was
      recycled ([true]) or freshly allocated ([false]) — per-request
      accounting for the flight recorder, which cannot use the global
      [arena.hit]/[arena.miss] counters under concurrency. *)
  val acquire_class_counted : t -> int -> float array * bool

  val release : t -> float array -> unit

  (** Drop all pooled arrays. *)
  val clear : t -> unit

  (** Number of arrays currently pooled (observability / tests). *)
  val stored : t -> int

  (** The process-wide arena shared by the engine's [Alloc] scratch and
      the serving path. *)
  val global : t
end
