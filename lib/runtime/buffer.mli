(** Flat runtime buffers: float storage for tensors, int storage for the
    prelude's auxiliary structures. *)

type t = F of float array | I of int array

val float_buf : int -> t
val int_buf : int -> t
val of_floats : float array -> t
val of_ints : int array -> t
val length : t -> int

(** Raises on the wrong variant. *)
val floats : t -> float array

val ints : t -> int array
val get_float : t -> int -> float
val get_int : t -> int -> int
val set_float : t -> int -> float -> unit
val set_int : t -> int -> int -> unit

(** Size in bytes (4-byte elements, matching the paper's fp32/int32). *)
val bytes : t -> int

val fill_float : t -> float -> unit
