(** Reference interpreter for the lowered IR — the ground truth of the test
    suite.  Executes kernels scalar-by-scalar over real buffers with bounds
    checking; GPU/parallel bindings run sequentially (bindings only matter
    to the machine model). *)

type value = VInt of int | VFloat of float | VBool of bool

exception Error of string

val to_int : value -> int
val to_float : value -> float
val to_bool : value -> bool

(** Uninterpreted-function binding: [U1] is the allocation-free fast path
    for the (overwhelmingly common) 1-argument ufuns.  It carries a
    last-lookup [(arg, result)] cache — ragged loop nests re-read the same
    offset many times in a row; hits are counted in the [ufun_cache.hit]
    metric while the [loads]/[indirect] statistics stay unchanged, so
    cached and uncached runs remain counter-identical. *)
type ufun = U1 of (int -> int) * (int * int) option ref | UN of (int list -> int)

type env = {
  mutable vars : value Ir.Var.Map.t;
  mutable bufs : Buffer.t Ir.Var.Map.t;
  ufuns : (string, ufun) Hashtbl.t;
  mutable loads : int;  (** statistics: scalar loads executed *)
  mutable stores : int;
  mutable flops : int;
  mutable indirect : int;
      (** uninterpreted-function (prelude table) accesses, also in [loads] *)
  mutable guards : int;  (** bound-guard conditions evaluated *)
  mutable guard_hits : int;  (** guard conditions that held (body ran) *)
}

val create : unit -> env
val bind_buf : env -> Ir.Var.t -> Buffer.t -> unit
val bind_var : env -> Ir.Var.t -> value -> unit
val bind_ufun : env -> string -> (int list -> int) -> unit

(** 1-argument ufun on the allocation-free fast path. *)
val bind_ufun1 : env -> string -> (int -> int) -> unit

(** 1-argument ufun backed by an int array (bounds-checked). *)
val bind_ufun_array : env -> string -> int array -> unit

(** Abramowitz–Stegun 7.1.26 [erf] approximation — shared with {!Engine}
    so both execution paths are bit-identical. *)
val erf_approx : float -> float

val eval : env -> Ir.Expr.t -> value
val exec : env -> Ir.Stmt.t -> unit

(** Execute with [Parallel]-bound loops spread across OCaml domains — the
    multicore runtime for CPU-scheduled kernels.  Buffers are shared (a
    correctly scheduled parallel loop writes disjoint locations); the
    per-domain statistics counters are aggregated into [env] when the
    domains join, so a multicore run reports the same counts as a serial
    one. *)
val exec_multicore : ?domains:int -> env -> Ir.Stmt.t -> unit

(** Add the environment's statistics counters into the process-wide
    {!Obs.Metrics} registry under [interp.loads], [interp.stores],
    [interp.flops], [interp.indirect], [interp.guards] and
    [interp.guard_hits].  Call once per run. *)
val flush_metrics : env -> unit

(** Snapshot of the statistics counters as a fixed-order association list
    ([loads], [stores], [flops], [indirect], [guards], [guard_hits]) — for
    structural comparison of whole runs in differential tests. *)
val stats : env -> (string * int) list
