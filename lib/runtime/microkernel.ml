(* Stride-specialized straight-line kernels (see microkernel.mli).  Every
   kernel here assumes the caller has already bounds-checked the whole
   index range (the engine's hoisted endpoint checks), so element accesses
   are unsafe_get/set; and every kernel reproduces the float operation
   sequence of the generic per-element loop it replaces exactly — one
   order-preserving accumulator chain per destination element, products
   in the original left/right multiplicand order — so results are
   bitwise-identical to the interpreter's. *)

(* Unboxed accumulator: a single-field all-float record is stored flat,
   so [c.v <- c.v +. x] is an unboxed load/add/store — no allocation, no
   write barrier.  This is the whole point of the O3 dot kernels: the
   generic loop's [float ref] boxes a fresh float on every iteration. *)
type cell = { mutable v : float }

type acc4 = { mutable x0 : float; mutable x1 : float; mutable x2 : float; mutable x3 : float }

(* ------------------------------------------------------------------ *)
(* Dot: dst op= a[..] * b[..] over one reduction chain *)

let dot_sum_unit ~a ~a0 ~b ~b0 ~n ~init =
  let c = { v = init } in
  let n4 = n - 3 in
  let i = ref 0 in
  while !i < n4 do
    let k = !i in
    (* four independent products, one order-preserving addition chain:
       (((acc + p0) + p1) + p2) + p3 is the sequential association *)
    let p0 = Array.unsafe_get a (a0 + k) *. Array.unsafe_get b (b0 + k) in
    let p1 = Array.unsafe_get a (a0 + k + 1) *. Array.unsafe_get b (b0 + k + 1) in
    let p2 = Array.unsafe_get a (a0 + k + 2) *. Array.unsafe_get b (b0 + k + 2) in
    let p3 = Array.unsafe_get a (a0 + k + 3) *. Array.unsafe_get b (b0 + k + 3) in
    c.v <- c.v +. p0 +. p1 +. p2 +. p3;
    i := k + 4
  done;
  while !i < n do
    let k = !i in
    c.v <- c.v +. (Array.unsafe_get a (a0 + k) *. Array.unsafe_get b (b0 + k));
    i := k + 1
  done;
  c.v

let dot_sum_strided ~a ~a0 ~astep ~b ~b0 ~bstep ~n ~init =
  let c = { v = init } in
  let ai = ref a0 and bi = ref b0 in
  let n4 = n - 3 in
  let i = ref 0 in
  while !i < n4 do
    let a1 = !ai + astep and b1 = !bi + bstep in
    let a2 = a1 + astep and b2 = b1 + bstep in
    let a3 = a2 + astep and b3 = b2 + bstep in
    let p0 = Array.unsafe_get a !ai *. Array.unsafe_get b !bi in
    let p1 = Array.unsafe_get a a1 *. Array.unsafe_get b b1 in
    let p2 = Array.unsafe_get a a2 *. Array.unsafe_get b b2 in
    let p3 = Array.unsafe_get a a3 *. Array.unsafe_get b b3 in
    c.v <- c.v +. p0 +. p1 +. p2 +. p3;
    ai := a3 + astep;
    bi := b3 + bstep;
    i := !i + 4
  done;
  while !i < n do
    c.v <- c.v +. (Array.unsafe_get a !ai *. Array.unsafe_get b !bi);
    ai := !ai + astep;
    bi := !bi + bstep;
    incr i
  done;
  c.v

let dot_strided ~combine ~a ~a0 ~astep ~b ~b0 ~bstep ~n ~init =
  let c = { v = init } in
  let ai = ref a0 and bi = ref b0 in
  for _ = 1 to n do
    c.v <- combine c.v (Array.unsafe_get a !ai *. Array.unsafe_get b !bi);
    ai := !ai + astep;
    bi := !bi + bstep
  done;
  c.v

(* ------------------------------------------------------------------ *)
(* Register-tiled dot: four destination chains per pass.  The shared
   operand is loaded once per reduction step and feeds all four chains;
   each chain keeps its own accumulator field, so the four additions are
   genuinely independent — bitwise-safe because no chain's order changes.
   [mjs] is the moving operand's tile-var stride, [mks] its reduction
   stride; [shared_left] callers multiply shared * moving, [shared_right]
   moving * shared (multiplication order is preserved because NaN payload
   propagation is operand-order-sensitive on real hardware). *)

let tile4_dot_sum_shared_left ~s ~s0 ~ss ~m ~m0 ~mjs ~mks ~n (acc : acc4) =
  let mjs2 = mjs + mjs in
  let mjs3 = mjs2 + mjs in
  let si = ref s0 and mi = ref m0 in
  for _ = 1 to n do
    let sv = Array.unsafe_get s !si in
    let r = !mi in
    acc.x0 <- acc.x0 +. (sv *. Array.unsafe_get m r);
    acc.x1 <- acc.x1 +. (sv *. Array.unsafe_get m (r + mjs));
    acc.x2 <- acc.x2 +. (sv *. Array.unsafe_get m (r + mjs2));
    acc.x3 <- acc.x3 +. (sv *. Array.unsafe_get m (r + mjs3));
    si := !si + ss;
    mi := r + mks
  done

let tile4_dot_sum_shared_right ~s ~s0 ~ss ~m ~m0 ~mjs ~mks ~n (acc : acc4) =
  let mjs2 = mjs + mjs in
  let mjs3 = mjs2 + mjs in
  let si = ref s0 and mi = ref m0 in
  for _ = 1 to n do
    let sv = Array.unsafe_get s !si in
    let r = !mi in
    acc.x0 <- acc.x0 +. (Array.unsafe_get m r *. sv);
    acc.x1 <- acc.x1 +. (Array.unsafe_get m (r + mjs) *. sv);
    acc.x2 <- acc.x2 +. (Array.unsafe_get m (r + mjs2) *. sv);
    acc.x3 <- acc.x3 +. (Array.unsafe_get m (r + mjs3) *. sv);
    si := !si + ss;
    mi := r + mks
  done

(* ------------------------------------------------------------------ *)
(* Reduce1: dst op= src[..] over one chain *)

let reduce1_sum_unit ~src ~s0 ~n ~init =
  let c = { v = init } in
  let n4 = n - 3 in
  let i = ref 0 in
  while !i < n4 do
    let k = !i in
    c.v <-
      c.v
      +. Array.unsafe_get src (s0 + k)
      +. Array.unsafe_get src (s0 + k + 1)
      +. Array.unsafe_get src (s0 + k + 2)
      +. Array.unsafe_get src (s0 + k + 3);
    i := k + 4
  done;
  while !i < n do
    c.v <- c.v +. Array.unsafe_get src (s0 + !i);
    incr i
  done;
  c.v

let reduce1_sum_strided ~src ~s0 ~sstep ~n ~init =
  let c = { v = init } in
  let si = ref s0 in
  for _ = 1 to n do
    c.v <- c.v +. Array.unsafe_get src !si;
    si := !si + sstep
  done;
  c.v

let reduce1_strided ~combine ~src ~s0 ~sstep ~n ~init =
  let c = { v = init } in
  let si = ref s0 in
  for _ = 1 to n do
    c.v <- combine c.v (Array.unsafe_get src !si);
    si := !si + sstep
  done;
  c.v

(* ------------------------------------------------------------------ *)
(* Copy / Scale.  [copy_unit] requires dst != src (Array.blit has
   memmove semantics, the generic loop has forward-propagation semantics
   on overlap — the engine dispatches on physical equality).  The strided
   bodies keep strict per-element read-then-write order, so they are
   safe under any aliasing, exactly like the generic loop. *)

let copy_unit ~dst ~d0 ~src ~s0 ~n = Array.blit src s0 dst d0 n

let copy_strided ~dst ~d0 ~dstep ~src ~s0 ~sstep ~n =
  let di = ref d0 and si = ref s0 in
  for _ = 1 to n do
    Array.unsafe_set dst !di (Array.unsafe_get src !si);
    di := !di + dstep;
    si := !si + sstep
  done

let scale_unit ~dst ~d0 ~src ~s0 ~factor ~n =
  let n4 = n - 3 in
  let i = ref 0 in
  while !i < n4 do
    let k = !i in
    (* per-element read-then-write, forward order: aliasing-safe *)
    Array.unsafe_set dst (d0 + k) (Array.unsafe_get src (s0 + k) *. factor);
    Array.unsafe_set dst (d0 + k + 1) (Array.unsafe_get src (s0 + k + 1) *. factor);
    Array.unsafe_set dst (d0 + k + 2) (Array.unsafe_get src (s0 + k + 2) *. factor);
    Array.unsafe_set dst (d0 + k + 3) (Array.unsafe_get src (s0 + k + 3) *. factor);
    i := k + 4
  done;
  while !i < n do
    let k = !i in
    Array.unsafe_set dst (d0 + k) (Array.unsafe_get src (s0 + k) *. factor);
    i := k + 1
  done

let scale_strided ~dst ~d0 ~dstep ~src ~s0 ~sstep ~factor ~n =
  let di = ref d0 and si = ref s0 in
  for _ = 1 to n do
    Array.unsafe_set dst !di (Array.unsafe_get src !si *. factor);
    di := !di + dstep;
    si := !si + sstep
  done
