(** Compiled execution engine: a one-pass compiler from the lowered IR to
    nested OCaml closures over a slot-indexed frame.

    Where {!Interp} walks the tree re-resolving every variable through a
    [Var.Map] and every prelude table through a string-keyed [Hashtbl], the
    engine resolves those names {e once, at compile time}: scalar variables
    become integer slots into unboxed [int array] / [float array] /
    [bool array] frames, buffers become direct [float array] references,
    and 1-argument uninterpreted functions become direct int-array
    indexing.  Evaluation is staged into separate int / float / bool
    closure types, so the hot path never boxes a scalar.

    The engine maintains the same [loads] / [stores] / [flops] /
    [indirect] / [guards] / [guard_hits] counters as {!Interp}, with the
    same per-IR-node accounting — a compiled run is differentially
    comparable against the interpreter counter-for-counter and
    bit-for-bit (see [test/test_engine.ml]).

    [Parallel]-bound loops execute on a persistent {!Pool} of domains
    (spawned once per [Exec.run], chunked work queue) instead of
    [Domain.spawn] per loop encounter; per-chunk counters are folded into
    the parent frame exactly as {!Interp.exec_multicore} folds per-
    iteration counters, so totals agree with a serial run.

    Restrictions (by design — lowered kernels satisfy them): buffers are
    float-only ({!bind_buf} rejects [Buffer.I]); programs must be
    scalar-typable at compile time (type mismatches that the interpreter
    would only hit at runtime are reported by {!compile}); a buffer or
    let-bound variable is never referenced outside its binding scope. *)

exception Error of string

(** Persistent domain pool: a fixed set of worker domains blocked on a
    condition variable, fed chunked parallel-for jobs.  The caller of
    {!Pool.run} participates in draining the chunk queue, so a pool
    created with [~domains:n] applies [n]-way parallelism with [n - 1]
    spawned domains. *)
module Pool : sig
  type t

  (** [create ~domains ()] spawns [domains - 1] worker domains. *)
  val create : ?domains:int -> unit -> t

  (** Total parallelism (worker domains + the calling domain). *)
  val parallelism : t -> int

  (** [run t ~chunks f] executes [f 0 .. f (chunks - 1)] across the pool
      and the calling domain; returns when every chunk has finished.  The
      first exception raised by any chunk is re-raised here. *)
  val run : t -> chunks:int -> (int -> unit) -> unit

  (** Stop and join the worker domains.  Idempotent. *)
  val shutdown : t -> unit
end

(** A compiled kernel body: closure tree + frame layout.  Compile once per
    structural signature, then instantiate a fresh {!frame} per request. *)
type compiled

(** A run instance: the slot arrays, buffer / ufun bindings and statistics
    counters for one execution of a {!compiled} kernel. *)
type frame

(** Compile a lowered statement.  Raises {!Error} on unbound variables,
    compile-time type mismatches, unknown intrinsics, or [Access] nodes
    that storage lowering should have eliminated. *)
val compile : Ir.Stmt.t -> compiled

(** Number of scalar slots (int + float + bool) the compiled kernel uses —
    observability for the memo layer. *)
val slot_count : compiled -> int

(** Fresh frame with zeroed counters, no buffers bound, all uninterpreted
    functions unbound. *)
val frame : compiled -> frame

(** Bind a buffer.  Names the compiled kernel never references are
    silently ignored (preludes are shared across kernels).  Raises
    {!Error} on an integer buffer. *)
val bind_buf : frame -> Ir.Var.t -> Buffer.t -> unit

(** Bind a 1-argument ufun backed by an int array — the fast path: a table
    access compiles to one bounds check and one array read. *)
val bind_ufun_table : frame -> string -> int array -> unit

(** Bind a 1-argument ufun backed by an OCaml function (length functions). *)
val bind_ufun1 : frame -> string -> (int -> int) -> unit

(** Bind a constant ufun — prelude [Scalar] values; accepts any arity at
    the call site, like the interpreter's [fun _ -> n] binding. *)
val bind_ufun_const : frame -> string -> int -> unit

(** Bind a general n-ary ufun (the slow path; kept for parity). *)
val bind_ufun : frame -> string -> (int list -> int) -> unit

(** Execute the frame.  Raises {!Error} up front if any externally-bound
    buffer or any uninterpreted function referenced by the kernel is still
    unbound — the compiled analogue of the interpreter's lazy "unbound"
    errors.  When [pool] is given, [Parallel]-bound loops run across it
    (counters still fold to serial-identical totals); otherwise they run
    serially, like {!Interp.exec}. *)
val run : ?pool:Pool.t -> frame -> unit

(** Counter snapshot in the same fixed order as {!Interp.stats}. *)
val stats : frame -> (string * int) list

(** Add the frame's counters into the process-wide {!Obs.Metrics} registry
    under [engine.loads], [engine.stores], [engine.flops],
    [engine.indirect], [engine.guards], [engine.guard_hits]. *)
val flush_metrics : frame -> unit
