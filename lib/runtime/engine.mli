(** Compiled execution engine: a one-pass compiler from the lowered IR to
    nested OCaml closures over a slot-indexed frame.

    Where {!Interp} walks the tree re-resolving every variable through a
    [Var.Map] and every prelude table through a string-keyed [Hashtbl], the
    engine resolves those names {e once, at compile time}: scalar variables
    become integer slots into unboxed [int array] / [float array] /
    [bool array] frames, buffers become direct [float array] references,
    and 1-argument uninterpreted functions become direct int-array
    indexing.  Evaluation is staged into separate int / float / bool
    closure types, so the hot path never boxes a scalar.

    The engine maintains the same [loads] / [stores] / [flops] /
    [indirect] / [guards] / [guard_hits] counters as {!Interp}, with the
    same per-IR-node accounting — a compiled run at the default [O0]
    level is differentially comparable against the interpreter
    counter-for-counter and bit-for-bit (see [test/test_engine.ml]).

    {b Optimization levels.}  [compile ~opt] runs the {!Ir.Optimize}
    pipeline first and enables engine-side specializations.  At every
    level the {e outputs} stay bitwise-identical to the interpreter; at
    [O1]/[O2] the counter profile legitimately differs (and two extra
    counters appear):
    - [O1]: LICM preheaders ([hoisted] counts their evaluations; loads
      and indirect accesses inside hoisted expressions are now counted
      once per preheader entry instead of once per iteration), plus
      strength-reduced innermost store loops (running offsets; bounds
      checks collapse to loop-endpoint checks, so counter divergence on
      error paths only).
    - [O2]: innermost dot / reduction / copy / scale loops fuse into
      tight float-array microkernels ([microkernel_elems] counts the
      elements they process; bulk counter accounting with the same
      success-path totals, except address-tree traffic which follows the
      LICM rule above).  A microkernel whose destination aliases an input
      falls back to the generic loop at runtime, preserving parity.
    - [O3]: the microkernel {e body} is selected from the {!Microkernel}
      registry when the closure is built — {!Ir.Optimize.classify_stride}
      picks unit-stride unrolled / [Array.blit] variants over strided
      fallbacks, and {!Ir.Optimize.classify_nest} register-tiles a
      two-deep sum-dot nest (four destination chains per pass, the shared
      operand loaded once per reduction step).  Selection is per compiled
      loop, never per call ([engine.mk_variant.*] counters record it);
      every variant keeps one order-preserving accumulator chain per
      destination element, so outputs remain bitwise-identical.  Aliased
      destinations, zero destination strides and zero-trip reductions
      fall back to the generic loop at runtime.

    [Alloc] scratch buffers come from {!Buffer.Arena.global} and return
    to it when the body finishes, so steady-state reruns allocate no
    fresh float storage.

    [Parallel]-bound loops execute on a persistent {!Pool} of domains
    (spawned once per [Exec.run], chunked work queue) instead of
    [Domain.spawn] per loop encounter; per-chunk counters are folded into
    the parent frame exactly as {!Interp.exec_multicore} folds per-
    iteration counters, so totals agree with a serial run.

    Restrictions (by design — lowered kernels satisfy them): buffers are
    float-only ({!bind_buf} rejects [Buffer.I]); programs must be
    scalar-typable at compile time (type mismatches that the interpreter
    would only hit at runtime are reported by {!compile}); a buffer or
    let-bound variable is never referenced outside its binding scope. *)

exception Error of string

(** Persistent domain pool: a fixed set of worker domains blocked on a
    condition variable, fed chunked parallel-for jobs.  The caller of
    {!Pool.run} participates in draining the chunk queue, so a pool
    created with [~domains:n] applies [n]-way parallelism with [n - 1]
    spawned domains. *)
module Pool : sig
  type t

  (** [create ~domains ()] spawns [domains - 1] worker domains. *)
  val create : ?domains:int -> unit -> t

  (** Total parallelism (worker domains + the calling domain). *)
  val parallelism : t -> int

  (** [run t ~chunks f] executes [f 0 .. f (chunks - 1)] across the pool
      and the calling domain; returns when every chunk has finished.  The
      first exception raised by any chunk is re-raised here. *)
  val run : t -> chunks:int -> (int -> unit) -> unit

  (** Stop and join the worker domains.  Idempotent. *)
  val shutdown : t -> unit
end

(** A compiled kernel body: closure tree + frame layout.  Compile once per
    structural signature, then instantiate a fresh {!frame} per request. *)
type compiled

(** A run instance: the slot arrays, buffer / ufun bindings and statistics
    counters for one execution of a {!compiled} kernel. *)
type frame

(** Compile a lowered statement.  [opt] (default [O0]) selects the
    {!Ir.Optimize} level; see the module docs for the parity contract per
    level.  Raises {!Error} on unbound variables, compile-time type
    mismatches, unknown intrinsics, or [Access] nodes that storage
    lowering should have eliminated. *)
val compile : ?opt:Ir.Optimize.level -> Ir.Stmt.t -> compiled

(** Number of scalar slots (int + float + bool) the compiled kernel uses —
    observability for the memo layer. *)
val slot_count : compiled -> int

(** Fresh frame with zeroed counters, no buffers bound, all uninterpreted
    functions unbound. *)
val frame : compiled -> frame

(** Bind a buffer.  Names the compiled kernel never references are
    silently ignored (preludes are shared across kernels).  Raises
    {!Error} on an integer buffer. *)
val bind_buf : frame -> Ir.Var.t -> Buffer.t -> unit

(** Bind a 1-argument ufun backed by an int array — the fast path: a table
    access compiles to one bounds check and one array read. *)
val bind_ufun_table : frame -> string -> int array -> unit

(** Bind a 1-argument ufun backed by an OCaml function (length functions). *)
val bind_ufun1 : frame -> string -> (int -> int) -> unit

(** Bind a constant ufun — prelude [Scalar] values; accepts any arity at
    the call site, like the interpreter's [fun _ -> n] binding. *)
val bind_ufun_const : frame -> string -> int -> unit

(** Bind a general n-ary ufun (the slow path; kept for parity). *)
val bind_ufun : frame -> string -> (int list -> int) -> unit

(** Execute the frame.  Raises {!Error} up front if any externally-bound
    buffer or any uninterpreted function referenced by the kernel is still
    unbound — the compiled analogue of the interpreter's lazy "unbound"
    errors.  When [pool] is given, [Parallel]-bound loops run across it
    (counters still fold to serial-identical totals); otherwise they run
    serially, like {!Interp.exec}. *)
val run : ?pool:Pool.t -> frame -> unit

(** Counter snapshot: the {!Interp.stats} names in the same fixed order,
    followed by the engine-only [hoisted] and [microkernel_elems]. *)
val stats : frame -> (string * int) list

(** Add the frame's counters into the process-wide {!Obs.Metrics} registry
    under [engine.loads], [engine.stores], [engine.flops],
    [engine.indirect], [engine.guards], [engine.guard_hits],
    [engine.hoisted], [engine.microkernel_elems]. *)
val flush_metrics : frame -> unit

(** [balance_chunks weights k] cuts the index range [0 .. n-1] (with
    per-index [weights]) into [k] contiguous chunks of roughly equal
    total weight, returned as [k + 1] ascending cut points (first [0],
    last [n], every chunk nonempty while indices remain).  Used to size
    parallel chunks from {!Cost_model} estimates; exposed for tests. *)
val balance_chunks : int array -> int -> int array
