(** Registry of hand-specialized microkernel bodies — the [O3] backend
    below {!Engine}.

    Each function is a straight-line, stride-specialized loop over raw
    [float array]s: unit-stride dot with 4-way unrolling, a register-tiled
    dot sweeping four destination elements per pass (amortizing the shared
    operand's loads), [Array.blit]-backed unit-stride copy, unrolled
    scale, and strided fallbacks.  {!Engine.emit_inner} selects among them
    once, when the closure is built, from {!Ir.Optimize.classify_stride} /
    {!Ir.Optimize.classify_nest} — never per call.

    {b Contract.}  Callers bounds-check the whole index range before
    calling (the engine's hoisted endpoint checks); element accesses here
    are unchecked.  Every kernel reproduces the generic per-element loop's
    float operation sequence exactly: one order-preserving accumulator
    chain per destination element (unrolling never reassociates a chain —
    [(((acc + p0) + p1) + p2) + p3] is the sequential association), and
    products keep the original left/right multiplicand order (NaN payload
    propagation is operand-order-sensitive).  Multiple {e independent}
    accumulators appear only in the tiled kernels, where each belongs to
    a distinct destination element.  Results are therefore
    bitwise-identical to the interpreter's.

    Accumulators live in single-field all-float records ({!cell},
    {!acc4}), which OCaml stores flat: accumulation is an unboxed
    load/add/store, where the generic loop's [float ref] boxes a fresh
    float (and runs the write barrier) on every iteration. *)

(** Flat one-float accumulator cell. *)
type cell = { mutable v : float }

(** Four independent flat accumulators — one per destination element of a
    register tile. *)
type acc4 = { mutable x0 : float; mutable x1 : float; mutable x2 : float; mutable x3 : float }

(** [dot_sum_unit ~a ~a0 ~b ~b0 ~n ~init] is
    [init + a.(a0)*b.(b0) + ... + a.(a0+n-1)*b.(b0+n-1)], 4-way
    unrolled, sequential association. *)
val dot_sum_unit :
  a:float array -> a0:int -> b:float array -> b0:int -> n:int -> init:float -> float

(** Strided sum-dot with running offsets; 4-way unrolled. *)
val dot_sum_strided :
  a:float array ->
  a0:int ->
  astep:int ->
  b:float array ->
  b0:int ->
  bstep:int ->
  n:int ->
  init:float ->
  float

(** General-combine strided dot (Prod/Rmax/Rmin reductions): per-element
    [combine], unboxed accumulator. *)
val dot_strided :
  combine:(float -> float -> float) ->
  a:float array ->
  a0:int ->
  astep:int ->
  b:float array ->
  b0:int ->
  bstep:int ->
  n:int ->
  init:float ->
  float

(** Register-tiled sum-dot, shared operand as the {e left} multiplicand:
    for each of [n] reduction steps, load [s.(s0 + k*ss)] once and feed
    four chains [acc.xj += sv * m.(m0 + j*mjs + k*mks)], [j = 0..3].
    Accumulators arrive initialized with the four destination cells and
    are written back by the caller. *)
val tile4_dot_sum_shared_left :
  s:float array ->
  s0:int ->
  ss:int ->
  m:float array ->
  m0:int ->
  mjs:int ->
  mks:int ->
  n:int ->
  acc4 ->
  unit

(** Same, shared operand as the {e right} multiplicand
    ([acc.xj += m_val * sv]). *)
val tile4_dot_sum_shared_right :
  s:float array ->
  s0:int ->
  ss:int ->
  m:float array ->
  m0:int ->
  mjs:int ->
  mks:int ->
  n:int ->
  acc4 ->
  unit

(** Unit-stride sum-reduction, 4-way unrolled, sequential association. *)
val reduce1_sum_unit : src:float array -> s0:int -> n:int -> init:float -> float

val reduce1_sum_strided :
  src:float array -> s0:int -> sstep:int -> n:int -> init:float -> float

val reduce1_strided :
  combine:(float -> float -> float) ->
  src:float array ->
  s0:int ->
  sstep:int ->
  n:int ->
  init:float ->
  float

(** Unit-stride copy via [Array.blit].  {b Requires dst != src}: blit has
    memmove semantics where the generic loop forward-propagates on
    overlap — the engine dispatches on physical array equality. *)
val copy_unit : dst:float array -> d0:int -> src:float array -> s0:int -> n:int -> unit

(** Strided copy; strict per-element read-then-write forward order, so
    safe under any aliasing. *)
val copy_strided :
  dst:float array -> d0:int -> dstep:int -> src:float array -> s0:int -> sstep:int -> n:int -> unit

(** Unit-stride scale, 4-way unrolled; per-element read-then-write
    forward order, aliasing-safe. *)
val scale_unit :
  dst:float array -> d0:int -> src:float array -> s0:int -> factor:float -> n:int -> unit

val scale_strided :
  dst:float array ->
  d0:int ->
  dstep:int ->
  src:float array ->
  s0:int ->
  sstep:int ->
  factor:float ->
  n:int ->
  unit
