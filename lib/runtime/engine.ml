open Ir

(* Compiled execution engine.  See engine.mli for the contract; the key
   invariant maintained throughout this file is *interpreter parity*: for
   every IR node the compiled closure performs the same stores, the same
   bounds checks and the same counter bumps, in the same order, as the
   corresponding branch of Interp.eval / Interp.exec — that is what makes
   the differential fuzz in test/test_engine.ml meaningful. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Persistent domain pool *)

module Pool = struct
  (* One job = one chunked parallel-for.  The atomics live in the job, not
     the pool: a worker that wakes up late simply finds every chunk of the
     old job already claimed and goes back to waiting, so there is no
     generation race on shared counters. *)
  type job = {
    f : int -> unit;
    chunks : int;
    next : int Atomic.t;  (* next chunk index to claim *)
    remaining : int Atomic.t;  (* chunks not yet finished *)
  }

  type t = {
    mutex : Mutex.t;
    work : Condition.t;  (* a new job was published *)
    done_ : Condition.t;  (* a job's last chunk finished *)
    mutable job : job option;
    mutable generation : int;
    mutable stop : bool;
    mutable error : exn option;
    mutable domains : unit Domain.t list;
    parallelism : int;
  }

  let parallelism t = t.parallelism

  let drain t (j : job) =
    let rec loop () =
      let c = Atomic.fetch_and_add j.next 1 in
      if c < j.chunks then begin
        (try j.f c
         with e ->
           Mutex.lock t.mutex;
           (match t.error with None -> t.error <- Some e | Some _ -> ());
           Mutex.unlock t.mutex);
        (* decrement *after* the handler so an exception can't hang [run] *)
        let left = Atomic.fetch_and_add j.remaining (-1) - 1 in
        if left = 0 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex
        end;
        loop ()
      end
    in
    loop ()

  let worker t =
    let last_gen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while (not t.stop) && t.generation = !last_gen do
        Condition.wait t.work t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        last_gen := t.generation;
        let j = t.job in
        Mutex.unlock t.mutex;
        (match j with Some j -> drain t j | None -> ());
        loop ()
      end
    in
    loop ()

  let create ?(domains = 4) () =
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        error = None;
        domains = [];
        parallelism = max 1 domains;
      }
    in
    t.domains <-
      List.init (max 0 (domains - 1)) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let run t ~chunks (f : int -> unit) =
    if chunks > 0 then begin
      let j = { f; chunks; next = Atomic.make 0; remaining = Atomic.make chunks } in
      Mutex.lock t.mutex;
      t.error <- None;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: total parallelism = domains *)
      drain t j;
      Mutex.lock t.mutex;
      while Atomic.get j.remaining > 0 do
        Condition.wait t.done_ t.mutex
      done;
      let e = t.error in
      t.job <- None;
      t.error <- None;
      Mutex.unlock t.mutex;
      match e with Some e -> raise e | None -> ()
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* ------------------------------------------------------------------ *)
(* Frames *)

type ufun_binding =
  | U_unbound
  | U_table of int array  (* prelude table: direct indexing *)
  | U_fn of (int -> int)  (* length function *)
  | U_const of int  (* prelude scalar: any arity, like (fun _ -> n) *)
  | U_gen of (int list -> int)

type layout = {
  n_ints : int;
  n_floats : int;
  n_bools : int;
  buf_slots : (int, int) Hashtbl.t;  (* Var.id -> fbuf slot *)
  buf_by_name : (string, int) Hashtbl.t;
      (* display name -> external slot; -1 when the name is ambiguous.
         Compiled kernels are shared across alpha-equivalent bodies (the
         Sig-keyed memo), whose buffer vars carry fresh ids but the same
         deterministic display names — name lookup is the fallback that
         lets a cached kernel be re-bound to another build's tensors. *)
  buf_names : string array;  (* slot -> mangled name, for errors *)
  buf_external : bool array;  (* slot must be bound before run *)
  ufun_slots : (string, int) Hashtbl.t;
  ufun_names : string array;
}

type frame = {
  layout : layout;
  entry : frame -> unit;
  ints : int array;
  floats : float array;
  bools : bool array;
  fbufs : float array array;
  buf_bound : bool array;
  ufuns : ufun_binding array;
  mutable pool : Pool.t option;
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable indirect : int;
  mutable guards : int;
  mutable guard_hits : int;
}

type compiled = { c_layout : layout; c_entry : frame -> unit }

(* ------------------------------------------------------------------ *)
(* Compilation context: name -> slot resolution, done exactly once *)

type slot = SInt of int | SFloat of int | SBool of int
type ty = TInt | TFloat | TBool

type ctx = {
  vars : (int, slot) Hashtbl.t;  (* Var.id -> scalar slot *)
  mutable n_int : int;
  mutable n_float : int;
  mutable n_bool : int;
  c_buf_slots : (int, int) Hashtbl.t;
  mutable bufs_rev : (string * string * bool ref) list;
      (* (mangled, display name, external), newest first *)
  mutable n_buf : int;
  c_ufun_slots : (string, int) Hashtbl.t;
  mutable ufuns_rev : string list;
  mutable n_ufun : int;
}

let new_ctx () =
  {
    vars = Hashtbl.create 32;
    n_int = 0;
    n_float = 0;
    n_bool = 0;
    c_buf_slots = Hashtbl.create 16;
    bufs_rev = [];
    n_buf = 0;
    c_ufun_slots = Hashtbl.create 16;
    ufuns_rev = [];
    n_ufun = 0;
  }

(* Scoped variable binding: allocate a fresh slot for [v], compile the scope
   body through [k], then restore whatever [v] meant outside (lowering never
   shadows, but correctness here is one save/restore away, so keep it). *)
let with_var ctx (v : Var.t) ty (k : int -> 'a) : 'a =
  let slot, raw =
    match ty with
    | TInt ->
        let s = ctx.n_int in
        ctx.n_int <- s + 1;
        (SInt s, s)
    | TFloat ->
        let s = ctx.n_float in
        ctx.n_float <- s + 1;
        (SFloat s, s)
    | TBool ->
        let s = ctx.n_bool in
        ctx.n_bool <- s + 1;
        (SBool s, s)
  in
  let prev = Hashtbl.find_opt ctx.vars v.Var.id in
  Hashtbl.replace ctx.vars v.Var.id slot;
  let r = k raw in
  (match prev with
  | Some p -> Hashtbl.replace ctx.vars v.Var.id p
  | None -> Hashtbl.remove ctx.vars v.Var.id);
  r

(* Buffer slot for [v].  [internal] marks Alloc-introduced scratch, which
   needs no binding before run. *)
let buf_slot ?(internal = false) ctx (v : Var.t) : int =
  match Hashtbl.find_opt ctx.c_buf_slots v.Var.id with
  | Some s ->
      if internal then begin
        match List.nth_opt ctx.bufs_rev (ctx.n_buf - 1 - s) with
        | Some (_, _, ext) -> ext := false
        | None -> ()
      end;
      s
  | None ->
      let s = ctx.n_buf in
      ctx.n_buf <- s + 1;
      Hashtbl.add ctx.c_buf_slots v.Var.id s;
      ctx.bufs_rev <- (Var.mangled v, Var.name v, ref (not internal)) :: ctx.bufs_rev;
      s

let ufun_slot ctx name : int =
  match Hashtbl.find_opt ctx.c_ufun_slots name with
  | Some s -> s
  | None ->
      let s = ctx.n_ufun in
      ctx.n_ufun <- s + 1;
      Hashtbl.add ctx.c_ufun_slots name s;
      ctx.ufuns_rev <- name :: ctx.ufuns_rev;
      s

let finalize ctx : layout =
  let bufs = Array.of_list (List.rev ctx.bufs_rev) in
  let buf_by_name = Hashtbl.create (Array.length bufs) in
  Array.iteri
    (fun slot (_, name, ext) ->
      if !ext then
        match Hashtbl.find_opt buf_by_name name with
        | None -> Hashtbl.replace buf_by_name name slot
        | Some _ -> Hashtbl.replace buf_by_name name (-1) (* ambiguous: id-only *))
    bufs;
  {
    n_ints = ctx.n_int;
    n_floats = ctx.n_float;
    n_bools = ctx.n_bool;
    buf_slots = ctx.c_buf_slots;
    buf_by_name;
    buf_names = Array.map (fun (m, _, _) -> m) bufs;
    buf_external = Array.map (fun (_, _, e) -> !e) bufs;
    ufun_slots = ctx.c_ufun_slots;
    ufun_names = Array.of_list (List.rev ctx.ufuns_rev);
  }

(* ------------------------------------------------------------------ *)
(* Expression compilation: staged, unboxed per scalar type *)

type cexpr =
  | CInt of (frame -> int)
  | CFloat of (frame -> float)
  | CBool of (frame -> bool)

let as_int = function
  | CInt f -> f
  | CFloat f -> fun fr -> int_of_float (f fr)
  | CBool _ -> err "expected int, got bool"

let as_float = function
  | CFloat f -> f
  | CInt f -> fun fr -> float_of_int (f fr)
  | CBool _ -> err "expected float, got bool"

let as_bool = function
  | CBool f -> f
  | CInt _ | CFloat _ -> err "expected bool, got a scalar"

(* Slot accesses use unsafe_get/set: indices are compiler-assigned, in range
   by construction.  Buffer element accesses keep explicit bounds checks with
   interpreter-identical error messages. *)

let compile_binop (op : Expr.binop) ca cb : cexpr =
  match (op, ca, cb) with
  | Expr.Add, CInt fa, CInt fb -> CInt (fun fr -> fa fr + fb fr)
  | Expr.Sub, CInt fa, CInt fb -> CInt (fun fr -> fa fr - fb fr)
  | Expr.Mul, CInt fa, CInt fb -> CInt (fun fr -> fa fr * fb fr)
  | Expr.Min, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x <= y then x else y)
  | Expr.Max, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x >= y then x else y)
  | Expr.FloorDiv, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "division by zero"
          else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
          else x / y)
  | Expr.Mod, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "mod by zero"
          else
            let r = x mod y in
            if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | (Expr.FloorDiv | Expr.Mod), _, _ -> err "floordiv/mod on floats"
  | (Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max), _, _ ->
      (* float path; Div is float even on int operands, like the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift f =
        CFloat
          (fun fr ->
            let x = fa fr in
            let y = fb fr in
            fr.flops <- fr.flops + 1;
            f x y)
      in
      (match op with
      | Expr.Add -> lift ( +. )
      | Expr.Sub -> lift ( -. )
      | Expr.Mul -> lift ( *. )
      | Expr.Div -> lift ( /. )
      | Expr.Min -> lift Float.min
      | Expr.Max -> lift Float.max
      | Expr.FloorDiv | Expr.Mod -> assert false)

let compile_cmp (op : Expr.cmpop) ca cb : cexpr =
  match (ca, cb) with
  | CBool _, _ | _, CBool _ -> err "expected int, got bool"
  | (CFloat _, _ | _, CFloat _) ->
      (* Float.compare, not (<): NaN ordering must match the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift test = CBool (fun fr -> test (Float.compare (fa fr) (fb fr)) 0) in
      (match op with
      | Expr.Lt -> lift ( < )
      | Expr.Le -> lift ( <= )
      | Expr.Gt -> lift ( > )
      | Expr.Ge -> lift ( >= )
      | Expr.Eq -> lift ( = )
      | Expr.Ne -> lift ( <> ))
  | CInt fa, CInt fb -> (
      match op with
      | Expr.Lt -> CBool (fun fr -> fa fr < fb fr)
      | Expr.Le -> CBool (fun fr -> fa fr <= fb fr)
      | Expr.Gt -> CBool (fun fr -> fa fr > fb fr)
      | Expr.Ge -> CBool (fun fr -> fa fr >= fb fr)
      | Expr.Eq -> CBool (fun fr -> fa fr = fb fr)
      | Expr.Ne -> CBool (fun fr -> fa fr <> fb fr))

let rec compile_expr ctx (e : Expr.t) : cexpr =
  match e with
  | Int n -> CInt (fun _ -> n)
  | Float f -> CFloat (fun _ -> f)
  | Bool b -> CBool (fun _ -> b)
  | Var v -> (
      match Hashtbl.find_opt ctx.vars v.Var.id with
      | Some (SInt s) -> CInt (fun fr -> Array.unsafe_get fr.ints s)
      | Some (SFloat s) -> CFloat (fun fr -> Array.unsafe_get fr.floats s)
      | Some (SBool s) -> CBool (fun fr -> Array.unsafe_get fr.bools s)
      | None -> err "unbound variable %s" (Var.mangled v))
  | Binop (op, a, b) -> compile_binop op (compile_expr ctx a) (compile_expr ctx b)
  | Cmp (op, a, b) -> compile_cmp op (compile_expr ctx a) (compile_expr ctx b)
  | And (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr && fb fr)
  | Or (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr || fb fr)
  | Not a ->
      let fa = as_bool (compile_expr ctx a) in
      CBool (fun fr -> not (fa fr))
  | Select (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      match (ca, cb) with
      | CInt fa, CInt fb -> CInt (fun fr -> if fc fr then fa fr else fb fr)
      | CBool fa, CBool fb -> CBool (fun fr -> if fc fr then fa fr else fb fr)
      | (CInt _ | CFloat _), (CInt _ | CFloat _) ->
          let fa = as_float ca and fb = as_float cb in
          CFloat (fun fr -> if fc fr then fa fr else fb fr)
      | _ -> err "select branches have mismatched types")
  | Load { buf = v; index } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      CFloat
        (fun fr ->
          fr.loads <- fr.loads + 1;
          let a = Array.unsafe_get fr.fbufs slot in
          let i = fi fr in
          if i < 0 || i >= Array.length a then
            err "load %s[%d] out of bounds (len %d)" name i (Array.length a)
          else Array.unsafe_get a i)
  | Ufun (name, args) -> compile_ufun ctx name args
  | Call (name, args) -> compile_call ctx name args
  | Access { tensor; _ } -> err "unlowered tensor access to %s reached the engine" tensor
  | Let (v, value, body) -> (
      let cv = compile_expr ctx value in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      with_var ctx v ty @@ fun slot ->
      let set : frame -> unit =
        match cv with
        | CInt f -> fun fr -> Array.unsafe_set fr.ints slot (f fr)
        | CFloat f -> fun fr -> Array.unsafe_set fr.floats slot (f fr)
        | CBool f -> fun fr -> Array.unsafe_set fr.bools slot (f fr)
      in
      match compile_expr ctx body with
      | CInt f ->
          CInt
            (fun fr ->
              set fr;
              f fr)
      | CFloat f ->
          CFloat
            (fun fr ->
              set fr;
              f fr)
      | CBool f ->
          CBool
            (fun fr ->
              set fr;
              f fr))

and compile_ufun ctx name args : cexpr =
  let slot = ufun_slot ctx name in
  match args with
  | [ a ] ->
      (* the hot path: one counter bump, one arg, direct table indexing *)
      let fi = as_int (compile_expr ctx a) in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let i = fi fr in
          match Array.unsafe_get fr.ufuns slot with
          | U_table t ->
              if i < 0 || i >= Array.length t then
                err "ufun %s: index %d out of bounds (len %d)" name i (Array.length t)
              else Array.unsafe_get t i
          | U_fn f -> f i
          | U_const n -> n
          | U_gen f -> f [ i ]
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | [] ->
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          match Array.unsafe_get fr.ufuns slot with
          | U_const n -> n
          | U_gen f -> f []
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (0 args)" name
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | args ->
      let fis = List.map (fun a -> as_int (compile_expr ctx a)) args in
      let nargs = List.length args in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let l = List.map (fun f -> f fr) fis in
          match Array.unsafe_get fr.ufuns slot with
          | U_gen f -> f l
          | U_const n -> n
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (%d args)" name nargs
          | U_unbound -> err "unbound uninterpreted function %s" name)

and compile_call ctx name args : cexpr =
  (* intrinsics resolve at compile time; flops+4 per call, like the interp *)
  let cargs = List.map (fun a -> as_float (compile_expr ctx a)) args in
  let unary f =
    match cargs with
    | [ fa ] ->
        CFloat
          (fun fr ->
            fr.flops <- fr.flops + 4;
            f (fa fr))
    | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)
  in
  match name with
  | "exp" -> unary exp
  | "log" -> unary log
  | "sqrt" -> unary sqrt
  | "tanh" -> unary tanh
  | "erf" -> unary Interp.erf_approx
  | "relu" -> unary (Float.max 0.0)
  | "neg_infinity" -> (
      match cargs with
      | [] ->
          CFloat
            (fun fr ->
              fr.flops <- fr.flops + 4;
              neg_infinity)
      | _ -> err "unknown intrinsic %s/%d" name (List.length cargs))
  | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)

(* ------------------------------------------------------------------ *)
(* Statement compilation *)

(* Parallel chunk execution.  Mirrors Interp.exec_multicore: scalar state is
   copied per chunk (loop writes to disjoint buffer locations, per the
   Parallel-binding contract), the buffer slot table is shallow-copied so
   Alloc scratch stays chunk-local, and per-chunk counters fold into the
   parent through atomics — totals are exactly those of a serial run. *)
let run_parallel pool (fr : frame) slot m n (cbody : frame -> unit) =
  let loads = Atomic.make 0 and stores = Atomic.make 0 and flops = Atomic.make 0 in
  let indirect = Atomic.make 0 and guards = Atomic.make 0 and guard_hits = Atomic.make 0 in
  let chunks = min n (Pool.parallelism pool * 4) in
  let csize = (n + chunks - 1) / chunks in
  let ti = Array.copy fr.ints
  and tf = Array.copy fr.floats
  and tb = Array.copy fr.bools in
  Pool.run pool ~chunks (fun c ->
      let lo = m + (c * csize) in
      let hi = min (m + n - 1) (lo + csize - 1) in
      if lo <= hi then begin
        let w =
          {
            fr with
            ints = Array.copy ti;
            floats = Array.copy tf;
            bools = Array.copy tb;
            fbufs = Array.copy fr.fbufs;
            pool = None (* no nested parallelism, like exec_multicore *);
            loads = 0;
            stores = 0;
            flops = 0;
            indirect = 0;
            guards = 0;
            guard_hits = 0;
          }
        in
        for i = lo to hi do
          Array.unsafe_set w.ints slot i;
          cbody w
        done;
        ignore (Atomic.fetch_and_add loads w.loads);
        ignore (Atomic.fetch_and_add stores w.stores);
        ignore (Atomic.fetch_and_add flops w.flops);
        ignore (Atomic.fetch_and_add indirect w.indirect);
        ignore (Atomic.fetch_and_add guards w.guards);
        ignore (Atomic.fetch_and_add guard_hits w.guard_hits)
      end);
  fr.loads <- fr.loads + Atomic.get loads;
  fr.stores <- fr.stores + Atomic.get stores;
  fr.flops <- fr.flops + Atomic.get flops;
  fr.indirect <- fr.indirect + Atomic.get indirect;
  fr.guards <- fr.guards + Atomic.get guards;
  fr.guard_hits <- fr.guard_hits + Atomic.get guard_hits

(* [par_ok] tracks which Parallel loops Interp.exec_multicore would actually
   parallelize: those reachable through For / Let_stmt / Seq only.  Bodies
   of parallel loops, If branches and Alloc bodies execute serially there,
   so they compile with par_ok = false here — keeping the engine's execution
   structure (and hence its soundness obligations) identical. *)
let rec compile_stmt ctx ~par_ok (s : Stmt.t) : frame -> unit =
  match s with
  | For { var; min; extent; kind; body } ->
      let fm = as_int (compile_expr ctx min) in
      let fn = as_int (compile_expr ctx extent) in
      let par = par_ok && (match kind with Stmt.Parallel -> true | _ -> false) in
      with_var ctx var TInt @@ fun slot ->
      let cbody = compile_stmt ctx ~par_ok:(par_ok && not par) body in
      if par then
        fun fr ->
          let m = fm fr in
          let n = fn fr in
          (match fr.pool with
          | Some p when n > 1 && Pool.parallelism p > 1 -> run_parallel p fr slot m n cbody
          | _ ->
              for i = m to m + n - 1 do
                Array.unsafe_set fr.ints slot i;
                cbody fr
              done)
      else
        fun fr ->
          let m = fm fr in
          let n = fn fr in
          for i = m to m + n - 1 do
            Array.unsafe_set fr.ints slot i;
            cbody fr
          done
  | Let_stmt (v, e, body) -> (
      let cv = compile_expr ctx e in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      with_var ctx v ty @@ fun slot ->
      let cbody = compile_stmt ctx ~par_ok body in
      match cv with
      | CInt f ->
          fun fr ->
            Array.unsafe_set fr.ints slot (f fr);
            cbody fr
      | CFloat f ->
          fun fr ->
            Array.unsafe_set fr.floats slot (f fr);
            cbody fr
      | CBool f ->
          fun fr ->
            Array.unsafe_set fr.bools slot (f fr);
            cbody fr)
  | Store { buf = v; index; value } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      fun fr ->
        fr.stores <- fr.stores + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else Array.unsafe_set a i (fv fr)
  | Reduce_store { buf = v; index; value; op } -> (
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      let reduce combine fr =
        fr.stores <- fr.stores + 1;
        fr.flops <- fr.flops + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else
          (* value first, then the current cell — interpreter order *)
          let x = fv fr in
          let cur = Array.unsafe_get a i in
          Array.unsafe_set a i (combine cur x)
      in
      match op with
      | Stmt.Sum ->
          fun fr ->
            fr.stores <- fr.stores + 1;
            fr.flops <- fr.flops + 1;
            let a = Array.unsafe_get fr.fbufs slot in
            let i = fi fr in
            if i < 0 || i >= Array.length a then
              err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
            else
              let x = fv fr in
              Array.unsafe_set a i (Array.unsafe_get a i +. x)
      | Stmt.Prod -> reduce ( *. )
      | Stmt.Rmax -> reduce Float.max
      | Stmt.Rmin -> reduce Float.min)
  | If (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_stmt ctx ~par_ok:false a in
      match Option.map (compile_stmt ctx ~par_ok:false) b with
      | None ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
      | Some cb ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
            else cb fr)
  | Seq l -> (
      match List.map (compile_stmt ctx ~par_ok) l with
      | [] -> fun _ -> ()
      | [ c ] -> c
      | [ c1; c2 ] ->
          fun fr ->
            c1 fr;
            c2 fr
      | cs ->
          let arr = Array.of_list cs in
          let n = Array.length arr in
          fun fr ->
            for i = 0 to n - 1 do
              (Array.unsafe_get arr i) fr
            done)
  | Alloc { buf = v; size; body } ->
      let fn = as_int (compile_expr ctx size) in
      let slot = buf_slot ~internal:true ctx v in
      let cbody = compile_stmt ctx ~par_ok:false body in
      fun fr ->
        let n = fn fr in
        Array.unsafe_set fr.fbufs slot (Array.make n 0.0);
        cbody fr
  | Eval e -> (
      match compile_expr ctx e with
      | CInt f -> fun fr -> ignore (f fr)
      | CFloat f -> fun fr -> ignore (f fr)
      | CBool f -> fun fr -> ignore (f fr))
  | Nop -> fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Public API *)

let compile (s : Stmt.t) : compiled =
  let ctx = new_ctx () in
  let entry = compile_stmt ctx ~par_ok:true s in
  { c_layout = finalize ctx; c_entry = entry }

let slot_count c = c.c_layout.n_ints + c.c_layout.n_floats + c.c_layout.n_bools

let frame (c : compiled) : frame =
  let l = c.c_layout in
  let nbufs = Array.length l.buf_names in
  {
    layout = l;
    entry = c.c_entry;
    ints = Array.make (max 1 l.n_ints) 0;
    floats = Array.make (max 1 l.n_floats) 0.0;
    bools = Array.make (max 1 l.n_bools) false;
    fbufs = Array.make (max 1 nbufs) [||];
    buf_bound = Array.make (max 1 nbufs) false;
    ufuns = Array.make (max 1 (Array.length l.ufun_names)) U_unbound;
    pool = None;
    loads = 0;
    stores = 0;
    flops = 0;
    indirect = 0;
    guards = 0;
    guard_hits = 0;
  }

let bind_buf fr (v : Var.t) (b : Buffer.t) =
  let slot =
    match Hashtbl.find_opt fr.layout.buf_slots v.Var.id with
    | Some s -> Some s
    | None -> (
        (* alpha-equivalent rebind: same display name, fresh var id *)
        match Hashtbl.find_opt fr.layout.buf_by_name (Var.name v) with
        | Some s when s >= 0 -> Some s
        | _ -> None)
  in
  match slot with
  | None -> () (* this kernel never touches that tensor *)
  | Some slot -> (
      match b with
      | Buffer.F a ->
          fr.fbufs.(slot) <- a;
          fr.buf_bound.(slot) <- true
      | Buffer.I _ -> err "engine: integer buffer %s unsupported" (Var.mangled v))

let bind_ufun_binding fr name u =
  match Hashtbl.find_opt fr.layout.ufun_slots name with
  | None -> () (* this kernel never calls that ufun *)
  | Some slot -> fr.ufuns.(slot) <- u

let bind_ufun_table fr name a = bind_ufun_binding fr name (U_table a)
let bind_ufun1 fr name f = bind_ufun_binding fr name (U_fn f)
let bind_ufun_const fr name n = bind_ufun_binding fr name (U_const n)
let bind_ufun fr name f = bind_ufun_binding fr name (U_gen f)

let run ?pool (fr : frame) : unit =
  let l = fr.layout in
  Array.iteri
    (fun i ext -> if ext && not fr.buf_bound.(i) then err "unbound buffer %s" l.buf_names.(i))
    l.buf_external;
  Array.iteri
    (fun i name ->
      match fr.ufuns.(i) with
      | U_unbound -> err "unbound uninterpreted function %s" name
      | _ -> ())
    l.ufun_names;
  fr.pool <- pool;
  Fun.protect ~finally:(fun () -> fr.pool <- None) (fun () -> fr.entry fr)

let stats fr =
  [
    ("loads", fr.loads);
    ("stores", fr.stores);
    ("flops", fr.flops);
    ("indirect", fr.indirect);
    ("guards", fr.guards);
    ("guard_hits", fr.guard_hits);
  ]

let flush_metrics fr =
  Obs.Metrics.add (Obs.Metrics.counter "engine.loads") fr.loads;
  Obs.Metrics.add (Obs.Metrics.counter "engine.stores") fr.stores;
  Obs.Metrics.add (Obs.Metrics.counter "engine.flops") fr.flops;
  Obs.Metrics.add (Obs.Metrics.counter "engine.indirect") fr.indirect;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guards") fr.guards;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guard_hits") fr.guard_hits
