open Ir

(* Compiled execution engine.  See engine.mli for the contract; the key
   invariant maintained throughout this file is *interpreter parity*: for
   every IR node the compiled closure performs the same stores, the same
   bounds checks and the same counter bumps, in the same order, as the
   corresponding branch of Interp.eval / Interp.exec — that is what makes
   the differential fuzz in test/test_engine.ml meaningful. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Persistent domain pool *)

module Pool = struct
  (* One job = one chunked parallel-for.  The atomics live in the job, not
     the pool: a worker that wakes up late simply finds every chunk of the
     old job already claimed and goes back to waiting, so there is no
     generation race on shared counters. *)
  type job = {
    f : int -> unit;
    chunks : int;
    next : int Atomic.t;  (* next chunk index to claim *)
    remaining : int Atomic.t;  (* chunks not yet finished *)
  }

  type t = {
    mutex : Mutex.t;
    work : Condition.t;  (* a new job was published *)
    done_ : Condition.t;  (* a job's last chunk finished *)
    mutable job : job option;
    mutable generation : int;
    mutable stop : bool;
    mutable error : exn option;
    mutable domains : unit Domain.t list;
    parallelism : int;
  }

  let parallelism t = t.parallelism

  let drain t (j : job) =
    let rec loop () =
      let c = Atomic.fetch_and_add j.next 1 in
      if c < j.chunks then begin
        (try j.f c
         with e ->
           Mutex.lock t.mutex;
           (match t.error with None -> t.error <- Some e | Some _ -> ());
           Mutex.unlock t.mutex);
        (* decrement *after* the handler so an exception can't hang [run] *)
        let left = Atomic.fetch_and_add j.remaining (-1) - 1 in
        if left = 0 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex
        end;
        loop ()
      end
    in
    loop ()

  let worker t =
    let last_gen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while (not t.stop) && t.generation = !last_gen do
        Condition.wait t.work t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        last_gen := t.generation;
        let j = t.job in
        Mutex.unlock t.mutex;
        (match j with Some j -> drain t j | None -> ());
        loop ()
      end
    in
    loop ()

  let create ?(domains = 4) () =
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        error = None;
        domains = [];
        parallelism = max 1 domains;
      }
    in
    t.domains <-
      List.init (max 0 (domains - 1)) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let run t ~chunks (f : int -> unit) =
    if chunks > 0 then begin
      let j = { f; chunks; next = Atomic.make 0; remaining = Atomic.make chunks } in
      Mutex.lock t.mutex;
      t.error <- None;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: total parallelism = domains *)
      drain t j;
      Mutex.lock t.mutex;
      while Atomic.get j.remaining > 0 do
        Condition.wait t.done_ t.mutex
      done;
      let e = t.error in
      t.job <- None;
      t.error <- None;
      Mutex.unlock t.mutex;
      match e with Some e -> raise e | None -> ()
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* ------------------------------------------------------------------ *)
(* Frames *)

type ufun_binding =
  | U_unbound
  | U_table of int array  (* prelude table: direct indexing *)
  | U_fn of (int -> int)  (* length function *)
  | U_const of int  (* prelude scalar: any arity, like (fun _ -> n) *)
  | U_gen of (int list -> int)

type layout = {
  n_ints : int;
  n_floats : int;
  n_bools : int;
  buf_slots : (int, int) Hashtbl.t;  (* Var.id -> fbuf slot *)
  buf_by_name : (string, int) Hashtbl.t;
      (* display name -> external slot; -1 when the name is ambiguous.
         Compiled kernels are shared across alpha-equivalent bodies (the
         Sig-keyed memo), whose buffer vars carry fresh ids but the same
         deterministic display names — name lookup is the fallback that
         lets a cached kernel be re-bound to another build's tensors. *)
  buf_names : string array;  (* slot -> mangled name, for errors *)
  buf_external : bool array;  (* slot must be bound before run *)
  ufun_slots : (string, int) Hashtbl.t;
  ufun_names : string array;
}

type frame = {
  layout : layout;
  entry : frame -> unit;
  ints : int array;
  floats : float array;
  bools : bool array;
  fbufs : float array array;
  buf_bound : bool array;
  ufuns : ufun_binding array;
  mutable pool : Pool.t option;
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable indirect : int;
  mutable guards : int;
  mutable guard_hits : int;
  mutable hoisted : int;  (** evaluations of LICM-hoisted preheader bindings *)
  mutable microkernel_elems : int;  (** elements processed by fused microkernels *)
}

type compiled = { c_layout : layout; c_entry : frame -> unit }

(* ------------------------------------------------------------------ *)
(* Compilation context: name -> slot resolution, done exactly once *)

type slot = SInt of int | SFloat of int | SBool of int
type ty = TInt | TFloat | TBool

type ctx = {
  opt : int;
  (* optimization level: 0 none, 1 +strength reduction, 2 +microkernels,
     3 +stride-specialized / register-tiled microkernel variants *)
  vars : (int, slot) Hashtbl.t;  (* Var.id -> scalar slot *)
  mutable n_int : int;
  mutable n_float : int;
  mutable n_bool : int;
  c_buf_slots : (int, int) Hashtbl.t;
  mutable bufs_rev : (string * string * bool ref) list;
      (* (mangled, display name, external), newest first *)
  mutable n_buf : int;
  c_ufun_slots : (string, int) Hashtbl.t;
  mutable ufuns_rev : string list;
  mutable n_ufun : int;
}

let new_ctx ?(opt = 0) () =
  {
    opt;
    vars = Hashtbl.create 32;
    n_int = 0;
    n_float = 0;
    n_bool = 0;
    c_buf_slots = Hashtbl.create 16;
    bufs_rev = [];
    n_buf = 0;
    c_ufun_slots = Hashtbl.create 16;
    ufuns_rev = [];
    n_ufun = 0;
  }

(* Scoped variable binding: allocate a fresh slot for [v], compile the scope
   body through [k], then restore whatever [v] meant outside (lowering never
   shadows, but correctness here is one save/restore away, so keep it). *)
let with_var ctx (v : Var.t) ty (k : int -> 'a) : 'a =
  let slot, raw =
    match ty with
    | TInt ->
        let s = ctx.n_int in
        ctx.n_int <- s + 1;
        (SInt s, s)
    | TFloat ->
        let s = ctx.n_float in
        ctx.n_float <- s + 1;
        (SFloat s, s)
    | TBool ->
        let s = ctx.n_bool in
        ctx.n_bool <- s + 1;
        (SBool s, s)
  in
  let prev = Hashtbl.find_opt ctx.vars v.Var.id in
  Hashtbl.replace ctx.vars v.Var.id slot;
  let r = k raw in
  (match prev with
  | Some p -> Hashtbl.replace ctx.vars v.Var.id p
  | None -> Hashtbl.remove ctx.vars v.Var.id);
  r

(* Buffer slot for [v].  [internal] marks Alloc-introduced scratch, which
   needs no binding before run. *)
let buf_slot ?(internal = false) ctx (v : Var.t) : int =
  match Hashtbl.find_opt ctx.c_buf_slots v.Var.id with
  | Some s ->
      if internal then begin
        match List.nth_opt ctx.bufs_rev (ctx.n_buf - 1 - s) with
        | Some (_, _, ext) -> ext := false
        | None -> ()
      end;
      s
  | None ->
      let s = ctx.n_buf in
      ctx.n_buf <- s + 1;
      Hashtbl.add ctx.c_buf_slots v.Var.id s;
      ctx.bufs_rev <- (Var.mangled v, Var.name v, ref (not internal)) :: ctx.bufs_rev;
      s

let ufun_slot ctx name : int =
  match Hashtbl.find_opt ctx.c_ufun_slots name with
  | Some s -> s
  | None ->
      let s = ctx.n_ufun in
      ctx.n_ufun <- s + 1;
      Hashtbl.add ctx.c_ufun_slots name s;
      ctx.ufuns_rev <- name :: ctx.ufuns_rev;
      s

let finalize ctx : layout =
  let bufs = Array.of_list (List.rev ctx.bufs_rev) in
  let buf_by_name = Hashtbl.create (Array.length bufs) in
  Array.iteri
    (fun slot (_, name, ext) ->
      if !ext then
        match Hashtbl.find_opt buf_by_name name with
        | None -> Hashtbl.replace buf_by_name name slot
        | Some _ -> Hashtbl.replace buf_by_name name (-1) (* ambiguous: id-only *))
    bufs;
  {
    n_ints = ctx.n_int;
    n_floats = ctx.n_float;
    n_bools = ctx.n_bool;
    buf_slots = ctx.c_buf_slots;
    buf_by_name;
    buf_names = Array.map (fun (m, _, _) -> m) bufs;
    buf_external = Array.map (fun (_, _, e) -> !e) bufs;
    ufun_slots = ctx.c_ufun_slots;
    ufun_names = Array.of_list (List.rev ctx.ufuns_rev);
  }

(* ------------------------------------------------------------------ *)
(* Expression compilation: staged, unboxed per scalar type *)

type cexpr =
  | CInt of (frame -> int)
  | CFloat of (frame -> float)
  | CBool of (frame -> bool)

let as_int = function
  | CInt f -> f
  | CFloat f -> fun fr -> int_of_float (f fr)
  | CBool _ -> err "expected int, got bool"

let as_float = function
  | CFloat f -> f
  | CInt f -> fun fr -> float_of_int (f fr)
  | CBool _ -> err "expected float, got bool"

let as_bool = function
  | CBool f -> f
  | CInt _ | CFloat _ -> err "expected bool, got a scalar"

(* Slot accesses use unsafe_get/set: indices are compiler-assigned, in range
   by construction.  Buffer element accesses keep explicit bounds checks with
   interpreter-identical error messages. *)

let compile_binop (op : Expr.binop) ca cb : cexpr =
  match (op, ca, cb) with
  | Expr.Add, CInt fa, CInt fb -> CInt (fun fr -> fa fr + fb fr)
  | Expr.Sub, CInt fa, CInt fb -> CInt (fun fr -> fa fr - fb fr)
  | Expr.Mul, CInt fa, CInt fb -> CInt (fun fr -> fa fr * fb fr)
  | Expr.Min, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x <= y then x else y)
  | Expr.Max, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x >= y then x else y)
  | Expr.FloorDiv, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "division by zero"
          else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
          else x / y)
  | Expr.Mod, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "mod by zero"
          else
            let r = x mod y in
            if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | (Expr.FloorDiv | Expr.Mod), _, _ -> err "floordiv/mod on floats"
  | (Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max), _, _ ->
      (* float path; Div is float even on int operands, like the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift f =
        CFloat
          (fun fr ->
            let x = fa fr in
            let y = fb fr in
            fr.flops <- fr.flops + 1;
            f x y)
      in
      (match op with
      | Expr.Add -> lift ( +. )
      | Expr.Sub -> lift ( -. )
      | Expr.Mul -> lift ( *. )
      | Expr.Div -> lift ( /. )
      | Expr.Min -> lift Float.min
      | Expr.Max -> lift Float.max
      | Expr.FloorDiv | Expr.Mod -> assert false)

let compile_cmp (op : Expr.cmpop) ca cb : cexpr =
  match (ca, cb) with
  | CBool _, _ | _, CBool _ -> err "expected int, got bool"
  | (CFloat _, _ | _, CFloat _) ->
      (* Float.compare, not (<): NaN ordering must match the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift test = CBool (fun fr -> test (Float.compare (fa fr) (fb fr)) 0) in
      (match op with
      | Expr.Lt -> lift ( < )
      | Expr.Le -> lift ( <= )
      | Expr.Gt -> lift ( > )
      | Expr.Ge -> lift ( >= )
      | Expr.Eq -> lift ( = )
      | Expr.Ne -> lift ( <> ))
  | CInt fa, CInt fb -> (
      match op with
      | Expr.Lt -> CBool (fun fr -> fa fr < fb fr)
      | Expr.Le -> CBool (fun fr -> fa fr <= fb fr)
      | Expr.Gt -> CBool (fun fr -> fa fr > fb fr)
      | Expr.Ge -> CBool (fun fr -> fa fr >= fb fr)
      | Expr.Eq -> CBool (fun fr -> fa fr = fb fr)
      | Expr.Ne -> CBool (fun fr -> fa fr <> fb fr))

let rec compile_expr ctx (e : Expr.t) : cexpr =
  match e with
  | Int n -> CInt (fun _ -> n)
  | Float f -> CFloat (fun _ -> f)
  | Bool b -> CBool (fun _ -> b)
  | Var v -> (
      match Hashtbl.find_opt ctx.vars v.Var.id with
      | Some (SInt s) -> CInt (fun fr -> Array.unsafe_get fr.ints s)
      | Some (SFloat s) -> CFloat (fun fr -> Array.unsafe_get fr.floats s)
      | Some (SBool s) -> CBool (fun fr -> Array.unsafe_get fr.bools s)
      | None -> err "unbound variable %s" (Var.mangled v))
  | Binop (op, a, b) -> compile_binop op (compile_expr ctx a) (compile_expr ctx b)
  | Cmp (op, a, b) -> compile_cmp op (compile_expr ctx a) (compile_expr ctx b)
  | And (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr && fb fr)
  | Or (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr || fb fr)
  | Not a ->
      let fa = as_bool (compile_expr ctx a) in
      CBool (fun fr -> not (fa fr))
  | Select (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      match (ca, cb) with
      | CInt fa, CInt fb -> CInt (fun fr -> if fc fr then fa fr else fb fr)
      | CBool fa, CBool fb -> CBool (fun fr -> if fc fr then fa fr else fb fr)
      | (CInt _ | CFloat _), (CInt _ | CFloat _) ->
          let fa = as_float ca and fb = as_float cb in
          CFloat (fun fr -> if fc fr then fa fr else fb fr)
      | _ -> err "select branches have mismatched types")
  | Load { buf = v; index } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      CFloat
        (fun fr ->
          fr.loads <- fr.loads + 1;
          let a = Array.unsafe_get fr.fbufs slot in
          let i = fi fr in
          if i < 0 || i >= Array.length a then
            err "load %s[%d] out of bounds (len %d)" name i (Array.length a)
          else Array.unsafe_get a i)
  | Ufun (name, args) -> compile_ufun ctx name args
  | Call (name, args) -> compile_call ctx name args
  | Access { tensor; _ } -> err "unlowered tensor access to %s reached the engine" tensor
  | Let (v, value, body) -> (
      let cv = compile_expr ctx value in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      with_var ctx v ty @@ fun slot ->
      let set : frame -> unit =
        match cv with
        | CInt f -> fun fr -> Array.unsafe_set fr.ints slot (f fr)
        | CFloat f -> fun fr -> Array.unsafe_set fr.floats slot (f fr)
        | CBool f -> fun fr -> Array.unsafe_set fr.bools slot (f fr)
      in
      match compile_expr ctx body with
      | CInt f ->
          CInt
            (fun fr ->
              set fr;
              f fr)
      | CFloat f ->
          CFloat
            (fun fr ->
              set fr;
              f fr)
      | CBool f ->
          CBool
            (fun fr ->
              set fr;
              f fr))

and compile_ufun ctx name args : cexpr =
  let slot = ufun_slot ctx name in
  match args with
  | [ a ] ->
      (* the hot path: one counter bump, one arg, direct table indexing *)
      let fi = as_int (compile_expr ctx a) in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let i = fi fr in
          match Array.unsafe_get fr.ufuns slot with
          | U_table t ->
              if i < 0 || i >= Array.length t then
                err "ufun %s: index %d out of bounds (len %d)" name i (Array.length t)
              else Array.unsafe_get t i
          | U_fn f -> f i
          | U_const n -> n
          | U_gen f -> f [ i ]
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | [] ->
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          match Array.unsafe_get fr.ufuns slot with
          | U_const n -> n
          | U_gen f -> f []
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (0 args)" name
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | args ->
      let fis = List.map (fun a -> as_int (compile_expr ctx a)) args in
      let nargs = List.length args in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let l = List.map (fun f -> f fr) fis in
          match Array.unsafe_get fr.ufuns slot with
          | U_gen f -> f l
          | U_const n -> n
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (%d args)" name nargs
          | U_unbound -> err "unbound uninterpreted function %s" name)

and compile_call ctx name args : cexpr =
  (* intrinsics resolve at compile time; flops+4 per call, like the interp *)
  let cargs = List.map (fun a -> as_float (compile_expr ctx a)) args in
  let unary f =
    match cargs with
    | [ fa ] ->
        CFloat
          (fun fr ->
            fr.flops <- fr.flops + 4;
            f (fa fr))
    | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)
  in
  match name with
  | "exp" -> unary exp
  | "log" -> unary log
  | "sqrt" -> unary sqrt
  | "tanh" -> unary tanh
  | "erf" -> unary Interp.erf_approx
  | "relu" -> unary (Float.max 0.0)
  | "neg_infinity" -> (
      match cargs with
      | [] ->
          CFloat
            (fun fr ->
              fr.flops <- fr.flops + 4;
              neg_infinity)
      | _ -> err "unknown intrinsic %s/%d" name (List.length cargs))
  | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)

(* ------------------------------------------------------------------ *)
(* Statement compilation *)

(* Chunk boundaries balancing per-iteration [weights] across [k] chunks:
   returns [k + 1] nondecreasing offsets with [bounds.(0) = 0] and
   [bounds.(k) = n]; every chunk is contiguous and (for k <= n) nonempty.
   Greedy by weight prefix: cut as soon as a chunk's proportional quota is
   met, while always leaving at least one iteration per remaining chunk —
   so one heavily ragged row cannot drag the whole tail into one chunk. *)
let balance_chunks (ws : int array) k : int array =
  let n = Array.length ws in
  let k = max 1 (min k n) in
  let total = max 1 (Array.fold_left ( + ) 0 ws) in
  let bounds = Array.make (k + 1) n in
  bounds.(0) <- 0;
  let c = ref 1 and acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + ws.(i);
    while
      !c < k && !acc * k >= !c * total && n - (i + 1) >= k - !c && bounds.(!c - 1) <= i
    do
      bounds.(!c) <- i + 1;
      incr c
    done
  done;
  while !c < k do
    bounds.(!c) <- max bounds.(!c - 1) (n - (k - !c));
    incr c
  done;
  bounds

(* Parallel chunk execution.  Mirrors Interp.exec_multicore: scalar state is
   copied per chunk (loop writes to disjoint buffer locations, per the
   Parallel-binding contract), the buffer slot table is shallow-copied so
   Alloc scratch stays chunk-local, and per-chunk counters fold into the
   parent through atomics — totals are exactly those of a serial run.

   Chunks are sized by [est] (a per-iteration cost estimate compiled from
   the loop body) when available, so a handful of long ragged rows no
   longer starves the other domains; without an estimate the split is by
   iteration count, as before.  The estimate runs on a scratch view of the
   frame whose counters are discarded — chunking must never perturb the
   statistics. *)
let run_parallel pool (fr : frame) slot m n ?est (cbody : frame -> unit) =
  let loads = Atomic.make 0 and stores = Atomic.make 0 and flops = Atomic.make 0 in
  let indirect = Atomic.make 0 and guards = Atomic.make 0 and guard_hits = Atomic.make 0 in
  let hoisted = Atomic.make 0 and mk_elems = Atomic.make 0 in
  let chunks = min n (Pool.parallelism pool * 4) in
  let bounds =
    match est with
    | None ->
        let csize = (n + chunks - 1) / chunks in
        Array.init (chunks + 1) (fun c -> min n (c * csize))
    | Some est ->
        let sfr = { fr with loads = 0 } in
        let ws =
          Array.init n (fun j ->
              Array.unsafe_set sfr.ints slot (m + j);
              try max 1 (est sfr) with _ -> 1)
        in
        balance_chunks ws chunks
  in
  let ti = Array.copy fr.ints
  and tf = Array.copy fr.floats
  and tb = Array.copy fr.bools in
  Pool.run pool ~chunks (fun c ->
      let lo = m + bounds.(c) in
      let hi = m + bounds.(c + 1) - 1 in
      if lo <= hi then begin
        let w =
          {
            fr with
            ints = Array.copy ti;
            floats = Array.copy tf;
            bools = Array.copy tb;
            fbufs = Array.copy fr.fbufs;
            pool = None (* no nested parallelism, like exec_multicore *);
            loads = 0;
            stores = 0;
            flops = 0;
            indirect = 0;
            guards = 0;
            guard_hits = 0;
            hoisted = 0;
            microkernel_elems = 0;
          }
        in
        for i = lo to hi do
          Array.unsafe_set w.ints slot i;
          cbody w
        done;
        ignore (Atomic.fetch_and_add loads w.loads);
        ignore (Atomic.fetch_and_add stores w.stores);
        ignore (Atomic.fetch_and_add flops w.flops);
        ignore (Atomic.fetch_and_add indirect w.indirect);
        ignore (Atomic.fetch_and_add guards w.guards);
        ignore (Atomic.fetch_and_add guard_hits w.guard_hits);
        ignore (Atomic.fetch_and_add hoisted w.hoisted);
        ignore (Atomic.fetch_and_add mk_elems w.microkernel_elems)
      end);
  fr.loads <- fr.loads + Atomic.get loads;
  fr.stores <- fr.stores + Atomic.get stores;
  fr.flops <- fr.flops + Atomic.get flops;
  fr.indirect <- fr.indirect + Atomic.get indirect;
  fr.guards <- fr.guards + Atomic.get guards;
  fr.guard_hits <- fr.guard_hits + Atomic.get guard_hits;
  fr.hoisted <- fr.hoisted + Atomic.get hoisted;
  fr.microkernel_elems <- fr.microkernel_elems + Atomic.get mk_elems

(* ------------------------------------------------------------------ *)
(* Microkernels (opt >= 2).  An innermost loop whose body matches one of
   the Optimize.classify_inner shapes compiles to a tight float-array loop
   with running (strength-reduced) offsets and a register accumulator — no
   per-element slot traffic, no per-element closure calls, no per-element
   bounds checks.  Bitwise parity holds because the float operation
   sequence is exactly the interpreter's: reductions combine into the same
   cell in the same order (kept in a register, legal because nothing else
   reads or writes the cell mid-loop — enforced by the dst/src aliasing
   dispatch), and element-wise loops process elements in the same order.
   Bounds checks are hoisted to block entry, once per (m, n) block and
   before variant dispatch: a linear index sequence is in bounds iff its
   two endpoints are (divergence only on error paths).  Counters are
   bulk-added with the same totals; [microkernel_elems] records how many
   elements took this path.

   At opt >= 3 the loop body is selected from the Microkernel registry
   when the closure is built — Optimize.classify_stride decides between
   the unit-stride (unrolled / Array.blit) and strided variants, and
   Optimize.classify_nest upgrades a two-deep dot nest to the
   register-tiled kernel.  The generic opt-2 loop remains the fallback
   for aliased destinations.  Each kernel keeps one order-preserving
   accumulator chain per destination element (unrolling never
   reassociates a chain), so outputs stay bitwise-identical. *)

let check_lin ~what ~name arr i0 i1 =
  let lo = if i0 <= i1 then i0 else i1 in
  let hi = if i0 <= i1 then i1 else i0 in
  if lo < 0 || hi >= Array.length arr then
    err "%s %s[%d] out of bounds (len %d)" what name
      (if lo < 0 then lo else hi)
      (Array.length arr)

let combine_of = function
  | Stmt.Sum -> ( +. )
  | Stmt.Prod -> ( *. )
  | Stmt.Rmax -> Float.max
  | Stmt.Rmin -> Float.min

(* Shared Sum dispatch for the reduction microkernels: [None] selects the
   Sum fast path (a direct [+.] loop, no per-element closure call),
   [Some combine] the general loop.  One dispatch point shared by the Dot
   and Reduce1 patterns instead of a per-pattern [is_sum] split; bitwise
   transparent because [combine_of Sum] is [( +. )]. *)
let sum_fast = function Stmt.Sum -> None | op -> Some (combine_of op)

let compile_affine ctx (ax : Optimize.affine) =
  (as_int (compile_expr ctx ax.Optimize.base), as_int (compile_expr ctx ax.Optimize.stride))

(* Variant-selection accounting: [engine.mk_variant.<name>] counts how
   many compiled loops bound each microkernel variant.  Bumped once at
   closure-build time — where selection happens — never per call. *)
let note_variant name =
  Obs.Metrics.incr (Obs.Metrics.counter ("engine.mk_variant." ^ name))

(* [emit_inner ctx pattern] returns [fallback -> frame -> m -> n -> unit];
   the fallback (the generic compiled loop) runs when the destination
   aliases an input, where register accumulation would diverge.  Callers
   guarantee n > 0.  The per-block wrapper always does the same three
   things in order — aliasing dispatch, hoisted endpoint bounds checks,
   then the variant body selected at closure-build time — followed by the
   bulk counter update. *)
let emit_inner ctx (p : Optimize.inner) :
    (frame -> int -> int -> unit) -> frame -> int -> int -> unit =
  match p with
  | Optimize.Dot { dst; dst_idx; op; a; a_ix; b; b_ix } ->
      let dslot = buf_slot ctx dst and aslot = buf_slot ctx a and bslot = buf_slot ctx b in
      let dname = Var.mangled dst and aname = Var.mangled a and bname = Var.mangled b in
      let fdi = as_int (compile_expr ctx dst_idx) in
      let fab, fas = compile_affine ctx a_ix in
      let fbb, fbs = compile_affine ctx b_ix in
      let sum = sum_fast op in
      let body : float array -> float array -> float array -> int -> int -> int -> int -> int -> int -> unit =
        if ctx.opt >= 3 then
          match (sum, Optimize.classify_stride a_ix, Optimize.classify_stride b_ix) with
          | None, Optimize.S_unit, Optimize.S_unit ->
              note_variant "dot.sum_u4";
              fun darr aarr barr di a0 _astep b0 _bstep n ->
                Array.unsafe_set darr di
                  (Microkernel.dot_sum_unit ~a:aarr ~a0 ~b:barr ~b0 ~n
                     ~init:(Array.unsafe_get darr di))
          | None, _, _ ->
              note_variant "dot.sum_s4";
              fun darr aarr barr di a0 astep b0 bstep n ->
                Array.unsafe_set darr di
                  (Microkernel.dot_sum_strided ~a:aarr ~a0 ~astep ~b:barr ~b0 ~bstep ~n
                     ~init:(Array.unsafe_get darr di))
          | Some combine, _, _ ->
              note_variant "dot.combine_s";
              fun darr aarr barr di a0 astep b0 bstep n ->
                Array.unsafe_set darr di
                  (Microkernel.dot_strided ~combine ~a:aarr ~a0 ~astep ~b:barr ~b0 ~bstep
                     ~n ~init:(Array.unsafe_get darr di))
        else begin
          note_variant "dot.generic";
          match sum with
          | None ->
              fun darr aarr barr di a0 astep b0 bstep n ->
                let acc = ref (Array.unsafe_get darr di) in
                let ai = ref a0 and bi = ref b0 in
                for _ = 1 to n do
                  acc := !acc +. (Array.unsafe_get aarr !ai *. Array.unsafe_get barr !bi);
                  ai := !ai + astep;
                  bi := !bi + bstep
                done;
                Array.unsafe_set darr di !acc
          | Some combine ->
              fun darr aarr barr di a0 astep b0 bstep n ->
                let acc = ref (Array.unsafe_get darr di) in
                let ai = ref a0 and bi = ref b0 in
                for _ = 1 to n do
                  acc := combine !acc (Array.unsafe_get aarr !ai *. Array.unsafe_get barr !bi);
                  ai := !ai + astep;
                  bi := !bi + bstep
                done;
                Array.unsafe_set darr di !acc
        end
      in
      fun fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let aarr = Array.unsafe_get fr.fbufs aslot in
        let barr = Array.unsafe_get fr.fbufs bslot in
        if darr == aarr || darr == barr then fallback fr m n
        else begin
          let di = fdi fr in
          let astep = fas fr in
          let a0 = fab fr + (m * astep) in
          let bstep = fbs fr in
          let b0 = fbb fr + (m * bstep) in
          if di < 0 || di >= Array.length darr then
            err "reduce_store %s[%d] out of bounds (len %d)" dname di (Array.length darr);
          check_lin ~what:"load" ~name:aname aarr a0 (a0 + ((n - 1) * astep));
          check_lin ~what:"load" ~name:bname barr b0 (b0 + ((n - 1) * bstep));
          body darr aarr barr di a0 astep b0 bstep n;
          fr.loads <- fr.loads + (2 * n);
          fr.flops <- fr.flops + (2 * n);
          fr.stores <- fr.stores + n;
          fr.microkernel_elems <- fr.microkernel_elems + n
        end
  | Optimize.Reduce1 { dst; dst_idx; op; src; src_ix } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdi = as_int (compile_expr ctx dst_idx) in
      let fsb, fss = compile_affine ctx src_ix in
      let sum = sum_fast op in
      let body : float array -> float array -> int -> int -> int -> int -> unit =
        if ctx.opt >= 3 then
          match (sum, Optimize.classify_stride src_ix) with
          | None, Optimize.S_unit ->
              note_variant "reduce1.sum_u4";
              fun darr sarr di s0 _sstep n ->
                Array.unsafe_set darr di
                  (Microkernel.reduce1_sum_unit ~src:sarr ~s0 ~n
                     ~init:(Array.unsafe_get darr di))
          | None, _ ->
              note_variant "reduce1.sum_s";
              fun darr sarr di s0 sstep n ->
                Array.unsafe_set darr di
                  (Microkernel.reduce1_sum_strided ~src:sarr ~s0 ~sstep ~n
                     ~init:(Array.unsafe_get darr di))
          | Some combine, _ ->
              note_variant "reduce1.combine_s";
              fun darr sarr di s0 sstep n ->
                Array.unsafe_set darr di
                  (Microkernel.reduce1_strided ~combine ~src:sarr ~s0 ~sstep ~n
                     ~init:(Array.unsafe_get darr di))
        else begin
          note_variant "reduce1.generic";
          match sum with
          | None ->
              fun darr sarr di s0 sstep n ->
                let acc = ref (Array.unsafe_get darr di) in
                let si = ref s0 in
                for _ = 1 to n do
                  acc := !acc +. Array.unsafe_get sarr !si;
                  si := !si + sstep
                done;
                Array.unsafe_set darr di !acc
          | Some combine ->
              fun darr sarr di s0 sstep n ->
                let acc = ref (Array.unsafe_get darr di) in
                let si = ref s0 in
                for _ = 1 to n do
                  acc := combine !acc (Array.unsafe_get sarr !si);
                  si := !si + sstep
                done;
                Array.unsafe_set darr di !acc
        end
      in
      fun fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        if darr == sarr then fallback fr m n
        else begin
          let di = fdi fr in
          let sstep = fss fr in
          let s0 = fsb fr + (m * sstep) in
          if di < 0 || di >= Array.length darr then
            err "reduce_store %s[%d] out of bounds (len %d)" dname di (Array.length darr);
          check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
          body darr sarr di s0 sstep n;
          fr.loads <- fr.loads + n;
          fr.flops <- fr.flops + n;
          fr.stores <- fr.stores + n;
          fr.microkernel_elems <- fr.microkernel_elems + n
        end
  | Optimize.Copy { dst; dst_ix; src; src_ix } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdb, fds = compile_affine ctx dst_ix in
      let fsb, fss = compile_affine ctx src_ix in
      let body : float array -> float array -> int -> int -> int -> int -> int -> unit =
        if ctx.opt >= 3 then
          match (Optimize.classify_stride dst_ix, Optimize.classify_stride src_ix) with
          | Optimize.S_unit, Optimize.S_unit ->
              note_variant "copy.blit";
              fun darr sarr d0 _dstep s0 _sstep n ->
                (* blit has memmove semantics; the generic loop forward-
                   propagates on overlap, so same-array copies take the
                   order-preserving strided body instead *)
                if darr != sarr then Microkernel.copy_unit ~dst:darr ~d0 ~src:sarr ~s0 ~n
                else Microkernel.copy_strided ~dst:darr ~d0 ~dstep:1 ~src:sarr ~s0 ~sstep:1 ~n
          | _ ->
              note_variant "copy.strided";
              fun darr sarr d0 dstep s0 sstep n ->
                Microkernel.copy_strided ~dst:darr ~d0 ~dstep ~src:sarr ~s0 ~sstep ~n
        else begin
          note_variant "copy.generic";
          (* element order matches the generic loop, so aliasing is fine *)
          fun darr sarr d0 dstep s0 sstep n ->
            let di = ref d0 and si = ref s0 in
            for _ = 1 to n do
              Array.unsafe_set darr !di (Array.unsafe_get sarr !si);
              di := !di + dstep;
              si := !si + sstep
            done
        end
      in
      fun _fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        let dstep = fds fr in
        let d0 = fdb fr + (m * dstep) in
        let sstep = fss fr in
        let s0 = fsb fr + (m * sstep) in
        check_lin ~what:"store" ~name:dname darr d0 (d0 + ((n - 1) * dstep));
        check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
        body darr sarr d0 dstep s0 sstep n;
        fr.loads <- fr.loads + n;
        fr.stores <- fr.stores + n;
        fr.microkernel_elems <- fr.microkernel_elems + n
  | Optimize.Scale { dst; dst_ix; src; src_ix; factor } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdb, fds = compile_affine ctx dst_ix in
      let fsb, fss = compile_affine ctx src_ix in
      let body : float array -> float array -> int -> int -> int -> int -> int -> unit =
        if ctx.opt >= 3 then
          match (Optimize.classify_stride dst_ix, Optimize.classify_stride src_ix) with
          | Optimize.S_unit, Optimize.S_unit ->
              note_variant "scale.u4";
              fun darr sarr d0 _dstep s0 _sstep n ->
                Microkernel.scale_unit ~dst:darr ~d0 ~src:sarr ~s0 ~factor ~n
          | _ ->
              note_variant "scale.strided";
              fun darr sarr d0 dstep s0 sstep n ->
                Microkernel.scale_strided ~dst:darr ~d0 ~dstep ~src:sarr ~s0 ~sstep ~factor ~n
        else begin
          note_variant "scale.generic";
          fun darr sarr d0 dstep s0 sstep n ->
            let di = ref d0 and si = ref s0 in
            for _ = 1 to n do
              Array.unsafe_set darr !di (Array.unsafe_get sarr !si *. factor);
              di := !di + dstep;
              si := !si + sstep
            done
        end
      in
      fun _fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        let dstep = fds fr in
        let d0 = fdb fr + (m * dstep) in
        let sstep = fss fr in
        let s0 = fsb fr + (m * sstep) in
        check_lin ~what:"store" ~name:dname darr d0 (d0 + ((n - 1) * dstep));
        check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
        body darr sarr d0 dstep s0 sstep n;
        fr.loads <- fr.loads + n;
        fr.flops <- fr.flops + n;
        fr.stores <- fr.stores + n;
        fr.microkernel_elems <- fr.microkernel_elems + n

(* [emit_nest ctx ~slot nest] register-tiles a two-deep Sum-dot nest
   (opt >= 3): four destination elements per pass, the shared operand
   loaded once per reduction step.  Each destination keeps its own
   order-preserving accumulator chain (the chains are independent), so
   tiling cannot perturb float results.  [slot] is the tile variable's
   frame slot — the peeled raggedness guard, if any, is evaluated once
   per tile-var value with the slot set, exactly like the generic [If]
   (including its [guards]/[guard_hits] accounting); runs of consecutive
   guard-true iterations tile in groups of four, guard-false iterations
   are skipped.  A peeled init store becomes the accumulators' start
   value (evaluated per tile-var value — a bias row, or the cell itself);
   a peeled epilogue store reruns per tile-var value after its chain
   completes (a scale, an activation).

   Masked dots ([Select (mask, a*b, +0.)] reduction values) use the
   zero-add identity: [acc +. +0.] equals [acc] except that [-0. +. +0.]
   is [+0.], so skipping a {e tail} of masked-out steps is exact after
   clearing a possible [-0.] accumulator — [fix_tail].  The tile-var-wise
   mask conjuncts gate the whole chain (false: the chain is init plus
   [nk] zero adds = [fix_tail init]); a [k < bound] conjunct truncates it
   to [nk_eff] real steps plus a fixed tail.  Skipped steps also skip
   their operand loads — safe, because [Select] never evaluates the
   untaken branch in the generic engine or the interpreter either.

   Falls back to the generic tile loop when the reduction runs zero
   iterations, when the destination aliases an operand or an init /
   epilogue input, or when the destination stride is zero (the chains
   would collapse onto one cell).  Bounds checks are endpoint checks per
   processed span — never for iterations the guard or mask skips. *)
let neg_zero_bits = Int64.bits_of_float (-0.0)

let emit_nest ctx ~slot (nest : Optimize.nest) :
    (frame -> int -> int -> unit) -> frame -> int -> int -> unit =
  match nest with
  | Optimize.Tiled_dot
      { dst; dst_ix; guard; init; init_bufs; epi; epi_bufs; vmask; kbound; kmin;
        kext; shared; shared_ix; shared_left; moving; moving_kstride; moving_jbase }
    ->
      let dslot = buf_slot ctx dst
      and sslot = buf_slot ctx shared
      and mslot = buf_slot ctx moving in
      let dname = Var.mangled dst
      and sname = Var.mangled shared
      and mname = Var.mangled moving in
      let fdb, fds = compile_affine ctx dst_ix in
      let fkm = as_int (compile_expr ctx kmin) in
      let fkn = as_int (compile_expr ctx kext) in
      let fsb, fss = compile_affine ctx shared_ix in
      let fmjb, fmjs = compile_affine ctx moving_jbase in
      let fmks = as_int (compile_expr ctx moving_kstride) in
      let fguard = Option.map (fun c -> as_bool (compile_expr ctx c)) guard in
      let fvmask = Option.map (fun c -> as_bool (compile_expr ctx c)) vmask in
      let fkbound = Option.map (fun e -> as_int (compile_expr ctx e)) kbound in
      let finit = Option.map (fun e -> as_float (compile_expr ctx e)) init in
      (* the epilogue compiles like the generic [Store] (same counters,
         same bounds-check message); it is run with the tile var's slot
         set, once per completed chain *)
      let fepi =
        Option.map
          (fun s ->
            match s with
            | Stmt.Store { buf; index; value } ->
                let bslot = buf_slot ctx buf in
                let bname = Var.mangled buf in
                let fi = as_int (compile_expr ctx index) in
                let fv = as_float (compile_expr ctx value) in
                fun fr ->
                  fr.stores <- fr.stores + 1;
                  let a = Array.unsafe_get fr.fbufs bslot in
                  let i = fi fr in
                  if i < 0 || i >= Array.length a then
                    err "store %s[%d] out of bounds (len %d)" bname i (Array.length a)
                  else Array.unsafe_set a i (fv fr)
            | _ -> err "nest epilogue must be a store")
          epi
      in
      (* buffers the init / epilogue read: if any is bound to the same
         array as the destination at runtime, fall back *)
      let extra_slots =
        Array.of_list
          (List.sort_uniq compare (List.map (buf_slot ctx) (init_bufs @ epi_bufs)))
      in
      note_variant
        (if Option.is_some fvmask || Option.is_some fkbound then "dot.tile4_masked"
         else "dot.tile4");
      let tile4 =
        if shared_left then Microkernel.tile4_dot_sum_shared_left
        else Microkernel.tile4_dot_sum_shared_right
      in
      (* lean runtime path for the plain nest (no mask, no epilogue, init
         a literal or absent — the gemm shape): no per-chain closure
         dispatch, no slot writes inside the tile, the accumulator start
         is a compile-time constant.  The feature-bearing shapes take the
         general path below. *)
      let plain_init =
        match init with
        | None -> Some None
        | Some (Expr.Float c) -> Some (Some c)
        | Some _ -> None
      in
      match (fvmask, fkbound, fepi, plain_init) with
      | None, None, None, Some pinit ->
          let has_init = Option.is_some pinit in
          let initc = match pinit with Some c -> c | None -> 0.0 in
          fun fallback fr m n ->
            let darr = Array.unsafe_get fr.fbufs dslot in
            let sarr = Array.unsafe_get fr.fbufs sslot in
            let marr = Array.unsafe_get fr.fbufs mslot in
            let nk = fkn fr in
            if nk <= 0 || darr == sarr || darr == marr then fallback fr m n
            else begin
              let dstep = fds fr in
              if dstep = 0 then fallback fr m n
              else begin
                let mk = fkm fr in
                (* absolute-index bases: cell j lives at db + j*dstep *)
                let db = fdb fr in
                let ss = fss fr in
                let s0 = fsb fr + (mk * ss) in
                let mks = fmks fr in
                let mjs = fmjs fr in
                let mb = fmjb fr + (mk * mks) in
                let checked_shared = ref false in
                (* endpoint checks for the span [jlo, jlo+cnt); the shared
                   operand's j-invariant range is checked once, at the
                   first processed span (guard-false blocks touch
                   nothing) *)
                let span_check jlo cnt =
                  let dlo = db + (jlo * dstep) in
                  check_lin ~what:"reduce_store" ~name:dname darr dlo
                    (dlo + ((cnt - 1) * dstep));
                  if not !checked_shared then begin
                    check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((nk - 1) * ss));
                    checked_shared := true
                  end;
                  let mlo = mb + (jlo * mjs) in
                  let jspan = (cnt - 1) * mjs and kspan = (nk - 1) * mks in
                  check_lin ~what:"load" ~name:mname marr
                    (mlo + min 0 jspan + min 0 kspan)
                    (mlo + max 0 jspan + max 0 kspan)
                in
                let bulk cnt =
                  let elems = cnt * nk in
                  fr.loads <- fr.loads + (2 * elems);
                  fr.flops <- fr.flops + (2 * elems);
                  fr.stores <- fr.stores + elems + (if has_init then cnt else 0);
                  fr.microkernel_elems <- fr.microkernel_elems + elems
                in
                let tile j =
                  span_check j 4;
                  let dj = db + (j * dstep) in
                  let acc =
                    if has_init then
                      { Microkernel.x0 = initc; x1 = initc; x2 = initc; x3 = initc }
                    else
                      {
                        Microkernel.x0 = Array.unsafe_get darr dj;
                        x1 = Array.unsafe_get darr (dj + dstep);
                        x2 = Array.unsafe_get darr (dj + (2 * dstep));
                        x3 = Array.unsafe_get darr (dj + (3 * dstep));
                      }
                  in
                  tile4 ~s:sarr ~s0 ~ss ~m:marr ~m0:(mb + (j * mjs)) ~mjs ~mks ~n:nk acc;
                  Array.unsafe_set darr dj acc.Microkernel.x0;
                  Array.unsafe_set darr (dj + dstep) acc.Microkernel.x1;
                  Array.unsafe_set darr (dj + (2 * dstep)) acc.Microkernel.x2;
                  Array.unsafe_set darr (dj + (3 * dstep)) acc.Microkernel.x3;
                  bulk 4
                in
                let single j =
                  span_check j 1;
                  let dj = db + (j * dstep) in
                  let iv = if has_init then initc else Array.unsafe_get darr dj in
                  let mj = mb + (j * mjs) in
                  let v =
                    if shared_left then
                      Microkernel.dot_sum_strided ~a:sarr ~a0:s0 ~astep:ss ~b:marr
                        ~b0:mj ~bstep:mks ~n:nk ~init:iv
                    else
                      Microkernel.dot_sum_strided ~a:marr ~a0:mj ~astep:mks ~b:sarr
                        ~b0:s0 ~bstep:ss ~n:nk ~init:iv
                  in
                  Array.unsafe_set darr dj v;
                  bulk 1
                in
                let jend = m + n in
                match fguard with
                | None ->
                    let j = ref m in
                    while !j + 3 < jend do
                      tile !j;
                      j := !j + 4
                    done;
                    while !j < jend do
                      single !j;
                      incr j
                    done
                | Some fg ->
                    (* evaluate the guard exactly once per j, with the tile
                       var's slot set — the generic If's accounting *)
                    let test j =
                      Array.unsafe_set fr.ints slot j;
                      fr.guards <- fr.guards + 1;
                      if fg fr then begin
                        fr.guard_hits <- fr.guard_hits + 1;
                        true
                      end
                      else false
                    in
                    let j = ref m in
                    while !j < jend do
                      if not (test !j) then incr j
                      else begin
                        (* extend the guard-true run to at most four *)
                        let run = ref 1 in
                        let hit_false = ref false in
                        while (not !hit_false) && !run < 4 && !j + !run < jend do
                          if test (!j + !run) then incr run else hit_false := true
                        done;
                        if !run = 4 then tile !j
                        else
                          for o = 0 to !run - 1 do
                            single (!j + o)
                          done;
                        j := !j + !run + if !hit_false then 1 else 0
                      end
                    done
              end
            end
      | _ ->
      fun fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        let marr = Array.unsafe_get fr.fbufs mslot in
        let nk = fkn fr in
        if
          nk <= 0 || darr == sarr || darr == marr
          || Array.exists (fun s -> Array.unsafe_get fr.fbufs s == darr) extra_slots
        then fallback fr m n
        else begin
          let dstep = fds fr in
          if dstep = 0 then fallback fr m n
          else begin
            let mk = fkm fr in
            (* absolute-index bases: cell j lives at db + j*dstep *)
            let db = fdb fr in
            let ss = fss fr in
            let s0 = fsb fr + (mk * ss) in
            let mks = fmks fr in
            let mjs = fmjs fr in
            let mb = fmjb fr + (mk * mks) in
            (* effective reduction length under a [k < bound] mask: real
               products stop there, the remaining [tail] adds are zeros *)
            let nk_eff =
              match fkbound with
              | None -> nk
              | Some fb ->
                  let e = fb fr - mk in
                  if e < 0 then 0 else if e > nk then nk else e
            in
            let tail = nk - nk_eff in
            (* acc +. (+0.) == acc except -0. +. +0. == +0. — applying
               this once replays a whole tail of masked-out adds *)
            let fix_tail v =
              if Int64.equal (Int64.bits_of_float v) neg_zero_bits then 0.0 else v
            in
            let store_cell dj v =
              Array.unsafe_set darr dj (if tail > 0 then fix_tail v else v)
            in
            let checked_shared = ref false in
            (* endpoint checks for the span [jlo, jlo+cnt); the shared
               operand's j-invariant range is checked once, at the first
               span that actually loads operands *)
            let span_check jlo cnt =
              let dlo = db + (jlo * dstep) in
              check_lin ~what:"reduce_store" ~name:dname darr dlo
                (dlo + ((cnt - 1) * dstep));
              if nk_eff > 0 then begin
                if not !checked_shared then begin
                  check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((nk_eff - 1) * ss));
                  checked_shared := true
                end;
                let mlo = mb + (jlo * mjs) in
                let jspan = (cnt - 1) * mjs and kspan = (nk_eff - 1) * mks in
                check_lin ~what:"load" ~name:mname marr
                  (mlo + min 0 jspan + min 0 kspan)
                  (mlo + max 0 jspan + max 0 kspan)
              end
            in
            let has_init = Option.is_some finit in
            (* accumulator start value for chain j; [slot] must already
               hold j (the init expression may read a bias row at j) *)
            let init_of dj =
              match finit with
              | Some f -> f fr
              | None -> Array.unsafe_get darr dj
            in
            let run_epi j =
              match fepi with
              | None -> ()
              | Some f ->
                  Array.unsafe_set fr.ints slot j;
                  f fr
            in
            let bulk cnt =
              let elems = cnt * nk_eff in
              fr.loads <- fr.loads + (2 * elems);
              fr.flops <- fr.flops + (2 * elems) + (cnt * tail);
              fr.stores <- fr.stores + (cnt * nk) + (if has_init then cnt else 0);
              fr.microkernel_elems <- fr.microkernel_elems + elems
            in
            (* chain whose mask is false for every k: init plus nk zero
               adds — no operand access, no operand checks *)
            let zero j =
              let dj = db + (j * dstep) in
              check_lin ~what:"reduce_store" ~name:dname darr dj dj;
              Array.unsafe_set fr.ints slot j;
              Array.unsafe_set darr dj (fix_tail (init_of dj));
              fr.flops <- fr.flops + nk;
              fr.stores <- fr.stores + nk + (if has_init then 1 else 0);
              (* the generic nest runs the epilogue store even when the
                 mask was false for every k — so must we *)
              run_epi j
            in
            let tile j =
              span_check j 4;
              let dj = db + (j * dstep) in
              Array.unsafe_set fr.ints slot j;
              let x0 = init_of dj in
              Array.unsafe_set fr.ints slot (j + 1);
              let x1 = init_of (dj + dstep) in
              Array.unsafe_set fr.ints slot (j + 2);
              let x2 = init_of (dj + (2 * dstep)) in
              Array.unsafe_set fr.ints slot (j + 3);
              let x3 = init_of (dj + (3 * dstep)) in
              let acc = { Microkernel.x0; x1; x2; x3 } in
              tile4 ~s:sarr ~s0 ~ss ~m:marr ~m0:(mb + (j * mjs)) ~mjs ~mks ~n:nk_eff acc;
              store_cell dj acc.Microkernel.x0;
              store_cell (dj + dstep) acc.Microkernel.x1;
              store_cell (dj + (2 * dstep)) acc.Microkernel.x2;
              store_cell (dj + (3 * dstep)) acc.Microkernel.x3;
              bulk 4;
              run_epi j;
              run_epi (j + 1);
              run_epi (j + 2);
              run_epi (j + 3)
            in
            let single j =
              span_check j 1;
              let dj = db + (j * dstep) in
              Array.unsafe_set fr.ints slot j;
              let iv = init_of dj in
              let mj = mb + (j * mjs) in
              let v =
                if shared_left then
                  Microkernel.dot_sum_strided ~a:sarr ~a0:s0 ~astep:ss ~b:marr ~b0:mj
                    ~bstep:mks ~n:nk_eff ~init:iv
                else
                  Microkernel.dot_sum_strided ~a:marr ~a0:mj ~astep:mks ~b:sarr ~b0:s0
                    ~bstep:ss ~n:nk_eff ~init:iv
              in
              store_cell dj v;
              bulk 1;
              run_epi j
            in
            let jend = m + n in
            match (fguard, fvmask) with
            | None, None ->
                let j = ref m in
                while !j + 3 < jend do
                  tile !j;
                  j := !j + 4
                done;
                while !j < jend do
                  single !j;
                  incr j
                done
            | _ ->
                (* three states per j — skip (guard false), zero-chain
                   (mask false), dot — each guard / mask evaluated exactly
                   once, with the tile var's slot set; the guard keeps the
                   generic If's accounting *)
                let st j =
                  Array.unsafe_set fr.ints slot j;
                  let g =
                    match fguard with
                    | None -> true
                    | Some fg ->
                        fr.guards <- fr.guards + 1;
                        if fg fr then begin
                          fr.guard_hits <- fr.guard_hits + 1;
                          true
                        end
                        else false
                  in
                  if not g then 0
                  else
                    match fvmask with
                    | None -> 2
                    | Some fv -> if fv fr then 2 else 1
                in
                let j = ref m in
                while !j < jend do
                  match st !j with
                  | 0 -> incr j
                  | 1 ->
                      zero !j;
                      incr j
                  | _ ->
                      (* extend the dot run to at most four; a non-dot
                         state already evaluated is dispatched after *)
                      let run = ref 1 in
                      let next = ref (-1) in
                      while !next < 0 && !run < 4 && !j + !run < jend do
                        match st (!j + !run) with
                        | 2 -> incr run
                        | s -> next := s
                      done;
                      if !run = 4 then tile !j
                      else
                        for o = 0 to !run - 1 do
                          single (!j + o)
                        done;
                      if !next = 1 then zero (!j + !run);
                      j := !j + !run + if !next >= 0 then 1 else 0
                done
          end
        end

(* ------------------------------------------------------------------ *)
(* Per-iteration weight estimator for parallel chunk balancing: static
   expression costs from the analytic cost model, dynamic trip counts by
   evaluating loop bounds on the frame (inner loop variables pinned to
   their first iteration — the estimate guides chunking only, so an
   approximation is fine).  Compiled with its own scalar slots; evaluated
   on a scratch frame view, so it can neither clobber the kernel's state
   nor perturb its counters.  Any compile- or eval-time failure falls back
   to uniform weights. *)
let rec est_stmt ctx (s : Stmt.t) : frame -> int =
  let ecost e = max 1 (int_of_float (Cost_model.total (Cost_model.expr_counts e))) in
  match s with
  | Stmt.Store { index; value; _ } | Stmt.Reduce_store { index; value; _ } ->
      let c = ecost index + ecost value in
      fun _ -> c
  | Stmt.Eval e ->
      let c = ecost e in
      fun _ -> c
  | Stmt.Nop -> fun _ -> 1
  | Stmt.Seq l ->
      let es = Array.of_list (List.map (est_stmt ctx) l) in
      fun fr -> Array.fold_left (fun acc f -> acc + f fr) 0 es
  | Stmt.If (c, a, b) ->
      (* both branches, statically: the skew this estimator exists to fix
         comes from ragged trip counts, not guard outcomes *)
      let cc = ecost c in
      let ea = est_stmt ctx a in
      let eb = match b with Some b -> est_stmt ctx b | None -> fun _ -> 0 in
      fun fr -> cc + ea fr + eb fr
  | Stmt.Let_stmt (v, e, body) -> (
      match compile_expr ctx e with
      | CInt f ->
          with_var ctx v TInt @@ fun slot ->
          let eb = est_stmt ctx body in
          fun fr ->
            Array.unsafe_set fr.ints slot (f fr);
            eb fr
      | CFloat _ | CBool _ -> est_stmt ctx body)
  | Stmt.Alloc { body; _ } -> est_stmt ctx body
  | Stmt.For { var; min; extent; body; _ } ->
      let fm = as_int (compile_expr ctx min) in
      let fn = as_int (compile_expr ctx extent) in
      with_var ctx var TInt @@ fun slot ->
      let eb = est_stmt ctx body in
      fun fr ->
        let m = fm fr in
        let n = fn fr in
        if n <= 0 then 1
        else begin
          Array.unsafe_set fr.ints slot m;
          1 + (n * eb fr)
        end

let compile_est ctx (s : Stmt.t) : (frame -> int) option =
  match est_stmt ctx s with e -> Some e | exception Error _ -> None

(* [par_ok] tracks which Parallel loops Interp.exec_multicore would actually
   parallelize: those reachable through For / Let_stmt / Seq only.  Bodies
   of parallel loops, If branches and Alloc bodies execute serially there,
   so they compile with par_ok = false here — keeping the engine's execution
   structure (and hence its soundness obligations) identical. *)
let rec compile_stmt ctx ~par_ok (s : Stmt.t) : frame -> unit =
  match s with
  | For { var; min; extent; kind; body } -> (
      let fm = as_int (compile_expr ctx min) in
      let fn = as_int (compile_expr ctx extent) in
      let par = par_ok && (match kind with Stmt.Parallel -> true | _ -> false) in
      with_var ctx var TInt @@ fun slot ->
      let micro =
        if (not par) && ctx.opt >= 2 then
          Option.map (emit_inner ctx) (Optimize.classify_inner ~var body)
        else None
      in
      let tiled =
        if (not par) && ctx.opt >= 3 && Option.is_none micro then
          match Optimize.classify_nest ~var body with
          | Some nest -> (
              (* compiling the substituted nest expressions can hit a
                 type the generic path would never force (e.g. a peeled
                 let of the wrong kind) — never fail the whole compile
                 for a missed tiling opportunity *)
              try Some (emit_nest ctx ~slot nest) with Error _ -> None)
          | _ -> None
        else None
      in
      let cbody = compile_stmt ctx ~par_ok:(par_ok && not par) body in
      let serial fr m n =
        for i = m to m + n - 1 do
          Array.unsafe_set fr.ints slot i;
          cbody fr
        done
      in
      if par then begin
        let est = compile_est ctx body in
        fun fr ->
          let m = fm fr in
          let n = fn fr in
          match fr.pool with
          | Some p when n > 1 && Pool.parallelism p > 1 -> run_parallel p fr slot m n ?est cbody
          | _ -> serial fr m n
      end
      else
        match micro with
        | Some mk ->
            let mk = mk serial in
            fun fr ->
              let m = fm fr in
              let n = fn fr in
              if n > 0 then mk fr m n
        | None when Option.is_some tiled ->
            let tk = Option.get tiled serial in
            fun fr ->
              let m = fm fr in
              let n = fn fr in
              if n > 0 then tk fr m n
        | None -> (
            (* strength reduction (opt >= 1): an innermost store loop whose
               index is affine in the loop variable becomes a running-offset
               loop — the value closure still runs per element (arbitrary
               expression), but the address tree is evaluated once and the
               per-element bounds checks collapse to two endpoint checks. *)
            let sred =
              if ctx.opt >= 1 then
                match body with
                | Stmt.Store { buf; index; value } ->
                    Option.map (fun ax -> (None, buf, ax, value)) (Optimize.affine_in var index)
                | Stmt.Reduce_store { buf; index; value; op } ->
                    Option.map
                      (fun ax -> (Some op, buf, ax, value))
                      (Optimize.affine_in var index)
                | _ -> None
              else None
            in
            match sred with
            | Some (op, buf, ax, value) -> (
                let bslot = buf_slot ctx buf in
                let bname = Var.mangled buf in
                let fbase, fstep = compile_affine ctx ax in
                let fv = as_float (compile_expr ctx value) in
                match op with
                | None ->
                    fun fr ->
                      let m = fm fr in
                      let n = fn fr in
                      if n > 0 then begin
                        let a = Array.unsafe_get fr.fbufs bslot in
                        let step = fstep fr in
                        let i0 = fbase fr + (m * step) in
                        check_lin ~what:"store" ~name:bname a i0 (i0 + ((n - 1) * step));
                        let ix = ref i0 in
                        for i = m to m + n - 1 do
                          Array.unsafe_set fr.ints slot i;
                          Array.unsafe_set a !ix (fv fr);
                          ix := !ix + step
                        done;
                        fr.stores <- fr.stores + n
                      end
                | Some rop ->
                    let combine = combine_of rop in
                    fun fr ->
                      let m = fm fr in
                      let n = fn fr in
                      if n > 0 then begin
                        let a = Array.unsafe_get fr.fbufs bslot in
                        let step = fstep fr in
                        let i0 = fbase fr + (m * step) in
                        check_lin ~what:"reduce_store" ~name:bname a i0 (i0 + ((n - 1) * step));
                        let ix = ref i0 in
                        for i = m to m + n - 1 do
                          Array.unsafe_set fr.ints slot i;
                          (* value first, then the current cell — interpreter order *)
                          let x = fv fr in
                          Array.unsafe_set a !ix (combine (Array.unsafe_get a !ix) x);
                          ix := !ix + step
                        done;
                        fr.stores <- fr.stores + n;
                        fr.flops <- fr.flops + n
                      end)
            | None ->
                fun fr ->
                  let m = fm fr in
                  let n = fn fr in
                  serial fr m n))
  | Let_stmt (v, e, body) -> (
      let cv = compile_expr ctx e in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      let hoisted = String.equal (Var.name v) Optimize.hoist_var_name in
      with_var ctx v ty @@ fun slot ->
      let cbody = compile_stmt ctx ~par_ok body in
      match cv with
      | CInt f when hoisted ->
          (* LICM preheader binding: count each evaluation *)
          fun fr ->
            fr.hoisted <- fr.hoisted + 1;
            Array.unsafe_set fr.ints slot (f fr);
            cbody fr
      | CInt f ->
          fun fr ->
            Array.unsafe_set fr.ints slot (f fr);
            cbody fr
      | CFloat f ->
          fun fr ->
            Array.unsafe_set fr.floats slot (f fr);
            cbody fr
      | CBool f ->
          fun fr ->
            Array.unsafe_set fr.bools slot (f fr);
            cbody fr)
  | Store { buf = v; index; value } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      fun fr ->
        fr.stores <- fr.stores + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else Array.unsafe_set a i (fv fr)
  | Reduce_store { buf = v; index; value; op } -> (
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      let reduce combine fr =
        fr.stores <- fr.stores + 1;
        fr.flops <- fr.flops + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else
          (* value first, then the current cell — interpreter order *)
          let x = fv fr in
          let cur = Array.unsafe_get a i in
          Array.unsafe_set a i (combine cur x)
      in
      match op with
      | Stmt.Sum ->
          fun fr ->
            fr.stores <- fr.stores + 1;
            fr.flops <- fr.flops + 1;
            let a = Array.unsafe_get fr.fbufs slot in
            let i = fi fr in
            if i < 0 || i >= Array.length a then
              err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
            else
              let x = fv fr in
              Array.unsafe_set a i (Array.unsafe_get a i +. x)
      | Stmt.Prod -> reduce ( *. )
      | Stmt.Rmax -> reduce Float.max
      | Stmt.Rmin -> reduce Float.min)
  | If (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_stmt ctx ~par_ok:false a in
      match Option.map (compile_stmt ctx ~par_ok:false) b with
      | None ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
      | Some cb ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
            else cb fr)
  | Seq l -> (
      match List.map (compile_stmt ctx ~par_ok) l with
      | [] -> fun _ -> ()
      | [ c ] -> c
      | [ c1; c2 ] ->
          fun fr ->
            c1 fr;
            c2 fr
      | cs ->
          let arr = Array.of_list cs in
          let n = Array.length arr in
          fun fr ->
            for i = 0 to n - 1 do
              (Array.unsafe_get arr i) fr
            done)
  | Alloc { buf = v; size; body } ->
      let fn = as_int (compile_expr ctx size) in
      let slot = buf_slot ~internal:true ctx v in
      let cbody = compile_stmt ctx ~par_ok:false body in
      (* Scratch comes from the process-wide arena, rounded up to a
         power-of-two size class.  Exact-length keying here was a miss
         storm under the batch-former: row-length-sized scratch (e.g. the
         softmax row buffer) takes a different exact size for every
         distinct length a mega-batch mixes in, so each composition kept
         allocating fresh storage; class rounding makes those sizes
         converge onto the same closed class set the serving buffers use.
         Zero-fill and the negative-size error are exactly those of the
         [Array.make n 0.0] this replaces; a correct kernel never
         addresses the class-rounding tail. *)
      fun fr ->
        let n = fn fr in
        let a = Buffer.Arena.acquire_class Buffer.Arena.global n in
        Array.unsafe_set fr.fbufs slot a;
        let release () =
          Array.unsafe_set fr.fbufs slot [||];
          Buffer.Arena.release Buffer.Arena.global a
        in
        (try cbody fr
         with e ->
           release ();
           raise e);
        release ()
  | Eval e -> (
      match compile_expr ctx e with
      | CInt f -> fun fr -> ignore (f fr)
      | CFloat f -> fun fr -> ignore (f fr)
      | CBool f -> fun fr -> ignore (f fr))
  | Nop -> fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Public API *)

let compile ?(opt = Optimize.O0) (s : Stmt.t) : compiled =
  let s = match opt with Optimize.O0 -> s | _ -> fst (Optimize.run ~level:opt s) in
  let ctx = new_ctx ~opt:(Optimize.int_of_level opt) () in
  let entry = compile_stmt ctx ~par_ok:true s in
  { c_layout = finalize ctx; c_entry = entry }

let slot_count c = c.c_layout.n_ints + c.c_layout.n_floats + c.c_layout.n_bools

let frame (c : compiled) : frame =
  let l = c.c_layout in
  let nbufs = Array.length l.buf_names in
  {
    layout = l;
    entry = c.c_entry;
    ints = Array.make (max 1 l.n_ints) 0;
    floats = Array.make (max 1 l.n_floats) 0.0;
    bools = Array.make (max 1 l.n_bools) false;
    fbufs = Array.make (max 1 nbufs) [||];
    buf_bound = Array.make (max 1 nbufs) false;
    ufuns = Array.make (max 1 (Array.length l.ufun_names)) U_unbound;
    pool = None;
    loads = 0;
    stores = 0;
    flops = 0;
    indirect = 0;
    guards = 0;
    guard_hits = 0;
    hoisted = 0;
    microkernel_elems = 0;
  }

let bind_buf fr (v : Var.t) (b : Buffer.t) =
  let slot =
    match Hashtbl.find_opt fr.layout.buf_slots v.Var.id with
    | Some s -> Some s
    | None -> (
        (* alpha-equivalent rebind: same display name, fresh var id *)
        match Hashtbl.find_opt fr.layout.buf_by_name (Var.name v) with
        | Some s when s >= 0 -> Some s
        | _ -> None)
  in
  match slot with
  | None -> () (* this kernel never touches that tensor *)
  | Some slot -> (
      match b with
      | Buffer.F a ->
          fr.fbufs.(slot) <- a;
          fr.buf_bound.(slot) <- true
      | Buffer.I _ -> err "engine: integer buffer %s unsupported" (Var.mangled v))

let bind_ufun_binding fr name u =
  match Hashtbl.find_opt fr.layout.ufun_slots name with
  | None -> () (* this kernel never calls that ufun *)
  | Some slot -> fr.ufuns.(slot) <- u

let bind_ufun_table fr name a = bind_ufun_binding fr name (U_table a)
let bind_ufun1 fr name f = bind_ufun_binding fr name (U_fn f)
let bind_ufun_const fr name n = bind_ufun_binding fr name (U_const n)
let bind_ufun fr name f = bind_ufun_binding fr name (U_gen f)

let run ?pool (fr : frame) : unit =
  let l = fr.layout in
  Array.iteri
    (fun i ext -> if ext && not fr.buf_bound.(i) then err "unbound buffer %s" l.buf_names.(i))
    l.buf_external;
  Array.iteri
    (fun i name ->
      match fr.ufuns.(i) with
      | U_unbound -> err "unbound uninterpreted function %s" name
      | _ -> ())
    l.ufun_names;
  fr.pool <- pool;
  Fun.protect ~finally:(fun () -> fr.pool <- None) (fun () -> fr.entry fr)

let stats fr =
  [
    ("loads", fr.loads);
    ("stores", fr.stores);
    ("flops", fr.flops);
    ("indirect", fr.indirect);
    ("guards", fr.guards);
    ("guard_hits", fr.guard_hits);
    ("hoisted", fr.hoisted);
    ("microkernel_elems", fr.microkernel_elems);
  ]

let flush_metrics fr =
  Obs.Metrics.add (Obs.Metrics.counter "engine.loads") fr.loads;
  Obs.Metrics.add (Obs.Metrics.counter "engine.stores") fr.stores;
  Obs.Metrics.add (Obs.Metrics.counter "engine.flops") fr.flops;
  Obs.Metrics.add (Obs.Metrics.counter "engine.indirect") fr.indirect;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guards") fr.guards;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guard_hits") fr.guard_hits;
  Obs.Metrics.add (Obs.Metrics.counter "engine.hoisted") fr.hoisted;
  Obs.Metrics.add (Obs.Metrics.counter "engine.microkernel_elems") fr.microkernel_elems
