open Ir

(* Compiled execution engine.  See engine.mli for the contract; the key
   invariant maintained throughout this file is *interpreter parity*: for
   every IR node the compiled closure performs the same stores, the same
   bounds checks and the same counter bumps, in the same order, as the
   corresponding branch of Interp.eval / Interp.exec — that is what makes
   the differential fuzz in test/test_engine.ml meaningful. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Persistent domain pool *)

module Pool = struct
  (* One job = one chunked parallel-for.  The atomics live in the job, not
     the pool: a worker that wakes up late simply finds every chunk of the
     old job already claimed and goes back to waiting, so there is no
     generation race on shared counters. *)
  type job = {
    f : int -> unit;
    chunks : int;
    next : int Atomic.t;  (* next chunk index to claim *)
    remaining : int Atomic.t;  (* chunks not yet finished *)
  }

  type t = {
    mutex : Mutex.t;
    work : Condition.t;  (* a new job was published *)
    done_ : Condition.t;  (* a job's last chunk finished *)
    mutable job : job option;
    mutable generation : int;
    mutable stop : bool;
    mutable error : exn option;
    mutable domains : unit Domain.t list;
    parallelism : int;
  }

  let parallelism t = t.parallelism

  let drain t (j : job) =
    let rec loop () =
      let c = Atomic.fetch_and_add j.next 1 in
      if c < j.chunks then begin
        (try j.f c
         with e ->
           Mutex.lock t.mutex;
           (match t.error with None -> t.error <- Some e | Some _ -> ());
           Mutex.unlock t.mutex);
        (* decrement *after* the handler so an exception can't hang [run] *)
        let left = Atomic.fetch_and_add j.remaining (-1) - 1 in
        if left = 0 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex
        end;
        loop ()
      end
    in
    loop ()

  let worker t =
    let last_gen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while (not t.stop) && t.generation = !last_gen do
        Condition.wait t.work t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        last_gen := t.generation;
        let j = t.job in
        Mutex.unlock t.mutex;
        (match j with Some j -> drain t j | None -> ());
        loop ()
      end
    in
    loop ()

  let create ?(domains = 4) () =
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        error = None;
        domains = [];
        parallelism = max 1 domains;
      }
    in
    t.domains <-
      List.init (max 0 (domains - 1)) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let run t ~chunks (f : int -> unit) =
    if chunks > 0 then begin
      let j = { f; chunks; next = Atomic.make 0; remaining = Atomic.make chunks } in
      Mutex.lock t.mutex;
      t.error <- None;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: total parallelism = domains *)
      drain t j;
      Mutex.lock t.mutex;
      while Atomic.get j.remaining > 0 do
        Condition.wait t.done_ t.mutex
      done;
      let e = t.error in
      t.job <- None;
      t.error <- None;
      Mutex.unlock t.mutex;
      match e with Some e -> raise e | None -> ()
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* ------------------------------------------------------------------ *)
(* Frames *)

type ufun_binding =
  | U_unbound
  | U_table of int array  (* prelude table: direct indexing *)
  | U_fn of (int -> int)  (* length function *)
  | U_const of int  (* prelude scalar: any arity, like (fun _ -> n) *)
  | U_gen of (int list -> int)

type layout = {
  n_ints : int;
  n_floats : int;
  n_bools : int;
  buf_slots : (int, int) Hashtbl.t;  (* Var.id -> fbuf slot *)
  buf_by_name : (string, int) Hashtbl.t;
      (* display name -> external slot; -1 when the name is ambiguous.
         Compiled kernels are shared across alpha-equivalent bodies (the
         Sig-keyed memo), whose buffer vars carry fresh ids but the same
         deterministic display names — name lookup is the fallback that
         lets a cached kernel be re-bound to another build's tensors. *)
  buf_names : string array;  (* slot -> mangled name, for errors *)
  buf_external : bool array;  (* slot must be bound before run *)
  ufun_slots : (string, int) Hashtbl.t;
  ufun_names : string array;
}

type frame = {
  layout : layout;
  entry : frame -> unit;
  ints : int array;
  floats : float array;
  bools : bool array;
  fbufs : float array array;
  buf_bound : bool array;
  ufuns : ufun_binding array;
  mutable pool : Pool.t option;
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable indirect : int;
  mutable guards : int;
  mutable guard_hits : int;
  mutable hoisted : int;  (** evaluations of LICM-hoisted preheader bindings *)
  mutable microkernel_elems : int;  (** elements processed by fused microkernels *)
}

type compiled = { c_layout : layout; c_entry : frame -> unit }

(* ------------------------------------------------------------------ *)
(* Compilation context: name -> slot resolution, done exactly once *)

type slot = SInt of int | SFloat of int | SBool of int
type ty = TInt | TFloat | TBool

type ctx = {
  opt : int;  (* optimization level: 0 none, 1 +strength reduction, 2 +microkernels *)
  vars : (int, slot) Hashtbl.t;  (* Var.id -> scalar slot *)
  mutable n_int : int;
  mutable n_float : int;
  mutable n_bool : int;
  c_buf_slots : (int, int) Hashtbl.t;
  mutable bufs_rev : (string * string * bool ref) list;
      (* (mangled, display name, external), newest first *)
  mutable n_buf : int;
  c_ufun_slots : (string, int) Hashtbl.t;
  mutable ufuns_rev : string list;
  mutable n_ufun : int;
}

let new_ctx ?(opt = 0) () =
  {
    opt;
    vars = Hashtbl.create 32;
    n_int = 0;
    n_float = 0;
    n_bool = 0;
    c_buf_slots = Hashtbl.create 16;
    bufs_rev = [];
    n_buf = 0;
    c_ufun_slots = Hashtbl.create 16;
    ufuns_rev = [];
    n_ufun = 0;
  }

(* Scoped variable binding: allocate a fresh slot for [v], compile the scope
   body through [k], then restore whatever [v] meant outside (lowering never
   shadows, but correctness here is one save/restore away, so keep it). *)
let with_var ctx (v : Var.t) ty (k : int -> 'a) : 'a =
  let slot, raw =
    match ty with
    | TInt ->
        let s = ctx.n_int in
        ctx.n_int <- s + 1;
        (SInt s, s)
    | TFloat ->
        let s = ctx.n_float in
        ctx.n_float <- s + 1;
        (SFloat s, s)
    | TBool ->
        let s = ctx.n_bool in
        ctx.n_bool <- s + 1;
        (SBool s, s)
  in
  let prev = Hashtbl.find_opt ctx.vars v.Var.id in
  Hashtbl.replace ctx.vars v.Var.id slot;
  let r = k raw in
  (match prev with
  | Some p -> Hashtbl.replace ctx.vars v.Var.id p
  | None -> Hashtbl.remove ctx.vars v.Var.id);
  r

(* Buffer slot for [v].  [internal] marks Alloc-introduced scratch, which
   needs no binding before run. *)
let buf_slot ?(internal = false) ctx (v : Var.t) : int =
  match Hashtbl.find_opt ctx.c_buf_slots v.Var.id with
  | Some s ->
      if internal then begin
        match List.nth_opt ctx.bufs_rev (ctx.n_buf - 1 - s) with
        | Some (_, _, ext) -> ext := false
        | None -> ()
      end;
      s
  | None ->
      let s = ctx.n_buf in
      ctx.n_buf <- s + 1;
      Hashtbl.add ctx.c_buf_slots v.Var.id s;
      ctx.bufs_rev <- (Var.mangled v, Var.name v, ref (not internal)) :: ctx.bufs_rev;
      s

let ufun_slot ctx name : int =
  match Hashtbl.find_opt ctx.c_ufun_slots name with
  | Some s -> s
  | None ->
      let s = ctx.n_ufun in
      ctx.n_ufun <- s + 1;
      Hashtbl.add ctx.c_ufun_slots name s;
      ctx.ufuns_rev <- name :: ctx.ufuns_rev;
      s

let finalize ctx : layout =
  let bufs = Array.of_list (List.rev ctx.bufs_rev) in
  let buf_by_name = Hashtbl.create (Array.length bufs) in
  Array.iteri
    (fun slot (_, name, ext) ->
      if !ext then
        match Hashtbl.find_opt buf_by_name name with
        | None -> Hashtbl.replace buf_by_name name slot
        | Some _ -> Hashtbl.replace buf_by_name name (-1) (* ambiguous: id-only *))
    bufs;
  {
    n_ints = ctx.n_int;
    n_floats = ctx.n_float;
    n_bools = ctx.n_bool;
    buf_slots = ctx.c_buf_slots;
    buf_by_name;
    buf_names = Array.map (fun (m, _, _) -> m) bufs;
    buf_external = Array.map (fun (_, _, e) -> !e) bufs;
    ufun_slots = ctx.c_ufun_slots;
    ufun_names = Array.of_list (List.rev ctx.ufuns_rev);
  }

(* ------------------------------------------------------------------ *)
(* Expression compilation: staged, unboxed per scalar type *)

type cexpr =
  | CInt of (frame -> int)
  | CFloat of (frame -> float)
  | CBool of (frame -> bool)

let as_int = function
  | CInt f -> f
  | CFloat f -> fun fr -> int_of_float (f fr)
  | CBool _ -> err "expected int, got bool"

let as_float = function
  | CFloat f -> f
  | CInt f -> fun fr -> float_of_int (f fr)
  | CBool _ -> err "expected float, got bool"

let as_bool = function
  | CBool f -> f
  | CInt _ | CFloat _ -> err "expected bool, got a scalar"

(* Slot accesses use unsafe_get/set: indices are compiler-assigned, in range
   by construction.  Buffer element accesses keep explicit bounds checks with
   interpreter-identical error messages. *)

let compile_binop (op : Expr.binop) ca cb : cexpr =
  match (op, ca, cb) with
  | Expr.Add, CInt fa, CInt fb -> CInt (fun fr -> fa fr + fb fr)
  | Expr.Sub, CInt fa, CInt fb -> CInt (fun fr -> fa fr - fb fr)
  | Expr.Mul, CInt fa, CInt fb -> CInt (fun fr -> fa fr * fb fr)
  | Expr.Min, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x <= y then x else y)
  | Expr.Max, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if x >= y then x else y)
  | Expr.FloorDiv, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "division by zero"
          else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
          else x / y)
  | Expr.Mod, CInt fa, CInt fb ->
      CInt
        (fun fr ->
          let x = fa fr in
          let y = fb fr in
          if y = 0 then err "mod by zero"
          else
            let r = x mod y in
            if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | (Expr.FloorDiv | Expr.Mod), _, _ -> err "floordiv/mod on floats"
  | (Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max), _, _ ->
      (* float path; Div is float even on int operands, like the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift f =
        CFloat
          (fun fr ->
            let x = fa fr in
            let y = fb fr in
            fr.flops <- fr.flops + 1;
            f x y)
      in
      (match op with
      | Expr.Add -> lift ( +. )
      | Expr.Sub -> lift ( -. )
      | Expr.Mul -> lift ( *. )
      | Expr.Div -> lift ( /. )
      | Expr.Min -> lift Float.min
      | Expr.Max -> lift Float.max
      | Expr.FloorDiv | Expr.Mod -> assert false)

let compile_cmp (op : Expr.cmpop) ca cb : cexpr =
  match (ca, cb) with
  | CBool _, _ | _, CBool _ -> err "expected int, got bool"
  | (CFloat _, _ | _, CFloat _) ->
      (* Float.compare, not (<): NaN ordering must match the interpreter *)
      let fa = as_float ca and fb = as_float cb in
      let lift test = CBool (fun fr -> test (Float.compare (fa fr) (fb fr)) 0) in
      (match op with
      | Expr.Lt -> lift ( < )
      | Expr.Le -> lift ( <= )
      | Expr.Gt -> lift ( > )
      | Expr.Ge -> lift ( >= )
      | Expr.Eq -> lift ( = )
      | Expr.Ne -> lift ( <> ))
  | CInt fa, CInt fb -> (
      match op with
      | Expr.Lt -> CBool (fun fr -> fa fr < fb fr)
      | Expr.Le -> CBool (fun fr -> fa fr <= fb fr)
      | Expr.Gt -> CBool (fun fr -> fa fr > fb fr)
      | Expr.Ge -> CBool (fun fr -> fa fr >= fb fr)
      | Expr.Eq -> CBool (fun fr -> fa fr = fb fr)
      | Expr.Ne -> CBool (fun fr -> fa fr <> fb fr))

let rec compile_expr ctx (e : Expr.t) : cexpr =
  match e with
  | Int n -> CInt (fun _ -> n)
  | Float f -> CFloat (fun _ -> f)
  | Bool b -> CBool (fun _ -> b)
  | Var v -> (
      match Hashtbl.find_opt ctx.vars v.Var.id with
      | Some (SInt s) -> CInt (fun fr -> Array.unsafe_get fr.ints s)
      | Some (SFloat s) -> CFloat (fun fr -> Array.unsafe_get fr.floats s)
      | Some (SBool s) -> CBool (fun fr -> Array.unsafe_get fr.bools s)
      | None -> err "unbound variable %s" (Var.mangled v))
  | Binop (op, a, b) -> compile_binop op (compile_expr ctx a) (compile_expr ctx b)
  | Cmp (op, a, b) -> compile_cmp op (compile_expr ctx a) (compile_expr ctx b)
  | And (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr && fb fr)
  | Or (a, b) ->
      let fa = as_bool (compile_expr ctx a) and fb = as_bool (compile_expr ctx b) in
      CBool (fun fr -> fa fr || fb fr)
  | Not a ->
      let fa = as_bool (compile_expr ctx a) in
      CBool (fun fr -> not (fa fr))
  | Select (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      match (ca, cb) with
      | CInt fa, CInt fb -> CInt (fun fr -> if fc fr then fa fr else fb fr)
      | CBool fa, CBool fb -> CBool (fun fr -> if fc fr then fa fr else fb fr)
      | (CInt _ | CFloat _), (CInt _ | CFloat _) ->
          let fa = as_float ca and fb = as_float cb in
          CFloat (fun fr -> if fc fr then fa fr else fb fr)
      | _ -> err "select branches have mismatched types")
  | Load { buf = v; index } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      CFloat
        (fun fr ->
          fr.loads <- fr.loads + 1;
          let a = Array.unsafe_get fr.fbufs slot in
          let i = fi fr in
          if i < 0 || i >= Array.length a then
            err "load %s[%d] out of bounds (len %d)" name i (Array.length a)
          else Array.unsafe_get a i)
  | Ufun (name, args) -> compile_ufun ctx name args
  | Call (name, args) -> compile_call ctx name args
  | Access { tensor; _ } -> err "unlowered tensor access to %s reached the engine" tensor
  | Let (v, value, body) -> (
      let cv = compile_expr ctx value in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      with_var ctx v ty @@ fun slot ->
      let set : frame -> unit =
        match cv with
        | CInt f -> fun fr -> Array.unsafe_set fr.ints slot (f fr)
        | CFloat f -> fun fr -> Array.unsafe_set fr.floats slot (f fr)
        | CBool f -> fun fr -> Array.unsafe_set fr.bools slot (f fr)
      in
      match compile_expr ctx body with
      | CInt f ->
          CInt
            (fun fr ->
              set fr;
              f fr)
      | CFloat f ->
          CFloat
            (fun fr ->
              set fr;
              f fr)
      | CBool f ->
          CBool
            (fun fr ->
              set fr;
              f fr))

and compile_ufun ctx name args : cexpr =
  let slot = ufun_slot ctx name in
  match args with
  | [ a ] ->
      (* the hot path: one counter bump, one arg, direct table indexing *)
      let fi = as_int (compile_expr ctx a) in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let i = fi fr in
          match Array.unsafe_get fr.ufuns slot with
          | U_table t ->
              if i < 0 || i >= Array.length t then
                err "ufun %s: index %d out of bounds (len %d)" name i (Array.length t)
              else Array.unsafe_get t i
          | U_fn f -> f i
          | U_const n -> n
          | U_gen f -> f [ i ]
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | [] ->
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          match Array.unsafe_get fr.ufuns slot with
          | U_const n -> n
          | U_gen f -> f []
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (0 args)" name
          | U_unbound -> err "unbound uninterpreted function %s" name)
  | args ->
      let fis = List.map (fun a -> as_int (compile_expr ctx a)) args in
      let nargs = List.length args in
      CInt
        (fun fr ->
          fr.loads <- fr.loads + 1;
          fr.indirect <- fr.indirect + 1;
          let l = List.map (fun f -> f fr) fis in
          match Array.unsafe_get fr.ufuns slot with
          | U_gen f -> f l
          | U_const n -> n
          | U_table _ | U_fn _ -> err "ufun %s: arity mismatch (%d args)" name nargs
          | U_unbound -> err "unbound uninterpreted function %s" name)

and compile_call ctx name args : cexpr =
  (* intrinsics resolve at compile time; flops+4 per call, like the interp *)
  let cargs = List.map (fun a -> as_float (compile_expr ctx a)) args in
  let unary f =
    match cargs with
    | [ fa ] ->
        CFloat
          (fun fr ->
            fr.flops <- fr.flops + 4;
            f (fa fr))
    | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)
  in
  match name with
  | "exp" -> unary exp
  | "log" -> unary log
  | "sqrt" -> unary sqrt
  | "tanh" -> unary tanh
  | "erf" -> unary Interp.erf_approx
  | "relu" -> unary (Float.max 0.0)
  | "neg_infinity" -> (
      match cargs with
      | [] ->
          CFloat
            (fun fr ->
              fr.flops <- fr.flops + 4;
              neg_infinity)
      | _ -> err "unknown intrinsic %s/%d" name (List.length cargs))
  | _ -> err "unknown intrinsic %s/%d" name (List.length cargs)

(* ------------------------------------------------------------------ *)
(* Statement compilation *)

(* Chunk boundaries balancing per-iteration [weights] across [k] chunks:
   returns [k + 1] nondecreasing offsets with [bounds.(0) = 0] and
   [bounds.(k) = n]; every chunk is contiguous and (for k <= n) nonempty.
   Greedy by weight prefix: cut as soon as a chunk's proportional quota is
   met, while always leaving at least one iteration per remaining chunk —
   so one heavily ragged row cannot drag the whole tail into one chunk. *)
let balance_chunks (ws : int array) k : int array =
  let n = Array.length ws in
  let k = max 1 (min k n) in
  let total = max 1 (Array.fold_left ( + ) 0 ws) in
  let bounds = Array.make (k + 1) n in
  bounds.(0) <- 0;
  let c = ref 1 and acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + ws.(i);
    while
      !c < k && !acc * k >= !c * total && n - (i + 1) >= k - !c && bounds.(!c - 1) <= i
    do
      bounds.(!c) <- i + 1;
      incr c
    done
  done;
  while !c < k do
    bounds.(!c) <- max bounds.(!c - 1) (n - (k - !c));
    incr c
  done;
  bounds

(* Parallel chunk execution.  Mirrors Interp.exec_multicore: scalar state is
   copied per chunk (loop writes to disjoint buffer locations, per the
   Parallel-binding contract), the buffer slot table is shallow-copied so
   Alloc scratch stays chunk-local, and per-chunk counters fold into the
   parent through atomics — totals are exactly those of a serial run.

   Chunks are sized by [est] (a per-iteration cost estimate compiled from
   the loop body) when available, so a handful of long ragged rows no
   longer starves the other domains; without an estimate the split is by
   iteration count, as before.  The estimate runs on a scratch view of the
   frame whose counters are discarded — chunking must never perturb the
   statistics. *)
let run_parallel pool (fr : frame) slot m n ?est (cbody : frame -> unit) =
  let loads = Atomic.make 0 and stores = Atomic.make 0 and flops = Atomic.make 0 in
  let indirect = Atomic.make 0 and guards = Atomic.make 0 and guard_hits = Atomic.make 0 in
  let hoisted = Atomic.make 0 and mk_elems = Atomic.make 0 in
  let chunks = min n (Pool.parallelism pool * 4) in
  let bounds =
    match est with
    | None ->
        let csize = (n + chunks - 1) / chunks in
        Array.init (chunks + 1) (fun c -> min n (c * csize))
    | Some est ->
        let sfr = { fr with loads = 0 } in
        let ws =
          Array.init n (fun j ->
              Array.unsafe_set sfr.ints slot (m + j);
              try max 1 (est sfr) with _ -> 1)
        in
        balance_chunks ws chunks
  in
  let ti = Array.copy fr.ints
  and tf = Array.copy fr.floats
  and tb = Array.copy fr.bools in
  Pool.run pool ~chunks (fun c ->
      let lo = m + bounds.(c) in
      let hi = m + bounds.(c + 1) - 1 in
      if lo <= hi then begin
        let w =
          {
            fr with
            ints = Array.copy ti;
            floats = Array.copy tf;
            bools = Array.copy tb;
            fbufs = Array.copy fr.fbufs;
            pool = None (* no nested parallelism, like exec_multicore *);
            loads = 0;
            stores = 0;
            flops = 0;
            indirect = 0;
            guards = 0;
            guard_hits = 0;
            hoisted = 0;
            microkernel_elems = 0;
          }
        in
        for i = lo to hi do
          Array.unsafe_set w.ints slot i;
          cbody w
        done;
        ignore (Atomic.fetch_and_add loads w.loads);
        ignore (Atomic.fetch_and_add stores w.stores);
        ignore (Atomic.fetch_and_add flops w.flops);
        ignore (Atomic.fetch_and_add indirect w.indirect);
        ignore (Atomic.fetch_and_add guards w.guards);
        ignore (Atomic.fetch_and_add guard_hits w.guard_hits);
        ignore (Atomic.fetch_and_add hoisted w.hoisted);
        ignore (Atomic.fetch_and_add mk_elems w.microkernel_elems)
      end);
  fr.loads <- fr.loads + Atomic.get loads;
  fr.stores <- fr.stores + Atomic.get stores;
  fr.flops <- fr.flops + Atomic.get flops;
  fr.indirect <- fr.indirect + Atomic.get indirect;
  fr.guards <- fr.guards + Atomic.get guards;
  fr.guard_hits <- fr.guard_hits + Atomic.get guard_hits;
  fr.hoisted <- fr.hoisted + Atomic.get hoisted;
  fr.microkernel_elems <- fr.microkernel_elems + Atomic.get mk_elems

(* ------------------------------------------------------------------ *)
(* Microkernels (opt >= 2).  An innermost loop whose body matches one of
   the Optimize.classify_inner shapes compiles to a tight float-array loop
   with running (strength-reduced) offsets and a register accumulator — no
   per-element slot traffic, no per-element closure calls, no per-element
   bounds checks.  Bitwise parity holds because the float operation
   sequence is exactly the interpreter's: reductions combine into the same
   cell in the same order (kept in a register, legal because nothing else
   reads or writes the cell mid-loop — enforced by the dst/src aliasing
   dispatch), and element-wise loops process elements in the same order.
   Bounds checks move to the loop head: a linear index sequence is in
   bounds iff its two endpoints are (divergence only on error paths).
   Counters are bulk-added with the same totals; [microkernel_elems]
   records how many elements took this path. *)

let check_lin ~what ~name arr i0 i1 =
  let lo = if i0 <= i1 then i0 else i1 in
  let hi = if i0 <= i1 then i1 else i0 in
  if lo < 0 || hi >= Array.length arr then
    err "%s %s[%d] out of bounds (len %d)" what name
      (if lo < 0 then lo else hi)
      (Array.length arr)

let combine_of = function
  | Stmt.Sum -> ( +. )
  | Stmt.Prod -> ( *. )
  | Stmt.Rmax -> Float.max
  | Stmt.Rmin -> Float.min

let compile_affine ctx (ax : Optimize.affine) =
  (as_int (compile_expr ctx ax.Optimize.base), as_int (compile_expr ctx ax.Optimize.stride))

(* [emit_inner ctx pattern] returns [fallback -> frame -> m -> n -> unit];
   the fallback (the generic compiled loop) runs when the destination
   aliases an input, where register accumulation would diverge.  Callers
   guarantee n > 0. *)
let emit_inner ctx (p : Optimize.inner) :
    (frame -> int -> int -> unit) -> frame -> int -> int -> unit =
  match p with
  | Optimize.Dot { dst; dst_idx; op; a; a_ix; b; b_ix } ->
      let dslot = buf_slot ctx dst and aslot = buf_slot ctx a and bslot = buf_slot ctx b in
      let dname = Var.mangled dst and aname = Var.mangled a and bname = Var.mangled b in
      let fdi = as_int (compile_expr ctx dst_idx) in
      let fab, fas = compile_affine ctx a_ix in
      let fbb, fbs = compile_affine ctx b_ix in
      let combine = combine_of op in
      let is_sum = match op with Stmt.Sum -> true | _ -> false in
      fun fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let aarr = Array.unsafe_get fr.fbufs aslot in
        let barr = Array.unsafe_get fr.fbufs bslot in
        if darr == aarr || darr == barr then fallback fr m n
        else begin
          let di = fdi fr in
          if di < 0 || di >= Array.length darr then
            err "reduce_store %s[%d] out of bounds (len %d)" dname di (Array.length darr);
          let astep = fas fr in
          let a0 = fab fr + (m * astep) in
          let bstep = fbs fr in
          let b0 = fbb fr + (m * bstep) in
          check_lin ~what:"load" ~name:aname aarr a0 (a0 + ((n - 1) * astep));
          check_lin ~what:"load" ~name:bname barr b0 (b0 + ((n - 1) * bstep));
          let acc = ref (Array.unsafe_get darr di) in
          let ai = ref a0 and bi = ref b0 in
          if is_sum then
            for _ = 1 to n do
              acc := !acc +. (Array.unsafe_get aarr !ai *. Array.unsafe_get barr !bi);
              ai := !ai + astep;
              bi := !bi + bstep
            done
          else
            for _ = 1 to n do
              acc := combine !acc (Array.unsafe_get aarr !ai *. Array.unsafe_get barr !bi);
              ai := !ai + astep;
              bi := !bi + bstep
            done;
          Array.unsafe_set darr di !acc;
          fr.loads <- fr.loads + (2 * n);
          fr.flops <- fr.flops + (2 * n);
          fr.stores <- fr.stores + n;
          fr.microkernel_elems <- fr.microkernel_elems + n
        end
  | Optimize.Reduce1 { dst; dst_idx; op; src; src_ix } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdi = as_int (compile_expr ctx dst_idx) in
      let fsb, fss = compile_affine ctx src_ix in
      let combine = combine_of op in
      fun fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        if darr == sarr then fallback fr m n
        else begin
          let di = fdi fr in
          if di < 0 || di >= Array.length darr then
            err "reduce_store %s[%d] out of bounds (len %d)" dname di (Array.length darr);
          let sstep = fss fr in
          let s0 = fsb fr + (m * sstep) in
          check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
          let acc = ref (Array.unsafe_get darr di) in
          let si = ref s0 in
          for _ = 1 to n do
            acc := combine !acc (Array.unsafe_get sarr !si);
            si := !si + sstep
          done;
          Array.unsafe_set darr di !acc;
          fr.loads <- fr.loads + n;
          fr.flops <- fr.flops + n;
          fr.stores <- fr.stores + n;
          fr.microkernel_elems <- fr.microkernel_elems + n
        end
  | Optimize.Copy { dst; dst_ix; src; src_ix } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdb, fds = compile_affine ctx dst_ix in
      let fsb, fss = compile_affine ctx src_ix in
      (* element order matches the generic loop, so aliasing is fine *)
      fun _fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        let dstep = fds fr in
        let d0 = fdb fr + (m * dstep) in
        let sstep = fss fr in
        let s0 = fsb fr + (m * sstep) in
        check_lin ~what:"store" ~name:dname darr d0 (d0 + ((n - 1) * dstep));
        check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
        let di = ref d0 and si = ref s0 in
        for _ = 1 to n do
          Array.unsafe_set darr !di (Array.unsafe_get sarr !si);
          di := !di + dstep;
          si := !si + sstep
        done;
        fr.loads <- fr.loads + n;
        fr.stores <- fr.stores + n;
        fr.microkernel_elems <- fr.microkernel_elems + n
  | Optimize.Scale { dst; dst_ix; src; src_ix; factor } ->
      let dslot = buf_slot ctx dst and sslot = buf_slot ctx src in
      let dname = Var.mangled dst and sname = Var.mangled src in
      let fdb, fds = compile_affine ctx dst_ix in
      let fsb, fss = compile_affine ctx src_ix in
      fun _fallback fr m n ->
        let darr = Array.unsafe_get fr.fbufs dslot in
        let sarr = Array.unsafe_get fr.fbufs sslot in
        let dstep = fds fr in
        let d0 = fdb fr + (m * dstep) in
        let sstep = fss fr in
        let s0 = fsb fr + (m * sstep) in
        check_lin ~what:"store" ~name:dname darr d0 (d0 + ((n - 1) * dstep));
        check_lin ~what:"load" ~name:sname sarr s0 (s0 + ((n - 1) * sstep));
        let di = ref d0 and si = ref s0 in
        for _ = 1 to n do
          Array.unsafe_set darr !di (Array.unsafe_get sarr !si *. factor);
          di := !di + dstep;
          si := !si + sstep
        done;
        fr.loads <- fr.loads + n;
        fr.flops <- fr.flops + n;
        fr.stores <- fr.stores + n;
        fr.microkernel_elems <- fr.microkernel_elems + n

(* ------------------------------------------------------------------ *)
(* Per-iteration weight estimator for parallel chunk balancing: static
   expression costs from the analytic cost model, dynamic trip counts by
   evaluating loop bounds on the frame (inner loop variables pinned to
   their first iteration — the estimate guides chunking only, so an
   approximation is fine).  Compiled with its own scalar slots; evaluated
   on a scratch frame view, so it can neither clobber the kernel's state
   nor perturb its counters.  Any compile- or eval-time failure falls back
   to uniform weights. *)
let rec est_stmt ctx (s : Stmt.t) : frame -> int =
  let ecost e = max 1 (int_of_float (Cost_model.total (Cost_model.expr_counts e))) in
  match s with
  | Stmt.Store { index; value; _ } | Stmt.Reduce_store { index; value; _ } ->
      let c = ecost index + ecost value in
      fun _ -> c
  | Stmt.Eval e ->
      let c = ecost e in
      fun _ -> c
  | Stmt.Nop -> fun _ -> 1
  | Stmt.Seq l ->
      let es = Array.of_list (List.map (est_stmt ctx) l) in
      fun fr -> Array.fold_left (fun acc f -> acc + f fr) 0 es
  | Stmt.If (c, a, b) ->
      (* both branches, statically: the skew this estimator exists to fix
         comes from ragged trip counts, not guard outcomes *)
      let cc = ecost c in
      let ea = est_stmt ctx a in
      let eb = match b with Some b -> est_stmt ctx b | None -> fun _ -> 0 in
      fun fr -> cc + ea fr + eb fr
  | Stmt.Let_stmt (v, e, body) -> (
      match compile_expr ctx e with
      | CInt f ->
          with_var ctx v TInt @@ fun slot ->
          let eb = est_stmt ctx body in
          fun fr ->
            Array.unsafe_set fr.ints slot (f fr);
            eb fr
      | CFloat _ | CBool _ -> est_stmt ctx body)
  | Stmt.Alloc { body; _ } -> est_stmt ctx body
  | Stmt.For { var; min; extent; body; _ } ->
      let fm = as_int (compile_expr ctx min) in
      let fn = as_int (compile_expr ctx extent) in
      with_var ctx var TInt @@ fun slot ->
      let eb = est_stmt ctx body in
      fun fr ->
        let m = fm fr in
        let n = fn fr in
        if n <= 0 then 1
        else begin
          Array.unsafe_set fr.ints slot m;
          1 + (n * eb fr)
        end

let compile_est ctx (s : Stmt.t) : (frame -> int) option =
  match est_stmt ctx s with e -> Some e | exception Error _ -> None

(* [par_ok] tracks which Parallel loops Interp.exec_multicore would actually
   parallelize: those reachable through For / Let_stmt / Seq only.  Bodies
   of parallel loops, If branches and Alloc bodies execute serially there,
   so they compile with par_ok = false here — keeping the engine's execution
   structure (and hence its soundness obligations) identical. *)
let rec compile_stmt ctx ~par_ok (s : Stmt.t) : frame -> unit =
  match s with
  | For { var; min; extent; kind; body } -> (
      let fm = as_int (compile_expr ctx min) in
      let fn = as_int (compile_expr ctx extent) in
      let par = par_ok && (match kind with Stmt.Parallel -> true | _ -> false) in
      with_var ctx var TInt @@ fun slot ->
      let micro =
        if (not par) && ctx.opt >= 2 then
          Option.map (emit_inner ctx) (Optimize.classify_inner ~var body)
        else None
      in
      let cbody = compile_stmt ctx ~par_ok:(par_ok && not par) body in
      let serial fr m n =
        for i = m to m + n - 1 do
          Array.unsafe_set fr.ints slot i;
          cbody fr
        done
      in
      if par then begin
        let est = compile_est ctx body in
        fun fr ->
          let m = fm fr in
          let n = fn fr in
          match fr.pool with
          | Some p when n > 1 && Pool.parallelism p > 1 -> run_parallel p fr slot m n ?est cbody
          | _ -> serial fr m n
      end
      else
        match micro with
        | Some mk ->
            let mk = mk serial in
            fun fr ->
              let m = fm fr in
              let n = fn fr in
              if n > 0 then mk fr m n
        | None -> (
            (* strength reduction (opt >= 1): an innermost store loop whose
               index is affine in the loop variable becomes a running-offset
               loop — the value closure still runs per element (arbitrary
               expression), but the address tree is evaluated once and the
               per-element bounds checks collapse to two endpoint checks. *)
            let sred =
              if ctx.opt >= 1 then
                match body with
                | Stmt.Store { buf; index; value } ->
                    Option.map (fun ax -> (None, buf, ax, value)) (Optimize.affine_in var index)
                | Stmt.Reduce_store { buf; index; value; op } ->
                    Option.map
                      (fun ax -> (Some op, buf, ax, value))
                      (Optimize.affine_in var index)
                | _ -> None
              else None
            in
            match sred with
            | Some (op, buf, ax, value) -> (
                let bslot = buf_slot ctx buf in
                let bname = Var.mangled buf in
                let fbase, fstep = compile_affine ctx ax in
                let fv = as_float (compile_expr ctx value) in
                match op with
                | None ->
                    fun fr ->
                      let m = fm fr in
                      let n = fn fr in
                      if n > 0 then begin
                        let a = Array.unsafe_get fr.fbufs bslot in
                        let step = fstep fr in
                        let i0 = fbase fr + (m * step) in
                        check_lin ~what:"store" ~name:bname a i0 (i0 + ((n - 1) * step));
                        let ix = ref i0 in
                        for i = m to m + n - 1 do
                          Array.unsafe_set fr.ints slot i;
                          Array.unsafe_set a !ix (fv fr);
                          ix := !ix + step
                        done;
                        fr.stores <- fr.stores + n
                      end
                | Some rop ->
                    let combine = combine_of rop in
                    fun fr ->
                      let m = fm fr in
                      let n = fn fr in
                      if n > 0 then begin
                        let a = Array.unsafe_get fr.fbufs bslot in
                        let step = fstep fr in
                        let i0 = fbase fr + (m * step) in
                        check_lin ~what:"reduce_store" ~name:bname a i0 (i0 + ((n - 1) * step));
                        let ix = ref i0 in
                        for i = m to m + n - 1 do
                          Array.unsafe_set fr.ints slot i;
                          (* value first, then the current cell — interpreter order *)
                          let x = fv fr in
                          Array.unsafe_set a !ix (combine (Array.unsafe_get a !ix) x);
                          ix := !ix + step
                        done;
                        fr.stores <- fr.stores + n;
                        fr.flops <- fr.flops + n
                      end)
            | None ->
                fun fr ->
                  let m = fm fr in
                  let n = fn fr in
                  serial fr m n))
  | Let_stmt (v, e, body) -> (
      let cv = compile_expr ctx e in
      let ty = match cv with CInt _ -> TInt | CFloat _ -> TFloat | CBool _ -> TBool in
      let hoisted = String.equal (Var.name v) Optimize.hoist_var_name in
      with_var ctx v ty @@ fun slot ->
      let cbody = compile_stmt ctx ~par_ok body in
      match cv with
      | CInt f when hoisted ->
          (* LICM preheader binding: count each evaluation *)
          fun fr ->
            fr.hoisted <- fr.hoisted + 1;
            Array.unsafe_set fr.ints slot (f fr);
            cbody fr
      | CInt f ->
          fun fr ->
            Array.unsafe_set fr.ints slot (f fr);
            cbody fr
      | CFloat f ->
          fun fr ->
            Array.unsafe_set fr.floats slot (f fr);
            cbody fr
      | CBool f ->
          fun fr ->
            Array.unsafe_set fr.bools slot (f fr);
            cbody fr)
  | Store { buf = v; index; value } ->
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      fun fr ->
        fr.stores <- fr.stores + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else Array.unsafe_set a i (fv fr)
  | Reduce_store { buf = v; index; value; op } -> (
      let slot = buf_slot ctx v in
      let name = Var.mangled v in
      let fi = as_int (compile_expr ctx index) in
      let fv = as_float (compile_expr ctx value) in
      let reduce combine fr =
        fr.stores <- fr.stores + 1;
        fr.flops <- fr.flops + 1;
        let a = Array.unsafe_get fr.fbufs slot in
        let i = fi fr in
        if i < 0 || i >= Array.length a then
          err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
        else
          (* value first, then the current cell — interpreter order *)
          let x = fv fr in
          let cur = Array.unsafe_get a i in
          Array.unsafe_set a i (combine cur x)
      in
      match op with
      | Stmt.Sum ->
          fun fr ->
            fr.stores <- fr.stores + 1;
            fr.flops <- fr.flops + 1;
            let a = Array.unsafe_get fr.fbufs slot in
            let i = fi fr in
            if i < 0 || i >= Array.length a then
              err "reduce_store %s[%d] out of bounds (len %d)" name i (Array.length a)
            else
              let x = fv fr in
              Array.unsafe_set a i (Array.unsafe_get a i +. x)
      | Stmt.Prod -> reduce ( *. )
      | Stmt.Rmax -> reduce Float.max
      | Stmt.Rmin -> reduce Float.min)
  | If (c, a, b) -> (
      let fc = as_bool (compile_expr ctx c) in
      let ca = compile_stmt ctx ~par_ok:false a in
      match Option.map (compile_stmt ctx ~par_ok:false) b with
      | None ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
      | Some cb ->
          fun fr ->
            fr.guards <- fr.guards + 1;
            if fc fr then begin
              fr.guard_hits <- fr.guard_hits + 1;
              ca fr
            end
            else cb fr)
  | Seq l -> (
      match List.map (compile_stmt ctx ~par_ok) l with
      | [] -> fun _ -> ()
      | [ c ] -> c
      | [ c1; c2 ] ->
          fun fr ->
            c1 fr;
            c2 fr
      | cs ->
          let arr = Array.of_list cs in
          let n = Array.length arr in
          fun fr ->
            for i = 0 to n - 1 do
              (Array.unsafe_get arr i) fr
            done)
  | Alloc { buf = v; size; body } ->
      let fn = as_int (compile_expr ctx size) in
      let slot = buf_slot ~internal:true ctx v in
      let cbody = compile_stmt ctx ~par_ok:false body in
      (* Scratch comes from the process-wide arena, rounded up to a
         power-of-two size class.  Exact-length keying here was a miss
         storm under the batch-former: row-length-sized scratch (e.g. the
         softmax row buffer) takes a different exact size for every
         distinct length a mega-batch mixes in, so each composition kept
         allocating fresh storage; class rounding makes those sizes
         converge onto the same closed class set the serving buffers use.
         Zero-fill and the negative-size error are exactly those of the
         [Array.make n 0.0] this replaces; a correct kernel never
         addresses the class-rounding tail. *)
      fun fr ->
        let n = fn fr in
        let a = Buffer.Arena.acquire_class Buffer.Arena.global n in
        Array.unsafe_set fr.fbufs slot a;
        let release () =
          Array.unsafe_set fr.fbufs slot [||];
          Buffer.Arena.release Buffer.Arena.global a
        in
        (try cbody fr
         with e ->
           release ();
           raise e);
        release ()
  | Eval e -> (
      match compile_expr ctx e with
      | CInt f -> fun fr -> ignore (f fr)
      | CFloat f -> fun fr -> ignore (f fr)
      | CBool f -> fun fr -> ignore (f fr))
  | Nop -> fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Public API *)

let compile ?(opt = Optimize.O0) (s : Stmt.t) : compiled =
  let s = match opt with Optimize.O0 -> s | _ -> fst (Optimize.run ~level:opt s) in
  let ctx = new_ctx ~opt:(Optimize.int_of_level opt) () in
  let entry = compile_stmt ctx ~par_ok:true s in
  { c_layout = finalize ctx; c_entry = entry }

let slot_count c = c.c_layout.n_ints + c.c_layout.n_floats + c.c_layout.n_bools

let frame (c : compiled) : frame =
  let l = c.c_layout in
  let nbufs = Array.length l.buf_names in
  {
    layout = l;
    entry = c.c_entry;
    ints = Array.make (max 1 l.n_ints) 0;
    floats = Array.make (max 1 l.n_floats) 0.0;
    bools = Array.make (max 1 l.n_bools) false;
    fbufs = Array.make (max 1 nbufs) [||];
    buf_bound = Array.make (max 1 nbufs) false;
    ufuns = Array.make (max 1 (Array.length l.ufun_names)) U_unbound;
    pool = None;
    loads = 0;
    stores = 0;
    flops = 0;
    indirect = 0;
    guards = 0;
    guard_hits = 0;
    hoisted = 0;
    microkernel_elems = 0;
  }

let bind_buf fr (v : Var.t) (b : Buffer.t) =
  let slot =
    match Hashtbl.find_opt fr.layout.buf_slots v.Var.id with
    | Some s -> Some s
    | None -> (
        (* alpha-equivalent rebind: same display name, fresh var id *)
        match Hashtbl.find_opt fr.layout.buf_by_name (Var.name v) with
        | Some s when s >= 0 -> Some s
        | _ -> None)
  in
  match slot with
  | None -> () (* this kernel never touches that tensor *)
  | Some slot -> (
      match b with
      | Buffer.F a ->
          fr.fbufs.(slot) <- a;
          fr.buf_bound.(slot) <- true
      | Buffer.I _ -> err "engine: integer buffer %s unsupported" (Var.mangled v))

let bind_ufun_binding fr name u =
  match Hashtbl.find_opt fr.layout.ufun_slots name with
  | None -> () (* this kernel never calls that ufun *)
  | Some slot -> fr.ufuns.(slot) <- u

let bind_ufun_table fr name a = bind_ufun_binding fr name (U_table a)
let bind_ufun1 fr name f = bind_ufun_binding fr name (U_fn f)
let bind_ufun_const fr name n = bind_ufun_binding fr name (U_const n)
let bind_ufun fr name f = bind_ufun_binding fr name (U_gen f)

let run ?pool (fr : frame) : unit =
  let l = fr.layout in
  Array.iteri
    (fun i ext -> if ext && not fr.buf_bound.(i) then err "unbound buffer %s" l.buf_names.(i))
    l.buf_external;
  Array.iteri
    (fun i name ->
      match fr.ufuns.(i) with
      | U_unbound -> err "unbound uninterpreted function %s" name
      | _ -> ())
    l.ufun_names;
  fr.pool <- pool;
  Fun.protect ~finally:(fun () -> fr.pool <- None) (fun () -> fr.entry fr)

let stats fr =
  [
    ("loads", fr.loads);
    ("stores", fr.stores);
    ("flops", fr.flops);
    ("indirect", fr.indirect);
    ("guards", fr.guards);
    ("guard_hits", fr.guard_hits);
    ("hoisted", fr.hoisted);
    ("microkernel_elems", fr.microkernel_elems);
  ]

let flush_metrics fr =
  Obs.Metrics.add (Obs.Metrics.counter "engine.loads") fr.loads;
  Obs.Metrics.add (Obs.Metrics.counter "engine.stores") fr.stores;
  Obs.Metrics.add (Obs.Metrics.counter "engine.flops") fr.flops;
  Obs.Metrics.add (Obs.Metrics.counter "engine.indirect") fr.indirect;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guards") fr.guards;
  Obs.Metrics.add (Obs.Metrics.counter "engine.guard_hits") fr.guard_hits;
  Obs.Metrics.add (Obs.Metrics.counter "engine.hoisted") fr.hoisted;
  Obs.Metrics.add (Obs.Metrics.counter "engine.microkernel_elems") fr.microkernel_elems
