(** Flat runtime buffers.

    Kernels operate on flat float storage; auxiliary structures built by the
    prelude (offset arrays, fused-loop maps) are flat int storage. *)

type t = F of float array | I of int array

let float_buf n = F (Array.make n 0.0)
let int_buf n = I (Array.make n 0)
let of_floats a = F a
let of_ints a = I a

let length = function F a -> Array.length a | I a -> Array.length a

let floats = function
  | F a -> a
  | I _ -> invalid_arg "Buffer.floats: integer buffer"

let ints = function
  | I a -> a
  | F _ -> invalid_arg "Buffer.ints: float buffer"

let get_float b i =
  match b with F a -> a.(i) | I a -> float_of_int a.(i)

let get_int b i =
  match b with I a -> a.(i) | F a -> int_of_float a.(i)

let set_float b i v =
  match b with F a -> a.(i) <- v | I a -> a.(i) <- int_of_float v

let set_int b i v = match b with I a -> a.(i) <- v | F a -> a.(i) <- float_of_int v

(** Size in bytes, assuming 4-byte elements (the paper evaluates in fp32 and
    reports aux-structure sizes in kB assuming 4-byte ints). *)
let bytes b = 4 * length b

let fill_float b v =
  match b with F a -> Array.fill a 0 (Array.length a) v | I _ -> invalid_arg "fill_float"

(** Buffer arena: recycles float arrays across requests so a steady-state
    serving loop allocates no fresh float storage.  Free lists are keyed by
    exact array length; {!Arena.acquire_class} rounds the request up to the
    next power of two first, so a stream of varying ragged batch sizes
    converges onto a small, closed set of size classes.  Acquired arrays
    are zero-filled — callers get exactly what [Array.make n 0.0] gave
    them before, including zeroed padding (which padded reductions rely
    on), at memset cost instead of allocation + GC cost.  Thread-safe: the
    engine acquires scratch from inside parallel chunks. *)
module Arena = struct
  type t = { mutex : Mutex.t; pools : (int, float array list ref) Hashtbl.t }

  let create () = { mutex = Mutex.create (); pools = Hashtbl.create 32 }

  (* module-level handles: counter lookup is off the acquire hot path *)
  let hit_c = Obs.Metrics.counter "arena.hit"
  let miss_c = Obs.Metrics.counter "arena.miss"

  let acquire_counted t n =
    Mutex.lock t.mutex;
    let r =
      match Hashtbl.find_opt t.pools n with
      | Some ({ contents = a :: rest } as l) ->
          l := rest;
          Some a
      | _ -> None
    in
    Mutex.unlock t.mutex;
    match r with
    | Some a ->
        Obs.Metrics.incr hit_c;
        Array.fill a 0 n 0.0;
        (a, true)
    | None ->
        Obs.Metrics.incr miss_c;
        (* no clamping: a negative size must raise exactly like the
           [Array.make n 0.0] this replaces *)
        (Array.make n 0.0, false)

  let acquire t n = fst (acquire_counted t n)

  (* next power of two >= n (n >= 1) *)
  let size_class n =
    let c = ref 1 in
    while !c < n do
      c := !c * 2
    done;
    !c

  let acquire_class t n = if n <= 0 then acquire t n else acquire t (size_class n)

  (* Like [acquire_class] but also reports whether the array was
     recycled — the serving layer's per-request arena accounting (the
     global hit/miss counters interleave across concurrent requests). *)
  let acquire_class_counted t n =
    if n <= 0 then acquire_counted t n else acquire_counted t (size_class n)

  let release t a =
    let n = Array.length a in
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.pools n with
    | Some l -> l := a :: !l
    | None -> Hashtbl.add t.pools n (ref [ a ]));
    Mutex.unlock t.mutex

  let clear t =
    Mutex.lock t.mutex;
    Hashtbl.reset t.pools;
    Mutex.unlock t.mutex

  let stored t =
    Mutex.lock t.mutex;
    let n = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.pools 0 in
    Mutex.unlock t.mutex;
    n

  (* one process-wide arena: the engine's [Alloc] scratch and the serving
     path's tensor buffers share it, and the arena.hit / arena.miss
     metrics describe the whole process *)
  let global = create ()
end
