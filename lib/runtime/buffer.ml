(** Flat runtime buffers.

    Kernels operate on flat float storage; auxiliary structures built by the
    prelude (offset arrays, fused-loop maps) are flat int storage. *)

type t = F of float array | I of int array

let float_buf n = F (Array.make n 0.0)
let int_buf n = I (Array.make n 0)
let of_floats a = F a
let of_ints a = I a

let length = function F a -> Array.length a | I a -> Array.length a

let floats = function
  | F a -> a
  | I _ -> invalid_arg "Buffer.floats: integer buffer"

let ints = function
  | I a -> a
  | F _ -> invalid_arg "Buffer.ints: float buffer"

let get_float b i =
  match b with F a -> a.(i) | I a -> float_of_int a.(i)

let get_int b i =
  match b with I a -> a.(i) | F a -> int_of_float a.(i)

let set_float b i v =
  match b with F a -> a.(i) <- v | I a -> a.(i) <- int_of_float v

let set_int b i v = match b with I a -> a.(i) <- v | F a -> a.(i) <- float_of_int v

(** Size in bytes, assuming 4-byte elements (the paper evaluates in fp32 and
    reports aux-structure sizes in kB assuming 4-byte ints). *)
let bytes b = 4 * length b

let fill_float b v =
  match b with F a -> Array.fill a 0 (Array.length a) v | I _ -> invalid_arg "fill_float"
