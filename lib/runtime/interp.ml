open Ir

(** Reference interpreter for the lowered IR.

    The interpreter executes a kernel statement scalar-by-scalar over real
    buffers.  It is the ground truth used by the test suite: every CoRa
    schedule, however aggressively padded / split / fused, must compute the
    same values as the unscheduled program when run through here.  GPU and
    parallel loop bindings are executed sequentially — binding annotations
    only matter to the cost model and machine simulator. *)

type value = VInt of int | VFloat of float | VBool of bool

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let to_int = function
  | VInt n -> n
  | VFloat f -> int_of_float f
  | VBool _ -> err "expected int, got bool"

let to_float = function
  | VFloat f -> f
  | VInt n -> float_of_int n
  | VBool _ -> err "expected float, got bool"

let to_bool = function VBool b -> b | v -> err "expected bool, got %d" (to_int v)

(* Uninterpreted-function bindings: almost every ufun the lowered IR emits
   takes exactly one argument (prelude tables, length functions), so a
   dedicated 1-argument representation lets [eval] skip the per-access
   argument-list allocation.  Each [U1] carries a last-lookup cache:
   lowered loop nests re-read the same ragged offset (e.g. [row_off b])
   many times per row, so the common case is a repeat of the previous
   argument.  The cache is a single [option ref] holding the pair, so
   concurrent domains can race on it without tearing (each sees some
   complete former pair); only successful lookups are cached, keeping
   error behaviour identical. *)
type ufun = U1 of (int -> int) * (int * int) option ref | UN of (int list -> int)

(* hits counted process-wide; counter bumps ([loads]/[indirect]) are NOT
   skipped on a hit, so cached and uncached runs stay counter-identical *)
let ufun_cache_hit_c = Obs.Metrics.counter "ufun_cache.hit"

let apply_u1 f cache i =
  match !cache with
  | Some (j, v) when j = i ->
      Obs.Metrics.incr ufun_cache_hit_c;
      v
  | _ ->
      let v = f i in
      cache := Some (i, v);
      v

type env = {
  mutable vars : value Var.Map.t;
  mutable bufs : Buffer.t Var.Map.t;
  ufuns : (string, ufun) Hashtbl.t;
      (** uninterpreted functions, bound by the prelude at launch time *)
  mutable loads : int;  (** statistics: scalar loads executed *)
  mutable stores : int;
  mutable flops : int;  (** floating-point operations executed *)
  mutable indirect : int;
      (** uninterpreted-function (prelude table) accesses — the indirect
          accesses whose overhead §D.7 studies; also counted in [loads] *)
  mutable guards : int;  (** bound-guard ([If]) conditions evaluated *)
  mutable guard_hits : int;  (** guard conditions that held (body ran) *)
}

let create () =
  { vars = Var.Map.empty; bufs = Var.Map.empty; ufuns = Hashtbl.create 16;
    loads = 0; stores = 0; flops = 0; indirect = 0; guards = 0; guard_hits = 0 }

let bind_buf env v b = env.bufs <- Var.Map.add v b env.bufs
let bind_var env v value = env.vars <- Var.Map.add v value env.vars
let bind_ufun env name f = Hashtbl.replace env.ufuns name (UN f)

(** Bind a 1-argument ufun on the allocation-free fast path. *)
let bind_ufun1 env name f = Hashtbl.replace env.ufuns name (U1 (f, ref None))

(** Bind a 1-argument ufun backed by an int array. *)
let bind_ufun_array env name (a : int array) =
  bind_ufun1 env name (fun i ->
      if i < 0 || i >= Array.length a then
        err "ufun %s: index %d out of bounds (len %d)" name i (Array.length a)
      else a.(i))

let buf env v =
  match Var.Map.find_opt v env.bufs with
  | Some b -> b
  | None -> err "unbound buffer %s" (Var.mangled v)

(* Abramowitz–Stegun 7.1.26 approximation; plenty for gelu tests.  Shared
   with Engine so both execution paths are bit-identical. *)
let erf_approx x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let intrinsic name args =
  match (name, args) with
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "sqrt", [ x ] -> sqrt x
  | "tanh", [ x ] -> tanh x
  | "erf", [ x ] -> erf_approx x
  | "relu", [ x ] -> Float.max 0.0 x
  | "neg_infinity", [] -> neg_infinity
  | _ -> err "unknown intrinsic %s/%d" name (List.length args)

let rec eval env (e : Expr.t) : value =
  match e with
  | Int n -> VInt n
  | Float f -> VFloat f
  | Bool b -> VBool b
  | Var v -> (
      match Var.Map.find_opt v env.vars with
      | Some value -> value
      | None -> err "unbound variable %s" (Var.mangled v))
  | Binop (op, a, b) -> eval_binop env op (eval env a) (eval env b)
  | Cmp (op, a, b) ->
      let a = eval env a and b = eval env b in
      (* monomorphic compares: no polymorphic-compare dispatch per scalar *)
      let c =
        match (a, b) with
        | VFloat _, _ | _, VFloat _ -> Float.compare (to_float a) (to_float b)
        | _ -> Int.compare (to_int a) (to_int b)
      in
      VBool
        (match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq -> c = 0
        | Ne -> c <> 0)
  | And (a, b) -> VBool (to_bool (eval env a) && to_bool (eval env b))
  | Or (a, b) -> VBool (to_bool (eval env a) || to_bool (eval env b))
  | Not a -> VBool (not (to_bool (eval env a)))
  | Select (c, a, b) -> if to_bool (eval env c) then eval env a else eval env b
  | Load { buf = v; index } ->
      env.loads <- env.loads + 1;
      let b = buf env v in
      let i = to_int (eval env index) in
      if i < 0 || i >= Buffer.length b then
        err "load %s[%d] out of bounds (len %d)" (Var.mangled v) i (Buffer.length b)
      else (match b with F a -> VFloat a.(i) | I a -> VInt a.(i))
  | Ufun (name, [ a ]) -> (
      (* fast path: the 1-argument case (every prelude table and length
         function) evaluates without allocating an argument list *)
      match Hashtbl.find_opt env.ufuns name with
      | Some u ->
          env.loads <- env.loads + 1;
          env.indirect <- env.indirect + 1;
          let i = to_int (eval env a) in
          VInt (match u with U1 (f, cache) -> apply_u1 f cache i | UN f -> f [ i ])
      | None -> err "unbound uninterpreted function %s" name)
  | Ufun (name, args) -> (
      match Hashtbl.find_opt env.ufuns name with
      | Some u ->
          env.loads <- env.loads + 1;
          env.indirect <- env.indirect + 1;
          let l = List.map (fun a -> to_int (eval env a)) args in
          VInt
            (match u with
            | UN f -> f l
            | U1 (f, cache) -> (
                match l with
                | [ i ] -> apply_u1 f cache i
                | _ -> err "ufun %s: arity mismatch (%d args)" name (List.length l)))
      | None -> err "unbound uninterpreted function %s" name)
  | Call (name, args) ->
      env.flops <- env.flops + 4;
      VFloat (intrinsic name (List.map (fun a -> to_float (eval env a)) args))
  | Access { tensor; _ } ->
      err "unlowered tensor access to %s reached the interpreter" tensor
  | Let (v, value, body) ->
      let saved = env.vars in
      bind_var env v (eval env value);
      let result = eval env body in
      env.vars <- saved;
      result

and eval_binop env op a b =
  let float_op f =
    env.flops <- env.flops + 1;
    VFloat (f (to_float a) (to_float b))
  in
  match (op, a, b) with
  | Add, VInt x, VInt y -> VInt (x + y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Min, VInt x, VInt y -> VInt (min x y)
  | Max, VInt x, VInt y -> VInt (max x y)
  | FloorDiv, VInt x, VInt y ->
      if y = 0 then err "division by zero"
      else VInt (if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y)
  | Mod, VInt x, VInt y ->
      if y = 0 then err "mod by zero"
      else
        let r = x mod y in
        VInt (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | Add, _, _ -> float_op ( +. )
  | Sub, _, _ -> float_op ( -. )
  | Mul, _, _ -> float_op ( *. )
  | Div, _, _ -> float_op ( /. )
  | Min, _, _ -> float_op Float.min
  | Max, _, _ -> float_op Float.max
  | (FloorDiv | Mod), _, _ -> err "floordiv/mod on floats"

(* Execute one loop level across OCaml domains: iterations are chunked, and
   each domain runs with its own variable map (buffers and ufuns are shared;
   a correctly-scheduled Parallel loop writes disjoint locations).  Used by
   [exec_multicore] for [Parallel]-bound loops. *)
let parallel_for ~(domains : int) m n (f : int -> unit) =
  if n <= 1 || domains <= 1 then
    for i = m to m + n - 1 do
      f i
    done
  else begin
    let d = min domains n in
    let chunk = (n + d - 1) / d in
    let workers =
      List.init d (fun w ->
          Domain.spawn (fun () ->
              let lo = m + (w * chunk) in
              let hi = min (m + n - 1) (lo + chunk - 1) in
              for i = lo to hi do
                f i
              done))
    in
    List.iter Domain.join workers
  end

let rec exec env (s : Stmt.t) : unit =
  match s with
  | For { var; min; extent; body; _ } ->
      let m = to_int (eval env min) and n = to_int (eval env extent) in
      let saved = env.vars in
      for i = m to m + n - 1 do
        env.vars <- Var.Map.add var (VInt i) saved;
        exec env body
      done;
      env.vars <- saved
  | Let_stmt (v, e, body) ->
      let saved = env.vars in
      bind_var env v (eval env e);
      exec env body;
      env.vars <- saved
  | Store { buf = v; index; value } ->
      env.stores <- env.stores + 1;
      let b = buf env v in
      let i = to_int (eval env index) in
      if i < 0 || i >= Buffer.length b then
        err "store %s[%d] out of bounds (len %d)" (Var.mangled v) i (Buffer.length b)
      else (
        match b with
        | F a -> a.(i) <- to_float (eval env value)
        | I a -> a.(i) <- to_int (eval env value))
  | Reduce_store { buf = v; index; value; op } ->
      env.stores <- env.stores + 1;
      env.flops <- env.flops + 1;
      let b = buf env v in
      let i = to_int (eval env index) in
      if i < 0 || i >= Buffer.length b then
        err "reduce_store %s[%d] out of bounds (len %d)" (Var.mangled v) i (Buffer.length b)
      else
        let x = to_float (eval env value) in
        let cur = Buffer.get_float b i in
        let combined =
          match op with
          | Sum -> cur +. x
          | Prod -> cur *. x
          | Rmax -> Float.max cur x
          | Rmin -> Float.min cur x
        in
        Buffer.set_float b i combined
  | If (c, a, b) -> (
      env.guards <- env.guards + 1;
      if to_bool (eval env c) then begin
        env.guard_hits <- env.guard_hits + 1;
        exec env a
      end
      else match b with Some b -> exec env b | None -> ())
  | Seq l -> List.iter (exec env) l
  | Alloc { buf = v; size; body } ->
      let n = to_int (eval env size) in
      let saved = env.bufs in
      bind_buf env v (Buffer.float_buf n);
      exec env body;
      env.bufs <- saved
  | Eval e -> ignore (eval env e)
  | Nop -> ()

(** Execute with [Parallel]-bound loops spread across OCaml domains (the
    multicore runtime for CPU-scheduled kernels).  Each domain gets its own
    copy of the scalar environment; buffers are shared — sound because a
    correctly scheduled parallel loop writes disjoint locations (the same
    guarantee a real parallel-for needs).  Statistics counters are
    per-iteration-local and folded into the parent [env] through atomics
    once all domains join, so a multicore run reports exactly the same
    counts as a serial one. *)
and exec_multicore ?(domains = 4) env (s : Stmt.t) : unit =
  match s with
  | For { var; min = mn; extent; kind = Parallel; body } ->
      let m = to_int (eval env mn) and n = to_int (eval env extent) in
      let loads = Atomic.make 0 and stores = Atomic.make 0 and flops = Atomic.make 0 in
      let indirect = Atomic.make 0 and guards = Atomic.make 0 and guard_hits = Atomic.make 0 in
      parallel_for ~domains m n (fun i ->
          let env' =
            { env with vars = Var.Map.add var (VInt i) env.vars;
              loads = 0; stores = 0; flops = 0; indirect = 0; guards = 0; guard_hits = 0 }
          in
          exec env' body;
          ignore (Atomic.fetch_and_add loads env'.loads);
          ignore (Atomic.fetch_and_add stores env'.stores);
          ignore (Atomic.fetch_and_add flops env'.flops);
          ignore (Atomic.fetch_and_add indirect env'.indirect);
          ignore (Atomic.fetch_and_add guards env'.guards);
          ignore (Atomic.fetch_and_add guard_hits env'.guard_hits));
      env.loads <- env.loads + Atomic.get loads;
      env.stores <- env.stores + Atomic.get stores;
      env.flops <- env.flops + Atomic.get flops;
      env.indirect <- env.indirect + Atomic.get indirect;
      env.guards <- env.guards + Atomic.get guards;
      env.guard_hits <- env.guard_hits + Atomic.get guard_hits
  | For { var; min = mn; extent; kind; body } ->
      let m = to_int (eval env mn) and n = to_int (eval env extent) in
      ignore kind;
      let saved = env.vars in
      for i = m to m + n - 1 do
        env.vars <- Var.Map.add var (VInt i) saved;
        exec_multicore ~domains env body
      done;
      env.vars <- saved
  | Let_stmt (v, e, body) ->
      let saved = env.vars in
      bind_var env v (eval env e);
      exec_multicore ~domains env body;
      env.vars <- saved
  | Seq l -> List.iter (exec_multicore ~domains env) l
  | s -> exec env s

(** Add the environment's statistics counters into the process-wide
    metrics registry (under [interp.*]).  Called once per run by
    {!Cora.Exec.run} and the CLI; idempotence is the caller's concern. *)
let flush_metrics env =
  Obs.Metrics.add (Obs.Metrics.counter "interp.loads") env.loads;
  Obs.Metrics.add (Obs.Metrics.counter "interp.stores") env.stores;
  Obs.Metrics.add (Obs.Metrics.counter "interp.flops") env.flops;
  Obs.Metrics.add (Obs.Metrics.counter "interp.indirect") env.indirect;
  Obs.Metrics.add (Obs.Metrics.counter "interp.guards") env.guards;
  Obs.Metrics.add (Obs.Metrics.counter "interp.guard_hits") env.guard_hits

(** Snapshot of the statistics counters as an association list, in a fixed
    order — lets differential tests compare whole runs structurally. *)
let stats env =
  [
    ("loads", env.loads);
    ("stores", env.stores);
    ("flops", env.flops);
    ("indirect", env.indirect);
    ("guards", env.guards);
    ("guard_hits", env.guard_hits);
  ]
