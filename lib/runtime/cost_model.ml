open Ir

(** Analytic cost model over lowered IR.

    Walks a kernel's loop nest and counts the scalar work it performs —
    floating-point ops, integer index arithmetic, loads (with auxiliary /
    uninterpreted-function accesses counted separately: they are the
    indirect accesses whose overhead §D.7 studies), stores, branches and
    math intrinsics.  Loop trip counts are evaluated numerically from the
    launch-time environment (length functions and prelude tables), so the
    wasted computation caused by padding — the paper's central quantity —
    is measured exactly, without executing any floating-point work.

    Loops whose body cost does not depend on the loop variable are
    multiplied rather than iterated, and every loop node memoises its cost
    on the values of the {e control-relevant} outer variables, so full
    transformer-sized kernels cost out in microseconds. *)

type counts = {
  flops : float;
  iops : float;  (** integer/index arithmetic *)
  loads : float;
  indirect : float;  (** loads of prelude-built auxiliary structures *)
  stores : float;
  branches : float;
  intrinsics : float;
}

let zero_counts =
  { flops = 0.; iops = 0.; loads = 0.; indirect = 0.; stores = 0.; branches = 0.; intrinsics = 0. }

let ( ++ ) a b =
  {
    flops = a.flops +. b.flops;
    iops = a.iops +. b.iops;
    loads = a.loads +. b.loads;
    indirect = a.indirect +. b.indirect;
    stores = a.stores +. b.stores;
    branches = a.branches +. b.branches;
    intrinsics = a.intrinsics +. b.intrinsics;
  }

let scale k a =
  {
    flops = k *. a.flops;
    iops = k *. a.iops;
    loads = k *. a.loads;
    indirect = k *. a.indirect;
    stores = k *. a.stores;
    branches = k *. a.branches;
    intrinsics = k *. a.intrinsics;
  }

let total a = a.flops +. a.iops +. a.loads +. a.indirect +. a.stores +. a.branches +. a.intrinsics

(** Machine-shape parameters the cost model needs (the rest — per-op
    nanosecond weights — live in the device model). *)
type params = { lanes : int; vec_width : int }

type env = {
  mutable vars : int Var.Map.t;
  ufuns : (string, int list -> int) Hashtbl.t;
}

let env_create () = { vars = Var.Map.empty; ufuns = Hashtbl.create 16 }
let bind_var env v n = env.vars <- Var.Map.add v n env.vars
let bind_ufun env name f = Hashtbl.replace env.ufuns name f

exception Cost_error of string

let cerr fmt = Fmt.kstr (fun s -> raise (Cost_error s)) fmt

(** Evaluate an integer control expression. *)
let rec eval_int env (e : Expr.t) : int =
  match e with
  | Int n -> n
  | Var v -> (
      match Var.Map.find_opt v env.vars with
      | Some n -> n
      | None -> cerr "cost eval: unbound variable %s" (Var.mangled v))
  | Binop (op, a, b) -> (
      let x = eval_int env a and y = eval_int env b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Min -> min x y
      | Max -> max x y
      | FloorDiv ->
          if y = 0 then cerr "cost eval: div by zero"
          else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
          else x / y
      | Mod ->
          if y = 0 then cerr "cost eval: mod by zero"
          else
            let r = x mod y in
            if r <> 0 && (r < 0) <> (y < 0) then r + y else r
      | Div -> cerr "cost eval: float division in control expression")
  | Select (c, a, b) -> if eval_bool env c then eval_int env a else eval_int env b
  | Ufun (name, args) -> (
      match Hashtbl.find_opt env.ufuns name with
      | Some f -> f (List.map (eval_int env) args)
      | None -> cerr "cost eval: unbound ufun %s" name)
  | Let (v, value, body) ->
      let saved = env.vars in
      bind_var env v (eval_int env value);
      let r = eval_int env body in
      env.vars <- saved;
      r
  | _ -> cerr "cost eval: non-integer control expression"

and eval_bool env (e : Expr.t) : bool =
  match e with
  | Bool b -> b
  | Cmp (op, a, b) -> (
      let x = eval_int env a and y = eval_int env b in
      match op with
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y
      | Eq -> x = y
      | Ne -> x <> y)
  | And (a, b) -> eval_bool env a && eval_bool env b
  | Or (a, b) -> eval_bool env a || eval_bool env b
  | Not a -> not (eval_bool env a)
  | _ -> cerr "cost eval: non-boolean condition"

(* Syntactic float-vs-int classification of arithmetic: expressions
   containing float constants, loads or intrinsic calls are float. *)
let rec float_ish (e : Expr.t) : bool =
  match e with
  | Float _ | Load _ | Call _ -> true
  | Binop (_, a, b) -> float_ish a || float_ish b
  | Select (_, a, b) -> float_ish a || float_ish b
  | Let (_, _, b) -> float_ish b
  | _ -> false

(** Static per-evaluation counts of an expression (value-independent:
    [Select] conservatively counts both arms, as GPU predication would).
    Loads/stores to kernel-local scratch ([Alloc]ed buffers, [locals]) are
    register/shared-memory accesses: counted as cheap integer ops, not
    memory traffic. *)
let rec expr_counts_l (locals : Var.Set.t) (e : Expr.t) : counts =
  let expr_counts = expr_counts_l locals in
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> zero_counts
  | Binop (Div, a, b) ->
      let sub = expr_counts a ++ expr_counts b in
      { sub with flops = sub.flops +. 1. }
  | Binop (_, a, b) -> (
      let sub = expr_counts a ++ expr_counts b in
      (* classify as float or int arithmetic: anything touching a float
         literal / load-heavy subtree is ambiguous; we use a syntactic
         heuristic — expressions containing float constants or living under
         Loads are float. *)
      match float_ish e with
      | true -> { sub with flops = sub.flops +. 1. }
      | false -> { sub with iops = sub.iops +. 1. })
  | Cmp (_, a, b) ->
      let sub = expr_counts a ++ expr_counts b in
      { sub with iops = sub.iops +. 1. }
  | And (a, b) | Or (a, b) ->
      let sub = expr_counts a ++ expr_counts b in
      { sub with iops = sub.iops +. 1. }
  | Not a ->
      let sub = expr_counts a in
      { sub with iops = sub.iops +. 1. }
  | Select (c, a, b) ->
      (* predicated select: both arms execute, cheap integer blend *)
      let sub = expr_counts c ++ expr_counts a ++ expr_counts b in
      { sub with iops = sub.iops +. 2. }
  | Load { buf; index } ->
      let sub = expr_counts index in
      if Var.Set.mem buf locals then { sub with iops = sub.iops +. 1. }
      else { sub with loads = sub.loads +. 1. }
  | Ufun (_, args) ->
      let sub = List.fold_left (fun acc a -> acc ++ expr_counts a) zero_counts args in
      { sub with indirect = sub.indirect +. 1. }
  | Call (_, args) ->
      let sub = List.fold_left (fun acc a -> acc ++ expr_counts a) zero_counts args in
      { sub with intrinsics = sub.intrinsics +. 1. }
  | Access { indices; _ } ->
      let sub = List.fold_left (fun acc a -> acc ++ expr_counts a) zero_counts indices in
      { sub with loads = sub.loads +. 1. }
  | Let (_, v, b) -> expr_counts v ++ expr_counts b

let expr_counts e = expr_counts_l Var.Set.empty e

(** Control-relevant variables: those whose value can change the counts
    (loop bounds, conditions, and let-bound vars feeding them). *)
let rec relevant (s : Stmt.t) : Var.Set.t =
  match s with
  | For { var; min; extent; body; _ } ->
      Var.Set.union
        (Var.Set.union (Expr.free_vars min) (Expr.free_vars extent))
        (Var.Set.remove var (relevant body))
  | Let_stmt (v, e, body) ->
      let rb = relevant body in
      if Var.Set.mem v rb then Var.Set.union (Expr.free_vars e) (Var.Set.remove v rb)
      else Var.Set.remove v rb
  | Store _ | Reduce_store _ | Eval _ | Nop -> Var.Set.empty
  | If (c, a, b) ->
      let s = Var.Set.union (Expr.free_vars c) (relevant a) in
      (match b with Some b -> Var.Set.union s (relevant b) | None -> s)
  | Seq l -> List.fold_left (fun acc x -> Var.Set.union acc (relevant x)) Var.Set.empty l
  | Alloc { size; body; buf } ->
      Var.Set.union (Expr.free_vars size) (Var.Set.remove buf (relevant body))

type node = env -> counts

(* Loop-memoisation visibility: every loop-node cost lookup is counted
   process-wide, so the memo's effectiveness on real kernels can be
   asserted instead of assumed. *)
let memo_hits = Obs.Metrics.counter "cost_model.memo_hits"
let memo_misses = Obs.Metrics.counter "cost_model.memo_misses"

(** Compile a statement into a memoised cost function.  [lanes_left] tracks
    the remaining within-block thread parallelism: nested GPU-thread loops
    consume the lane budget multiplicatively (a 64x128 thread grid on a
    128-lane block divides total work by 128, not 64). *)
let compile (params : params) (stmt : Stmt.t) : node =
  let rec comp ~lanes_left ~locals (s : Stmt.t) : node =
    let expr_counts = expr_counts_l locals in
    let comp ?(locals = locals) ~lanes_left s = comp ~lanes_left ~locals s in
    match s with
    | Nop -> fun _ -> zero_counts
    | Eval e ->
        let c = expr_counts e in
        fun _ -> c
    | Store { buf; index; value } ->
        let c = expr_counts index ++ expr_counts value in
        let c =
          if Var.Set.mem buf locals then { c with iops = c.iops +. 1. }
          else { c with stores = c.stores +. 1. }
        in
        fun _ -> c
    | Reduce_store { index; value; _ } ->
        (* the accumulator lives in a register across the reduction; count
           the combine flop but not a memory round-trip per iteration *)
        let c = expr_counts index ++ expr_counts value in
        let c = { c with flops = c.flops +. 1. } in
        fun _ -> c
    | Let_stmt (v, e, body) ->
        let fb = comp ~lanes_left body in
        let ec = expr_counts e in
        let needed = Var.Set.mem v (relevant body) in
        fun env ->
          if needed then begin
            let saved = env.vars in
            bind_var env v (eval_int env e);
            let r = fb env in
            env.vars <- saved;
            ec ++ r
          end
          else ec ++ fb env
    | If (c, a, b) ->
        let fa = comp ~lanes_left a in
        let fb = Option.map (comp ~lanes_left) b in
        let cc = expr_counts c in
        let cc = { cc with branches = cc.branches +. 1. } in
        fun env ->
          if eval_bool env c then cc ++ fa env
          else cc ++ (match fb with Some f -> f env | None -> zero_counts)
    | Seq l ->
        let fs = List.map (comp ~lanes_left) l in
        fun env -> List.fold_left (fun acc f -> acc ++ f env) zero_counts fs
    | Alloc { buf; body; _ } -> comp ~locals:(Var.Set.add buf locals) ~lanes_left body
    | For { var; min; extent; kind; body } ->
        let rb = relevant body in
        let var_relevant = Var.Set.mem var rb in
        (* static divisor for thread loops with constant extents *)
        let static_div =
          match (kind, extent) with
          | Gpu_thread, Expr.Int n when n > 0 -> Some (Stdlib.min lanes_left (Stdlib.max 1 n))
          | _ -> None
        in
        let body_lanes =
          match (kind, static_div) with
          | Gpu_thread, Some d -> Stdlib.max 1 (lanes_left / d)
          | Gpu_thread, None -> 1
          | _ -> lanes_left
        in
        let fb = comp ~lanes_left:body_lanes body in
        let key_vars =
          Var.Set.elements
            (Var.Set.union (Var.Set.union (Expr.free_vars min) (Expr.free_vars extent))
               (Var.Set.remove var rb))
        in
        let memo : (int list, counts) Hashtbl.t = Hashtbl.create 64 in
        let adjust n (c : counts) =
          let c = { c with iops = c.iops +. float_of_int n } (* loop bookkeeping *) in
          match kind with
          | Vectorized -> scale (1. /. float_of_int (Stdlib.min params.vec_width (Stdlib.max 1 n))) c
          | Gpu_thread ->
              let d =
                match static_div with
                | Some d -> d
                | None -> Stdlib.min lanes_left (Stdlib.max 1 n)
              in
              scale (1. /. float_of_int d) c
          | _ -> c
        in
        fun env ->
          let key =
            List.map (fun v -> match Var.Map.find_opt v env.vars with Some n -> n | None -> min_int)
              key_vars
          in
          match Hashtbl.find_opt memo key with
          | Some c ->
              Obs.Metrics.incr memo_hits;
              c
          | None ->
              Obs.Metrics.incr memo_misses;
              let m = eval_int env min and n = eval_int env extent in
              let c =
                if n <= 0 then zero_counts
                else if not var_relevant then adjust n (scale (float_of_int n) (fb env))
                else begin
                  let acc = ref zero_counts in
                  let saved = env.vars in
                  for i = m to m + n - 1 do
                    env.vars <- Var.Map.add var i saved;
                    acc := !acc ++ fb env
                  done;
                  env.vars <- saved;
                  adjust n !acc
                end
              in
              Hashtbl.replace memo key c;
              c
  in
  comp ~lanes_left:params.lanes ~locals:Var.Set.empty stmt

(** Enumerate the grid: peel leading loops of [grid_kind] (one block per
    index combination) and return each block's environment and body. *)
let enumerate_blocks ~(grid_kind : Stmt.for_kind) (env : env) (stmt : Stmt.t) :
    (int Var.Map.t * Stmt.t) list =
  let out = ref [] in
  let rec go env_vars (s : Stmt.t) =
    match s with
    | For { var; min; extent; kind; body } when kind = grid_kind ->
        let env' = { env with vars = env_vars } in
        let m = eval_int env' min and n = eval_int env' extent in
        for i = m to m + n - 1 do
          go (Var.Map.add var i env_vars) body
        done
    | Let_stmt (v, e, body) ->
        let env' = { env with vars = env_vars } in
        go (Var.Map.add v (eval_int env' e) env_vars) body
    | s -> out := (env_vars, s) :: !out
  in
  go env.vars stmt;
  List.rev !out
