(** Analytic cost model over lowered IR: counts the scalar work a kernel
    performs (flops, index arithmetic, loads, auxiliary/indirect accesses,
    stores, branches, intrinsics) with trip counts evaluated numerically
    from the launch-time environment — so padding waste, the paper's
    central quantity, is measured exactly without executing floating-point
    work.  Loop nodes memoise on control-relevant outer values, making
    transformer-sized kernels cost out in microseconds. *)

type counts = {
  flops : float;
  iops : float;
  loads : float;
  indirect : float;  (** prelude-table (uninterpreted-function) accesses *)
  stores : float;
  branches : float;
  intrinsics : float;
}

val zero_counts : counts
val ( ++ ) : counts -> counts -> counts
val scale : float -> counts -> counts
val total : counts -> float

(** Machine-shape parameters: within-block thread parallelism and SIMD
    width (per-op costs live in the device model). *)
type params = { lanes : int; vec_width : int }

type env = {
  mutable vars : int Ir.Var.Map.t;
  ufuns : (string, int list -> int) Hashtbl.t;
}

val env_create : unit -> env
val bind_var : env -> Ir.Var.t -> int -> unit
val bind_ufun : env -> string -> (int list -> int) -> unit

exception Cost_error of string

(** Evaluate an integer / boolean control expression. *)
val eval_int : env -> Ir.Expr.t -> int

val eval_bool : env -> Ir.Expr.t -> bool

(** Static per-evaluation counts of an expression ([Select] counts both
    arms, as predication would). *)
val expr_counts : Ir.Expr.t -> counts

type node = env -> counts

(** Compile a statement into a memoised cost function.  Nested GPU-thread
    loops consume the lane budget multiplicatively; [Vectorized] loops
    divide by the SIMD width; loads/stores to [Alloc]ed scratch count as
    cheap integer ops, not memory traffic.  Every loop-node memo lookup
    is counted in the {!Obs.Metrics} registry under
    [cost_model.memo_hits] / [cost_model.memo_misses]. *)
val compile : params -> Ir.Stmt.t -> node

(** Enumerate the grid: peel leading loops of [grid_kind], one block per
    index combination, returning each block's variable assignment and
    body. *)
val enumerate_blocks :
  grid_kind:Ir.Stmt.for_kind -> env -> Ir.Stmt.t -> (int Ir.Var.Map.t * Ir.Stmt.t) list
