(** Statements of the tensor IR.

    A lowered CoRa operator is one statement per kernel: a loop nest whose
    loops carry an execution binding ([for_kind]) mapping them onto the
    simulated hardware.  Extents are arbitrary expressions and may
    reference outer loop variables through uninterpreted functions — that
    is exactly what makes a loop a {e vloop}. *)

type for_kind =
  | Serial
  | Parallel  (** CPU multicore parallel-for *)
  | Vectorized  (** SIMD lanes; the cost model divides by the vector width *)
  | Unrolled
  | Gpu_block  (** bound to the GPU grid: one iteration = one thread block *)
  | Gpu_thread  (** bound to threads within a block *)

type t =
  | For of { var : Var.t; min : Expr.t; extent : Expr.t; kind : for_kind; body : t }
  | Let_stmt of Var.t * Expr.t * t
      (** scalar binding — the vehicle for load hoisting (§D.7) *)
  | Store of { buf : Var.t; index : Expr.t; value : Expr.t }
  | Reduce_store of { buf : Var.t; index : Expr.t; value : Expr.t; op : reduce_op }
      (** [buf.(index) <- buf.(index) `op` value] *)
  | If of Expr.t * t * t option
  | Seq of t list
  | Alloc of { buf : Var.t; size : Expr.t; body : t }
      (** kernel-local scratch (registers / shared memory) *)
  | Eval of Expr.t
  | Nop

and reduce_op = Sum | Prod | Rmax | Rmin

(** Smart sequence: flattens empty and singleton lists. *)
val seq : t list -> t

(** Fold [f] over every expression in the statement. *)
val fold_exprs : ('a -> Expr.t -> 'a) -> 'a -> t -> 'a

(** Free variables (loop, let and alloc binders excluded in scope). *)
val free_vars : t -> Var.Set.t

(** Rewrite every expression with [f]. *)
val map_exprs : (Expr.t -> Expr.t) -> t -> t

(** Substitute variables by expressions throughout. *)
val subst : Expr.t Var.Map.t -> t -> t

(** Total IR node count (statement nodes plus every expression node) —
    the size metric the lowering passes report before/after rewrites. *)
val size : t -> int

(** Names of all uninterpreted functions referenced (sorted, unique). *)
val ufuns : t -> string list
