(** Expression simplifier.

    Plays the role that Z3 plays in the original CoRa prototype (§B.2): it
    folds constants, normalises the algebra that loop splitting/fusion
    generates, proves guard conditions from interval facts about loop
    variables and uninterpreted functions, and knows the three fused-loop
    identities relating [f_oif], [f_fo] and [f_fi]:

    - [f_oif (f_fo f, f_fi f) = f]
    - [f_fo (f_oif (o, i)) = o]
    - [f_fi (f_oif (o, i)) = i] *)

type fusion_triple = {
  fo : string;
  fi : string;
  oif : string;
  off : string;
      (** prefix-sum offset array shared between loop fusion and ragged
          storage: [off[fo f] + fi f = f], the "fused dimension" access
          simplification of CoRa §5.1 *)
}

type ctx = {
  var_ranges : Interval.t Var.Map.t;  (** known ranges of loop variables *)
  ufun_ranges : (string * Interval.t) list;  (** known ranges of ufun results *)
  fusion_triples : fusion_triple list;
}

let empty_ctx = { var_ranges = Var.Map.empty; ufun_ranges = []; fusion_triples = [] }

let with_var ctx v iv = { ctx with var_ranges = Var.Map.add v iv ctx.var_ranges }
let with_ufun_range ctx name iv = { ctx with ufun_ranges = (name, iv) :: ctx.ufun_ranges }
let with_fusion ctx triple = { ctx with fusion_triples = triple :: ctx.fusion_triples }

(** Conservative interval of an integer expression under [ctx].  Float and
    boolean expressions yield [top]. *)
let rec interval_of ctx (e : Expr.t) : Interval.t =
  match e with
  | Int n -> Interval.point n
  | Var v -> (
      match Var.Map.find_opt v ctx.var_ranges with Some iv -> iv | None -> Interval.top)
  | Binop (Add, a, b) -> Interval.add (interval_of ctx a) (interval_of ctx b)
  | Binop (Sub, a, b) -> Interval.sub (interval_of ctx a) (interval_of ctx b)
  | Binop (Mul, a, b) -> Interval.mul (interval_of ctx a) (interval_of ctx b)
  | Binop (Min, a, b) -> Interval.min_ (interval_of ctx a) (interval_of ctx b)
  | Binop (Max, a, b) -> Interval.max_ (interval_of ctx a) (interval_of ctx b)
  | Binop (FloorDiv, a, Int c) when c > 0 -> Interval.div_const (interval_of ctx a) c
  | Binop (Mod, a, Int c) when c > 0 -> Interval.mod_const (interval_of ctx a) c
  | Select (_, a, b) -> Interval.union (interval_of ctx a) (interval_of ctx b)
  | Ufun (name, _) -> (
      match List.assoc_opt name ctx.ufun_ranges with
      | Some iv -> iv
      | None -> Interval.nonneg)
  | Let (v, value, body) ->
      interval_of { ctx with var_ranges = Var.Map.add v (interval_of ctx value) ctx.var_ranges } body
  | _ -> Interval.top

(** Try to prove a comparison from intervals.  Returns [Some true],
    [Some false], or [None] when undecidable. *)
let prove_cmp ctx (op : Expr.cmpop) a b =
  let ia = interval_of ctx a and ib = interval_of ctx b in
  match op with
  | Lt ->
      if Interval.definitely_lt ia ib then Some true
      else if Interval.definitely_ge ia ib then Some false
      else None
  | Le ->
      if Interval.definitely_le ia ib then Some true
      else if Interval.definitely_lt ib ia then Some false
      else None
  | Gt ->
      if Interval.definitely_lt ib ia then Some true
      else if Interval.definitely_le ia ib then Some false
      else None
  | Ge ->
      if Interval.definitely_le ib ia then Some true
      else if Interval.definitely_lt ia ib then Some false
      else None
  | Eq | Ne -> None

let triple_of_oif ctx n = List.find_opt (fun t -> String.equal t.oif n) ctx.fusion_triples

(* One local rewriting step applied bottom-up by [simplify]. *)
let rewrite ctx (e : Expr.t) : Expr.t =
  let open Expr in
  match e with
  (* Reassociate and fold constants in + and -. *)
  | Binop (Add, Binop (Add, a, Int x), Int y) -> add a (Int (x + y))
  | Binop (Add, Int x, b) -> add b (Int x)
  | Binop (Sub, Binop (Add, a, Int x), Int y) -> add a (Int (x - y))
  | Binop (Sub, a, Int x) when x <> 0 -> add a (Int (-x))
  | Binop (Add, Binop (Sub, a, b), c) when b = c -> a
  | Binop (Sub, Binop (Add, a, b), c) when b = c -> a
  | Binop (Sub, a, b) when a = b -> Int 0
  (* (k / c) * c + k mod c = k *)
  | Binop (Add, Binop (Mul, Binop (FloorDiv, k1, Int c1), Int c2), Binop (Mod, k2, Int c3))
    when k1 = k2 && c1 = c2 && c2 = c3 ->
      k1
  (* (a*c + r) / c = a + r/c when 0 <= r < c. *)
  | Binop (FloorDiv, Binop (Add, Binop (Mul, a, Int c), r), Int c') when c = c' && c > 0
    -> (
      let ir = interval_of ctx r in
      if Interval.definitely_ge ir (Interval.point 0)
         && Interval.definitely_lt ir (Interval.point c)
      then a
      else e)
  (* (a*c + r) mod c = r under the same conditions. *)
  | Binop (Mod, Binop (Add, Binop (Mul, a, Int c), r), Int c') when c = c' && c > 0 -> (
      let ir = interval_of ctx r in
      ignore a;
      if Interval.definitely_ge ir (Interval.point 0)
         && Interval.definitely_lt ir (Interval.point c)
      then r
      else e)
  (* x / c, x mod c when the range of x fits in one period. *)
  | Binop (FloorDiv, a, Int c) when c > 0 -> (
      let ia = interval_of ctx a in
      match (Interval.lo_int ia, Interval.hi_int ia) with
      | Some lo, Some hi when lo >= 0 && lo / c = hi / c -> Int (lo / c)
      | _ -> e)
  | Binop (Mod, a, Int c) when c > 0 -> (
      let ia = interval_of ctx a in
      match (Interval.lo_int ia, Interval.hi_int ia) with
      | Some lo, Some hi when lo >= 0 && hi < c ->
          ignore lo;
          ignore hi;
          a
      | _ -> e)
  (* min/max folding using intervals. *)
  | Binop (Min, a, b) ->
      let ia = interval_of ctx a and ib = interval_of ctx b in
      if Interval.definitely_le ia ib then a
      else if Interval.definitely_le ib ia then b
      else e
  | Binop (Max, a, b) ->
      let ia = interval_of ctx a and ib = interval_of ctx b in
      if Interval.definitely_le ia ib then b
      else if Interval.definitely_le ib ia then a
      else e
  (* Comparisons provable from intervals. *)
  | Cmp (op, a, b) -> ( match prove_cmp ctx op a b with Some v -> Bool v | None -> e)
  (* Fused-loop identities (§B.2). *)
  | Ufun (oif, [ Ufun (fo, [ f1 ]); Ufun (fi, [ f2 ]) ])
    when f1 = f2
         && (match triple_of_oif ctx oif with
            | Some t -> String.equal t.fo fo && String.equal t.fi fi
            | None -> false) ->
      f1
  | Ufun (fo_or_fi, [ Ufun (oif, [ o; i ]) ]) -> (
      match triple_of_oif ctx oif with
      | Some t when String.equal t.fo fo_or_fi -> o
      | Some t when String.equal t.fi fo_or_fi -> i
      | _ -> e)
  (* Fused-access simplification: storage offsets through a fused (cdim,
     vdim) pair collapse to the fused loop variable when storage and loop
     fusion share the prefix-sum array: off[fo f] + fi f = f. *)
  | Binop (Add, Ufun (off, [ Ufun (fo, [ f1 ]) ]), Ufun (fi, [ f2 ]))
    when f1 = f2
         && List.exists
              (fun t ->
                String.equal t.off off && String.equal t.fo fo && String.equal t.fi fi)
              ctx.fusion_triples ->
      f1
  | _ -> (
      (* Re-run smart constructors to fold any constants exposed by child
         rewrites. *)
      match e with
      | Binop (Add, a, b) -> add a b
      | Binop (Sub, a, b) -> sub a b
      | Binop (Mul, a, b) -> mul a b
      | Binop (Div, a, b) -> div a b
      | Binop (FloorDiv, a, b) -> floordiv a b
      | Binop (Mod, a, b) -> imod a b
      | And (a, b) -> and_ a b
      | Or (a, b) -> or_ a b
      | Not a -> not_ a
      | Select (c, a, b) -> select c a b
      | _ -> e)

(** Simplify to a fixpoint (bounded number of passes). *)
let simplify ?(ctx = empty_ctx) e =
  let rec go n e =
    if n = 0 then e
    else
      let e' = Expr.map_bottom_up (rewrite ctx) e in
      if e' = e then e else go (n - 1) e'
  in
  go 8 e

(** [provably_true ctx e] — the condition simplifies to literal [true]. *)
let provably_true ctx e = match simplify ~ctx e with Expr.Bool true -> true | _ -> false

(** Simplify all expressions in a statement, tracking loop-variable ranges on
    the way down so guards inside loops can be proven redundant. *)
let simplify_stmt ?(ctx = empty_ctx) stmt =
  let rec go ctx (s : Stmt.t) : Stmt.t =
    match s with
    | For r ->
        let min = simplify ~ctx r.min and extent = simplify ~ctx r.extent in
        let iv =
          match (min, extent) with
          | Expr.Int m, Expr.Int e -> Interval.of_range m e
          | Expr.Int m, _ -> (
              match Interval.hi_int (interval_of ctx extent) with
              | Some hi -> Interval.make m (m + hi - 1)
              | None -> { Interval.lo = Finite m; hi = Pos_inf })
          | _ -> Interval.top
        in
        For { r with min; extent; body = go (with_var ctx r.var iv) r.body }
    | Let_stmt (v, e, body) ->
        let e = simplify ~ctx e in
        Let_stmt (v, e, go (with_var ctx v (interval_of ctx e)) body)
    | Store r -> Store { r with index = simplify ~ctx r.index; value = simplify ~ctx r.value }
    | Reduce_store r ->
        Reduce_store { r with index = simplify ~ctx r.index; value = simplify ~ctx r.value }
    | If (c, a, b) -> (
        match simplify ~ctx c with
        | Expr.Bool true -> go ctx a
        | Expr.Bool false -> ( match b with Some b -> go ctx b | None -> Nop)
        | c -> If (c, go ctx a, Option.map (go ctx) b))
    | Seq l -> Stmt.seq (List.map (go ctx) l)
    | Alloc r -> Alloc { r with size = simplify ~ctx r.size; body = go ctx r.body }
    | Eval e -> Eval (simplify ~ctx e)
    | Nop -> Nop
  in
  go ctx stmt
