(** Integer interval arithmetic for bounds inference (CoRa §B.3).

    Intervals are closed and may be unbounded on either side.  Used to
    size buffers, prove guard conditions redundant, and decide when padding
    makes a bound check unnecessary. *)

type bound = Neg_inf | Pos_inf | Finite of int
type t = { lo : bound; hi : bound }

val make : int -> int -> t
val point : int -> t
val top : t
val nonneg : t

(** [of_range min extent] — range of a loop variable with constant bounds. *)
val of_range : int -> int -> t

val is_bounded : t -> bool
val lo_int : t -> int option
val hi_int : t -> int option

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Convex hull. *)
val union : t -> t -> t

(** Pointwise min / max (the interval of [min a b] / [max a b]). *)
val min_ : t -> t -> t

val max_ : t -> t -> t

(** Floor division / modulo by a positive constant (top otherwise). *)
val div_const : t -> int -> t

val mod_const : t -> int -> t

(** Definite comparisons: true only when every pair of values satisfies the
    relation. *)
val definitely_lt : t -> t -> bool

val definitely_le : t -> t -> bool
val definitely_ge : t -> t -> bool

val pp : Format.formatter -> t -> unit
