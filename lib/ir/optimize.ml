(* IR optimization pipeline.  See optimize.mli for the contract; the load
   hoisting here is the paper's §D.7 generalized from auxiliary-structure
   reads to all loop-invariant ragged-offset arithmetic. *)

type level = O0 | O1 | O2

let level_of_int = function 0 -> O0 | 1 -> O1 | _ -> O2
let int_of_level = function O0 -> 0 | O1 -> 1 | O2 -> 2
let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

type report = { hoisted : int }

let hoist_var_name = "hv"

(* ------------------------------------------------------------------ *)
(* Purity / typing.  An expression is hoistable only when evaluating it
   early can neither fault nor perturb the float stream: pure integer
   arithmetic, ufun (prelude-table) reads, comparisons of the same — no
   loads, no intrinsics, no float ops, and division only by a nonzero
   literal.  [intvars] is the set of variables known to hold ints at this
   point (loop variables and int-valued lets). *)

let rec int_pure intvars (e : Expr.t) =
  match e with
  | Expr.Int _ -> true
  | Expr.Var v -> Var.Set.mem v intvars
  | Expr.Binop ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Min | Expr.Max), a, b) ->
      int_pure intvars a && int_pure intvars b
  | Expr.Binop ((Expr.FloorDiv | Expr.Mod), a, Expr.Int n) when n <> 0 -> int_pure intvars a
  | Expr.Select (c, a, b) -> bool_pure intvars c && int_pure intvars a && int_pure intvars b
  | Expr.Ufun (_, args) -> List.for_all (int_pure intvars) args
  | _ -> false

and bool_pure intvars (e : Expr.t) =
  match e with
  | Expr.Bool _ -> true
  | Expr.Cmp (_, a, b) -> int_pure intvars a && int_pure intvars b
  | Expr.And (a, b) | Expr.Or (a, b) -> bool_pure intvars a && bool_pure intvars b
  | Expr.Not a -> bool_pure intvars a
  | _ -> false

let node_count e = Expr.fold (fun n _ -> n + 1) 0 e
let contains_ufun e = Expr.fold (fun b n -> b || match n with Expr.Ufun _ -> true | _ -> false) false e

(* Worth a preheader slot: a prelude-table read, or a big enough arithmetic
   tree that re-evaluating it per iteration actually costs something. *)
let worth e = contains_ufun e || node_count e >= 4

(* ------------------------------------------------------------------ *)
(* Candidate collection: maximal hoistable subexpressions of a subtree
   whose free variables are all bound at the prospective preheader. *)

let collect ~bound ~intvars (stmt : Stmt.t) : Expr.t list =
  let acc = ref [] in
  let add e = if not (List.mem e !acc) then acc := e :: !acc in
  let hoistable e =
    int_pure intvars e && worth e && Var.Set.subset (Expr.free_vars e) bound
  in
  let rec scan e =
    if hoistable e then add e
    else
      match (e : Expr.t) with
      | Int _ | Float _ | Bool _ | Var _ -> ()
      | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
          scan a;
          scan b
      | Not a -> scan a
      | Select (c, a, b) ->
          scan c;
          scan a;
          scan b
      | Load { index; _ } -> scan index
      | Ufun (_, args) | Call (_, args) -> List.iter scan args
      | Access { indices; _ } -> List.iter scan indices
      | Let (_, v, b) ->
          scan v;
          scan b
  in
  Stmt.fold_exprs (fun () e -> scan e) () stmt;
  List.rev !acc

(* Replace every occurrence of [target] (structural equality; sound because
   hoistable expressions contain no floats and variables are globally
   unique) with [Var hv], whole-match first so nothing inside a replaced
   occurrence is rewritten twice. *)
let replace_expr target hv e0 =
  let rec go e =
    if e = target then Expr.Var hv
    else
      match (e : Expr.t) with
      | Int _ | Float _ | Bool _ | Var _ -> e
      | Binop (op, a, b) -> Binop (op, go a, go b)
      | Cmp (op, a, b) -> Cmp (op, go a, go b)
      | And (a, b) -> And (go a, go b)
      | Or (a, b) -> Or (go a, go b)
      | Not a -> Not (go a)
      | Select (c, a, b) -> Select (go c, go a, go b)
      | Load { buf; index } -> Load { buf; index = go index }
      | Ufun (n, args) -> Ufun (n, List.map go args)
      | Call (n, args) -> Call (n, List.map go args)
      | Access { tensor; indices } -> Access { tensor; indices = List.map go indices }
      | Let (v, value, body) -> Let (v, go value, go body)
  in
  go e0

let occurs_expr target e =
  Expr.fold (fun b n -> b || n = target) false e

let occurs_stmt target stmt =
  Stmt.fold_exprs (fun b e -> b || occurs_expr target e) false stmt

let replace_stmt target hv stmt = Stmt.map_exprs (replace_expr target hv) stmt

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion.  Processed outermost-first: each [For]
   hoists every candidate of its whole body subtree that is evaluable at
   its preheader (free vars bound outside the loop), then recursion
   inward hoists what remains (expressions depending on this loop's
   variable) to deeper preheaders.  Candidates are substituted largest
   first so a maximal tree is bound whole, never split. *)

let licm (stmt : Stmt.t) : Stmt.t * report =
  let hoisted = ref 0 in
  let rec go ~bound ~intvars (s : Stmt.t) : Stmt.t =
    match s with
    | Stmt.For r ->
        let cands =
          collect ~bound ~intvars r.body
          |> List.sort (fun a b -> Int.compare (node_count b) (node_count a))
        in
        let body, bindings =
          List.fold_left
            (fun (body, binds) e ->
              (* earlier (larger) substitutions may have consumed every
                 occurrence of a smaller candidate *)
              if occurs_stmt e body then
                let hv = Var.fresh hoist_var_name in
                (replace_stmt e hv body, (hv, e) :: binds)
              else (body, binds))
            (r.body, []) cands
        in
        hoisted := !hoisted + List.length bindings;
        let bound = List.fold_left (fun s (v, _) -> Var.Set.add v s) bound bindings in
        let intvars = List.fold_left (fun s (v, _) -> Var.Set.add v s) intvars bindings in
        let body =
          go ~bound:(Var.Set.add r.var bound) ~intvars:(Var.Set.add r.var intvars) body
        in
        List.fold_left
          (fun acc (v, e) -> Stmt.Let_stmt (v, e, acc))
          (Stmt.For { r with body })
          bindings
    | Stmt.Let_stmt (v, e, body) ->
        let intvars = if int_pure intvars e then Var.Set.add v intvars else intvars in
        Stmt.Let_stmt (v, e, go ~bound:(Var.Set.add v bound) ~intvars body)
    | Stmt.If (c, a, b) ->
        Stmt.If (c, go ~bound ~intvars a, Option.map (go ~bound ~intvars) b)
    | Stmt.Seq l -> Stmt.Seq (List.map (go ~bound ~intvars) l)
    | Stmt.Alloc r ->
        Stmt.Alloc { r with body = go ~bound:(Var.Set.add r.buf bound) ~intvars r.body }
    | Stmt.Store _ | Stmt.Reduce_store _ | Stmt.Eval _ | Stmt.Nop -> s
  in
  let s = go ~bound:Var.Set.empty ~intvars:Var.Set.empty stmt in
  (s, { hoisted = !hoisted })

(* ------------------------------------------------------------------ *)
(* Pass framework: each pass runs under an [optimize.<name>] span and
   accounts what it did in the metrics registry. *)

type pass = { pname : string; prun : Stmt.t -> Stmt.t * report }

let licm_pass = { pname = "licm"; prun = licm }
let passes = function O0 -> [] | O1 | O2 -> [ licm_pass ]

let run ~level (stmt : Stmt.t) : Stmt.t * report =
  List.fold_left
    (fun (s, rep) p ->
      let s', r =
        Obs.Span.with_span
          ~attrs:[ ("level", Obs.Trace_sink.Str (level_name level)) ]
          ("optimize." ^ p.pname)
          (fun () -> p.prun s)
      in
      Obs.Metrics.add (Obs.Metrics.counter "optimize.hoisted") r.hoisted;
      (s', { hoisted = rep.hoisted + r.hoisted }))
    (stmt, { hoisted = 0 })
    (passes level)

(* ------------------------------------------------------------------ *)
(* Affine decomposition: [e = base + var * stride] with [base]/[stride]
   free of [var].  Exact — only reassociates integer [+]/[-]/[*]. *)

type affine = { base : Expr.t; stride : Expr.t }

let rec affine_in v (e : Expr.t) : affine option =
  if not (Expr.uses_var v e) then Some { base = e; stride = Expr.zero }
  else
    match e with
    | Expr.Var u when Var.equal u v -> Some { base = Expr.zero; stride = Expr.one }
    | Expr.Binop (Expr.Add, a, b) -> (
        match (affine_in v a, affine_in v b) with
        | Some x, Some y ->
            Some { base = Expr.add x.base y.base; stride = Expr.add x.stride y.stride }
        | _ -> None)
    | Expr.Binop (Expr.Sub, a, b) -> (
        match (affine_in v a, affine_in v b) with
        | Some x, Some y ->
            Some { base = Expr.sub x.base y.base; stride = Expr.sub x.stride y.stride }
        | _ -> None)
    | Expr.Binop (Expr.Mul, a, b) when not (Expr.uses_var v a) -> (
        match affine_in v b with
        | Some y -> Some { base = Expr.mul a y.base; stride = Expr.mul a y.stride }
        | None -> None)
    | Expr.Binop (Expr.Mul, a, b) when not (Expr.uses_var v b) -> (
        match affine_in v a with
        | Some x -> Some { base = Expr.mul x.base b; stride = Expr.mul x.stride b }
        | None -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Innermost-loop classification *)

type inner =
  | Dot of {
      dst : Var.t;
      dst_idx : Expr.t;
      op : Stmt.reduce_op;
      a : Var.t;
      a_ix : affine;
      b : Var.t;
      b_ix : affine;
    }
  | Reduce1 of { dst : Var.t; dst_idx : Expr.t; op : Stmt.reduce_op; src : Var.t; src_ix : affine }
  | Copy of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine }
  | Scale of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine; factor : float }

let classify_inner ~var (body : Stmt.t) : inner option =
  match body with
  | Stmt.Reduce_store { buf; index; value; op } when not (Expr.uses_var var index) -> (
      match value with
      | Expr.Binop (Expr.Mul, Expr.Load { buf = a; index = ia }, Expr.Load { buf = b; index = ib })
        -> (
          match (affine_in var ia, affine_in var ib) with
          | Some a_ix, Some b_ix -> Some (Dot { dst = buf; dst_idx = index; op; a; a_ix; b; b_ix })
          | _ -> None)
      | Expr.Load { buf = src; index = is } -> (
          match affine_in var is with
          | Some src_ix -> Some (Reduce1 { dst = buf; dst_idx = index; op; src; src_ix })
          | None -> None)
      | _ -> None)
  | Stmt.Store { buf; index; value } -> (
      match affine_in var index with
      | None -> None
      | Some dst_ix -> (
          match value with
          | Expr.Load { buf = src; index = is } -> (
              match affine_in var is with
              | Some src_ix -> Some (Copy { dst = buf; dst_ix; src; src_ix })
              | None -> None)
          (* literal factor only, and never NaN: [x *. c] must be bitwise
             [c *. x] for the emitted loop to be order-insensitive *)
          | Expr.Binop (Expr.Mul, Expr.Load { buf = src; index = is }, Expr.Float c)
          | Expr.Binop (Expr.Mul, Expr.Float c, Expr.Load { buf = src; index = is })
            when not (Float.is_nan c) -> (
              match affine_in var is with
              | Some src_ix -> Some (Scale { dst = buf; dst_ix; src; src_ix; factor = c })
              | None -> None)
          | _ -> None))
  | _ -> None
