(* IR optimization pipeline.  See optimize.mli for the contract; the load
   hoisting here is the paper's §D.7 generalized from auxiliary-structure
   reads to all loop-invariant ragged-offset arithmetic. *)

type level = O0 | O1 | O2 | O3

let level_of_int = function 0 -> O0 | 1 -> O1 | 2 -> O2 | _ -> O3
let int_of_level = function O0 -> 0 | O1 -> 1 | O2 -> 2 | O3 -> 3
let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

type report = { hoisted : int }

let hoist_var_name = "hv"

(* ------------------------------------------------------------------ *)
(* Purity / typing.  An expression is hoistable only when evaluating it
   early can neither fault nor perturb the float stream: pure integer
   arithmetic, ufun (prelude-table) reads, comparisons of the same — no
   loads, no intrinsics, no float ops, and division only by a nonzero
   literal.  [intvars] is the set of variables known to hold ints at this
   point (loop variables and int-valued lets). *)

let rec int_pure intvars (e : Expr.t) =
  match e with
  | Expr.Int _ -> true
  | Expr.Var v -> Var.Set.mem v intvars
  | Expr.Binop ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Min | Expr.Max), a, b) ->
      int_pure intvars a && int_pure intvars b
  | Expr.Binop ((Expr.FloorDiv | Expr.Mod), a, Expr.Int n) when n <> 0 -> int_pure intvars a
  | Expr.Select (c, a, b) -> bool_pure intvars c && int_pure intvars a && int_pure intvars b
  | Expr.Ufun (_, args) -> List.for_all (int_pure intvars) args
  | _ -> false

and bool_pure intvars (e : Expr.t) =
  match e with
  | Expr.Bool _ -> true
  | Expr.Cmp (_, a, b) -> int_pure intvars a && int_pure intvars b
  | Expr.And (a, b) | Expr.Or (a, b) -> bool_pure intvars a && bool_pure intvars b
  | Expr.Not a -> bool_pure intvars a
  | _ -> false

let node_count e = Expr.fold (fun n _ -> n + 1) 0 e
let contains_ufun e = Expr.fold (fun b n -> b || match n with Expr.Ufun _ -> true | _ -> false) false e

(* Worth a preheader slot: a prelude-table read, or a big enough arithmetic
   tree that re-evaluating it per iteration actually costs something. *)
let worth e = contains_ufun e || node_count e >= 4

(* ------------------------------------------------------------------ *)
(* Candidate collection: maximal hoistable subexpressions of a subtree
   whose free variables are all bound at the prospective preheader. *)

let collect ~bound ~intvars (stmt : Stmt.t) : Expr.t list =
  let acc = ref [] in
  let add e = if not (List.mem e !acc) then acc := e :: !acc in
  let hoistable e =
    int_pure intvars e && worth e && Var.Set.subset (Expr.free_vars e) bound
  in
  let rec scan e =
    if hoistable e then add e
    else
      match (e : Expr.t) with
      | Int _ | Float _ | Bool _ | Var _ -> ()
      | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
          scan a;
          scan b
      | Not a -> scan a
      | Select (c, a, b) ->
          scan c;
          scan a;
          scan b
      | Load { index; _ } -> scan index
      | Ufun (_, args) | Call (_, args) -> List.iter scan args
      | Access { indices; _ } -> List.iter scan indices
      | Let (_, v, b) ->
          scan v;
          scan b
  in
  Stmt.fold_exprs (fun () e -> scan e) () stmt;
  List.rev !acc

(* Replace every occurrence of [target] (structural equality; sound because
   hoistable expressions contain no floats and variables are globally
   unique) with [Var hv], whole-match first so nothing inside a replaced
   occurrence is rewritten twice. *)
let replace_expr target hv e0 =
  let rec go e =
    if e = target then Expr.Var hv
    else
      match (e : Expr.t) with
      | Int _ | Float _ | Bool _ | Var _ -> e
      | Binop (op, a, b) -> Binop (op, go a, go b)
      | Cmp (op, a, b) -> Cmp (op, go a, go b)
      | And (a, b) -> And (go a, go b)
      | Or (a, b) -> Or (go a, go b)
      | Not a -> Not (go a)
      | Select (c, a, b) -> Select (go c, go a, go b)
      | Load { buf; index } -> Load { buf; index = go index }
      | Ufun (n, args) -> Ufun (n, List.map go args)
      | Call (n, args) -> Call (n, List.map go args)
      | Access { tensor; indices } -> Access { tensor; indices = List.map go indices }
      | Let (v, value, body) -> Let (v, go value, go body)
  in
  go e0

let occurs_expr target e =
  Expr.fold (fun b n -> b || n = target) false e

let occurs_stmt target stmt =
  Stmt.fold_exprs (fun b e -> b || occurs_expr target e) false stmt

let replace_stmt target hv stmt = Stmt.map_exprs (replace_expr target hv) stmt

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion.  Processed outermost-first: each [For]
   hoists every candidate of its whole body subtree that is evaluable at
   its preheader (free vars bound outside the loop), then recursion
   inward hoists what remains (expressions depending on this loop's
   variable) to deeper preheaders.  Candidates are substituted largest
   first so a maximal tree is bound whole, never split. *)

let licm (stmt : Stmt.t) : Stmt.t * report =
  let hoisted = ref 0 in
  let rec go ~bound ~intvars (s : Stmt.t) : Stmt.t =
    match s with
    | Stmt.For r ->
        let cands =
          collect ~bound ~intvars r.body
          |> List.sort (fun a b -> Int.compare (node_count b) (node_count a))
        in
        let body, bindings =
          List.fold_left
            (fun (body, binds) e ->
              (* earlier (larger) substitutions may have consumed every
                 occurrence of a smaller candidate *)
              if occurs_stmt e body then
                let hv = Var.fresh hoist_var_name in
                (replace_stmt e hv body, (hv, e) :: binds)
              else (body, binds))
            (r.body, []) cands
        in
        hoisted := !hoisted + List.length bindings;
        let bound = List.fold_left (fun s (v, _) -> Var.Set.add v s) bound bindings in
        let intvars = List.fold_left (fun s (v, _) -> Var.Set.add v s) intvars bindings in
        let body =
          go ~bound:(Var.Set.add r.var bound) ~intvars:(Var.Set.add r.var intvars) body
        in
        List.fold_left
          (fun acc (v, e) -> Stmt.Let_stmt (v, e, acc))
          (Stmt.For { r with body })
          bindings
    | Stmt.Let_stmt (v, e, body) ->
        let intvars = if int_pure intvars e then Var.Set.add v intvars else intvars in
        Stmt.Let_stmt (v, e, go ~bound:(Var.Set.add v bound) ~intvars body)
    | Stmt.If (c, a, b) ->
        Stmt.If (c, go ~bound ~intvars a, Option.map (go ~bound ~intvars) b)
    | Stmt.Seq l -> Stmt.Seq (List.map (go ~bound ~intvars) l)
    | Stmt.Alloc r ->
        Stmt.Alloc { r with body = go ~bound:(Var.Set.add r.buf bound) ~intvars r.body }
    | Stmt.Store _ | Stmt.Reduce_store _ | Stmt.Eval _ | Stmt.Nop -> s
  in
  let s = go ~bound:Var.Set.empty ~intvars:Var.Set.empty stmt in
  (s, { hoisted = !hoisted })

(* ------------------------------------------------------------------ *)
(* Division-identity elimination (opt >= 3): inside a flattened sum,
   [(e fdiv c) * c + (e mod c)] is exactly [e] — the IR's floored
   div/mod form a division-algorithm pair (a = q*b + r for any literal
   c <> 0), so the rewrite is value-exact for all integers.  Lowered
   gather indices through padded layouts produce these pairs
   ([(k/8)*8 + k%8] when the gather is the identity at this tile size);
   eliminating them is what exposes an affine stride to
   [classify_stride] / [classify_nest], so it runs as the first [O3]
   pass.  Dropping the pair evaluates [e] once where the original
   evaluated it twice — same fault behaviour (it is still evaluated),
   counter divergence covered by the documented O1+ rule. *)
let divmod_elim (stmt : Stmt.t) : Stmt.t * report =
  let eliminated = ref 0 in
  let rec terms (e : Expr.t) =
    match e with Expr.Binop (Expr.Add, a, b) -> terms a @ terms b | e -> [ e ]
  in
  let matches_mul de c (t : Expr.t) =
    match t with
    | Expr.Binop (Expr.Mul, Expr.Binop (Expr.FloorDiv, de', Expr.Int c'), Expr.Int c'')
    | Expr.Binop (Expr.Mul, Expr.Int c'', Expr.Binop (Expr.FloorDiv, de', Expr.Int c')) ->
        c' = c && c'' = c && de' = de
    | _ -> false
  in
  (* find one [mod] term with a matching [div*c] term: replace the first
     such mul term by [de], drop the mod term, keep every other term in
     place (integer addition is associative and commutative, and these
     terms are pure integer arithmetic over already-evaluated values) *)
  let rec pair_one pre = function
    | [] -> None
    | (Expr.Binop (Expr.Mod, de, Expr.Int c) as t) :: rest when c <> 0 ->
        let replaced = ref false in
        let sub l =
          List.map
            (fun t' ->
              if (not !replaced) && matches_mul de c t' then begin
                replaced := true;
                de
              end
              else t')
            l
        in
        let pre' = sub pre in
        let rest' = if !replaced then rest else sub rest in
        if !replaced then Some (List.rev_append (List.rev pre') rest')
        else pair_one (pre @ [ t ]) rest
    | t :: rest -> pair_one (pre @ [ t ]) rest
  in
  let rewrite_node (e : Expr.t) =
    match e with
    | Expr.Binop (Expr.Add, _, _) -> (
        let here = ref 0 in
        let rec fix ts =
          match pair_one [] ts with
          | Some ts' ->
              incr here;
              fix ts'
          | None -> ts
        in
        let ts = fix (terms e) in
        if !here = 0 then e
        else begin
          eliminated := !eliminated + !here;
          match ts with
          | [] -> Expr.zero
          | t :: rest -> List.fold_left (fun acc x -> Expr.Binop (Expr.Add, acc, x)) t rest
        end)
    | e -> e
  in
  let s = Stmt.map_exprs (Expr.map_bottom_up rewrite_node) stmt in
  Obs.Metrics.add (Obs.Metrics.counter "optimize.divmod_eliminated") !eliminated;
  (s, { hoisted = 0 })

(* ------------------------------------------------------------------ *)
(* Pass framework: each pass runs under an [optimize.<name>] span and
   accounts what it did in the metrics registry. *)

type pass = { pname : string; prun : Stmt.t -> Stmt.t * report }

let licm_pass = { pname = "licm"; prun = licm }
let divmod_pass = { pname = "divmod"; prun = divmod_elim }

let passes = function
  | O0 -> []
  | O1 | O2 -> [ licm_pass ]
  | O3 -> [ divmod_pass; licm_pass ]

let run ~level (stmt : Stmt.t) : Stmt.t * report =
  List.fold_left
    (fun (s, rep) p ->
      let s', r =
        Obs.Span.with_span
          ~attrs:[ ("level", Obs.Trace_sink.Str (level_name level)) ]
          ("optimize." ^ p.pname)
          (fun () -> p.prun s)
      in
      Obs.Metrics.add (Obs.Metrics.counter "optimize.hoisted") r.hoisted;
      (s', { hoisted = rep.hoisted + r.hoisted }))
    (stmt, { hoisted = 0 })
    (passes level)

(* ------------------------------------------------------------------ *)
(* Affine decomposition: [e = base + var * stride] with [base]/[stride]
   free of [var].  Exact — only reassociates integer [+]/[-]/[*]. *)

type affine = { base : Expr.t; stride : Expr.t }

let rec affine_in v (e : Expr.t) : affine option =
  if not (Expr.uses_var v e) then Some { base = e; stride = Expr.zero }
  else
    match e with
    | Expr.Var u when Var.equal u v -> Some { base = Expr.zero; stride = Expr.one }
    | Expr.Binop (Expr.Add, a, b) -> (
        match (affine_in v a, affine_in v b) with
        | Some x, Some y ->
            Some { base = Expr.add x.base y.base; stride = Expr.add x.stride y.stride }
        | _ -> None)
    | Expr.Binop (Expr.Sub, a, b) -> (
        match (affine_in v a, affine_in v b) with
        | Some x, Some y ->
            Some { base = Expr.sub x.base y.base; stride = Expr.sub x.stride y.stride }
        | _ -> None)
    | Expr.Binop (Expr.Mul, a, b) when not (Expr.uses_var v a) -> (
        match affine_in v b with
        | Some y -> Some { base = Expr.mul a y.base; stride = Expr.mul a y.stride }
        | None -> None)
    | Expr.Binop (Expr.Mul, a, b) when not (Expr.uses_var v b) -> (
        match affine_in v a with
        | Some x -> Some { base = Expr.mul x.base b; stride = Expr.mul x.stride b }
        | None -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Compile-time stride classification (opt >= 3 variant selection).
   Conservative integer constant folding: anything that does not fold to
   a literal is a dynamic stride, which the engine must evaluate at
   block-entry time and drive with a strided kernel. *)

let rec const_of (e : Expr.t) : int option =
  match e with
  | Expr.Int n -> Some n
  | Expr.Binop (op, a, b) -> (
      match (const_of a, const_of b) with
      | Some x, Some y -> (
          match op with
          | Expr.Add -> Some (x + y)
          | Expr.Sub -> Some (x - y)
          | Expr.Mul -> Some (x * y)
          | Expr.Min -> Some (min x y)
          | Expr.Max -> Some (max x y)
          | Expr.FloorDiv | Expr.Mod | Expr.Div -> None)
      | _ -> None)
  | _ -> None

type stride_class = S_unit | S_const of int | S_dyn

let classify_stride (ax : affine) : stride_class =
  match const_of ax.stride with Some 1 -> S_unit | Some n -> S_const n | None -> S_dyn

(* ------------------------------------------------------------------ *)
(* Innermost-loop classification *)

type inner =
  | Dot of {
      dst : Var.t;
      dst_idx : Expr.t;
      op : Stmt.reduce_op;
      a : Var.t;
      a_ix : affine;
      b : Var.t;
      b_ix : affine;
    }
  | Reduce1 of { dst : Var.t; dst_idx : Expr.t; op : Stmt.reduce_op; src : Var.t; src_ix : affine }
  | Copy of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine }
  | Scale of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine; factor : float }

let classify_inner ~var (body : Stmt.t) : inner option =
  match body with
  | Stmt.Reduce_store { buf; index; value; op } when not (Expr.uses_var var index) -> (
      match value with
      | Expr.Binop (Expr.Mul, Expr.Load { buf = a; index = ia }, Expr.Load { buf = b; index = ib })
        -> (
          match (affine_in var ia, affine_in var ib) with
          | Some a_ix, Some b_ix -> Some (Dot { dst = buf; dst_idx = index; op; a; a_ix; b; b_ix })
          | _ -> None)
      | Expr.Load { buf = src; index = is } -> (
          match affine_in var is with
          | Some src_ix -> Some (Reduce1 { dst = buf; dst_idx = index; op; src; src_ix })
          | None -> None)
      | _ -> None)
  | Stmt.Store { buf; index; value } -> (
      match affine_in var index with
      | None -> None
      | Some dst_ix -> (
          match value with
          | Expr.Load { buf = src; index = is } -> (
              match affine_in var is with
              | Some src_ix -> Some (Copy { dst = buf; dst_ix; src; src_ix })
              | None -> None)
          (* literal factor only, and never NaN: [x *. c] must be bitwise
             [c *. x] for the emitted loop to be order-insensitive *)
          | Expr.Binop (Expr.Mul, Expr.Load { buf = src; index = is }, Expr.Float c)
          | Expr.Binop (Expr.Mul, Expr.Float c, Expr.Load { buf = src; index = is })
            when not (Float.is_nan c) -> (
              match affine_in var is with
              | Some src_ix -> Some (Scale { dst = buf; dst_ix; src; src_ix; factor = c })
              | None -> None)
          | _ -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Two-deep nest classification (opt >= 3): a loop over [var] whose body
   is a serial dot loop sweeping a distinct destination element per
   [var] iteration — the register-tilable gemm/attention shape.  One
   multiplicand's whole address is [var]-invariant (the shared operand,
   loadable once per reduction step for the whole tile); the other's
   reduction stride is [var]-invariant while its base advances affinely
   with [var].

   Lowered kernels do not present the dot loop bare.  The tile-var body
   is, in full generality,

     [If (guard) { dst[i] = init; let hv = ...;
                   for k { dst[i] += mask ? a[..] * b[..] : 0. };
                   dst[i] = epi }]

   — a raggedness guard, the accumulator's init store (a bias row, or a
   literal zero), LICM preheader bindings, a Select mask inside the
   reduction (raggedness masking without a branchy loop bound), and an
   optional epilogue store rewriting the finished cell (a scale, an
   activation).  The classifier peels all of these: pure-integer
   [Let_stmt] bindings are inlined so affine decomposition in [var] sees
   through preheader variables; the guard and the [var]-wise mask
   conjuncts are kept for per-iteration evaluation by the engine; a mask
   conjunct of the shape [kvar < bound] becomes an effective reduction
   length; init and epilogue are kept only when they address exactly the
   dot's own cell.  Sum reductions only — the tile's accumulator chains
   must be independent. *)

type nest =
  | Tiled_dot of {
      dst : Var.t;
      dst_ix : affine;  (** destination index, affine in the tile var *)
      guard : Expr.t option;
          (** raggedness guard, pure, evaluated per tile-var value *)
      init : Expr.t option;
          (** init-store value for the dot's cell, evaluated per tile-var
              value; [None] means accumulate into the existing cell *)
      init_bufs : Var.t list;
          (** buffers the init value loads from (beyond the cell itself) —
              the engine falls back if any aliases the destination *)
      epi : Stmt.t option;
          (** epilogue store rewriting the finished cell, run per
              tile-var value after its chain completes *)
      epi_bufs : Var.t list;  (** like [init_bufs], for the epilogue *)
      vmask : Expr.t option;
          (** inner-var-invariant mask conjuncts, pure, evaluated per
              tile-var value; false means the chain only accumulates
              zeros *)
      kbound : Expr.t option;
          (** mask conjunct [kvar < kbound] (tile-var-invariant): real
              products stop there, the rest of the chain adds zeros *)
      kmin : Expr.t;  (** inner loop bounds, tile-var-invariant *)
      kext : Expr.t;
      shared : Var.t;
      shared_ix : affine;  (** affine in the inner var; tile-var-invariant *)
      shared_left : bool;  (** shared operand is the left multiplicand *)
      moving : Var.t;
      moving_kstride : Expr.t;  (** inner-var stride, tile-var-invariant *)
      moving_jbase : affine;  (** inner-var base, as affine in the tile var *)
    }

(* Peelable binding / movable condition: pure arithmetic over any
   variables (no loads, no float ops, no faulting division), so inlining
   it — or evaluating it a different number of times — cannot fault or
   perturb the float stream. *)
let int_pure_open e = int_pure (Expr.free_vars e) e
let bool_pure_open e = bool_pure (Expr.free_vars e) e

exception Not_nest

(* Buffers an expression loads from, except reads of [dst]'s own cell
   [dst_idx]; raises if [dst] is read at any other index (the engine
   could not preserve evaluation order for those). *)
let cell_local_bufs ~dst ~dst_idx ~sub e : Var.t list =
  Expr.fold
    (fun acc n ->
      match n with
      | Expr.Load { buf; index } ->
          if Var.equal buf dst then
            if sub index = dst_idx then acc else raise Not_nest
          else buf :: acc
      | _ -> acc)
    [] e

let rec conjuncts c =
  match c with Expr.And (a, b) -> conjuncts a @ conjuncts b | c -> [ c ]

let classify_nest ~var (body : Stmt.t) : nest option =
  try
    let guard, core =
      match body with Stmt.If (c, t, None) -> (Some c, t) | s -> (None, s)
    in
    (match guard with
    | Some g when not (bool_pure_open g) -> raise Not_nest
    | _ -> ());
    let rec peel m s =
      match s with
      | Stmt.Let_stmt (v, e, b) ->
          let e = Expr.subst m e in
          if int_pure_open e then peel (Var.Map.add v e m) b else (m, s)
      | _ -> (m, s)
    in
    let m, core = peel Var.Map.empty core in
    let init_store, core, epi_stmt =
      match core with
      | Stmt.Seq [ (Stmt.Store _ as i); mid ] -> (Some i, mid, None)
      | Stmt.Seq [ (Stmt.Store _ as i); mid; (Stmt.Store _ as e) ] -> (Some i, mid, Some e)
      | s -> (None, s, None)
    in
    let m, core = peel m core in
    let sub e = Expr.subst m e in
    match core with
    | Stmt.For { var = kvar; min = kmin; extent = kext; kind = Stmt.Serial; body = kb }
      when (not (Expr.uses_var var (sub kmin))) && not (Expr.uses_var var (sub kext)) -> (
        match kb with
        | Stmt.Reduce_store { buf = dst; index = dst_idx; value; op = Stmt.Sum }
          when not (Expr.uses_var kvar dst_idx) -> (
            let a, ia, b, ib, mask =
              match value with
              | Expr.Binop
                  (Expr.Mul, Expr.Load { buf = a; index = ia }, Expr.Load { buf = b; index = ib })
                ->
                  (a, ia, b, ib, None)
              (* masked dot: the false branch must be a literal +0.0 —
                 adding it never changes the accumulator except to clear a
                 negative zero, which the engine reproduces *)
              | Expr.Select
                  ( cond,
                    Expr.Binop
                      ( Expr.Mul,
                        Expr.Load { buf = a; index = ia },
                        Expr.Load { buf = b; index = ib } ),
                    Expr.Float z )
                when Int64.equal (Int64.bits_of_float z) 0L ->
                  (a, ia, b, ib, Some (sub cond))
              | _ -> raise Not_nest
            in
            (* split the mask into inner-var-invariant conjuncts and at
               most one [kvar < bound] threshold; anything else rejects *)
            let vmask, kbound =
              match mask with
              | None -> (None, None)
              | Some cond ->
                  let vm, kb =
                    List.fold_left
                      (fun (vm, kb) c ->
                        if not (Expr.uses_var kvar c) then
                          if bool_pure_open c then (c :: vm, kb) else raise Not_nest
                        else
                          match c with
                          | Expr.Cmp (Expr.Lt, Expr.Var k', bound)
                            when Var.equal k' kvar
                                 && (not (Expr.uses_var kvar bound))
                                 && (not (Expr.uses_var var bound))
                                 && int_pure_open bound && kb = None ->
                              (vm, Some bound)
                          | _ -> raise Not_nest)
                      ([], None) (conjuncts cond)
                  in
                  let vm =
                    match List.rev vm with
                    | [] -> None
                    | c :: rest ->
                        Some (List.fold_left (fun e c -> Expr.And (e, c)) c rest)
                  in
                  (vm, kb)
            in
            match (affine_in kvar ia, affine_in kvar ib) with
            | Some a_ix, Some b_ix ->
                let dst_idx = sub dst_idx in
                let sub_ax (ax : affine) = { base = sub ax.base; stride = sub ax.stride } in
                let a_ix = sub_ax a_ix and b_ix = sub_ax b_ix in
                (* init / epilogue must address exactly the dot's cell *)
                let init, init_bufs =
                  match init_store with
                  | None -> (None, [])
                  | Some (Stmt.Store { buf; index; value })
                    when Var.equal buf dst && sub index = dst_idx ->
                      (Some (sub value), cell_local_bufs ~dst ~dst_idx ~sub value)
                  | Some _ -> raise Not_nest
                in
                let epi, epi_bufs =
                  match epi_stmt with
                  | None -> (None, [])
                  | Some (Stmt.Store { buf; index; value })
                    when Var.equal buf dst && sub index = dst_idx ->
                      (* substitute the peeled bindings so the engine can
                         compile the store stand-alone *)
                      ( Some (Stmt.Store { buf; index = sub index; value = sub value }),
                        cell_local_bufs ~dst ~dst_idx ~sub value )
                  | Some _ -> raise Not_nest
                in
                let dst_ix =
                  match affine_in var dst_idx with Some ax -> ax | None -> raise Not_nest
                in
                let invariant (ax : affine) =
                  (not (Expr.uses_var var ax.base)) && not (Expr.uses_var var ax.stride)
                in
                let moving_of (ax : affine) =
                  if Expr.uses_var var ax.stride then None
                  else Option.map (fun jbase -> (ax.stride, jbase)) (affine_in var ax.base)
                in
                let mk ~shared ~shared_ix ~shared_left ~moving mv =
                  Option.map
                    (fun (moving_kstride, moving_jbase) ->
                      Tiled_dot
                        { dst; dst_ix; guard; init; init_bufs; epi; epi_bufs; vmask;
                          kbound; kmin = sub kmin; kext = sub kext; shared; shared_ix;
                          shared_left; moving; moving_kstride; moving_jbase })
                    mv
                in
                if invariant a_ix then
                  mk ~shared:a ~shared_ix:a_ix ~shared_left:true ~moving:b (moving_of b_ix)
                else if invariant b_ix then
                  mk ~shared:b ~shared_ix:b_ix ~shared_left:false ~moving:a (moving_of a_ix)
                else None
            | _ -> None)
        | _ -> None)
    | _ -> None
  with Not_nest -> None
