(** IR optimization pipeline — runs on lowered [Stmt]/[Expr] between
    {!Lower} (well, the lowered kernel body it produced) and engine
    compilation.

    Three cooperating pieces, mirroring the paper's §D.7 load hoisting and
    the LoopStack-style innermost-loop specialization:

    - {b loop-invariant code motion} ({!licm}): ragged-offset
      subexpressions — [A_d] prelude-table reads ([Ufun]s), affine index
      products — are hoisted to the outermost loop level where their free
      variables are bound, becoming [Let_stmt] preheaders;
    - {b affine decomposition} ({!affine_in}): rewrites an index
      expression as [base + var * stride], the analysis behind strength
      reduction (running offsets instead of re-evaluated address trees);
    - {b innermost-loop classification} ({!classify_inner}): recognizes
      dense dot / reduction / copy / scale loop bodies so the engine can
      emit fused microkernels.

    The pipeline itself never changes observable values: hoisting moves
    only {e pure integer} expressions (no loads, no float ops, no
    division by a possibly-zero expression), so the optimized program is
    bitwise-identical to the unoptimized one on well-formed kernels.
    What {e does} change is the statistics profile: hoisted [Ufun] reads
    bump [loads]/[indirect] once per preheader entry instead of once per
    iteration.  That difference is deliberate, documented, and measured
    by the engine's [hoisted] counter.

    Speculation caveat: a hoisted binding is evaluated even when every
    loop below it runs zero iterations (or every guard below it is
    false), where the unoptimized program would not have evaluated it.
    This is safe for the expressions we hoist — prelude tables are total
    over the variables bound at the preheader — and is the standard LICM
    trade; the differential fuzz in [test/test_optimize.ml] exercises it
    across guarded, padded and zero-length schedules. *)

(** Optimization level, threaded from [Exec]/[Serving]/the CLI down to
    {!Runtime.Engine.compile}:
    [O0] — none (bit- and counter-exact interpreter parity);
    [O1] — LICM + strength-reduced innermost store loops;
    [O2] — [O1] + fused microkernels. *)
type level = O0 | O1 | O2

val level_of_int : int -> level
(** [0 -> O0], [1 -> O1], anything [>= 2 -> O2]. *)

val int_of_level : level -> int
val level_name : level -> string

(** Per-run report of what the pipeline did. *)
type report = { hoisted : int  (** [Let_stmt] preheader bindings created *) }

(** Display name given to every hoisted binding's variable — the engine
    recognizes it to maintain its [hoisted] runtime counter. *)
val hoist_var_name : string

val licm : Stmt.t -> Stmt.t * report
(** Loop-invariant code motion (pass [optimize.licm], traced as a span;
    bindings created are counted in the [optimize.hoisted] metric). *)

val run : level:level -> Stmt.t -> Stmt.t * report
(** Run the pass list for [level] ([O0] is the identity). *)

(* ------------------------------------------------------------------ *)
(* Analyses used by the engine's strength reduction and microkernels *)

(** [index = base + var * stride], with [base] and [stride] free of [var]. *)
type affine = { base : Expr.t; stride : Expr.t }

val affine_in : Var.t -> Expr.t -> affine option
(** Structural affine decomposition w.r.t. [var].  Exact in integer
    arithmetic (only reassociates [+]/[-]/[*]); [None] when the
    expression is not affine in [var] (e.g. [var] under floordiv/mod). *)

(** Innermost-loop body shapes the engine fuses into microkernels.  All
    index fields are affine in the loop variable; [dst_idx] of the
    reductions is invariant in it (the register-accumulation condition). *)
type inner =
  | Dot of {
      dst : Var.t;
      dst_idx : Expr.t;
      op : Stmt.reduce_op;
      a : Var.t;
      a_ix : affine;
      b : Var.t;
      b_ix : affine;
    }  (** [dst[dst_idx] op= a[..] * b[..]] — the gemm/attention inner loop *)
  | Reduce1 of { dst : Var.t; dst_idx : Expr.t; op : Stmt.reduce_op; src : Var.t; src_ix : affine }
      (** [dst[dst_idx] op= src[..]] — row max / row sum *)
  | Copy of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine }
      (** [dst[..] = src[..]] — row gather / scatter *)
  | Scale of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine; factor : float }
      (** [dst[..] = src[..] * c] (or [c * src[..]]) with a literal [c] *)

val classify_inner : var:Var.t -> Stmt.t -> inner option
(** Classify a loop {e body} (single statement, no [Seq]/[If] wrapper)
    against the microkernel shapes, w.r.t. loop variable [var]. *)
