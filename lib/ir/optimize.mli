(** IR optimization pipeline — runs on lowered [Stmt]/[Expr] between
    {!Lower} (well, the lowered kernel body it produced) and engine
    compilation.

    Three cooperating pieces, mirroring the paper's §D.7 load hoisting and
    the LoopStack-style innermost-loop specialization:

    - {b loop-invariant code motion} ({!licm}): ragged-offset
      subexpressions — [A_d] prelude-table reads ([Ufun]s), affine index
      products — are hoisted to the outermost loop level where their free
      variables are bound, becoming [Let_stmt] preheaders;
    - {b affine decomposition} ({!affine_in}): rewrites an index
      expression as [base + var * stride], the analysis behind strength
      reduction (running offsets instead of re-evaluated address trees);
    - {b innermost-loop classification} ({!classify_inner}): recognizes
      dense dot / reduction / copy / scale loop bodies so the engine can
      emit fused microkernels;
    - {b stride and nest classification} ({!classify_stride},
      {!classify_nest}): folds affine strides to compile-time classes
      (statically-unit / statically-constant / dynamic) and recognizes
      register-tilable dot nests, so the [O3] engine selects a
      specialized kernel variant when the closure is built rather than
      per call.

    The pipeline itself never changes observable values: hoisting moves
    only {e pure integer} expressions (no loads, no float ops, no
    division by a possibly-zero expression), so the optimized program is
    bitwise-identical to the unoptimized one on well-formed kernels.
    What {e does} change is the statistics profile: hoisted [Ufun] reads
    bump [loads]/[indirect] once per preheader entry instead of once per
    iteration.  That difference is deliberate, documented, and measured
    by the engine's [hoisted] counter.

    Speculation caveat: a hoisted binding is evaluated even when every
    loop below it runs zero iterations (or every guard below it is
    false), where the unoptimized program would not have evaluated it.
    This is safe for the expressions we hoist — prelude tables are total
    over the variables bound at the preheader — and is the standard LICM
    trade; the differential fuzz in [test/test_optimize.ml] exercises it
    across guarded, padded and zero-length schedules. *)

(** Optimization level, threaded from [Exec]/[Serving]/the CLI down to
    {!Runtime.Engine.compile}:
    [O0] — none (bit- and counter-exact interpreter parity);
    [O1] — LICM + strength-reduced innermost store loops;
    [O2] — [O1] + fused microkernels;
    [O3] — [O2] + stride-specialized, register-tiled microkernel variants
    selected at closure-build time from {!classify_stride} /
    {!classify_nest} (outputs stay bitwise-identical; the generic [O2]
    loop remains the aliasing fallback). *)
type level = O0 | O1 | O2 | O3

val level_of_int : int -> level
(** [0 -> O0], [1 -> O1], [2 -> O2], anything [>= 3 -> O3]. *)

val int_of_level : level -> int
val level_name : level -> string

(** Per-run report of what the pipeline did. *)
type report = { hoisted : int  (** [Let_stmt] preheader bindings created *) }

(** Display name given to every hoisted binding's variable — the engine
    recognizes it to maintain its [hoisted] runtime counter. *)
val hoist_var_name : string

val licm : Stmt.t -> Stmt.t * report
(** Loop-invariant code motion (pass [optimize.licm], traced as a span;
    bindings created are counted in the [optimize.hoisted] metric). *)

val run : level:level -> Stmt.t -> Stmt.t * report
(** Run the pass list for [level] ([O0] is the identity). *)

(* ------------------------------------------------------------------ *)
(* Analyses used by the engine's strength reduction and microkernels *)

(** [index = base + var * stride], with [base] and [stride] free of [var]. *)
type affine = { base : Expr.t; stride : Expr.t }

val affine_in : Var.t -> Expr.t -> affine option
(** Structural affine decomposition w.r.t. [var].  Exact in integer
    arithmetic (only reassociates [+]/[-]/[*]); [None] when the
    expression is not affine in [var] (e.g. [var] under floordiv/mod). *)

(** Innermost-loop body shapes the engine fuses into microkernels.  All
    index fields are affine in the loop variable; [dst_idx] of the
    reductions is invariant in it (the register-accumulation condition). *)
type inner =
  | Dot of {
      dst : Var.t;
      dst_idx : Expr.t;
      op : Stmt.reduce_op;
      a : Var.t;
      a_ix : affine;
      b : Var.t;
      b_ix : affine;
    }  (** [dst[dst_idx] op= a[..] * b[..]] — the gemm/attention inner loop *)
  | Reduce1 of { dst : Var.t; dst_idx : Expr.t; op : Stmt.reduce_op; src : Var.t; src_ix : affine }
      (** [dst[dst_idx] op= src[..]] — row max / row sum *)
  | Copy of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine }
      (** [dst[..] = src[..]] — row gather / scatter *)
  | Scale of { dst : Var.t; dst_ix : affine; src : Var.t; src_ix : affine; factor : float }
      (** [dst[..] = src[..] * c] (or [c * src[..]]) with a literal [c] *)

val classify_inner : var:Var.t -> Stmt.t -> inner option
(** Classify a loop {e body} (single statement, no [Seq]/[If] wrapper)
    against the microkernel shapes, w.r.t. loop variable [var]. *)

val const_of : Expr.t -> int option
(** Conservative integer constant folding over [+ - * min max]; [None]
    for anything that does not fold to a literal. *)

(** Compile-time class of an affine stride, deciding which [O3] kernel
    variant the engine binds when the closure is built:
    [S_unit] — folds to literal [1] (contiguous; unrolled kernels and
    [Array.blit] copies apply);
    [S_const n] — folds to literal [n] (the step can be baked into the
    closure);
    [S_dyn] — anything else (evaluated at block entry; strided kernels). *)
type stride_class = S_unit | S_const of int | S_dyn

val classify_stride : affine -> stride_class

(** Two-deep nest shape the engine register-tiles at [O3]: a loop over
    the tile var whose body is a serial dot loop writing a distinct
    destination element per tile-var iteration.  [shared]'s address is
    tile-var-invariant (one load serves every chain of the tile);
    [moving]'s reduction stride is tile-var-invariant while its base
    advances affinely with the tile var.  Each destination element keeps
    its own order-preserving accumulator chain, so the chains are
    independent and tiling cannot perturb float results. *)
type nest =
  | Tiled_dot of {
      dst : Var.t;
      dst_ix : affine;  (** destination index, affine in the tile var *)
      guard : Expr.t option;
          (** raggedness guard, pure, evaluated per tile-var value *)
      init : Expr.t option;
          (** init-store value for the dot's cell, evaluated per tile-var
              value; [None] means accumulate into the existing cell *)
      init_bufs : Var.t list;
          (** buffers the init value loads from (beyond the cell itself) —
              the engine falls back if any aliases the destination *)
      epi : Stmt.t option;
          (** epilogue store rewriting the finished cell, run per tile-var
              value after its chain completes *)
      epi_bufs : Var.t list;  (** like [init_bufs], for the epilogue *)
      vmask : Expr.t option;
          (** inner-var-invariant mask conjuncts, pure, evaluated per
              tile-var value; false means the chain only accumulates
              zeros *)
      kbound : Expr.t option;
          (** mask conjunct [kvar < kbound] (tile-var-invariant): real
              products stop there, the rest of the chain adds zeros *)
      kmin : Expr.t;  (** inner loop bounds, tile-var-invariant *)
      kext : Expr.t;
      shared : Var.t;
      shared_ix : affine;  (** affine in the inner var; tile-var-invariant *)
      shared_left : bool;  (** shared operand is the left multiplicand *)
      moving : Var.t;
      moving_kstride : Expr.t;  (** inner-var stride, tile-var-invariant *)
      moving_jbase : affine;  (** inner-var base, as affine in the tile var *)
    }

val classify_nest : var:Var.t -> Stmt.t -> nest option
(** Classify a loop {e body} against the register-tilable nest shape,
    w.r.t. tile variable [var].  The body may be the inner [For]
    directly, or the shape lowering actually produces:
    [If (guard) { dst[i] = init; let hv = ...;
                  for k { dst[i] += mask ? a[..]*b[..] : 0. };
                  dst[i] = epi }]
    — the guard, init value, mask conjuncts and epilogue store are kept
    in the result for the engine to evaluate per tile-var value (init and
    epilogue only when they address exactly the dot's own cell; masks
    split into tile-var-wise conjuncts and one [k < bound] threshold; the
    masked dot's false branch must be literal [+0.0], which the tiled
    kernel reproduces by skipping the zero adds and clearing a possible
    [-0.0] accumulator).  Pure-integer [Let_stmt] preheader bindings are
    inlined into the returned expressions.  [Sum] reductions only. *)
