(** IR-to-IR transformations applied after lowering.

    [unroll] replicates the bodies of [Unrolled] loops with constant
    extents — the classic epilogue of tensor-compiler pipelines, letting
    the (simulated) backend see straight-line code with no loop
    bookkeeping. *)

(** Replicate [Unrolled] loops with constant bounds; loops whose extents
    are not compile-time constants are left as serial loops. *)
let rec unroll (s : Stmt.t) : Stmt.t =
  match s with
  | For { var; min = Expr.Int m; extent = Expr.Int n; kind = Unrolled; body } when n <= 64 ->
      let body = unroll body in
      Stmt.seq
        (List.init n (fun i -> Stmt.subst (Var.Map.singleton var (Expr.int (m + i))) body))
  | For r -> For { r with kind = (if r.kind = Unrolled then Serial else r.kind); body = unroll r.body }
  | Let_stmt (v, e, body) -> Let_stmt (v, e, unroll body)
  | If (c, a, b) -> If (c, unroll a, Option.map unroll b)
  | Seq l -> Seq (List.map unroll l)
  | Alloc r -> Alloc { r with body = unroll r.body }
  | (Store _ | Reduce_store _ | Eval _ | Nop) as s -> s

(** Count loop nodes (diagnostics for tests). *)
let rec count_loops (s : Stmt.t) : int =
  match s with
  | For { body; _ } -> 1 + count_loops body
  | Let_stmt (_, _, body) | Alloc { body; _ } -> count_loops body
  | If (_, a, b) -> count_loops a + (match b with Some b -> count_loops b | None -> 0)
  | Seq l -> List.fold_left (fun acc x -> acc + count_loops x) 0 l
  | Store _ | Reduce_store _ | Eval _ | Nop -> 0
