(** Variables (identifiers) used throughout the IR.

    Every variable carries a globally unique integer id, so two variables with
    the same display name never collide.  Variables stand for loop iteration
    variables, buffer handles and scalar lets. *)

type t = { id : int; name : string }

(* atomic: fresh variables are minted concurrently by serving worker
   domains, and a duplicated id silently aliases two loop variables *)
let counter = Atomic.make 0

(** [fresh name] creates a new variable with display name [name]. *)
let fresh name = { id = 1 + Atomic.fetch_and_add counter 1; name }

(** [equal a b] is physical identity of variables (by unique id). *)
let equal a b = a.id = b.id

let compare a b = Int.compare a.id b.id
let name v = v.name
let id v = v.id

(** [pp] prints the variable as [name_id] so distinct variables with the same
    display name remain distinguishable in dumps. *)
let pp ppf v = Fmt.pf ppf "%s_%d" v.name v.id

(** Unique printable name, suitable for generated C code. *)
let mangled v = Printf.sprintf "%s_%d" v.name v.id

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
