(** Post-lowering IR transformations. *)

(** Replicate [Unrolled] loops with constant bounds (capped at 64 copies);
    non-constant unrolled loops degrade to serial. *)
val unroll : Stmt.t -> Stmt.t

(** Number of loop nodes (diagnostics). *)
val count_loops : Stmt.t -> int
