(** Pretty-printing of IR expressions and statements in a C-flavoured
    concrete syntax, for dumps, debugging and golden tests. *)

val binop_str : Expr.binop -> string
val cmpop_str : Expr.cmpop -> string
val pp_expr : Format.formatter -> Expr.t -> unit
val kind_str : Stmt.for_kind -> string
val reduce_str : Stmt.reduce_op -> string
val pp_stmt : ?indent:int -> Format.formatter -> Stmt.t -> unit
val expr_to_string : Expr.t -> string
val stmt_to_string : Stmt.t -> string
