(** Variables (identifiers) used throughout the IR.

    Every variable carries a globally unique integer id, so two variables
    with the same display name never collide; substitution never needs to
    be capture-avoiding. *)

type t = { id : int; name : string }

(** [fresh name] creates a new variable with display name [name] and a
    globally unique id. *)
val fresh : string -> t

(** Identity (by unique id). *)
val equal : t -> t -> bool

val compare : t -> t -> int
val name : t -> string
val id : t -> int

(** Prints as [name_id], keeping same-named variables distinguishable. *)
val pp : Format.formatter -> t -> unit

(** Unique printable name, suitable for generated C code. *)
val mangled : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
