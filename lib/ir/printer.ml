(** Pretty-printing of IR expressions and statements in a C-flavoured
    concrete syntax, used for dumps, debugging and golden tests. *)

let binop_str : Expr.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | FloorDiv -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmpop_str : Expr.cmpop -> string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Var v -> Var.pp ppf v
  | Binop (((Min | Max) as op), a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (cmpop_str op) pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "!(%a)" pp_expr a
  | Select (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Load { buf; index } -> Fmt.pf ppf "%a[%a]" Var.pp buf pp_expr index
  | Ufun (n, args) -> Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:(any ", ") pp_expr) args
  | Call (n, args) -> Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:(any ", ") pp_expr) args
  | Access { tensor; indices } ->
      Fmt.pf ppf "%s[%a]" tensor Fmt.(list ~sep:(any ", ") pp_expr) indices
  | Let (v, value, body) ->
      Fmt.pf ppf "(let %a = %a in %a)" Var.pp v pp_expr value pp_expr body

let kind_str : Stmt.for_kind -> string = function
  | Serial -> "for"
  | Parallel -> "parallel_for"
  | Vectorized -> "vectorized_for"
  | Unrolled -> "unrolled_for"
  | Gpu_block -> "gpu_block_for"
  | Gpu_thread -> "gpu_thread_for"

let reduce_str : Stmt.reduce_op -> string = function
  | Sum -> "+="
  | Prod -> "*="
  | Rmax -> "max="
  | Rmin -> "min="

let rec pp_stmt ?(indent = 0) ppf (s : Stmt.t) =
  let pad = String.make indent ' ' in
  let next = indent + 2 in
  match s with
  | For { var; min; extent; kind; body } ->
      Fmt.pf ppf "%s%s %a in [%a, %a + %a) {@\n%a@\n%s}" pad (kind_str kind) Var.pp var
        pp_expr min pp_expr min pp_expr extent (pp_stmt ~indent:next) body pad
  | Let_stmt (v, e, body) ->
      Fmt.pf ppf "%slet %a = %a;@\n%a" pad Var.pp v pp_expr e (pp_stmt ~indent) body
  | Store { buf; index; value } ->
      Fmt.pf ppf "%s%a[%a] = %a;" pad Var.pp buf pp_expr index pp_expr value
  | Reduce_store { buf; index; value; op } ->
      Fmt.pf ppf "%s%a[%a] %s %a;" pad Var.pp buf pp_expr index (reduce_str op) pp_expr value
  | If (c, a, None) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_stmt ~indent:next) a pad
  | If (c, a, Some b) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_stmt ~indent:next) a pad (pp_stmt ~indent:next) b pad
  | Seq l -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) l
  | Alloc { buf; size; body } ->
      Fmt.pf ppf "%salloc %a[%a];@\n%a" pad Var.pp buf pp_expr size (pp_stmt ~indent) body
  | Eval e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Nop -> Fmt.pf ppf "%s// nop" pad

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
