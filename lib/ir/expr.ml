(** Scalar expressions of the tensor IR.

    The expression language is deliberately small: integer and floating
    arithmetic, comparisons, selection, buffer loads, calls to math
    intrinsics, and — the key ingredient for ragged tensors — calls to
    {e uninterpreted functions} ([Ufun]).  An uninterpreted function stands
    for a quantity that is only known at kernel launch time (e.g. the
    sequence-length function [s(b)], or the fused-loop mapping arrays
    [f_fo]/[f_fi] of CoRa §5.1).  The prelude materialises each of them as a
    host-computed lookup array before the kernel runs. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** float division *)
  | FloorDiv  (** integer floor division *)
  | Mod  (** integer modulo (result has the sign of the divisor) *)
  | Min
  | Max

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of Var.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, if_true, if_false)] *)
  | Load of { buf : Var.t; index : t }
      (** Read element [index] of flat buffer [buf]. *)
  | Ufun of string * t list
      (** Call to an uninterpreted function; materialised by the prelude. *)
  | Call of string * t list  (** Math intrinsic: exp, sqrt, tanh, ... *)
  | Access of { tensor : string; indices : t list }
      (** Multi-dimensional access to a named tensor.  Eliminated by storage
          lowering (CoRa §5.2), which rewrites it into a [Load] at a computed
          flat offset. *)
  | Let of Var.t * t * t

(* Smart constructors.  They perform the cheap, always-valid foldings so that
   lowering code can combine expressions freely without drowning the IR in
   [x + 0] noise; the full rewriter lives in {!Simplify}. *)

let int n = Int n
let float f = Float f
let bool b = Bool b
let var v = Var v
let zero = Int 0
let one = Int 1

let add a b =
  match (a, b) with
  | Int 0, e | e, Int 0 -> e
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | _ -> Binop (Add, a, b)

let sub a b =
  match (a, b) with
  | e, Int 0 -> e
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | _ -> Binop (Sub, a, b)

let mul a b =
  match (a, b) with
  | Int 0, _ | _, Int 0 -> Int 0
  | Int 1, e | e, Int 1 -> e
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | _ -> Binop (Mul, a, b)

let div a b =
  match (a, b) with
  | e, Float 1.0 -> e
  | Float x, Float y -> Float (x /. y)
  | _ -> Binop (Div, a, b)

(** Euclidean-style floor division: rounds toward negative infinity, matching
    what index arithmetic needs when splitting loops. *)
let floordiv a b =
  match (a, b) with
  | e, Int 1 -> e
  | Int x, Int y when y <> 0 ->
      let q = if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y in
      Int q
  | _ -> Binop (FloorDiv, a, b)

let imod a b =
  match (a, b) with
  | _, Int 1 -> Int 0
  | Int x, Int y when y <> 0 ->
      let r = x mod y in
      Int (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | _ -> Binop (Mod, a, b)

let min_ a b =
  match (a, b) with
  | Int x, Int y -> Int (min x y)
  | _ -> if a = b then a else Binop (Min, a, b)

let max_ a b =
  match (a, b) with
  | Int x, Int y -> Int (max x y)
  | _ -> if a = b then a else Binop (Max, a, b)

let lt a b = match (a, b) with Int x, Int y -> Bool (x < y) | _ -> Cmp (Lt, a, b)
let le a b = match (a, b) with Int x, Int y -> Bool (x <= y) | _ -> Cmp (Le, a, b)
let gt a b = match (a, b) with Int x, Int y -> Bool (x > y) | _ -> Cmp (Gt, a, b)
let ge a b = match (a, b) with Int x, Int y -> Bool (x >= y) | _ -> Cmp (Ge, a, b)
let eq a b = match (a, b) with Int x, Int y -> Bool (x = y) | _ -> Cmp (Eq, a, b)
let ne a b = match (a, b) with Int x, Int y -> Bool (x <> y) | _ -> Cmp (Ne, a, b)

let and_ a b =
  match (a, b) with
  | Bool true, e | e, Bool true -> e
  | Bool false, _ | _, Bool false -> Bool false
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | Bool false, e | e, Bool false -> e
  | Bool true, _ | _, Bool true -> Bool true
  | _ -> Or (a, b)

let not_ = function Bool b -> Bool (not b) | Not e -> e | e -> Not e

let select c t f =
  match c with Bool true -> t | Bool false -> f | _ -> Select (c, t, f)

let load buf index = Load { buf; index }
let ufun name args = Ufun (name, args)
let call name args = Call (name, args)
let access tensor indices = Access { tensor; indices }

(** [pad_up e m] rounds [e] up to the next multiple of [m] — the expression
    form of CoRa's loop/storage padding (§4.1). *)
let pad_up e m =
  if m <= 1 then e
  else
    match e with
    | Int n -> Int ((n + m - 1) / m * m)
    | _ -> mul (floordiv (add e (Int (m - 1))) (Int m)) (Int m)

(** Fold [f] over every node of [e] (pre-order). *)
let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      fold f (fold f acc a) b
  | Not a -> fold f acc a
  | Select (c, a, b) -> fold f (fold f (fold f acc c) a) b
  | Load { index; _ } -> fold f acc index
  | Ufun (_, args) | Call (_, args) -> List.fold_left (fold f) acc args
  | Access { indices; _ } -> List.fold_left (fold f) acc indices
  | Let (_, v, b) -> fold f (fold f acc v) b

(** Free variables of [e].  A [Let]-bound variable is not free in its body. *)
let rec free_vars e =
  match e with
  | Int _ | Float _ | Bool _ -> Var.Set.empty
  | Var v -> Var.Set.singleton v
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      Var.Set.union (free_vars a) (free_vars b)
  | Not a -> free_vars a
  | Select (c, a, b) ->
      Var.Set.union (free_vars c) (Var.Set.union (free_vars a) (free_vars b))
  | Load { buf; index } -> Var.Set.add buf (free_vars index)
  | Ufun (_, args) | Call (_, args) ->
      List.fold_left (fun s a -> Var.Set.union s (free_vars a)) Var.Set.empty args
  | Access { indices; _ } ->
      List.fold_left (fun s a -> Var.Set.union s (free_vars a)) Var.Set.empty indices
  | Let (v, value, body) ->
      Var.Set.union (free_vars value) (Var.Set.remove v (free_vars body))

(** [uses_var v e] — does [v] occur free in [e]? *)
let uses_var v e = Var.Set.mem v (free_vars e)

(** Structural rewrite: apply [f] to each node bottom-up. *)
let rec map_bottom_up f e =
  let r = map_bottom_up f in
  let e' =
    match e with
    | Int _ | Float _ | Bool _ | Var _ -> e
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Cmp (op, a, b) -> Cmp (op, r a, r b)
    | And (a, b) -> And (r a, r b)
    | Or (a, b) -> Or (r a, r b)
    | Not a -> Not (r a)
    | Select (c, a, b) -> Select (r c, r a, r b)
    | Load { buf; index } -> Load { buf; index = r index }
    | Ufun (n, args) -> Ufun (n, List.map r args)
    | Call (n, args) -> Call (n, List.map r args)
    | Access { tensor; indices } -> Access { tensor; indices = List.map r indices }
    | Let (v, value, body) -> Let (v, r value, r body)
  in
  f e'

(** Capture-avoiding substitution is not needed here: all variables are
    globally unique by construction ({!Var.fresh}), so plain replacement is
    sound. *)
let subst map e =
  map_bottom_up
    (function Var v as e -> ( match Var.Map.find_opt v map with Some e' -> e' | None -> e) | e -> e)
    e

let subst1 v replacement e = subst (Var.Map.singleton v replacement) e

(* Infix helpers for building bodies concisely. *)
module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( % ) = imod
  let ( /^ ) = floordiv
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
  let ( = ) = eq
  let ( <> ) = ne
  let ( && ) = and_
  let ( || ) = or_
end
