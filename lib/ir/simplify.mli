(** Expression simplifier.

    Plays the role Z3 plays in the original CoRa prototype (§B.2): folds
    constants, normalises the algebra that loop splitting/fusion generates,
    proves guard conditions from interval facts, and knows the fused-loop
    identities relating [f_oif], [f_fo], [f_fi] and the shared offsets
    array. *)

(** The uninterpreted functions of one ragged loop fusion (§5.1):
    - [f_oif (f_fo f) (f_fi f) = f]
    - [f_fo (f_oif o i) = o] and [f_fi (f_oif o i) = i]
    - [off.(f_fo f) + f_fi f = f] — the fused-access collapse, valid when
      loop fusion and ragged storage share the prefix-sum array [off]. *)
type fusion_triple = {
  fo : string;
  fi : string;
  oif : string;
  off : string;
}

(** Facts available during simplification. *)
type ctx = {
  var_ranges : Interval.t Var.Map.t;
  ufun_ranges : (string * Interval.t) list;
  fusion_triples : fusion_triple list;
}

val empty_ctx : ctx
val with_var : ctx -> Var.t -> Interval.t -> ctx
val with_ufun_range : ctx -> string -> Interval.t -> ctx
val with_fusion : ctx -> fusion_triple -> ctx

(** Conservative interval of an integer expression under [ctx]. *)
val interval_of : ctx -> Expr.t -> Interval.t

(** Try to prove a comparison from intervals: [Some true]/[Some false] when
    decidable, [None] otherwise. *)
val prove_cmp : ctx -> Expr.cmpop -> Expr.t -> Expr.t -> bool option

(** Simplify to a fixpoint (bounded number of passes).  Guaranteed to
    preserve the value of the expression under any environment consistent
    with [ctx] (property-tested). *)
val simplify : ?ctx:ctx -> Expr.t -> Expr.t

(** The condition simplifies to literal [true]. *)
val provably_true : ctx -> Expr.t -> bool

(** Simplify all expressions in a statement, tracking loop-variable ranges
    on the way down so guards provable from loop bounds are elided. *)
val simplify_stmt : ?ctx:ctx -> Stmt.t -> Stmt.t
