(** Integer interval arithmetic for bounds inference.

    Bounds inference (CoRa §B.3) needs conservative ranges of index
    expressions to size buffers, prove guard conditions redundant, and decide
    when padding makes a guard unnecessary.  Intervals are closed and may be
    unbounded on either side. *)

type bound = Neg_inf | Pos_inf | Finite of int

type t = { lo : bound; hi : bound }

let make lo hi = { lo = Finite lo; hi = Finite hi }
let point n = make n n
let top = { lo = Neg_inf; hi = Pos_inf }
let nonneg = { lo = Finite 0; hi = Pos_inf }

(** [of_range min extent] — interval of a loop variable with the given
    constant min and extent (empty extent yields a degenerate interval). *)
let of_range min extent = make min (min + extent - 1)

let is_bounded i =
  match (i.lo, i.hi) with Finite _, Finite _ -> true | _ -> false

let lo_int i = match i.lo with Finite n -> Some n | _ -> None
let hi_int i = match i.hi with Finite n -> Some n | _ -> None

let bound_add a b =
  match (a, b) with
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> invalid_arg "Interval.bound_add"
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Finite x, Finite y -> Finite (x + y)

let bound_neg = function Neg_inf -> Pos_inf | Pos_inf -> Neg_inf | Finite n -> Finite (-n)

let bound_min a b =
  match (a, b) with
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, x | x, Pos_inf -> x
  | Finite x, Finite y -> Finite (min x y)

let bound_max a b =
  match (a, b) with
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, x | x, Neg_inf -> x
  | Finite x, Finite y -> Finite (max x y)

let bound_mul a b =
  match (a, b) with
  | Finite x, Finite y -> Finite (x * y)
  | (Neg_inf | Pos_inf), Finite 0 | Finite 0, (Neg_inf | Pos_inf) -> Finite 0
  | Neg_inf, Finite y | Finite y, Neg_inf -> if y > 0 then Neg_inf else Pos_inf
  | Pos_inf, Finite y | Finite y, Pos_inf -> if y > 0 then Pos_inf else Neg_inf
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> Pos_inf
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> Neg_inf

let add a b = { lo = bound_add a.lo b.lo; hi = bound_add a.hi b.hi }
let neg a = { lo = bound_neg a.hi; hi = bound_neg a.lo }
let sub a b = add a (neg b)

let mul a b =
  let candidates =
    [ bound_mul a.lo b.lo; bound_mul a.lo b.hi; bound_mul a.hi b.lo; bound_mul a.hi b.hi ]
  in
  {
    lo = List.fold_left bound_min Pos_inf candidates;
    hi = List.fold_left bound_max Neg_inf candidates;
  }

let union a b = { lo = bound_min a.lo b.lo; hi = bound_max a.hi b.hi }
let min_ a b = { lo = bound_min a.lo b.lo; hi = bound_min a.hi b.hi }
let max_ a b = { lo = bound_max a.lo b.lo; hi = bound_max a.hi b.hi }

(** Floor division by a positive constant. *)
let div_const a c =
  if c <= 0 then top
  else
    let fd n c = if n >= 0 then n / c else -(((-n) + c - 1) / c) in
    {
      lo = (match a.lo with Finite n -> Finite (fd n c) | b -> b);
      hi = (match a.hi with Finite n -> Finite (fd n c) | b -> b);
    }

(** Modulo by a positive constant: always lands in [0, c-1]; tighter if the
    interval already fits inside one period. *)
let mod_const a c =
  if c <= 0 then top
  else
    match (a.lo, a.hi) with
    | Finite lo, Finite hi
      when lo >= 0 && hi - lo < c && lo mod c <= hi mod c ->
        make (lo mod c) (hi mod c)
    | _ -> make 0 (c - 1)

(** [definitely_lt a b] — every value of [a] is < every value of [b]. *)
let definitely_lt a b =
  match (a.hi, b.lo) with Finite x, Finite y -> x < y | _ -> false

let definitely_le a b =
  match (a.hi, b.lo) with Finite x, Finite y -> x <= y | _ -> false

let definitely_ge a b =
  match (a.lo, b.hi) with Finite x, Finite y -> x >= y | _ -> false

let pp ppf i =
  let pb ppf = function
    | Neg_inf -> Fmt.string ppf "-inf"
    | Pos_inf -> Fmt.string ppf "+inf"
    | Finite n -> Fmt.int ppf n
  in
  Fmt.pf ppf "[%a, %a]" pb i.lo pb i.hi
