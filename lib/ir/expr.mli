(** Scalar expressions of the tensor IR.

    Deliberately small: integer and floating arithmetic, comparisons,
    selection, buffer loads, math intrinsics, and — the key ingredient for
    ragged tensors — calls to {e uninterpreted functions} ([Ufun]): values
    known only at kernel launch (the length function [s(b)], CoRa's [A_d]
    offset arrays, the fused-loop maps [f_fo]/[f_fi] of §5.1).  The prelude
    materialises each of them as a host-built lookup table.

    [Access] is a multi-dimensional read of a {e named} tensor; storage
    lowering ({!module:Cora.Storage}) eliminates it before execution. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** float division *)
  | FloorDiv  (** integer floor division (rounds toward -inf) *)
  | Mod  (** integer modulo (result has the sign of the divisor) *)
  | Min
  | Max

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of Var.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, if_true, if_false)] *)
  | Load of { buf : Var.t; index : t }
  | Ufun of string * t list  (** uninterpreted function call *)
  | Call of string * t list  (** math intrinsic: exp, sqrt, tanh, erf, relu *)
  | Access of { tensor : string; indices : t list }
  | Let of Var.t * t * t

(** {1 Smart constructors} — fold constants and drop identities so lowering
    code can compose expressions freely. *)

val int : int -> t
val float : float -> t
val bool : bool -> t
val var : Var.t -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** Euclidean-style floor division. *)
val floordiv : t -> t -> t

val imod : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val select : t -> t -> t -> t
val load : Var.t -> t -> t
val ufun : string -> t list -> t
val call : string -> t list -> t
val access : string -> t list -> t

(** [pad_up e m] rounds [e] up to the next multiple of [m] — the expression
    form of CoRa's loop/storage padding (§4.1).  [m <= 1] is the identity. *)
val pad_up : t -> int -> t

(** {1 Traversals} *)

(** Pre-order fold over every node. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Free variables ([Let]-bound variables excluded in their body). *)
val free_vars : t -> Var.Set.t

val uses_var : Var.t -> t -> bool

(** Structural rewrite, children first. *)
val map_bottom_up : (t -> t) -> t -> t

(** Plain simultaneous substitution (sound because variables are globally
    unique by construction). *)
val subst : t Var.Map.t -> t -> t

val subst1 : Var.t -> t -> t -> t

(** Infix operators for building expression bodies concisely. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( /^ ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( = ) : t -> t -> t
  val ( <> ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
end
