(** Statements of the tensor IR.

    A lowered CoRa operator is one [t] per kernel: a loop nest whose loops
    carry an execution "binding" ([for_kind]) that records how the loop maps
    onto the simulated hardware — serial, multicore-parallel, vectorised, or
    bound to the GPU grid (thread blocks) / GPU threads.  Loop extents are
    arbitrary expressions and may reference outer loop variables through
    uninterpreted functions: that is exactly what makes a loop a {e vloop}. *)

type for_kind =
  | Serial
  | Parallel  (** CPU multicore parallel-for *)
  | Vectorized  (** SIMD lanes; the cost model divides by the vector width *)
  | Unrolled
  | Gpu_block  (** bound to the GPU grid: one iteration = one thread block *)
  | Gpu_thread  (** bound to threads within a block *)

type t =
  | For of { var : Var.t; min : Expr.t; extent : Expr.t; kind : for_kind; body : t }
  | Let_stmt of Var.t * Expr.t * t
      (** Scalar let visible to the whole body — the vehicle for load
          hoisting (§D.7): hoisted auxiliary-structure reads become
          [Let_stmt]s outside the hot loop. *)
  | Store of { buf : Var.t; index : Expr.t; value : Expr.t }
  | Reduce_store of { buf : Var.t; index : Expr.t; value : Expr.t; op : reduce_op }
      (** [buf[index] <- buf[index] `op` value] *)
  | If of Expr.t * t * t option
  | Seq of t list
  | Alloc of { buf : Var.t; size : Expr.t; body : t }
      (** Scratch buffer local to the kernel. *)
  | Eval of Expr.t  (** Evaluate for effect (used in prelude snippets). *)
  | Nop

and reduce_op = Sum | Prod | Rmax | Rmin

let seq = function [] -> Nop | [ s ] -> s | l -> Seq l

let rec fold_exprs f acc stmt =
  match stmt with
  | For { min; extent; body; _ } -> fold_exprs f (f (f acc min) extent) body
  | Let_stmt (_, e, body) -> fold_exprs f (f acc e) body
  | Store { index; value; _ } | Reduce_store { index; value; _ } -> f (f acc index) value
  | If (c, a, b) -> (
      let acc = fold_exprs f (f acc c) a in
      match b with Some b -> fold_exprs f acc b | None -> acc)
  | Seq l -> List.fold_left (fold_exprs f) acc l
  | Alloc { size; body; _ } -> fold_exprs f (f acc size) body
  | Eval e -> f acc e
  | Nop -> acc

(** Variables free in the statement (loop variables and let-bound variables
    are not free inside their scope). *)
let rec free_vars stmt =
  match stmt with
  | For { var; min; extent; body; _ } ->
      Var.Set.union
        (Var.Set.union (Expr.free_vars min) (Expr.free_vars extent))
        (Var.Set.remove var (free_vars body))
  | Let_stmt (v, e, body) ->
      Var.Set.union (Expr.free_vars e) (Var.Set.remove v (free_vars body))
  | Store { buf; index; value } | Reduce_store { buf; index; value; _ } ->
      Var.Set.add buf (Var.Set.union (Expr.free_vars index) (Expr.free_vars value))
  | If (c, a, b) ->
      let s = Var.Set.union (Expr.free_vars c) (free_vars a) in
      (match b with Some b -> Var.Set.union s (free_vars b) | None -> s)
  | Seq l -> List.fold_left (fun s st -> Var.Set.union s (free_vars st)) Var.Set.empty l
  | Alloc { buf; size; body } ->
      Var.Set.union (Expr.free_vars size) (Var.Set.remove buf (free_vars body))
  | Eval e -> Expr.free_vars e
  | Nop -> Var.Set.empty

(** Rewrite every expression in the statement with [f] (bottom-up per
    expression, top-down over statements). *)
let rec map_exprs f stmt =
  match stmt with
  | For r -> For { r with min = f r.min; extent = f r.extent; body = map_exprs f r.body }
  | Let_stmt (v, e, body) -> Let_stmt (v, f e, map_exprs f body)
  | Store r -> Store { r with index = f r.index; value = f r.value }
  | Reduce_store r -> Reduce_store { r with index = f r.index; value = f r.value }
  | If (c, a, b) -> If (f c, map_exprs f a, Option.map (map_exprs f) b)
  | Seq l -> Seq (List.map (map_exprs f) l)
  | Alloc r -> Alloc { r with size = f r.size; body = map_exprs f r.body }
  | Eval e -> Eval (f e)
  | Nop -> Nop

(** Substitute variables by expressions throughout the statement. *)
let subst map stmt = map_exprs (Expr.subst map) stmt

(** Total IR node count (statement nodes plus every expression node) —
    the size metric the lowering passes report before/after rewrites. *)
let rec size stmt =
  let expr_nodes acc e = acc + Expr.fold (fun n _ -> n + 1) 0 e in
  match stmt with
  | For { min; extent; body; _ } -> 1 + expr_nodes 0 min + expr_nodes 0 extent + size body
  | Let_stmt (_, e, body) -> 1 + expr_nodes 0 e + size body
  | Store { index; value; _ } | Reduce_store { index; value; _ } ->
      1 + expr_nodes (expr_nodes 0 index) value
  | If (c, a, b) -> (
      let n = 1 + expr_nodes 0 c + size a in
      match b with Some b -> n + size b | None -> n)
  | Seq l -> List.fold_left (fun acc s -> acc + size s) 1 l
  | Alloc { size = sz; body; _ } -> 1 + expr_nodes 0 sz + size body
  | Eval e -> 1 + expr_nodes 0 e
  | Nop -> 1

(** Collect the names of all uninterpreted functions referenced. *)
let ufuns stmt =
  fold_exprs
    (fun acc e ->
      Expr.fold
        (fun acc -> function Expr.Ufun (n, _) -> n :: acc | _ -> acc)
        acc e)
    [] stmt
  |> List.sort_uniq String.compare
