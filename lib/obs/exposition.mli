(** OpenMetrics / Prometheus text exposition of the metrics registry. *)

(** Render every registered metric: counters as [cora_<name>_total],
    gauges as plain samples, histograms as cumulative [le] buckets (only
    non-empty buckets, plus the [+Inf] total) with exact [_sum] and
    [_count].  Ends with the OpenMetrics [# EOF] marker. *)
val to_openmetrics : unit -> string

(** Re-parse a rendered document and check scraper invariants: every
    sample belongs to a [# TYPE] family; histogram [le] bounds strictly
    increase with non-decreasing cumulative counts, end at [+Inf], and
    agree with [_count]; [_sum] present; the [# EOF] terminator closes
    the document.  Returns the number of metric families on success. *)
val validate : string -> (int, string) result

(** Set the [runtime.gc.*] gauges from [Gc.quick_stat]; called by the
    serving bench at window boundaries. *)
val sample_gc_gauges : unit -> unit

(** Set the [cache.<name>.{hits,misses,evictions,entries}] gauges for one
    memo table (values from [Cora.Cache.stats], passed as plain ints —
    this library sits below the core library). *)
val set_cache_gauges :
  name:string -> hits:int -> misses:int -> evictions:int -> entries:int -> unit
