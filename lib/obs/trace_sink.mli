(** Sink for completed spans: a bounded, mutex-protected ring exporting
    Chrome trace-event JSON and a human-readable tree.  Safe to record
    into from multiple domains; when full, the oldest event is
    overwritten and the [trace.dropped] counter is bumped, so an
    always-on trace holds O(capacity) memory under any request volume. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** OCaml domain id *)
  depth : int;  (** span-stack depth in its domain at open time *)
  req : int option;  (** request id from the {!Span} trace-context, if any *)
  attrs : (string * attr) list;
}

val now_us : unit -> float
val record : event -> unit
val clear : unit -> unit

(** Cap the ring at [n] events (clamped to >= 1; default 65536),
    keeping the newest survivors. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** Events recorded since {!clear} that no longer fit in the ring (the
    same count the [trace.dropped] metric accumulates). *)
val dropped : unit -> int

(** Surviving spans in start-time order. *)
val events : unit -> event list

(** The spans recorded under request [id]'s trace-context, in
    start-time order — one request's complete admission → stage →
    outcome chain. *)
val events_for : int -> event list

(** Request ids present in the surviving events, ascending. *)
val request_ids : unit -> int list

(** Chrome trace-event document ([chrome://tracing] / Perfetto format):
    one complete ("ph":"X") event per span, timestamps relative to the
    trace epoch, attributes under ["args"] (request ids as
    ["args"]["req"]), plus one flow ([ph:s/t/f]) chain per request
    stitching its spans across domain tracks. *)
val to_chrome : unit -> Json.t

val to_chrome_string : unit -> string

(** Indented per-domain tree of span names, durations and attributes. *)
val tree : unit -> string
