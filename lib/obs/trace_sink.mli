(** Sink for completed spans, exporting Chrome trace-event JSON and a
    human-readable tree.  Safe to record into from multiple domains. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** OCaml domain id *)
  depth : int;  (** span-stack depth in its domain at open time *)
  attrs : (string * attr) list;
}

val now_us : unit -> float
val record : event -> unit
val clear : unit -> unit

(** Completed spans in start-time order. *)
val events : unit -> event list

(** Chrome trace-event document ([chrome://tracing] / Perfetto format):
    one complete ("ph":"X") event per span, timestamps relative to the
    trace epoch, attributes under ["args"]. *)
val to_chrome : unit -> Json.t

val to_chrome_string : unit -> string

(** Indented per-domain tree of span names, durations and attributes. *)
val tree : unit -> string
