(** Rendering of the metrics registry: JSON blobs for machines (the
    bench harness's [BENCH_*.json] files, [cora_cli trace]'s metrics
    output) and an aligned text summary for humans. *)

let float_or_null f = if Float.is_finite f then Json.Float f else Json.Null

let hsummary_json (s : Metrics.hsummary) =
  Json.Obj
    [
      ("count", Json.Int s.Metrics.n);
      ("sum", float_or_null s.Metrics.sum);
      ("min", float_or_null s.Metrics.min_v);
      ("max", float_or_null s.Metrics.max_v);
      ("mean", float_or_null s.Metrics.mean);
      ("p50", float_or_null s.Metrics.p50);
      ("p90", float_or_null s.Metrics.p90);
      ("p99", float_or_null s.Metrics.p99);
    ]

(** The full registry as one JSON object, metric names as keys. *)
let metrics_json () =
  Json.Obj
    (List.map
       (fun (name, snap) ->
         match snap with
         | Metrics.Counter_v n -> (name, Json.Int n)
         | Metrics.Gauge_v n -> (name, Json.Int n)
         | Metrics.Histogram_v s -> (name, hsummary_json s))
       (Metrics.dump ()))

(** Aligned text table of every registered metric. *)
let metrics_summary () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, snap) ->
      match snap with
      | Metrics.Counter_v n -> Buffer.add_string b (Printf.sprintf "%-40s %12d\n" name n)
      | Metrics.Gauge_v n -> Buffer.add_string b (Printf.sprintf "%-40s %12d (gauge)\n" name n)
      | Metrics.Histogram_v s ->
          Buffer.add_string b
            (Printf.sprintf "%-40s n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n" name
               s.Metrics.n s.Metrics.mean s.Metrics.p50 s.Metrics.p90 s.Metrics.p99
               s.Metrics.max_v))
    (Metrics.dump ());
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
