(** Sink for completed spans.

    Spans are recorded here when they close (see {!Span}); the sink keeps
    them in a process-global, mutex-protected buffer — domains close
    spans concurrently under [exec_multicore] — and exports them either
    as Chrome trace-event JSON (load [trace.json] in [chrome://tracing]
    or Perfetto) or as a human-readable tree. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** OCaml domain id *)
  depth : int;  (** span-stack depth in its domain at open time *)
  attrs : (string * attr) list;
}

let lock = Mutex.create ()
let buffer : event list ref = ref []
let epoch : float option ref = ref None

let now_us () = Unix.gettimeofday () *. 1e6

let record ev =
  Mutex.lock lock;
  (* epoch = earliest span *start* seen; spans record on close, so the
     first recorded event (an innermost leaf) rarely has the earliest
     start *)
  (match !epoch with
  | None -> epoch := Some ev.ts_us
  | Some e -> if ev.ts_us < e then epoch := Some ev.ts_us);
  buffer := ev :: !buffer;
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  buffer := [];
  epoch := None;
  Mutex.unlock lock

(** Completed spans in start-time order.  Clock ties (sub-microsecond
    siblings) fall back to record order, which for same-domain siblings is
    close order = start order. *)
let events () =
  Mutex.lock lock;
  let evs = List.rev !buffer in
  Mutex.unlock lock;
  List.stable_sort (fun a b -> compare (a.ts_us, a.depth) (b.ts_us, b.depth)) evs

(* ---------------- Chrome trace-event export ---------------- *)

let attr_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let to_chrome () =
  let base = match !epoch with Some e -> e | None -> 0.0 in
  let evs = events () in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map
             (fun ev ->
               Json.Obj
                 [
                   ("name", Json.String ev.name);
                   ("cat", Json.String "cora");
                   ("ph", Json.String "X");
                   ("pid", Json.Int 1);
                   ("tid", Json.Int ev.tid);
                   ("ts", Json.Float (ev.ts_us -. base));
                   ("dur", Json.Float ev.dur_us);
                   ("args", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) ev.attrs));
                 ])
             evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string () = Json.to_string (to_chrome ())

(* ---------------- human-readable tree ---------------- *)

let attr_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(** Render the recorded spans as an indented tree, one block per domain.
    Spans nest properly within a domain, so start-time order plus the
    recorded depth reconstructs the hierarchy. *)
let tree () =
  let evs = events () in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  let b = Buffer.create 1024 in
  List.iter
    (fun tid ->
      if List.length tids > 1 then Buffer.add_string b (Printf.sprintf "domain %d:\n" tid);
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            Buffer.add_string b (String.make (2 * ev.depth) ' ');
            Buffer.add_string b (Printf.sprintf "%-30s %10.1f us" ev.name ev.dur_us);
            if ev.attrs <> [] then begin
              Buffer.add_string b "  [";
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_string b ", ";
                  Buffer.add_string b (Printf.sprintf "%s=%s" k (attr_to_string v)))
                ev.attrs;
              Buffer.add_char b ']'
            end;
            Buffer.add_char b '\n'
          end)
        evs)
    tids;
  Buffer.contents b
