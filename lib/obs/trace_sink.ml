(** Sink for completed spans.

    Spans are recorded here when they close (see {!Span}); the sink keeps
    them in a process-global, mutex-protected {e bounded ring} — domains
    close spans concurrently under the serving front-end, and an
    always-on trace must hold O(capacity) memory no matter how long the
    process serves.  When the ring is full the oldest event is
    overwritten (the newest spans are the ones a post-mortem wants) and
    the [trace.dropped] counter is bumped.  Export is either Chrome
    trace-event JSON (load [trace.json] in [chrome://tracing] or
    Perfetto) or a human-readable tree.

    Events carry the request id of the {!Span} trace-context that was
    active when they closed, so a concurrent trace can be filtered back
    into per-request span chains ({!events_for}); the Chrome export
    additionally emits one flow ([ph:s/t/f]) chain per request, drawing
    the admission → worker arrows across domain tracks. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** OCaml domain id *)
  depth : int;  (** span-stack depth in its domain at open time *)
  req : int option;  (** request id from the {!Span} trace-context, if any *)
  attrs : (string * attr) list;
}

let lock = Mutex.create ()
let default_capacity = 65_536
let cap = ref default_capacity
let ring : event option array ref = ref [||] (* allocated on first record *)
let head = ref 0 (* next write slot *)
let total = ref 0 (* events recorded since [clear] *)
let epoch : float option ref = ref None
let dropped_c = Metrics.counter "trace.dropped"

let now_us () = Unix.gettimeofday () *. 1e6

let record ev =
  Mutex.lock lock;
  (* epoch = earliest span *start* seen; spans record on close, so the
     first recorded event (an innermost leaf) rarely has the earliest
     start *)
  (match !epoch with
  | None -> epoch := Some ev.ts_us
  | Some e -> if ev.ts_us < e then epoch := Some ev.ts_us);
  if Array.length !ring <> !cap then begin
    (* first record, or the capacity changed while empty *)
    ring := Array.make !cap None;
    head := 0
  end;
  if !total >= !cap then Metrics.incr dropped_c;
  !ring.(!head) <- Some ev;
  head := (!head + 1) mod !cap;
  incr total;
  Mutex.unlock lock

(** Events recorded since {!clear} that no longer fit in the ring. *)
let dropped () =
  Mutex.lock lock;
  let d = max 0 (!total - !cap) in
  Mutex.unlock lock;
  d

(* Ring contents in insertion order (oldest surviving event first). *)
let contents_locked () =
  let a = !ring and n = min !total !cap in
  if n = 0 then []
  else begin
    let start = if !total <= !cap then 0 else !head in
    List.init n (fun i ->
        match a.((start + i) mod !cap) with Some e -> e | None -> assert false)
  end

let clear () =
  Mutex.lock lock;
  ring := [||];
  head := 0;
  total := 0;
  epoch := None;
  Mutex.unlock lock

(** Cap the ring at [n] events (clamped to >= 1; default 65536).  The
    newest [n] surviving events are kept. *)
let set_capacity n =
  let n = max 1 n in
  Mutex.lock lock;
  let kept = contents_locked () in
  let kept = List.filteri (fun i _ -> i >= List.length kept - n) kept in
  cap := n;
  let a = Array.make n None in
  List.iteri (fun i e -> a.(i) <- Some e) kept;
  ring := a;
  head := List.length kept mod n;
  total := List.length kept;
  Mutex.unlock lock

let capacity () = !cap

(** Surviving spans in start-time order.  Clock ties (sub-microsecond
    siblings) fall back to record order, which for same-domain siblings is
    close order = start order. *)
let events () =
  Mutex.lock lock;
  let evs = contents_locked () in
  Mutex.unlock lock;
  List.stable_sort (fun a b -> compare (a.ts_us, a.depth) (b.ts_us, b.depth)) evs

(** The spans recorded under request [id]'s trace-context, in start-time
    order — one request's complete admission → stage → outcome chain. *)
let events_for id = List.filter (fun e -> e.req = Some id) (events ())

(** Request ids present in the surviving events, ascending. *)
let request_ids () =
  List.sort_uniq compare (List.filter_map (fun e -> e.req) (events ()))

(* ---------------- Chrome trace-event export ---------------- *)

let attr_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let to_chrome () =
  let base = match !epoch with Some e -> e | None -> 0.0 in
  let evs = events () in
  let slice ev =
    let args =
      (match ev.req with Some r -> [ ("req", Json.Int r) ] | None -> [])
      @ List.map (fun (k, v) -> (k, attr_json v)) ev.attrs
    in
    Json.Obj
      [
        ("name", Json.String ev.name);
        ("cat", Json.String "cora");
        ("ph", Json.String "X");
        ("pid", Json.Int 1);
        ("tid", Json.Int ev.tid);
        ("ts", Json.Float (ev.ts_us -. base));
        ("dur", Json.Float ev.dur_us);
        ("args", Json.Obj args);
      ]
  in
  (* One flow chain per request id: start on its earliest span, step on
     the middles, finish (binding enclosing) on the latest — Chrome and
     Perfetto draw the arrows that stitch a request's spans across the
     submitting and worker domain tracks. *)
  let flows =
    List.concat_map
      (fun id ->
        let chain = List.filter (fun e -> e.req = Some id) evs in
        let last = List.length chain - 1 in
        List.mapi
          (fun i ev ->
            let ph = if i = 0 then "s" else if i = last then "f" else "t" in
            Json.Obj
              ([
                 ("name", Json.String "req");
                 ("cat", Json.String "req");
                 ("ph", Json.String ph);
                 ("id", Json.Int id);
                 ("pid", Json.Int 1);
                 ("tid", Json.Int ev.tid);
                 ("ts", Json.Float (ev.ts_us -. base));
               ]
              @ if ph = "f" then [ ("bp", Json.String "e") ] else []))
          chain)
      (request_ids ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map slice evs @ flows));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string () = Json.to_string (to_chrome ())

(* ---------------- human-readable tree ---------------- *)

let attr_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(** Render the recorded spans as an indented tree, one block per domain.
    Spans nest properly within a domain, so start-time order plus the
    recorded depth reconstructs the hierarchy. *)
let tree () =
  let evs = events () in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  let b = Buffer.create 1024 in
  List.iter
    (fun tid ->
      if List.length tids > 1 then Buffer.add_string b (Printf.sprintf "domain %d:\n" tid);
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            Buffer.add_string b (String.make (2 * ev.depth) ' ');
            Buffer.add_string b (Printf.sprintf "%-30s %10.1f us" ev.name ev.dur_us);
            let attrs =
              (match ev.req with Some r -> [ ("req", Int r) ] | None -> []) @ ev.attrs
            in
            if attrs <> [] then begin
              Buffer.add_string b "  [";
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_string b ", ";
                  Buffer.add_string b (Printf.sprintf "%s=%s" k (attr_to_string v)))
                attrs;
              Buffer.add_char b ']'
            end;
            Buffer.add_char b '\n'
          end)
        evs)
    tids;
  Buffer.contents b
