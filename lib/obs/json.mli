(** Minimal JSON values, emitter and parser for the observability layer.
    Enough for Chrome trace-event files and metrics blobs; the parser
    exists so emitted traces can be validated by round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization.  Non-finite floats become
    [null] so the output is always parseable. *)
val to_string : t -> string

(** Parse a complete JSON document. *)
val parse : string -> (t, string) result

(** Field lookup on an [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

val to_list : t -> t list option
