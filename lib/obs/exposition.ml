(** OpenMetrics / Prometheus text exposition of the metrics registry.

    [to_openmetrics ()] renders every registered metric as one text
    block: counters as [<name>_total], gauges as plain samples,
    histograms as the classic cumulative-[le] bucket series (from
    {!Metrics.cumulative_buckets}) plus exact [_sum] and [_count].
    Metric names are prefixed [cora_] and sanitised (every character
    outside [[a-zA-Z0-9_:]] becomes [_]), and the document ends with the
    OpenMetrics [# EOF] marker.

    [validate] re-parses a rendered document and checks the structural
    invariants a scraper relies on — the CI wrapper feeds the CLI's own
    output back through it, the same trick [cora trace] plays with its
    Chrome trace. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let metric_name name = "cora_" ^ sanitize name

(* [%g] is compact but only 6 significant digits; bucket bounds are
   1/16 apart so that is ample, while [_sum] keeps full precision. *)
let fmt_bound f = Printf.sprintf "%g" f
let fmt_float f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

let to_openmetrics () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  List.iter
    (fun (name, snap) ->
      let mname = metric_name name in
      match snap with
      | Metrics.Counter_v v ->
          line "# TYPE %s counter" mname;
          line "%s_total %d" mname v
      | Metrics.Gauge_v v ->
          line "# TYPE %s gauge" mname;
          line "%s %d" mname v
      | Metrics.Histogram_v s ->
          line "# TYPE %s histogram" mname;
          let buckets = Metrics.cumulative_buckets (Metrics.histogram name) in
          List.iter
            (fun (ub, cum) -> line "%s_bucket{le=\"%s\"} %d" mname (fmt_bound ub) cum)
            buckets;
          line "%s_bucket{le=\"+Inf\"} %d" mname s.Metrics.n;
          line "%s_sum %s" mname (fmt_float s.Metrics.sum);
          line "%s_count %d" mname s.Metrics.n)
    (Metrics.dump ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ---------------- validation ---------------- *)

(* Strict enough for our own output: TYPE lines introduce a family;
   histogram families must emit strictly increasing [le] bounds with
   non-decreasing cumulative counts, end on [+Inf], and agree with
   [_count]; every sample line must belong to the family in scope. *)

exception Bad of string

let validate (doc : string) : (int, string) result =
  let lines = String.split_on_char '\n' doc in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let families = ref 0 in
  (* state of the histogram family in scope *)
  let cur = ref None (* (name, kind) *) in
  let h_last_le = ref neg_infinity in
  let h_last_cum = ref 0 in
  let h_inf = ref None in
  let h_count = ref None in
  let h_sum_seen = ref false in
  let finish_family () =
    match !cur with
    | Some (name, "histogram") -> (
        if not !h_sum_seen then fail "%s: histogram without _sum" name;
        match (!h_inf, !h_count) with
        | None, _ -> fail "%s: histogram without le=\"+Inf\" bucket" name
        | _, None -> fail "%s: histogram without _count" name
        | Some i, Some c -> if i <> c then fail "%s: +Inf bucket %d <> _count %d" name i c)
    | _ -> ()
  in
  let parse_sample line =
    match String.index_opt line ' ' with
    | None -> fail "sample line without value: %S" line
    | Some i ->
        let series = String.sub line 0 i in
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        let v =
          match float_of_string_opt v with
          | Some f -> f
          | None -> fail "unparseable value %S on %S" v line
        in
        (series, v)
  in
  let check_sample name kind line =
    let series, v = parse_sample line in
    match kind with
    | "counter" ->
        if series <> name ^ "_total" then fail "%s: counter sample %s" name series;
        if v < 0.0 then fail "%s: negative counter %g" name v
    | "gauge" -> if series <> name then fail "%s: gauge sample %s" name series
    | "histogram" ->
        let bucket_prefix = name ^ "_bucket{le=\"" in
        if String.length series > String.length bucket_prefix
           && String.sub series 0 (String.length bucket_prefix) = bucket_prefix
        then begin
          let le =
            String.sub series
              (String.length bucket_prefix)
              (String.length series - String.length bucket_prefix - 2)
          in
          let cum = int_of_float v in
          if cum < !h_last_cum then
            fail "%s: cumulative bucket count fell (%d after %d)" name cum !h_last_cum;
          h_last_cum := cum;
          if le = "+Inf" then begin
            if !h_inf <> None then fail "%s: duplicate +Inf bucket" name;
            h_inf := Some cum
          end
          else begin
            if !h_inf <> None then fail "%s: bucket after +Inf" name;
            let le_v =
              match float_of_string_opt le with
              | Some f -> f
              | None -> fail "%s: unparseable le %S" name le
            in
            if le_v <= !h_last_le then
              fail "%s: le bounds not increasing (%g after %g)" name le_v !h_last_le;
            h_last_le := le_v
          end
        end
        else if series = name ^ "_sum" then h_sum_seen := true
        else if series = name ^ "_count" then h_count := Some (int_of_float v)
        else fail "%s: stray histogram sample %s" name series
    | k -> fail "%s: unknown kind %s" name k
  in
  try
    let saw_eof = ref false in
    List.iter
      (fun line ->
        if !saw_eof && line <> "" then fail "content after # EOF: %S" line
        else if line = "" then ()
        else if line = "# EOF" then saw_eof := true
        else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
          finish_family ();
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; name; kind ] ->
              cur := Some (name, kind);
              incr families;
              h_last_le := neg_infinity;
              h_last_cum := 0;
              h_inf := None;
              h_count := None;
              h_sum_seen := false
          | _ -> fail "malformed TYPE line: %S" line
        end
        else if String.length line > 0 && line.[0] = '#' then () (* HELP/comments *)
        else
          match !cur with
          | None -> fail "sample before any TYPE line: %S" line
          | Some (name, kind) -> check_sample name kind line)
      lines;
    finish_family ();
    if not !saw_eof then fail "missing # EOF terminator";
    Ok !families
  with Bad msg -> Error msg

(* ---------------- runtime gauges ---------------- *)

(** Set the [runtime.gc.*] gauges from [Gc.quick_stat] — the
    process-health half of the window-boundary sampler (queue depth,
    cache entries and arena occupancy live above [lib/obs] and are set
    by the serving layer / CLI). *)
let sample_gc_gauges () =
  let s = Gc.quick_stat () in
  Metrics.set (Metrics.gauge "runtime.gc.minor_collections") s.Gc.minor_collections;
  Metrics.set (Metrics.gauge "runtime.gc.major_collections") s.Gc.major_collections;
  Metrics.set (Metrics.gauge "runtime.gc.compactions") s.Gc.compactions;
  Metrics.set (Metrics.gauge "runtime.gc.heap_words") s.Gc.heap_words;
  Metrics.set (Metrics.gauge "runtime.gc.top_heap_words") s.Gc.top_heap_words

(** Set the [cache.<name>.*] gauges for one memo table.  The values
    arrive as plain ints ([Cora.Cache.stats] fields) because [lib/obs]
    sits below the core library; the CLI samples every registered cache
    through this at window boundaries. *)
let set_cache_gauges ~name ~hits ~misses ~evictions ~entries =
  List.iter
    (fun (suffix, v) -> Metrics.set (Metrics.gauge ("cache." ^ name ^ "." ^ suffix)) v)
    [ ("hits", hits); ("misses", misses); ("evictions", evictions); ("entries", entries) ]
