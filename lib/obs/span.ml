(** Hierarchical timed spans.

    [with_span name f] times [f] and records a {!Trace_sink.event} when
    it returns (or raises — the span is closed either way, tagged with
    an [error] attribute).  Spans nest through a per-domain stack kept
    in domain-local storage, so concurrent domains each build their own
    well-nested sub-trees.

    Tracing is off by default.  The disabled path is the no-op mode the
    hot paths rely on: a single atomic load, then a tail call into [f] —
    no closure, no record, no allocation. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type open_span = {
  name : string;
  start_us : float;
  depth : int;
  mutable extra : (string * Trace_sink.attr) list;  (** added by {!add_attr}, reversed *)
}

(* Per-domain stack of currently open spans (innermost first). *)
let stack_key : open_span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* Per-domain trace-context: the request id under which spans close.
   The front-end carries a request's id from the submitting domain into
   whichever worker domain picks it up by re-entering [with_request]
   there, so every stage span of one request is stamped with the same id
   no matter which domain ran it. *)
let req_key : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current_request () = !(Domain.DLS.get req_key)

let with_request id f =
  let r = Domain.DLS.get req_key in
  let saved = !r in
  r := Some id;
  Fun.protect ~finally:(fun () -> r := saved) f

let close sp (attrs : (string * Trace_sink.attr) list) =
  let end_us = Trace_sink.now_us () in
  Trace_sink.record
    {
      Trace_sink.name = sp.name;
      ts_us = sp.start_us;
      dur_us = end_us -. sp.start_us;
      tid = (Domain.self () :> int);
      depth = sp.depth;
      req = current_request ();
      attrs = attrs @ List.rev sp.extra;
    }

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let sp =
      { name; start_us = Trace_sink.now_us (); depth = List.length !stack; extra = [] }
    in
    stack := sp :: !stack;
    let finish tail_attrs =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      close sp (attrs @ tail_attrs)
    in
    match f () with
    | result ->
        finish [];
        result
    | exception e ->
        finish [ ("error", Trace_sink.Str (Printexc.to_string e)) ];
        raise e
  end

(** Attach an attribute to the innermost open span of the calling
    domain; silently dropped when tracing is disabled or no span is
    open, so instrumentation sites need no guards. *)
let add_attr key value =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | sp :: _ -> sp.extra <- (key, value) :: sp.extra
    | [] -> ()
