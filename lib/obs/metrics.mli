(** Process-wide metrics registry: counters, gauges and histograms.

    Counters are sharded into per-domain atomic cells, so incrementing
    one from inside [Interp.exec_multicore] is lock-free and
    allocation-free; reads sum the shards.

    Histograms are bounded log-linear bucket arrays (HDR-histogram
    style): memory is O(buckets) — a fixed ~8 KB per observing domain —
    independent of how many samples are recorded, so they can stay on
    under a sustained serving stream without leaking.  [observe] is
    lock-free (each domain writes a private shard found through
    domain-local storage); [n], [sum], [min] and [max] are exact;
    percentiles are bucket-interpolated estimates within
    {!relative_error_bound} of the exact sample at the same rank. *)

type counter
type gauge
type histogram

(** [counter name] returns the counter registered under [name],
    creating it on first use.  Raises [Invalid_argument] if [name] is
    already registered as a different kind (same for {!gauge} and
    {!histogram}). *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int
val counter_name : counter -> string

val set : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_name : gauge -> string

(** Record one sample: a handful of plain writes to the calling
    domain's private shard — no lock, no atomic, no per-sample
    storage. *)
val observe : histogram -> float -> unit

(** Exact number of recorded samples (sums the per-domain shard
    counts; no sample array is ever materialised). *)
val count : histogram -> int

(** Worst-case relative error of {!percentile} (and the [p50]/[p90]/
    [p99] fields of {!summarize}) against the exact sample at the
    nearest rank: 1/16 = 6.25%.  The estimate lies in the same
    log-linear bucket as that sample, whose width is 1/16 of its lower
    bound; clamping to the exact observed [min]/[max] makes the
    single-sample and 0th/100th-percentile cases exact. *)
val relative_error_bound : float

(** Percentile estimate in [0, 100] by bucket interpolation, within
    {!relative_error_bound} of the exact sample at the nearest rank;
    [nan] when empty. *)
val percentile : histogram -> float -> float

(** Exact percentile (linear interpolation between closest ranks) over
    a caller-supplied sample array — for percentiles over ad-hoc
    windows, and the oracle the histogram estimates are tested
    against.  Non-destructive: the input array is not modified (a copy
    is sorted, with [Float.compare]). *)
val percentile_of : float array -> float -> float

type hsummary = {
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** Merge every domain's shard: [n]/[sum]/[min_v]/[max_v]/[mean] exact,
    percentiles within {!relative_error_bound}. *)
val summarize : histogram -> hsummary

(** Non-empty buckets as (inclusive upper bound, cumulative count) in
    increasing bound order — the OpenMetrics [le] series.  The implicit
    [+Inf] bucket is not included; its cumulative count is {!count}. *)
val cumulative_buckets : histogram -> (float * int) list

val histogram_name : histogram -> string

(** Zero counters/gauges and empty histograms; handles stay valid. *)
val reset : unit -> unit

type snapshot = Counter_v of int | Gauge_v of int | Histogram_v of hsummary

(** Snapshot of every registered metric, sorted by name. *)
val dump : unit -> (string * snapshot) list
