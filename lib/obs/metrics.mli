(** Process-wide metrics registry: counters, gauges and histograms.

    Counters are sharded into per-domain atomic cells, so incrementing
    one from inside [Interp.exec_multicore] is lock-free and
    allocation-free; reads sum the shards.  Histograms keep full sample
    sets behind per-shard mutexes (they record block costs and table
    sizes, not per-scalar events). *)

type counter
type gauge
type histogram

(** [counter name] returns the counter registered under [name],
    creating it on first use.  Raises [Invalid_argument] if [name] is
    already registered as a different kind (same for {!gauge} and
    {!histogram}). *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int
val counter_name : counter -> string

val set : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
val count : histogram -> int

(** All recorded samples, in no particular order. *)
val samples : histogram -> float array

(** Percentile in [0, 100] by linear interpolation between closest
    ranks; [nan] when empty. *)
val percentile : histogram -> float -> float

(** Same computation over a caller-supplied sample array — for
    percentiles over ad-hoc windows.  Non-destructive: the input array
    is not modified (a copy is sorted, with [Float.compare]). *)
val percentile_of : float array -> float -> float

type hsummary = {
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : histogram -> hsummary
val histogram_name : histogram -> string

(** Zero counters/gauges and empty histograms; handles stay valid. *)
val reset : unit -> unit

type snapshot = Counter_v of int | Gauge_v of int | Histogram_v of hsummary

(** Snapshot of every registered metric, sorted by name. *)
val dump : unit -> (string * snapshot) list
