(** Hierarchical timed spans with key/value attributes, recorded into
    {!Trace_sink} on close.  Disabled by default; the disabled path of
    {!with_span} is one atomic load and a call into the thunk — no
    allocation on the hot path. *)

(** Turn span recording on/off process-wide (default off). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f], timing it as a span nested
    under the calling domain's innermost open span.  The span is closed
    (and recorded) even if [f] raises, tagged with an [error]
    attribute. *)
val with_span : ?attrs:(string * Trace_sink.attr) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span of the calling
    domain; a no-op when tracing is disabled or no span is open. *)
val add_attr : string -> Trace_sink.attr -> unit

(** [with_request id f] runs [f] with the calling domain's trace-context
    set to request [id]: every span closed inside [f] is stamped with
    [id] (the [req] field of its {!Trace_sink.event}), so spans from
    concurrent requests can be reassembled per request.  Contexts nest
    (the previous context is restored on exit) and are cheap enough to
    set unconditionally — two domain-local reads and a ref write —
    whether or not tracing is enabled. *)
val with_request : int -> (unit -> 'a) -> 'a

(** The calling domain's current request trace-context, if any. *)
val current_request : unit -> int option

