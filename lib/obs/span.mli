(** Hierarchical timed spans with key/value attributes, recorded into
    {!Trace_sink} on close.  Disabled by default; the disabled path of
    {!with_span} is one atomic load and a call into the thunk — no
    allocation on the hot path. *)

(** Turn span recording on/off process-wide (default off). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f], timing it as a span nested
    under the calling domain's innermost open span.  The span is closed
    (and recorded) even if [f] raises, tagged with an [error]
    attribute. *)
val with_span : ?attrs:(string * Trace_sink.attr) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span of the calling
    domain; a no-op when tracing is disabled or no span is open. *)
val add_attr : string -> Trace_sink.attr -> unit
