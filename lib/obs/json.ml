(** Minimal JSON support for the observability layer.

    The container ships no JSON library, and the traces we emit (Chrome
    trace-event files, metrics blobs) only need scalars, arrays and
    objects — so we carry a small, total emitter and a recursive-descent
    parser.  The parser exists so emitted traces can be validated by
    round-trip ([cora_cli trace] refuses to leave an unparseable
    [trace.json] behind, and the test suite re-reads what it writes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- emission ---------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN/Infinity; degrade to null rather than emit an
         unparseable file. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | String s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m st.pos))) fmt
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st "expected '%c', found '%c'" c x
  | None -> fail st "expected '%c', found end of input" c

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_string_body st =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char b '/'; go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code = try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape" in
            st.pos <- st.pos + 4;
            (* encode as UTF-8 (no surrogate-pair handling: the emitter only
               escapes control characters) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "invalid number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; List [] end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number st else fail st "unexpected character '%c'" c

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  with Parse_error m -> Error m

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
