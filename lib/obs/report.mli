(** Rendering of the metrics registry as JSON (machine-readable blobs)
    and aligned text (human summaries). *)

(** The full registry as one JSON object, metric names as keys:
    counters/gauges as integers, histograms as
    [{count,sum,min,max,mean,p50,p90,p99}]. *)
val metrics_json : unit -> Json.t

(** Aligned text table of every registered metric. *)
val metrics_summary : unit -> string

val write_file : string -> string -> unit
