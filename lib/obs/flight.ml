(** Flight recorder: a fixed-capacity ring of per-request summaries.

    Spans answer "where did this request's time go"; the flight recorder
    answers "what were the last N requests doing when things went wrong"
    without tracing enabled.  The serving front-end's worker loop writes
    one {!record} per completed request — id, workload, raggedness
    signature, queue wait, per-stage durations, outcome and cache/arena
    accounting — into a mutex-protected ring (default 256 records,
    oldest overwritten).  On an error or deadline outcome the front-end
    calls {!auto_dump}, which (when armed via {!set_auto_dump}) writes
    the surrounding ring to [<dir>/flight-<ts>-<n>.json] for
    post-mortem, throttled to at most one dump per second so a failure
    storm cannot flood the disk. *)

type record = {
  id : int;  (** front-end request id (the span trace-context id) *)
  workload : string;
  sig_hex : string;  (** {!Cora.Sig.of_tables} hash of the raggedness; "" if unknown *)
  submitted_us : float;
  queue_wait_us : float;
  stages_us : (string * float) list;  (** per-stage wall time, pipeline order *)
  outcome : string;  (** {!Serving.Frontend.outcome_label} *)
  compile_hits : int;
  compile_misses : int;
  prelude_hit : bool;
  engine_hits : int;
  engine_misses : int;
  arena_hits : int;
  arena_misses : int;
  batch_id : int;  (** mega-batch this request was served in; 0 = unbatched *)
  batch_size : int;  (** requests in that mega-batch; 1 = served alone *)
  tuner : string;  (** autotuner state ({!Serving.Server.response.tuner}); "" if unknown *)
}

let lock = Mutex.create ()
let cap = ref 256
let ring : record option array ref = ref [||]
let head = ref 0
let total = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let contents_locked () =
  let a = !ring and n = min !total !cap in
  if n = 0 then []
  else begin
    let start = if !total <= !cap then 0 else !head in
    List.init n (fun i ->
        match a.((start + i) mod !cap) with Some r -> r | None -> assert false)
  end

let record (r : record) =
  with_lock (fun () ->
      if Array.length !ring <> !cap then begin
        ring := Array.make !cap None;
        head := 0
      end;
      !ring.(!head) <- Some r;
      head := (!head + 1) mod !cap;
      incr total)

let records () = with_lock contents_locked

let clear () =
  with_lock (fun () ->
      ring := [||];
      head := 0;
      total := 0)

let set_capacity n =
  let n = max 1 n in
  with_lock (fun () ->
      let kept = contents_locked () in
      let kept = List.filteri (fun i _ -> i >= List.length kept - n) kept in
      cap := n;
      let a = Array.make n None in
      List.iteri (fun i r -> a.(i) <- Some r) kept;
      ring := a;
      head := List.length kept mod n;
      total := List.length kept)

let capacity () = !cap

(* ---------------- JSON ---------------- *)

let record_json (r : record) =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ("workload", Json.String r.workload);
      ("sig", Json.String r.sig_hex);
      ("submitted_us", Json.Float r.submitted_us);
      ("queue_wait_us", Json.Float r.queue_wait_us);
      ( "stages_us",
        Json.Obj (List.map (fun (name, us) -> (name, Json.Float us)) r.stages_us) );
      ("outcome", Json.String r.outcome);
      ("compile_hits", Json.Int r.compile_hits);
      ("compile_misses", Json.Int r.compile_misses);
      ("prelude_hit", Json.Bool r.prelude_hit);
      ("engine_hits", Json.Int r.engine_hits);
      ("engine_misses", Json.Int r.engine_misses);
      ("arena_hits", Json.Int r.arena_hits);
      ("arena_misses", Json.Int r.arena_misses);
      ("batch_id", Json.Int r.batch_id);
      ("batch_size", Json.Int r.batch_size);
      ("tuner", Json.String r.tuner);
    ]

let to_json ?(reason = "snapshot") () =
  Json.Obj
    [
      ("reason", Json.String reason);
      ("dumped_at_us", Json.Float (Unix.gettimeofday () *. 1e6));
      ("records", Json.List (List.map record_json (records ())));
    ]

(* ---------------- dumping ---------------- *)

let dump_seq = Atomic.make 0

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let dump ~dir ~reason =
  ensure_dir dir;
  let path =
    Printf.sprintf "%s/flight-%d-%d.json" dir
      (int_of_float (Unix.gettimeofday ()))
      (Atomic.fetch_and_add dump_seq 1)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json ~reason ()) ^ "\n"));
  path

let auto_dir : string option ref = ref None
let set_auto_dump dir = auto_dir := dir
let last_auto_us = Atomic.make 0 (* microseconds, fits an int *)
let min_interval_us = 1_000_000

let auto_dump ~reason =
  match !auto_dir with
  | None -> None
  | Some dir ->
      let now = int_of_float (Unix.gettimeofday () *. 1e6) in
      let last = Atomic.get last_auto_us in
      if now - last < min_interval_us
         || not (Atomic.compare_and_set last_auto_us last now)
      then None (* within the throttle window, or another domain is dumping *)
      else Some (dump ~dir ~reason)
