(** Flight recorder: a fixed-capacity, mutex-protected ring of
    per-request summaries written by the serving front-end, dumped to a
    JSON file on errors or deadline misses for post-mortem analysis. *)

type record = {
  id : int;  (** front-end request id (the span trace-context id) *)
  workload : string;
  sig_hex : string;  (** {!Cora.Sig.of_tables} hash of the raggedness; "" if unknown *)
  submitted_us : float;
  queue_wait_us : float;
  stages_us : (string * float) list;  (** per-stage wall time, pipeline order *)
  outcome : string;  (** response / overloaded / deadline_exceeded / error *)
  compile_hits : int;
  compile_misses : int;
  prelude_hit : bool;
  engine_hits : int;
  engine_misses : int;
  arena_hits : int;
  arena_misses : int;
  batch_id : int;
      (** id of the mega-batch the request was served inside (the
          batch-former's [batch.run] span attribute); 0 when the request
          was served on its own, outside any batch *)
  batch_size : int;  (** number of requests in that mega-batch; 1 = alone *)
  tuner : string;
      (** autotuner state of the request ("off" / "miss" / "tuned" /
          "hand"); "" when the request never produced a response *)
}

(** Append one record, overwriting the oldest when full. *)
val record : record -> unit

(** Surviving records, oldest first. *)
val records : unit -> record list

val clear : unit -> unit

(** Cap the ring (clamped to >= 1; default 256), keeping the newest
    survivors. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** The ring as one JSON document: [{reason, dumped_at_us, records}]. *)
val to_json : ?reason:string -> unit -> Json.t

(** Write the ring to [<dir>/flight-<unix-seconds>-<seq>.json]
    (creating [dir] if needed) and return the path. *)
val dump : dir:string -> reason:string -> string

(** Arm ([Some dir]) or disarm ([None], the default) automatic dumps:
    while armed, {!auto_dump} writes to [dir]. *)
val set_auto_dump : string option -> unit

(** Called by the front-end on an error or deadline outcome: when armed
    and outside the 1 s throttle window, {!dump} the ring and return
    the path. *)
val auto_dump : reason:string -> string option
