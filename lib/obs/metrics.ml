(** Process-wide metrics registry: counters, gauges and histograms.

    Counters are the hot-path primitive — the interpreter bumps one per
    scalar load — so they are sharded into per-domain atomic cells: an
    increment touches only the cell indexed by the calling domain's id
    (modulo the shard count), never a lock, and allocates nothing.
    Reading a counter sums the shards.  This makes the registry safe
    under [Interp.exec_multicore] without serialising the domains.

    Histograms are bounded log-linear bucket arrays (HDR-histogram
    style): each power-of-two octave is split into [sub] linear
    sub-buckets, so memory is O(buckets) — a fixed ~8 KB per observing
    domain — no matter how many samples are recorded, and percentiles
    are read by bucket interpolation with a documented relative-error
    bound of [1/sub] (see {!relative_error_bound}).  [n], [sum], [min]
    and [max] are tracked exactly alongside the buckets.

    [observe] is lock-free: every domain owns a private shard (created
    on its first observation into that histogram, found through
    domain-local storage), so recording is a handful of plain writes to
    memory no other domain ever writes — no mutex, no atomics, no
    contention.  Readers merge the shards; a merge that races an
    in-flight observation may be one sample stale, which is the usual
    snapshot semantics of a live metrics registry. *)

let shards = 16 (* power of two: counter shard index is [domain_id land (shards-1)] *)

let shard_id () = (Domain.self () :> int) land (shards - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : int Atomic.t }

(* ---------------- histogram bucket geometry ---------------- *)

(* [sub] linear sub-buckets per power-of-two octave.  A value [v] with
   [frexp v = (m, e)], [e] in [e_lo, e_hi], lands in octave [e - e_lo],
   sub-bucket [floor ((m - 0.5) * 2 * sub)].  Bucket width over bucket
   lower bound is exactly [1/sub], which is the relative-error bound of
   bucket-interpolated percentiles.  Bucket 0 catches underflow (values
   below [2^(e_lo-1)], including zero, negatives and NaN); the last
   bucket catches overflow. *)
let sub = 16
let e_lo = -16 (* smallest tracked octave: [2^-17, 2^-16) *)
let e_hi = 50 (* largest tracked octave: [2^49, 2^50) *)
let n_mid = (e_hi - e_lo + 1) * sub
let nbuckets = n_mid + 2
let lowest = Float.ldexp 1.0 (e_lo - 1)
let highest = Float.ldexp 1.0 e_hi

(** Worst-case relative error of {!percentile} against the exact sample
    at the same (nearest) rank: the estimate lies in the same bucket as
    that sample, and bucket width / bucket lower bound = [1/sub]. *)
let relative_error_bound = 1.0 /. float_of_int sub

let bucket_index x =
  if not (x >= lowest) then 0 (* underflow; also catches NaN *)
  else if x >= highest then nbuckets - 1
  else begin
    let m, e = Float.frexp x in
    let o = e - e_lo in
    let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
    let s = if s >= sub then sub - 1 else s in
    1 + (o * sub) + s
  end

(* [lo, hi) bounds of bucket [i]; the overflow bucket's [hi] is
   [infinity] (callers clamp to the exact observed max). *)
let bucket_bounds i =
  if i = 0 then (0.0, lowest)
  else if i = nbuckets - 1 then (highest, infinity)
  else begin
    let o = (i - 1) / sub and s = (i - 1) mod sub in
    let base = Float.ldexp 1.0 (e_lo + o - 1) in
    let lo = base *. (1.0 +. (float_of_int s /. float_of_int sub)) in
    let hi = base *. (1.0 +. (float_of_int (s + 1) /. float_of_int sub)) in
    (lo, hi)
  end

(* One domain's private slice of a histogram.  Single writer (the owning
   domain), so all fields are plain mutable memory: an observation is a
   few unsynchronised stores.  [acc] is a flat float array (sum, min,
   max) so updating it allocates nothing. *)
type hshard = {
  mutable n : int;
  acc : float array; (* 0: sum, 1: min, 2: max *)
  buckets : int array;
}

type histogram = {
  h_name : string;
  h_id : int; (* dense index into each domain's local shard table *)
  h_lock : Mutex.t; (* protects [hshards], the list of all domains' shards *)
  mutable hshards : hshard list;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name make classify =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "metric %s already registered with another kind" name))
      | None ->
          let v, m = make () in
          Hashtbl.add registry name m;
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; cells = Array.init shards (fun _ -> Atomic.make 0) } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; cell = Atomic.make 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let hist_ids = Atomic.make 0

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_id = Atomic.fetch_and_add hist_ids 1;
          h_lock = Mutex.create ();
          hshards = [];
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* ---------------- counters ---------------- *)

let add c n = ignore (Atomic.fetch_and_add c.cells.(shard_id ()) n)
let incr c = add c 1
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells
let counter_name c = c.c_name

(* ---------------- gauges ---------------- *)

let set g n = Atomic.set g.cell n
let gauge_value g = Atomic.get g.cell
let gauge_name g = g.g_name

(* ---------------- histograms ---------------- *)

(* Per-domain table mapping [h_id] to this domain's shard, so the hot
   path is one DLS read and one array index. *)
let dls_shards : hshard option array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let register_shard (h : histogram) (r : hshard option array ref) : hshard =
  let s = { n = 0; acc = [| 0.0; infinity; neg_infinity |]; buckets = Array.make nbuckets 0 } in
  Mutex.lock h.h_lock;
  h.hshards <- s :: h.hshards;
  Mutex.unlock h.h_lock;
  let a = !r in
  let len = Array.length a in
  if h.h_id >= len then begin
    let b = Array.make (max (h.h_id + 1) ((2 * len) + 8)) None in
    Array.blit a 0 b 0 len;
    b.(h.h_id) <- Some s;
    r := b
  end
  else a.(h.h_id) <- Some s;
  s

let my_shard (h : histogram) : hshard =
  let r = Domain.DLS.get dls_shards in
  let a = !r in
  if h.h_id < Array.length a then
    match Array.unsafe_get a h.h_id with Some s -> s | None -> register_shard h r
  else register_shard h r

let observe h x =
  let s = my_shard h in
  s.n <- s.n + 1;
  s.acc.(0) <- s.acc.(0) +. x;
  if x < s.acc.(1) then s.acc.(1) <- x;
  if x > s.acc.(2) then s.acc.(2) <- x;
  let i = bucket_index x in
  s.buckets.(i) <- s.buckets.(i) + 1

let shards_of h =
  Mutex.lock h.h_lock;
  let ss = h.hshards in
  Mutex.unlock h.h_lock;
  ss

(* O(domains), touching no sample storage — there is none. *)
let count h = List.fold_left (fun acc s -> acc + s.n) 0 (shards_of h)

(* Cross-shard merge: exact n/sum/min/max plus summed bucket counts.
   Percentile walks use the bucket total (not the [n] fields) so a
   racing reader stays internally consistent. *)
type merged = {
  m_n : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_buckets : int array;
  m_total : int;
}

let merge h : merged =
  let ss = shards_of h in
  let n = ref 0 and sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  let buckets = Array.make nbuckets 0 in
  List.iter
    (fun s ->
      n := !n + s.n;
      sum := !sum +. s.acc.(0);
      if s.acc.(1) < !mn then mn := s.acc.(1);
      if s.acc.(2) > !mx then mx := s.acc.(2);
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) s.buckets)
    ss;
  let total = Array.fold_left ( + ) 0 buckets in
  { m_n = !n; m_sum = !sum; m_min = !mn; m_max = !mx; m_buckets = buckets; m_total = total }

(* Percentile estimate from merged buckets: locate the bucket holding
   the nearest-rank sample, interpolate linearly inside it, clamp to the
   exact observed [min, max].  The true sample at that rank lies in the
   same bucket, so |estimate - sample| <= bucket width <= sample / sub:
   relative error <= {!relative_error_bound}.  Clamping makes the
   single-sample and extreme-percentile cases exact. *)
let merged_percentile (m : merged) p =
  if m.m_total = 0 then Float.nan
  else if p <= 0.0 then m.m_min (* the extremes are tracked exactly *)
  else if p >= 100.0 then m.m_max
  else begin
    let rank = p /. 100.0 *. float_of_int (m.m_total - 1) in
    let k = max 0 (min (m.m_total - 1) (int_of_float (Float.round rank))) in
    let rec go i cum =
      if i >= nbuckets then m.m_max
      else begin
        let c = m.m_buckets.(i) in
        if cum + c > k then begin
          let lo, hi = bucket_bounds i in
          let lo = max lo m.m_min and hi = min hi m.m_max in
          let frac = (float_of_int (k - cum) +. 0.5) /. float_of_int c in
          min (max (lo +. (frac *. (hi -. lo))) m.m_min) m.m_max
        end
        else go (i + 1) (cum + c)
      end
    in
    go 0 0
  end

(** Percentile of an arbitrary sample array (linear interpolation
    between closest ranks; [nan] when empty) — the exact oracle for
    callers computing percentiles over their own windows, e.g. the
    serving bench's per-window p50s.  Non-destructive: the computation
    sorts a copy (with [Float.compare], not the polymorphic [compare]),
    so [xs] is left exactly as passed — callers slicing one latency
    array into overlapping windows must not see their samples silently
    reordered. *)
let percentile_of (xs : float array) p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let xs = Array.copy xs in
    Array.sort Float.compare xs;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = max 0 (min (n - 1) (int_of_float (floor rank))) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

(** Percentile estimate by bucket interpolation, within
    {!relative_error_bound} of the exact sample at the nearest rank;
    [nan] on an empty histogram.  [p] in [0, 100]. *)
let percentile h p = merged_percentile (merge h) p

type hsummary = {
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize h =
  let m = merge h in
  if m.m_total = 0 then
    { n = 0; sum = 0.0; min_v = Float.nan; max_v = Float.nan; mean = Float.nan;
      p50 = Float.nan; p90 = Float.nan; p99 = Float.nan }
  else
    { n = m.m_n; sum = m.m_sum; min_v = m.m_min; max_v = m.m_max;
      mean = m.m_sum /. float_of_int m.m_n;
      p50 = merged_percentile m 50.0;
      p90 = merged_percentile m 90.0;
      p99 = merged_percentile m 99.0 }

(** Non-empty buckets as (inclusive upper bound, cumulative count), in
    increasing bound order — the OpenMetrics [le] series.  The implicit
    [+Inf] bucket is not included; its cumulative count is [count h]. *)
let cumulative_buckets h =
  let m = merge h in
  let out = ref [] and cum = ref 0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        cum := !cum + c;
        let _, hi = bucket_bounds i in
        if Float.is_finite hi then out := (hi, !cum) :: !out
        (* overflow bucket: folded into +Inf by the caller *)
      end)
    m.m_buckets;
  List.rev !out

let histogram_name h = h.h_name

(* ---------------- registry-wide operations ---------------- *)

(** Zero every counter, gauge and histogram; registrations (and handles,
    including each domain's cached histogram shards) stay valid.  A
    domain observing concurrently with [reset] may keep a sample that
    lands in the same instant — reset is a test/window-boundary
    operation, not a synchronisation point. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
          | Gauge g -> Atomic.set g.cell 0
          | Histogram h ->
              Mutex.lock h.h_lock;
              List.iter
                (fun (s : hshard) ->
                  s.n <- 0;
                  s.acc.(0) <- 0.0;
                  s.acc.(1) <- infinity;
                  s.acc.(2) <- neg_infinity;
                  Array.fill s.buckets 0 nbuckets 0)
                h.hshards;
              Mutex.unlock h.h_lock)
        registry)

type snapshot = Counter_v of int | Gauge_v of int | Histogram_v of hsummary

(** Consistent-enough snapshot of every registered metric, sorted by
    name.  Metrics that are identically zero/empty are kept: absence of
    traffic is itself a signal. *)
let dump () =
  let items = with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []) in
  items
  |> List.map (fun (name, m) ->
         match m with
         | Counter c -> (name, Counter_v (value c))
         | Gauge g -> (name, Gauge_v (gauge_value g))
         | Histogram h -> (name, Histogram_v (summarize h)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
