(** Process-wide metrics registry: counters, gauges and histograms.

    Counters are the hot-path primitive — the interpreter bumps one per
    scalar load — so they are sharded into per-domain atomic cells: an
    increment touches only the cell indexed by the calling domain's id
    (modulo the shard count), never a lock, and allocates nothing.
    Reading a counter sums the shards.  This makes the registry safe
    under [Interp.exec_multicore] without serialising the domains.

    Histograms record full sample sets (they are fed block costs and
    table sizes, not per-scalar events), sharded with a small mutex per
    shard; percentiles merge and sort on read. *)

let shards = 16 (* power of two: shard index is [domain_id land (shards-1)] *)

let shard_id () = (Domain.self () :> int) land (shards - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : int Atomic.t }

type hshard = { lock : Mutex.t; mutable samples : float array; mutable len : int }
type histogram = { h_name : string; hshards : hshard array }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name make classify =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "metric %s already registered with another kind" name))
      | None ->
          let v, m = make () in
          Hashtbl.add registry name m;
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; cells = Array.init shards (fun _ -> Atomic.make 0) } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; cell = Atomic.make 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          hshards =
            Array.init shards (fun _ -> { lock = Mutex.create (); samples = [||]; len = 0 });
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* ---------------- counters ---------------- *)

let add c n = ignore (Atomic.fetch_and_add c.cells.(shard_id ()) n)
let incr c = add c 1
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells
let counter_name c = c.c_name

(* ---------------- gauges ---------------- *)

let set g n = Atomic.set g.cell n
let gauge_value g = Atomic.get g.cell
let gauge_name g = g.g_name

(* ---------------- histograms ---------------- *)

let observe h x =
  let s = h.hshards.(shard_id ()) in
  Mutex.lock s.lock;
  if s.len = Array.length s.samples then begin
    let cap = max 64 (2 * s.len) in
    let grown = Array.make cap 0.0 in
    Array.blit s.samples 0 grown 0 s.len;
    s.samples <- grown
  end;
  s.samples.(s.len) <- x;
  s.len <- s.len + 1;
  Mutex.unlock s.lock

let samples h =
  let parts =
    Array.map
      (fun s ->
        Mutex.lock s.lock;
        let a = Array.sub s.samples 0 s.len in
        Mutex.unlock s.lock;
        a)
      h.hshards
  in
  Array.concat (Array.to_list parts)

let count h = Array.length (samples h)

(** Percentile of an arbitrary sample array (same linear interpolation
    between closest ranks as histogram percentiles; [nan] when empty) —
    for callers computing percentiles over their own windows, e.g. the
    serving bench's per-window p50s.  Non-destructive: the computation
    sorts a copy (with [Float.compare], not the polymorphic [compare]),
    so [xs] is left exactly as passed — callers slicing one latency
    array into overlapping windows must not see their samples silently
    reordered. *)
let percentile_of (xs : float array) p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let xs = Array.copy xs in
    Array.sort Float.compare xs;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = max 0 (min (n - 1) (int_of_float (floor rank))) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

(** Percentile by linear interpolation between closest ranks; [nan] on an
    empty histogram.  [p] in [0, 100]. *)
let percentile h p = percentile_of (samples h) p

type hsummary = {
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize h =
  let xs = samples h in
  let n = Array.length xs in
  if n = 0 then
    { n = 0; sum = 0.0; min_v = Float.nan; max_v = Float.nan; mean = Float.nan;
      p50 = Float.nan; p90 = Float.nan; p99 = Float.nan }
  else begin
    Array.sort Float.compare xs;
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let pct p =
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = max 0 (min (n - 1) (int_of_float (floor rank))) in
      let hi = min (n - 1) (lo + 1) in
      xs.(lo) +. ((rank -. float_of_int lo) *. (xs.(hi) -. xs.(lo)))
    in
    { n; sum; min_v = xs.(0); max_v = xs.(n - 1); mean = sum /. float_of_int n;
      p50 = pct 50.0; p90 = pct 90.0; p99 = pct 99.0 }
  end

let histogram_name h = h.h_name

(* ---------------- registry-wide operations ---------------- *)

(** Zero every counter and gauge and drop every histogram's samples;
    registrations (and handles) stay valid. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
          | Gauge g -> Atomic.set g.cell 0
          | Histogram h ->
              Array.iter
                (fun s ->
                  Mutex.lock s.lock;
                  s.len <- 0;
                  s.samples <- [||];
                  Mutex.unlock s.lock)
                h.hshards)
        registry)

type snapshot = Counter_v of int | Gauge_v of int | Histogram_v of hsummary

(** Consistent-enough snapshot of every registered metric, sorted by
    name.  Metrics that are identically zero/empty are kept: absence of
    traffic is itself a signal. *)
let dump () =
  let items = with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []) in
  items
  |> List.map (fun (name, m) ->
         match m with
         | Counter c -> (name, Counter_v (value c))
         | Gauge g -> (name, Gauge_v (gauge_value g))
         | Histogram h -> (name, Histogram_v (summarize h)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
