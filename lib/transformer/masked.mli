(** Masked scaled dot-product attention (§7.2, §D.3, Figs. 17–18): the
    decoder's SDPA where row [r] attends only to columns [c <= r].

    [No_pad] stores the attention matrix {e triangularly} — nested
    raggedness (rows ragged in the batch, columns ragged in the row) — and
    computes only the triangle; [Pad] keeps square per-sequence storage and
    computes full rows with the mask applied.  PyTorch's fully padded
    variant lives in {!Baselines.Frameworks.pytorch_masked_sdpa}. *)

type variant = No_pad | Pad

val seq : Cora.Lenfun.t
val tri : Cora.Lenfun.t

(** The config's environment extended with the triangle function. *)
val lenv : Config.t -> Cora.Lenfun.env

type t = {
  cfg : Config.t;
  qkv : Cora.Tensor.t;
  scores : Cora.Tensor.t;
  probs : Cora.Tensor.t;
  attn : Cora.Tensor.t;
  kernels : Cora.Lower.kernel list;
}

(** Triangular (nested-ragged) / square attention-matrix declarations. *)
val tri_matrix : Config.t -> string -> Cora.Tensor.t

val square_matrix : Config.t -> string -> Cora.Tensor.t
val build : ?hoist:bool -> variant:variant -> Config.t -> t
val time : device:Machine.Device.t -> t -> float
