open Cora
module E = Ir.Expr

(** Hand-assembled kernels for the operators whose natural form is a small
    multi-pass program rather than a single [compute] — softmax and layer
    normalisation.  They use the same storage lowering as scheduled
    operators, so their ragged accesses and prelude requirements are
    identical to compiler-generated code; CoRa's prototype similarly treats
    these as individually optimised operators (§C). *)

type target = Gpu | Cpu

let block_kind = function Gpu -> Ir.Stmt.Gpu_block | Cpu -> Ir.Stmt.Parallel
let thread_kind = function Gpu -> Ir.Stmt.Gpu_thread | Cpu -> Ir.Stmt.Serial

(** Softmax over the last (ragged) dimension of the attention scores
    [X\[B\]\[r\]\[H\]\[c\]], fused with the padding-change operators of Fig. 3:
    the real columns are normalised over the {e true} sequence length, and
    the partially padded columns are written as exact zeros so that the
    downstream AttnV reduction can run over the padded extent without bound
    checks.  [col_extent] lets masked attention restrict the reduction to
    the lower triangle (§D.3). *)
let softmax ~(cfg : Config.t) ~(scores : Tensor.t) ~(probs : Tensor.t) ~(target : target)
    ?(eff = 0.7) ?(hoist = true) ?(rows_fn = "seq") ?col_extent ~name () : Lower.kernel =
  let b = Ir.Var.fresh "b"
  and hh = Ir.Var.fresh "hh"
  and r = Ir.Var.fresh "r"
  and c0 = Ir.Var.fresh "c0"
  and c1 = Ir.Var.fresh "c1"
  and c2 = Ir.Var.fresh "c2"
  and c3 = Ir.Var.fresh "c3" in
  let seqb = E.ufun rows_fn [ E.var b ] in
  (* columns each row attends to: the full row length by default, a
     triangle-limited one for masked attention, or a different length
     function entirely for cross-attention *)
  let cols =
    match col_extent with
    | None -> seqb
    | Some f -> f ~row:(E.var r) ~seq:seqb ~batch:(E.var b)
  in
  let cols_padded = E.pad_up cols cfg.Config.seq_pad in
  let aux = ref [] in
  let add_aux defs =
    List.iter
      (fun (d : Prelude.def) ->
        if not (List.exists (fun x -> x.Prelude.name = d.Prelude.name) !aux) then
          aux := !aux @ [ d ])
      defs
  in
  let x_at cv =
    let off, defs = Storage.lower scores [ E.var b; E.var r; E.var hh; E.var cv ] in
    add_aux defs;
    E.load scores.Tensor.buf off
  in
  let p_off =
    let off, defs = Storage.lower probs [ E.var b; E.var r; E.var hh; E.var c3 ] in
    add_aux defs;
    off
  in
  let m = Ir.Var.fresh "rowmax" and d = Ir.Var.fresh "denom" in
  (* the row is staged into shared-memory scratch once, so the three passes
     below read it at register speed (one global read + one write per
     element) *)
  let row = Ir.Var.fresh "rowbuf" in
  let row_at cv = E.load row (E.var cv) in
  let body =
    Ir.Stmt.Alloc
      {
        buf = row;
        size = cols_padded;
        body =
          Ir.Stmt.Alloc
            {
              buf = m;
              size = E.one;
              body =
                Ir.Stmt.Alloc
                  {
                    buf = d;
                    size = E.one;
                    body =
                      Ir.Stmt.seq
                        [
                          Ir.Stmt.For
                            {
                              var = c0;
                              min = E.zero;
                              extent = cols;
                              kind = Serial;
                              body =
                                Ir.Stmt.Store { buf = row; index = E.var c0; value = x_at c0 };
                            };
                          Ir.Stmt.Store
                            { buf = m; index = E.zero; value = E.float neg_infinity };
                          Ir.Stmt.For
                            {
                              var = c1;
                              min = E.zero;
                              extent = cols;
                              kind = Serial;
                              body =
                                Ir.Stmt.Reduce_store
                                  { buf = m; index = E.zero; value = row_at c1; op = Rmax };
                            };
                          Ir.Stmt.Store { buf = d; index = E.zero; value = E.float 0.0 };
                          Ir.Stmt.For
                            {
                              var = c2;
                              min = E.zero;
                              extent = cols;
                              kind = Serial;
                              body =
                                Ir.Stmt.Reduce_store
                                  {
                                    buf = d;
                                    index = E.zero;
                                    value =
                                      E.call "exp" [ E.sub (row_at c2) (E.load m E.zero) ];
                                    op = Sum;
                                  };
                            };
                          Ir.Stmt.For
                            {
                              var = c3;
                              min = E.zero;
                              extent = cols_padded;
                              kind = Serial;
                              body =
                                Ir.Stmt.Store
                                  {
                                    buf = probs.Tensor.buf;
                                    index = p_off;
                                    value =
                                      E.select (E.lt (E.var c3) cols)
                                        (E.div
                                           (E.call "exp"
                                              [ E.sub (row_at c3) (E.load m E.zero) ])
                                           (E.load d E.zero))
                                        (E.float 0.0);
                                  };
                            };
                        ];
                  };
            };
      }
  in
  let guarded = Ir.Stmt.If (E.lt (E.var r) seqb, body, None) in
  let nest =
    Ir.Stmt.For
      {
        var = b;
        min = E.zero;
        extent = E.int cfg.Config.batch;
        kind = block_kind target;
        body =
          Ir.Stmt.For
            {
              var = hh;
              min = E.zero;
              extent = E.int cfg.Config.heads;
              kind = (match target with Gpu -> Ir.Stmt.Gpu_block | Cpu -> Ir.Stmt.Serial);
              body =
                Ir.Stmt.For
                  {
                    var = r;
                    min = E.zero;
                    extent = E.pad_up seqb cfg.Config.seq_pad;
                    kind = thread_kind target;
                    body = guarded;
                  };
            };
      }
  in
  let nest = if hoist then Hoist.hoist nest else nest in
  {
    Lower.kname = name;
    body = nest;
    aux = !aux;
    triples = [];
    eff;
    remap = Schedule.No_remap;
    bound = Schedule.Memory_bound;
    out = probs;
    reads = [ scores ];
  }

(** Layer normalisation over hidden vectors, operating directly on the
    bulk-padded fused token layout ([F_pad] rows of [hidden] floats).  The
    bulk-padding rows compute garbage in place, which is exactly CoRa's
    elided-guard behaviour for fused loops. *)
let layernorm ~(cfg : Config.t) ~(x : Tensor.t) ~(y : Tensor.t) ~(target : target)
    ?(eff = 0.72) ~name () : Lower.kernel =
  let h = cfg.Config.hidden in
  let fo = Ir.Var.fresh "fo" and fi = Ir.Var.fresh "fi" in
  let j1 = Ir.Var.fresh "j1" and j2 = Ir.Var.fresh "j2" and j3 = Ir.Var.fresh "j3" in
  let f = E.add (E.mul (E.var fo) (E.int cfg.Config.bulk)) (E.var fi) in
  let x_at jv = E.load x.Tensor.buf (E.add (E.mul f (E.int h)) (E.var jv)) in
  let total_name = "ftot_seq_p1" in
  let aux =
    [
      {
        (Prelude.fused_total_def ~name:total_name ~fn_name:"seq" ~count:cfg.Config.batch ~pad:1
           ~bulk:cfg.Config.bulk)
        with
        kind = Prelude.Loop_fusion;
      };
    ]
  in
  let mean = Ir.Var.fresh "mean" and var = Ir.Var.fresh "var" in
  let inv_h = 1.0 /. float_of_int h in
  let row = Ir.Var.fresh "rowbuf" in
  let j0 = Ir.Var.fresh "j0" in
  let row_at jv = E.load row (E.var jv) in
  let body =
    Ir.Stmt.Alloc
      {
        buf = mean;
        size = E.one;
        body =
          Ir.Stmt.Alloc
            {
              buf = var;
              size = E.one;
              body =
                Ir.Stmt.seq
                  [
                    Ir.Stmt.For
                      {
                        var = j0;
                        min = E.zero;
                        extent = E.int h;
                        kind = Serial;
                        body = Ir.Stmt.Store { buf = row; index = E.var j0; value = x_at j0 };
                      };
                    Ir.Stmt.Store { buf = mean; index = E.zero; value = E.float 0.0 };
                    Ir.Stmt.For
                      {
                        var = j1;
                        min = E.zero;
                        extent = E.int h;
                        kind = Serial;
                        body =
                          Ir.Stmt.Reduce_store
                            { buf = mean; index = E.zero; value = row_at j1; op = Sum };
                      };
                    Ir.Stmt.Store { buf = var; index = E.zero; value = E.float 0.0 };
                    Ir.Stmt.For
                      {
                        var = j2;
                        min = E.zero;
                        extent = E.int h;
                        kind = Serial;
                        body =
                          (let centred =
                             E.sub (row_at j2) (E.mul (E.load mean E.zero) (E.float inv_h))
                           in
                           Ir.Stmt.Reduce_store
                             { buf = var; index = E.zero; value = E.mul centred centred; op = Sum });
                      };
                    Ir.Stmt.For
                      {
                        var = j3;
                        min = E.zero;
                        extent = E.int h;
                        kind = Serial;
                        body =
                          Ir.Stmt.Store
                            {
                              buf = y.Tensor.buf;
                              index = E.add (E.mul f (E.int h)) (E.var j3);
                              value =
                                E.div
                                  (E.sub (row_at j3) (E.mul (E.load mean E.zero) (E.float inv_h)))
                                  (E.call "sqrt"
                                     [
                                       E.add
                                         (E.mul (E.load var E.zero) (E.float inv_h))
                                         (E.float 1e-5);
                                     ]);
                            };
                      };
                  ];
            };
      }
  in
  let body = Ir.Stmt.Alloc { buf = row; size = E.int h; body } in
  let nest =
    Ir.Stmt.For
      {
        var = fo;
        min = E.zero;
        extent = E.floordiv (E.ufun total_name []) (E.int cfg.Config.bulk);
        kind = block_kind target;
        body =
          Ir.Stmt.For
            { var = fi; min = E.zero; extent = E.int cfg.Config.bulk; kind = thread_kind target; body };
      }
  in
  {
    Lower.kname = name;
    body = nest;
    aux;
    triples = [];
    eff;
    remap = Schedule.No_remap;
    bound = Schedule.Memory_bound;
    out = y;
    reads = [ x ];
  }
