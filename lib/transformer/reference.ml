(** Straight-line dense reference implementation of the encoder layer.

    Computes each sequence independently at its true length with plain
    OCaml float arrays — no padding, no compiler.  The test suite checks
    the CoRa-compiled kernels (under every schedule) against this. *)

type weights = {
  wqkv : float array;  (** [3h][h] row-major *)
  bqkv : float array;
  w2 : float array;  (** [h][h] *)
  b2 : float array;
  wf1 : float array;  (** [ff][h] *)
  bf1 : float array;
  wf2 : float array;  (** [h][ff] *)
  bf2 : float array;
}

let gelu x = 0.5 *. x *. (1.0 +. tanh (0.7978845608 *. (x +. (0.044715 *. x *. x *. x))))

(** [mha cfg w x] — multi-head attention + output projection + residual for
    one sequence; [x] is [len][h] row-major.  Returns [len][h]. *)
let mha (cfg : Config.t) (w : weights) (x : float array) ~len : float array =
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let qkv = Array.make (len * 3 * h) 0.0 in
  for l = 0 to len - 1 do
    for j = 0 to (3 * h) - 1 do
      let acc = ref w.bqkv.(j) in
      for k = 0 to h - 1 do
        acc := !acc +. (x.((l * h) + k) *. w.wqkv.((j * h) + k))
      done;
      qkv.((l * 3 * h) + j) <- !acc
    done
  done;
  let attn = Array.make (len * h) 0.0 in
  let scale = 1.0 /. sqrt (float_of_int dh) in
  for hh = 0 to nh - 1 do
    for r = 0 to len - 1 do
      (* scores for row r, head hh *)
      let scores = Array.make len 0.0 in
      for c = 0 to len - 1 do
        let acc = ref 0.0 in
        for k = 0 to dh - 1 do
          acc :=
            !acc
            +. qkv.((r * 3 * h) + (hh * dh) + k)
               *. qkv.((c * 3 * h) + h + (hh * dh) + k)
        done;
        scores.(c) <- !acc *. scale
      done;
      let m = Array.fold_left Float.max neg_infinity scores in
      let d = Array.fold_left (fun acc s -> acc +. exp (s -. m)) 0.0 scores in
      for j = 0 to dh - 1 do
        let acc = ref 0.0 in
        for c = 0 to len - 1 do
          acc := !acc +. (exp (scores.(c) -. m) /. d *. qkv.((c * 3 * h) + (2 * h) + (hh * dh) + j))
        done;
        attn.((r * h) + (hh * dh) + j) <- !acc
      done
    done
  done;
  (* output projection + bias + residual *)
  let out = Array.make (len * h) 0.0 in
  for l = 0 to len - 1 do
    for j = 0 to h - 1 do
      let acc = ref (x.((l * h) + j) +. w.b2.(j)) in
      for k = 0 to h - 1 do
        acc := !acc +. (attn.((l * h) + k) *. w.w2.((j * h) + k))
      done;
      out.((l * h) + j) <- !acc
    done
  done;
  out

let layernorm (cfg : Config.t) (x : float array) ~len : float array =
  let h = cfg.Config.hidden in
  let y = Array.make (len * h) 0.0 in
  for l = 0 to len - 1 do
    let mean = ref 0.0 in
    for j = 0 to h - 1 do
      mean := !mean +. x.((l * h) + j)
    done;
    let mean = !mean /. float_of_int h in
    let var = ref 0.0 in
    for j = 0 to h - 1 do
      let c = x.((l * h) + j) -. mean in
      var := !var +. (c *. c)
    done;
    let var = !var /. float_of_int h in
    for j = 0 to h - 1 do
      y.((l * h) + j) <- (x.((l * h) + j) -. mean) /. sqrt (var +. 1e-5)
    done
  done;
  y

let feed_forward (cfg : Config.t) (w : weights) (x : float array) ~len : float array =
  let h = cfg.Config.hidden and ff = cfg.Config.ff in
  let f1 = Array.make (len * ff) 0.0 in
  for l = 0 to len - 1 do
    for j = 0 to ff - 1 do
      let acc = ref w.bf1.(j) in
      for k = 0 to h - 1 do
        acc := !acc +. (x.((l * h) + k) *. w.wf1.((j * h) + k))
      done;
      f1.((l * ff) + j) <- gelu !acc
    done
  done;
  let out = Array.make (len * h) 0.0 in
  for l = 0 to len - 1 do
    for j = 0 to h - 1 do
      let acc = ref (x.((l * h) + j) +. w.bf2.(j)) in
      for k = 0 to ff - 1 do
        acc := !acc +. (f1.((l * ff) + k) *. w.wf2.((j * ff) + k))
      done;
      out.((l * h) + j) <- !acc
    done
  done;
  out

(** Full encoder layer for one sequence. *)
let encoder cfg w x ~len =
  let a = mha cfg w x ~len in
  let a = layernorm cfg a ~len in
  let b = feed_forward cfg w a ~len in
  layernorm cfg b ~len

(** Deterministic pseudo-random weights (small magnitudes keep softmax and
    layernorm numerically tame). *)
let random_weights (cfg : Config.t) ~seed : weights =
  let rng = Workloads.Rng.create seed in
  let mk n scale = Array.init n (fun _ -> (Workloads.Rng.float rng -. 0.5) *. scale) in
  let h = cfg.Config.hidden and ff = cfg.Config.ff in
  {
    wqkv = mk (3 * h * h) (1.0 /. sqrt (float_of_int h));
    bqkv = mk (3 * h) 0.1;
    w2 = mk (h * h) (1.0 /. sqrt (float_of_int h));
    b2 = mk h 0.1;
    wf1 = mk (ff * h) (1.0 /. sqrt (float_of_int h));
    bf1 = mk ff 0.1;
    wf2 = mk (h * ff) (1.0 /. sqrt (float_of_int ff));
    bf2 = mk h 0.1;
  }
