open Cora
module E = Ir.Expr

(** CoRa implementation of the transformer encoder layer (Fig. 3, right).

    Nine kernels, matching the paper's fusion structure:
    QKVProj · (AddPad+)QK^T · (ChangePad+)Softmax(+ChangePad) · AttnV ·
    (RemovePad+)Proj2(+Bias+Residual) · LayerNorm · FF1(+Bias+Gelu) ·
    FF2(+Bias+Residual) · LayerNorm.

    All linear operators run over the fused, bulk-padded token loop (§5.1,
    §7.2); the SDPA operators use partial padding to [seq_pad] with the
    AddPad/RemovePad operators fused in as predicated loads/guarded
    stores. *)

type target = Gpu | Cpu

let custom_target = function Gpu -> Custom.Gpu | Cpu -> Custom.Cpu

(** Per-kernel efficiency factors: how close each class of generated code
    gets to the device's peak, per backend.  GPU numbers are calibrated so
    the simulated encoder matches the magnitude and ordering of Table 4;
    the CPU numbers model OpenBLAS-tile offload for the projections (§D.8)
    and plainer compiled code elsewhere. *)
type effs = {
  gemm : float;
  sdpa : float;
  softmax : float;
  norm : float;
  elementwise : float;
}

let gpu_effs = { gemm = 0.88; sdpa = 0.75; softmax = 0.72; norm = 0.72; elementwise = 0.7 }
let cpu_effs = { gemm = 0.76; sdpa = 0.59; softmax = 0.6; norm = 0.6; elementwise = 0.5 }

let effs_of = function Gpu -> gpu_effs | Cpu -> cpu_effs

type tensors = {
  in_t : Tensor.t;  (** input hidden states [B][s][h] *)
  wqkv : Tensor.t;
  bqkv : Tensor.t;
  qkv : Tensor.t;  (** fused QKV projection output [B][s][3h] *)
  scores : Tensor.t;  (** attention scores [B][s~32][H][s~32] *)
  probs : Tensor.t;  (** softmax output, same layout *)
  attn : Tensor.t;  (** attention output [B][s][H][dh] *)
  w2 : Tensor.t;
  b2 : Tensor.t;
  p2 : Tensor.t;  (** projection + residual [B][s][h] *)
  ln1 : Tensor.t;
  wf1 : Tensor.t;
  bf1 : Tensor.t;
  f1 : Tensor.t;  (** FF inner activations [B][s][ff] *)
  wf2 : Tensor.t;
  bf2 : Tensor.t;
  out : Tensor.t;  (** layer output [B][s][h] *)
}

let seq = Lenfun.make "seq"

(** A bulk-padded ragged "token" tensor [B][s(b)][inner...]. *)
let token_tensor (cfg : Config.t) name inner_extents =
  let bd = Dim.make "batch" and ld = Dim.make "len" in
  let inner_dims = List.map (fun _ -> Dim.make "c") inner_extents in
  let t =
    Tensor.create ~name ~dims:(bd :: ld :: inner_dims)
      ~extents:(Shape.fixed cfg.Config.batch :: Shape.ragged ~dep:bd ~fn:seq :: inner_extents)
  in
  Tensor.set_bulk_pad t cfg.Config.bulk;
  t

let dense_tensor name extents =
  let dims = List.map (fun _ -> Dim.make "d") extents in
  Tensor.create ~name ~dims ~extents:(List.map Shape.fixed extents)

let make_tensors (cfg : Config.t) : tensors =
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let ff = cfg.Config.ff in
  (* attention scores/probs: [B][row][H][col], rows and cols padded to the
     partial-padding multiple *)
  let attn_matrix name =
    let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
    let t =
      Tensor.create ~name
        ~dims:[ bd; rd; hd; cd ]
        ~extents:
          [
            Shape.fixed cfg.Config.batch;
            Shape.ragged ~dep:bd ~fn:seq;
            Shape.fixed nh;
            Shape.ragged ~dep:bd ~fn:seq;
          ]
    in
    Tensor.pad_dimension t rd cfg.Config.seq_pad;
    Tensor.pad_dimension t cd cfg.Config.seq_pad;
    t
  in
  {
    in_t = token_tensor cfg "IN" [ Shape.fixed h ];
    wqkv = dense_tensor "WQKV" [ 3 * h; h ];
    bqkv = dense_tensor "BQKV" [ 3 * h ];
    qkv = token_tensor cfg "QKV" [ Shape.fixed (3 * h) ];
    scores = attn_matrix "X";
    probs = attn_matrix "XS";
    attn = token_tensor cfg "AO" [ Shape.fixed nh; Shape.fixed dh ];
    w2 = dense_tensor "W2" [ h; h ];
    b2 = dense_tensor "B2" [ h ];
    p2 = token_tensor cfg "P2" [ Shape.fixed h ];
    ln1 = token_tensor cfg "LN1" [ Shape.fixed h ];
    wf1 = dense_tensor "WF1" [ ff; h ];
    bf1 = dense_tensor "BF1" [ ff ];
    f1 = token_tensor cfg "F1" [ Shape.fixed ff ];
    wf2 = dense_tensor "WF2" [ h; ff ];
    bf2 = dense_tensor "BF2" [ h ];
    out = token_tensor cfg "OUT" [ Shape.fixed h ];
  }

let all_tensors t =
  [
    t.in_t; t.wqkv; t.bqkv; t.qkv; t.scores; t.probs; t.attn; t.w2; t.b2; t.p2; t.ln1;
    t.wf1; t.bf1; t.f1; t.wf2; t.bf2; t.out;
  ]

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)

(** Schedule a fused-token gemm ([out\[b,l,j\] = Σ_k ...]): fuse (batch, len)
    with bulk padding, tile the fused loop by [ftile] (default [bulk]) and
    the output feature dim by [jtile].  [ftile] must divide [bulk] so the
    tiled fused loop covers exactly the bulk-padded token range. *)
let gemm_schedule ?ftile (cfg : Config.t) ~target ~eff ~jtile op =
  let ftile = match ftile with Some t -> t | None -> cfg.Config.bulk in
  let s = Schedule.create op in
  Schedule.set_guard_mode s Schedule.Elide;
  Schedule.set_eff s eff;
  let f = Schedule.fuse s (Schedule.axis_of_dim s 0) (Schedule.axis_of_dim s 1) in
  Schedule.pad_loop s f cfg.Config.bulk;
  let fo, fi = Schedule.split s f ftile in
  let jo, ji = Schedule.split s (Schedule.axis_of_dim s 2) jtile in
  let k = Schedule.axis_of_rdim s 0 in
  Schedule.reorder s [ fo; jo; fi; ji; k ];
  (match target with
  | Gpu ->
      Schedule.bind_block s fo;
      Schedule.bind_block s jo;
      Schedule.bind_thread s fi;
      Schedule.bind_thread s ji
  | Cpu ->
      Schedule.parallelize s fo;
      Schedule.vectorize s ji);
  s

let gelu x =
  E.mul (E.mul (E.float 0.5) x)
    (E.add (E.float 1.0)
       (E.call "tanh"
          [
            E.mul (E.float 0.7978845608)
              (E.add x (E.mul (E.float 0.044715) (E.mul x (E.mul x x))));
          ]))

(** The full set of compiled kernels of one encoder layer, in execution
    order, plus handles needed by benchmarks. *)
type built = {
  cfg : Config.t;
  tensors : tensors;
  lenv : Lenfun.env;
  qkv_proj : Lower.kernel;
  qkt : Lower.kernel;
  softmax : Lower.kernel;
  attnv : Lower.kernel;
  proj2 : Lower.kernel;
  norm1 : Lower.kernel;
  ff1 : Lower.kernel;
  ff2 : Lower.kernel;
  norm2 : Lower.kernel;
}

let kernels b =
  [ b.qkv_proj; b.qkt; b.softmax; b.attnv; b.proj2; b.norm1; b.ff1; b.ff2; b.norm2 ]

let mha_kernels b = [ b.qkv_proj; b.qkt; b.softmax; b.attnv; b.proj2 ]

let launches b = List.map Machine.Launch.single (kernels b)
let mha_launches b = List.map Machine.Launch.single (mha_kernels b)

(* Feature-dimension tile: large models tile by 128, tiny test models by 8. *)
let jtile_for cfg = if cfg.Config.hidden >= 128 then 128 else 8

let build ?(hoist = true) ?jtile ?ftile ~(target : target) (cfg : Config.t) : built =
  let t = make_tensors cfg in
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let ff = cfg.Config.ff in
  let effs = effs_of target in
  let jtile = match jtile with Some j -> j | None -> jtile_for cfg in
  let nth = List.nth in

  (* --- 1. QKV projection: qkv[b,l,j] = bqkv[j] + Σ_k in[b,l,k]·wqkv[j,k] --- *)
  let op_qkv =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKVProj" ~out:t.qkv
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.qkv.Tensor.dims 0) ~fn:seq;
          Shape.fixed (3 * h);
        ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun idx -> Op.access t.bqkv [ nth idx 2 ])
      ~reads:[ t.in_t; t.wqkv; t.bqkv ]
      (fun idx ridx ->
        E.mul
          (Op.access t.in_t [ nth idx 0; nth idx 1; nth ridx 0 ])
          (Op.access t.wqkv [ nth idx 2; nth ridx 0 ]))
  in
  let qkv_proj = Lower.lower (gemm_schedule ?ftile cfg ~target ~eff:effs.gemm ~jtile op_qkv) in

  (* --- 2. QK^T with fused AddPad: predicated loads add the partial padding
         (zeros) without a separate kernel --- *)
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKT" ~out:t.scores
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.scores.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth t.scores.Tensor.dims 0) ~fn:seq;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ t.qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let q = Op.access t.qkv [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        let kk = Op.access t.qkv [ b; c; E.add (E.int h) (E.add (E.mul hh (E.int dh)) k) ] in
        E.select (E.and_ (E.lt r sb) (E.lt c sb)) (E.mul q kk) (E.float 0.0))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    Schedule.pad_loop s c cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    let co, ci = Schedule.split s c cfg.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ri; ci; k ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro; co ];
        Schedule.bind_thread s ri;
        Schedule.bind_thread s ci
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s ci);
    Lower.lower s
  in

  (* --- 3. Softmax with fused ChangePad --- *)
  let softmax =
    Custom.softmax ~cfg ~scores:t.scores ~probs:t.probs ~target:(custom_target target)
      ~eff:effs.softmax ~name:"Softmax" ()
  in

  (* --- 4. AttnV: padded (zero-filled) column reduction, guarded row writes
         (fused RemovePad) --- *)
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"AttnV" ~out:t.attn
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.attn.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth t.attn.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ t.probs; t.qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let c = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let p = Op.access t.probs [ b; r; hh; c ] in
        let v =
          Op.access t.qkv [ b; c; E.add (E.int (2 * h)) (E.add (E.mul hh (E.int dh)) j) ]
        in
        E.select (E.lt c sb) (E.mul p v) (E.float 0.0))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_eff s effs.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let c = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s c cfg.Config.seq_pad;
    Schedule.set_elide_guard s c (* zero-filled padded columns *);
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; ri; j; c ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro ];
        Schedule.bind_thread s ri;
        Schedule.bind_thread s j
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s j);
    Lower.lower s
  in

  (* --- 5. Output projection with fused bias + residual (RemovePad folded
         into the fused-token loop) --- *)
  let op_proj2 =
    let kd = Dim.make "k" in
    Op.reduce ~name:"Proj2" ~out:t.p2
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.p2.Tensor.dims 0) ~fn:seq;
          Shape.fixed h;
        ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun idx ->
        E.add (Op.access t.in_t idx) (Op.access t.b2 [ nth idx 2 ]))
      ~reads:[ t.attn; t.w2; t.b2; t.in_t ]
      (fun idx ridx ->
        let k = nth ridx 0 in
        E.mul
          (Op.access t.attn
             [ nth idx 0; nth idx 1; E.floordiv k (E.int dh); E.imod k (E.int dh) ])
          (Op.access t.w2 [ nth idx 2; k ]))
  in
  let proj2 = Lower.lower (gemm_schedule ?ftile cfg ~target ~eff:effs.gemm ~jtile op_proj2) in

  (* --- 6. LayerNorm --- *)
  let norm1 =
    Custom.layernorm ~cfg ~x:t.p2 ~y:t.ln1 ~target:(custom_target target) ~eff:effs.norm
      ~name:"LayerNorm1" ()
  in

  (* --- 7. FF1 with fused bias + gelu --- *)
  let op_ff1 =
    let kd = Dim.make "k" in
    Op.reduce ~name:"FF1" ~out:t.f1
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.f1.Tensor.dims 0) ~fn:seq;
          Shape.fixed ff;
        ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun idx -> Op.access t.bf1 [ nth idx 2 ])
      ~epilogue:gelu
      ~reads:[ t.ln1; t.wf1; t.bf1 ]
      (fun idx ridx ->
        E.mul
          (Op.access t.ln1 [ nth idx 0; nth idx 1; nth ridx 0 ])
          (Op.access t.wf1 [ nth idx 2; nth ridx 0 ]))
  in
  let ff1 = Lower.lower (gemm_schedule ?ftile cfg ~target ~eff:effs.gemm ~jtile op_ff1) in

  (* --- 8. FF2 with fused bias + residual --- *)
  let op_ff2 =
    let kd = Dim.make "k" in
    Op.reduce ~name:"FF2" ~out:t.out
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.out.Tensor.dims 0) ~fn:seq;
          Shape.fixed h;
        ]
      ~rdims:[ (kd, Shape.fixed ff) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun idx ->
        E.add (Op.access t.ln1 idx) (Op.access t.bf2 [ nth idx 2 ]))
      ~reads:[ t.f1; t.wf2; t.bf2; t.ln1 ]
      (fun idx ridx ->
        E.mul
          (Op.access t.f1 [ nth idx 0; nth idx 1; nth ridx 0 ])
          (Op.access t.wf2 [ nth idx 2; nth ridx 0 ]))
  in
  let ff2 = Lower.lower (gemm_schedule ?ftile cfg ~target ~eff:effs.gemm ~jtile op_ff2) in

  (* --- 9. Final LayerNorm (FF2 output already holds the residual) --- *)
  let norm2 =
    Custom.layernorm ~cfg ~x:t.out ~y:t.out ~target:(custom_target target) ~eff:effs.norm
      ~name:"LayerNorm2" ()
  in

  {
    cfg;
    tensors = t;
    lenv = Config.lenv cfg;
    qkv_proj;
    qkt;
    softmax;
    attnv;
    proj2;
    norm1;
    ff1;
    ff2;
    norm2;
  }
