(** Transformer configuration (§7.2): the paper's base model hyperparameters
    plus the mini-batch (lengths sorted descending, §D.2) and CoRa's
    padding multiples. *)

type t = {
  batch : int;
  lens : int array;  (** sequence lengths, descending *)
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
  layers : int;
  seq_pad : int;  (** SDPA partial-padding multiple (32) *)
  bulk : int;  (** bulk padding of fused token loops (64) *)
}

val validate : t -> t

(** Paper base model (hidden 512, 8×64 heads, FF 2048, 6 layers). *)
val base : lens:int array -> t

(** Tiny model for correctness tests (same structure). *)
val tiny : lens:int array -> t

(** "seq" bound to the batch lengths. *)
val lenv : t -> Cora.Lenfun.env

val tokens : t -> int
val max_len : t -> int
val padded_tokens : t -> int
