(** Straight-line dense reference implementation of the encoder layer: each
    sequence computed independently at its true length with plain float
    arrays — the oracle the CoRa-compiled kernels are tested against. *)

type weights = {
  wqkv : float array;
  bqkv : float array;
  w2 : float array;
  b2 : float array;
  wf1 : float array;
  bf1 : float array;
  wf2 : float array;
  bf2 : float array;
}

val gelu : float -> float

(** MHA + output projection + residual for one sequence ([len][h]). *)
val mha : Config.t -> weights -> float array -> len:int -> float array

val layernorm : Config.t -> float array -> len:int -> float array
val feed_forward : Config.t -> weights -> float array -> len:int -> float array

(** Full encoder layer for one sequence. *)
val encoder : Config.t -> weights -> float array -> len:int -> float array

(** Deterministic pseudo-random weights with tame magnitudes. *)
val random_weights : Config.t -> seed:int -> weights
