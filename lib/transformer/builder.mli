(** CoRa implementation of the transformer encoder layer (Fig. 3, right):
    nine kernels matching the paper's fusion structure, with all linear
    operators on the fused bulk-padded token loop (§5.1, §7.2) and the SDPA
    operators partially padded with AddPad/RemovePad fused in as predicated
    loads / guarded stores. *)

type target = Gpu | Cpu

val custom_target : target -> Custom.target

(** Per-kernel efficiency factors (calibrated against Tables 4/5/9; see
    EXPERIMENTS.md). *)
type effs = {
  gemm : float;
  sdpa : float;
  softmax : float;
  norm : float;
  elementwise : float;
}

val gpu_effs : effs
val cpu_effs : effs
val effs_of : target -> effs

type tensors = {
  in_t : Cora.Tensor.t;
  wqkv : Cora.Tensor.t;
  bqkv : Cora.Tensor.t;
  qkv : Cora.Tensor.t;
  scores : Cora.Tensor.t;
  probs : Cora.Tensor.t;
  attn : Cora.Tensor.t;
  w2 : Cora.Tensor.t;
  b2 : Cora.Tensor.t;
  p2 : Cora.Tensor.t;
  ln1 : Cora.Tensor.t;
  wf1 : Cora.Tensor.t;
  bf1 : Cora.Tensor.t;
  f1 : Cora.Tensor.t;
  wf2 : Cora.Tensor.t;
  bf2 : Cora.Tensor.t;
  out : Cora.Tensor.t;
}

(** The "seq" length function all encoder tensors are declared against. *)
val seq : Cora.Lenfun.t

(** A bulk-padded ragged token tensor [B][s(b)][inner...]. *)
val token_tensor : Config.t -> string -> Cora.Shape.t list -> Cora.Tensor.t

val dense_tensor : string -> int list -> Cora.Tensor.t
val make_tensors : Config.t -> tensors
val all_tensors : tensors -> Cora.Tensor.t list

(** Fused-token gemm schedule (shared by QKV / Proj2 / FF1 / FF2).
    [?ftile] tiles the fused token loop (default [cfg.bulk]; must divide
    [cfg.bulk] so coverage of the bulk-padded range is unchanged). *)
val gemm_schedule :
  ?ftile:int ->
  Config.t -> target:target -> eff:float -> jtile:int -> Cora.Op.t -> Cora.Schedule.t

val gelu : Ir.Expr.t -> Ir.Expr.t

type built = {
  cfg : Config.t;
  tensors : tensors;
  lenv : Cora.Lenfun.env;
  qkv_proj : Cora.Lower.kernel;
  qkt : Cora.Lower.kernel;
  softmax : Cora.Lower.kernel;
  attnv : Cora.Lower.kernel;
  proj2 : Cora.Lower.kernel;
  norm1 : Cora.Lower.kernel;
  ff1 : Cora.Lower.kernel;
  ff2 : Cora.Lower.kernel;
  norm2 : Cora.Lower.kernel;
}

(** All nine kernels in execution order. *)
val kernels : built -> Cora.Lower.kernel list

(** The MHA prefix (through Proj2). *)
val mha_kernels : built -> Cora.Lower.kernel list

val launches : built -> Machine.Launch.t list
val mha_launches : built -> Machine.Launch.t list
val jtile_for : Config.t -> int

(** Compile the whole layer; [hoist] controls auxiliary-load hoisting.
    [?jtile]/[?ftile] override the gemm schedules' feature and fused-token
    tiles (defaults: {!jtile_for} and [cfg.bulk]) — the knobs the schedule
    autotuner searches over.  Outputs are bitwise-identical for any legal
    tile choice: only data-axis loop structure changes, never the
    reduction order or the storage layout. *)
val build : ?hoist:bool -> ?jtile:int -> ?ftile:int -> target:target -> Config.t -> built
