(** Grid-search auto-scheduling (§6 uses "manual scheduling and grid
    search"; full auto-scheduling is the paper's future work).  Searches
    the fused-token gemm tile space with the machine model as oracle. *)

type candidate = { ftile : int; jtile : int }

val default_space : candidate list

type result = {
  best : candidate;
  best_ns : float;
  default_ns : float;  (** the hand schedule (ftile = bulk, jtile = 128) *)
  evaluated : (candidate * float) list;
}

(** The QKV projection scheduled with the candidate's tiles; pass [tensors]
    to reuse an existing tensor set (needed to execute the kernel). *)
val qkv_with : ?tensors:Builder.tensors -> Config.t -> candidate -> Cora.Lower.kernel

val tune_qkv : ?space:candidate list -> device:Machine.Device.t -> Config.t -> result
