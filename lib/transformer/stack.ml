open Cora

(** A multi-layer encoder stack (§7.2: the paper evaluates a 6-layer model
    whose prelude-built auxiliary structures are shared across layers,
    because raggedness depends only on the mini-batch's lengths).

    Layers ping-pong between two activation tensor sets: layer [i] reads
    the previous layer's output as its input.  All layers share one
    prelude build — the amortisation Table 4's CoRa column assumes. *)

type t = {
  cfg : Config.t;
  layers : Builder.built array;
  kernels : Lower.kernel list;  (** all layers, in execution order *)
}

(** Build an [n]-layer stack.  Each layer gets its own weights/tensors, but
    every layer's kernels reference the same auxiliary-structure names, so
    the prelude is built once (checked by the test suite). *)
let build ?(hoist = true) ~(target : Builder.target) ~(layers : int) (cfg : Config.t) : t =
  if layers < 1 then invalid_arg "Stack.build: need at least one layer";
  let ls = Array.init layers (fun _ -> Builder.build ~hoist ~target cfg) in
  (* stitch: layer i's input tensor is layer (i-1)'s output tensor.  The
     builder allocates distinct input tensors; we rewrite each layer's
     kernels to read the previous output buffer by substituting the buffer
     variable. *)
  let kernels =
    List.concat
      (List.mapi
         (fun i (b : Builder.built) ->
           let ks = Builder.kernels b in
           if i = 0 then ks
           else
             let prev_out = ls.(i - 1).Builder.tensors.Builder.out.Tensor.buf in
             let this_in = b.Builder.tensors.Builder.in_t.Tensor.buf in
             let remap =
               Ir.Var.Map.singleton this_in (Ir.Expr.var prev_out)
             in
             (* buffer variables appear as Load bufs and Store bufs; a plain
                variable substitution covers Loads, and Stores never target
                the input *)
             List.map
               (fun (k : Lower.kernel) ->
                 {
                   k with
                   Lower.body =
                     Ir.Stmt.map_exprs
                       (Ir.Expr.map_bottom_up (function
                         | Ir.Expr.Load { buf; index } when Ir.Var.equal buf this_in ->
                             Ir.Expr.Load { buf = prev_out; index }
                         | e -> e))
                       k.Lower.body;
                 })
               ks
             |> fun ks ->
             ignore remap;
             ks)
         (Array.to_list ls))
  in
  { cfg; layers = ls; kernels }

(** All tensors of all layers (for allocation). *)
let all_tensors (t : t) : Tensor.t list =
  List.concat_map
    (fun (b : Builder.built) -> Builder.all_tensors b.Builder.tensors)
    (Array.to_list t.layers)

(** Simulated end-to-end time: the prelude is built and copied once for the
    whole stack. *)
let time ~device (t : t) =
  let p =
    Machine.Launch.pipeline ~device ~lenv:(Config.lenv t.cfg)
      (List.map Machine.Launch.single t.kernels)
  in
  Machine.Launch.total_ns p
