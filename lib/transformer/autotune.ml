open Cora

(** Grid-search auto-scheduling (§6: the paper's evaluation uses "a
    combination of manual scheduling and grid search"; full auto-scheduling
    is called out as future work — this module implements the grid-search
    half for the fused-token gemm operators, using the machine model as the
    cost oracle). *)

type candidate = { ftile : int; jtile : int }

let default_space =
  List.concat_map
    (fun ftile -> List.map (fun jtile -> { ftile; jtile }) [ 32; 64; 128; 256 ])
    [ 32; 64; 128 ]

type result = {
  best : candidate;
  best_ns : float;
  default_ns : float;  (** the hand schedule (ftile = bulk, jtile = 128) *)
  evaluated : (candidate * float) list;
}

(** A QKV-projection gemm over the given config, scheduled with the
    candidate's tiles.  Pass [tensors] to reuse an existing tensor set
    (needed when the kernel will actually be executed). *)
let qkv_with ?tensors (cfg : Config.t) (c : candidate) : Lower.kernel =
  let t = match tensors with Some t -> t | None -> Builder.make_tensors cfg in
  let h = cfg.Config.hidden in
  let nth = List.nth in
  let op =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKVProj" ~out:t.Builder.qkv
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.Builder.qkv.Tensor.dims 0) ~fn:Builder.seq;
          Shape.fixed (3 * h);
        ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun idx -> Op.access t.Builder.bqkv [ nth idx 2 ])
      ~reads:[ t.Builder.in_t; t.Builder.wqkv; t.Builder.bqkv ]
      (fun idx ridx ->
        Ir.Expr.mul
          (Op.access t.Builder.in_t [ nth idx 0; nth idx 1; nth ridx 0 ])
          (Op.access t.Builder.wqkv [ nth idx 2; nth ridx 0 ]))
  in
  let s = Schedule.create op in
  Schedule.set_guard_mode s Schedule.Elide;
  Schedule.set_eff s (Builder.gpu_effs).Builder.gemm;
  let f = Schedule.fuse s (Schedule.axis_of_dim s 0) (Schedule.axis_of_dim s 1) in
  Schedule.pad_loop s f (Shape.pad_to cfg.Config.bulk c.ftile) (* bulk must cover the tile *);
  let fo, fi = Schedule.split s f c.ftile in
  let jo, ji = Schedule.split s (Schedule.axis_of_dim s 2) (min c.jtile (3 * h)) in
  let k = Schedule.axis_of_rdim s 0 in
  Schedule.reorder s [ fo; jo; fi; ji; k ];
  Schedule.bind_block s fo;
  Schedule.bind_block s jo;
  Schedule.bind_thread s fi;
  Schedule.bind_thread s ji;
  Lower.lower s

(** Grid-search the QKV projection for one batch configuration. *)
let tune_qkv ?(space = default_space) ~(device : Machine.Device.t) (cfg : Config.t) : result =
  let evaluate c =
    let k = qkv_with cfg c in
    let p =
      Machine.Launch.pipeline ~device ~lenv:(Config.lenv cfg) [ Machine.Launch.single k ]
    in
    p.Machine.Launch.kernels_ns
  in
  let evaluated = List.map (fun c -> (c, evaluate c)) space in
  let best, best_ns =
    List.fold_left
      (fun (bc, bt) (c, t) -> if t < bt then (c, t) else (bc, bt))
      (List.hd evaluated |> fst, List.hd evaluated |> snd)
      evaluated
  in
  let default_ns = evaluate { ftile = cfg.Config.bulk; jtile = 128 } in
  { best; best_ns; default_ns; evaluated }
