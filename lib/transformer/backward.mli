(** Backward pass of scaled dot-product attention on ragged tensors —
    closing the training loop the paper's memory study (§7.2, §D.5)
    motivates.  Gradient operators exercise new raggedness patterns: [dV]
    and [dK] reduce over the ragged {e row} dimension. *)

type t = {
  cfg : Config.t;
  qkv : Cora.Tensor.t;  (** forward input [B][s][3h] *)
  probs : Cora.Tensor.t;  (** saved softmax output *)
  dout : Cora.Tensor.t;  (** upstream gradient [B][s][H][dh] *)
  dscores : Cora.Tensor.t;
  dprobs : Cora.Tensor.t;
  dq : Cora.Tensor.t;
  dk : Cora.Tensor.t;
  dv : Cora.Tensor.t;
  kernels : Cora.Lower.kernel list;  (** dV · dP · SoftmaxBwd · dQ · dK *)
}

val build : ?hoist:bool -> Config.t -> t
val time : device:Machine.Device.t -> t -> float
