open Cora
module E = Ir.Expr

(** Transformer decoder attention (§7.2 "Masked Scaled Dot-Product
    Attention" situates masked MHA in the decoder; this module builds the
    decoder's two attention stages end-to-end as an extension of the
    paper's evaluation):

    - {b masked self-attention} over the target sequence (the triangular
      computation of {!Masked});
    - {b cross-attention}, where each target position attends to the full
      {e source} sequence — an attention matrix that is ragged in {e two
      independent} length functions: rows follow [tgt(b)], columns follow
      [src(b)].  This exercises a raggedness pattern none of the encoder
      operators have (two different lenfuns in one tensor). *)

let tgt = Lenfun.make "tgt"
let src = Lenfun.make "src"

(** Cross-attention configuration: a decoder (target) batch plus the
    encoder (source) lengths. *)
type cfg = {
  base : Config.t;  (** batch/hidden/heads/... with [lens] = target lengths *)
  src_lens : int array;
}

let make ~(tgt_lens : int array) ~(src_lens : int array) ~tiny () : cfg =
  if Array.length tgt_lens <> Array.length src_lens then
    invalid_arg "Decoder.make: source/target batch mismatch";
  let base = if tiny then Config.tiny ~lens:tgt_lens else Config.base ~lens:tgt_lens in
  (* Config sorts target lengths descending; sort sources with the same
     permutation semantics (descending) to keep pairs plausible. *)
  let src_lens = Array.copy src_lens in
  Array.sort (fun a b -> Int.compare b a) src_lens;
  { base; src_lens }

let lenv (c : cfg) : Lenfun.env =
  [
    Lenfun.of_array "tgt" c.base.Config.lens;
    Lenfun.of_array "src" c.src_lens;
    (* the encoder-side tensors are declared against "seq" *)
    Lenfun.of_array "seq" c.base.Config.lens;
  ]

(** Tensors of the cross-attention stage. *)
type t = {
  cfg : cfg;
  q_in : Tensor.t;  (** decoder hidden states [B][tgt(b)][h] *)
  kv_in : Tensor.t;  (** encoder output [B][src(b)][h] *)
  scores : Tensor.t;  (** [B][tgt(b)~32][H][src(b)~32] *)
  probs : Tensor.t;
  attn : Tensor.t;  (** [B][tgt(b)][H][dh] *)
  kernels : Lower.kernel list;
}

(* token tensor against an arbitrary length function *)
let token (c : cfg) fn name inner =
  let bd = Dim.make "batch" and ld = Dim.make "len" in
  let inner_dims = List.map (fun _ -> Dim.make "c") inner in
  let tt =
    Tensor.create ~name
      ~dims:(bd :: ld :: inner_dims)
      ~extents:(Shape.fixed c.base.Config.batch :: Shape.ragged ~dep:bd ~fn :: inner)
  in
  Tensor.set_bulk_pad tt c.base.Config.bulk;
  tt

let cross_matrix (c : cfg) name =
  let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
  let tt =
    Tensor.create ~name
      ~dims:[ bd; rd; hd; cd ]
      ~extents:
        [
          Shape.fixed c.base.Config.batch;
          Shape.ragged ~dep:bd ~fn:tgt;
          Shape.fixed c.base.Config.heads;
          Shape.ragged ~dep:bd ~fn:src;
        ]
  in
  Tensor.pad_dimension tt rd c.base.Config.seq_pad;
  Tensor.pad_dimension tt cd c.base.Config.seq_pad;
  tt

(** Build the cross-attention kernels: QK^T over (tgt x src), softmax over
    the source length, AttnV reducing over the source. *)
let build_cross ?(hoist = true) (c : cfg) : t =
  let base = c.base in
  let h = base.Config.hidden and nh = base.Config.heads and dh = base.Config.head_size in
  let nth = List.nth in
  let effs = Builder.gpu_effs in
  let q_in = token c tgt "DQ" [ Shape.fixed h ] in
  let kv_in = token c src "DKV" [ Shape.fixed (2 * h) ] in
  let scores = cross_matrix c "DX" and probs = cross_matrix c "DXS" in
  let attn = token c tgt "DAO" [ Shape.fixed nh; Shape.fixed dh ] in
  (* QK^T: rows over tgt(b), cols over src(b) *)
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"CrossQKT" ~out:scores
      ~loop_extents:
        [
          Shape.fixed base.Config.batch;
          Shape.ragged ~dep:(nth scores.Tensor.dims 0) ~fn:tgt;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth scores.Tensor.dims 0) ~fn:src;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ q_in; kv_in ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and cc = nth idx 3 in
        let k = nth ridx 0 in
        let tb = E.ufun "tgt" [ b ] and sb = E.ufun "src" [ b ] in
        let q = Op.access q_in [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        let kk = Op.access kv_in [ b; cc; E.add (E.mul hh (E.int dh)) k ] in
        E.select (E.and_ (E.lt r tb) (E.lt cc sb)) (E.mul q kk) (E.float 0.0))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and cc = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r base.Config.seq_pad;
    Schedule.pad_loop s cc base.Config.seq_pad;
    let ro, ri = Schedule.split s r base.Config.seq_pad in
    let co, ci = Schedule.split s cc base.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ri; ci; k ];
    List.iter (Schedule.bind_block s) [ b; hh; ro; co ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ci;
    Lower.lower s
  in
  (* softmax over the source length: rows follow tgt(b), columns src(b) *)
  let softmax =
    Custom.softmax ~cfg:base ~scores ~probs ~target:Custom.Gpu ~eff:effs.Builder.softmax
      ~rows_fn:"tgt"
      ~col_extent:(fun ~row:_ ~seq:_ ~batch -> E.ufun "src" [ batch ])
      ~name:"CrossSoftmax" ()
  in
  (* AttnV: reduce over the source columns *)
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"CrossAttnV" ~out:attn
      ~loop_extents:
        [
          Shape.fixed base.Config.batch;
          Shape.ragged ~dep:(nth attn.Tensor.dims 0) ~fn:tgt;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth attn.Tensor.dims 0) ~fn:src) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ probs; kv_in ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let cc = nth ridx 0 in
        let sb = E.ufun "src" [ b ] in
        let p = Op.access probs [ b; r; hh; cc ] in
        let v = Op.access kv_in [ b; cc; E.add (E.int h) (E.add (E.mul hh (E.int dh)) j) ] in
        E.select (E.lt cc sb) (E.mul p v) (E.float 0.0))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r base.Config.seq_pad;
    let cd = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s cd base.Config.seq_pad;
    Schedule.set_elide_guard s cd;
    let ro, ri = Schedule.split s r base.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; j; ri; cd ];
    List.iter (Schedule.bind_block s) [ b; hh; ro ];
    Schedule.bind_thread s j;
    Schedule.bind_thread s ri;
    Lower.lower s
  in
  { cfg = c; q_in; kv_in; scores; probs; attn; kernels = [ qkt; softmax; attnv ] }

(** Simulated wall time of the cross-attention stage. *)
let time ~device (t : t) =
  let p =
    Machine.Launch.pipeline ~device ~lenv:(lenv t.cfg)
      (List.map Machine.Launch.single t.kernels)
  in
  Machine.Launch.total_ns p

(* ------------------------------------------------------------------ *)
(* Autoregressive decode step *)

(* KV-cache token tensor: per-row storage padded to [seq_pad] so the fused
   cache sweep below can use a seq_pad-granular fused loop (its offset
   table is then the storage offset table, shared), plus the usual bulk
   padding of the fused total. *)
let cache_token (c : cfg) fn name inner =
  let bd = Dim.make "batch" and ld = Dim.make "len" in
  let inner_dims = List.map (fun _ -> Dim.make "c") inner in
  let tt =
    Tensor.create ~name
      ~dims:(bd :: ld :: inner_dims)
      ~extents:(Shape.fixed c.base.Config.batch :: Shape.ragged ~dep:bd ~fn :: inner)
  in
  Tensor.pad_dimension tt ld c.base.Config.seq_pad;
  Tensor.set_bulk_pad tt c.base.Config.bulk;
  tt

(** Tensors and kernels of one autoregressive decode step. *)
type decode = {
  dcfg : cfg;
  dq : Tensor.t;  (** the new token's hidden state, [B][tgt(b)=1][h] *)
  dkv : Tensor.t;  (** KV cache after append, [B][src(b)~pad][2h] *)
  dkn : Tensor.t;  (** key-scaled cache, same layout as [dkv] *)
  dscores : Tensor.t;
  dprobs : Tensor.t;
  dattn : Tensor.t;  (** [B][tgt(b)=1][H][dh] *)
  dkernels : Lower.kernel list;
}

(** Build one decode step: the new token ([tgt(b) = 1] for every row)
    attends to the full KV cache [src(b)], which grew by one in the
    append.  The first kernel is the cache pre-scale sweep — a fused,
    bulk-padded pass over every cache token that scales the key half by
    [1/sqrt(dh)] (so QK^T needs no epilogue) and copies the value half.
    Its fused loop is padded to [seq_pad] {e before} fusing, so the
    fused-loop maps change only when a row crosses a padding boundary —
    once every [seq_pad] steps — which is exactly the structure the
    incremental prelude maintenance exploits. *)
let build_decode ?(hoist = true) (c : cfg) : decode =
  let base = c.base in
  if Array.exists (fun l -> l <> 1) base.Config.lens then
    invalid_arg "Decoder.build_decode: target lengths must all be 1";
  let h = base.Config.hidden and nh = base.Config.heads and dh = base.Config.head_size in
  let nth = List.nth in
  let effs = Builder.gpu_effs in
  let dq = token c tgt "DQ" [ Shape.fixed h ] in
  let dkv = cache_token c src "DKV" [ Shape.fixed (2 * h) ] in
  let dkn = cache_token c src "DKN" [ Shape.fixed (2 * h) ] in
  let dscores = cross_matrix c "DX" and dprobs = cross_matrix c "DXS" in
  let dattn = token c tgt "DAO" [ Shape.fixed nh; Shape.fixed dh ] in
  (* cache sweep: keys scaled, values copied *)
  let op_kscale =
    Op.compute ~name:"KVScale" ~out:dkn
      ~loop_extents:
        [
          Shape.fixed base.Config.batch;
          Shape.ragged ~dep:(nth dkn.Tensor.dims 0) ~fn:src;
          Shape.fixed (2 * h);
        ]
      ~reads:[ dkv ]
      (fun idx ->
        let b = nth idx 0 and t = nth idx 1 and cc = nth idx 2 in
        let v = Op.access dkv [ b; t; cc ] in
        E.select (E.lt cc (E.int h)) (E.mul v (E.float (1.0 /. sqrt (float_of_int dh)))) v)
  in
  let kscale =
    let s = Schedule.create op_kscale in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.gemm;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and t = Schedule.axis_of_dim s 1
    and cc = Schedule.axis_of_dim s 2 in
    (* pad the token axis before fusing: the fused tables get inner pad
       [seq_pad], matching the cache tensors' storage padding *)
    Schedule.pad_loop s t base.Config.seq_pad;
    let f = Schedule.fuse s b t in
    Schedule.pad_loop s f base.Config.bulk;
    let fo, fi = Schedule.split s f base.Config.bulk in
    Schedule.reorder s [ fo; fi; cc ];
    Schedule.bind_block s fo;
    Schedule.bind_thread s fi;
    Schedule.bind_thread s cc;
    Lower.lower s
  in
  (* QK^T over the scaled keys: no epilogue, one row per sequence *)
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"DecodeQKT" ~out:dscores
      ~loop_extents:
        [
          Shape.fixed base.Config.batch;
          Shape.ragged ~dep:(nth dscores.Tensor.dims 0) ~fn:tgt;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth dscores.Tensor.dims 0) ~fn:src;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ dq; dkn ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and cc = nth idx 3 in
        let k = nth ridx 0 in
        let tb = E.ufun "tgt" [ b ] and sb = E.ufun "src" [ b ] in
        let q = Op.access dq [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        let kk = Op.access dkn [ b; cc; E.add (E.mul hh (E.int dh)) k ] in
        E.select (E.and_ (E.lt r tb) (E.lt cc sb)) (E.mul q kk) (E.float 0.0))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and cc = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r base.Config.seq_pad;
    Schedule.pad_loop s cc base.Config.seq_pad;
    let ro, ri = Schedule.split s r base.Config.seq_pad in
    let co, ci = Schedule.split s cc base.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ri; ci; k ];
    List.iter (Schedule.bind_block s) [ b; hh; ro; co ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ci;
    Lower.lower s
  in
  let softmax =
    Custom.softmax ~cfg:base ~scores:dscores ~probs:dprobs ~target:Custom.Gpu
      ~eff:effs.Builder.softmax ~rows_fn:"tgt"
      ~col_extent:(fun ~row:_ ~seq:_ ~batch -> E.ufun "src" [ batch ])
      ~name:"DecodeSoftmax" ()
  in
  (* AttnV over the value half of the scaled cache *)
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"DecodeAttnV" ~out:dattn
      ~loop_extents:
        [
          Shape.fixed base.Config.batch;
          Shape.ragged ~dep:(nth dattn.Tensor.dims 0) ~fn:tgt;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth dattn.Tensor.dims 0) ~fn:src) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ dprobs; dkn ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let cc = nth ridx 0 in
        let sb = E.ufun "src" [ b ] in
        let p = Op.access dprobs [ b; r; hh; cc ] in
        let v = Op.access dkn [ b; cc; E.add (E.int h) (E.add (E.mul hh (E.int dh)) j) ] in
        E.select (E.lt cc sb) (E.mul p v) (E.float 0.0))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r base.Config.seq_pad;
    let cd = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s cd base.Config.seq_pad;
    Schedule.set_elide_guard s cd;
    let ro, ri = Schedule.split s r base.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; j; ri; cd ];
    List.iter (Schedule.bind_block s) [ b; hh; ro ];
    Schedule.bind_thread s j;
    Schedule.bind_thread s ri;
    Lower.lower s
  in
  {
    dcfg = c;
    dq;
    dkv;
    dkn;
    dscores;
    dprobs;
    dattn;
    dkernels = [ kscale; qkt; softmax; attnv ];
  }
