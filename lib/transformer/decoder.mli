(** Decoder cross-attention (extension of §7.2's masked-MHA setting): each
    target position attends to the full source sequence, so the attention
    matrix is ragged in {e two independent} length functions — rows follow
    [tgt(b)], columns follow [src(b)]. *)

val tgt : Cora.Lenfun.t
val src : Cora.Lenfun.t

type cfg = {
  base : Config.t;  (** [lens] holds the target lengths *)
  src_lens : int array;
}

val make : tgt_lens:int array -> src_lens:int array -> tiny:bool -> unit -> cfg
val lenv : cfg -> Cora.Lenfun.env

type t = {
  cfg : cfg;
  q_in : Cora.Tensor.t;  (** decoder hidden states [B][tgt(b)][h] *)
  kv_in : Cora.Tensor.t;  (** encoder keys+values [B][src(b)][2h] *)
  scores : Cora.Tensor.t;
  probs : Cora.Tensor.t;
  attn : Cora.Tensor.t;
  kernels : Cora.Lower.kernel list;
}

val cross_matrix : cfg -> string -> Cora.Tensor.t
val build_cross : ?hoist:bool -> cfg -> t
val time : device:Machine.Device.t -> t -> float

(** One autoregressive decode step: the new token ([tgt(b) = 1]) attends
    to the full KV cache [src(b)].  The cache pre-scale sweep runs as a
    fused bulk-padded loop with inner pad [seq_pad], so its fused-loop
    tables change only when a row crosses a padding boundary — the
    structure incremental prelude maintenance exploits. *)
type decode = {
  dcfg : cfg;
  dq : Cora.Tensor.t;  (** new token hidden state [B][tgt(b)=1][h] *)
  dkv : Cora.Tensor.t;  (** KV cache after append [B][src(b)~pad][2h] *)
  dkn : Cora.Tensor.t;  (** key-scaled cache, same layout *)
  dscores : Cora.Tensor.t;
  dprobs : Cora.Tensor.t;
  dattn : Cora.Tensor.t;  (** [B][tgt(b)=1][H][dh] *)
  dkernels : Cora.Lower.kernel list;
}

val build_decode : ?hoist:bool -> cfg -> decode
