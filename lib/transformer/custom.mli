(** Hand-assembled kernels for the multi-pass operators — softmax and layer
    normalisation.  They use the same storage lowering as scheduled
    operators, so their ragged accesses and prelude requirements are
    identical to generated code (cf. §C). *)

type target = Gpu | Cpu

val block_kind : target -> Ir.Stmt.for_kind
val thread_kind : target -> Ir.Stmt.for_kind

(** Softmax over the last (ragged) dimension of the attention scores, with
    the padding-change operators fused in: real columns normalise over the
    true extent, padded columns are written as exact zeros so AttnV can
    reduce over the padded extent unguarded.

    [rows_fn] names the length function of the row dimension (default
    "seq"); [col_extent] overrides the reduced column range — the triangle
    for masked attention, the source length for cross-attention. *)
val softmax :
  cfg:Config.t ->
  scores:Cora.Tensor.t ->
  probs:Cora.Tensor.t ->
  target:target ->
  ?eff:float ->
  ?hoist:bool ->
  ?rows_fn:string ->
  ?col_extent:(row:Ir.Expr.t -> seq:Ir.Expr.t -> batch:Ir.Expr.t -> Ir.Expr.t) ->
  name:string ->
  unit ->
  Cora.Lower.kernel

(** Layer normalisation over hidden vectors on the bulk-padded fused token
    layout; bulk-padding rows compute garbage in place (elided guards). *)
val layernorm :
  cfg:Config.t ->
  x:Cora.Tensor.t ->
  y:Cora.Tensor.t ->
  target:target ->
  ?eff:float ->
  name:string ->
  unit ->
  Cora.Lower.kernel
