(** Multi-layer encoder stack (§7.2: the 6-layer model shares one prelude,
    because raggedness depends only on the mini-batch's lengths).  Layers
    chain by rewriting each layer's input loads to the previous layer's
    output buffer. *)

type t = {
  cfg : Config.t;
  layers : Builder.built array;
  kernels : Cora.Lower.kernel list;  (** all layers, in execution order *)
}

val build : ?hoist:bool -> target:Builder.target -> layers:int -> Config.t -> t
val all_tensors : t -> Cora.Tensor.t list

(** End-to-end simulated time; the prelude is built and copied once. *)
val time : device:Machine.Device.t -> t -> float
