(** Transformer configuration (§7.2).

    The paper's base model: 6 layers, hidden 512, 8 heads of 64, inner
    feed-forward 2048.  A configuration also fixes the mini-batch: the
    sequence lengths (sorted descending, the paper's load-balancing trick of
    §D.2), the SDPA partial-padding multiple (32) and the bulk padding of
    fused token loops (64). *)

type t = {
  batch : int;
  lens : int array;  (** sequence lengths of the mini-batch, descending *)
  hidden : int;
  heads : int;
  head_size : int;
  ff : int;
  layers : int;
  seq_pad : int;  (** partial padding multiple for SDPA vloops/vdims *)
  bulk : int;  (** bulk padding multiple for fused token loops *)
}

let validate cfg =
  if cfg.hidden <> cfg.heads * cfg.head_size then
    invalid_arg "Config: hidden must equal heads * head_size";
  if Array.length cfg.lens <> cfg.batch then invalid_arg "Config: |lens| <> batch";
  cfg

(** Paper base model over a given batch of lengths. *)
let base ~lens =
  let lens = Array.copy lens in
  Array.sort (fun a b -> Int.compare b a) lens;
  validate
    {
      batch = Array.length lens;
      lens;
      hidden = 512;
      heads = 8;
      head_size = 64;
      ff = 2048;
      layers = 6;
      seq_pad = 32;
      bulk = 64;
    }

(** Tiny model for correctness tests (same structure, interpretable sizes). *)
let tiny ~lens =
  let lens = Array.copy lens in
  Array.sort (fun a b -> Int.compare b a) lens;
  validate
    {
      batch = Array.length lens;
      lens;
      hidden = 16;
      heads = 2;
      head_size = 8;
      ff = 32;
      layers = 2;
      seq_pad = 4;
      bulk = 8;
    }

(** Length-function environment: "seq" bound to the batch lengths, plus the
    derived total-token count helpers. *)
let lenv cfg : Cora.Lenfun.env = [ Cora.Lenfun.of_array "seq" cfg.lens ]

let tokens cfg = Array.fold_left ( + ) 0 cfg.lens
let max_len cfg = Array.fold_left max 0 cfg.lens
let padded_tokens cfg = Cora.Shape.pad_to (tokens cfg) cfg.bulk
