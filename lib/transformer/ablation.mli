(** Ablation studies on the transformer operators: operation splitting and
    horizontal fusion (Figs. 13, 20, 21), fused vs explicit padding-change
    operators (Fig. 11), and the vloops/vdims/load-hoisting overhead study
    (Fig. 23). *)

type target = Gpu | Cpu

(** {1 Fig. 13 — AttnV} *)

type split_variant = No_split | Split | Split_hfused

val split_variant_name : split_variant -> string

(** AttnV with a parameterised row treatment: [No_split] pads rows to the
    large [tile]; the split variants peel the partial tile (two sequential
    launches, or one horizontally fused launch). *)
val attnv_variant :
  Config.t ->
  tensors:Builder.tensors ->
  target:target ->
  variant:split_variant ->
  tile:int ->
  Machine.Launch.t list

(** {1 Figs. 20–21 — QK^T} *)

type qkt_variant = Qkt_no_split | Qkt_split1_hfused | Qkt_split2_hfused

val qkt_variant_name : qkt_variant -> string

(** QK^T with splitting on the outer non-reduction vloop ([Split1]) or on
    both ([Split2], a 4-way h-fused grid of tile/tail pieces). *)
val qkt_variant :
  Config.t ->
  tensors:Builder.tensors ->
  target:target ->
  variant:qkt_variant ->
  tile:int ->
  Machine.Launch.t list

(** {1 Fig. 11 — padding-change fusion} *)

type unfused = {
  u_launches : Machine.Launch.t list;
  u_kernels : Cora.Lower.kernel list;
  u_built : Builder.built;
  u_padded : Cora.Tensor.t list;  (** QP, KP, VP, AOP *)
}

(** MHA with explicit AddPad ×3 / RemovePad kernels (FasterTransformer's
    structure). *)
val mha_unfused_full : Config.t -> target:target -> unfused

val mha_unfused : Config.t -> target:target -> Machine.Launch.t list * Cora.Lower.kernel list

(** The standard builder MHA (pad changes folded into the compute). *)
val mha_fused : Config.t -> target:target -> Machine.Launch.t list

(** {1 Fig. 23 — ragged overheads} *)

type overhead_variant = Dense | Plus_vloops | Plus_vdims | Plus_loadhoist

val overhead_variant_name : overhead_variant -> string

(** The five MHA operators on a constant-length batch under the variant:
    dense extents everywhere; ragged loops over dense storage; ragged
    storage (auxiliary accesses — un-hoistable only in QK^T, matching
    §D.7's account of nvcc); or with CoRa's own hoisting. *)
val overhead_mha : Config.t -> variant:overhead_variant -> (string * Cora.Lower.kernel) list
