open Cora
module E = Ir.Expr

(** Ablation studies on the transformer operators:

    - Fig. 13: operation splitting and horizontal fusion on AttnV's
      non-reduction vloop;
    - Figs. 20–21: the same on one or both non-reduction vloops of QK^T;
    - Fig. 11: fusing vs not fusing the padding-change operators in MHA;
    - Fig. 23: the cost of vloops, vdims (auxiliary indirect accesses) and
      the benefit of load hoisting, on a constant-length dataset. *)

type target = Gpu | Cpu

let seq = Builder.seq
let nth = List.nth

(* ------------------------------------------------------------------ *)
(* Fig. 13: AttnV — NoSplit / Split / Split-HFused                      *)

type split_variant = No_split | Split | Split_hfused

let split_variant_name = function
  | No_split -> "NoSplit"
  | Split -> "Split"
  | Split_hfused -> "Split-HFused"

(* AttnV over existing probs/qkv/attn tensors, with a parameterised row
   treatment. [tile] is the large tile (64) the optimisation enables. *)
let attnv_variant (cfg : Config.t) ~(tensors : Builder.tensors) ~(target : target)
    ~(variant : split_variant) ~(tile : int) : Machine.Launch.t list =
  let t = tensors in
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let op =
    let cd = Dim.make "c" in
    Op.reduce ~name:"AttnV" ~out:t.Builder.attn
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.Builder.attn.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth t.Builder.attn.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ t.Builder.probs; t.Builder.qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let c = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let p = Op.access t.Builder.probs [ b; r; hh; c ] in
        let v =
          Op.access t.Builder.qkv
            [ b; c; E.add (E.int (2 * h)) (E.add (E.mul hh (E.int dh)) j) ]
        in
        E.select (E.lt c sb) (E.mul p v) (E.float 0.0))
  in
  let mk_sched ~pad_rows =
    let s = Schedule.create op in
    Schedule.set_eff s (Builder.effs_of (match target with Gpu -> Builder.Gpu | Cpu -> Builder.Cpu)).Builder.sdpa;
    Schedule.set_hoist s true;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    if pad_rows then Schedule.pad_loop s r tile;
    let c = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s c cfg.Config.seq_pad;
    Schedule.set_elide_guard s c;
    let ro, ri = Schedule.split s r tile in
    (* the constant-extent head-size loop is the outer thread loop so the
       lane budget is consumed by a known extent even in tail kernels *)
    Schedule.reorder s [ b; hh; ro; j; ri; c ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro ];
        Schedule.bind_thread s j;
        Schedule.bind_thread s ri
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s j);
    (s, r)
  in
  match variant with
  | No_split ->
      (* large tile forces padding rows to the tile multiple *)
      let s, _ = mk_sched ~pad_rows:true in
      [ Machine.Launch.single (Lower.lower s) ]
  | Split | Split_hfused ->
      let s, r = mk_sched ~pad_rows:false in
      let main =
        Lower.lower ~ranges:[ (r.Schedule.aid, Schedule.Tiles_only) ] ~name_suffix:"_tiles" s
      in
      let tail =
        Lower.lower ~ranges:[ (r.Schedule.aid, Schedule.Tail_only) ] ~name_suffix:"_tail" s
      in
      if variant = Split_hfused then [ Machine.Launch.hfused [ main; tail ] ]
      else [ Machine.Launch.single main; Machine.Launch.single tail ]

(* ------------------------------------------------------------------ *)
(* Figs. 20–21: QK^T with splitting on one or both non-reduction vloops *)

type qkt_variant = Qkt_no_split | Qkt_split1_hfused | Qkt_split2_hfused

let qkt_variant_name = function
  | Qkt_no_split -> "NoSplit"
  | Qkt_split1_hfused -> "Split1-HFused"
  | Qkt_split2_hfused -> "Split2-HFused"

let qkt_variant (cfg : Config.t) ~(tensors : Builder.tensors) ~(target : target)
    ~(variant : qkt_variant) ~(tile : int) : Machine.Launch.t list =
  let t = tensors in
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let op =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKT" ~out:t.Builder.scores
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.Builder.scores.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth t.Builder.scores.Tensor.dims 0) ~fn:seq;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ t.Builder.qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let q = Op.access t.Builder.qkv [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        let kk =
          Op.access t.Builder.qkv [ b; c; E.add (E.int h) (E.add (E.mul hh (E.int dh)) k) ]
        in
        E.select (E.and_ (E.lt r sb) (E.lt c sb)) (E.mul q kk) (E.float 0.0))
  in
  let mk_sched ~pad_r ~pad_c =
    let s = Schedule.create op in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s (Builder.effs_of (match target with Gpu -> Builder.Gpu | Cpu -> Builder.Cpu)).Builder.sdpa;
    Schedule.set_hoist s true;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    if pad_r then Schedule.pad_loop s r tile;
    if pad_c then Schedule.pad_loop s c tile;
    let ro, ri = Schedule.split s r tile in
    let co, ci = Schedule.split s c tile in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ci; ri; k ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro ];
        Schedule.bind_thread s ci;
        Schedule.bind_thread s ri
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s ci);
    ignore co;
    (s, r, c)
  in
  match variant with
  | Qkt_no_split ->
      let s, _, _ = mk_sched ~pad_r:true ~pad_c:true in
      [ Machine.Launch.single (Lower.lower s) ]
  | Qkt_split1_hfused ->
      let s, r, _ = mk_sched ~pad_r:false ~pad_c:true in
      let main =
        Lower.lower ~ranges:[ (r.Schedule.aid, Schedule.Tiles_only) ] ~name_suffix:"_tiles" s
      in
      let tail =
        Lower.lower ~ranges:[ (r.Schedule.aid, Schedule.Tail_only) ] ~name_suffix:"_tail" s
      in
      [ Machine.Launch.hfused [ main; tail ] ]
  | Qkt_split2_hfused ->
      let s, r, c = mk_sched ~pad_r:false ~pad_c:false in
      let piece rm cm suffix =
        Lower.lower
          ~ranges:[ (r.Schedule.aid, rm); (c.Schedule.aid, cm) ]
          ~name_suffix:suffix s
      in
      [
        Machine.Launch.hfused
          [
            piece Schedule.Tiles_only Schedule.Tiles_only "_tt";
            piece Schedule.Tiles_only Schedule.Tail_only "_tl";
            piece Schedule.Tail_only Schedule.Tiles_only "_lt";
            piece Schedule.Tail_only Schedule.Tail_only "_ll";
          ];
      ]

(* ------------------------------------------------------------------ *)
(* Fig. 11: MHA with pad-change operators fused vs as separate kernels  *)

(** Result of building the unfused-pads MHA: launches, kernels, the
    underlying standard builder (whose weight/data tensors the kernels
    share), and the extra padded intermediates. *)
type unfused = {
  u_launches : Machine.Launch.t list;
  u_kernels : Lower.kernel list;
  u_built : Builder.built;
  u_padded : Tensor.t list;  (** QP, KP, VP, AOP *)
}

(** Unfused variant: explicit AddPad kernels materialise padded Q/K/V
    tensors, SDPA reads them without predication, and a RemovePad kernel
    packs the attention output back — FasterTransformer's structure. *)
let mha_unfused_full (cfg : Config.t) ~(target : target) : unfused =
  let builder_target = match target with Gpu -> Builder.Gpu | Cpu -> Builder.Cpu in
  let built = Builder.build ~target:builder_target cfg in
  let t = built.Builder.tensors in
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let effs = Builder.effs_of builder_target in
  (* padded per-head tensors [B][s~32][H][dh] *)
  let padded name =
    let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and jd = Dim.make "j" in
    let tt =
      Tensor.create ~name
        ~dims:[ bd; rd; hd; jd ]
        ~extents:
          [
            Shape.fixed cfg.Config.batch;
            Shape.ragged ~dep:bd ~fn:seq;
            Shape.fixed nh;
            Shape.fixed dh;
          ]
    in
    Tensor.pad_dimension tt rd cfg.Config.seq_pad;
    tt
  in
  let qp = padded "QP" and kp = padded "KP" and vp = padded "VP" and aop = padded "AOP" in
  let addpad name which out =
    let op =
      Op.compute ~name ~out
        ~loop_extents:
          [
            Shape.fixed cfg.Config.batch;
            Shape.ragged ~dep:(nth out.Tensor.dims 0) ~fn:seq;
            Shape.fixed nh;
            Shape.fixed dh;
          ]
        ~reads:[ t.Builder.qkv ]
        (fun idx ->
          let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
          let sb = E.ufun "seq" [ b ] in
          E.select (E.lt r sb)
            (Op.access t.Builder.qkv
               [ b; r; E.add (E.int (which * h)) (E.add (E.mul hh (E.int dh)) j) ])
            (E.float 0.0))
    in
    let s = Schedule.create op in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.elementwise;
    Schedule.set_memory_bound s;
    let b = Schedule.axis_of_dim s 0 and r = Schedule.axis_of_dim s 1 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ b; ro; ri; Schedule.axis_of_dim s 2; Schedule.axis_of_dim s 3 ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; ro ];
        Schedule.bind_thread s ri;
        Schedule.bind_thread s (Schedule.axis_of_dim s 3)
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s (Schedule.axis_of_dim s 3));
    Lower.lower s
  in
  (* QK^T and AttnV reading the padded tensors: no predication needed. *)
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKT_prepadded" ~out:t.Builder.scores
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth t.Builder.scores.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth t.Builder.scores.Tensor.dims 0) ~fn:seq;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ qp; kp ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        E.mul (Op.access qp [ b; r; hh; k ]) (Op.access kp [ b; c; hh; k ]))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s true;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    Schedule.pad_loop s c cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    let co, ci = Schedule.split s c cfg.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ri; ci; k ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro; co ];
        Schedule.bind_thread s ri;
        Schedule.bind_thread s ci
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s ci);
    Lower.lower s
  in
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"AttnV_prepadded" ~out:aop
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth aop.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth aop.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ t.Builder.probs; vp ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let c = nth ridx 0 in
        E.mul (Op.access t.Builder.probs [ b; r; hh; c ]) (Op.access vp [ b; c; hh; j ]))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s true;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let c = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s c cfg.Config.seq_pad;
    Schedule.set_elide_guard s c;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; ri; j; c ];
    (match target with
    | Gpu ->
        List.iter (Schedule.bind_block s) [ b; hh; ro ];
        Schedule.bind_thread s ri;
        Schedule.bind_thread s j
    | Cpu ->
        Schedule.parallelize s b;
        Schedule.vectorize s j);
    Lower.lower s
  in
  (* RemovePad: pack AOP back into the packed AO layout. *)
  let removepad =
    let op =
      Op.compute ~name:"RemovePad" ~out:t.Builder.attn
        ~loop_extents:
          [
            Shape.fixed cfg.Config.batch;
            Shape.ragged ~dep:(nth t.Builder.attn.Tensor.dims 0) ~fn:seq;
            Shape.fixed nh;
            Shape.fixed dh;
          ]
        ~reads:[ aop ]
        (fun idx -> Op.access aop idx)
    in
    let s = Schedule.create op in
    Schedule.set_eff s effs.Builder.elementwise;
    Schedule.set_memory_bound s;
    (match target with
    | Gpu ->
        Schedule.bind_block s (Schedule.axis_of_dim s 0);
        Schedule.bind_thread s (Schedule.axis_of_dim s 3)
    | Cpu -> Schedule.parallelize s (Schedule.axis_of_dim s 0));
    Lower.lower s
  in
  let kernels =
    [
      built.Builder.qkv_proj;
      addpad "AddPadQ" 0 qp;
      addpad "AddPadK" 1 kp;
      addpad "AddPadV" 2 vp;
      qkt;
      built.Builder.softmax;
      attnv;
      removepad;
      built.Builder.proj2;
    ]
  in
  {
    u_launches = List.map Machine.Launch.single kernels;
    u_kernels = kernels;
    u_built = built;
    u_padded = [ qp; kp; vp; aop ];
  }

let mha_unfused cfg ~target =
  let u = mha_unfused_full cfg ~target in
  (u.u_launches, u.u_kernels)

(** Fused variant: the standard builder MHA (pad changes folded into the
    compute kernels). *)
let mha_fused (cfg : Config.t) ~(target : target) : Machine.Launch.t list =
  let builder_target = match target with Gpu -> Builder.Gpu | Cpu -> Builder.Cpu in
  Builder.mha_launches (Builder.build ~target:builder_target cfg)

(* ------------------------------------------------------------------ *)
(* Fig. 23: Dense / +vloops / +vdims / +LoadHoist on constant lengths    *)

type overhead_variant = Dense | Plus_vloops | Plus_vdims | Plus_loadhoist

let overhead_variant_name = function
  | Dense -> "Dense"
  | Plus_vloops -> "+vloops"
  | Plus_vdims -> "+vdims"
  | Plus_loadhoist -> "+LoadHoist"

(** The five MHA operators under the given variant, on a constant-length
    batch (all lengths equal), per Fig. 23's methodology.  [Dense] uses
    constant extents everywhere; [Plus_vloops] makes loops ragged over
    dense storage; [Plus_vdims] adds ragged storage (auxiliary-structure
    accesses in the offsets); [Plus_loadhoist] also hoists them. *)
let overhead_mha (cfg : Config.t) ~(variant : overhead_variant) : (string * Lower.kernel) list
    =
  let len = cfg.Config.lens.(0) in
  Array.iter (fun l -> if l <> len then invalid_arg "overhead_mha: lengths must be constant")
    cfg.Config.lens;
  let dense_storage = match variant with Dense | Plus_vloops -> true | _ -> false in
  let dense_loops = match variant with Dense -> true | _ -> false in
  (* The CUDA compiler hoists the simple auxiliary accesses of the
     projection and AttnV operators by itself; only QK^T's complex fused
     accesses defeat it (§D.7).  So "+vdims" models nvcc-level hoisting
     everywhere except QK^T, and "+LoadHoist" adds CoRa's own hoisting
     there. *)
  let hoist = match variant with Dense | Plus_vloops -> false | Plus_vdims | Plus_loadhoist -> true in
  let hoist_qkt = variant = Plus_loadhoist in
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let b = cfg.Config.batch in
  let effs = Builder.gpu_effs in
  (* tensors *)
  let row_extent bd = if dense_storage then Shape.fixed len else Shape.ragged ~dep:bd ~fn:seq in
  let token name inner =
    let bd = Dim.make "batch" and ld = Dim.make "len" in
    let dims = bd :: ld :: List.map (fun _ -> Dim.make "c") inner in
    let tt = Tensor.create ~name ~dims ~extents:(Shape.fixed b :: row_extent bd :: inner) in
    if not dense_storage then Tensor.set_bulk_pad tt cfg.Config.bulk;
    tt
  in
  let matrix name =
    let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
    let tt =
      Tensor.create ~name
        ~dims:[ bd; rd; hd; cd ]
        ~extents:[ Shape.fixed b; row_extent bd; Shape.fixed nh; row_extent bd ]
    in
    if not dense_storage then begin
      Tensor.pad_dimension tt rd cfg.Config.seq_pad;
      Tensor.pad_dimension tt cd cfg.Config.seq_pad
    end;
    tt
  in
  let in_t = token "OIN" [ Shape.fixed h ] in
  let wqkv = Builder.dense_tensor "OWQKV" [ 3 * h; h ] in
  let qkv = token "OQKV" [ Shape.fixed (3 * h) ] in
  let scores = matrix "OX" and probs = matrix "OXS" in
  let attn = token "OAO" [ Shape.fixed nh; Shape.fixed dh ] in
  let w2 = Builder.dense_tensor "OW2" [ h; h ] in
  let p2 = token "OP2" [ Shape.fixed h ] in
  let loop_rows out_t = if dense_loops then Shape.fixed len else Shape.ragged ~dep:(nth out_t.Tensor.dims 0) ~fn:seq in
  (* Proj1 *)
  let op_p1 =
    let kd = Dim.make "k" in
    Op.reduce ~name:"Proj1" ~out:qkv
      ~loop_extents:[ Shape.fixed b; loop_rows qkv; Shape.fixed (3 * h) ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ in_t; wqkv ]
      (fun idx ridx ->
        E.mul
          (Op.access in_t [ nth idx 0; nth idx 1; nth ridx 0 ])
          (Op.access wqkv [ nth idx 2; nth ridx 0 ]))
  in
  let sched_gemm op =
    let s = Schedule.create op in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.gemm;
    Schedule.set_hoist s hoist;
    let bax = Schedule.axis_of_dim s 0 and l = Schedule.axis_of_dim s 1 in
    let lo, li = Schedule.split s l cfg.Config.seq_pad in
    let jo, ji = Schedule.split s (Schedule.axis_of_dim s 2) (Builder.jtile_for cfg) in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ bax; lo; jo; li; ji; k ];
    List.iter (Schedule.bind_block s) [ bax; lo; jo ];
    Schedule.bind_thread s li;
    Schedule.bind_thread s ji;
    Lower.lower s
  in
  let p1 = sched_gemm op_p1 in
  (* QK^T: fuse the (batch, row) pair when ragged — the configuration §D.7
     singles out as having the most complex auxiliary accesses. *)
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"QKT" ~out:scores
      ~loop_extents:[ Shape.fixed b; loop_rows scores; Shape.fixed nh; loop_rows scores ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ qkv ]
      (fun idx ridx ->
        let bb = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        E.mul
          (Op.access qkv [ bb; r; E.add (E.mul hh (E.int dh)) k ])
          (Op.access qkv [ bb; c; E.add (E.int h) (E.add (E.mul hh (E.int dh)) k) ]))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist_qkt;
    let bax = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    Schedule.pad_loop s c cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    let co, ci = Schedule.split s c cfg.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ bax; hh; ro; co; ri; ci; k ];
    List.iter (Schedule.bind_block s) [ bax; hh; ro; co ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ci;
    Lower.lower s
  in
  (* Softmax *)
  let softmax =
    Custom.softmax ~cfg ~scores ~probs ~target:Custom.Gpu ~eff:effs.Builder.softmax
      ~name:"Softmax" ()
  in
  (* AttnV *)
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"AttnV" ~out:attn
      ~loop_extents:[ Shape.fixed b; loop_rows attn; Shape.fixed nh; Shape.fixed dh ]
      ~rdims:
        [ (cd, if dense_loops then Shape.fixed len else Shape.ragged ~dep:(nth attn.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ probs; qkv ]
      (fun idx ridx ->
        let bb = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let c = nth ridx 0 in
        E.mul
          (Op.access probs [ bb; r; hh; c ])
          (Op.access qkv [ bb; c; E.add (E.int (2 * h)) (E.add (E.mul hh (E.int dh)) j) ]))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let bax = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let c = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s c cfg.Config.seq_pad;
    Schedule.set_elide_guard s c;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ bax; hh; ro; ri; j; c ];
    List.iter (Schedule.bind_block s) [ bax; hh; ro ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s j;
    Lower.lower s
  in
  (* Proj2 *)
  let op_p2 =
    let kd = Dim.make "k" in
    Op.reduce ~name:"Proj2" ~out:p2
      ~loop_extents:[ Shape.fixed b; loop_rows p2; Shape.fixed h ]
      ~rdims:[ (kd, Shape.fixed h) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ attn; w2 ]
      (fun idx ridx ->
        let k = nth ridx 0 in
        E.mul
          (Op.access attn [ nth idx 0; nth idx 1; E.floordiv k (E.int dh); E.imod k (E.int dh) ])
          (Op.access w2 [ nth idx 2; k ]))
  in
  let p2k = sched_gemm op_p2 in
  [ ("Proj1", p1); ("QKT", qkt); ("Softmax", softmax); ("AttnV", attnv); ("Proj2", p2k) ]
