open Cora
module E = Ir.Expr

(** Backward pass of scaled dot-product attention on ragged tensors.

    The paper's memory study (§7.2 "Memory Consumption", §D.5) is about the
    forward activations kept for training's backward pass; this module
    closes the loop by implementing that backward pass itself with CoRa:
    given the saved attention probabilities [P] and the upstream gradient
    [dO], compute [dQ], [dK], [dV].

    Gradient operators exercise raggedness patterns the forward pass does
    not: [dV] and [dK] reduce over the ragged {e row} dimension (the
    forward reductions run over columns), producing ragged outputs from
    ragged reductions. *)

type t = {
  cfg : Config.t;
  qkv : Tensor.t;  (** forward input: fused QKV activations [B][s][3h] *)
  probs : Tensor.t;  (** saved softmax output [B][s~32][H][s~32] *)
  dout : Tensor.t;  (** upstream gradient [B][s][H][dh] *)
  dscores : Tensor.t;  (** gradient w.r.t. pre-softmax scores *)
  dprobs : Tensor.t;  (** gradient w.r.t. probabilities *)
  dq : Tensor.t;
  dk : Tensor.t;
  dv : Tensor.t;
  kernels : Lower.kernel list;
}

let seq = Builder.seq
let nth = List.nth

let build ?(hoist = true) (cfg : Config.t) : t =
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let effs = Builder.gpu_effs in
  let qkv = Builder.token_tensor cfg "BQKV" [ Shape.fixed (3 * h) ] in
  let head_tensor name = Builder.token_tensor cfg name [ Shape.fixed nh; Shape.fixed dh ] in
  let dout = head_tensor "DOUT" in
  let dq = head_tensor "GQ" and dk = head_tensor "GK" and dv = head_tensor "GV" in
  let matrix name =
    let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
    let t =
      Tensor.create ~name
        ~dims:[ bd; rd; hd; cd ]
        ~extents:
          [
            Shape.fixed cfg.Config.batch;
            Shape.ragged ~dep:bd ~fn:seq;
            Shape.fixed nh;
            Shape.ragged ~dep:bd ~fn:seq;
          ]
    in
    Tensor.pad_dimension t rd cfg.Config.seq_pad;
    Tensor.pad_dimension t cd cfg.Config.seq_pad;
    t
  in
  let probs = matrix "BXS" and dprobs = matrix "GXP" and dscores = matrix "GX" in
  let scale = 1.0 /. sqrt (float_of_int dh) in

  (* standard SDPA-style schedule over [b; hh; row-tiles] blocks *)
  let sdpa_schedule ?(elide_red = true) op =
    let s = Schedule.create op in
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let red = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s red cfg.Config.seq_pad;
    if elide_red then Schedule.set_elide_guard s red;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; j; ri; red ];
    List.iter (Schedule.bind_block s) [ b; hh; ro ];
    Schedule.bind_thread s j;
    Schedule.bind_thread s ri;
    Lower.lower s
  in

  (* --- dV[b,c,hh,k] = Σ_r P[b,r,hh,c] · dO[b,r,hh,k] : ragged reduction
         over the ROW dimension --- *)
  let op_dv =
    let rd = Dim.make "r" in
    Op.reduce ~name:"dV" ~out:dv
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth dv.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (rd, Shape.ragged ~dep:(nth dv.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ probs; dout ]
      (fun idx ridx ->
        let b = nth idx 0 and c = nth idx 1 and hh = nth idx 2 and k = nth idx 3 in
        let r = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        (* P at padded rows is zero, but dO's packed storage must not be
           read out of bounds *)
        E.select (E.lt r sb)
          (E.mul (Op.access probs [ b; r; hh; c ]) (Op.access dout [ b; r; hh; k ]))
          (E.float 0.0))
  in
  let kdv = sdpa_schedule op_dv in

  (* --- dP[b,r,hh,c] = Σ_k dO[b,r,hh,k] · V[b,c,hh,k] --- *)
  let op_dp =
    let kd = Dim.make "k" in
    Op.reduce ~name:"dP" ~out:dprobs
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth dprobs.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.ragged ~dep:(nth dprobs.Tensor.dims 0) ~fn:seq;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ dout; qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let v =
          Op.access qkv [ b; c; E.add (E.int (2 * h)) (E.add (E.mul hh (E.int dh)) k) ]
        in
        E.select (E.and_ (E.lt r sb) (E.lt c sb))
          (E.mul (Op.access dout [ b; r; hh; k ]) v)
          (E.float 0.0))
  in
  let kdp =
    let s = Schedule.create op_dp in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    Schedule.pad_loop s c cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    let co, ci = Schedule.split s c cfg.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; co; ri; ci; k ];
    List.iter (Schedule.bind_block s) [ b; hh; ro; co ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ci;
    Lower.lower s
  in

  (* --- softmax backward (custom kernel):
         dS[r, c] = scale · P[r, c] · (dP[r, c] − Σ_c' P[r, c']·dP[r, c'])
         (the 1/sqrt(dh) scale folds the QK^T epilogue's derivative) --- *)
  let softmax_bwd =
    let b = Ir.Var.fresh "b"
    and hh = Ir.Var.fresh "hh"
    and r = Ir.Var.fresh "r"
    and c1 = Ir.Var.fresh "c1"
    and c2 = Ir.Var.fresh "c2" in
    let seqb = E.ufun "seq" [ E.var b ] in
    let aux = ref [] in
    let add_aux defs =
      List.iter
        (fun (d : Prelude.def) ->
          if not (List.exists (fun x -> x.Prelude.name = d.Prelude.name) !aux) then
            aux := !aux @ [ d ])
        defs
    in
    let at tensor cv =
      let off, defs = Storage.lower tensor [ E.var b; E.var r; E.var hh; E.var cv ] in
      add_aux defs;
      (E.load tensor.Tensor.buf off, off)
    in
    let dot = Ir.Var.fresh "dot" in
    let p1, _ = at probs c1 and dp1, _ = at dprobs c1 in
    let p2, _ = at probs c2 and dp2, _ = at dprobs c2 in
    let _, out_off = at dscores c2 in
    let body =
      Ir.Stmt.Alloc
        {
          buf = dot;
          size = E.one;
          body =
            Ir.Stmt.seq
              [
                Ir.Stmt.Store { buf = dot; index = E.zero; value = E.float 0.0 };
                Ir.Stmt.For
                  {
                    var = c1;
                    min = E.zero;
                    extent = seqb;
                    kind = Serial;
                    body =
                      Ir.Stmt.Reduce_store
                        { buf = dot; index = E.zero; value = E.mul p1 dp1; op = Sum };
                  };
                Ir.Stmt.For
                  {
                    var = c2;
                    min = E.zero;
                    extent = E.pad_up seqb cfg.Config.seq_pad;
                    kind = Serial;
                    body =
                      Ir.Stmt.Store
                        {
                          buf = dscores.Tensor.buf;
                          index = out_off;
                          value =
                            E.select (E.lt (E.var c2) seqb)
                              (E.mul (E.float scale)
                                 (E.mul p2 (E.sub dp2 (E.load dot E.zero))))
                              (E.float 0.0);
                        };
                  };
              ];
        }
    in
    let guarded = Ir.Stmt.If (E.lt (E.var r) seqb, body, None) in
    let nest =
      Ir.Stmt.For
        {
          var = b;
          min = E.zero;
          extent = E.int cfg.Config.batch;
          kind = Gpu_block;
          body =
            Ir.Stmt.For
              {
                var = hh;
                min = E.zero;
                extent = E.int nh;
                kind = Gpu_block;
                body =
                  Ir.Stmt.For
                    {
                      var = r;
                      min = E.zero;
                      extent = E.pad_up seqb cfg.Config.seq_pad;
                      kind = Gpu_thread;
                      body = guarded;
                    };
              };
        }
    in
    let nest = if hoist then Hoist.hoist nest else nest in
    {
      Lower.kname = "SoftmaxBwd";
      body = nest;
      aux = !aux;
      triples = [];
      eff = effs.Builder.softmax;
      remap = Schedule.No_remap;
      bound = Schedule.Memory_bound;
      out = dscores;
      reads = [ probs; dprobs ];
    }
  in

  (* --- dQ[b,r,hh,k] = Σ_c dS[b,r,hh,c] · K[b,c,hh,k] --- *)
  let op_dq =
    let cd = Dim.make "c" in
    Op.reduce ~name:"dQ" ~out:dq
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth dq.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, Shape.ragged ~dep:(nth dq.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ dscores; qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and k = nth idx 3 in
        let c = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let kk =
          Op.access qkv [ b; c; E.add (E.int h) (E.add (E.mul hh (E.int dh)) k) ]
        in
        E.select (E.lt c sb) (E.mul (Op.access dscores [ b; r; hh; c ]) kk) (E.float 0.0))
  in
  let kdq = sdpa_schedule op_dq in

  (* --- dK[b,c,hh,k] = Σ_r dS[b,r,hh,c] · Q[b,r,hh,k] : again a ragged
         row reduction --- *)
  let op_dk =
    let rd = Dim.make "r" in
    Op.reduce ~name:"dK" ~out:dk
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth dk.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (rd, Shape.ragged ~dep:(nth dk.Tensor.dims 0) ~fn:seq) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ dscores; qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and c = nth idx 1 and hh = nth idx 2 and k = nth idx 3 in
        let r = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let q = Op.access qkv [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        E.select (E.lt r sb) (E.mul (Op.access dscores [ b; r; hh; c ]) q) (E.float 0.0))
  in
  let kdk = sdpa_schedule op_dk in

  {
    cfg;
    qkv;
    probs;
    dout;
    dscores;
    dprobs;
    dq;
    dk;
    dv;
    kernels = [ kdv; kdp; softmax_bwd; kdq; kdk ];
  }

(** Simulated wall time of the SDPA backward. *)
let time ~device (t : t) =
  let p =
    Machine.Launch.pipeline ~device ~lenv:(Config.lenv t.cfg)
      (List.map Machine.Launch.single t.kernels)
  in
  Machine.Launch.total_ns p
