open Cora
module E = Ir.Expr

(** Masked scaled dot-product attention (§7.2 "Masked SDPA", §D.3,
    Figs. 17–18) — the decoder's SDPA where each row attends only to
    columns [c <= r].

    Three variants mirror Fig. 17:
    - {b CoRa-NoPad}: the attention matrix is stored {e triangularly} —
      nested raggedness: rows are ragged in the batch, and each row's
      column count is ragged in the row index (partially padded to the
      sequence multiple).  QK^T and AttnV compute only the triangle.
    - {b CoRa-Pad}: square (outer-vloop-only padded) storage; QK^T and
      AttnV compute full rows, softmax applies the mask.
    - PyTorch (full padding to the batch max) lives in
      {!Baselines.Frameworks.pytorch_masked_sdpa}. *)

type variant = No_pad | Pad

let seq = Builder.seq
let tri = Lenfun.make "tri"

(** Extend a config's length environment with the triangle function. *)
let lenv (cfg : Config.t) : Lenfun.env = Config.lenv cfg @ [ Lenfun.of_fun "tri" (fun r -> r + 1) ]

type t = {
  cfg : Config.t;
  qkv : Tensor.t;  (** input: fused QKV activations [B][s][3h] *)
  scores : Tensor.t;
  probs : Tensor.t;
  attn : Tensor.t;  (** output [B][s][H][dh] *)
  kernels : Lower.kernel list;
}

(* Triangular attention matrix: [B][row: s(b) ~seq_pad][H][col: row+1 ~seq_pad].
   The col dimension depends on the row dimension — nested raggedness. *)
let tri_matrix (cfg : Config.t) name =
  let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
  let t =
    Tensor.create ~name
      ~dims:[ bd; rd; hd; cd ]
      ~extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:bd ~fn:seq;
          Shape.fixed cfg.Config.heads;
          Shape.ragged ~dep:rd ~fn:tri;
        ]
  in
  Tensor.pad_dimension t rd cfg.Config.seq_pad;
  Tensor.pad_dimension t cd cfg.Config.seq_pad;
  t

let square_matrix (cfg : Config.t) name =
  let bd = Dim.make "batch" and rd = Dim.make "row" and hd = Dim.make "head" and cd = Dim.make "col" in
  let t =
    Tensor.create ~name
      ~dims:[ bd; rd; hd; cd ]
      ~extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:bd ~fn:seq;
          Shape.fixed cfg.Config.heads;
          Shape.ragged ~dep:bd ~fn:seq;
        ]
  in
  Tensor.pad_dimension t rd cfg.Config.seq_pad;
  Tensor.pad_dimension t cd cfg.Config.seq_pad;
  t

let build ?(hoist = true) ~(variant : variant) (cfg : Config.t) : t =
  let h = cfg.Config.hidden and nh = cfg.Config.heads and dh = cfg.Config.head_size in
  let qkv = Builder.token_tensor cfg "MQKV" [ Shape.fixed (3 * h) ] in
  let attn = Builder.token_tensor cfg "MAO" [ Shape.fixed nh; Shape.fixed dh ] in
  let scores, probs =
    match variant with
    | No_pad -> (tri_matrix cfg "MX", tri_matrix cfg "MXS")
    | Pad -> (square_matrix cfg "MX", square_matrix cfg "MXS")
  in
  let nth = List.nth in
  let effs = Builder.gpu_effs in

  (* --- masked QK^T --- *)
  let col_loop_extent =
    match variant with
    | No_pad -> Shape.ragged ~dep:(nth scores.Tensor.dims 1) ~fn:tri
    | Pad -> Shape.ragged ~dep:(nth scores.Tensor.dims 0) ~fn:seq
  in
  let op_qkt =
    let kd = Dim.make "k" in
    Op.reduce ~name:"MaskedQKT" ~out:scores
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth scores.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          col_loop_extent;
        ]
      ~rdims:[ (kd, Shape.fixed dh) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~epilogue:(fun v -> E.mul v (E.float (1.0 /. sqrt (float_of_int dh))))
      ~reads:[ qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and c = nth idx 3 in
        let k = nth ridx 0 in
        let sb = E.ufun "seq" [ b ] in
        let q = Op.access qkv [ b; r; E.add (E.mul hh (E.int dh)) k ] in
        let kk = Op.access qkv [ b; c; E.add (E.int h) (E.add (E.mul hh (E.int dh)) k) ] in
        (* mask: rows beyond the sequence and columns beyond the diagonal
           produce zeros (fused mask application) *)
        E.select (E.and_ (E.lt r sb) (E.le c r)) (E.mul q kk) (E.float 0.0))
  in
  let qkt =
    let s = Schedule.create op_qkt in
    Schedule.set_guard_mode s Schedule.Elide;
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and c = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    Schedule.pad_loop s c cfg.Config.seq_pad;
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    let co, ci = Schedule.split s c cfg.Config.seq_pad in
    let k = Schedule.axis_of_rdim s 0 in
    Schedule.reorder s [ b; hh; ro; ri; co; ci; k ];
    List.iter (Schedule.bind_block s) [ b; hh; ro ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s ci;
    ignore co;
    Lower.lower s
  in

  (* --- masked softmax: normalise over the triangle row prefix --- *)
  let softmax =
    Custom.softmax ~cfg ~scores ~probs ~target:Custom.Gpu ~eff:effs.Builder.softmax
      ~col_extent:(fun ~row ~seq ~batch:_ -> E.min_ (E.add row E.one) seq)
      ~name:"MaskedSoftmax" ()
  in

  (* --- masked AttnV --- *)
  let red_extent =
    match variant with
    | No_pad -> Shape.ragged ~dep:(nth attn.Tensor.dims 1) ~fn:tri
    | Pad -> Shape.ragged ~dep:(nth attn.Tensor.dims 0) ~fn:seq
  in
  let op_attnv =
    let cd = Dim.make "c" in
    Op.reduce ~name:"MaskedAttnV" ~out:attn
      ~loop_extents:
        [
          Shape.fixed cfg.Config.batch;
          Shape.ragged ~dep:(nth attn.Tensor.dims 0) ~fn:seq;
          Shape.fixed nh;
          Shape.fixed dh;
        ]
      ~rdims:[ (cd, red_extent) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ probs; qkv ]
      (fun idx ridx ->
        let b = nth idx 0 and r = nth idx 1 and hh = nth idx 2 and j = nth idx 3 in
        let c = nth ridx 0 in
        let p = Op.access probs [ b; r; hh; c ] in
        let v =
          Op.access qkv [ b; c; E.add (E.int (2 * h)) (E.add (E.mul hh (E.int dh)) j) ]
        in
        E.select (E.le c r) (E.mul p v) (E.float 0.0))
  in
  let attnv =
    let s = Schedule.create op_attnv in
    Schedule.set_eff s effs.Builder.sdpa;
    Schedule.set_hoist s hoist;
    let b = Schedule.axis_of_dim s 0
    and r = Schedule.axis_of_dim s 1
    and hh = Schedule.axis_of_dim s 2
    and j = Schedule.axis_of_dim s 3 in
    Schedule.pad_loop s r cfg.Config.seq_pad;
    let c = Schedule.axis_of_rdim s 0 in
    Schedule.pad_loop s c cfg.Config.seq_pad;
    Schedule.set_elide_guard s c (* padded probability columns are zero *);
    let ro, ri = Schedule.split s r cfg.Config.seq_pad in
    Schedule.reorder s [ b; hh; ro; ri; j; c ];
    List.iter (Schedule.bind_block s) [ b; hh; ro ];
    Schedule.bind_thread s ri;
    Schedule.bind_thread s j;
    Lower.lower s
  in
  { cfg; qkv; scores; probs; attn; kernels = [ qkt; softmax; attnv ] }

(** Simulated wall time. *)
let time ~device (t : t) =
  let p =
    Machine.Launch.pipeline ~device ~lenv:(lenv t.cfg)
      (List.map Machine.Launch.single t.kernels)
  in
  Machine.Launch.total_ns p
