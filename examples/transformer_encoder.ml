(* A full transformer encoder layer on ragged mini-batches (§7.2).

   Builds the nine CoRa kernels of Fig. 3 for a small model, runs them on
   real data through the reference interpreter, checks the result against
   the dense per-sequence reference, and then simulates the paper-scale
   configuration on the V100 machine model against the framework
   baselines.

   Run with:  dune exec examples/transformer_encoder.exe *)

open Cora
open Transformer

let () =
  (* ---- 1. a small model executed for real ---- *)
  let lens = [| 11; 7; 4; 2 |] in
  let cfg = Config.tiny ~lens in
  let lenv = Config.lenv cfg in
  let built = Builder.build ~target:Builder.Gpu cfg in
  let t = built.Builder.tensors in
  Printf.printf "encoder kernels (%d, as in Fig. 3):\n" (List.length (Builder.kernels built));
  List.iter
    (fun (k : Lower.kernel) ->
      Printf.printf "  %-12s  aux structures: %s\n" k.Lower.kname
        (String.concat ", " (List.map (fun (d : Prelude.def) -> d.Prelude.name) k.Lower.aux)))
    (Builder.kernels built);

  let w = Reference.random_weights cfg ~seed:1 in
  let fill_dense (tensor : Tensor.t) a =
    let r = Ragged.alloc tensor lenv in
    Array.blit a 0 (Runtime.Buffer.floats r.Ragged.buf) 0 (Array.length a);
    r
  in
  let weights =
    [
      fill_dense t.Builder.wqkv w.Reference.wqkv; fill_dense t.Builder.bqkv w.Reference.bqkv;
      fill_dense t.Builder.w2 w.Reference.w2; fill_dense t.Builder.b2 w.Reference.b2;
      fill_dense t.Builder.wf1 w.Reference.wf1; fill_dense t.Builder.bf1 w.Reference.bf1;
      fill_dense t.Builder.wf2 w.Reference.wf2; fill_dense t.Builder.bf2 w.Reference.bf2;
    ]
  in
  let data =
    List.map (fun tensor -> Ragged.alloc tensor lenv)
      [ t.Builder.in_t; t.Builder.qkv; t.Builder.scores; t.Builder.probs; t.Builder.attn;
        t.Builder.p2; t.Builder.ln1; t.Builder.f1; t.Builder.out ]
  in
  let rin = List.hd data and rout = List.nth data 8 in
  Ragged.fill rin (fun idx ->
      sin (float_of_int ((31 * List.nth idx 0) + (7 * List.nth idx 1) + List.nth idx 2)) *. 0.5);
  let _ = Exec.run_ragged ~lenv ~tensors:(weights @ data) (Builder.kernels built) in

  (* verify against the dense per-sequence reference *)
  let h = cfg.Config.hidden in
  let max_err = ref 0.0 in
  Array.iteri
    (fun b len ->
      let x = Array.make (len * h) 0.0 in
      for l = 0 to len - 1 do
        for j = 0 to h - 1 do
          x.((l * h) + j) <- Ragged.get rin [ b; l; j ]
        done
      done;
      let expect = Reference.encoder cfg w x ~len in
      for l = 0 to len - 1 do
        for j = 0 to h - 1 do
          max_err :=
            Float.max !max_err
              (Float.abs (Ragged.get rout [ b; l; j ] -. expect.((l * h) + j)))
        done
      done)
    lens;
  Printf.printf "\nmax |CoRa - dense reference| over all outputs: %.2e\n" !max_err;

  (* ---- 2. paper-scale simulation on the V100 model ---- *)
  print_endline "\nsimulated encoder latency, RACE dataset (paper Table 4 row):";
  List.iter
    (fun bs ->
      let lens = Workloads.Datasets.sample_sorted Workloads.Datasets.race ~batch:bs ~seed:1 in
      let cfg = Config.base ~lens in
      let built = Builder.build ~target:Builder.Gpu cfg in
      let p =
        Machine.Launch.pipeline ~device:Machine.Device.v100 ~lenv:(Config.lenv cfg)
          (Builder.launches built)
      in
      let s =
        Baselines.Frameworks.of_config ~batch:bs ~lens ~hidden:512 ~heads:8 ~head_size:64
          ~ff:2048
      in
      let pt =
        Baselines.Analytic.pipeline_ns Machine.Device.v100
          (Baselines.Frameworks.pytorch_encoder s)
      in
      Printf.printf "  batch %3d:  CoRa %6.2f ms   PyTorch %6.2f ms   (%.2fx)\n" bs
        (Machine.Launch.total_ns p /. 1e6) (pt /. 1e6)
        (pt /. Machine.Launch.total_ns p))
    [ 32; 64; 128 ]
