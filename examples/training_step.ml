(* A training step on ragged batches: forward SDPA, then its backward pass,
   both as CoRa programs — the setting the paper's memory study (§7.2
   "Memory Consumption", §D.5) motivates: forward activations are kept for
   the backward pass, and ragged storage shrinks them ~1.8x.

   Run with:  dune exec examples/training_step.exe *)

open Cora
open Transformer

let () =
  let lens = [| 9; 6; 3 |] in
  let cfg = Config.tiny ~lens in
  let lenv = Config.lenv cfg in
  let bwd = Backward.build cfg in
  Printf.printf "backward kernels: %s\n"
    (String.concat " · "
       (List.map (fun (k : Lower.kernel) -> k.Lower.kname) bwd.Backward.kernels));

  (* allocate, fill inputs, seed the saved probabilities via a forward
     softmax over random scores *)
  let tensors =
    List.map (fun tensor -> Ragged.alloc tensor lenv)
      [ bwd.Backward.qkv; bwd.Backward.probs; bwd.Backward.dout; bwd.Backward.dscores;
        bwd.Backward.dprobs; bwd.Backward.dq; bwd.Backward.dk; bwd.Backward.dv ]
  in
  let rqkv = List.nth tensors 0 and rprobs = List.nth tensors 1 and rdout = List.nth tensors 2 in
  Ragged.fill rqkv (fun idx ->
      sin (float_of_int ((17 * List.nth idx 0) + (5 * List.nth idx 1) + List.nth idx 2)) *. 0.4);
  Ragged.fill rdout (fun _ -> 1.0);
  (* uniform attention as the saved forward state, normalised per row *)
  Ragged.iter_indices rprobs (fun idx ->
      let b = List.nth idx 0 in
      Ragged.set rprobs idx (1.0 /. float_of_int lens.(b)));
  let env, prelude = Exec.run_ragged ~lenv ~tensors bwd.Backward.kernels in
  Printf.printf "executed %d flops; prelude built %d aux bytes\n" env.Runtime.Interp.flops
    (Prelude.bytes prelude);
  let rdq = List.nth tensors 5 in
  Printf.printf "dQ[0][0][0][0..3] = %s\n"
    (String.concat " "
       (List.init 4 (fun k -> Printf.sprintf "%+.4f" (Ragged.get rdq [ 0; 0; 0; k ]))));

  (* paper-scale: simulated backward time, ragged vs fully padded batch *)
  print_endline "\nsimulated SDPA backward on the V100 model:";
  List.iter
    (fun (d : Workloads.Datasets.t) ->
      let lens = Workloads.Datasets.sample_sorted d ~batch:64 ~seed:1 in
      let ragged =
        Backward.time ~device:Machine.Device.v100 (Backward.build (Config.base ~lens))
      in
      let maxlen = Array.fold_left max 0 lens in
      let padded_lens = Workloads.Datasets.constant ~len:maxlen ~batch:64 in
      let padded =
        Backward.time ~device:Machine.Device.v100 (Backward.build (Config.base ~lens:padded_lens))
      in
      Printf.printf "  %-8s ragged %7.3f ms   fully padded %7.3f ms   (%.2fx saved)\n"
        d.Workloads.Datasets.name (ragged /. 1e6) (padded /. 1e6) (padded /. ragged))
    [ Workloads.Datasets.race; Workloads.Datasets.mnli; Workloads.Datasets.cola ];

  (* activation memory kept for the backward (Fig. 19's quantity) *)
  let lens = Workloads.Datasets.sample Workloads.Datasets.mnli ~batch:64 ~seed:1 in
  Printf.printf "\nforward activations kept for backward (MNLI, batch 64): ragged/dense = %.2f\n"
    (Analysis.Memory.ragged_to_dense_ratio Analysis.Flops.base lens ~seq_multiple:32
       ~bulk_multiple:64)
