(* Ragged 1-D convolution — the paper's introduction motivates ragged
   tensors with audio of different durations (WaveNet-style models); this
   example expresses a batched 1-D convolution over variable-length signals
   in the CoRa API.

   The output length of each signal is a *derived* length function
   [olen(b) = len(b) - K + 1], showing that length functions are arbitrary
   launch-time functions, not just raw arrays.

   Run with:  dune exec examples/ragged_conv.exe *)

open Cora
module E = Ir.Expr

let () =
  let batch = 4 in
  let lens = [| 13; 8; 21; 5 |] in
  let k = 3 (* kernel taps *) and cin = 2 and cout = 3 in
  let lenv =
    [
      Lenfun.of_array "alen" lens;
      Lenfun.of_fun "olen" (fun b -> lens.(b) - k + 1);
    ]
  in
  let alen = Lenfun.make "alen" and olen = Lenfun.make "olen" in

  (* signal [B][len(b)][Cin], weights [Cout][K][Cin], output [B][olen(b)][Cout] *)
  let bd = Dim.make "b" and td = Dim.make "t" and cd = Dim.make "ci" in
  let signal =
    Tensor.create ~name:"SIG" ~dims:[ bd; td; cd ]
      ~extents:[ Shape.fixed batch; Shape.ragged ~dep:bd ~fn:alen; Shape.fixed cin ]
  in
  let weights =
    let a = Dim.make "co" and b' = Dim.make "k" and c = Dim.make "ci" in
    Tensor.create ~name:"W" ~dims:[ a; b'; c ]
      ~extents:[ Shape.fixed cout; Shape.fixed k; Shape.fixed cin ]
  in
  let out =
    let bd = Dim.make "b" and td = Dim.make "t" and od = Dim.make "co" in
    Tensor.create ~name:"CO" ~dims:[ bd; td; od ]
      ~extents:[ Shape.fixed batch; Shape.ragged ~dep:bd ~fn:olen; Shape.fixed cout ]
  in

  (* conv[b][t][co] = Σ_{kk, ci} sig[b][t+kk][ci] * w[co][kk][ci] *)
  let op =
    let kd = Dim.make "kk" and cid = Dim.make "ci" in
    Op.reduce ~name:"conv1d" ~out
      ~loop_extents:
        [
          Shape.fixed batch;
          Shape.ragged ~dep:(List.nth out.Tensor.dims 0) ~fn:olen;
          Shape.fixed cout;
        ]
      ~rdims:[ (kd, Shape.fixed k); (cid, Shape.fixed cin) ]
      ~combine:Ir.Stmt.Sum
      ~init:(fun _ -> E.float 0.0)
      ~reads:[ signal; weights ]
      (fun idx ridx ->
        let b = List.nth idx 0 and t = List.nth idx 1 and co = List.nth idx 2 in
        let kk = List.nth ridx 0 and ci = List.nth ridx 1 in
        E.mul
          (Op.access signal [ b; E.add t kk; ci ])
          (Op.access weights [ co; kk; ci ]))
  in
  let sched = Schedule.create op in
  Schedule.bind_block sched (Schedule.axis_of_dim sched 0);
  Schedule.bind_thread sched (Schedule.axis_of_dim sched 2);
  let kernel = Lower.lower sched in

  print_endline "---- generated C for the ragged conv1d ----";
  print_endline (Codegen_c.kernel_to_string kernel);

  (* execute and verify *)
  let rs = Ragged.alloc signal lenv
  and rw = Ragged.alloc weights lenv
  and rc = Ragged.alloc out lenv in
  Ragged.fill rs (fun idx ->
      sin (float_of_int ((7 * List.nth idx 0) + (3 * List.nth idx 1) + List.nth idx 2)));
  Ragged.fill rw (fun idx ->
      float_of_int ((List.nth idx 0 + 1) * (List.nth idx 1 + 1)) *. 0.1
      +. float_of_int (List.nth idx 2) *. 0.01);
  let _ = Exec.run_ragged ~lenv ~tensors:[ rs; rw; rc ] [ kernel ] in
  let max_err = ref 0.0 in
  Ragged.iter_indices rc (fun idx ->
      let b = List.nth idx 0 and t = List.nth idx 1 and co = List.nth idx 2 in
      let expect = ref 0.0 in
      for kk = 0 to k - 1 do
        for ci = 0 to cin - 1 do
          expect := !expect +. (Ragged.get rs [ b; t + kk; ci ] *. Ragged.get rw [ co; kk; ci ])
        done
      done;
      max_err := Float.max !max_err (Float.abs (!expect -. Ragged.get rc idx)));
  Printf.printf "max error vs direct convolution: %.2e\n" !max_err;
  Printf.printf "output lengths: %s (inputs %s, %d taps)\n"
    (String.concat " " (Array.to_list (Array.map (fun l -> string_of_int (l - k + 1)) lens)))
    (String.concat " " (Array.to_list (Array.map string_of_int lens)))
    k;

  (* padding waste a dense implementation would pay *)
  let padded = batch * (Array.fold_left max 0 lens - k + 1) in
  let ragged = Array.fold_left (fun a l -> a + l - k + 1) 0 lens in
  Printf.printf "dense padding would compute %d output positions for %d real ones (%.2fx waste)\n"
    padded ragged
    (float_of_int padded /. float_of_int ragged)
