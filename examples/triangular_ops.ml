(* Triangular matrices as ragged tensors (§7.1, §D.3, §D.4).

   A lower-triangular matrix is a ragged tensor whose row slices have
   lengths r+1.  This example:
     1. multiplies a triangular matrix by a dense one (trmm) with
        operation splitting and thread remapping, and verifies the result;
     2. shows the packed triangular storage layout and its auxiliary
        prefix-sum structure;
     3. runs masked (decoder-style) attention with triangular attention
        matrices and compares triangular vs square compute in the machine
        model (Fig. 18).

   Run with:  dune exec examples/triangular_ops.exe *)

open Cora

let () =
  (* ---- trmm ---- *)
  let n = 8 in
  let t = Matmul.Trmm.build ~tile:4 ~variant:Matmul.Trmm.Split_balanced ~n () in
  Printf.printf "trmm lowered into %d kernels (tiles + tail from operation splitting):\n"
    (List.length t.Matmul.Trmm.kernels);
  List.iter
    (fun (k : Lower.kernel) -> Printf.printf "  %s\n" k.Lower.kname)
    t.Matmul.Trmm.kernels;
  let ra, rb, rc =
    Matmul.Trmm.run t
      ~fill_a:(fun idx -> float_of_int ((List.nth idx 0 * 2) + List.nth idx 1 + 1))
      ~fill_b:(fun idx -> float_of_int (List.nth idx 0 + List.nth idx 1 + 1))
  in
  let err = ref 0.0 in
  for r = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expect = ref 0.0 in
      for k = 0 to r do
        expect := !expect +. (Ragged.get ra [ r; k ] *. Ragged.get rb [ k; j ])
      done;
      err := Float.max !err (Float.abs (!expect -. Ragged.get rc [ r; j ]))
    done
  done;
  Printf.printf "trmm max error vs reference: %.2e\n\n" !err;

  (* ---- packed triangular storage ---- *)
  let e = Matmul.Trmm.build_elementwise ~op:`Add ~n:5 () in
  let r = Ragged.alloc e.Matmul.Trmm.ea e.Matmul.Trmm.elenv in
  print_endline "packed triangular offsets (row-major, slices of length r+1):";
  for row = 0 to 4 do
    Printf.printf "  row %d:" row;
    for c = 0 to row do
      Printf.printf " %2d" (Ragged.offset r [ row; c ])
    done;
    print_newline ()
  done;

  (* ---- masked SDPA (Fig. 18) ---- *)
  let lens = Workloads.Datasets.sample_sorted Workloads.Datasets.race ~batch:64 ~seed:1 in
  let cfg = Transformer.Config.base ~lens in
  let time v =
    Transformer.Masked.time ~device:Machine.Device.v100 (Transformer.Masked.build ~variant:v cfg)
    /. 1e6
  in
  let nopad = time Transformer.Masked.No_pad and pad = time Transformer.Masked.Pad in
  Printf.printf
    "\nmasked SDPA, RACE batch 64 (simulated):\n  triangular storage+compute: %.2f ms\n  square storage, masked:     %.2f ms\n  exploiting the mask: %.2fx faster (paper reports 1.56x at batch 128 for RACE)\n"
    nopad pad (pad /. nopad)
