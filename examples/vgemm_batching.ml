(* Variable-sized batched gemm (§7.1, Fig. 8).

   A batch of matrix multiplications where every instance has its own
   dimensions — the motivating workload for ragged loops over fully padded
   storage.  Shows the generated kernel, validates the numerics, and
   reproduces the CoRa vs hand-optimized vs fully-padded comparison in the
   machine model.

   Run with:  dune exec examples/vgemm_batching.exe *)

let () =
  (* ---- real execution on a small workload ---- *)
  let w =
    {
      Workloads.Vgemm_workload.batch = 3;
      ms = [| 4; 8; 2 |];
      ns = [| 6; 2; 4 |];
      ks = [| 2; 4; 6 |];
    }
  in
  let t = Matmul.Vgemm.build ~tile:2 ~target:Matmul.Vgemm.Gpu w in
  print_endline "vgemm kernel (ragged loops over padded storage):";
  print_endline (Ir.Printer.stmt_to_string t.Matmul.Vgemm.kernel.Cora.Lower.body);
  let ra, rb, rc =
    Matmul.Vgemm.run t
      ~fill_a:(fun idx -> float_of_int (List.nth idx 0 + List.nth idx 1 + List.nth idx 2))
      ~fill_b:(fun idx -> float_of_int ((2 * List.nth idx 0) + List.nth idx 1 + List.nth idx 2))
  in
  let err = ref 0.0 in
  for b = 0 to w.Workloads.Vgemm_workload.batch - 1 do
    for i = 0 to w.Workloads.Vgemm_workload.ms.(b) - 1 do
      for j = 0 to w.Workloads.Vgemm_workload.ns.(b) - 1 do
        let expect = ref 0.0 in
        for k = 0 to w.Workloads.Vgemm_workload.ks.(b) - 1 do
          expect :=
            !expect +. (Cora.Ragged.get ra [ b; i; k ] *. Cora.Ragged.get rb [ b; k; j ])
        done;
        err := Float.max !err (Float.abs (!expect -. Cora.Ragged.get rc [ b; i; j ]))
      done
    done
  done;
  Printf.printf "\nvgemm max error vs reference: %.2e\n" !err;

  (* ---- paper-scale comparison (Fig. 8) ---- *)
  print_endline "\nsimulated vgemm on the V100 model (dims: random multiples of 128 in [512,1408]):";
  List.iter
    (fun batch ->
      let w = Workloads.Vgemm_workload.generate ~batch ~seed:1 in
      let cora =
        Matmul.Vgemm.time ~device:Machine.Device.v100
          (Matmul.Vgemm.build ~target:Matmul.Vgemm.Gpu w)
      in
      let hand =
        Baselines.Analytic.pipeline_ns Machine.Device.v100
          (Baselines.Vendor.hand_vgemm ~eff:Baselines.Vendor.li_vgemm_eff ~label:"hand" w)
      in
      let padded =
        Baselines.Analytic.pipeline_ns Machine.Device.v100
          (Baselines.Vendor.padded_batched_gemm ~eff:Baselines.Vendor.cublas_batched_eff
             ~label:"padded" w)
      in
      Printf.printf
        "  batch %3d:  CoRa %6.2f ms   hand-optimized %6.2f ms   fully padded %6.2f ms (%.1f%% wasted flops)\n"
        batch (cora /. 1e6) (hand /. 1e6) (padded /. 1e6)
        (100.0
        *. (Workloads.Vgemm_workload.padded_flops w -. Workloads.Vgemm_workload.ragged_flops w)
        /. Workloads.Vgemm_workload.padded_flops w))
    [ 16; 32; 64; 128 ]
