(* Quickstart: the example operator of Fig. 1 / Listing 1 of the paper.

   A mini-batch of variable-length rows, doubled elementwise:

       O[b][j] = 2 * A[b][j]      for j < lens[b]

   We declare the ragged shapes, express the computation, schedule it with
   loop and storage padding, lower it, print the generated IR and C code,
   and execute it through the reference interpreter.

   Run with:  dune exec examples/quickstart.exe *)

open Cora

let () =
  (* ---- Operator description (Listing 1, lines 1-16) ---- *)
  let batch_dim = Dim.make "batch" and len_dim = Dim.make "len" in
  let lens_fn = Lenfun.make "lens" in

  (* A and O are 2-d ragged tensors: the inner extent is lens(batch). *)
  let extents = [ Shape.fixed 4; Shape.ragged ~dep:batch_dim ~fn:lens_fn ] in
  let a = Tensor.create ~name:"A" ~dims:[ batch_dim; len_dim ] ~extents in
  let o = Tensor.create ~name:"O" ~dims:[ batch_dim; len_dim ] ~extents in

  (* Storage padding: pad O's variable dimension to a multiple of 4
     (Listing 1, line 19: pad_dimension). *)
  Tensor.pad_dimension o len_dim 4;

  let op =
    Op.compute ~name:"double" ~out:o ~loop_extents:extents ~reads:[ a ] (fun idx ->
        Ir.Expr.mul (Ir.Expr.float 2.0) (Op.access a idx))
  in

  (* ---- Scheduling (Listing 1, lines 17-20) ---- *)
  let sched = Schedule.create op in
  (* Loop padding: pad the vloop to a multiple of 2 (line 18: pad_loop). *)
  Schedule.pad_loop sched (Schedule.axis_of_dim sched 1) 2;
  (* Fuse the batch and length loops (line 20: fuse); here we instead keep
     them nested and bind the outer loop to thread blocks to show the
     simplest schedule. *)
  Schedule.bind_block sched (Schedule.axis_of_dim sched 0);

  (* ---- Lowering ---- *)
  let kernel = Lower.lower sched in
  print_endline "---- lowered IR ----";
  print_endline (Ir.Printer.stmt_to_string kernel.Lower.body);
  print_endline "\n---- generated C ----";
  print_endline (Codegen_c.kernel_to_string kernel);

  (* ---- Execution (Fig. 4's runtime pipeline) ---- *)
  let lens = [| 3; 1; 4; 2 |] in
  let lenv = [ Lenfun.of_array "lens" lens ] in
  let ra = Ragged.alloc a lenv and ro = Ragged.alloc o lenv in
  Ragged.fill ra (fun idx -> float_of_int ((10 * List.nth idx 0) + List.nth idx 1));
  let env, prelude = Exec.run_ragged ~lenv ~tensors:[ ra; ro ] [ kernel ] in
  Printf.printf "\n---- results (%d flops executed, %d aux bytes built by the prelude) ----\n"
    env.Runtime.Interp.flops (Prelude.bytes prelude);
  Array.iteri
    (fun b n ->
      Printf.printf "O[%d] = [" b;
      for j = 0 to n - 1 do
        Printf.printf " %g" (Ragged.get ro [ b; j ])
      done;
      print_endline " ]")
    lens
