(* Thread remapping for load balancing (§4.1, Fig. 14; §D.2).

   Vloop nests produce thread blocks with very different amounts of work.
   The hardware scheduler assigns blocks to SMs in issue order, so issuing
   the heavy blocks last leaves a long tail where most SMs idle.  CoRa lets
   the user remap the issue order; this example shows the effect directly
   on the block scheduler, then on the real trmm kernels of Fig. 9.

   Run with:  dune exec examples/load_balancing.exe *)

let () =
  (* an ascending triangular workload, like trmm's row blocks *)
  let blocks = Array.init 256 (fun i -> float_of_int (i + 1)) in
  let n_proc = 80 in
  let asc = Machine.Gpusim.makespan ~n_proc blocks in
  let desc =
    Machine.Gpusim.makespan ~n_proc ~policy:Machine.Gpusim.Descending_work blocks
  in
  let ideal = Array.fold_left ( +. ) 0.0 blocks /. float_of_int n_proc in
  Printf.printf "256 triangular blocks on %d processors:\n" n_proc;
  Printf.printf "  lightest-first issue : makespan %8.1f (%.1f%% utilisation)\n" asc
    (100.0 *. Machine.Gpusim.utilisation ~n_proc blocks);
  Printf.printf "  heaviest-first issue : makespan %8.1f (%.1f%% utilisation)\n" desc
    (100.0
    *. Machine.Gpusim.utilisation ~n_proc ~policy:Machine.Gpusim.Descending_work blocks);
  Printf.printf "  lower bound          : %8.1f\n\n" ideal;

  (* the same effect on the real trmm kernels *)
  print_endline "trmm on the V100 model (Fig. 9's last two bars):";
  List.iter
    (fun n ->
      let t v = Matmul.Trmm.time ~device:Machine.Device.v100 (Matmul.Trmm.build ~variant:v ~n ()) in
      let unbalanced = t Matmul.Trmm.Split_unbalanced in
      let balanced = t Matmul.Trmm.Split_balanced in
      Printf.printf "  N=%-5d  issue-order %8.3f ms   heaviest-first %8.3f ms  (%.1f%% better)\n"
        n (unbalanced /. 1e6) (balanced /. 1e6)
        (100.0 *. (1.0 -. (balanced /. unbalanced))))
    [ 512; 1024; 2048; 4096 ];
  ()
