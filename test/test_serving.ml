(* Serving-layer tests: the caches must be invisible to results.

   - differential: for each workload, a caching server and a cache-bypassed
     server replay the same 3-repeat stream and must produce bit-identical
     outputs and identical interpreter counters, while the caching server's
     hit counters go 0 -> nonzero on repeats;
   - hit rate: a x10 repeated-batch stream must hit both caches on every
     request after the first (>= 80%), with zero prelude host work on hits;
   - invalidation: mutating one sequence length must miss the prelude cache
     (fresh build) and still produce results identical to an uncached run;
   - determinism: regenerating a stream from the same seed replays to the
     same checksums. *)

let toy_dataset =
  { Workloads.Datasets.name = "toy"; min_len = 2; mean_len = 5; max_len = 9 }

let workloads () =
  [
    Serving.Workload.fig1 ~batch:4 ~max_len:6 ();
    Serving.Workload.vgemm ~batch:2 ~tile:4 ~dims_choices:[| 4; 8; 12 |] ();
    Serving.Workload.trmm ~tile:4 ~sizes:[| 8; 12; 16 |] ();
    Serving.Workload.encoder ~batch:3 ~dataset:toy_dataset ();
  ]

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b

let get_out (r : Serving.Server.response) =
  match r.Serving.Server.out with
  | Some a -> a
  | None -> Alcotest.fail "response carries no output"

let get_counters (r : Serving.Server.response) =
  match r.Serving.Server.counters with
  | Some c -> c
  | None -> Alcotest.fail "response carries no counters"

(* Two distinct shapes, repeated three times each, interleaved. *)
let three_repeat_stream (w : Serving.Workload.t) seed =
  let rng = Workloads.Rng.create seed in
  let s1 = w.Serving.Workload.sample rng in
  let s2 = w.Serving.Workload.sample rng in
  [ s1; s2; s1; s2; s1; s2 ]

let test_differential (w : Serving.Workload.t) () =
  Serving.Server.reset_caches ();
  let cached = Serving.Server.create () in
  let bypass = Serving.Server.create ~compile_cache:false ~prelude_cache:false () in
  let items = three_repeat_stream w 7 in
  let ra = List.map (Serving.Server.handle cached w) items in
  let rb = List.map (Serving.Server.handle bypass w) items in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s request %d: outputs bit-identical" w.Serving.Workload.name i)
        true
        (bits_equal (get_out a) (get_out b));
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%s request %d: interp counters identical" w.Serving.Workload.name i)
        (get_counters b) (get_counters a))
    (List.combine ra rb);
  (* hit counters: cold on the first request, warm on the repeats *)
  let first = List.hd ra and last = List.nth ra (List.length ra - 1) in
  Alcotest.(check int) "first request: no compile hits" 0 first.Serving.Server.compile_hits;
  Alcotest.(check bool) "first request: prelude miss" false first.Serving.Server.prelude_hit;
  Alcotest.(check bool) "repeat: compile hits nonzero" true
    (last.Serving.Server.compile_hits > 0);
  Alcotest.(check int) "repeat: no compile misses" 0 last.Serving.Server.compile_misses;
  Alcotest.(check bool) "repeat: prelude hit" true last.Serving.Server.prelude_hit;
  (* the bypass server must never touch a cache *)
  List.iter
    (fun (r : Serving.Server.response) ->
      Alcotest.(check int) "bypass: no compile hits" 0 r.Serving.Server.compile_hits;
      Alcotest.(check bool) "bypass: no prelude hit" false r.Serving.Server.prelude_hit)
    rb

(* The acceptance scenario: the same raggedness signature x10 must hit both
   caches on at least 80% of requests, with zero prelude host work on hits. *)
let test_hit_rate_10x () =
  Serving.Server.reset_caches ();
  let w = Serving.Workload.fig1 ~batch:4 ~max_len:6 () in
  let rng = Workloads.Rng.create 11 in
  let shape = w.Serving.Workload.sample rng in
  let stream = Serving.Stream.repeat ~shape ~n:10 ~seed:11 in
  let srv = Serving.Server.create () in
  let rs = Serving.Stream.replay srv w stream in
  let hits = List.filter (fun r -> r.Serving.Server.prelude_hit) rs in
  let c_hits = List.fold_left (fun a r -> a + r.Serving.Server.compile_hits) 0 rs in
  let c_total =
    List.fold_left
      (fun a (r : Serving.Server.response) ->
        a + r.Serving.Server.compile_hits + r.Serving.Server.compile_misses)
      0 rs
  in
  Alcotest.(check bool) "prelude hit rate >= 80%" true
    (float_of_int (List.length hits) /. 10.0 >= 0.8);
  Alcotest.(check bool) "compile hit rate >= 80%" true
    (float_of_int c_hits /. float_of_int c_total >= 0.8);
  List.iter
    (fun (r : Serving.Server.response) ->
      Alcotest.(check (float 0.0)) "hit: prelude host work is 0" 0.0
        r.Serving.Server.prelude_host_ns;
      Alcotest.(check (float 0.0)) "hit: prelude copy is 0" 0.0
        r.Serving.Server.prelude_copy_ns)
    hits;
  (* all 10 responses identical outputs *)
  let out0 = get_out (List.hd rs) in
  List.iter (fun r -> Alcotest.(check bool) "same output" true (bits_equal out0 (get_out r))) rs

(* Regression: prelude-cache invalidation.  Mutating one sequence length
   must change the raggedness signature (fresh build, a miss) and produce
   exactly the results an uncached server computes for the mutated batch —
   i.e. stale reuse is impossible. *)
let test_invalidation () =
  Serving.Server.reset_caches ();
  let w = Serving.Workload.fig1 ~batch:4 ~max_len:6 () in
  let srv = Serving.Server.create () in
  let shape = [| 5; 3; 6; 2 |] in
  let r1 = Serving.Server.handle srv w shape in
  let r1' = Serving.Server.handle srv w shape in
  Alcotest.(check bool) "warm: prelude hit" true r1'.Serving.Server.prelude_hit;
  (* mutate one sequence length *)
  let mutated = Array.copy shape in
  mutated.(2) <- mutated.(2) + 1;
  let r2 = Serving.Server.handle srv w mutated in
  Alcotest.(check bool) "mutated batch: prelude miss (fresh build)" false
    r2.Serving.Server.prelude_hit;
  Alcotest.(check bool) "mutated batch: host work nonzero" true
    (r2.Serving.Server.prelude_host_ns > 0.0);
  let bypass = Serving.Server.create ~compile_cache:false ~prelude_cache:false () in
  let rb = Serving.Server.handle bypass w mutated in
  Alcotest.(check bool) "mutated batch: results identical to uncached" true
    (bits_equal (get_out r2) (get_out rb));
  (* the original shape is still cached and still correct *)
  let r3 = Serving.Server.handle srv w shape in
  Alcotest.(check bool) "original shape still hits" true r3.Serving.Server.prelude_hit;
  Alcotest.(check bool) "original shape unchanged" true
    (bits_equal (get_out r1) (get_out r3))

(* The caches are bounded: serving more distinct shapes than the prelude
   cache holds must evict (never grow past the cap), keep the most recent
   shapes, and never change results. *)
let test_prelude_cache_cap () =
  Serving.Server.reset_caches ();
  let saved = Cora.Prelude_cache.capacity () in
  Fun.protect
    ~finally:(fun () ->
      Cora.Prelude_cache.set_capacity saved;
      Serving.Server.reset_caches ())
    (fun () ->
      Cora.Prelude_cache.set_capacity 2;
      Alcotest.(check int) "cap applied" 2 (Cora.Prelude_cache.capacity ());
      let w = Serving.Workload.fig1 ~batch:4 ~max_len:6 () in
      let srv = Serving.Server.create () in
      let shapes =
        [ [| 1; 2; 3; 4 |]; [| 2; 3; 4; 5 |]; [| 3; 4; 5; 6 |]; [| 4; 5; 6; 1 |] ]
      in
      let evicted () =
        Obs.Metrics.value (Obs.Metrics.counter "prelude_cache.evicted")
      in
      let before = evicted () in
      List.iter (fun s -> ignore (Serving.Server.handle srv w s)) shapes;
      Alcotest.(check bool) "size never exceeds cap" true
        (Cora.Prelude_cache.size () <= 2);
      Alcotest.(check bool) "evictions counted" true (evicted () > before);
      (* LRU: the last-served shape survived, the first was evicted *)
      let recent = Serving.Server.handle srv w (List.nth shapes 3) in
      Alcotest.(check bool) "most recent shape still hits" true
        recent.Serving.Server.prelude_hit;
      let oldest = Serving.Server.handle srv w (List.nth shapes 0) in
      Alcotest.(check bool) "oldest shape was evicted" false
        oldest.Serving.Server.prelude_hit;
      (* an evicted entry is rebuilt, not wrong *)
      let bypass = Serving.Server.create ~compile_cache:false ~prelude_cache:false () in
      let rb = Serving.Server.handle bypass w (List.nth shapes 0) in
      Alcotest.(check bool) "rebuilt results identical to uncached" true
        (bits_equal (get_out oldest) (get_out rb));
      (* the clamp: a nonsensical cap becomes 1, not 0 *)
      Cora.Prelude_cache.set_capacity 0;
      Alcotest.(check int) "cap clamps to 1" 1 (Cora.Prelude_cache.capacity ()))

(* Same bound on the compile memo. *)
let test_compile_memo_cap () =
  Serving.Server.reset_caches ();
  let saved = Cora.Lower.memo_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Cora.Lower.set_memo_capacity saved;
      Serving.Server.reset_caches ())
    (fun () ->
      Cora.Lower.set_memo_capacity 1;
      let w1 = Serving.Workload.fig1 ~batch:4 ~max_len:6 () in
      let w2 = Serving.Workload.trmm ~tile:4 ~sizes:[| 8; 12 |] () in
      let srv = Serving.Server.create () in
      let bypass = Serving.Server.create ~compile_cache:false ~prelude_cache:false () in
      let evicted () =
        Obs.Metrics.value (Obs.Metrics.counter "compile_cache.evicted")
      in
      let before = evicted () in
      (* alternate two workloads whose kernels cannot share one slot *)
      List.iter
        (fun (w, shape) ->
          let r = Serving.Server.handle srv w shape in
          let rb = Serving.Server.handle bypass w shape in
          Alcotest.(check bool)
            (w.Serving.Workload.name ^ ": results unchanged under eviction")
            true
            (bits_equal (get_out r) (get_out rb));
          Alcotest.(check bool) "memo never exceeds cap" true
            (Cora.Lower.memo_size () <= 1))
        [
          (w1, [| 5; 3; 6; 2 |]); (w2, [| 8 |]); (w1, [| 5; 3; 6; 2 |]); (w2, [| 12 |]);
        ];
      Alcotest.(check bool) "evictions counted" true (evicted () > before))

(* Streams regenerate identically from their seed, and replay to the same
   checksums. *)
let test_determinism () =
  Serving.Server.reset_caches ();
  let w = Serving.Workload.trmm ~tile:4 ~sizes:[| 8; 12 |] () in
  let s1 = Serving.Stream.generate ~workload:w ~pool:2 ~n:6 ~seed:5 () in
  let s2 = Serving.Stream.generate ~workload:w ~pool:2 ~n:6 ~seed:5 () in
  Alcotest.(check bool) "same items" true (s1.Serving.Stream.items = s2.Serving.Stream.items);
  let srv = Serving.Server.create () in
  let c1 = List.map (fun r -> r.Serving.Server.checksum) (Serving.Stream.replay srv w s1) in
  Serving.Server.reset_caches ();
  let c2 = List.map (fun r -> r.Serving.Server.checksum) (Serving.Stream.replay srv w s2) in
  Alcotest.(check (list (float 0.0))) "same checksums" c1 c2

let () =
  let diff =
    List.map
      (fun (w : Serving.Workload.t) ->
        Alcotest.test_case ("differential " ^ w.Serving.Workload.name) `Quick
          (test_differential w))
      (workloads ())
  in
  Alcotest.run "serving"
    [
      ("differential", diff);
      ( "caches",
        [
          Alcotest.test_case "x10 repeated batch hits >= 80%" `Quick test_hit_rate_10x;
          Alcotest.test_case "length mutation invalidates" `Quick test_invalidation;
          Alcotest.test_case "prelude cache cap respected" `Quick test_prelude_cache_cap;
          Alcotest.test_case "compile memo cap respected" `Quick test_compile_memo_cap;
          Alcotest.test_case "stream determinism" `Quick test_determinism;
        ] );
    ]
