(* Observability layer: span nesting and ordering, Chrome trace-event
   round-trip through the bundled JSON parser, histogram percentile math,
   counter sharding across domains, the zero-allocation disabled path, and
   the interpreter-counter -> metrics-registry flush. *)

open Obs

let reset_all () =
  Span.set_enabled false;
  Metrics.reset ();
  Trace_sink.clear ()

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  reset_all ();
  Span.set_enabled true;
  Span.with_span "outer" (fun () ->
      Span.with_span "first" (fun () -> ignore (Sys.opaque_identity (Array.make 10 0)));
      Span.with_span ~attrs:[ ("k", Trace_sink.Int 7) ] "second" (fun () -> ()));
  Span.set_enabled false;
  let evs = Trace_sink.events () in
  Alcotest.(check (list string))
    "start-time order" [ "outer"; "first"; "second" ]
    (List.map (fun e -> e.Trace_sink.name) evs);
  let find n = List.find (fun e -> e.Trace_sink.name = n) evs in
  let outer = find "outer" and first = find "first" and second = find "second" in
  Alcotest.(check int) "outer depth" 0 outer.Trace_sink.depth;
  Alcotest.(check int) "first depth" 1 first.Trace_sink.depth;
  Alcotest.(check int) "second depth" 1 second.Trace_sink.depth;
  Alcotest.(check bool) "children start within the parent" true
    (first.Trace_sink.ts_us >= outer.Trace_sink.ts_us
    && second.Trace_sink.ts_us >= first.Trace_sink.ts_us);
  (* enclosure, with a microsecond of clock-rounding tolerance *)
  Alcotest.(check bool) "children end within the parent" true
    (second.Trace_sink.ts_us +. second.Trace_sink.dur_us
    <= outer.Trace_sink.ts_us +. outer.Trace_sink.dur_us +. 1.0);
  Alcotest.(check bool) "attrs survive" true
    (List.mem_assoc "k" second.Trace_sink.attrs)

let test_span_exception_closes () =
  reset_all ();
  Span.set_enabled true;
  (try Span.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Span.set_enabled false;
  match Trace_sink.events () with
  | [ e ] ->
      Alcotest.(check string) "span recorded" "boom" e.Trace_sink.name;
      Alcotest.(check bool) "error attr" true (List.mem_assoc "error" e.Trace_sink.attrs)
  | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs)

(* ---------------- Chrome trace-event round-trip ---------------- *)

let test_chrome_roundtrip () =
  reset_all ();
  Span.set_enabled true;
  Span.with_span "root" (fun () ->
      Span.with_span
        ~attrs:[ ("s", Trace_sink.Str "x\"y\\z"); ("f", Trace_sink.Float 1.5) ]
        "leaf"
        (fun () -> ()));
  Span.set_enabled false;
  let doc = Trace_sink.to_chrome_string () in
  match Json.parse doc with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok j -> (
      let evs =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check int) "one complete event per span" 2 (List.length evs);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "ph = X" true (Json.member "ph" ev = Some (Json.String "X")))
        evs;
      let leaf =
        List.find (fun ev -> Json.member "name" ev = Some (Json.String "leaf")) evs
      in
      match Option.bind (Json.member "args" leaf) (Json.member "s") with
      | Some (Json.String s) ->
          Alcotest.(check string) "escaped attr round-trips" "x\"y\\z" s
      | _ -> Alcotest.fail "leaf args.s missing")

(* ---------------- histograms ---------------- *)

let test_histogram_percentiles () =
  reset_all ();
  let h = Metrics.histogram "test.latency" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.count h);
  let feq = Alcotest.(check (float 1e-9)) in
  feq "p0 = min" 1.0 (Metrics.percentile h 0.0);
  feq "p100 = max" 100.0 (Metrics.percentile h 100.0);
  (* linear interpolation between closest ranks *)
  feq "p50" 50.5 (Metrics.percentile h 50.0);
  feq "p90" 90.1 (Metrics.percentile h 90.0);
  let s = Metrics.summarize h in
  feq "mean" 50.5 s.Metrics.mean;
  feq "sum" 5050.0 s.Metrics.sum

let test_percentile_of_nondestructive () =
  reset_all ();
  (* regression: percentile_of used to sort its argument in place, so a
     caller computing several percentiles over a window of an array it
     still owned saw the window reordered under it *)
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  let feq = Alcotest.(check (float 1e-9)) in
  feq "p50 of unsorted input" 3.0 (Metrics.percentile_of xs 50.0);
  Alcotest.(check (array (float 0.0)))
    "input array untouched" [| 5.0; 1.0; 4.0; 2.0; 3.0 |] xs;
  feq "p0" 1.0 (Metrics.percentile_of xs 0.0);
  feq "p100" 5.0 (Metrics.percentile_of xs 100.0)

(* ---------------- counters across domains ---------------- *)

let test_counter_sharded () =
  reset_all ();
  let c = Metrics.counter "test.hits" in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join workers;
  Metrics.add c 5;
  Alcotest.(check int) "shards sum" 4005 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle stays valid" 0 (Metrics.value c)

(* ---------------- zero-cost disabled path ---------------- *)

let test_noop_no_alloc () =
  reset_all ();
  let f = Sys.opaque_identity (fun () -> 0) in
  for _ = 1 to 100 do
    ignore (Span.with_span "warmup" f)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Span.with_span "hot" f)
  done;
  let after = Gc.minor_words () in
  (* small slack for the Gc.minor_words boxes themselves *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled with_span allocates nothing (%.0f words)" (after -. before))
    true
    (after -. before < 100.0);
  Alcotest.(check int) "events" 0 (List.length (Trace_sink.events ()))

(* ---------------- interpreter counters -> registry ---------------- *)

let test_interp_flush_matches () =
  reset_all ();
  let batch_dim = Cora.Dim.make "batch" and len_dim = Cora.Dim.make "len" in
  let lens_fn = Cora.Lenfun.make "lens" in
  let extents = [ Cora.Shape.fixed 4; Cora.Shape.ragged ~dep:batch_dim ~fn:lens_fn ] in
  let a = Cora.Tensor.create ~name:"A" ~dims:[ batch_dim; len_dim ] ~extents in
  let o = Cora.Tensor.create ~name:"O" ~dims:[ batch_dim; len_dim ] ~extents in
  let op =
    Cora.Op.compute ~name:"double" ~out:o ~loop_extents:extents ~reads:[ a ] (fun idx ->
        Ir.Expr.mul (Ir.Expr.float 2.0) (Cora.Op.access a idx))
  in
  let kernel = Cora.Lower.lower (Cora.Schedule.create op) in
  let lenv = [ Cora.Lenfun.of_array "lens" [| 3; 1; 4; 2 |] ] in
  let ra = Cora.Ragged.alloc a lenv and ro = Cora.Ragged.alloc o lenv in
  Cora.Ragged.fill ra (fun _ -> 1.0);
  let env, _ = Cora.Exec.run_ragged ~lenv ~tensors:[ ra; ro ] [ kernel ] in
  let reg name = Metrics.value (Metrics.counter name) in
  Alcotest.(check int) "loads" env.Runtime.Interp.loads (reg "interp.loads");
  Alcotest.(check int) "stores" env.Runtime.Interp.stores (reg "interp.stores");
  Alcotest.(check int) "flops" env.Runtime.Interp.flops (reg "interp.flops");
  Alcotest.(check int) "indirect" env.Runtime.Interp.indirect (reg "interp.indirect");
  Alcotest.(check int) "guards" env.Runtime.Interp.guards (reg "interp.guards");
  Alcotest.(check bool) "something executed" true (env.Runtime.Interp.stores > 0)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "closed on exception" `Quick test_span_exception_closes;
          Alcotest.test_case "chrome JSON round-trip" `Quick test_chrome_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "percentile_of leaves input intact" `Quick
            test_percentile_of_nondestructive;
          Alcotest.test_case "counters shard across domains" `Quick test_counter_sharded;
          Alcotest.test_case "interp flush matches env" `Quick test_interp_flush_matches;
        ] );
      ( "overhead",
        [ Alcotest.test_case "disabled path allocation-free" `Quick test_noop_no_alloc ] );
    ]
