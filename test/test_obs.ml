(* Observability layer: span nesting and ordering, Chrome trace-event
   round-trip through the bundled JSON parser, histogram percentile math,
   counter sharding across domains, the zero-allocation disabled path, and
   the interpreter-counter -> metrics-registry flush. *)

open Obs

let reset_all () =
  Span.set_enabled false;
  Metrics.reset ();
  Trace_sink.clear ()

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  reset_all ();
  Span.set_enabled true;
  Span.with_span "outer" (fun () ->
      Span.with_span "first" (fun () -> ignore (Sys.opaque_identity (Array.make 10 0)));
      Span.with_span ~attrs:[ ("k", Trace_sink.Int 7) ] "second" (fun () -> ()));
  Span.set_enabled false;
  let evs = Trace_sink.events () in
  Alcotest.(check (list string))
    "start-time order" [ "outer"; "first"; "second" ]
    (List.map (fun e -> e.Trace_sink.name) evs);
  let find n = List.find (fun e -> e.Trace_sink.name = n) evs in
  let outer = find "outer" and first = find "first" and second = find "second" in
  Alcotest.(check int) "outer depth" 0 outer.Trace_sink.depth;
  Alcotest.(check int) "first depth" 1 first.Trace_sink.depth;
  Alcotest.(check int) "second depth" 1 second.Trace_sink.depth;
  Alcotest.(check bool) "children start within the parent" true
    (first.Trace_sink.ts_us >= outer.Trace_sink.ts_us
    && second.Trace_sink.ts_us >= first.Trace_sink.ts_us);
  (* enclosure, with a microsecond of clock-rounding tolerance *)
  Alcotest.(check bool) "children end within the parent" true
    (second.Trace_sink.ts_us +. second.Trace_sink.dur_us
    <= outer.Trace_sink.ts_us +. outer.Trace_sink.dur_us +. 1.0);
  Alcotest.(check bool) "attrs survive" true
    (List.mem_assoc "k" second.Trace_sink.attrs)

let test_span_exception_closes () =
  reset_all ();
  Span.set_enabled true;
  (try Span.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Span.set_enabled false;
  match Trace_sink.events () with
  | [ e ] ->
      Alcotest.(check string) "span recorded" "boom" e.Trace_sink.name;
      Alcotest.(check bool) "error attr" true (List.mem_assoc "error" e.Trace_sink.attrs)
  | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs)

(* ---------------- Chrome trace-event round-trip ---------------- *)

let test_chrome_roundtrip () =
  reset_all ();
  Span.set_enabled true;
  Span.with_span "root" (fun () ->
      Span.with_span
        ~attrs:[ ("s", Trace_sink.Str "x\"y\\z"); ("f", Trace_sink.Float 1.5) ]
        "leaf"
        (fun () -> ()));
  Span.set_enabled false;
  let doc = Trace_sink.to_chrome_string () in
  match Json.parse doc with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok j -> (
      let evs =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check int) "one complete event per span" 2 (List.length evs);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "ph = X" true (Json.member "ph" ev = Some (Json.String "X")))
        evs;
      let leaf =
        List.find (fun ev -> Json.member "name" ev = Some (Json.String "leaf")) evs
      in
      match Option.bind (Json.member "args" leaf) (Json.member "s") with
      | Some (Json.String s) ->
          Alcotest.(check string) "escaped attr round-trips" "x\"y\\z" s
      | _ -> Alcotest.fail "leaf args.s missing")

(* ---------------- histograms ---------------- *)

(* The histogram stores log-linear buckets, not samples: percentile
   estimates are only promised to land within [relative_error_bound] of
   the exact sample at the same rank (n/sum/min/max stay exact). *)
let check_within_bound name ~exact est =
  let tol = (Metrics.relative_error_bound *. Float.abs exact) +. 1e-12 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%g - %g| <= %g" name est exact tol)
    true
    (Float.abs (est -. exact) <= tol)

let test_histogram_percentiles () =
  reset_all ();
  let h = Metrics.histogram "test.latency" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.count h);
  let feq = Alcotest.(check (float 1e-9)) in
  (* extremes clamp to the exact observed range *)
  feq "p0 = min" 1.0 (Metrics.percentile h 0.0);
  feq "p100 = max" 100.0 (Metrics.percentile h 100.0);
  check_within_bound "p50" ~exact:50.5 (Metrics.percentile h 50.0);
  check_within_bound "p90" ~exact:90.1 (Metrics.percentile h 90.0);
  let s = Metrics.summarize h in
  feq "mean" 50.5 s.Metrics.mean;
  feq "sum" 5050.0 s.Metrics.sum;
  feq "min exact" 1.0 s.Metrics.min_v;
  feq "max exact" 100.0 s.Metrics.max_v

let test_histogram_error_bound () =
  reset_all ();
  (* log-uniform samples spanning ~9 decades: every octave of the
     bucket array gets exercised, and each percentile estimate must stay
     within the documented relative error of the exact oracle *)
  let h = Metrics.histogram "test.logu" in
  let st = Random.State.make [| 7; 11; 13 |] in
  let xs = Array.init 5000 (fun _ -> Float.exp (Random.State.float st 20.0 -. 10.0)) in
  Array.iter (Metrics.observe h) xs;
  Alcotest.(check int) "count" (Array.length xs) (Metrics.count h);
  List.iter
    (fun q ->
      check_within_bound
        (Printf.sprintf "p%g" q)
        ~exact:(Metrics.percentile_of xs q)
        (Metrics.percentile h q))
    [ 0.0; 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ];
  (* the bucket series the exposition renders: strictly increasing
     bounds, non-decreasing cumulative counts, closing at the total *)
  let buckets = Metrics.cumulative_buckets h in
  Alcotest.(check bool) "has buckets" true (buckets <> []);
  let rec walk prev_le prev_cum = function
    | [] -> ()
    | (le, cum) :: rest ->
        Alcotest.(check bool) "le strictly increasing" true (le > prev_le);
        Alcotest.(check bool) "cumulative non-decreasing" true (cum >= prev_cum);
        walk le cum rest
  in
  walk neg_infinity 0 buckets;
  Alcotest.(check int)
    "last cumulative = count"
    (Metrics.count h)
    (snd (List.nth buckets (List.length buckets - 1)))

let test_histogram_edge_cases () =
  reset_all ();
  let h = Metrics.histogram "test.edge" in
  Alcotest.(check int) "empty count" 0 (Metrics.count h);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Metrics.percentile h 50.0));
  Alcotest.(check bool) "empty buckets" true (Metrics.cumulative_buckets h = []);
  let feq = Alcotest.(check (float 1e-9)) in
  Metrics.observe h 42.0;
  (* single sample: clamping to [min, max] makes every percentile exact *)
  feq "single p0" 42.0 (Metrics.percentile h 0.0);
  feq "single p50" 42.0 (Metrics.percentile h 50.0);
  feq "single p100" 42.0 (Metrics.percentile h 100.0);
  let s = Metrics.summarize h in
  Alcotest.(check int) "single n" 1 s.Metrics.n;
  feq "single sum" 42.0 s.Metrics.sum;
  feq "single min" 42.0 s.Metrics.min_v;
  feq "single max" 42.0 s.Metrics.max_v;
  Metrics.reset ();
  Alcotest.(check int) "reset empties" 0 (Metrics.count h);
  Alcotest.(check bool) "reset percentile is nan" true
    (Float.is_nan (Metrics.percentile h 50.0));
  Metrics.observe h 7.0;
  Alcotest.(check int) "usable after reset" 1 (Metrics.count h);
  feq "exact after reset" 7.0 (Metrics.percentile h 100.0)

let test_histogram_multidomain () =
  reset_all ();
  (* 4 domains hammer one histogram with disjoint integer-valued ranges
     (so the float sum is exact): each domain writes its own shard and
     the merge must see every sample exactly once *)
  let h = Metrics.histogram "test.hammer" in
  let doms = 4 and per = 25_000 in
  let workers =
    Array.init doms (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Metrics.observe h (float_of_int ((d * per) + i))
            done))
  in
  Array.iter Domain.join workers;
  let total = doms * per in
  Alcotest.(check int) "n exact across shards" total (Metrics.count h);
  let s = Metrics.summarize h in
  let feq = Alcotest.(check (float 1e-9)) in
  Alcotest.(check int) "summary n" total s.Metrics.n;
  feq "sum exact across shards"
    (float_of_int total *. (float_of_int total +. 1.0) /. 2.0)
    s.Metrics.sum;
  feq "min exact" 1.0 s.Metrics.min_v;
  feq "max exact" (float_of_int total) s.Metrics.max_v;
  check_within_bound "merged p50" ~exact:(float_of_int total /. 2.0) s.Metrics.p50;
  check_within_bound "merged p99"
    ~exact:(0.99 *. float_of_int total)
    s.Metrics.p99

let test_percentile_of_nondestructive () =
  reset_all ();
  (* regression: percentile_of used to sort its argument in place, so a
     caller computing several percentiles over a window of an array it
     still owned saw the window reordered under it *)
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  let feq = Alcotest.(check (float 1e-9)) in
  feq "p50 of unsorted input" 3.0 (Metrics.percentile_of xs 50.0);
  Alcotest.(check (array (float 0.0)))
    "input array untouched" [| 5.0; 1.0; 4.0; 2.0; 3.0 |] xs;
  feq "p0" 1.0 (Metrics.percentile_of xs 0.0);
  feq "p100" 5.0 (Metrics.percentile_of xs 100.0)

(* ---------------- bounded trace ring ---------------- *)

let test_trace_ring_bounded () =
  reset_all ();
  Trace_sink.set_capacity 8;
  Fun.protect ~finally:(fun () -> Trace_sink.set_capacity 65_536)
  @@ fun () ->
  Span.set_enabled true;
  for i = 1 to 20 do
    Span.with_span (Printf.sprintf "s%02d" i) (fun () -> ())
  done;
  Span.set_enabled false;
  let evs = Trace_sink.events () in
  Alcotest.(check int) "ring holds capacity" 8 (List.length evs);
  Alcotest.(check (list string))
    "newest events survive, oldest dropped"
    (List.init 8 (fun i -> Printf.sprintf "s%02d" (13 + i)))
    (List.map (fun e -> e.Trace_sink.name) evs);
  Alcotest.(check int) "dropped counted" 12 (Trace_sink.dropped ());
  Alcotest.(check int) "trace.dropped metric agrees" 12
    (Metrics.value (Metrics.counter "trace.dropped"));
  Trace_sink.clear ();
  Alcotest.(check int) "clear resets the drop count" 0 (Trace_sink.dropped ())

let test_trace_shrink_keeps_newest () =
  reset_all ();
  Trace_sink.set_capacity 16;
  Fun.protect ~finally:(fun () -> Trace_sink.set_capacity 65_536)
  @@ fun () ->
  Span.set_enabled true;
  for i = 1 to 10 do
    Span.with_span (Printf.sprintf "s%02d" i) (fun () -> ())
  done;
  Span.set_enabled false;
  Trace_sink.set_capacity 4;
  Alcotest.(check (list string))
    "shrinking keeps the newest survivors"
    [ "s07"; "s08"; "s09"; "s10" ]
    (List.map (fun e -> e.Trace_sink.name) (Trace_sink.events ()))

(* ---------------- counters across domains ---------------- *)

let test_counter_sharded () =
  reset_all ();
  let c = Metrics.counter "test.hits" in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join workers;
  Metrics.add c 5;
  Alcotest.(check int) "shards sum" 4005 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle stays valid" 0 (Metrics.value c)

(* ---------------- zero-cost disabled path ---------------- *)

let test_noop_no_alloc () =
  reset_all ();
  let f = Sys.opaque_identity (fun () -> 0) in
  for _ = 1 to 100 do
    ignore (Span.with_span "warmup" f)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Span.with_span "hot" f)
  done;
  let after = Gc.minor_words () in
  (* small slack for the Gc.minor_words boxes themselves *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled with_span allocates nothing (%.0f words)" (after -. before))
    true
    (after -. before < 100.0);
  Alcotest.(check int) "events" 0 (List.length (Trace_sink.events ()))

(* ---------------- interpreter counters -> registry ---------------- *)

let test_interp_flush_matches () =
  reset_all ();
  let batch_dim = Cora.Dim.make "batch" and len_dim = Cora.Dim.make "len" in
  let lens_fn = Cora.Lenfun.make "lens" in
  let extents = [ Cora.Shape.fixed 4; Cora.Shape.ragged ~dep:batch_dim ~fn:lens_fn ] in
  let a = Cora.Tensor.create ~name:"A" ~dims:[ batch_dim; len_dim ] ~extents in
  let o = Cora.Tensor.create ~name:"O" ~dims:[ batch_dim; len_dim ] ~extents in
  let op =
    Cora.Op.compute ~name:"double" ~out:o ~loop_extents:extents ~reads:[ a ] (fun idx ->
        Ir.Expr.mul (Ir.Expr.float 2.0) (Cora.Op.access a idx))
  in
  let kernel = Cora.Lower.lower (Cora.Schedule.create op) in
  let lenv = [ Cora.Lenfun.of_array "lens" [| 3; 1; 4; 2 |] ] in
  let ra = Cora.Ragged.alloc a lenv and ro = Cora.Ragged.alloc o lenv in
  Cora.Ragged.fill ra (fun _ -> 1.0);
  let env, _ = Cora.Exec.run_ragged ~lenv ~tensors:[ ra; ro ] [ kernel ] in
  let reg name = Metrics.value (Metrics.counter name) in
  Alcotest.(check int) "loads" env.Runtime.Interp.loads (reg "interp.loads");
  Alcotest.(check int) "stores" env.Runtime.Interp.stores (reg "interp.stores");
  Alcotest.(check int) "flops" env.Runtime.Interp.flops (reg "interp.flops");
  Alcotest.(check int) "indirect" env.Runtime.Interp.indirect (reg "interp.indirect");
  Alcotest.(check int) "guards" env.Runtime.Interp.guards (reg "interp.guards");
  Alcotest.(check bool) "something executed" true (env.Runtime.Interp.stores > 0)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "closed on exception" `Quick test_span_exception_closes;
          Alcotest.test_case "chrome JSON round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "bounded ring drops oldest" `Quick test_trace_ring_bounded;
          Alcotest.test_case "shrink keeps newest" `Quick test_trace_shrink_keeps_newest;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram error bound vs oracle" `Quick
            test_histogram_error_bound;
          Alcotest.test_case "histogram edge cases and reset" `Quick
            test_histogram_edge_cases;
          Alcotest.test_case "histogram multi-domain hammer" `Quick
            test_histogram_multidomain;
          Alcotest.test_case "percentile_of leaves input intact" `Quick
            test_percentile_of_nondestructive;
          Alcotest.test_case "counters shard across domains" `Quick test_counter_sharded;
          Alcotest.test_case "interp flush matches env" `Quick test_interp_flush_matches;
        ] );
      ( "overhead",
        [ Alcotest.test_case "disabled path allocation-free" `Quick test_noop_no_alloc ] );
    ]
