(* Operator graph + memory planner: liveness ranges must be correct, the
   plan must reduce peak activation memory, and executing the encoder with
   aliased buffers must produce exactly the same output as with private
   buffers. *)

open Cora
open Transformer

let lens = [| 7; 4; 2 |]
let cfg = Config.tiny ~lens
let lenv = Config.lenv cfg

let build_graph () =
  let built = Builder.build ~target:Builder.Gpu cfg in
  let t = built.Builder.tensors in
  let tensors = Builder.all_tensors t in
  let weights = [ t.Builder.wqkv; t.Builder.bqkv; t.Builder.w2; t.Builder.b2;
                  t.Builder.wf1; t.Builder.bf1; t.Builder.wf2; t.Builder.bf2 ] in
  let g =
    Graph.make ~tensors
      ~inputs:(t.Builder.in_t :: weights)
      ~outputs:[ t.Builder.out ]
      (Builder.kernels built)
  in
  (built, g)

let test_liveness () =
  let built, g = build_graph () in
  let t = built.Builder.tensors in
  let ranges = Graph.liveness g in
  let range (tensor : Tensor.t) =
    let _, lo, hi =
      List.find (fun ((x : Tensor.t), _, _) -> x == tensor) ranges
    in
    (lo, hi)
  in
  (* kernels: 0 QKV, 1 QKT, 2 Softmax, 3 AttnV, 4 Proj2, 5 LN1, 6 FF1, 7 FF2, 8 LN2 *)
  Alcotest.(check (pair int int)) "qkv live 0..3" (0, 3) (range t.Builder.qkv);
  Alcotest.(check (pair int int)) "scores live 1..2" (1, 2) (range t.Builder.scores);
  Alcotest.(check (pair int int)) "probs live 2..3" (2, 3) (range t.Builder.probs);
  Alcotest.(check (pair int int)) "ln1 live 5..7" (5, 7) (range t.Builder.ln1)

let test_plan_reduces_memory () =
  let _, g = build_graph () in
  let p = Graph.plan g ~lenv in
  let naive = Graph.naive_bytes g ~lenv in
  let planned = Graph.planned_bytes p in
  Alcotest.(check bool) "planned < naive" true (planned < naive);
  Alcotest.(check bool) "planned >= biggest tensor" true (planned > 0)

let test_no_overlapping_aliases () =
  let _, g = build_graph () in
  let p = Graph.plan g ~lenv in
  let ranges = Graph.liveness g in
  (* tensors sharing a slot must have disjoint live ranges *)
  List.iter
    (fun ((ta : Tensor.t), la, ha) ->
      List.iter
        (fun ((tb : Tensor.t), lb, hb) ->
          if not (ta == tb) then
            match
              ( Hashtbl.find_opt p.Graph.slot_of ta.Tensor.buf.Ir.Var.id,
                Hashtbl.find_opt p.Graph.slot_of tb.Tensor.buf.Ir.Var.id )
            with
            | Some sa, Some sb when sa = sb ->
                if not (ha < lb || hb < la) then
                  Alcotest.failf "%s and %s share slot %d but overlap" ta.Tensor.name
                    tb.Tensor.name sa
            | _ -> ())
        ranges)
    ranges

let test_planned_execution_identical () =
  let built, g = build_graph () in
  let t = built.Builder.tensors in
  let w = Reference.random_weights cfg ~seed:9 in
  let fill_dense (tensor : Tensor.t) a =
    let r = Ragged.alloc tensor lenv in
    Array.blit a 0 (Runtime.Buffer.floats r.Ragged.buf) 0 (Array.length a);
    (tensor, r.Ragged.buf)
  in
  let rin = Ragged.alloc t.Builder.in_t lenv in
  Ragged.fill rin (fun idx ->
      sin (float_of_int ((23 * List.nth idx 0) + (7 * List.nth idx 1) + List.nth idx 2)) *. 0.4);
  let rout = Ragged.alloc t.Builder.out lenv in
  let external_bindings =
    [
      fill_dense t.Builder.wqkv w.Reference.wqkv; fill_dense t.Builder.bqkv w.Reference.bqkv;
      fill_dense t.Builder.w2 w.Reference.w2; fill_dense t.Builder.b2 w.Reference.b2;
      fill_dense t.Builder.wf1 w.Reference.wf1; fill_dense t.Builder.bf1 w.Reference.bf1;
      fill_dense t.Builder.wf2 w.Reference.wf2; fill_dense t.Builder.bf2 w.Reference.bf2;
      (t.Builder.in_t, rin.Ragged.buf);
      (t.Builder.out, rout.Ragged.buf);
    ]
  in
  let p = Graph.plan g ~lenv in
  let _ = Graph.execute g p ~lenv ~bindings:external_bindings in
  (* reference: dense per-sequence encoder *)
  let h = cfg.Config.hidden in
  Array.iteri
    (fun b len ->
      let x = Array.make (len * h) 0.0 in
      for l = 0 to len - 1 do
        for j = 0 to h - 1 do
          x.((l * h) + j) <- Ragged.get rin [ b; l; j ]
        done
      done;
      let expect = Reference.encoder cfg w x ~len in
      for l = 0 to len - 1 do
        for j = 0 to h - 1 do
          let got = Ragged.get rout [ b; l; j ] in
          if Float.abs (got -. expect.((l * h) + j)) > 1e-6 then
            Alcotest.failf "planned exec b=%d l=%d j=%d: %f vs %f" b l j got
              expect.((l * h) + j)
        done
      done)
    lens

let test_memory_plan_at_scale () =
  (* paper-scale sanity: planning roughly halves peak intermediates *)
  let lens = Workloads.Datasets.sample_sorted Workloads.Datasets.squad ~batch:32 ~seed:1 in
  let cfg = Config.base ~lens in
  let lenv = Config.lenv cfg in
  let built = Builder.build ~target:Builder.Gpu cfg in
  let t = built.Builder.tensors in
  let g =
    Graph.make ~tensors:(Builder.all_tensors t)
      ~inputs:
        [ t.Builder.in_t; t.Builder.wqkv; t.Builder.bqkv; t.Builder.w2; t.Builder.b2;
          t.Builder.wf1; t.Builder.bf1; t.Builder.wf2; t.Builder.bf2 ]
      ~outputs:[ t.Builder.out ]
      (Builder.kernels built)
  in
  let p = Graph.plan g ~lenv in
  let ratio = float_of_int (Graph.planned_bytes p) /. float_of_int (Graph.naive_bytes g ~lenv) in
  Alcotest.(check bool) "saves at least 25%" true (ratio < 0.75)

let () =
  Alcotest.run "graph"
    [
      ( "memory-planner",
        [
          Alcotest.test_case "liveness ranges" `Quick test_liveness;
          Alcotest.test_case "plan reduces memory" `Quick test_plan_reduces_memory;
          Alcotest.test_case "no overlapping aliases" `Quick test_no_overlapping_aliases;
          Alcotest.test_case "planned execution identical" `Quick test_planned_execution_identical;
          Alcotest.test_case "savings at paper scale" `Quick test_memory_plan_at_scale;
        ] );
    ]
